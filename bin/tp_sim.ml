(* tp_sim — command-line driver for the termination-protocol reproduction.

   Subcommands (alphabetical):
     analyze  static FSA analysis (concurrency sets, lemma checks, rules)
     cases    Section 6 case classification for a transient scenario
     check    self-check of the paper's key claims (CI gate)
     cluster  long-running multi-transaction cluster under a partition timeline
              (--seeds fans a domain-parallel sweep, --jobs N domains)
     db       a database workload through a commit protocol
     diagram  ASCII message-sequence diagram of one scenario
     lemma3   exhaustive Lemma 3 augmentation search
     list     available protocols and subcommands
     metrics  render a telemetry snapshot stream (cluster --metrics) as a table
     run      one scenario, full trace
     soak     millions of ticks under a seed-derived randomized fault schedule
              (epochs fan across --jobs domains; byte-identical per seed)
     spans    one scenario, exported as span/flow JSON (Perfetto-loadable)
     sweep    a protocol over the default scenario grid (--jobs N domains)

   Sweeping subcommands accept --jobs N (N >= 1 domains; default
   Domain.recommended_domain_count).  The summary/JSON is byte-identical
   for every N — parallelism only changes the wall clock. *)

(* The one protocol table: lib/checker/registry.ml.  Adding a family
   there is all it takes to reach run/sweep/cluster/list/bench. *)
let protocols : (string * Site.packed) list = Registry.enum

open Cmdliner

let protocol_arg =
  Arg.(
    required
    & opt (some (enum protocols)) None
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL" ~doc:"Protocol to run.")

let n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of sites.")

let t_arg =
  Arg.(
    value & opt int 1000
    & info [ "T" ] ~docv:"TICKS" ~doc:"Propagation bound T, in ticks.")

let g2_arg =
  Arg.(
    value & opt (list int) []
    & info [ "g2" ] ~docv:"SITES" ~doc:"Slaves forming group G2 (e.g. 3,4).")

let at_arg =
  Arg.(
    value & opt (some int) None
    & info [ "at" ] ~docv:"TICKS" ~doc:"Partition instant.")

let heal_arg =
  Arg.(
    value & opt (some int) None
    & info [ "heal" ] ~docv:"TICKS"
        ~doc:"Heal the partition this many ticks after it starts.")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let delay_arg =
  let parse = function
    | "minimal" -> Ok `Minimal
    | "full" -> Ok `Full
    | "uniform" -> Ok `Uniform
    | s -> Error (`Msg (Printf.sprintf "unknown delay model %S" s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with `Minimal -> "minimal" | `Full -> "full" | `Uniform -> "uniform")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Uniform
    & info [ "delay" ] ~docv:"MODEL" ~doc:"Delay model: minimal, full, uniform.")

let no_votes_arg =
  Arg.(
    value & opt (list int) []
    & info [ "vote-no" ] ~docv:"SITES" ~doc:"Slaves voting no.")

let pessimistic_arg =
  Arg.(
    value & flag
    & info [ "pessimistic" ]
        ~doc:"Lose undeliverable messages instead of returning them.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ]
        ~doc:
          "Suppress the trace. Tracing stores binary records and renders \
           only what is printed, so a traced run keeps roughly 60 percent \
           of untraced throughput (~830 bytes/event), against ~10x slower \
           with the old eager renderer.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep (default: the machine's \
           recommended domain count). Must be >= 1; the result is \
           identical for every value. Values above the recommended \
           domain count are clamped to it (extra domains would only \
           time-slice); a stderr warning notes the clamp.")

let grid_arg =
  Arg.(
    value
    & opt (enum [ ("small", `Small); ("large", `Large) ]) `Small
    & info [ "grid" ] ~docv:"SIZE"
        ~doc:
          "Sweep grid size: $(b,small) (the default grid) or $(b,large) \
           (the saturation grid — heal timelines and ten seeds for \
           checker sweeps; seeds 1..8, every policy and a no-partition \
           baseline for cluster sweeps). The summary format is the same; \
           large just gives parallel domains enough work to matter.")

(* Invalid --jobs gets the same treatment as an invalid timeline: a
   clean message plus a usage line, exit 2. *)
let resolve_jobs ~subcommand = function
  | None -> Commit_par.Pool.default_jobs ()
  | Some n when n >= 1 ->
      (* stderr only: the summary/JSON on stdout must stay byte-identical
         for every --jobs value. *)
      let recommended = Domain.recommended_domain_count () in
      if n > recommended then
        Printf.eprintf
          "warning: --jobs %d exceeds Domain.recommended_domain_count () = \
           %d; the sweep clamps to %d executors (the summary is identical \
           either way)\n\
           %!"
          n recommended recommended;
      n
  | Some n ->
      Format.eprintf "invalid --jobs %d: need a positive domain count@." n;
      Format.eprintf "usage: tp_sim %s ... --jobs N   (N >= 1; default %d)@."
        subcommand
        (Commit_par.Pool.default_jobs ());
      exit 2

(* Time spans accept "200T" (units of T) or plain ticks. *)
let span =
  let parse s =
    let len = String.length s in
    let bad () = Error (`Msg (Printf.sprintf "bad time span %S" s)) in
    if len > 1 && (s.[len - 1] = 'T' || s.[len - 1] = 't') then
      match int_of_string_opt (String.sub s 0 (len - 1)) with
      | Some v -> Ok (`T v)
      | None -> bad ()
    else
      match int_of_string_opt s with Some v -> Ok (`Ticks v) | None -> bad ()
  in
  let print fmt = function
    | `T v -> Format.fprintf fmt "%dT" v
    | `Ticks v -> Format.fprintf fmt "%d" v
  in
  Arg.conv (parse, print)

(* SITE:DOWN is a crash-stop, SITE:DOWN..UP a crash-recover window.
   Parsed leniently here; Fault.validate applies the real checks once
   the horizon is known. *)
let crash_arg =
  let spec =
    let parse s =
      let bad () =
        Error
          (`Msg
             (Printf.sprintf "bad crash spec %S (want SITE:DOWN or SITE:DOWN..UP)"
                s))
      in
      match String.index_opt s ':' with
      | None -> bad ()
      | Some i -> (
          let window = String.sub s (i + 1) (String.length s - i - 1) in
          let wlen = String.length window in
          let rec dots j =
            if j + 1 >= wlen then None
            else if window.[j] = '.' && window.[j + 1] = '.' then Some j
            else dots (j + 1)
          in
          let down_s, up_s =
            match dots 0 with
            | None -> (window, None)
            | Some j ->
                ( String.sub window 0 j,
                  Some (String.sub window (j + 2) (wlen - j - 2)) )
          in
          match
            ( int_of_string_opt (String.sub s 0 i),
              int_of_string_opt down_s,
              Option.map int_of_string_opt up_s )
          with
          | Some site, Some down, None -> Ok (site, down, None)
          | Some site, Some down, Some (Some up) -> Ok (site, down, Some up)
          | _ -> bad ())
    in
    let print fmt (site, down, up) =
      match up with
      | None -> Format.fprintf fmt "%d:%d" site down
      | Some up -> Format.fprintf fmt "%d:%d..%d" site down up
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (list spec) []
    & info [ "crash" ] ~docv:"SITE:DOWN[..UP]"
        ~doc:
          "Crash sites at given instants (e.g. 1:2500,3:4000). A \
           $(b,SITE:DOWN..UP) window crashes the site and recovers it at \
           $(b,UP): WAL replay, the paper's in-doubt rule, rejoin — \
           cluster and soak only.")

(* Crash-recover needs the cluster's durable stores and recovery rule;
   the single-transaction runner only models crash-stop. *)
let crash_stop_only ~subcommand specs =
  List.map
    (fun (site, down, up) ->
      match up with
      | None -> (Site_id.of_int site, Vtime.of_int down)
      | Some up ->
          Format.eprintf
            "--crash %d:%d..%d: crash-recover windows are a cluster/soak \
             feature; %s supports crash-stop SITE:DOWN only@."
            site down up subcommand;
          Format.eprintf "usage: tp_sim %s ... --crash SITE:DOWN@." subcommand;
          exit 2)
    specs

let spans_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "spans" ] ~docv:"FILE"
        ~doc:
          "Record causal spans and message flows, and write Chrome \
           trace_event JSON (Perfetto-loadable) to $(docv). The \
           companion causality DAG goes to $(docv) with a .causality.json \
           suffix. Spans are packed int records with coded message names \
           (rendered only at export), so recording is cheap enough to \
           leave on for any single run.")

(* Span JSON goes through open_out_bin so the bytes on disk are exactly
   the bytes Obs emitted — the CI determinism gate cmp(1)s two runs. *)
let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let causality_path path =
  (if Filename.check_suffix path ".json" then Filename.chop_suffix path ".json"
   else path)
  ^ ".causality.json"

let write_span_files obs path =
  write_file path (Obs.to_trace_event_json obs);
  write_file (causality_path path) (Obs.to_causality_json obs)

(* Satellite of the obs PR: the ring evicting entries used to be
   silent.  stderr only — stdout stays byte-identical. *)
let warn_dropped dropped =
  if dropped > 0 then
    Printf.eprintf
      "warning: trace ring dropped %d oldest entries (capacity exceeded); \
       the printed trace is a suffix of the run\n\
       %!"
      dropped

let make_config ~n ~t ~g2 ~at ~heal ~seed ~delay ~no_votes ~pessimistic =
  let t_unit = Vtime.of_int t in
  let base = Runner.default_config ~n ~t_unit () in
  let partition =
    match g2 with
    | [] -> Partition.none
    | sites ->
        let starts_at = Vtime.of_int (Option.value at ~default:0) in
        Partition.make
          ?heals_at:(Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heal)
          ~group2:(Site_id.set_of_ints sites) ~starts_at ~n ()
  in
  let delay =
    match delay with
    | `Minimal -> Delay.minimal
    | `Full -> Delay.full ~t_max:t_unit
    | `Uniform -> Delay.uniform ~t_max:t_unit
  in
  {
    base with
    Runner.partition;
    delay;
    seed;
    mode = (if pessimistic then Network.Pessimistic else Network.Optimistic);
    votes = List.map (fun s -> (Site_id.of_int s, false)) no_votes;
  }

let run_cmd =
  let doc = "Run one transaction under one scenario and print the trace." in
  let run protocol n t g2 at heal seed delay no_votes pessimistic quiet crashes
      spans =
    let config =
      make_config ~n ~t ~g2 ~at ~heal ~seed ~delay ~no_votes ~pessimistic
    in
    let config =
      {
        config with
        Runner.trace_enabled = not quiet;
        crashes = crash_stop_only ~subcommand:"run" crashes;
      }
    in
    let obs = match spans with Some _ -> Obs.create () | None -> Obs.disabled in
    let result = Runner.run ~obs protocol config in
    if not quiet then Format.printf "%a@." Trace.pp result.trace;
    Format.printf "%a" Runner.pp_result result;
    let verdict = Verdict.of_result result in
    Format.printf "verdict: %a@." Verdict.pp verdict;
    Option.iter (write_span_files obs) spans;
    warn_dropped (Trace.dropped result.trace);
    if Verdict.resilient verdict then 0 else 1
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ g2_arg $ at_arg $ heal_arg
      $ seed_arg $ delay_arg $ no_votes_arg $ pessimistic_arg $ quiet_arg
      $ crash_arg $ spans_arg)

let spans_cmd =
  let doc =
    "Run one scenario with span recording and print the trace_event JSON \
     (load it into ui.perfetto.dev or chrome://tracing)."
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum [ ("trace-event", `Trace_event); ("causality", `Causality) ])
          `Trace_event
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: trace-event (Chrome/Perfetto timeline) or \
             causality (name-sorted span list + flow-edge DAG).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the JSON to $(docv) instead of stdout.")
  in
  let run protocol n t g2 at heal seed delay no_votes pessimistic crashes
      format out =
    let config =
      make_config ~n ~t ~g2 ~at ~heal ~seed ~delay ~no_votes ~pessimistic
    in
    let config =
      {
        config with
        Runner.trace_enabled = false;
        crashes = crash_stop_only ~subcommand:"spans" crashes;
      }
    in
    let obs = Obs.create () in
    let (_ : Runner.result) = Runner.run ~obs protocol config in
    let json =
      match format with
      | `Trace_event -> Obs.to_trace_event_json obs
      | `Causality -> Obs.to_causality_json obs
    in
    (match out with None -> print_string json | Some file -> write_file file json);
    0
  in
  Cmd.v
    (Cmd.info "spans" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ g2_arg $ at_arg $ heal_arg
      $ seed_arg $ delay_arg $ no_votes_arg $ pessimistic_arg $ crash_arg
      $ format_arg $ out_arg)

let sweep_cmd =
  let doc =
    "Sweep a protocol over the default scenario grid, fanned across \
     $(b,--jobs) domains (the summary is identical for every jobs count)."
  in
  let heals_arg =
    Arg.(
      value & opt (list int) []
      & info [ "heals" ] ~docv:"TICKS"
          ~doc:"Also sweep transient partitions with these heal delays.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")
  in
  let run protocol n t heals grid_size json jobs =
    let jobs = resolve_jobs ~subcommand:"sweep" jobs in
    let t_unit = Vtime.of_int t in
    let base = Runner.default_config ~n ~t_unit () in
    let grid =
      match grid_size with
      | `Small -> Scenario.default_grid ~n ~t_unit
      | `Large -> Scenario.large_grid ~n ~t_unit
    in
    let grid =
      if heals = [] then grid
      else
        {
          grid with
          Scenario.heals_after =
            None :: List.map (fun h -> Some (Vtime.of_int h)) heals;
        }
    in
    let configs = Scenario.configs ~base grid in
    let summary = Sweep.run ~jobs protocol configs in
    if json then Format.printf "%a@." Export.pp (Export.of_summary summary)
    else Format.printf "%a@." Sweep.pp_summary summary;
    if summary.violations = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ heals_arg $ grid_arg
      $ json_arg $ jobs_arg)

let analyze_cmd =
  let doc = "Static FSA analysis: concurrency sets, Lemma 1/2, Rule(a)/(b)." in
  let name_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "protocol" ] ~docv:"NAME"
          ~doc:"FSA to analyse: 2pc, ext2pc, 3pc, 3pc-fig8, quorum3pc.")
  in
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Print the protocol as a Graphviz digraph instead (the paper's \
             figure).")
  in
  let run name n dot =
    match Commit_fsa.Catalog.find name with
    | None ->
        Format.eprintf "unknown FSA %S@." name;
        2
    | Some protocol when dot ->
        print_string (Commit_fsa.Machine.to_dot protocol);
        0
    | Some protocol ->
        let analysis = Commit_fsa.Analysis.analyze protocol ~n in
        Format.printf "%a@." Commit_fsa.Analysis.pp_report analysis;
        Format.printf "%a@." Commit_fsa.Augment.pp
          (Commit_fsa.Augment.apply_rules analysis);
        0
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ name_arg $ n_arg $ dot_arg)

let cases_cmd =
  let doc = "Classify a scenario into the Section 6 case tree." in
  let run protocol n t g2 at heal seed delay =
    let config =
      make_config ~n ~t ~g2 ~at ~heal ~seed ~delay ~no_votes:[]
        ~pessimistic:false
    in
    let config = { config with Runner.trace_enabled = false } in
    let observation = Cases.observe protocol config in
    Format.printf "%a@." Cases.pp_observation observation;
    Format.printf "%a" Runner.pp_result observation.result;
    0
  in
  Cmd.v
    (Cmd.info "cases" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ g2_arg $ at_arg $ heal_arg
      $ seed_arg $ delay_arg)

let diagram_cmd =
  let doc = "Render a scenario as an ASCII message-sequence diagram." in
  let run protocol n t g2 at heal seed delay no_votes crashes =
    let config =
      make_config ~n ~t ~g2 ~at ~heal ~seed ~delay ~no_votes
        ~pessimistic:false
    in
    let config =
      {
        config with
        Runner.trace_enabled = false;
        crashes = crash_stop_only ~subcommand:"diagram" crashes;
      }
    in
    print_string (Diagram.run protocol config);
    0
  in
  Cmd.v
    (Cmd.info "diagram" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ g2_arg $ at_arg $ heal_arg
      $ seed_arg $ delay_arg $ no_votes_arg $ crash_arg)

let db_cmd =
  let doc = "Run a database workload through a commit protocol." in
  let workload_arg =
    Arg.(
      value
      & opt (enum [ ("bank", `Bank); ("hot-spot", `Hot); ("mix", `Mix) ]) `Bank
      & info [ "w"; "workload" ] ~docv:"KIND"
          ~doc:"Workload: bank, hot-spot, or mix.")
  in
  let txns_arg =
    Arg.(value & opt int 8 & info [ "txns" ] ~docv:"N" ~doc:"Transactions.")
  in
  let run protocol n t g2 at heal seed delay workload txns =
    let module Tm = Commit_db.Tm in
    let module Workload = Commit_db.Workload in
    let t_unit = Vtime.of_int t in
    let spacing = Vtime.of_int (6 * t) in
    let w =
      match workload with
      | `Bank ->
          Workload.bank_transfers ~n ~pairs:txns ~balance:1000 ~amount:70
            ~spacing ~seed
      | `Hot -> Workload.hot_spot ~n ~txns ~spacing
      | `Mix ->
          Workload.uniform_mix ~n ~txns ~keys_per_txn:3 ~key_space:(2 * n)
            ~spacing ~seed
    in
    let partition =
      match g2 with
      | [] -> Partition.none
      | sites ->
          let starts_at = Vtime.of_int (Option.value at ~default:0) in
          Partition.make
            ?heals_at:
              (Option.map
                 (fun h -> Vtime.add starts_at (Vtime.of_int h))
                 heal)
            ~group2:(Site_id.set_of_ints sites) ~starts_at ~n ()
    in
    let delay =
      match delay with
      | `Minimal -> Delay.minimal
      | `Full -> Delay.full ~t_max:t_unit
      | `Uniform -> Delay.uniform ~t_max:t_unit
    in
    let config =
      {
        (Tm.default_config ~protocol ~n ()) with
        Tm.t_unit;
        partition;
        delay;
        seed;
        initial = w.Workload.initial;
      }
    in
    let report = Tm.run config w.Workload.txns in
    Format.printf "%a" Tm.pp_report report;
    (match workload with
    | `Bank ->
        Format.printf "money: %d on disk, %d expected@."
          (Tm.balance_total report ~prefix:"acct:")
          (Workload.expected_total w ~prefix:"acct:")
    | `Hot | `Mix -> ());
    if Tm.count_status report Tm.Txn_torn = 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "db" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ g2_arg $ at_arg $ heal_arg
      $ seed_arg $ delay_arg $ workload_arg $ txns_arg)

let check_cmd =
  let doc =
    "Self-check: run the paper's key claims on reduced grids and report \
     PASS/FAIL (a fast correctness gate for CI)."
  in
  let run () =
    let t_unit = Vtime.of_int 1000 in
    let failures = ref 0 in
    let verdict label ok =
      Format.printf "  %-58s %s@." label (if ok then "PASS" else "FAIL");
      if not ok then incr failures
    in
    let grid n =
      Scenario.configs
        ~base:(Runner.default_config ~n ~t_unit ())
        (Scenario.default_grid ~n ~t_unit)
    in
    let sweep p n = Sweep.run p (grid n) in
    Format.printf "self-check (reduced grids):@.";
    let s = sweep (module Termination.Static) 3 in
    verdict "Theorem 9: termination protocol resilient (n=3)"
      (s.violations = 0 && s.blocked_runs = 0);
    let s = sweep (module Termination.Transient) 3 in
    verdict "Section 6: transient variant resilient (n=3)"
      (s.violations = 0 && s.blocked_runs = 0);
    let s = sweep (module Theorem10.Four_phase_termination) 3 in
    verdict "Theorem 10: 4pc-termination resilient (n=3)"
      (s.violations = 0 && s.blocked_runs = 0);
    let s = sweep (module Ext_two_phase) 3 in
    verdict "Section 3 obs. 1: ext2pc violates for n=3" (s.violations > 0);
    let s = sweep (module Three_phase_rules.Paper) 3 in
    verdict "Section 3 obs. 2: 3pc+rules violates" (s.violations > 0);
    let s = sweep (module Two_phase) 3 in
    verdict "Fig. 1: 2pc blocks but stays atomic"
      (s.violations = 0 && s.blocked_runs > 0);
    let s = sweep (module Quorum) 3 in
    verdict "Ref [5]: quorum atomic, blocks the minority"
      (s.violations = 0 && s.blocked_runs > 0);
    let s = sweep Paxos_commit.protocol 3 in
    verdict "Paxos Commit: atomic under partition (minority may block)"
      (s.violations = 0);
    let crash_grid n =
      Scenario.configs
        ~base:(Runner.default_config ~n ~t_unit ())
        (Scenario.master_crash_grid ~t_unit)
    in
    let crash_sweep p n = Sweep.run p (crash_grid n) in
    let spx = crash_sweep Paxos_commit.protocol 3 in
    verdict "Paxos Commit (F=1): resilient to master crash"
      (spx.violations = 0 && spx.blocked_runs = 0);
    let s = crash_sweep Paxos_commit.protocol_f0 3 in
    verdict "Paxos F=0 degenerates to 2PC: master crash blocks"
      (s.violations = 0 && s.blocked_runs > 0);
    let s = crash_sweep (module Termination.Transient) 3 in
    verdict "termination protocol outlived by Paxos on master crash"
      (s.violations = 0 && s.committed < spx.committed);
    let majorities_ok =
      List.for_all
        (fun cfg ->
          let tap, events = Paxos_check.collecting_tap () in
          let result = Runner.run ~tap Paxos_commit.protocol cfg in
          match Paxos_check.audit ~f:1 result (events ()) with
          | Ok _ -> true
          | Error problems ->
              List.iter
                (fun p -> Format.eprintf "    %a@." Paxos_check.pp_problem p)
                problems;
              false)
        (grid 3 @ crash_grid 3)
    in
    verdict "Paxos: every commit backed by acceptor majorities" majorities_ok;
    let facts_ok =
      List.for_all
        (fun cfg ->
          Facts.audit (Runner.run (module Termination.Static) cfg) = Ok ())
        (grid 3)
    in
    verdict "FACT 1/2: every decision through an admissible case" facts_ok;
    let lemmas =
      match Commit_fsa.Catalog.find "3pc" with
      | Some p ->
          Commit_fsa.Analysis.satisfies_lemmas
            (Commit_fsa.Analysis.analyze p ~n:3)
      | None -> false
    in
    verdict "Lemma 1/2: 3pc qualifies (FSA analysis)" lemmas;
    Format.printf "%s@."
      (if !failures = 0 then "all checks passed"
       else Printf.sprintf "%d check(s) FAILED" !failures);
    if !failures = 0 then 0 else 1
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ const ())

let lemma3_cmd =
  let doc =
    "Exhaustively execute every timeout/UD augmentation of 3PC (Lemma 3)."
  in
  let run () =
    let t_unit = Vtime.of_int 1000 in
    let fsa = Commit_fsa.Catalog.three_phase in
    let assignments = Fsa_actor.all_assignments fsa in
    Format.printf "%d assignments to execute...@." (List.length assignments);
    let grid =
      Scenario.configs
        ~base:(Runner.default_config ~n:3 ~t_unit ())
        (Scenario.default_grid ~n:3 ~t_unit)
    in
    (* Stage 2 for anything that survives stage 1: correctness on the
       failure-free and vote flows, and the n=4 ack-splitting cuts. *)
    let base4 = Runner.default_config ~n:4 ~t_unit () in
    let full = Delay.full ~t_max:t_unit in
    let stage2 =
      { (Runner.default_config ~n:3 ~t_unit ()) with Runner.delay = full }
      :: {
           (Runner.default_config ~n:3 ~t_unit ()) with
           Runner.delay = full;
           votes = [ (Site_id.of_int 2, false) ];
         }
      :: List.map
           (fun at ->
             {
               base4 with
               Runner.partition =
                 Partition.make
                   ~group2:(Site_id.set_of_ints [ 3; 4 ])
                   ~starts_at:(Vtime.of_int at) ~n:4 ();
               delay = full;
             })
           [ 3050; 4050 ]
      @ (* a no-voter cut off from the rest: the kill shot for the
           "commit on any trouble" assignments *)
      List.map
        (fun at ->
          {
            (Runner.default_config ~n:3 ~t_unit ()) with
            Runner.partition =
              Partition.make
                ~group2:(Site_id.set_of_ints [ 3 ])
                ~starts_at:(Vtime.of_int at) ~n:3 ();
            delay = full;
            votes = [ (Site_id.of_int 3, false) ];
          })
        [ 100; 1100; 2100 ]
    in
    let sound a =
      let proto = Fsa_actor.make ~name:"candidate" fsa a in
      List.for_all
        (fun cfg ->
          Verdict.resilient (Verdict.of_result (Runner.run proto cfg)))
        grid
      && List.for_all
           (fun (cfg : Runner.config) ->
             let result = Runner.run proto cfg in
             let v = Verdict.of_result result in
             Verdict.resilient v
             && (Partition.group_count cfg.partition > 0
                || Verdict.outcome v
                   = (if cfg.votes = [] then `Committed else `Aborted)))
           stage2
    in
    let survivors = List.filter sound assignments in
    Format.printf
      "assignments that are resilient AND correct: %d (Lemma 3 predicts 0)@."
      (List.length survivors);
    if survivors = [] then 0 else 1
  in
  Cmd.v (Cmd.info "lemma3" ~doc) Term.(const run $ const ())

(* Unlike the single-scenario runner, cluster/soak default to the
   paper's protocol instead of requiring --protocol. *)
let cluster_protocol_arg =
  Arg.(
    value
    & opt (enum protocols) (module Termination.Transient : Site.S)
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"Protocol to run (default: termination-transient).")

let cluster_cmd =
  let module Cluster = Commit_cluster in
  let doc =
    "Keep a cluster alive under load while a partition timeline plays out. \
     With $(b,--seeds), fan one independent runtime per seed (x policies \
     with $(b,--all-policies)) across $(b,--jobs) domains and merge the \
     metrics exactly."
  in
  let duration_arg =
    Arg.(
      value & opt span (`T 200)
      & info [ "duration" ] ~docv:"SPAN" ~doc:"Arrival window (e.g. 200T).")
  in
  let drain_arg =
    Arg.(
      value & opt span (`T 30)
      & info [ "drain" ] ~docv:"SPAN"
          ~doc:"Extra run time for in-flight transactions after arrivals stop.")
  in
  let load_arg =
    Arg.(
      value & opt int 50
      & info [ "load" ] ~docv:"TXNS" ~doc:"Offered transactions per 100T.")
  in
  let cut_arg =
    Arg.(
      value & opt (list span) []
      & info [ "cut" ] ~docv:"SPANS"
          ~doc:"Partition onset instants (e.g. 40T,300T).")
  in
  let cluster_heal_arg =
    Arg.(
      value & opt (list span) []
      & info [ "heal" ] ~docv:"SPANS"
          ~doc:
            "Heal instants, paired with $(b,--cut) in order; a missing last \
             heal leaves the final cut permanent.")
  in
  let window_arg =
    Arg.(
      value & opt int 8
      & info [ "window" ] ~docv:"N" ~doc:"Max concurrent transactions.")
  in
  let queue_limit_arg =
    Arg.(
      value & opt (some int) (Some 64)
      & info [ "queue-limit" ] ~docv:"N" ~doc:"Admission queue bound.")
  in
  let policy_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("fixed", Cluster.Scheduler.Fixed_master);
               ("round-robin", Cluster.Scheduler.Round_robin);
               ("partition-aware", Cluster.Scheduler.Partition_aware);
             ])
          Cluster.Scheduler.Partition_aware
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Master placement: fixed, round-robin, partition-aware.")
  in
  let pause_arg =
    Arg.(
      value & flag
      & info [ "pause-during-cut" ]
          ~doc:"Defer all admissions while a partition is active.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let seeds_arg =
    Arg.(
      value & opt (list int64) []
      & info [ "seeds" ] ~docv:"SEEDS"
          ~doc:
            "Sweep these seeds (e.g. 1,2,3) instead of running the single \
             $(b,--seed) scenario: one independent runtime per grid point, \
             merged into one summary.")
  in
  let all_policies_arg =
    Arg.(
      value & flag
      & info [ "all-policies" ]
          ~doc:
            "With $(b,--seeds): sweep all three placement policies instead \
             of just $(b,--policy).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Stream windowed telemetry snapshots to $(docv) as JSONL: one \
             record per $(b,--metrics-every) window plus a final horizon \
             cut. The stream is byte-identical across invocations and \
             $(b,--jobs) values, and the windows merge exactly to the \
             end-of-run metrics. Render with $(b,tp_sim metrics) $(docv).")
  in
  let metrics_every_arg =
    Arg.(
      value & opt span (`T 50)
      & info [ "metrics-every" ] ~docv:"SPAN"
          ~doc:"Snapshot window width (e.g. 50T, or plain ticks).")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attribute host wall-time to subsystem buckets (engine, \
             network, protocol, lock-manager, auditor) and print the \
             breakdown to stderr. Wall-clock readings are inherently \
             nondeterministic, so they never touch stdout or any JSON.")
  in
  let run protocol n t g2 cuts heals seed delay pessimistic duration drain load
      window queue_limit policy pause crashes json quiet seeds all_policies
      grid_size jobs spans metrics_out metrics_every profile =
    let t_unit = Vtime.of_int t in
    let resolve = function
      | `T v -> Vtime.of_int (v * t)
      | `Ticks v -> Vtime.of_int v
    in
    if List.length heals > List.length cuts then begin
      Format.eprintf "more --heal instants than --cut instants@.";
      exit 2
    end;
    let g2 = match g2 with [] -> [ n ] | sites -> sites in
    let timeline =
      try
        match cuts with
        | [] -> Partition.none
        | cuts ->
            let heals =
              List.map (fun h -> Some (resolve h)) heals
              @ List.init
                  (List.length cuts - List.length heals)
                  (fun _ -> None)
            in
            Partition.sequence
              (List.map2
                 (fun cut heal ->
                   Partition.make ?heals_at:heal
                     ~group2:(Site_id.set_of_ints g2) ~starts_at:(resolve cut)
                     ~n ())
                 cuts heals)
      with Invalid_argument msg ->
        Format.eprintf "invalid partition timeline: %s@." msg;
        exit 2
    in
    let delay =
      match delay with
      | `Minimal -> Delay.minimal
      | `Full -> Delay.full ~t_max:t_unit
      | `Uniform -> Delay.uniform ~t_max:t_unit
    in
    (* Crash-recover windows are validated against the full run extent:
       a recover instant past the horizon could never fire. *)
    let fault_specs =
      List.map
        (fun (site, down, up) -> { Cluster.Fault.site; down; up })
        crashes
    in
    let horizon =
      Vtime.to_int (Vtime.add (resolve duration) (resolve drain))
    in
    (match Cluster.Fault.validate ~n ~horizon fault_specs with
    | Ok () -> ()
    | Error msg ->
        Format.eprintf "invalid --crash schedule: %s@." msg;
        Format.eprintf
          "usage: tp_sim cluster ... --crash SITE:DOWN[..UP][,...]   \
           (instants in ticks, before the horizon; UP > DOWN)@.";
        exit 2);
    let cl_crashes, cl_recoveries = Cluster.Fault.split fault_specs in
    let config =
      {
        (Cluster.Runtime.default_config ~protocol ~n ()) with
        Cluster.Runtime.t_unit;
        mode = (if pessimistic then Network.Pessimistic else Network.Optimistic);
        timeline;
        delay;
        seed;
        duration = resolve duration;
        drain = resolve drain;
        load;
        window;
        queue_limit;
        policy;
        pause_during_cut = pause;
        crashes = cl_crashes;
        recoveries = cl_recoveries;
        snapshot_every =
          (match metrics_out with
          | Some _ -> Some (resolve metrics_every)
          | None -> None);
        profile;
      }
    in
    (* --grid large turns the cluster run into a sweep even without
       --seeds: seeds 1..8, every policy, and a no-partition baseline
       timeline alongside the requested one. *)
    let seeds =
      match (seeds, grid_size) with
      | [], `Large -> List.init 8 (fun i -> Int64.of_int (i + 1))
      | seeds, _ -> seeds
    in
    match seeds with
    | [] ->
        let obs =
          match spans with Some _ -> Obs.create () | None -> Obs.disabled
        in
        let report =
          try Cluster.Runtime.run ~obs config
          with Invalid_argument msg ->
            Format.eprintf "invalid cluster config: %s@." msg;
            exit 2
        in
        if json then
          Format.printf "%a@." Export.pp (Cluster.Runtime.to_json report)
        else begin
          Format.printf "%a" Cluster.Runtime.pp_report report;
          if not quiet then
            Format.printf "%a" Cluster.Runtime.pp_timeline report
        end;
        Option.iter (write_span_files obs) spans;
        (match metrics_out with
        | None -> ()
        | Some file ->
            let buffer = Buffer.create 4096 in
            List.iter
              (fun snap ->
                Buffer.add_string buffer
                  (Export.to_string
                     (Cluster.Metrics.snapshot_to_json
                        report.Cluster.Runtime.metrics snap));
                Buffer.add_char buffer '\n')
              report.Cluster.Runtime.snapshots;
            write_file file (Buffer.contents buffer));
        (* stderr: wall-clock attribution must never contaminate the
           deterministic stdout/JSON surface. *)
        (match report.Cluster.Runtime.profile with
        | Some p -> Format.eprintf "%a@?" Prof.pp p
        | None -> ());
        warn_dropped report.Cluster.Runtime.trace_dropped;
        if Cluster.Runtime.atomic report && report.Cluster.Runtime.blocked = 0
        then 0
        else 1
    | seeds ->
        if spans <> None then begin
          Format.eprintf
            "--spans records one runtime; drop --seeds (or pick one seed \
             with --seed) to export spans@.";
          exit 2
        end;
        if profile then begin
          Format.eprintf
            "--profile times one runtime on the host clock; drop --seeds \
             (or pick one seed with --seed) to profile@.";
          exit 2
        end;
        let jobs = resolve_jobs ~subcommand:"cluster" jobs in
        let requested = (Format.asprintf "%a" Partition.pp timeline, timeline) in
        let grid =
          {
            Cluster.Cluster_sweep.base = config;
            seeds;
            timelines =
              (match grid_size with
              | `Small -> [ requested ]
              | `Large ->
                  if cuts = [] then [ requested ]
                  else [ ("none", Partition.none); requested ]);
            policies =
              (if all_policies || grid_size = `Large then
                 Cluster.Scheduler.
                   [ Fixed_master; Round_robin; Partition_aware ]
               else [ policy ]);
            protocols = [];
            faults = [];
          }
        in
        let summary =
          try Cluster.Cluster_sweep.run ~jobs grid
          with Invalid_argument msg ->
            Format.eprintf "invalid cluster sweep: %s@." msg;
            exit 2
        in
        (match metrics_out with
        | None -> ()
        | Some file ->
            let buffer = Buffer.create 4096 in
            List.iter
              (fun line ->
                Buffer.add_string buffer line;
                Buffer.add_char buffer '\n')
              summary.Cluster.Cluster_sweep.snapshot_lines;
            write_file file (Buffer.contents buffer));
        if json then
          Format.printf "%a@." Export.pp
            (Cluster.Cluster_sweep.to_json summary)
        else Format.printf "%a" Cluster.Cluster_sweep.pp_summary summary;
        if Cluster.Cluster_sweep.clean summary then 0 else 1
  in
  Cmd.v
    (Cmd.info "cluster" ~doc)
    Term.(
      const run $ cluster_protocol_arg $ n_arg $ t_arg $ g2_arg $ cut_arg
      $ cluster_heal_arg $ seed_arg $ delay_arg $ pessimistic_arg
      $ duration_arg $ drain_arg $ load_arg $ window_arg $ queue_limit_arg
      $ policy_arg $ pause_arg $ crash_arg $ json_arg $ quiet_arg $ seeds_arg
      $ all_policies_arg $ grid_arg $ jobs_arg $ spans_arg $ metrics_arg
      $ metrics_every_arg $ profile_arg)

let soak_cmd =
  let module Cluster = Commit_cluster in
  let doc =
    "Soak the cluster: millions of ticks under a seed-derived randomized \
     fault schedule (partition cut/heal, crash-recover windows, \
     delay-model jitter). Deterministic: the summary and every output \
     file are byte-identical per seed across invocations and \
     $(b,--jobs) values."
  in
  let epochs_arg =
    Arg.(
      value & opt int 16
      & info [ "epochs" ] ~docv:"N"
          ~doc:
            "Independent epochs; each derives its workload seed and fault \
             plan from ($(b,--seed), epoch) alone, so epochs fan across \
             $(b,--jobs) domains and merge in index order.")
  in
  let segment_arg =
    Arg.(
      value & opt span (`T 200)
      & info [ "segment" ] ~docv:"SPAN"
          ~doc:"Arrival window per epoch (e.g. 200T; min 10T).")
  in
  let fault_free_arg =
    Arg.(
      value & flag
      & info [ "fault-free" ]
          ~doc:
            "Disable fault injection. The fault plan is still drawn (and \
             discarded), so the workload seeds match the faulted soak \
             exactly — the bench's baseline leg.")
  in
  let load_arg =
    Arg.(
      value & opt int 50
      & info [ "load" ] ~docv:"TXNS" ~doc:"Offered transactions per 100T.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the summary as JSON.")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Stream windowed telemetry snapshots to $(docv) as JSONL, each \
             record tagged with its epoch; byte-identical across \
             invocations and $(b,--jobs). Render with $(b,tp_sim metrics) \
             $(docv).")
  in
  let metrics_every_arg =
    Arg.(
      value & opt span (`T 50)
      & info [ "metrics-every" ] ~docv:"SPAN"
          ~doc:"Snapshot window width (e.g. 50T, or plain ticks).")
  in
  let run protocol n t seed delay pessimistic epochs segment load fault_free
      json jobs metrics_out metrics_every =
    let t_unit = Vtime.of_int t in
    let resolve = function
      | `T v -> Vtime.of_int (v * t)
      | `Ticks v -> Vtime.of_int v
    in
    let delay =
      match delay with
      | `Minimal -> Delay.minimal
      | `Full -> Delay.full ~t_max:t_unit
      | `Uniform -> Delay.uniform ~t_max:t_unit
    in
    let base =
      {
        (Cluster.Runtime.default_config ~protocol ~n ()) with
        Cluster.Runtime.t_unit;
        mode = (if pessimistic then Network.Pessimistic else Network.Optimistic);
        delay;
        load;
        snapshot_every =
          (match metrics_out with
          | Some _ -> Some (resolve metrics_every)
          | None -> None);
      }
    in
    let config =
      {
        Cluster.Soak.base;
        seed;
        epochs;
        segment = resolve segment;
        faults = not fault_free;
      }
    in
    let jobs = resolve_jobs ~subcommand:"soak" jobs in
    let summary =
      try Cluster.Soak.run ~jobs config
      with Invalid_argument msg ->
        Format.eprintf "invalid soak config: %s@." msg;
        exit 2
    in
    (match metrics_out with
    | None -> ()
    | Some file ->
        let buffer = Buffer.create 4096 in
        List.iter
          (fun line ->
            Buffer.add_string buffer line;
            Buffer.add_char buffer '\n')
          summary.Cluster.Soak.snapshot_lines;
        write_file file (Buffer.contents buffer));
    if json then
      Format.printf "%a@." Export.pp (Cluster.Soak.to_json config summary)
    else Format.printf "%a" Cluster.Soak.pp_summary (config, summary);
    if Cluster.Soak.conserved summary then 0 else 1
  in
  Cmd.v
    (Cmd.info "soak" ~doc)
    Term.(
      const run $ cluster_protocol_arg $ n_arg $ t_arg $ seed_arg $ delay_arg
      $ pessimistic_arg $ epochs_arg $ segment_arg $ load_arg $ fault_free_arg
      $ json_arg $ jobs_arg $ metrics_arg $ metrics_every_arg)

let metrics_cmd =
  let doc =
    "Render a telemetry snapshot stream (the JSONL written by $(b,tp_sim \
     cluster --metrics)) as a per-window timeline table."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Snapshot stream (JSONL), one record per line.")
  in
  let run file =
    let ic = open_in_bin file in
    let lines = ref [] in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then lines := line :: !lines
       done
     with End_of_file -> ());
    close_in ic;
    let records =
      List.mapi
        (fun i line ->
          match Export.of_string line with
          | Ok json -> json
          | Error msg ->
              Format.eprintf "%s:%d: %s@." file (i + 1) msg;
              exit 2)
        (List.rev !lines)
    in
    if records = [] then begin
      Format.eprintf "%s: empty snapshot stream@." file;
      exit 2
    end;
    let int_field json key =
      match Export.member key json with
      | Some (Export.Int i) -> Some i
      | _ -> None
    in
    let nested json outer key =
      Option.bind (Export.member outer json) (Export.member key)
    in
    let sub_int json outer key =
      match nested json outer key with Some (Export.Int i) -> i | _ -> 0
    in
    let header () =
      Format.printf "  %-17s %5s %5s %5s %5s %5s  %5s %5s %5s %5s %5s  %s@."
        "window(T)" "off" "cmt" "abt" "trm" "rej" "infl" "queue" "blkd"
        "sites" "parts" "commit p50/p99(T)"
    in
    let last_run = ref (Some "\000") in
    List.iter
      (fun json ->
        let run_label =
          match Export.member "run" json with
          | Some (Export.String s) -> Some s
          | _ -> None
        in
        if run_label <> !last_run then begin
          (match run_label with
          | Some r -> Format.printf "run %s@." r
          | None -> ());
          last_run := run_label;
          header ()
        end;
        let t_unit =
          match int_field json "t_unit" with
          | Some t when t > 0 -> t
          | _ -> 1
        in
        let in_t ticks = float_of_int ticks /. float_of_int t_unit in
        let since = Option.value (int_field json "since") ~default:0 in
        let upto = Option.value (int_field json "upto") ~default:0 in
        let final =
          match Export.member "final" json with
          | Some (Export.Bool b) -> b
          | _ -> false
        in
        let window =
          Format.asprintf "%g-%g%s" (in_t since) (in_t upto)
            (if final then " fin" else "")
        in
        let latency =
          match nested json "histograms" "latency.commit" with
          | Some h -> (
              match (Export.member "p50" h, Export.member "p99" h) with
              | Some (Export.Int p50), Some (Export.Int p99) ->
                  Format.asprintf "%.1f/%.1f" (in_t p50) (in_t p99)
              | _ -> "-")
          | _ -> "-"
        in
        Format.printf
          "  %-17s %5d %5d %5d %5d %5d  %5d %5d %5d %5d %5d  %s@." window
          (sub_int json "counters" "txn.offered")
          (sub_int json "counters" "txn.committed")
          (sub_int json "counters" "txn.aborted")
          (sub_int json "counters" "txn.termination")
          (sub_int json "counters" "txn.rejected")
          (sub_int json "gauges" "gauge.in_flight")
          (sub_int json "gauges" "gauge.queued")
          (sub_int json "gauges" "gauge.blocked")
          (sub_int json "gauges" "gauge.live_sites")
          (sub_int json "gauges" "gauge.partition_components")
          latency)
      records;
    0
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ file_arg)

let list_cmd =
  let doc = "List available protocols and subcommands." in
  let run () =
    Format.printf "protocols (lib/checker/registry.ml):@.";
    List.iter
      (fun { Registry.name; summary; protocol = (module P : Site.S) } ->
        Format.printf "  %-22s %s %s@." name
          (if P.blocking_by_design then "(blocks under partition)"
           else "(nonblocking)          ")
          summary)
      Registry.all;
    Format.printf "subcommands:@.";
    List.iter
      (fun (name, doc) -> Format.printf "  %-10s %s@." name doc)
      [
        ("analyze", "static FSA analysis (concurrency sets, lemmas, rules)");
        ("cases", "Section 6 case classification for a transient scenario");
        ("check", "self-check of the paper's key claims (CI gate)");
        ( "cluster",
          "long-running cluster under a partition timeline (--seeds + \
           --jobs: parallel sweep)" );
        ("db", "a database workload through a commit protocol");
        ("diagram", "ASCII message-sequence diagram of one scenario");
        ("lemma3", "exhaustive Lemma 3 augmentation search");
        ("list", "this listing");
        ( "metrics",
          "render a telemetry snapshot stream (cluster --metrics) as a table"
        );
        ("run", "one scenario, full trace");
        ( "soak",
          "millions of ticks under a seed-derived fault schedule (--jobs \
           fans epochs)" );
        ("spans", "one scenario as Perfetto-loadable span/flow JSON");
        ("sweep", "a protocol over the default scenario grid (--jobs N)");
      ];
    Format.printf
      "sweeping subcommands take --jobs N (worker domains, default %d \
       here);@."
      (Commit_par.Pool.default_jobs ());
    Format.printf "the summary is byte-identical for every N.@.";
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc = "Termination protocol for simple network partitioning (ICDE 1987)" in
  let info = Cmd.info "tp_sim" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [
         analyze_cmd;
         cases_cmd;
         check_cmd;
         cluster_cmd;
         db_cmd;
         diagram_cmd;
         lemma3_cmd;
         list_cmd;
         metrics_cmd;
         run_cmd;
         soak_cmd;
         spans_cmd;
         sweep_cmd;
       ]))
