(* Tests for the formal FSA layer: the paper's Section 2 model, the
   concurrency-set/sender-set analyses, the Lemma 1/2 checks, and the
   Rule(a)/(b) augmentation. *)

module M = Commit_fsa.Machine
module Catalog = Commit_fsa.Catalog
module Explore = Commit_fsa.Explore
module Analysis = Commit_fsa.Analysis
module Augment = Commit_fsa.Augment

let check = Alcotest.check

let st id kind = { M.id; kind }

let tr ?(votes_yes = false) source guard target actions =
  { M.source; guard; target; actions; votes_yes }

(* ------------------------------------------------------------------ *)
(* Machine validation                                                  *)
(* ------------------------------------------------------------------ *)

let tiny_master =
  {
    M.role = M.Master;
    initial = "q1";
    states = [ st "q1" M.Initial; st "c1" M.Commit; st "a1" M.Abort ];
    transitions = [ tr "q1" M.Start "c1" [ M.Send_slaves "go" ] ];
  }

let tiny_slave =
  {
    M.role = M.Slave;
    initial = "q";
    states = [ st "q" M.Initial; st "c" M.Commit; st "a" M.Abort ];
    transitions = [ tr "q" (M.Recv "go") "c" [] ];
  }

let test_validate_ok () =
  match M.validate { M.name = "tiny"; master = tiny_master; slave = tiny_slave } with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let expect_invalid label protocol =
  match M.validate protocol with
  | Ok () -> Alcotest.fail (label ^ ": expected a validation error")
  | Error _ -> ()

let test_validate_duplicate_state () =
  expect_invalid "dup"
    {
      M.name = "dup";
      master =
        { tiny_master with M.states = st "q1" M.Initial :: tiny_master.M.states };
      slave = tiny_slave;
    }

let test_validate_unknown_target () =
  expect_invalid "unknown target"
    {
      M.name = "bad";
      master =
        {
          tiny_master with
          M.transitions = [ tr "q1" M.Start "nowhere" [] ];
        };
      slave = tiny_slave;
    }

let test_validate_start_on_slave () =
  expect_invalid "start on slave"
    {
      M.name = "bad";
      master = tiny_master;
      slave = { tiny_slave with M.transitions = [ tr "q" M.Start "c" [] ] };
    }

let test_validate_wrong_direction () =
  expect_invalid "slave sending to slaves"
    {
      M.name = "bad";
      master = tiny_master;
      slave =
        {
          tiny_slave with
          M.transitions = [ tr "q" (M.Recv "go") "c" [ M.Send_slaves "x" ] ];
        };
    }

let test_catalog_all_valid () =
  List.iter
    (fun p ->
      match M.validate p with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    Catalog.all;
  check Alcotest.int "six protocols" 6 (List.length Catalog.all);
  check Alcotest.bool "find 3pc" true (Catalog.find "3pc" <> None);
  check Alcotest.bool "find junk" true (Catalog.find "junk" = None)

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

let test_explore_2pc_counts () =
  let gs = Explore.reachable Catalog.two_phase ~n:2 in
  check Alcotest.int "2pc n=2 reachable" 7 (List.length gs);
  let gs3 = Explore.reachable Catalog.two_phase ~n:3 in
  check Alcotest.int "2pc n=3 reachable" 22 (List.length gs3)

let test_explore_terminals_atomic () =
  (* In failure-free execution no catalogued protocol reaches a mixed
     terminal state. *)
  List.iter
    (fun p ->
      List.iter
        (fun n ->
          let a = Analysis.analyze p ~n in
          let outcomes = Analysis.terminal_outcomes a in
          check Alcotest.bool
            (Printf.sprintf "%s n=%d has no mixed outcome" p.M.name n)
            false
            (List.mem `Mixed outcomes);
          check Alcotest.bool
            (Printf.sprintf "%s n=%d can commit" p.M.name n)
            true
            (List.mem `All_commit outcomes);
          check Alcotest.bool
            (Printf.sprintf "%s n=%d can abort" p.M.name n)
            true
            (List.mem `All_abort outcomes))
        [ 2; 3 ])
    Catalog.all

let test_explore_state_bound () =
  let raised =
    try
      ignore (Explore.reachable ~max_states:3 Catalog.three_phase ~n:3);
      false
    with Failure _ -> true
  in
  check Alcotest.bool "bound enforced" true raised

(* ------------------------------------------------------------------ *)
(* Analysis: the paper's structural facts                              *)
(* ------------------------------------------------------------------ *)

let kinds_of a s = Analysis.concurrent_kinds a s

let test_2pc_violates_lemmas () =
  let a = Analysis.analyze Catalog.two_phase ~n:3 in
  (* Section 3, fact 1: the slave wait state is concurrent with both a
     commit and an abort. *)
  let kinds = kinds_of a (M.Slave, "w") in
  check Alcotest.bool "commit in C(w)" true (List.mem M.Commit kinds);
  check Alcotest.bool "abort in C(w)" true (List.mem M.Abort kinds);
  check Alcotest.bool "lemma1 violated" true (Analysis.lemma1_violations a <> []);
  (* Section 3, fact 2: w is noncommittable yet concurrent with a
     commit. *)
  check Alcotest.bool "w noncommittable" false (Analysis.committable a (M.Slave, "w"));
  check Alcotest.bool "lemma2 violated" true
    (List.mem (M.Slave, "w") (Analysis.lemma2_violations a));
  check Alcotest.bool "overall" false (Analysis.satisfies_lemmas a)

let test_3pc_satisfies_lemmas () =
  let a = Analysis.analyze Catalog.three_phase ~n:3 in
  check Alcotest.bool "lemma1+2 hold" true (Analysis.satisfies_lemmas a);
  (* C(w) has an abort but no commit; C(p) has a commit but no abort. *)
  let w = kinds_of a (M.Slave, "w") and p = kinds_of a (M.Slave, "p") in
  check Alcotest.bool "no commit in C(w)" false (List.mem M.Commit w);
  check Alcotest.bool "abort in C(w)" true (List.mem M.Abort w);
  check Alcotest.bool "commit in C(p)" true (List.mem M.Commit p);
  check Alcotest.bool "no abort in C(p)" false (List.mem M.Abort p);
  (* Committability: p yes, w no. *)
  check Alcotest.bool "p committable" true (Analysis.committable a (M.Slave, "p"));
  check Alcotest.bool "w noncommittable" false (Analysis.committable a (M.Slave, "w"))

let test_ext2pc_two_site_vs_multisite () =
  let a2 = Analysis.analyze Catalog.extended_two_phase ~n:2 in
  check Alcotest.bool "n=2 satisfies lemmas" true (Analysis.satisfies_lemmas a2);
  let a3 = Analysis.analyze Catalog.extended_two_phase ~n:3 in
  check Alcotest.bool "n=3 violates lemmas" false (Analysis.satisfies_lemmas a3);
  (* The violation appears exactly at the slave wait state: with a third
     site, one slave can be in w while another has already committed. *)
  check Alcotest.bool "w is the violation" true
    (List.mem (M.Slave, "w") (Analysis.lemma1_violations a3))

let test_thm10_candidates () =
  (* Theorem 10 preconditions: 3PC (plain and Fig. 8) and quorum 3PC
     qualify; 2PC and extended 2PC (multisite) do not. *)
  let sat name n =
    match Catalog.find name with
    | None -> Alcotest.fail ("missing " ^ name)
    | Some p -> Analysis.satisfies_lemmas (Analysis.analyze p ~n)
  in
  check Alcotest.bool "3pc ok" true (sat "3pc" 3);
  check Alcotest.bool "3pc-fig8 ok" true (sat "3pc-fig8" 3);
  check Alcotest.bool "quorum3pc ok" true (sat "quorum3pc" 3);
  check Alcotest.bool "2pc fails" false (sat "2pc" 3);
  check Alcotest.bool "ext2pc fails at n=3" false (sat "ext2pc" 3)

let test_sender_sets () =
  let a = Analysis.analyze Catalog.three_phase ~n:3 in
  (* The slave wait state receives prepare/abort, both sent by master
     transitions out of w1. *)
  let senders = Analysis.sender_set a (M.Slave, "w") in
  check Alcotest.bool "w1 in S(w)" true (List.mem (M.Master, "w1") senders);
  (* The slave p state receives commit (from p1) and abort (from w1). *)
  let senders_p = Analysis.sender_set a (M.Slave, "p") in
  check Alcotest.bool "p1 in S(p)" true (List.mem (M.Master, "p1") senders_p);
  check Alcotest.bool "w1 in S(p)" true (List.mem (M.Master, "w1") senders_p);
  (* The master w1 state receives yes/no, sent by slave q transitions. *)
  let senders_w1 = Analysis.sender_set a (M.Master, "w1") in
  check Alcotest.bool "q in S(w1)" true (List.mem (M.Slave, "q") senders_w1)

(* ------------------------------------------------------------------ *)
(* Rule(a)/(b) augmentation                                            *)
(* ------------------------------------------------------------------ *)

let assignment a state =
  match Augment.assignment_for a state with
  | Some x -> x
  | None ->
      Alcotest.fail
        (Format.asprintf "no assignment for %a" Analysis.pp_site_state state)

let test_augment_2pc_two_site () =
  let aug = Augment.apply_rules (Analysis.analyze Catalog.two_phase ~n:2) in
  let w1 = assignment aug (M.Master, "w1") in
  check Alcotest.bool "w1 timeout abort" true (w1.Augment.timeout = Augment.To_abort);
  (* The classical two-site result: the slave in w times out to commit,
     because the master may already have committed. *)
  let w = assignment aug (M.Slave, "w") in
  check Alcotest.bool "w timeout commit" true (w.Augment.timeout = Augment.To_commit);
  check Alcotest.bool "w UD abort" true
    (w.Augment.on_undeliverable = Some Augment.To_abort)

let test_augment_ext2pc_two_site () =
  let aug =
    Augment.apply_rules (Analysis.analyze Catalog.extended_two_phase ~n:2)
  in
  let p1 = assignment aug (M.Master, "p1") in
  check Alcotest.bool "p1 timeout commit" true
    (p1.Augment.timeout = Augment.To_commit);
  check Alcotest.bool "p1 UD abort" true
    (p1.Augment.on_undeliverable = Some Augment.To_abort);
  let w = assignment aug (M.Slave, "w") in
  check Alcotest.bool "w timeout abort" true (w.Augment.timeout = Augment.To_abort)

let test_augment_3pc () =
  let aug = Augment.apply_rules (Analysis.analyze Catalog.three_phase ~n:3) in
  let w = assignment aug (M.Slave, "w") in
  let p = assignment aug (M.Slave, "p") in
  let p1 = assignment aug (M.Master, "p1") in
  check Alcotest.bool "slave w -> abort" true (w.Augment.timeout = Augment.To_abort);
  check Alcotest.bool "slave p -> commit" true (p.Augment.timeout = Augment.To_commit);
  (* Mechanical Rule(a): C(p1) holds no commit state, so p1 times out to
     abort — the "strict" strawman; see Three_phase_rules. *)
  check Alcotest.bool "master p1 -> abort" true
    (p1.Augment.timeout = Augment.To_abort);
  (* The slave initial state waits for xact whose sender (q1) never
     times out: Rule(b) has no evidence — reported as ambiguous. *)
  let ambiguous = Augment.ambiguous aug in
  check Alcotest.bool "q ambiguous" true
    (List.exists (fun a -> a.Augment.state = (M.Slave, "q")) ambiguous)

(* ------------------------------------------------------------------ *)
(* Cross-validation: the timed actors land in FSA-reachable terminals  *)
(* ------------------------------------------------------------------ *)

let test_actors_land_in_fsa_terminals () =
  (* For failure-free executions, the executable 2PC and 3PC actors use
     the same state names as their FSA counterparts; every final global
     state the simulator produces must be a terminal global state the
     formal exploration reaches. *)
  let t_unit = Vtime.of_int 1000 in
  let pairs : (Site.packed * M.t) list =
    [
      ((module Two_phase), Catalog.two_phase);
      ((module Three_phase), Catalog.three_phase);
    ]
  in
  List.iter
    (fun ((module P : Site.S), fsa) ->
      List.iter
        (fun n ->
          List.iter
            (fun votes ->
              let base = Runner.default_config ~n ~t_unit () in
              let config =
                { base with Runner.votes; trace_enabled = false }
              in
              let result = Runner.run (module P) config in
              let finals =
                Array.map
                  (fun (s : Runner.site_result) -> s.final_state)
                  result.sites
              in
              let reachable = Explore.reachable fsa ~n in
              let matching =
                List.exists
                  (fun (g : Explore.global) ->
                    Explore.is_terminal fsa g && g.locals = finals)
                  reachable
              in
              check Alcotest.bool
                (Printf.sprintf "%s n=%d finals %s reachable in FSA" P.name n
                   (String.concat "," (Array.to_list finals)))
                true matching)
            [
              [];
              [ (Site_id.of_int 2, false) ];
              [ (Site_id.of_int n, false) ];
            ])
        [ 2; 3 ])
    pairs

(* ------------------------------------------------------------------ *)
(* DOT rendering                                                       *)
(* ------------------------------------------------------------------ *)

let test_to_dot () =
  let dot = M.to_dot Catalog.three_phase in
  let contains needle =
    let nh = String.length dot and nn = String.length needle in
    let rec scan i =
      if i + nn > nh then false
      else if String.sub dot i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  check Alcotest.bool "digraph header" true (contains "digraph \"3pc\"");
  check Alcotest.bool "master cluster" true (contains "cluster_master");
  check Alcotest.bool "slave cluster" true (contains "cluster_slave");
  check Alcotest.bool "commit shape" true
    (contains "master_c1 [label=\"c1\", shape=doublecircle]");
  check Alcotest.bool "abort shape" true (contains "shape=doubleoctagon");
  check Alcotest.bool "prepare edge" true
    (contains "master_w1 -> master_p1 [label=\"all yes / !prepare\"]");
  check Alcotest.bool "slave vote edge" true
    (contains "slave_q -> slave_w [label=\"xact / !yes->m\"]");
  (* every catalogued protocol renders without raising *)
  List.iter (fun p -> ignore (M.to_dot p)) Catalog.all

let () =
  Alcotest.run "commit_fsa"
    [
      ( "machine",
        [
          Alcotest.test_case "valid protocol accepted" `Quick test_validate_ok;
          Alcotest.test_case "duplicate state rejected" `Quick
            test_validate_duplicate_state;
          Alcotest.test_case "unknown target rejected" `Quick
            test_validate_unknown_target;
          Alcotest.test_case "start on slave rejected" `Quick
            test_validate_start_on_slave;
          Alcotest.test_case "wrong action direction rejected" `Quick
            test_validate_wrong_direction;
          Alcotest.test_case "catalog validates" `Quick test_catalog_all_valid;
        ] );
      ( "explore",
        [
          Alcotest.test_case "2pc state counts" `Quick test_explore_2pc_counts;
          Alcotest.test_case "terminal outcomes atomic" `Slow
            test_explore_terminals_atomic;
          Alcotest.test_case "state bound enforced" `Quick
            test_explore_state_bound;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "2pc violates Lemma 1 and 2" `Quick
            test_2pc_violates_lemmas;
          Alcotest.test_case "3pc satisfies Lemma 1 and 2" `Quick
            test_3pc_satisfies_lemmas;
          Alcotest.test_case "ext2pc: resilient shape at n=2 only" `Quick
            test_ext2pc_two_site_vs_multisite;
          Alcotest.test_case "Theorem 10 candidates" `Quick test_thm10_candidates;
          Alcotest.test_case "sender sets" `Quick test_sender_sets;
        ] );
      ("dot", [ Alcotest.test_case "graphviz rendering" `Quick test_to_dot ]);
      ( "cross-validation",
        [
          Alcotest.test_case "actor finals are FSA terminals" `Quick
            test_actors_land_in_fsa_terminals;
        ] );
      ( "augment",
        [
          Alcotest.test_case "2pc two-site rules" `Quick test_augment_2pc_two_site;
          Alcotest.test_case "ext2pc two-site rules" `Quick
            test_augment_ext2pc_two_site;
          Alcotest.test_case "3pc rules and ambiguity" `Quick test_augment_3pc;
        ] );
    ]
