(* Tests for the single-site durability substrate (lib/storage):
   WAL encode/decode, the KV store, and the Section 2 crash-recovery
   scheme with idempotent redo. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Wal                                                                 *)
(* ------------------------------------------------------------------ *)

let record_t : Wal.record Alcotest.testable = Alcotest.testable Wal.pp Wal.equal

let test_wal_roundtrip_basics () =
  let records =
    [
      Wal.Begin { tid = 1 };
      Wal.Prepared { tid = 42 };
      Wal.Abort_log { tid = 7 };
      Wal.End { tid = 3 };
      Wal.Commit_log { tid = 9; updates = [] };
      Wal.Commit_log
        {
          tid = 9;
          updates =
            [ { Wal.key = "a"; value = "1" }; { Wal.key = "b"; value = "2" } ];
        };
    ]
  in
  List.iter
    (fun r ->
      match Wal.decode (Wal.encode r) with
      | Ok r' -> check record_t "roundtrip" r r'
      | Error e -> Alcotest.fail e)
    records

let test_wal_escaping () =
  let nasty =
    Wal.Commit_log
      {
        tid = 5;
        updates =
          [
            { Wal.key = "k=ey;with nasty%chars"; value = "v\nwith = stuff;" };
            { Wal.key = ""; value = "" };
          ];
      }
  in
  let line = Wal.encode nasty in
  check Alcotest.bool "single line" true (not (String.contains line '\n'));
  match Wal.decode line with
  | Ok r -> check record_t "nasty roundtrip" nasty r
  | Error e -> Alcotest.fail e

let test_wal_decode_errors () =
  let bad = [ "nonsense"; "begin x"; "commit"; "prepared"; "commit 3 a" ] in
  List.iter
    (fun line ->
      match Wal.decode line with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not decode" line)
      | Error _ -> ())
    bad

let wal_roundtrip_property =
  QCheck.Test.make ~name:"Wal encode/decode roundtrip (arbitrary updates)"
    QCheck.(
      pair (int_range 1 100000) (list (pair printable_string printable_string)))
    (fun (tid, kvs) ->
      let updates = List.map (fun (key, value) -> { Wal.key; value }) kvs in
      let r = Wal.Commit_log { tid; updates } in
      match Wal.decode (Wal.encode r) with
      | Ok r' -> Wal.equal r r'
      | Error _ -> false)

let test_wal_tid_of () =
  check Alcotest.int "tid" 4 (Wal.tid_of (Wal.Prepared { tid = 4 }));
  check Alcotest.int "tid" 8 (Wal.tid_of (Wal.Commit_log { tid = 8; updates = [] }))

(* ------------------------------------------------------------------ *)
(* Kv                                                                  *)
(* ------------------------------------------------------------------ *)

let test_kv_basics () =
  let kv = Kv.create () in
  check Alcotest.(option string) "missing" None (Kv.get kv "x");
  Kv.set kv ~key:"x" ~value:"1";
  Kv.set kv ~key:"y" ~value:"2";
  Kv.set kv ~key:"x" ~value:"3";
  check Alcotest.(option string) "overwritten" (Some "3") (Kv.get kv "x");
  check Alcotest.int "cardinal" 2 (Kv.cardinal kv);
  check Alcotest.int "applications" 3 (Kv.applications kv);
  Kv.remove kv "x";
  check Alcotest.(option string) "removed" None (Kv.get kv "x");
  check Alcotest.(list string) "keys sorted" [ "y" ] (Kv.keys kv)

let test_kv_snapshot_restore () =
  let kv = Kv.create () in
  Kv.set kv ~key:"b" ~value:"2";
  Kv.set kv ~key:"a" ~value:"1";
  let snap = Kv.snapshot kv in
  check Alcotest.(list (pair string string)) "sorted snapshot"
    [ ("a", "1"); ("b", "2") ]
    snap;
  let kv' = Kv.restore snap in
  check Alcotest.bool "equal contents" true (Kv.equal_contents kv kv')

let kv_set_idempotent =
  QCheck.Test.make ~name:"Kv absolute writes are idempotent"
    QCheck.(list (pair small_string small_string))
    (fun kvs ->
      let a = Kv.create () and b = Kv.create () in
      List.iter (fun (key, value) -> Kv.set a ~key ~value) kvs;
      List.iter (fun (key, value) -> Kv.set b ~key ~value) kvs;
      List.iter (fun (key, value) -> Kv.set b ~key ~value) kvs;
      (* applied twice *)
      Kv.equal_contents a b)

(* ------------------------------------------------------------------ *)
(* Durable_site: the Section 2 scheme                                  *)
(* ------------------------------------------------------------------ *)

let updates = [ { Wal.key = "a"; value = "1" }; { Wal.key = "b"; value = "2" } ]

let test_happy_path_commit () =
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  check Alcotest.bool "active" true (Durable_site.status s ~tid:1 = `Active);
  Durable_site.stage s ~tid:1 updates;
  check Alcotest.(option string) "not yet visible" None (Durable_site.read s "a");
  Durable_site.commit s ~tid:1 ();
  check Alcotest.(option string) "a" (Some "1") (Durable_site.read s "a");
  check Alcotest.(option string) "b" (Some "2") (Durable_site.read s "b");
  check Alcotest.bool "ended" true (Durable_site.status s ~tid:1 = `Ended);
  (* WAL shape: begin, commit, end. *)
  match Durable_site.wal_records s with
  | [ Wal.Begin _; Wal.Commit_log _; Wal.End _ ] -> ()
  | other ->
      Alcotest.fail
        (Format.asprintf "unexpected WAL: %a"
           (Format.pp_print_list Wal.pp)
           other)

let test_abort_discards () =
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  Durable_site.stage s ~tid:1 updates;
  Durable_site.abort s ~tid:1;
  check Alcotest.(option string) "nothing applied" None (Durable_site.read s "a");
  check Alcotest.bool "aborted" true (Durable_site.status s ~tid:1 = `Aborted)

let test_double_begin_rejected () =
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  let raised =
    try
      Durable_site.begin_transaction s ~tid:1;
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "double begin raises" true raised

let test_commit_unknown_rejected () =
  let s = Durable_site.create () in
  let raised =
    try
      Durable_site.commit s ~tid:9 ();
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "unknown commit raises" true raised

let test_crash_before_commit_log_aborts () =
  (* Paper: "If failures occur at any time before the commit log is
     stored, then immediately upon recovery the site will abort." *)
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  Durable_site.stage s ~tid:1 updates;
  Durable_site.crash s;
  let report = Durable_site.recover s in
  check Alcotest.(list int) "aborted on recovery" [ 1 ] report.aborted;
  check Alcotest.(list int) "nothing redone" [] report.redone;
  check Alcotest.(option string) "no effects" None (Durable_site.read s "a");
  check Alcotest.bool "aborted status" true
    (Durable_site.status s ~tid:1 = `Aborted)

let test_crash_mid_apply_redoes () =
  (* Paper: "If failures occur after the commit log is stored but
     before the updates are finished, all the updates will be applied
     again when the site recovers." *)
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  Durable_site.stage s ~tid:1 updates;
  Durable_site.commit s ~crash_after:1 ~tid:1 ();
  (* Torn state: a applied, b not, no End. *)
  check Alcotest.(option string) "a applied" (Some "1") (Durable_site.read s "a");
  check Alcotest.(option string) "b missing" None (Durable_site.read s "b");
  check Alcotest.bool "committed, not ended" true
    (Durable_site.status s ~tid:1 = `Committed);
  let before = Kv.applications (Durable_site.database s) in
  let report = Durable_site.recover s in
  check Alcotest.(list int) "redone" [ 1 ] report.redone;
  check Alcotest.(option string) "b now applied" (Some "2")
    (Durable_site.read s "b");
  check Alcotest.bool "ended" true (Durable_site.status s ~tid:1 = `Ended);
  (* Idempotence at work: "a" was re-applied harmlessly. *)
  check Alcotest.int "both updates replayed" (before + 2)
    (Kv.applications (Durable_site.database s));
  (* A second recovery is a no-op. *)
  let report2 = Durable_site.recover s in
  check Alcotest.(list int) "nothing further" [] report2.redone

let test_prepared_in_doubt () =
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  Durable_site.stage s ~tid:1 updates;
  Durable_site.prepare s ~tid:1;
  Durable_site.crash s;
  let report = Durable_site.recover s in
  check Alcotest.(list int) "in doubt" [ 1 ] report.in_doubt;
  check Alcotest.(list int) "not aborted" [] report.aborted;
  check Alcotest.bool "still prepared" true
    (Durable_site.status s ~tid:1 = `Prepared)

let test_crash_loses_staged_updates () =
  let s = Durable_site.create () in
  Durable_site.begin_transaction s ~tid:1;
  Durable_site.stage s ~tid:1 updates;
  Durable_site.crash s;
  check Alcotest.int "volatile staging gone" 0
    (List.length (Durable_site.staged s ~tid:1))

let test_multiple_transactions_recovery () =
  let s = Durable_site.create () in
  (* t1 commits cleanly; t2 commits and crashes mid-apply; t3 is
     prepared; t4 only began. *)
  Durable_site.begin_transaction s ~tid:1;
  Durable_site.stage s ~tid:1 [ { Wal.key = "one"; value = "1" } ];
  Durable_site.commit s ~tid:1 ();
  Durable_site.begin_transaction s ~tid:2;
  Durable_site.stage s ~tid:2
    [ { Wal.key = "two"; value = "2" }; { Wal.key = "two'"; value = "2" } ];
  Durable_site.begin_transaction s ~tid:3;
  Durable_site.stage s ~tid:3 [ { Wal.key = "three"; value = "3" } ];
  Durable_site.prepare s ~tid:3;
  Durable_site.begin_transaction s ~tid:4;
  Durable_site.commit s ~crash_after:0 ~tid:2 ();
  let report = Durable_site.recover s in
  check Alcotest.(list int) "redone t2" [ 2 ] report.redone;
  check Alcotest.(list int) "in doubt t3" [ 3 ] report.in_doubt;
  check Alcotest.(list int) "aborted t4" [ 4 ] report.aborted;
  check Alcotest.(option string) "t1 intact" (Some "1") (Durable_site.read s "one");
  check Alcotest.(option string) "t2 completed" (Some "2")
    (Durable_site.read s "two'")

let recovery_always_completes_committed =
  QCheck.Test.make ~count:200
    ~name:"recovery completes every committed transaction regardless of crash point"
    QCheck.(pair (int_range 0 5) (list (pair small_string printable_string)))
    (fun (crash_after, kvs) ->
      let kvs = List.filter (fun (k, _) -> k <> "") kvs in
      let updates = List.map (fun (key, value) -> { Wal.key; value }) kvs in
      let s = Durable_site.create () in
      Durable_site.begin_transaction s ~tid:1;
      Durable_site.stage s ~tid:1 updates;
      Durable_site.commit s ~crash_after ~tid:1 ();
      ignore (Durable_site.recover s);
      (* The database must now reflect every update. *)
      List.for_all
        (fun (u : Wal.update) -> Durable_site.read s u.key <> None)
        updates
      && Durable_site.status s ~tid:1 = `Ended)

(* Crash-point equivalence: committing with a crash injected after any
   prefix of the updates, then recovering, must land on exactly the
   database an uninterrupted commit produces. *)
let crash_point_equivalence =
  QCheck.Test.make ~count:200
    ~name:"commit ~crash_after:k + recover = uninterrupted commit, for every k"
    (* Bounded size: the property replays the commit once per prefix
       point, so an unbounded list makes the test quadratic in the
       update count without covering anything new. *)
    QCheck.(list_of_size Gen.(int_bound 12) (pair small_string printable_string))
    (fun kvs ->
      let kvs = List.filter (fun (k, _) -> k <> "") kvs in
      let updates = List.map (fun (key, value) -> { Wal.key; value }) kvs in
      let run crash_after =
        let s = Durable_site.create () in
        Durable_site.begin_transaction s ~tid:1;
        Durable_site.stage s ~tid:1 updates;
        Durable_site.prepare s ~tid:1;
        (match crash_after with
        | None -> Durable_site.commit s ~tid:1 ()
        | Some k ->
            Durable_site.commit s ~crash_after:k ~tid:1 ();
            ignore (Durable_site.recover s));
        Kv.snapshot (Durable_site.database s)
      in
      let reference = run None in
      List.init
        (List.length updates + 1)
        (fun k -> run (Some k) = reference)
      |> List.for_all Fun.id)

(* Recovery is a fixpoint after the first call: a second (and third)
   recover changes nothing — same database, same report, in-doubt
   transactions still in doubt. *)
let recover_idempotent =
  QCheck.Test.make ~count:200
    ~name:"recover twice = recover once (same db, same report)"
    QCheck.(pair (int_range 0 3) (int_bound 2))
    (fun (crash_after, shape) ->
      let s = Durable_site.create () in
      (* t1 commits with a mid-apply crash; t2 is in doubt; t3 varies. *)
      Durable_site.begin_transaction s ~tid:1;
      Durable_site.stage s ~tid:1
        [ { Wal.key = "a"; value = "1" }; { Wal.key = "b"; value = "2" } ];
      Durable_site.begin_transaction s ~tid:2;
      Durable_site.stage s ~tid:2 [ { Wal.key = "c"; value = "3" } ];
      Durable_site.prepare s ~tid:2;
      Durable_site.begin_transaction s ~tid:3;
      (match shape with
      | 0 -> ()
      | 1 -> Durable_site.abort s ~tid:3
      | _ -> Durable_site.commit s ~tid:3 ());
      Durable_site.commit s ~crash_after ~tid:1 ();
      let r1 = Durable_site.recover s in
      let db1 = Kv.snapshot (Durable_site.database s) in
      let r2 = Durable_site.recover s in
      let db2 = Kv.snapshot (Durable_site.database s) in
      let r3 = Durable_site.recover s in
      r1.Durable_site.in_doubt = [ 2 ]
      && r2.Durable_site.in_doubt = [ 2 ]
      && r2 = r3 && db1 = db2
      && r2.Durable_site.redone = [] && r2.Durable_site.aborted = [])

(* ------------------------------------------------------------------ *)
(* Model-based testing: random op sequences vs. a reference model      *)
(* ------------------------------------------------------------------ *)

type op = O_begin | O_stage | O_prepare | O_commit | O_abort | O_crash | O_recover

let op_gen =
  QCheck.Gen.oneofl
    [ O_begin; O_stage; O_prepare; O_commit; O_abort; O_crash; O_recover ]

(* The reference model tracks, per transaction: its WAL-visible status
   and whether its updates must be in the database at quiescence. *)
type model_status = M_none | M_active | M_prepared | M_committed | M_aborted

let durable_model_property =
  QCheck.Test.make ~count:300
    ~name:"Durable_site agrees with a reference model on random op sequences"
    QCheck.(make ~print:(fun l -> string_of_int (List.length l))
              Gen.(list_size (int_bound 40) (pair op_gen (int_bound 2))))
    (fun ops ->
      let store = Durable_site.create () in
      let statuses = Array.make 3 M_none in
      let staged = Array.make 3 false in
      let ok = ref true in
      let expect_invalid f =
        match f () with
        | () -> ok := false (* the store accepted an op the model forbids *)
        | exception Invalid_argument _ -> ()
      in
      List.iter
        (fun (op, i) ->
          let tid = i + 1 in
          match (op, statuses.(i)) with
          | O_begin, M_none ->
              Durable_site.begin_transaction store ~tid;
              statuses.(i) <- M_active
          | O_begin, _ ->
              expect_invalid (fun () -> Durable_site.begin_transaction store ~tid)
          | O_stage, (M_active | M_prepared) ->
              Durable_site.stage store ~tid
                [ { Wal.key = Printf.sprintf "k%d" tid; value = string_of_int tid } ];
              staged.(i) <- true
          | O_stage, _ ->
              expect_invalid (fun () -> Durable_site.stage store ~tid [])
          | O_prepare, M_active ->
              Durable_site.prepare store ~tid;
              statuses.(i) <- M_prepared
          | O_prepare, _ ->
              expect_invalid (fun () -> Durable_site.prepare store ~tid)
          | O_commit, (M_active | M_prepared) ->
              Durable_site.commit store ~tid ();
              statuses.(i) <- M_committed
          | O_commit, _ ->
              expect_invalid (fun () -> Durable_site.commit store ~tid ())
          | O_abort, (M_active | M_prepared) ->
              Durable_site.abort store ~tid;
              statuses.(i) <- M_aborted;
              staged.(i) <- false
          | O_abort, _ ->
              expect_invalid (fun () -> Durable_site.abort store ~tid)
          | O_crash, _ ->
              Durable_site.crash store;
              Array.iteri (fun j _ -> staged.(j) <- false) staged
          | O_recover, _ ->
              let report = Durable_site.recover store in
              (* recovery aborts actives, leaves prepared in doubt *)
              List.iter
                (fun tid -> statuses.(tid - 1) <- M_aborted)
                report.Durable_site.aborted;
              Array.iteri (fun j _ -> staged.(j) <- false) staged)
        ops;
      (* Final agreement: WAL status matches the model; committed
         transactions with staged updates reached the database. *)
      Array.iteri
        (fun i model ->
          let tid = i + 1 in
          let actual = Durable_site.status store ~tid in
          let agrees =
            match (model, actual) with
            | M_none, `Unknown
            | M_active, `Active
            | M_prepared, `Prepared
            | M_aborted, `Aborted
            | M_committed, (`Committed | `Ended) ->
                true
            | _, _ -> false
          in
          if not agrees then ok := false;
          if model = M_committed && staged.(i) then
            if Durable_site.read store (Printf.sprintf "k%d" tid) = None then
              ok := false)
        statuses;
      !ok)

let () =
  Alcotest.run "commit_storage"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_wal_roundtrip_basics;
          Alcotest.test_case "escaping" `Quick test_wal_escaping;
          Alcotest.test_case "decode errors" `Quick test_wal_decode_errors;
          Alcotest.test_case "tid_of" `Quick test_wal_tid_of;
          qtest wal_roundtrip_property;
        ] );
      ( "kv",
        [
          Alcotest.test_case "basics" `Quick test_kv_basics;
          Alcotest.test_case "snapshot/restore" `Quick test_kv_snapshot_restore;
          qtest kv_set_idempotent;
        ] );
      ( "durable_site",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path_commit;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "double begin rejected" `Quick
            test_double_begin_rejected;
          Alcotest.test_case "unknown commit rejected" `Quick
            test_commit_unknown_rejected;
          Alcotest.test_case "crash before commit log aborts" `Quick
            test_crash_before_commit_log_aborts;
          Alcotest.test_case "crash mid-apply redoes" `Quick
            test_crash_mid_apply_redoes;
          Alcotest.test_case "prepared is in doubt" `Quick test_prepared_in_doubt;
          Alcotest.test_case "crash loses staged updates" `Quick
            test_crash_loses_staged_updates;
          Alcotest.test_case "multi-transaction recovery" `Quick
            test_multiple_transactions_recovery;
          qtest recovery_always_completes_committed;
          qtest crash_point_equivalence;
          qtest recover_idempotent;
          qtest durable_model_property;
        ] );
    ]
