(* Unit and property tests for the network substrate (lib/net). *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

let site = Site_id.of_int

(* ------------------------------------------------------------------ *)
(* Site_id                                                             *)
(* ------------------------------------------------------------------ *)

let test_site_id_basics () =
  check Alcotest.int "roundtrip" 4 (Site_id.to_int (site 4));
  check Alcotest.bool "master is 1" true (Site_id.is_master Site_id.master);
  check Alcotest.bool "site 2 not master" false (Site_id.is_master (site 2));
  check Alcotest.int "all" 5 (List.length (Site_id.all ~n:5));
  check Alcotest.int "slaves" 4 (List.length (Site_id.slaves ~n:5));
  check Alcotest.bool "slaves exclude master" false
    (List.exists Site_id.is_master (Site_id.slaves ~n:5));
  check Alcotest.string "pp master" "master"
    (Format.asprintf "%a" Site_id.pp Site_id.master);
  check Alcotest.string "pp slave" "site3" (Format.asprintf "%a" Site_id.pp (site 3));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Site_id.of_int: sites are numbered from 1") (fun () ->
      ignore (site 0))

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let g2 ints = Site_id.set_of_ints ints

let test_partition_validation () =
  let expect_invalid label f =
    let raised = try ignore (f ()); false with Invalid_argument _ -> true in
    check Alcotest.bool label true raised
  in
  expect_invalid "empty G2" (fun () ->
      Partition.make ~group2:Site_id.Set.empty ~starts_at:Vtime.zero ~n:3 ());
  expect_invalid "master in G2" (fun () ->
      Partition.make ~group2:(g2 [ 1; 2 ]) ~starts_at:Vtime.zero ~n:3 ());
  expect_invalid "site out of range" (fun () ->
      Partition.make ~group2:(g2 [ 9 ]) ~starts_at:Vtime.zero ~n:3 ());
  expect_invalid "heal before start" (fun () ->
      Partition.make ~group2:(g2 [ 2 ]) ~starts_at:(Vtime.of_int 10)
        ~heals_at:(Vtime.of_int 10) ~n:3 ())

let test_partition_membership () =
  let p = Partition.make ~group2:(g2 [ 3 ]) ~starts_at:(Vtime.of_int 100) ~n:3 () in
  check Alcotest.bool "inactive before" false
    (Partition.active_at p (Vtime.of_int 99));
  check Alcotest.bool "active at start" true
    (Partition.active_at p (Vtime.of_int 100));
  check Alcotest.bool "separated 1-3" true
    (Partition.separated p ~at:(Vtime.of_int 100) (site 1) (site 3));
  check Alcotest.bool "not separated 1-2" false
    (Partition.separated p ~at:(Vtime.of_int 100) (site 1) (site 2));
  check Alcotest.bool "not separated before" false
    (Partition.separated p ~at:(Vtime.of_int 50) (site 1) (site 3));
  check Alcotest.bool "side" true (Partition.side p (site 3) = `G2);
  check Alcotest.int "group1 size" 2
    (Site_id.Set.cardinal (Partition.group1 p ~n:3))

let test_partition_transient () =
  let p =
    Partition.make ~group2:(g2 [ 2 ]) ~starts_at:(Vtime.of_int 100)
      ~heals_at:(Vtime.of_int 200) ~n:3 ()
  in
  check Alcotest.bool "transient" true (Partition.is_transient p);
  check Alcotest.bool "active during" true (Partition.active_at p (Vtime.of_int 150));
  check Alcotest.bool "healed at heal instant" false
    (Partition.active_at p (Vtime.of_int 200));
  check Alcotest.bool "none never active" false
    (Partition.active_at Partition.none Vtime.zero)

let test_partition_multiple () =
  let p =
    Partition.make_multiple
      ~groups:[ g2 [ 3 ]; g2 [ 1; 2 ]; g2 [ 4; 5 ] ]
      ~starts_at:(Vtime.of_int 10) ~n:5 ()
  in
  check Alcotest.bool "not simple" false (Partition.is_simple p);
  check Alcotest.int "three cells" 3 (Partition.group_count p);
  (* the master's cell is reordered first *)
  (match Partition.groups p with
  | first :: _ ->
      check Alcotest.bool "master first" true
        (Site_id.Set.mem Site_id.master first)
  | [] -> Alcotest.fail "no cells");
  check Alcotest.bool "1-2 together" false
    (Partition.separated p ~at:(Vtime.of_int 10) (site 1) (site 2));
  check Alcotest.bool "3 separated from 4" true
    (Partition.separated p ~at:(Vtime.of_int 10) (site 3) (site 4));
  check Alcotest.bool "3 separated from 1" true
    (Partition.separated p ~at:(Vtime.of_int 10) (site 1) (site 3));
  check Alcotest.bool "side of 4" true (Partition.side p (site 4) = `G2);
  check Alcotest.int "group2 = everyone outside master's cell" 3
    (Site_id.Set.cardinal (Partition.group2 p));
  let expect_invalid label f =
    let raised = try ignore (f ()); false with Invalid_argument _ -> true in
    check Alcotest.bool label true raised
  in
  expect_invalid "one group only" (fun () ->
      Partition.make_multiple ~groups:[ g2 [ 1; 2; 3 ] ] ~starts_at:Vtime.zero
        ~n:3 ());
  expect_invalid "overlap" (fun () ->
      Partition.make_multiple
        ~groups:[ g2 [ 1; 2 ]; g2 [ 2; 3 ] ]
        ~starts_at:Vtime.zero ~n:3 ());
  expect_invalid "not covering" (fun () ->
      Partition.make_multiple
        ~groups:[ g2 [ 1 ]; g2 [ 2 ] ]
        ~starts_at:Vtime.zero ~n:3 ())

let test_partition_sequence () =
  let a =
    Partition.make ~group2:(g2 [ 3 ]) ~starts_at:(Vtime.of_int 100)
      ~heals_at:(Vtime.of_int 200) ~n:3 ()
  in
  let b =
    Partition.make ~group2:(g2 [ 2 ]) ~starts_at:(Vtime.of_int 300) ~n:3 ()
  in
  let seq = Partition.sequence [ a; b ] in
  check Alcotest.int "two phases" 2 (Partition.phase_count seq);
  check Alcotest.bool "phase A separates 1-3" true
    (Partition.separated seq ~at:(Vtime.of_int 150) (site 1) (site 3));
  check Alcotest.bool "gap: nobody separated" false
    (Partition.separated seq ~at:(Vtime.of_int 250) (site 1) (site 3));
  check Alcotest.bool "phase B separates 1-2" true
    (Partition.separated seq ~at:(Vtime.of_int 400) (site 1) (site 2));
  check Alcotest.bool "phase B does not separate 1-3" false
    (Partition.separated seq ~at:(Vtime.of_int 400) (site 1) (site 3));
  check Alcotest.bool "not simple" false (Partition.is_simple seq);
  let expect_invalid label f =
    let raised = try ignore (f ()); false with Invalid_argument _ -> true in
    check Alcotest.bool label true raised
  in
  expect_invalid "overlap rejected" (fun () ->
      Partition.sequence
        [
          Partition.make ~group2:(g2 [ 3 ]) ~starts_at:(Vtime.of_int 100)
            ~heals_at:(Vtime.of_int 400) ~n:3 ();
          b;
        ]);
  expect_invalid "never-healing phase cannot precede" (fun () ->
      Partition.sequence
        [
          Partition.make ~group2:(g2 [ 3 ]) ~starts_at:(Vtime.of_int 100) ~n:3
            ();
          b;
        ])

(* A generated chain of non-overlapping cut/heal windows, from a list
   of (gap, width) pairs: phase i starts gap+1 after the previous heal
   and stays up for width+1 ticks. *)
let build_timeline ~n specs =
  let phases, windows, _ =
    List.fold_left
      (fun (phases, windows, t0) (gap, width) ->
        let starts = t0 + gap + 1 in
        let heals = starts + width + 1 in
        ( Partition.make ~group2:(g2 [ n ]) ~starts_at:(Vtime.of_int starts)
            ~heals_at:(Vtime.of_int heals) ~n ()
          :: phases,
          (starts, heals) :: windows,
          heals ))
      ([], [], 0) specs
  in
  (Partition.sequence (List.rev phases), List.rev windows)

let sequence_active_exactly_in_phases =
  QCheck.Test.make ~count:300
    ~name:"sequence: active_at holds exactly inside the cut/heal windows"
    QCheck.(
      pair (int_range 3 6)
        (list_of_size Gen.(int_range 1 4) (pair small_nat small_nat)))
    (fun (n, specs) ->
      QCheck.assume (specs <> []);
      let timeline, windows = build_timeline ~n specs in
      Partition.phase_count timeline = List.length specs
      && List.for_all
           (fun (starts, heals) ->
             (* heal strictly after cut, and the window half-open *)
             heals > starts
             && Partition.active_at timeline (Vtime.of_int starts)
             && Partition.active_at timeline (Vtime.of_int (heals - 1))
             && not (Partition.active_at timeline (Vtime.of_int heals))
             && not (Partition.active_at timeline (Vtime.of_int (starts - 1))))
           windows)

let sequence_rejects_overlap =
  QCheck.Test.make ~count:300
    ~name:"sequence: a phase starting inside the previous window is rejected"
    QCheck.(triple (int_range 3 6) small_nat small_nat)
    (fun (n, start, inside) ->
      let starts_at = start + 1 in
      let heals_at = starts_at + 10 in
      let first =
        Partition.make ~group2:(g2 [ n ]) ~starts_at:(Vtime.of_int starts_at)
          ~heals_at:(Vtime.of_int heals_at) ~n ()
      in
      let second_start = starts_at + (inside mod 10) in
      let second =
        Partition.make
          ~group2:(g2 [ 2 ])
          ~starts_at:(Vtime.of_int second_start) ~n ()
      in
      try
        ignore (Partition.sequence [ first; second ]);
        false
      with Invalid_argument _ -> true)

let separated_symmetric_within_group =
  QCheck.Test.make ~count:500
    ~name:"separated: symmetric, irreflexive, and only across the boundary"
    QCheck.(
      quad (int_range 3 8) (pair small_nat small_nat)
        (pair small_nat small_nat) small_nat)
    (fun (n, (gap, width), (a0, b0), at0) ->
      let timeline, windows = build_timeline ~n [ (gap, width) ] in
      let a = site ((a0 mod n) + 1) and b = site ((b0 mod n) + 1) in
      let starts, heals = List.hd windows in
      let at = Vtime.of_int (at0 mod (heals + 2)) in
      let in_g2 s = Site_id.Set.mem s (Partition.group2 timeline) in
      let sep = Partition.separated timeline ~at a b in
      sep = Partition.separated timeline ~at b a
      && (not (Partition.separated timeline ~at a a))
      && sep
         = (Vtime.to_int at >= starts
           && Vtime.to_int at < heals
           && in_g2 a <> in_g2 b))

(* ------------------------------------------------------------------ *)
(* Delay                                                               *)
(* ------------------------------------------------------------------ *)

let delay_always_in_bounds =
  QCheck.Test.make ~name:"Delay.sample always lands in [1, T]"
    QCheck.(pair (int_range 1 2000) small_nat)
    (fun (t_max, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let models =
        [
          Delay.minimal;
          Delay.full ~t_max:(Vtime.of_int t_max);
          Delay.uniform ~t_max:(Vtime.of_int t_max);
          Delay.Fixed (Vtime.of_int (t_max * 3));
          (* out of range on purpose *)
          Delay.Per_link (fun _ _ -> Vtime.of_int 0);
          (* too small on purpose *)
        ]
      in
      List.for_all
        (fun model ->
          let d =
            Delay.sample model ~rng ~t_max:(Vtime.of_int t_max)
              ~src:Site_id.master ~dst:(Site_id.of_int 2)
          in
          1 <= d && d <= t_max)
        models)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

type recorded = {
  mutable deliveries : (Site_id.t * string Network.delivery) list;
}

let make_net ?(n = 3) ?(t = 100) ?mode ?partition ?delay () =
  let engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
  let net =
    Network.create ~engine ~n ~t_max:(Vtime.of_int t) ?mode ?partition ?delay
      ~pp_payload:Format.pp_print_string ()
  in
  let record = { deliveries = [] } in
  Network.set_handler net (fun s d -> record.deliveries <- (s, d) :: record.deliveries);
  (engine, net, record)

let test_network_delivers () =
  let engine, net, record = make_net () in
  Network.send net ~src:(site 1) ~dst:(site 2) "hello";
  Engine.run engine;
  match record.deliveries with
  | [ (dst, Network.Msg e) ] ->
      check Alcotest.int "destination" 2 (Site_id.to_int dst);
      check Alcotest.string "payload" "hello" e.payload;
      check Alcotest.int "src" 1 (Site_id.to_int e.src);
      check Alcotest.bool "within T" true (Engine.now engine <= 100)
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_network_no_self_send () =
  let _, net, _ = make_net () in
  Alcotest.check_raises "self-send rejected"
    (Invalid_argument "Network.send: a site does not message itself") (fun () ->
      Network.send net ~src:(site 2) ~dst:(site 2) "x")

let test_network_broadcast () =
  let engine, net, record = make_net ~n:4 () in
  Network.broadcast net ~src:(site 1) "cmd";
  Engine.run engine;
  check Alcotest.int "three deliveries" 3 (List.length record.deliveries);
  let dsts =
    List.sort Int.compare
      (List.map (fun (d, _) -> Site_id.to_int d) record.deliveries)
  in
  check Alcotest.(list int) "to slaves" [ 2; 3; 4 ] dsts

let test_network_optimistic_bounce () =
  let partition =
    Partition.make ~group2:(g2 [ 3 ]) ~starts_at:Vtime.zero ~n:3 ()
  in
  let engine, net, record = make_net ~partition () in
  Network.send net ~src:(site 1) ~dst:(site 3) "cross";
  Engine.run engine;
  (match record.deliveries with
  | [ (dst, Network.Undeliverable e) ] ->
      check Alcotest.int "returned to sender" 1 (Site_id.to_int dst);
      check Alcotest.string "original payload" "cross" e.payload;
      check Alcotest.int "original dst" 3 (Site_id.to_int e.dst);
      check Alcotest.bool "round trip within 2T" true (Engine.now engine <= 200)
  | _ -> Alcotest.fail "expected one bounce");
  let stats = Network.stats net in
  check Alcotest.int "bounced" 1 stats.bounced;
  check Alcotest.int "delivered" 0 stats.delivered

let test_network_pessimistic_loss () =
  let partition =
    Partition.make ~group2:(g2 [ 3 ]) ~starts_at:Vtime.zero ~n:3 ()
  in
  let engine, net, record =
    make_net ~mode:Network.Pessimistic ~partition ()
  in
  Network.send net ~src:(site 1) ~dst:(site 3) "cross";
  Engine.run engine;
  check Alcotest.int "nothing arrives" 0 (List.length record.deliveries);
  check Alcotest.int "lost" 1 (Network.stats net).lost

let test_network_same_side_during_partition () =
  let partition =
    Partition.make ~group2:(g2 [ 3; 4 ]) ~starts_at:Vtime.zero ~n:4 ()
  in
  let engine, net, record = make_net ~n:4 ~partition () in
  Network.send net ~src:(site 3) ~dst:(site 4) "inside-G2";
  Network.send net ~src:(site 1) ~dst:(site 2) "inside-G1";
  Engine.run engine;
  check Alcotest.int "both delivered" 2 (List.length record.deliveries);
  check Alcotest.bool "all Msg" true
    (List.for_all
       (fun (_, d) ->
         match d with Network.Msg _ -> true | Network.Undeliverable _ -> false)
       record.deliveries)

let test_network_transient_heal_in_flight () =
  (* Sent during the partition with a slow hop; arrives after the heal,
     so it is delivered — the Section 6 message-race structure. *)
  let partition =
    Partition.make ~group2:(g2 [ 2 ]) ~starts_at:Vtime.zero
      ~heals_at:(Vtime.of_int 50) ~n:3 ()
  in
  let engine, net, record =
    make_net ~partition ~delay:(Delay.Fixed (Vtime.of_int 80)) ()
  in
  ignore net;
  Network.send net ~src:(site 1) ~dst:(site 2) "late";
  Engine.run engine;
  (match record.deliveries with
  | [ (_, Network.Msg e) ] -> check Alcotest.string "delivered" "late" e.payload
  | _ -> Alcotest.fail "expected a delivery after heal");
  (* Fast hop arrives during the partition: bounced. *)
  let partition2 =
    Partition.make ~group2:(g2 [ 2 ]) ~starts_at:Vtime.zero
      ~heals_at:(Vtime.of_int 50) ~n:3 ()
  in
  let engine2, net2, record2 =
    make_net ~partition:partition2 ~delay:(Delay.Fixed (Vtime.of_int 10)) ()
  in
  Network.send net2 ~src:(site 1) ~dst:(site 2) "early";
  Engine.run engine2;
  match record2.deliveries with
  | [ (_, Network.Undeliverable _) ] -> ()
  | _ -> Alcotest.fail "expected a bounce during the partition"

let test_network_crash_semantics () =
  let engine, net, record = make_net () in
  Network.crash net (site 3);
  check Alcotest.bool "dead" false (Network.alive net (site 3));
  Network.send net ~src:(site 1) ~dst:(site 3) "to-dead";
  (* A dead site also emits nothing (its timers firing must not leak
     messages — the Section 7 experiments depend on this). *)
  Network.send net ~src:(site 3) ~dst:(site 2) "from-dead";
  Engine.run engine;
  check Alcotest.int "no delivery, no bounce" 0 (List.length record.deliveries);
  check Alcotest.int "both lost" 2 (Network.stats net).lost;
  check Alcotest.int "nothing counted as sent" 1 (Network.stats net).sent

let test_network_tap () =
  let partition =
    Partition.make ~group2:(g2 [ 3 ]) ~starts_at:Vtime.zero ~n:3 ()
  in
  let engine, net, _ = make_net ~partition () in
  let events = ref [] in
  Network.set_tap net (fun e -> events := e :: !events);
  Network.send net ~src:(site 1) ~dst:(site 2) "ok";
  Network.send net ~src:(site 1) ~dst:(site 3) "cross";
  Engine.run engine;
  let count pred = List.length (List.filter pred !events) in
  check Alcotest.int "2 sent" 2
    (count (function Network.Sent _ -> true | _ -> false));
  check Alcotest.int "1 delivered" 1
    (count (function Network.Delivered _ -> true | _ -> false));
  check Alcotest.int "1 bounced" 1
    (count (function Network.Bounced _ -> true | _ -> false))

let bounce_within_2t =
  QCheck.Test.make ~count:200
    ~name:"a bounce returns to its sender within 2T of the send"
    QCheck.(pair small_nat (int_range 1 500))
    (fun (seed, t_max) ->
      let partition =
        Partition.make ~group2:(g2 [ 3 ]) ~starts_at:Vtime.zero ~n:3 ()
      in
      let engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
      let net =
        Network.create ~engine ~n:3 ~t_max:(Vtime.of_int t_max) ~partition
          ~seed:(Int64.of_int seed) ()
      in
      Network.set_handler net (fun _ _ -> ());
      let ok = ref true in
      Network.set_tap net (fun event ->
          match event with
          | Network.Bounced { env; at } ->
              if at - env.Network.sent_at > 2 * t_max then ok := false
          | Network.Delivered { env; at } ->
              if at - env.Network.sent_at > t_max then ok := false
          | Network.Sent _ | Network.Lost _ -> ());
      for i = 2 to 3 do
        Network.send net ~src:(site 1) ~dst:(site i) "m";
        Network.send net ~src:(site i) ~dst:(site 1) "m"
      done;
      Engine.run engine;
      !ok)

let network_conserves_messages =
  QCheck.Test.make ~name:"every sent message is delivered, bounced or lost"
    QCheck.(pair (list (pair (int_range 1 4) (int_range 1 4))) small_nat)
    (fun (sends, seed) ->
      let partition =
        Partition.make ~group2:(g2 [ 3; 4 ]) ~starts_at:(Vtime.of_int 30) ~n:4 ()
      in
      let engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
      let net =
        Network.create ~engine ~n:4 ~t_max:(Vtime.of_int 50) ~partition
          ~seed:(Int64.of_int seed) ()
      in
      Network.set_handler net (fun _ _ -> ());
      let sent = ref 0 in
      List.iter
        (fun (a, b) ->
          if a <> b then begin
            incr sent;
            Network.send net ~src:(site a) ~dst:(site b) "m"
          end)
        sends;
      Engine.run engine;
      let stats = Network.stats net in
      stats.sent = !sent
      && stats.delivered + stats.bounced + stats.lost = !sent)

let () =
  Alcotest.run "commit_net"
    [
      ("site_id", [ Alcotest.test_case "basics" `Quick test_site_id_basics ]);
      ( "partition",
        [
          Alcotest.test_case "validation" `Quick test_partition_validation;
          Alcotest.test_case "membership" `Quick test_partition_membership;
          Alcotest.test_case "transient" `Quick test_partition_transient;
          Alcotest.test_case "multiple partitioning" `Quick
            test_partition_multiple;
          Alcotest.test_case "partition sequences" `Quick
            test_partition_sequence;
          qtest sequence_active_exactly_in_phases;
          qtest sequence_rejects_overlap;
          qtest separated_symmetric_within_group;
        ] );
      ("delay", [ qtest delay_always_in_bounds ]);
      ( "network",
        [
          Alcotest.test_case "delivers" `Quick test_network_delivers;
          Alcotest.test_case "rejects self-send" `Quick test_network_no_self_send;
          Alcotest.test_case "broadcast" `Quick test_network_broadcast;
          Alcotest.test_case "optimistic bounce" `Quick
            test_network_optimistic_bounce;
          Alcotest.test_case "pessimistic loss" `Quick
            test_network_pessimistic_loss;
          Alcotest.test_case "same side unaffected" `Quick
            test_network_same_side_during_partition;
          Alcotest.test_case "transient heal race" `Quick
            test_network_transient_heal_in_flight;
          Alcotest.test_case "crash semantics" `Quick test_network_crash_semantics;
          Alcotest.test_case "tap" `Quick test_network_tap;
          qtest network_conserves_messages;
          qtest bounce_within_2t;
        ] );
    ]
