(* Unit and property tests for the simulation kernel (lib/sim). *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Vtime                                                               *)
(* ------------------------------------------------------------------ *)

let test_vtime_add_saturates () =
  check Alcotest.int "inf + 1 = inf" Vtime.infinity
    (Vtime.add Vtime.infinity (Vtime.of_int 1));
  check Alcotest.int "1 + inf = inf" Vtime.infinity
    (Vtime.add (Vtime.of_int 1) Vtime.infinity);
  check Alcotest.int "overflow saturates" Vtime.infinity
    (Vtime.add (Vtime.infinity - 1) (Vtime.infinity - 1))

let test_vtime_sub_clips () =
  check Alcotest.int "3 - 5 = 0" 0 (Vtime.sub (Vtime.of_int 3) (Vtime.of_int 5));
  check Alcotest.int "5 - 3 = 2" 2 (Vtime.sub (Vtime.of_int 5) (Vtime.of_int 3));
  check Alcotest.int "inf - x = inf" Vtime.infinity
    (Vtime.sub Vtime.infinity (Vtime.of_int 7))

let test_vtime_of_int_negative () =
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Vtime.of_int: negative") (fun () ->
      ignore (Vtime.of_int (-1)))

let test_vtime_pp () =
  check Alcotest.string "plain" "42" (Format.asprintf "%a" Vtime.pp (Vtime.of_int 42));
  check Alcotest.string "inf" "inf" (Format.asprintf "%a" Vtime.pp Vtime.infinity);
  check Alcotest.string "in T" "2.50T"
    (Format.asprintf "%a" (Vtime.pp_in_t ~unit_t:(Vtime.of_int 1000)) (Vtime.of_int 2500))

let vtime_add_commutative =
  QCheck.Test.make ~name:"Vtime.add commutative"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      Vtime.add (Vtime.of_int a) (Vtime.of_int b)
      = Vtime.add (Vtime.of_int b) (Vtime.of_int a))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let heap_sorts =
  QCheck.Test.make ~name:"Heap pops in sorted order"
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let heap_stable_with_seq =
  QCheck.Test.make ~name:"Heap is stable when the order includes a sequence"
    QCheck.(list (int_bound 5))
    (fun keys ->
      let cmp (k1, s1) (k2, s2) =
        let c = Int.compare k1 k2 in
        if c <> 0 then c else Int.compare s1 s2
      in
      let h = Heap.create ~cmp () in
      List.iteri (fun i k -> Heap.push h (k, i)) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      let out = drain [] in
      (* Within equal keys, sequence numbers ascend. *)
      let rec ok = function
        | (k1, s1) :: ((k2, s2) :: _ as rest) ->
            (k1 < k2 || (k1 = k2 && s1 < s2)) && ok rest
        | [ _ ] | [] -> true
      in
      ok out)

let test_heap_basics () =
  let h = Heap.create ~cmp:Int.compare () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  check Alcotest.(option int) "peek empty" None (Heap.peek h);
  Heap.push h 3;
  Heap.push h 1;
  Heap.push h 2;
  check Alcotest.int "length" 3 (Heap.length h);
  check Alcotest.(option int) "peek min" (Some 1) (Heap.peek h);
  check Alcotest.int "pop_exn" 1 (Heap.pop_exn h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Rng.next_int64 b) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds"
    QCheck.(pair (int_bound 1000) small_nat)
    (fun (bound, seed) ->
      let bound = bound + 1 in
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng ~bound in
      0 <= v && v < bound)

let rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int_in stays in the inclusive range"
    QCheck.(triple (int_range 0 100) (int_range 0 100) small_nat)
    (fun (a, b, seed) ->
      let lo = Stdlib.min a b and hi = Stdlib.max a b in
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int_in rng ~lo ~hi in
      lo <= v && v <= hi)

let rng_float_unit_interval =
  QCheck.Test.make ~name:"Rng.float in [0,1)" QCheck.small_nat (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let f = Rng.float rng in
      0.0 <= f && f < 1.0)

let rng_shuffle_permutes =
  QCheck.Test.make ~name:"Rng.shuffle permutes"
    QCheck.(pair (list int) small_nat)
    (fun (xs, seed) ->
      let arr = Array.of_list xs in
      Rng.shuffle (Rng.create (Int64.of_int seed)) arr;
      List.sort Int.compare (Array.to_list arr) = List.sort Int.compare xs)

let test_rng_pick () =
  let rng = Rng.create 3L in
  let xs = [ 1; 2; 3; 4 ] in
  for _ = 1 to 50 do
    check Alcotest.bool "member" true (List.mem (Rng.pick rng xs) xs)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng []))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_order_and_filter () =
  let t = Trace.create () in
  Trace.add t ~at:(Vtime.of_int 1) ~topic:"a" "one";
  Trace.add t ~at:(Vtime.of_int 2) ~topic:"b" "two";
  Trace.addf t ~at:(Vtime.of_int 3) ~topic:"a" "three %d" 3;
  check Alcotest.int "length" 3 (Trace.length t);
  check
    Alcotest.(list string)
    "append order"
    [ "one"; "two"; "three 3" ]
    (List.map (fun (e : Trace.entry) -> e.text) (Trace.entries t));
  check Alcotest.int "filter a" 2 (List.length (Trace.filter ~topic:"a" t));
  check Alcotest.bool "mem" true (Trace.mem t ~pattern:"three");
  check Alcotest.bool "not mem" false (Trace.mem t ~pattern:"four")

let test_trace_disabled () =
  let t = Trace.create ~enabled:false () in
  Trace.add t ~at:Vtime.zero ~topic:"x" "ignored";
  Trace.addf t ~at:Vtime.zero ~topic:"x" "ignored %d" 1;
  check Alcotest.int "no entries" 0 (Trace.length t)

let test_trace_addf_disabled_no_side_effects () =
  (* The disabled branch must not render its arguments at all: a %t
     printer would reach the sink formatter if ikfprintf were wired to
     std_formatter. *)
  let t = Trace.create ~enabled:false () in
  let rendered = ref false in
  Trace.addf t ~at:Vtime.zero ~topic:"x" "%t"
    (fun _ -> rendered := true);
  check Alcotest.bool "printer never called" false !rendered;
  check Alcotest.int "no entries" 0 (Trace.length t)

let test_trace_ring_wrap () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.add t ~at:(Vtime.of_int i) ~topic:"x" (string_of_int i)
  done;
  check Alcotest.int "length counts every append" 10 (Trace.length t);
  check Alcotest.int "capacity" 4 (Trace.capacity t);
  check Alcotest.int "dropped" 6 (Trace.dropped t);
  check
    Alcotest.(list string)
    "entries keep the newest, oldest-first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun (e : Trace.entry) -> e.text) (Trace.entries t));
  let seen = ref [] in
  Trace.iter (fun e -> seen := e.Trace.text :: !seen) t;
  check
    Alcotest.(list string)
    "iter matches entries" [ "7"; "8"; "9"; "10" ] (List.rev !seen);
  check Alcotest.bool "old entry evicted" false (Trace.mem t ~pattern:"3");
  check Alcotest.bool "new entry retained" true (Trace.mem t ~pattern:"9")

let test_trace_no_wrap_below_capacity () =
  let t = Trace.create ~capacity:8 () in
  for i = 1 to 5 do
    Trace.add t ~at:(Vtime.of_int i) ~topic:"x" (string_of_int i)
  done;
  check Alcotest.int "nothing dropped" 0 (Trace.dropped t);
  check
    Alcotest.(list string)
    "all five, in order"
    [ "1"; "2"; "3"; "4"; "5" ]
    (List.map (fun (e : Trace.entry) -> e.text) (Trace.entries t))

let test_trace_substring_search () =
  let t = Trace.create () in
  Trace.add t ~at:Vtime.zero ~topic:"x" "abcabd";
  (* Empty needle: every entry matches. *)
  check Alcotest.bool "empty pattern" true (Trace.mem t ~pattern:"");
  (* Overlapping prefixes: the match starts mid-way through a failed
     candidate, so a scanner that skips past the mismatch would miss it. *)
  check Alcotest.bool "overlap" true (Trace.mem t ~pattern:"abd");
  check Alcotest.bool "repeated prefix" true (Trace.mem t ~pattern:"cab");
  check Alcotest.bool "no match" false (Trace.mem t ~pattern:"abe");
  check Alcotest.bool "needle longer than hay" false
    (Trace.mem t ~pattern:"abcabdx");
  let t2 = Trace.create () in
  Trace.add t2 ~at:Vtime.zero ~topic:"x" "aaab";
  check Alcotest.bool "self-overlapping needle" true
    (Trace.mem t2 ~pattern:"aab")

let test_trace_empty_mem () =
  let t = Trace.create () in
  check Alcotest.bool "empty trace, empty pattern" false
    (Trace.mem t ~pattern:"")

(* ------------------------------------------------------------------ *)
(* Label                                                               *)
(* ------------------------------------------------------------------ *)

let test_label_force () =
  check Alcotest.string "static" "hello" (Label.force (Label.Static "hello"));
  let calls = ref 0 in
  let lazy_label =
    Label.Dynamic
      (fun () ->
        incr calls;
        "rendered")
  in
  check Alcotest.int "not forced at construction" 0 !calls;
  check Alcotest.string "dynamic" "rendered" (Label.force lazy_label);
  check Alcotest.int "forced once per call" 1 !calls

let test_label_dynamic_unforced_when_trace_off () =
  (* Scheduling through a disabled trace must never render the label. *)
  let trace = Trace.create ~enabled:false () in
  let e = Engine.create ~trace () in
  let forced = ref false in
  ignore
    (Engine.schedule e ~delay:(Vtime.of_int 1)
       ~label:
         (Label.Dynamic
            (fun () ->
              forced := true;
              "expensive"))
       ignore);
  Engine.run e;
  check Alcotest.bool "label never rendered" false !forced;
  check Alcotest.int "event still ran" 1 (Engine.events_run e)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_time_order () =
  let e = Engine.create () in
  let out = ref [] in
  let note tag () = out := tag :: !out in
  ignore (Engine.schedule e ~delay:(Vtime.of_int 30) ~label:(Label.Static "c") (note "c"));
  ignore (Engine.schedule e ~delay:(Vtime.of_int 10) ~label:(Label.Static "a") (note "a"));
  ignore (Engine.schedule e ~delay:(Vtime.of_int 20) ~label:(Label.Static "b") (note "b"));
  Engine.run e;
  check Alcotest.(list string) "time order" [ "a"; "b"; "c" ] (List.rev !out);
  check Alcotest.int "clock at last event" 30 (Engine.now e)

let test_engine_rank_order () =
  let e = Engine.create () in
  let out = ref [] in
  let note tag () = out := tag :: !out in
  ignore
    (Engine.schedule e ~rank:Engine.Background ~delay:(Vtime.of_int 10)
       ~label:(Label.Static "bg") (note "background"));
  ignore
    (Engine.schedule e ~rank:Engine.Timer ~delay:(Vtime.of_int 10) ~label:(Label.Static "t")
       (note "timer"));
  ignore
    (Engine.schedule e ~rank:Engine.Delivery ~delay:(Vtime.of_int 10)
       ~label:(Label.Static "d") (note "delivery"));
  Engine.run e;
  check
    Alcotest.(list string)
    "delivery < timer < background"
    [ "delivery"; "timer"; "background" ]
    (List.rev !out)

let test_engine_fifo_within_rank () =
  let e = Engine.create () in
  let out = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule e ~delay:(Vtime.of_int 10) ~label:(Label.Static "x") (fun () ->
           out := i :: !out))
  done;
  Engine.run e;
  check Alcotest.(list int) "insertion order" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let handle =
    Engine.schedule e ~delay:(Vtime.of_int 5) ~label:(Label.Static "x") (fun () -> fired := true)
  in
  Engine.cancel handle;
  check Alcotest.bool "cancelled" true (Engine.cancelled handle);
  Engine.run e;
  check Alcotest.bool "did not fire" false !fired

let test_engine_schedule_in_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:(Vtime.of_int 10) ~label:(Label.Static "x") (fun () -> ()));
  Engine.run e;
  check Alcotest.int "now" 10 (Engine.now e);
  let raised =
    try
      ignore (Engine.schedule_at e ~at:(Vtime.of_int 5) ~label:(Label.Static "y") (fun () -> ()));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "past rejected" true raised

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:(Vtime.of_int 10) ~label:(Label.Static "tick") tick)
  in
  ignore (Engine.schedule e ~delay:(Vtime.of_int 10) ~label:(Label.Static "tick") tick);
  Engine.run ~until:(Vtime.of_int 55) e;
  check Alcotest.int "five ticks" 5 !count;
  (* The sixth tick is still queued, not lost. *)
  check Alcotest.bool "pending remains" true (Engine.pending e > 0);
  Engine.run ~until:(Vtime.of_int 100) e;
  check Alcotest.int "ten ticks" 10 !count

let test_engine_max_events_guard () =
  let e = Engine.create () in
  let rec forever () =
    ignore (Engine.schedule e ~delay:(Vtime.of_int 1) ~label:(Label.Static "loop") forever)
  in
  ignore (Engine.schedule e ~delay:(Vtime.of_int 1) ~label:(Label.Static "loop") forever);
  Engine.run ~max_events:1000 e;
  check Alcotest.int "stopped by guard" 1000 (Engine.events_run e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:(Vtime.of_int 5) ~label:(Label.Static "outer") (fun () ->
         times := Engine.now e :: !times;
         ignore
           (Engine.schedule e ~delay:(Vtime.of_int 7) ~label:(Label.Static "inner") (fun () ->
                times := Engine.now e :: !times))));
  Engine.run e;
  check Alcotest.(list int) "nested fires at 12" [ 5; 12 ] (List.rev !times)

let test_engine_same_time_nested () =
  (* An event scheduling another event at delay 0 runs it at the same
     timestamp, after the currently-queued same-time events (sequence
     order). *)
  let e = Engine.create () in
  let out = ref [] in
  ignore
    (Engine.schedule e ~delay:(Vtime.of_int 5) ~label:(Label.Static "a") (fun () ->
         out := "a" :: !out;
         ignore
           (Engine.schedule e ~delay:Vtime.zero ~label:(Label.Static "c") (fun () ->
                out := "c" :: !out))));
  ignore
    (Engine.schedule e ~delay:(Vtime.of_int 5) ~label:(Label.Static "b") (fun () ->
         out := "b" :: !out));
  Engine.run e;
  check Alcotest.(list string) "a b c" [ "a"; "b"; "c" ] (List.rev !out);
  check Alcotest.int "still at 5" 5 (Engine.now e)

let test_engine_cancel_from_event () =
  (* One event cancels a later one from inside its callback. *)
  let e = Engine.create () in
  let fired = ref false in
  let victim =
    Engine.schedule e ~delay:(Vtime.of_int 10) ~label:(Label.Static "victim") (fun () ->
        fired := true)
  in
  ignore
    (Engine.schedule e ~delay:(Vtime.of_int 5) ~label:(Label.Static "assassin") (fun () ->
         Engine.cancel victim));
  Engine.run e;
  check Alcotest.bool "victim never fired" false !fired;
  check Alcotest.int "only the assassin ran" 1 (Engine.events_run e)

let test_engine_events_run_counts () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    ignore (Engine.schedule e ~delay:(Vtime.of_int 1) ~label:(Label.Static "x") ignore)
  done;
  check Alcotest.int "pending before" 7 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "ran all" 7 (Engine.events_run e);
  check Alcotest.int "pending after" 0 (Engine.pending e)

let engine_executes_in_time_order =
  QCheck.Test.make ~name:"Engine executes any schedule in time order"
    QCheck.(list (int_bound 1000))
    (fun delays ->
      let e = Engine.create () in
      let seen = ref [] in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule e ~delay:(Vtime.of_int d) ~label:(Label.Static "x") (fun () ->
                 seen := Engine.now e :: !seen)))
        delays;
      Engine.run e;
      let seen = List.rev !seen in
      List.sort Int.compare seen = seen
      && List.length seen = List.length delays)

let engine_pops_in_compare_event_order =
  (* The specialized event heap must execute any schedule in exact
     [(at, rank, seq)] order — the same total order the generic
     [compare_event] gave.  Delays are drawn from a tiny range and ranks
     from all three, so equal-[at] ties are common and the rank and
     sequence tie-breaks both get exercised. *)
  QCheck.Test.make ~count:300
    ~name:"Engine pops in exact (at, rank, seq) order"
    QCheck.(list (pair (int_bound 3) (int_bound 2)))
    (fun spec ->
      let e = Engine.create () in
      let order = ref [] in
      List.iteri
        (fun seq (delay, rank_code) ->
          let rank =
            match rank_code with
            | 0 -> Engine.Delivery
            | 1 -> Engine.Timer
            | _ -> Engine.Background
          in
          ignore
            (Engine.schedule e ~rank ~delay:(Vtime.of_int delay)
               ~label:(Label.Static "x") (fun () -> order := seq :: !order)))
        spec;
      Engine.run e;
      let executed = List.rev !order in
      let keys = Array.of_list spec in
      let expected =
        List.init (List.length spec) Fun.id
        |> List.sort (fun i j ->
               let di, ri = keys.(i) and dj, rj = keys.(j) in
               match compare di dj with
               | 0 -> ( match compare ri rj with 0 -> compare i j | c -> c)
               | c -> c)
      in
      executed = expected)

let () =
  Alcotest.run "commit_sim"
    [
      ( "vtime",
        [
          Alcotest.test_case "add saturates" `Quick test_vtime_add_saturates;
          Alcotest.test_case "sub clips" `Quick test_vtime_sub_clips;
          Alcotest.test_case "of_int rejects negatives" `Quick
            test_vtime_of_int_negative;
          Alcotest.test_case "pretty printing" `Quick test_vtime_pp;
          qtest vtime_add_commutative;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basics" `Quick test_heap_basics;
          qtest heap_sorts;
          qtest heap_stable_with_seq;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          qtest rng_int_in_bounds;
          qtest rng_int_in_range;
          qtest rng_float_unit_interval;
          qtest rng_shuffle_permutes;
        ] );
      ( "trace",
        [
          Alcotest.test_case "order and filter" `Quick test_trace_order_and_filter;
          Alcotest.test_case "disabled is a no-op" `Quick test_trace_disabled;
          Alcotest.test_case "disabled addf renders nothing" `Quick
            test_trace_addf_disabled_no_side_effects;
          Alcotest.test_case "ring wraps at capacity" `Quick
            test_trace_ring_wrap;
          Alcotest.test_case "no wrap below capacity" `Quick
            test_trace_no_wrap_below_capacity;
          Alcotest.test_case "substring search" `Quick
            test_trace_substring_search;
          Alcotest.test_case "empty trace mem" `Quick test_trace_empty_mem;
        ] );
      ( "label",
        [
          Alcotest.test_case "force" `Quick test_label_force;
          Alcotest.test_case "dynamic unforced when trace off" `Quick
            test_label_dynamic_unforced_when_trace_off;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "rank order at equal times" `Quick
            test_engine_rank_order;
          Alcotest.test_case "FIFO within rank" `Quick
            test_engine_fifo_within_rank;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "scheduling in the past" `Quick
            test_engine_schedule_in_past;
          Alcotest.test_case "run ~until" `Quick test_engine_run_until;
          Alcotest.test_case "runaway guard" `Quick test_engine_max_events_guard;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "same-time nesting order" `Quick
            test_engine_same_time_nested;
          Alcotest.test_case "cancel from an event" `Quick
            test_engine_cancel_from_event;
          Alcotest.test_case "event accounting" `Quick
            test_engine_events_run_counts;
          qtest engine_executes_in_time_order;
          qtest engine_pops_in_compare_event_order;
        ] );
    ]
