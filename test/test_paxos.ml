(* Paxos Commit (lib/protocols/paxos_commit.ml): ballot arithmetic,
   the F=0 = 2PC collapse, master-failure survival, the acceptor-
   majority audit, and cluster/sweep determinism for the new family. *)

let check = Alcotest.check

let t_unit = Vtime.of_int 1000

let config ?(n = 3) ?(partition = Partition.none)
    ?(delay = Delay.uniform ~t_max:t_unit) ?(seed = 1L) ?(votes = [])
    ?(crashes = []) () =
  let base = Runner.default_config ~n ~t_unit () in
  {
    base with
    Runner.partition;
    delay;
    seed;
    votes;
    crashes;
    trace_enabled = false;
  }

let delays =
  [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ]

(* ------------------------------------------------------------------ *)
(* Ballot arithmetic                                                   *)
(* ------------------------------------------------------------------ *)

let qcheck_ballot_roundtrip =
  QCheck.Test.make ~count:500 ~name:"ballot owner/round roundtrip"
    QCheck.(pair (int_range 2 8) (pair (int_range 1 8) (int_range 1 50)))
    (fun (n, (site, round)) ->
      QCheck.assume (site <= n);
      let b = Acceptor.make_ballot ~n ~site:(Site_id.of_int site) ~round in
      b > Acceptor.ballot_zero
      && Site_id.to_int (Acceptor.owner ~n b) = site
      && Acceptor.round ~n b = round)

let qcheck_ballot_total_order =
  (* The int order on ballots is exactly the lexicographic order on
     (round, owner site) — what leader replacement relies on: any two
     distinct (site, round) pairs own distinct, comparable ballots. *)
  QCheck.Test.make ~count:500 ~name:"ballot order is lex (round, site)"
    QCheck.(
      pair (int_range 2 8)
        (pair
           (pair (int_range 1 8) (int_range 1 40))
           (pair (int_range 1 8) (int_range 1 40))))
    (fun (n, ((s1, r1), (s2, r2))) ->
      QCheck.assume (s1 <= n && s2 <= n);
      let b1 = Acceptor.make_ballot ~n ~site:(Site_id.of_int s1) ~round:r1 in
      let b2 = Acceptor.make_ballot ~n ~site:(Site_id.of_int s2) ~round:r2 in
      compare b1 b2 = compare (r1, s1) (r2, s2))

let test_ballot_zero () =
  check Alcotest.int "round of ballot 0" 0 (Acceptor.round ~n:3 Acceptor.ballot_zero);
  check Alcotest.bool "master owns ballot 0" true
    (Site_id.is_master (Acceptor.owner ~n:3 Acceptor.ballot_zero))

(* ------------------------------------------------------------------ *)
(* Fault-free behaviour                                                *)
(* ------------------------------------------------------------------ *)

let test_fault_free_commit () =
  List.iter
    (fun n ->
      List.iter
        (fun seed ->
          let result =
            Runner.run Paxos_commit.protocol (config ~n ~seed ())
          in
          let v = Verdict.of_result result in
          check Alcotest.bool
            (Printf.sprintf "n=%d seed=%Ld commits" n seed)
            true
            (Verdict.resilient v && Verdict.outcome v = `Committed))
        [ 1L; 7L; 99L ])
    [ 2; 3; 5 ]

let test_vote_no_aborts () =
  let result =
    Runner.run Paxos_commit.protocol
      (config ~votes:[ (Site_id.of_int 2, false) ] ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "aborted everywhere" true
    (Verdict.resilient v && Verdict.outcome v = `Aborted)

(* ------------------------------------------------------------------ *)
(* F=0 collapses to 2PC                                                *)
(* ------------------------------------------------------------------ *)

let decisions result =
  Array.to_list
    (Array.map
       (fun (s : Runner.site_result) -> (s.site, s.decision, s.decided_at))
       result.Runner.sites)

let test_f0_is_2pc () =
  (* Identical wire pattern -> identical RNG draws -> byte-identical
     decision timings, fault-free, for every delay model, seed and vote
     assignment. *)
  List.iter
    (fun delay ->
      List.iter
        (fun seed ->
          List.iter
            (fun votes ->
              let cfg = config ~delay ~seed ~votes () in
              let px = Runner.run Paxos_commit.protocol_f0 cfg in
              let tp = Runner.run (module Two_phase) cfg in
              check
                Alcotest.(
                  list
                    (triple int (option bool) (option int)))
                "same decisions at the same instants"
                (List.map
                   (fun (s, d, at) ->
                     ( Site_id.to_int s,
                       Option.map (fun d -> d = Types.Commit) d,
                       Option.map Vtime.to_int at ))
                   (decisions tp))
                (List.map
                   (fun (s, d, at) ->
                     ( Site_id.to_int s,
                       Option.map (fun d -> d = Types.Commit) d,
                       Option.map Vtime.to_int at ))
                   (decisions px)))
            [ []; [ (Site_id.of_int 3, false) ] ])
        [ 1L; 7L; 99L ])
    delays

(* ------------------------------------------------------------------ *)
(* Master failure: the family asymmetry                                *)
(* ------------------------------------------------------------------ *)

let crash_grid =
  Scenario.configs
    ~base:{ (Runner.default_config ~n:3 ~t_unit ()) with trace_enabled = false }
    (Scenario.master_crash_grid ~t_unit)

let test_master_crash_paxos_survives () =
  List.iter
    (fun cfg ->
      let v = Verdict.of_result (Runner.run Paxos_commit.protocol cfg) in
      check Alcotest.bool "resilient on every crash timeline" true
        (Verdict.resilient v))
    crash_grid

let test_master_crash_asymmetry () =
  (* Same timelines: the paper's termination protocol stays atomic but
     aborts transactions Paxos commits; the F=0 fast path blocks. *)
  let spx = Sweep.run Paxos_commit.protocol crash_grid in
  let stt = Sweep.run (module Termination.Transient) crash_grid in
  let sf0 = Sweep.run Paxos_commit.protocol_f0 crash_grid in
  check Alcotest.int "paxos: no blocked runs" 0 spx.blocked_runs;
  check Alcotest.int "paxos: no violations" 0 spx.violations;
  check Alcotest.int "termination: still atomic" 0 stt.violations;
  check Alcotest.bool "termination commits strictly less" true
    (stt.committed < spx.committed);
  check Alcotest.bool "f0 blocks like 2pc" true (sf0.blocked_runs > 0)

let test_crash_grid_jobs_deterministic () =
  let scalar (s : Sweep.summary) =
    ( (s.runs, s.violations, s.blocked_runs, s.committed),
      (s.aborted, s.undecided, s.max_decision_time, s.total_decision_time) )
  in
  let s1 = Sweep.run ~jobs:1 Paxos_commit.protocol crash_grid in
  let s2 = Sweep.run ~jobs:2 Paxos_commit.protocol crash_grid in
  check Alcotest.bool "summary independent of --jobs" true
    (scalar s1 = scalar s2)

(* ------------------------------------------------------------------ *)
(* Acceptor-majority audit                                             *)
(* ------------------------------------------------------------------ *)

let test_majority_audit_commit () =
  let tap, events = Paxos_check.collecting_tap () in
  let result = Runner.run ~tap Paxos_commit.protocol (config ()) in
  match Paxos_check.audit ~f:1 result (events ()) with
  | Error problems ->
      Alcotest.failf "audit rejected a clean commit: %a"
        Fmt.(list ~sep:comma Paxos_check.pp_problem)
        problems
  | Ok facts ->
      check Alcotest.int "one fact per instance" 3 (List.length facts);
      List.iter
        (fun (f : Paxos_check.fact) ->
          check Alcotest.int "fast path: ballot 0" 0 f.ballot;
          check Alcotest.bool "majority met" true
            (f.wire_accepts + (if f.leader_local then 1 else 0) >= f.majority))
        facts

let test_majority_audit_after_recovery () =
  (* Master dies mid-protocol; the recovery leader's commit must still
     carry majority evidence for every instance. *)
  List.iter
    (fun at ->
      let cfg = config ~crashes:[ (Site_id.master, Vtime.of_int at) ] () in
      let tap, events = Paxos_check.collecting_tap () in
      let result = Runner.run ~tap Paxos_commit.protocol cfg in
      match Paxos_check.audit ~f:1 result (events ()) with
      | Ok _ -> ()
      | Error problems ->
          Alcotest.failf "audit rejected crash run (at=%d): %a" at
            Fmt.(list ~sep:comma Paxos_check.pp_problem)
            problems)
    [ 500; 1500; 2500; 3500 ]

(* ------------------------------------------------------------------ *)
(* Cluster runtime: crash schedule + determinism                       *)
(* ------------------------------------------------------------------ *)

let cluster_config ?(protocol = Paxos_commit.protocol) ?(crashes = [])
    ?(timeline = Partition.none) () =
  let module R = Commit_cluster.Runtime in
  {
    (R.default_config ~protocol ~n:3 ()) with
    R.timeline;
    duration = Vtime.of_int 60_000;
    drain = Vtime.of_int 40_000;
    crashes;
  }

let test_cluster_paxos_cut_heal () =
  let module R = Commit_cluster.Runtime in
  let timeline =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int 20_000) ~heals_at:(Vtime.of_int 45_000) ~n:3 ()
  in
  let cfg = cluster_config ~timeline () in
  let r1 = R.run cfg in
  let r2 = R.run cfg in
  check Alcotest.bool "auditor green" true (R.atomic r1);
  check Alcotest.int "nothing blocked" 0 r1.R.blocked;
  check Alcotest.string "byte-identical reruns"
    (Export.to_string (R.to_json r1))
    (Export.to_string (R.to_json r2))

let test_cluster_master_crash_asymmetry () =
  let module R = Commit_cluster.Runtime in
  let crashes = [ (Site_id.master, Vtime.of_int 25_000) ] in
  let px = R.run (cluster_config ~crashes ()) in
  check Alcotest.bool "paxos: auditor green" true (R.atomic px);
  check Alcotest.int "paxos: nothing blocked" 0 px.R.blocked;
  let f0 =
    R.run (cluster_config ~protocol:Paxos_commit.protocol_f0 ~crashes ())
  in
  check Alcotest.bool "f0: auditor green" true (R.atomic f0);
  check Alcotest.bool "f0: strands the master's transaction" true
    (f0.R.blocked > 0)

let test_cluster_crash_jobs_deterministic () =
  let module C = Commit_cluster.Cluster_sweep in
  let grid =
    {
      C.base =
        cluster_config ~crashes:[ (Site_id.master, Vtime.of_int 25_000) ] ();
      seeds = [ 1L; 2L; 3L ];
      timelines = [ ("none", Partition.none) ];
      policies = [ Commit_cluster.Scheduler.Partition_aware ];
      protocols = [];
      faults = [];
    }
  in
  let s1 = C.run ~jobs:1 grid in
  let s2 = C.run ~jobs:2 grid in
  check Alcotest.string "cluster sweep independent of --jobs"
    (Export.to_string (C.to_json s1))
    (Export.to_string (C.to_json s2))

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_covers_paxos () =
  check Alcotest.bool "paxos registered" true (Registry.find "paxos" <> None);
  check Alcotest.bool "paxos-f0 registered" true
    (Registry.find "paxos-f0" <> None);
  let names = List.map fst Registry.enum in
  check Alcotest.bool "names unique" true
    (List.sort_uniq String.compare names = List.sort String.compare names);
  List.iter
    (fun { Registry.name; protocol = (module P : Site.S); _ } ->
      check Alcotest.string "registry name matches module name" name P.name)
    Registry.all

let () =
  Alcotest.run "commit_paxos"
    [
      ( "ballots",
        [
          QCheck_alcotest.to_alcotest qcheck_ballot_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_ballot_total_order;
          Alcotest.test_case "ballot zero" `Quick test_ballot_zero;
        ] );
      ( "fault-free",
        [
          Alcotest.test_case "commits" `Quick test_fault_free_commit;
          Alcotest.test_case "vote-no aborts" `Quick test_vote_no_aborts;
          Alcotest.test_case "f0 = 2pc" `Quick test_f0_is_2pc;
        ] );
      ( "master-crash",
        [
          Alcotest.test_case "paxos survives every timeline" `Quick
            test_master_crash_paxos_survives;
          Alcotest.test_case "family asymmetry" `Quick
            test_master_crash_asymmetry;
          Alcotest.test_case "sweep jobs-deterministic" `Quick
            test_crash_grid_jobs_deterministic;
        ] );
      ( "majority-audit",
        [
          Alcotest.test_case "clean commit" `Quick test_majority_audit_commit;
          Alcotest.test_case "after leader recovery" `Quick
            test_majority_audit_after_recovery;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "cut/heal deterministic" `Quick
            test_cluster_paxos_cut_heal;
          Alcotest.test_case "master-crash asymmetry" `Quick
            test_cluster_master_crash_asymmetry;
          Alcotest.test_case "crash sweep jobs-deterministic" `Quick
            test_cluster_crash_jobs_deterministic;
        ] );
      ( "registry",
        [
          Alcotest.test_case "covers the new family" `Quick
            test_registry_covers_paxos;
        ] );
    ]
