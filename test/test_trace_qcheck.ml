(* Property tests for the binary trace/obs storage: deferred rendering
   must be byte-identical to the eager printf path it replaced, across
   random messages, ring-wrap boundaries, and whole network runs.  The
   golden files pin the seed output; these properties pin the two
   implementations against each other on inputs no golden covers. *)

let tmpl_v =
  Trace.register_template (fun b _ v _ _ _ _ ->
      Buffer.add_string b "v=";
      Buffer.add_string b (string_of_int v))

(* ---- renderer vs printf equivalence ------------------------------------ *)

let msg_gen : Types.msg QCheck.Gen.t =
  let open QCheck.Gen in
  let site = map Site_id.of_int (int_range 1 64) in
  let ballot = int_range 0 0xFFFF in
  let phase =
    oneofl
      [
        Types.Ph_initial;
        Types.Ph_wait;
        Types.Ph_prepared;
        Types.Ph_committed;
        Types.Ph_aborted;
      ]
  in
  oneof
    [
      oneofl
        [
          Types.Xact;
          Types.Yes;
          Types.No;
          Types.Pre_prepare;
          Types.Pre_ack;
          Types.Prepare;
          Types.Ack;
          Types.Commit_cmd;
          Types.Abort_cmd;
        ];
      map2
        (fun trans_id slave -> Types.Probe { trans_id; slave })
        (int_range 0 0xFFFFFF) site;
      map (fun coordinator -> Types.State_inquiry { coordinator }) site;
      map (fun phase -> Types.State_answer { phase }) phase;
      map3
        (fun instance ballot prepared ->
          Types.Px_vote { instance; ballot; prepared })
        site ballot bool;
      map3
        (fun instance ballot prepared ->
          Types.Px_accept { instance; ballot; prepared })
        site ballot bool;
      map (fun ballot -> Types.Px_poll { ballot }) ballot;
      map2
        (fun ballot k ->
          Types.Px_promise
            {
              ballot;
              accepted = List.init k (fun i -> (Site_id.of_int (i + 1), (0, false)));
            })
        ballot (int_range 0 20);
    ]

let arb_msg = QCheck.make ~print:(Format.asprintf "%a" Types.pp_msg) msg_gen

let msg_code_roundtrip =
  QCheck.Test.make ~count:500 ~name:"buf_msg_code renders pp_msg exactly"
    arb_msg (fun m ->
      let b = Buffer.create 64 in
      Types.buf_msg_code b (Types.msg_code m);
      String.equal (Buffer.contents b) (Format.asprintf "%a" Types.pp_msg m))

let site_mask_roundtrip =
  QCheck.Test.make ~count:500 ~name:"buf_set_mask renders pp_set exactly"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 12) (int_range 1 60))
    (fun sites ->
      let set = Site_id.set_of_ints sites in
      let b = Buffer.create 64 in
      Site_id.buf_set_mask b (Site_id.set_to_mask set);
      String.equal (Buffer.contents b)
        (Format.asprintf "%a" Site_id.pp_set set))

let vtime_buf_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Vtime.buf renders Vtime.pp exactly"
    QCheck.(small_nat)
    (fun n ->
      let check t =
        let b = Buffer.create 16 in
        Vtime.buf b t;
        String.equal (Buffer.contents b) (Format.asprintf "%a" Vtime.pp t)
      in
      check (Vtime.of_int n) && check Vtime.infinity)

(* ---- binary storage vs eager model across ring wrap -------------------- *)

(* The same (at, topic, "v=<n>") sequence appended twice: once through
   the typed template path, once through the eager [addf] path into a
   second trace of the same small capacity.  Rendered output, topic
   filtering, and pattern search must agree even after the ring has
   wrapped and the interning table has been exercised. *)
let storage_model =
  QCheck.Test.make ~count:300
    ~name:"typed records render like eager strings across ring wrap"
    QCheck.(
      pair (int_range 1 8)
        (small_list (triple bool (int_range 0 1) small_nat)))
    (fun (capacity, ops) ->
      let binary = Trace.create ~capacity () in
      let model = Trace.create ~capacity () in
      List.iteri
        (fun i (typed, topic_i, v) ->
          let at = Vtime.of_int i in
          let topic = if topic_i = 0 then "a" else "b" in
          if typed then
            Trace.log1 binary ~at ~topic:(Trace.topic binary topic) tmpl_v v
          else Trace.addf binary ~at ~topic "v=%d" v;
          Trace.addf model ~at ~topic "v=%d" v)
        ops;
      let render t = Format.asprintf "%a" Trace.pp t in
      String.equal (render binary) (render model)
      && Bool.equal (Trace.mem binary ~pattern:"v=3") (Trace.mem model ~pattern:"v=3")
      && List.length (Trace.filter ~topic:"a" binary)
         = List.length (Trace.filter ~topic:"a" model))

(* ---- codec network vs eager network ------------------------------------ *)

(* Two identical runs over the same engine seed and send schedule — one
   network created with [payload_codec] (binary trace records, coded
   obs flow names), one without (the legacy eager path).  Every trace
   line and both obs exports must match byte for byte, across deliver /
   bounce / lost-at-B / dead-endpoint paths. *)

type scenario = {
  sc_n : int;
  sc_seed : int;
  sc_cut : bool;
  sc_crash : bool;
  sc_sends : (int * int * int * Types.msg) list;  (* at, src, dst-offset *)
}

let scenario_gen : scenario QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 3 5 >>= fun sc_n ->
  int_range 0 9999 >>= fun sc_seed ->
  bool >>= fun sc_cut ->
  bool >>= fun sc_crash ->
  list_size (int_range 1 40)
    (quad (int_range 0 4000) (int_range 1 sc_n) (int_range 1 (sc_n - 1)) msg_gen)
  >>= fun sc_sends -> return { sc_n; sc_seed; sc_cut; sc_crash; sc_sends }

let run_scenario ~codec sc =
  let trace = Trace.create () in
  let engine = Engine.create ~trace () in
  let obs = Obs.create () in
  let partition =
    if sc.sc_cut then
      Partition.make
        ~group2:(Site_id.set_of_ints [ sc.sc_n ])
        ~starts_at:(Vtime.of_int 1000) ~heals_at:(Vtime.of_int 3000) ~n:sc.sc_n
        ()
    else Partition.none
  in
  let net =
    if codec then
      Network.create ~engine ~n:sc.sc_n ~t_max:(Vtime.of_int 100) ~partition
        ~seed:(Int64.of_int sc.sc_seed) ~pp_payload:Types.pp_msg
        ~payload_codec:Types.msg_codec ~obs ()
    else
      Network.create ~engine ~n:sc.sc_n ~t_max:(Vtime.of_int 100) ~partition
        ~seed:(Int64.of_int sc.sc_seed) ~pp_payload:Types.pp_msg ~obs ()
  in
  Network.set_handler net (fun _ _ -> ());
  List.iter
    (fun (at, src, off, msg) ->
      let dst = ((src - 1 + off) mod sc.sc_n) + 1 in
      ignore
        (Engine.schedule_at engine ~at:(Vtime.of_int at)
           ~label:(Label.Static "qc-send") (fun () ->
             Network.send net ~src:(Site_id.of_int src)
               ~dst:(Site_id.of_int dst) msg)))
    sc.sc_sends;
  if sc.sc_crash then
    ignore
      (Engine.schedule_at engine ~at:(Vtime.of_int 2500)
         ~label:(Label.Static "qc-crash") (fun () ->
           Network.crash net (Site_id.of_int 2)));
  Engine.run engine;
  Obs.close_open_spans obs ~at:(Engine.now engine);
  ( Format.asprintf "%a" Trace.pp trace,
    Obs.to_trace_event_json obs,
    Obs.to_causality_json obs )

let network_codec_identical =
  QCheck.Test.make ~count:100
    ~name:"codec network run byte-identical to eager network run"
    (QCheck.make scenario_gen)
    (fun sc ->
      let t1, p1, c1 = run_scenario ~codec:true sc in
      let t2, p2, c2 = run_scenario ~codec:false sc in
      String.equal t1 t2 && String.equal p1 p2 && String.equal c1 c2)

let () =
  Alcotest.run "trace-qcheck"
    [
      ( "byte-identity",
        [
          QCheck_alcotest.to_alcotest msg_code_roundtrip;
          QCheck_alcotest.to_alcotest site_mask_roundtrip;
          QCheck_alcotest.to_alcotest vtime_buf_roundtrip;
          QCheck_alcotest.to_alcotest storage_model;
          QCheck_alcotest.to_alcotest network_codec_identical;
        ] );
    ]
