(* Tests for the distributed-database substrate (lib/db): the 2PL lock
   manager, the transaction manager over the commit protocols, and the
   workload invariants (balance conservation; lock queueing behind a
   blocked protocol). *)

module Lock_manager = Commit_db.Lock_manager
module Tm = Commit_db.Tm
module Workload = Commit_db.Workload

let check = Alcotest.check

let site = Site_id.of_int

let t_unit = Vtime.of_int 1000

(* ------------------------------------------------------------------ *)
(* Lock manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_shared_locks_compatible () =
  let lm = Lock_manager.create () in
  check Alcotest.bool "t1 S granted" true
    (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Shared = `Granted);
  check Alcotest.bool "t2 S granted" true
    (Lock_manager.acquire lm ~tid:2 ~key:"k" ~mode:Lock_manager.Shared = `Granted);
  check Alcotest.int "two holders" 2 (List.length (Lock_manager.holders lm ~key:"k"))

let test_exclusive_conflicts () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Exclusive);
  check Alcotest.bool "t2 X waits" true
    (Lock_manager.acquire lm ~tid:2 ~key:"k" ~mode:Lock_manager.Exclusive
    = `Waiting);
  check Alcotest.bool "t3 S waits too" true
    (Lock_manager.acquire lm ~tid:3 ~key:"k" ~mode:Lock_manager.Shared = `Waiting);
  check Alcotest.int "queue of two" 2 (List.length (Lock_manager.queued lm ~key:"k"))

let test_fifo_grant_on_release () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~tid:2 ~key:"k" ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~tid:3 ~key:"k" ~mode:Lock_manager.Exclusive);
  let granted = Lock_manager.release_all lm ~tid:1 in
  check Alcotest.int "one grant" 1 (List.length granted);
  check Alcotest.int "t2 first" 2 (List.hd granted).Lock_manager.tid;
  let granted2 = Lock_manager.release_all lm ~tid:2 in
  check Alcotest.int "t3 next" 3 (List.hd granted2).Lock_manager.tid

let test_shared_batch_grant () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~tid:2 ~key:"k" ~mode:Lock_manager.Shared);
  ignore (Lock_manager.acquire lm ~tid:3 ~key:"k" ~mode:Lock_manager.Shared);
  let granted = Lock_manager.release_all lm ~tid:1 in
  check Alcotest.int "both readers granted together" 2 (List.length granted)

let test_reentrant_and_upgrade () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Shared);
  check Alcotest.bool "re-acquire S" true
    (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Shared = `Granted);
  check Alcotest.bool "sole holder upgrades" true
    (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Exclusive
    = `Granted);
  check Alcotest.bool "now exclusive" true
    (Lock_manager.holds lm ~tid:1 ~key:"k" = Some Lock_manager.Exclusive);
  check Alcotest.bool "X implies any re-acquire" true
    (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Shared = `Granted)

let test_upgrade_waits_with_other_readers () =
  let lm = Lock_manager.create () in
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Shared);
  ignore (Lock_manager.acquire lm ~tid:2 ~key:"k" ~mode:Lock_manager.Shared);
  check Alcotest.bool "upgrade waits" true
    (Lock_manager.acquire lm ~tid:1 ~key:"k" ~mode:Lock_manager.Exclusive
    = `Waiting);
  (* When the other reader leaves, the upgrade is granted. *)
  let granted = Lock_manager.release_all lm ~tid:2 in
  check Alcotest.int "upgrade granted" 1 (List.length granted);
  check Alcotest.bool "exclusive now" true
    (Lock_manager.holds lm ~tid:1 ~key:"k" = Some Lock_manager.Exclusive)

let test_waits_for_and_cycle () =
  let lm = Lock_manager.create () in
  (* Simulate incremental 2PL acquiring: t1 holds a waits b; t2 holds b
     waits a — the classic deadlock. *)
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"a" ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~tid:2 ~key:"b" ~mode:Lock_manager.Exclusive);
  ignore (Lock_manager.acquire lm ~tid:1 ~key:"b" ~mode:Lock_manager.Exclusive);
  check Alcotest.bool "no cycle yet" true (Lock_manager.find_cycle lm = None);
  ignore (Lock_manager.acquire lm ~tid:2 ~key:"a" ~mode:Lock_manager.Exclusive);
  (match Lock_manager.find_cycle lm with
  | None -> Alcotest.fail "deadlock not detected"
  | Some cycle ->
      check Alcotest.(list int) "cycle members" [ 1; 2 ]
        (List.sort Int.compare cycle));
  (* Killing one releases the other. *)
  let granted = Lock_manager.release_all lm ~tid:2 in
  check Alcotest.bool "t1 unblocked on b" true
    (List.exists (fun g -> g.Lock_manager.tid = 1 && g.key = "b") granted);
  check Alcotest.bool "cycle gone" true (Lock_manager.find_cycle lm = None)

(* ------------------------------------------------------------------ *)
(* Transaction manager: failure-free                                   *)
(* ------------------------------------------------------------------ *)

let protocols_under_test : (string * Site.packed) list =
  [
    ("2pc", (module Two_phase));
    ("3pc", (module Three_phase));
    ("quorum", (module Quorum));
    ("termination", (module Termination.Static));
    ("termination-transient", (module Termination.Transient));
  ]

let bank ~pairs ~seed =
  Workload.bank_transfers ~n:3 ~pairs ~balance:1000 ~amount:70
    ~spacing:(Vtime.of_int 8000) ~seed

let test_bank_conserves_failure_free () =
  List.iter
    (fun (name, protocol) ->
      let w = bank ~pairs:8 ~seed:11L in
      let config =
        { (Tm.default_config ~protocol ()) with Tm.initial = w.Workload.initial }
      in
      let report = Tm.run config w.Workload.txns in
      check Alcotest.int
        (name ^ ": all committed")
        8
        (Tm.count_status report Tm.Txn_committed);
      check Alcotest.int
        (name ^ ": total conserved")
        (Workload.expected_total w ~prefix:"acct:")
        (Tm.balance_total report ~prefix:"acct:"))
    protocols_under_test

let test_tm_no_vote_aborts_cleanly () =
  let w = bank ~pairs:3 ~seed:5L in
  let txns =
    List.map
      (fun (t : Tm.txn_spec) ->
        if t.tid = 2 then { t with Tm.vote_no = [ site 2 ] } else t)
      w.Workload.txns
  in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial = w.Workload.initial;
    }
  in
  let report = Tm.run config txns in
  check Alcotest.int "two committed" 2 (Tm.count_status report Tm.Txn_committed);
  check Alcotest.int "one aborted" 1 (Tm.count_status report Tm.Txn_aborted);
  (* The aborted transfer moved nothing; the committed ones conserve. *)
  check Alcotest.int "total conserved"
    (Workload.expected_total w ~prefix:"acct:")
    (Tm.balance_total report ~prefix:"acct:")

let test_tm_duplicate_tids_rejected () =
  let config = Tm.default_config ~protocol:(module Two_phase) () in
  let t1 = Tm.txn ~tid:1 ~start_at:Vtime.zero [] in
  let raised =
    try
      ignore (Tm.run config [ t1; t1 ]);
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "duplicates rejected" true raised

let test_tm_stores_durable () =
  (* After a committed run, every touched store's WAL ends each
     transaction, and recovery finds nothing to do. *)
  let w = bank ~pairs:4 ~seed:3L in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial = w.Workload.initial;
    }
  in
  let report = Tm.run config w.Workload.txns in
  Array.iter
    (fun store ->
      let r = Durable_site.recover store in
      check Alcotest.(list int) "nothing redone" [] r.redone;
      check Alcotest.(list int) "nothing in doubt" [] r.in_doubt)
    report.Tm.stores

(* ------------------------------------------------------------------ *)
(* Hot-spot contention: blocking holds locks, termination releases     *)
(* ------------------------------------------------------------------ *)

let hot_partition =
  (* Cut site3 off during the first transaction's commit exchange. *)
  Partition.make ~group2:(Site_id.set_of_ints [ 3 ]) ~starts_at:(Vtime.of_int 10200)
    ~n:3 ()

let hot_config ~protocol =
  {
    (Tm.default_config ~protocol ()) with
    Tm.partition = hot_partition;
    delay = Delay.full ~t_max:t_unit;
  }

let test_2pc_blocked_txn_pins_lock_queue () =
  let w = Workload.hot_spot ~n:3 ~txns:4 ~spacing:(Vtime.of_int 10000) in
  let config = { (hot_config ~protocol:(module Two_phase)) with Tm.initial = w.Workload.initial } in
  let report = Tm.run config w.Workload.txns in
  (* t1 blocks; t2..t4 never get the hot lock. *)
  check Alcotest.int "one blocked" 1 (Tm.count_status report Tm.Txn_blocked);
  check Alcotest.int "rest starve" 3
    (Tm.count_status report Tm.Txn_waiting_locks)

let test_termination_blocked_txn_releases () =
  let w = Workload.hot_spot ~n:3 ~txns:4 ~spacing:(Vtime.of_int 10000) in
  let config =
    {
      (hot_config ~protocol:(module Termination.Static)) with
      Tm.initial = w.Workload.initial;
    }
  in
  let report = Tm.run config w.Workload.txns in
  check Alcotest.int "nothing blocked" 0 (Tm.count_status report Tm.Txn_blocked);
  check Alcotest.int "nothing starved" 0
    (Tm.count_status report Tm.Txn_waiting_locks);
  check Alcotest.int "all decided" 4
    (Tm.count_status report Tm.Txn_committed
    + Tm.count_status report Tm.Txn_aborted)

let test_lock_wait_shorter_under_termination () =
  let w = Workload.hot_spot ~n:3 ~txns:3 ~spacing:(Vtime.of_int 2000) in
  let run protocol =
    let config =
      { (Tm.default_config ~protocol ()) with Tm.initial = w.Workload.initial }
    in
    Tm.run config w.Workload.txns
  in
  let report = run (module Termination.Static : Site.S) in
  (* Failure-free, back-to-back conflicting transactions queue but all
     commit; lock waits are finite and recorded. *)
  check Alcotest.int "all commit" 3 (Tm.count_status report Tm.Txn_committed);
  List.iter
    (fun (r : Tm.txn_report) ->
      check Alcotest.bool "has lock wait" true (r.lock_wait <> None))
    report.Tm.txns

(* ------------------------------------------------------------------ *)
(* Atomicity at the storage level                                      *)
(* ------------------------------------------------------------------ *)

let test_ext2pc_partition_breaks_conservation () =
  (* Sweep partition instants over one transfer; the Section 3 ext2pc
     violation tears the transfer apart and the money total drifts.
     The termination protocol conserves at every instant. *)
  let transfer site_a site_b =
    [
      Tm.txn ~tid:1 ~start_at:Vtime.zero
        [
          (site_a, [ { Wal.key = "acct:a"; value = "930" } ]);
          (site_b, [ { Wal.key = "acct:b"; value = "1070" } ]);
        ];
    ]
  in
  let initial =
    [
      (site 2, [ ("acct:a", "1000") ]);
      (site 3, [ ("acct:b", "1000") ]);
    ]
  in
  let run protocol at =
    let partition =
      Partition.make ~group2:(Site_id.set_of_ints [ 3 ])
        ~starts_at:(Vtime.of_int at) ~n:3 ()
    in
    let config =
      {
        (Tm.default_config ~protocol ()) with
        Tm.initial;
        partition;
        delay = Delay.full ~t_max:t_unit;
      }
    in
    Tm.run config (transfer (site 2) (site 3))
  in
  let instants = List.init 24 (fun i -> 100 + (250 * i)) in
  let torn =
    List.exists
      (fun at ->
        Tm.balance_total (run (module Ext_two_phase) at) ~prefix:"acct:" <> 2000)
      instants
  in
  check Alcotest.bool "ext2pc tears a transfer at some instant" true torn;
  List.iter
    (fun at ->
      check Alcotest.int
        (Printf.sprintf "termination conserves at %d" at)
        2000
        (Tm.balance_total (run (module Termination.Static) at) ~prefix:"acct:"))
    instants

(* ------------------------------------------------------------------ *)
(* Property: conservation under random partitions                      *)
(* ------------------------------------------------------------------ *)

let conservation_property =
  QCheck.Test.make ~count:60
    ~name:"bank total conserved under termination protocol at any cut instant"
    QCheck.(pair (int_range 0 20000) (int_range 1 1000))
    (fun (at, seed) ->
      let w =
        Workload.bank_transfers ~n:4 ~pairs:4 ~balance:500 ~amount:33
          ~spacing:(Vtime.of_int 6000) ~seed:(Int64.of_int seed)
      in
      let partition =
        Partition.make
          ~group2:(Site_id.set_of_ints [ 3; 4 ])
          ~starts_at:(Vtime.of_int at) ~n:4 ()
      in
      let config =
        {
          (Tm.default_config ~protocol:(module Termination.Static) ~n:4 ()) with
          Tm.initial = w.Workload.initial;
          partition;
          seed = Int64.of_int (seed * 17);
        }
      in
      let report = Tm.run config w.Workload.txns in
      Tm.balance_total report ~prefix:"acct:"
      = Workload.expected_total w ~prefix:"acct:")

let test_readers_and_writers () =
  (* t1 writes k; t2 reads k (queued behind t1); t3 reads another key
     concurrently.  After t1 commits, t2 proceeds. *)
  let initial = [ (site 2, [ ("k", "0"); ("other", "0") ]) ] in
  let txns =
    [
      Tm.txn ~tid:1 ~start_at:Vtime.zero
        [ (site 2, [ { Wal.key = "k"; value = "1" } ]) ];
      Tm.txn ~tid:2 ~start_at:(Vtime.of_int 100)
        ~reads:[ (site 2, [ "k" ]) ]
        [];
      Tm.txn ~tid:3 ~start_at:(Vtime.of_int 100)
        ~reads:[ (site 2, [ "other" ]) ]
        [];
    ]
  in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial;
      delay = Delay.full ~t_max:t_unit;
    }
  in
  let report = Tm.run config txns in
  check Alcotest.int "all committed" 3 (Tm.count_status report Tm.Txn_committed);
  let find tid = List.find (fun (r : Tm.txn_report) -> r.spec.tid = tid) report.Tm.txns in
  let wait tid = Option.value ((find tid).lock_wait) ~default:(-1) in
  check Alcotest.bool "reader of k queued behind the writer" true (wait 2 > 0);
  check Alcotest.int "unrelated reader ran immediately" 0 (wait 3)

let test_concurrent_readers_share () =
  (* Two pure readers of the same key run concurrently. *)
  let initial = [ (site 2, [ ("k", "0") ]) ] in
  let txns =
    [
      Tm.txn ~tid:1 ~start_at:Vtime.zero ~reads:[ (site 2, [ "k" ]) ] [];
      Tm.txn ~tid:2 ~start_at:(Vtime.of_int 10) ~reads:[ (site 2, [ "k" ]) ] [];
    ]
  in
  let config =
    { (Tm.default_config ~protocol:(module Termination.Static) ()) with Tm.initial }
  in
  let report = Tm.run config txns in
  check Alcotest.int "both committed" 2 (Tm.count_status report Tm.Txn_committed);
  List.iter
    (fun (r : Tm.txn_report) ->
      check Alcotest.int
        (Printf.sprintf "t%d no lock wait" r.spec.tid)
        0
        (Option.value r.lock_wait ~default:(-1)))
    report.Tm.txns

(* ------------------------------------------------------------------ *)
(* Inventory workload: cross-site owner/receipt invariant              *)
(* ------------------------------------------------------------------ *)

let inventory_run ?(partition = Partition.none) protocol =
  let w =
    Workload.inventory ~n:3 ~items:6 ~orders:10 ~contention:0.4
      ~spacing:(Vtime.of_int 6000) ~seed:99L
  in
  let config =
    {
      (Tm.default_config ~protocol ()) with
      Tm.initial = w.Workload.initial;
      partition;
      delay = Delay.full ~t_max:t_unit;
    }
  in
  Tm.run config w.Workload.txns

let test_inventory_consistent_failure_free () =
  List.iter
    (fun (name, protocol) ->
      let report = inventory_run protocol in
      check Alcotest.int (name ^ ": all orders decided") 10
        (Tm.count_status report Tm.Txn_committed
        + Tm.count_status report Tm.Txn_aborted);
      match Workload.inventory_consistent report with
      | Ok () -> ()
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("2pc", (module Two_phase : Site.S));
      ("termination", (module Termination.Static));
    ]

let test_inventory_termination_survives_partition () =
  let partition =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int 20200) ~n:3 ()
  in
  let report = inventory_run ~partition (module Termination.Static) in
  (match Workload.inventory_consistent report with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check Alcotest.int "nothing blocked" 0 (Tm.count_status report Tm.Txn_blocked)

let test_inventory_ext2pc_can_tear () =
  (* Sweep partition instants; somewhere the ext2pc violation tears an
     order so owner and receipt disagree. *)
  let torn =
    List.exists
      (fun at ->
        let partition =
          Partition.make
            ~group2:(Site_id.set_of_ints [ 3 ])
            ~starts_at:(Vtime.of_int at) ~n:3 ()
        in
        let report = inventory_run ~partition (module Ext_two_phase) in
        Workload.inventory_consistent report <> Ok ())
      (List.init 40 (fun i -> 6000 + (500 * i)))
  in
  check Alcotest.bool "ext2pc tears an order at some instant" true torn

(* ------------------------------------------------------------------ *)
(* Resolver: in-doubt transactions after recovery                      *)
(* ------------------------------------------------------------------ *)

module Resolver = Commit_db.Resolver

let updates = [ { Wal.key = "x"; value = "1" } ]

(* Build a 3-site world where site2 crashed while prepared for t1, and
   the other sites' WALs differ per scenario. *)
let in_doubt_world ~peer1 ~peer3 =
  let stores = Array.init 3 (fun _ -> Durable_site.create ()) in
  let prep store =
    Durable_site.begin_transaction store ~tid:1;
    Durable_site.stage store ~tid:1 updates;
    Durable_site.prepare store ~tid:1
  in
  prep stores.(1);
  Durable_site.crash stores.(1);
  let shape store = function
    | `Committed ->
        Durable_site.begin_transaction store ~tid:1;
        Durable_site.stage store ~tid:1 updates;
        Durable_site.commit store ~tid:1 ()
    | `Aborted ->
        Durable_site.begin_transaction store ~tid:1;
        Durable_site.abort store ~tid:1
    | `Prepared -> prep store
    | `Active -> Durable_site.begin_transaction store ~tid:1
    | `Unknown -> ()
  in
  shape stores.(0) peer1;
  shape stores.(2) peer3;
  stores

let everyone _ = true

let outcome_t : Resolver.outcome Alcotest.testable =
  Alcotest.testable Resolver.pp_outcome (fun a b ->
      match (a, b) with
      | Resolver.Resolved_commit, Resolver.Resolved_commit
      | Resolver.Resolved_abort, Resolver.Resolved_abort ->
          true
      | Resolver.Still_in_doubt _, Resolver.Still_in_doubt _ -> true
      | _, _ -> false)

let test_resolver_commit_found () =
  let stores = in_doubt_world ~peer1:`Committed ~peer3:`Prepared in
  check outcome_t "peer committed -> commit" Resolver.Resolved_commit
    (Resolver.resolve ~stores ~self:(site 2) ~reachable:everyone ~tid:1)

let test_resolver_abort_found () =
  let stores = in_doubt_world ~peer1:`Aborted ~peer3:`Prepared in
  check outcome_t "peer aborted -> abort" Resolver.Resolved_abort
    (Resolver.resolve ~stores ~self:(site 2) ~reachable:everyone ~tid:1)

let test_resolver_nobody_prepared () =
  (* site3 never even began: the master cannot have committed. *)
  let stores = in_doubt_world ~peer1:`Prepared ~peer3:`Unknown in
  check outcome_t "unprepared peer -> abort" Resolver.Resolved_abort
    (Resolver.resolve ~stores ~self:(site 2) ~reachable:everyone ~tid:1)

let test_resolver_all_prepared_in_doubt () =
  let stores = in_doubt_world ~peer1:`Prepared ~peer3:`Prepared in
  check outcome_t "all prepared -> in doubt"
    (Resolver.Still_in_doubt "")
    (Resolver.resolve ~stores ~self:(site 2) ~reachable:everyone ~tid:1)

let test_resolver_unreachable_in_doubt () =
  (* A peer with the deciding evidence is unreachable: stay in doubt
     rather than guess. *)
  let stores = in_doubt_world ~peer1:`Committed ~peer3:`Prepared in
  let reachable s = Site_id.to_int s <> 1 in
  check outcome_t "decision unreachable -> in doubt"
    (Resolver.Still_in_doubt "")
    (Resolver.resolve ~stores ~self:(site 2) ~reachable ~tid:1)

let test_resolver_resolve_all_and_apply () =
  let stores = in_doubt_world ~peer1:`Committed ~peer3:`Prepared in
  let resolved =
    Resolver.resolve_all ~stores ~self:(site 2) ~reachable:everyone
  in
  (match resolved with
  | [ (1, Resolver.Resolved_commit) ] -> ()
  | _ -> Alcotest.fail "expected t1 resolved to commit");
  Resolver.apply stores.(1) ~tid:1 ~updates Resolver.Resolved_commit;
  check Alcotest.(option string) "updates applied" (Some "1")
    (Durable_site.read stores.(1) "x");
  check Alcotest.bool "ended" true (Durable_site.status stores.(1) ~tid:1 = `Ended)

let test_crash_recover_resolve_end_to_end () =
  (* One transfer; site3 dies after acknowledging its prepare (ack in
     flight), so the survivors commit while site3's store is left
     prepared-but-undecided.  Recovery reports it in doubt; the resolver
     finds the commit at a peer; applying it restores consistency and
     conserves the money. *)
  let w =
    {
      Workload.initial =
        [ (site 2, [ ("acct:a", "1000") ]); (site 3, [ ("acct:b", "1000") ]) ];
      txns =
        [
          Tm.txn ~tid:1 ~start_at:Vtime.zero
            [
              (site 2, [ { Wal.key = "acct:a"; value = "930" } ]);
              (site 3, [ { Wal.key = "acct:b"; value = "1070" } ]);
            ];
        ];
    }
  in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial = w.Workload.initial;
      delay = Delay.full ~t_max:t_unit;
      crashes = [ (site 3, Vtime.of_int 3500) ];
    }
  in
  let report = Tm.run config w.Workload.txns in
  check Alcotest.(list int) "site3 crashed" [ 3 ]
    (List.map Site_id.to_int report.Tm.crashed);
  check Alcotest.bool "survivors committed" true
    (Tm.count_status report Tm.Txn_committed = 1);
  (* site3's store: prepared, no decision. *)
  let store3 = report.Tm.stores.(2) in
  check Alcotest.bool "prepared persisted" true
    (Durable_site.status store3 ~tid:1 = `Prepared);
  check Alcotest.(option string) "update not applied yet" (Some "1000")
    (Durable_site.read store3 "acct:b");
  (* Recovery + resolution against the surviving peers. *)
  let resolved =
    Commit_db.Resolver.resolve_all ~stores:report.Tm.stores ~self:(site 3)
      ~reachable:(fun _ -> true)
  in
  (match resolved with
  | [ (1, Commit_db.Resolver.Resolved_commit) ] -> ()
  | _ -> Alcotest.fail "expected t1 resolved to commit");
  Commit_db.Resolver.apply store3 ~tid:1
    ~updates:[ { Wal.key = "acct:b"; value = "1070" } ]
    Commit_db.Resolver.Resolved_commit;
  check Alcotest.int "money conserved after resolution" 2000
    (Tm.balance_total report ~prefix:"acct:")

let conservation_any_atomic_protocol =
  QCheck.Test.make ~count:50
    ~name:"every atomic protocol conserves the bank total under partitions"
    QCheck.(triple (int_range 0 30000) (int_range 0 3) small_nat)
    (fun (at, proto_ix, seed) ->
      let protocol : Site.packed =
        match proto_ix with
        | 0 -> (module Two_phase)
        | 1 -> (module Three_phase)
        | 2 -> (module Quorum)
        | _ -> (module Termination.Static)
      in
      let w =
        Workload.bank_transfers ~n:3 ~pairs:5 ~balance:400 ~amount:21
          ~spacing:(Vtime.of_int 7000)
          ~seed:(Int64.of_int (seed + 2))
      in
      let partition =
        Partition.make
          ~group2:(Site_id.set_of_ints [ 3 ])
          ~starts_at:(Vtime.of_int at) ~n:3 ()
      in
      let config =
        {
          (Tm.default_config ~protocol ()) with
          Tm.initial = w.Workload.initial;
          partition;
          seed = Int64.of_int ((seed * 13) + 1);
        }
      in
      let report = Tm.run config w.Workload.txns in
      (* A *blocked* transaction legitimately leaves a partial snapshot:
         the cut-off site has not applied its half yet (that pending
         state is blocking's cost, not an atomicity violation).  The
         conservation claim is about quiescent runs. *)
      if
        Tm.count_status report Tm.Txn_blocked > 0
        || Tm.count_status report Tm.Txn_waiting_locks > 0
      then Tm.count_status report Tm.Txn_torn = 0
      else
        Tm.balance_total report ~prefix:"acct:"
        = Workload.expected_total w ~prefix:"acct:")

let test_tm_multi_partition_quorum () =
  (* The TM accepts multiple partitions too; quorum stays atomic (and
     conserves) even when the sites split three ways. *)
  let w =
    Workload.bank_transfers ~n:4 ~pairs:4 ~balance:500 ~amount:11
      ~spacing:(Vtime.of_int 7000) ~seed:4L
  in
  let partition =
    Partition.make_multiple
      ~groups:
        [
          Site_id.set_of_ints [ 1; 2 ];
          Site_id.set_of_ints [ 3 ];
          Site_id.set_of_ints [ 4 ];
        ]
      ~starts_at:(Vtime.of_int 9000) ~n:4 ()
  in
  let config =
    {
      (Tm.default_config ~protocol:(module Quorum) ~n:4 ()) with
      Tm.initial = w.Workload.initial;
      partition;
    }
  in
  let report = Tm.run config w.Workload.txns in
  check Alcotest.int "no torn transfers" 0 (Tm.count_status report Tm.Txn_torn);
  (* Blocked transfers leave pending halves; the conserved-total claim
     only applies when the run quiesced. *)
  if Tm.count_status report Tm.Txn_blocked = 0 then
    check Alcotest.int "money conserved"
      (Workload.expected_total w ~prefix:"acct:")
      (Tm.balance_total report ~prefix:"acct:")

(* ------------------------------------------------------------------ *)
(* uniform_mix smoke: queueing resolves                                *)
(* ------------------------------------------------------------------ *)

let test_uniform_mix_completes () =
  let w =
    Workload.uniform_mix ~n:3 ~txns:10 ~keys_per_txn:3 ~key_space:6
      ~spacing:(Vtime.of_int 1500) ~seed:21L
  in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial = w.Workload.initial;
    }
  in
  let report = Tm.run config w.Workload.txns in
  check Alcotest.int "all decided" 10
    (Tm.count_status report Tm.Txn_committed
    + Tm.count_status report Tm.Txn_aborted
    + Tm.count_status report Tm.Txn_deadlock_victim);
  (* Conservative (all-at-start) locking cannot deadlock. *)
  check Alcotest.int "no deadlocks" 0 report.Tm.deadlocks_resolved

let () =
  Alcotest.run "commit_db"
    [
      ( "lock_manager",
        [
          Alcotest.test_case "shared compatible" `Quick
            test_shared_locks_compatible;
          Alcotest.test_case "exclusive conflicts" `Quick
            test_exclusive_conflicts;
          Alcotest.test_case "FIFO grants" `Quick test_fifo_grant_on_release;
          Alcotest.test_case "shared batch grant" `Quick test_shared_batch_grant;
          Alcotest.test_case "reentrant and upgrade" `Quick
            test_reentrant_and_upgrade;
          Alcotest.test_case "upgrade waits for readers" `Quick
            test_upgrade_waits_with_other_readers;
          Alcotest.test_case "waits-for cycle detection" `Quick
            test_waits_for_and_cycle;
        ] );
      ( "tm",
        [
          Alcotest.test_case "bank conserves (all protocols)" `Slow
            test_bank_conserves_failure_free;
          Alcotest.test_case "no-vote aborts cleanly" `Quick
            test_tm_no_vote_aborts_cleanly;
          Alcotest.test_case "duplicate tids rejected" `Quick
            test_tm_duplicate_tids_rejected;
          Alcotest.test_case "stores durable after run" `Quick
            test_tm_stores_durable;
        ] );
      ( "contention",
        [
          Alcotest.test_case "2pc pins the lock queue" `Quick
            test_2pc_blocked_txn_pins_lock_queue;
          Alcotest.test_case "termination releases the queue" `Quick
            test_termination_blocked_txn_releases;
          Alcotest.test_case "lock waits recorded" `Quick
            test_lock_wait_shorter_under_termination;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "ext2pc tears, termination conserves" `Slow
            test_ext2pc_partition_breaks_conservation;
          QCheck_alcotest.to_alcotest conservation_property;
          QCheck_alcotest.to_alcotest conservation_any_atomic_protocol;
          Alcotest.test_case "multi-partition quorum conserves" `Quick
            test_tm_multi_partition_quorum;
        ] );
      ( "inventory",
        [
          Alcotest.test_case "consistent failure-free" `Quick
            test_inventory_consistent_failure_free;
          Alcotest.test_case "termination survives a partition" `Quick
            test_inventory_termination_survives_partition;
          Alcotest.test_case "ext2pc can tear an order" `Slow
            test_inventory_ext2pc_can_tear;
        ] );
      ( "reads",
        [
          Alcotest.test_case "readers queue behind writers" `Quick
            test_readers_and_writers;
          Alcotest.test_case "concurrent readers share" `Quick
            test_concurrent_readers_share;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "commit found at a peer" `Quick
            test_resolver_commit_found;
          Alcotest.test_case "abort found at a peer" `Quick
            test_resolver_abort_found;
          Alcotest.test_case "unprepared peer implies abort" `Quick
            test_resolver_nobody_prepared;
          Alcotest.test_case "all prepared stays in doubt" `Quick
            test_resolver_all_prepared_in_doubt;
          Alcotest.test_case "unreachable evidence stays in doubt" `Quick
            test_resolver_unreachable_in_doubt;
          Alcotest.test_case "resolve_all and apply" `Quick
            test_resolver_resolve_all_and_apply;
          Alcotest.test_case "crash -> recover -> resolve, end to end" `Quick
            test_crash_recover_resolve_end_to_end;
        ] );
      ( "workloads",
        [ Alcotest.test_case "uniform mix completes" `Quick test_uniform_mix_completes ] );
    ]
