(* Tests for the executable commit protocols (lib/protocols): the
   failure-free flows, the blocking behaviour of 2PC/3PC, the two-site
   resilience of extended 2PC and its multisite counterexample, both
   3PC+rules strawmen, and the quorum baseline. *)

let check = Alcotest.check

let site = Site_id.of_int

let t_unit = Vtime.of_int 1000

let config ?(n = 3) ?partition ?delay ?(seed = 1L) ?(votes = []) () =
  let base = Runner.default_config ~n ~t_unit () in
  {
    base with
    Runner.partition = Option.value partition ~default:Partition.none;
    delay = Option.value delay ~default:(Delay.uniform ~t_max:t_unit);
    seed;
    votes;
    trace_enabled = false;
  }

let partition ?heals_after ~g2 ~at ~n () =
  let starts_at = Vtime.of_int at in
  Partition.make
    ?heals_at:
      (Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heals_after)
    ~group2:(Site_id.set_of_ints g2) ~starts_at ~n ()

let decision_t : Types.decision option Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "none"
      | Some d -> Types.pp_decision fmt d)
    ( = )

let decisions result = Runner.decisions result

let all_protocols : Site.packed list =
  [
    (module Two_phase);
    (module Ext_two_phase);
    (module Three_phase);
    (module Three_phase_rules.Paper);
    (module Three_phase_rules.Strict);
    (module Three_phase_skeen);
    (module Quorum);
    (module Termination.Static);
    (module Termination.Transient);
  ]

(* ------------------------------------------------------------------ *)
(* Failure-free flows                                                  *)
(* ------------------------------------------------------------------ *)

let test_all_commit_failure_free () =
  List.iter
    (fun (module P : Site.S) ->
      List.iter
        (fun n ->
          List.iter
            (fun seed ->
              let result = Runner.run (module P) (config ~n ~seed ()) in
              check
                Alcotest.(list decision_t)
                (Printf.sprintf "%s n=%d seed=%Ld all commit" P.name n seed)
                (List.init n (fun _ -> Some Types.Commit))
                (decisions result))
            [ 1L; 7L; 99L ])
        [ 2; 3; 5 ])
    all_protocols

let test_all_abort_on_no_vote () =
  List.iter
    (fun (module P : Site.S) ->
      let result =
        Runner.run (module P) (config ~n:3 ~votes:[ (site 3, false) ] ())
      in
      check
        Alcotest.(list decision_t)
        (P.name ^ " aborts on a no vote")
        [ Some Types.Abort; Some Types.Abort; Some Types.Abort ]
        (decisions result))
    all_protocols

let test_2pc_message_count () =
  (* Fig. 1: xact, yes, commit — one per slave per phase. *)
  let result = Runner.run (module Two_phase) (config ~n:4 ()) in
  check Alcotest.int "3 * (n-1) messages" 9 result.net_stats.sent;
  check Alcotest.int "all delivered" 9 result.net_stats.delivered

let test_3pc_message_count () =
  (* Fig. 3: xact, yes, prepare, ack, commit. *)
  let result = Runner.run (module Three_phase) (config ~n:4 ()) in
  check Alcotest.int "5 * (n-1) messages" 15 result.net_stats.sent

let test_decision_time_failure_free () =
  (* The whole exchange fits in 5 one-hop generations: every protocol
     decides within 5T failure-free. *)
  List.iter
    (fun (module P : Site.S) ->
      let result =
        Runner.run (module P) (config ~delay:(Delay.full ~t_max:t_unit) ())
      in
      Array.iter
        (fun (s : Runner.site_result) ->
          match s.decided_at with
          | Some at ->
              check Alcotest.bool
                (Printf.sprintf "%s decides within 5T" P.name)
                true (at <= 5000)
          | None -> Alcotest.fail (P.name ^ ": site undecided failure-free"))
        result.sites)
    all_protocols

(* ------------------------------------------------------------------ *)
(* Two-phase commit blocks                                             *)
(* ------------------------------------------------------------------ *)

let test_2pc_blocks_under_partition () =
  (* Partition during the vote round: the master never hears site3 and
     waits forever; site3 waits forever in w. *)
  let p = partition ~g2:[ 3 ] ~at:1100 ~n:3 () in
  let result =
    Runner.run
      (module Two_phase)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "atomic" true v.atomic;
  check Alcotest.bool "blocked sites exist" true (v.blocked <> []);
  (* Blocking is indefinite: the final states are still in-protocol. *)
  check Alcotest.string "master stuck in w1" "w1"
    (Runner.site_result result (site 1)).final_state

let test_3pc_blocks_under_partition () =
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let result =
    Runner.run
      (module Three_phase)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "atomic" true v.atomic;
  check Alcotest.bool "blocked" true (v.blocked <> [])

(* ------------------------------------------------------------------ *)
(* Extended 2PC: resilient for n=2, broken for n=3 (Section 3)         *)
(* ------------------------------------------------------------------ *)

let small_grid ~n =
  let base = Runner.default_config ~n ~t_unit () in
  let grid = Scenario.default_grid ~n ~t_unit in
  Scenario.configs ~base grid

let test_ext2pc_two_site_resilient () =
  let summary = Sweep.run (module Ext_two_phase) (small_grid ~n:2) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_ext2pc_multisite_violates () =
  let summary = Sweep.run (module Ext_two_phase) (small_grid ~n:3) in
  check Alcotest.bool "violations found" true (summary.violations > 0)

let test_ext2pc_specific_counterexample () =
  (* Commits in flight to both slaves; the partition bounces commit3:
     site2 commits on its command while the master, seeing UD(commit3),
     aborts — the Section 3 observation transported to the Fig. 2
     protocol. *)
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let result =
    Runner.run
      (module Ext_two_phase)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  check decision_t "site2 committed" (Some Types.Commit)
    (Runner.site_result result (site 2)).decision;
  check decision_t "master aborted" (Some Types.Abort)
    (Runner.site_result result (site 1)).decision

(* ------------------------------------------------------------------ *)
(* 3PC + rules: both resolutions break (Lemma 3)                       *)
(* ------------------------------------------------------------------ *)

let test_3pc_rules_paper_counterexample () =
  (* The paper's own scenario: partitioning renders prepare3
     undeliverable; site3 times out in w3 and aborts while the p side
     commits. *)
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let result =
    Runner.run
      (module Three_phase_rules.Paper)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  check decision_t "site3 aborted" (Some Types.Abort)
    (Runner.site_result result (site 3)).decision;
  check decision_t "master committed" (Some Types.Commit)
    (Runner.site_result result (site 1)).decision;
  check decision_t "site2 committed" (Some Types.Commit)
    (Runner.site_result result (site 2)).decision

let test_3pc_rules_strict_survives_singleton_cuts () =
  (* The mechanically-derived strawman is consistent when G2 is a single
     slave... *)
  let base = Runner.default_config ~n:3 ~t_unit () in
  let grid =
    {
      (Scenario.default_grid ~n:3 ~t_unit) with
      Scenario.cuts = [ Site_id.set_of_ints [ 2 ]; Site_id.set_of_ints [ 3 ] ];
    }
  in
  let summary =
    Sweep.run (module Three_phase_rules.Strict) (Scenario.configs ~base grid)
  in
  check Alcotest.int "no violations on singleton cuts" 0 summary.violations

let test_3pc_rules_strict_breaks_on_split_acks () =
  (* ... but a two-slave cut can split the acks: one G2 slave acked
     before the partition (commits on p-timeout), the other's ack
     bounced (master aborts on p1 timeout). *)
  let summary = Sweep.run (module Three_phase_rules.Strict) (small_grid ~n:3) in
  check Alcotest.bool "violations on {2,3} cuts" true (summary.violations > 0)

let test_3pc_rules_never_blocks () =
  let summary = Sweep.run (module Three_phase_rules.Paper) (small_grid ~n:3) in
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

(* ------------------------------------------------------------------ *)
(* Quorum baseline                                                     *)
(* ------------------------------------------------------------------ *)

let test_quorum_values () =
  check Alcotest.int "q_c n=3" 2 (Quorum.commit_quorum ~n:3);
  check Alcotest.int "q_a n=3" 2 (Quorum.abort_quorum ~n:3);
  check Alcotest.int "q_c n=5" 3 (Quorum.commit_quorum ~n:5);
  check Alcotest.bool "q_c + q_a > n" true
    (Quorum.commit_quorum ~n:4 + Quorum.abort_quorum ~n:4 > 4)

let test_quorum_majority_decides_minority_blocks () =
  (* n=5, G2={4,5}: majority side terminates, minority blocks. *)
  let p = partition ~g2:[ 4; 5 ] ~at:2100 ~n:5 () in
  let result =
    Runner.run
      (module Quorum)
      (config ~n:5 ~partition:p
         ~delay:(Delay.full ~t_max:t_unit)
         ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "atomic" true v.atomic;
  List.iter
    (fun s ->
      check Alcotest.bool
        (Format.asprintf "%a decided" Site_id.pp s)
        true
        ((Runner.site_result result s).decision <> None))
    [ site 1; site 2; site 3 ];
  check Alcotest.bool "minority blocked" true (v.blocked <> [])

let test_quorum_never_violates () =
  let summary = Sweep.run (module Quorum) (small_grid ~n:3) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.bool "but blocking happens" true (summary.blocked_runs > 0)

let test_quorum_transient_eventually_decides () =
  (* The re-poll loop drains after the heal: nobody stays blocked. *)
  let p = partition ~g2:[ 2 ] ~at:2100 ~heals_after:12000 ~n:3 () in
  let result =
    Runner.run
      (module Quorum)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "resilient after heal" true (Verdict.resilient v)

module Heavy_master_quorum = Quorum.Make (struct
  let weight site = if Site_id.is_master site then 3 else 1
end)

let test_weighted_quorum_shifts_liveness () =
  (* n=4, master weight 3 (total 6, V_C=4, V_A=3).  Cut {3,4} during the
     ack phase: the master's side has weight 4 and can commit, where the
     uniform weighting (side size 2 < 3) blocks. *)
  check Alcotest.int "V_C" 4 (Heavy_master_quorum.commit_quorum ~n:4);
  check Alcotest.int "V_A" 3 (Heavy_master_quorum.abort_quorum ~n:4);
  check Alcotest.bool "V_C + V_A > total" true
    (Heavy_master_quorum.commit_quorum ~n:4
     + Heavy_master_quorum.abort_quorum ~n:4
    > Heavy_master_quorum.total_weight ~n:4);
  let p = partition ~g2:[ 3; 4 ] ~at:3050 ~n:4 () in
  let cfg = config ~n:4 ~partition:p ~delay:(Delay.full ~t_max:t_unit) () in
  let uniform = Runner.run (module Quorum) cfg in
  let weighted = Runner.run (module Heavy_master_quorum) cfg in
  let v_uniform = Verdict.of_result uniform in
  let v_weighted = Verdict.of_result weighted in
  check Alcotest.bool "uniform G1 blocked" true
    (List.mem (site 1) v_uniform.Verdict.blocked);
  check Alcotest.bool "weighted G1 decided" true
    ((Runner.site_result weighted (site 1)).decision <> None);
  check Alcotest.bool "weighted G2 still blocked" true
    (List.mem (site 3) v_weighted.Verdict.blocked
    || List.mem (site 4) v_weighted.Verdict.blocked);
  check Alcotest.bool "both atomic" true
    (v_uniform.Verdict.atomic && v_weighted.Verdict.atomic)

(* Universal safety: the quorum baseline never violates atomicity, under
   random simple or multiple partitions at random instants. *)
let quorum_universal_safety =
  QCheck.Test.make ~count:150 ~name:"quorum commit is atomic under any partitioning"
    QCheck.(triple (int_range 0 10000) small_nat bool)
    (fun (at, seed, multiple) ->
      let n = 5 in
      let rng = Rng.create (Int64.of_int (seed + 3)) in
      let partition_of () =
        if multiple then
          (* random partition into 3 cells *)
          let cells = [ ref []; ref []; ref [] ] in
          List.iter
            (fun s ->
              let c = List.nth cells (Rng.int rng ~bound:3) in
              c := s :: !c)
            (Site_id.all ~n);
          let groups =
            List.filter_map
              (fun c -> if !c = [] then None else Some (Site_id.Set.of_list !c))
              cells
          in
          if List.length groups < 2 then Partition.none
          else
            Partition.make_multiple ~groups ~starts_at:(Vtime.of_int at) ~n ()
        else
          let slaves = List.filter (fun _ -> Rng.bool rng) (Site_id.slaves ~n) in
          match slaves with
          | [] -> Partition.none
          | g2 ->
              Partition.make ~group2:(Site_id.Set.of_list g2)
                ~starts_at:(Vtime.of_int at) ~n ()
      in
      let cfg =
        config ~n
          ~partition:(partition_of ())
          ~seed:(Int64.of_int ((seed * 31) + 1))
          ()
      in
      let v = Verdict.of_result (Runner.run (module Quorum) cfg) in
      v.Verdict.atomic)

(* ------------------------------------------------------------------ *)
(* Skeen's cooperative termination (reference [4])                     *)
(* ------------------------------------------------------------------ *)

let test_skeen_survives_master_failure () =
  (* The class it was designed for: the master dies at any instant, no
     partition.  Every operational site decides, consistently. *)
  List.iter
    (fun at ->
      List.iter
        (fun delay ->
          List.iter
            (fun seed ->
              let cfg = config ~n:4 ~delay ~seed () in
              let cfg =
                {
                  cfg with
                  Runner.crashes = [ (site 1, Vtime.of_int at) ];
                }
              in
              let result = Runner.run (module Three_phase_skeen) cfg in
              let v = Verdict.of_result result in
              check Alcotest.bool
                (Printf.sprintf "atomic (crash at %d)" at)
                true v.atomic;
              check Alcotest.(list int)
                (Printf.sprintf "nothing blocked (crash at %d)" at)
                []
                (List.map Site_id.to_int v.blocked))
            [ 1L; 42L ])
        [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ])
    [ 100; 700; 1300; 1900; 2500; 3100; 3700; 4300; 4900 ]

let test_skeen_survives_slave_failure () =
  List.iter
    (fun at ->
      let cfg = config ~n:4 ~delay:(Delay.full ~t_max:t_unit) () in
      let cfg = { cfg with Runner.crashes = [ (site 3, Vtime.of_int at) ] } in
      let result = Runner.run (module Three_phase_skeen) cfg in
      let v = Verdict.of_result result in
      check Alcotest.bool (Printf.sprintf "atomic (slave dies at %d)" at) true
        v.atomic;
      check Alcotest.bool
        (Printf.sprintf "survivors decide (slave dies at %d)" at)
        true (v.blocked = []))
    [ 500; 1500; 2500; 3500; 4500 ]

let test_skeen_breaks_under_partition () =
  (* ... and the reason this paper exists: the same protocol is
     inconsistent under a simple network partition, because each side
     terminates over different evidence. *)
  let summary = Sweep.run (module Three_phase_skeen) (small_grid ~n:3) in
  check Alcotest.bool "violations under partitions" true
    (summary.violations > 0)

(* ------------------------------------------------------------------ *)
(* Direct actor-level tests: hand-fed deliveries, recorded sends       *)
(* ------------------------------------------------------------------ *)

type actor_probe = {
  engine : Engine.t;
  sent : (Site_id.t * Types.msg) list ref;
  decided : Types.decision option ref;
}

let make_probe_ctx ~self ~n =
  let engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
  let sent = ref [] and decided = ref None in
  let ctx =
    Ctx.make ~engine ~n ~t_unit ~self ~trans_id:1
      ~send:(fun dst msg -> sent := (dst, msg) :: !sent)
      ~on_decide:(fun d -> decided := Some d)
      ~on_reason:(fun _ -> ())
      ()
  in
  (ctx, { engine; sent; decided })

let deliver_to actor msg ~src ~dst =
  Two_phase.on_delivery actor
    (Network.Msg { Network.src; dst; payload = msg; sent_at = Vtime.zero })

let test_actor_2pc_master_steps () =
  let ctx, probe = make_probe_ctx ~self:(site 1) ~n:3 in
  let master = Two_phase.create ctx Site.Master_role in
  check Alcotest.string "starts in q1" "q1" (Two_phase.state_name master);
  Two_phase.begin_transaction master;
  check Alcotest.string "now w1" "w1" (Two_phase.state_name master);
  check Alcotest.int "xact to both slaves" 2 (List.length !(probe.sent));
  deliver_to master Types.Yes ~src:(site 2) ~dst:(site 1);
  check Alcotest.string "still w1 after one vote" "w1"
    (Two_phase.state_name master);
  check Alcotest.bool "undecided" true (!(probe.decided) = None);
  deliver_to master Types.Yes ~src:(site 3) ~dst:(site 1);
  check Alcotest.string "c1 after all votes" "c1" (Two_phase.state_name master);
  check Alcotest.bool "decided commit" true
    (!(probe.decided) = Some Types.Commit);
  (* 2 xacts + 2 commits *)
  check Alcotest.int "commands sent" 4 (List.length !(probe.sent))

let test_actor_2pc_master_abort_on_no () =
  let ctx, probe = make_probe_ctx ~self:(site 1) ~n:3 in
  let master = Two_phase.create ctx Site.Master_role in
  Two_phase.begin_transaction master;
  deliver_to master Types.No ~src:(site 3) ~dst:(site 1);
  check Alcotest.string "a1" "a1" (Two_phase.state_name master);
  check Alcotest.bool "decided abort" true (!(probe.decided) = Some Types.Abort);
  (* a straggler vote afterwards is ignored *)
  deliver_to master Types.Yes ~src:(site 2) ~dst:(site 1);
  check Alcotest.string "still a1" "a1" (Two_phase.state_name master)

let test_actor_2pc_slave_steps () =
  let ctx, probe = make_probe_ctx ~self:(site 2) ~n:3 in
  let slave = Two_phase.create ctx (Site.Slave_role { vote_yes = true }) in
  Two_phase.begin_transaction slave;
  (* begin_transaction is master-only: slaves must ignore it *)
  check Alcotest.string "slaves ignore begin" "q" (Two_phase.state_name slave);
  deliver_to slave Types.Xact ~src:(site 1) ~dst:(site 2);
  check Alcotest.string "voted, in w" "w" (Two_phase.state_name slave);
  check Alcotest.bool "sent yes" true
    (List.mem (site 1, Types.Yes) !(probe.sent));
  (* duplicate xact is ignored *)
  deliver_to slave Types.Xact ~src:(site 1) ~dst:(site 2);
  check Alcotest.int "no duplicate vote" 1 (List.length !(probe.sent));
  deliver_to slave Types.Commit_cmd ~src:(site 1) ~dst:(site 2);
  check Alcotest.string "committed" "c" (Two_phase.state_name slave);
  check Alcotest.bool "decided" true (!(probe.decided) = Some Types.Commit)

let test_actor_2pc_slave_command_overtakes_xact () =
  (* The network gives no FIFO guarantee: an abort command may arrive
     before the transaction itself.  The slave must obey it rather than
     wait forever. *)
  let ctx, probe = make_probe_ctx ~self:(site 3) ~n:3 in
  let slave = Two_phase.create ctx (Site.Slave_role { vote_yes = true }) in
  deliver_to slave Types.Abort_cmd ~src:(site 1) ~dst:(site 3);
  check Alcotest.string "aborted from q" "a" (Two_phase.state_name slave);
  check Alcotest.bool "decided abort" true (!(probe.decided) = Some Types.Abort)

(* ------------------------------------------------------------------ *)
(* The generic FSA interpreter                                         *)
(* ------------------------------------------------------------------ *)

let test_fsa_actor_enumeration () =
  let fsa = Commit_fsa.Catalog.three_phase in
  check Alcotest.int "five waiting states" 5
    (List.length (Fsa_actor.waiting_states fsa));
  check Alcotest.int "4^5 assignments" 1024
    (List.length (Fsa_actor.all_assignments fsa));
  let fsa2 = Commit_fsa.Catalog.two_phase in
  (* 2pc waits in w1, q, w *)
  check Alcotest.int "2pc waiting states" 3
    (List.length (Fsa_actor.waiting_states fsa2))

let test_fsa_actor_rejects_bad_assignment () =
  let fsa = Commit_fsa.Catalog.three_phase in
  let bad =
    {
      Fsa_actor.timeouts = [ ((Commit_fsa.Machine.Master, "c1"), `To_commit) ];
      uds = [];
    }
  in
  let raised =
    try
      ignore (Fsa_actor.make ~name:"bad" fsa bad);
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "final-state assignment rejected" true raised

let derived_ext2pc () =
  Fsa_actor.of_augment ~name:"ext2pc-derived"
    (Commit_fsa.Augment.apply_rules
       (Commit_fsa.Analysis.analyze Commit_fsa.Catalog.extended_two_phase ~n:2))

let test_fsa_actor_matches_handwritten_ext2pc () =
  (* The Rule(a)/(b)-derived interpretation of the ext2pc FSA makes the
     same decision as the hand-written actor in every n=2 scenario. *)
  let derived = derived_ext2pc () in
  List.iter
    (fun cfg ->
      let a = Runner.decisions (Runner.run derived cfg) in
      let b = Runner.decisions (Runner.run (module Ext_two_phase) cfg) in
      check
        Alcotest.(list decision_t)
        (Scenario.config_id cfg) b a)
    (small_grid ~n:2)

let test_fsa_actor_failure_free_flows () =
  (* The interpreter handles votes and the happy path for each
     catalogued FSA. *)
  List.iter
    (fun fsa ->
      let timeouts =
        List.map (fun st -> (st, `To_abort)) (Fsa_actor.waiting_states fsa)
      in
      let proto =
        Fsa_actor.make ~name:"interp" fsa { Fsa_actor.timeouts; uds = [] }
      in
      let commit = Runner.run proto (config ()) in
      check Alcotest.bool
        (fsa.Commit_fsa.Machine.name ^ " commits failure-free")
        true
        (List.for_all (( = ) (Some Types.Commit)) (Runner.decisions commit));
      let abort =
        Runner.run proto (config ~votes:[ (site 2, false) ] ())
      in
      check Alcotest.bool
        (fsa.Commit_fsa.Machine.name ^ " aborts on a no vote")
        true
        (List.for_all (( = ) (Some Types.Abort)) (Runner.decisions abort)))
    Commit_fsa.Catalog.all

(* ------------------------------------------------------------------ *)
(* Types and Runner plumbing                                           *)
(* ------------------------------------------------------------------ *)

let test_types_pp () =
  let str m = Format.asprintf "%a" Types.pp_msg m in
  check Alcotest.string "xact" "xact" (str Types.Xact);
  check Alcotest.string "probe" "probe(t7,site3)"
    (str (Types.Probe { trans_id = 7; slave = site 3 }));
  check Alcotest.string "inquiry" "state-inquiry(site2)"
    (str (Types.State_inquiry { coordinator = site 2 }));
  check Alcotest.string "answer" "state-answer(prepared)"
    (str (Types.State_answer { phase = Types.Ph_prepared }));
  check Alcotest.string "tag" "probe"
    (Types.msg_tag (Types.Probe { trans_id = 1; slave = site 2 }));
  check Alcotest.bool "decision equality" true
    (Types.equal_decision Types.Commit Types.Commit);
  check Alcotest.bool "decision inequality" false
    (Types.equal_decision Types.Commit Types.Abort)

let test_runner_rejects_tiny_n () =
  let raised =
    try
      ignore (Runner.run (module Two_phase) (config ~n:1 ()));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "n=1 rejected" true raised

let test_runner_horizon_cuts_off () =
  (* A horizon before the first timer leaves everyone undecided but the
     run still returns. *)
  let cfg = config ~delay:(Delay.full ~t_max:t_unit) () in
  let cfg =
    {
      cfg with
      Runner.horizon = Vtime.of_int 500;
      partition =
        Partition.make
          ~group2:(Site_id.set_of_ints [ 3 ])
          ~starts_at:Vtime.zero ~n:3 ();
    }
  in
  let result = Runner.run (module Termination.Static) cfg in
  check Alcotest.bool "nobody decided yet" true
    (List.for_all (( = ) None) (Runner.decisions result));
  check Alcotest.bool "clock within horizon" true (result.finished_at <= 500)

let test_runner_crash_exclusion () =
  (* A crashed site is flagged and excluded from the verdict. *)
  let cfg = config ~delay:(Delay.full ~t_max:t_unit) () in
  let cfg = { cfg with Runner.crashes = [ (site 3, Vtime.of_int 500) ] } in
  let result = Runner.run (module Termination.Static) cfg in
  check Alcotest.bool "crashed flag" true
    (Runner.site_result result (site 3)).crashed;
  let v = Verdict.of_result result in
  check Alcotest.(list int) "verdict crashed" [ 3 ]
    (List.map Site_id.to_int v.crashed);
  check Alcotest.bool "survivors consistent" true v.atomic

let test_runner_trace_toggle () =
  let on = Runner.run (module Two_phase) { (config ()) with Runner.trace_enabled = true } in
  let off = Runner.run (module Two_phase) (config ()) in
  check Alcotest.bool "trace recorded" true (Trace.length on.trace > 0);
  check Alcotest.int "trace suppressed" 0 (Trace.length off.trace)

let test_runner_deterministic_replay () =
  (* Two runs of the same seeded config must be indistinguishable: the
     same number of engine events and byte-identical rendered traces.
     This pins down the optimized engine/trace path — any hidden
     nondeterminism (hash order, physical time, allocation-dependent
     ordering) would show up here. *)
  let cfg =
    {
      (config ~n:5
         ~partition:
           (partition ~heals_after:3000 ~g2:[ 4; 5 ] ~at:2100 ~n:5 ())
         ~delay:(Delay.full ~t_max:t_unit) ())
      with
      Runner.trace_enabled = true;
    }
  in
  let a = Runner.run (module Three_phase_skeen) cfg in
  let b = Runner.run (module Three_phase_skeen) cfg in
  check Alcotest.int "same events_run" a.Runner.events_run
    b.Runner.events_run;
  check Alcotest.bool "ran a nontrivial schedule" true
    (a.Runner.events_run > 0);
  let render (r : Runner.result) = Format.asprintf "%a" Trace.pp r.trace in
  check Alcotest.string "byte-identical traces" (render a) (render b)

(* ------------------------------------------------------------------ *)
(* Ctx plumbing                                                        *)
(* ------------------------------------------------------------------ *)

let make_ctx () =
  let engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
  let ctx =
    Ctx.make ~engine ~n:3 ~t_unit ~self:(site 2) ~trans_id:9
      ~send:(fun _ _ -> ())
      ~on_decide:(fun _ -> ())
      ~on_reason:(fun _ -> ())
      ()
  in
  (engine, ctx)

let test_ctx_decide_flip_raises () =
  let _, ctx = make_ctx () in
  Ctx.decide ctx Types.Commit;
  Ctx.decide ctx Types.Commit;
  (* idempotent *)
  check Alcotest.bool "decided" true (Ctx.decided ctx = Some Types.Commit);
  let raised =
    try
      Ctx.decide ctx Types.Abort;
      false
    with Failure _ -> true
  in
  check Alcotest.bool "flip raises" true raised

let test_ctx_timer_slot () =
  let engine, ctx = make_ctx () in
  let slot = Ctx.Timer_slot.create () in
  let fired = ref [] in
  Ctx.Timer_slot.set ctx slot ~mult_t:2 ~label:(Label.Static "a") (fun () -> fired := "a" :: !fired);
  check Alcotest.bool "armed" true (Ctx.Timer_slot.armed slot);
  (* Resetting replaces the pending timer. *)
  Ctx.Timer_slot.set ctx slot ~mult_t:3 ~label:(Label.Static "b") (fun () -> fired := "b" :: !fired);
  Engine.run engine;
  check Alcotest.(list string) "only b fired" [ "b" ] !fired;
  check Alcotest.int "at 3T" 3000 (Engine.now engine);
  check Alcotest.bool "disarmed after fire" false (Ctx.Timer_slot.armed slot);
  Ctx.Timer_slot.set ctx slot ~mult_t:1 ~label:(Label.Static "c") (fun () -> fired := "c" :: !fired);
  Ctx.Timer_slot.cancel slot;
  Engine.run engine;
  check Alcotest.(list string) "cancel works" [ "b" ] !fired

let () =
  Alcotest.run "commit_protocols"
    [
      ( "failure-free",
        [
          Alcotest.test_case "all protocols commit" `Slow
            test_all_commit_failure_free;
          Alcotest.test_case "all protocols abort on a no vote" `Quick
            test_all_abort_on_no_vote;
          Alcotest.test_case "2pc message count" `Quick test_2pc_message_count;
          Alcotest.test_case "3pc message count" `Quick test_3pc_message_count;
          Alcotest.test_case "decision within 5T" `Quick
            test_decision_time_failure_free;
        ] );
      ( "blocking",
        [
          Alcotest.test_case "2pc blocks under partition" `Quick
            test_2pc_blocks_under_partition;
          Alcotest.test_case "3pc blocks under partition" `Quick
            test_3pc_blocks_under_partition;
        ] );
      ( "ext2pc",
        [
          Alcotest.test_case "two-site resilient (sweep)" `Slow
            test_ext2pc_two_site_resilient;
          Alcotest.test_case "multisite violates (sweep)" `Slow
            test_ext2pc_multisite_violates;
          Alcotest.test_case "Section 3 counterexample" `Quick
            test_ext2pc_specific_counterexample;
        ] );
      ( "3pc+rules",
        [
          Alcotest.test_case "paper counterexample at n=3" `Quick
            test_3pc_rules_paper_counterexample;
          Alcotest.test_case "strict survives singleton cuts" `Slow
            test_3pc_rules_strict_survives_singleton_cuts;
          Alcotest.test_case "strict breaks on split acks" `Slow
            test_3pc_rules_strict_breaks_on_split_acks;
          Alcotest.test_case "rules never block" `Slow test_3pc_rules_never_blocks;
        ] );
      ( "quorum",
        [
          QCheck_alcotest.to_alcotest quorum_universal_safety;
          Alcotest.test_case "weighted votes shift liveness" `Quick
            test_weighted_quorum_shifts_liveness;
          Alcotest.test_case "quorum sizes" `Quick test_quorum_values;
          Alcotest.test_case "majority decides, minority blocks" `Quick
            test_quorum_majority_decides_minority_blocks;
          Alcotest.test_case "never violates, does block" `Slow
            test_quorum_never_violates;
          Alcotest.test_case "transient partition drains" `Quick
            test_quorum_transient_eventually_decides;
        ] );
      ( "skeen",
        [
          Alcotest.test_case "survives master failure" `Slow
            test_skeen_survives_master_failure;
          Alcotest.test_case "survives slave failure" `Quick
            test_skeen_survives_slave_failure;
          Alcotest.test_case "breaks under partition" `Slow
            test_skeen_breaks_under_partition;
        ] );
      ( "actors",
        [
          Alcotest.test_case "2pc master steps" `Quick test_actor_2pc_master_steps;
          Alcotest.test_case "2pc master aborts on no" `Quick
            test_actor_2pc_master_abort_on_no;
          Alcotest.test_case "2pc slave steps" `Quick test_actor_2pc_slave_steps;
          Alcotest.test_case "command overtaking xact" `Quick
            test_actor_2pc_slave_command_overtakes_xact;
        ] );
      ( "fsa-actor",
        [
          Alcotest.test_case "enumeration sizes" `Quick
            test_fsa_actor_enumeration;
          Alcotest.test_case "bad assignment rejected" `Quick
            test_fsa_actor_rejects_bad_assignment;
          Alcotest.test_case "derived ext2pc matches hand-written" `Slow
            test_fsa_actor_matches_handwritten_ext2pc;
          Alcotest.test_case "failure-free flows interpret" `Quick
            test_fsa_actor_failure_free_flows;
        ] );
      ( "runner",
        [
          Alcotest.test_case "types pretty-printing" `Quick test_types_pp;
          Alcotest.test_case "rejects n=1" `Quick test_runner_rejects_tiny_n;
          Alcotest.test_case "horizon cutoff" `Quick test_runner_horizon_cuts_off;
          Alcotest.test_case "crash exclusion" `Quick test_runner_crash_exclusion;
          Alcotest.test_case "trace toggle" `Quick test_runner_trace_toggle;
          Alcotest.test_case "deterministic replay" `Quick
            test_runner_deterministic_replay;
        ] );
      ( "ctx",
        [
          Alcotest.test_case "decision flip raises" `Quick
            test_ctx_decide_flip_raises;
          Alcotest.test_case "timer slot" `Quick test_ctx_timer_slot;
        ] );
    ]
