(* Tests for the scenario checker (lib/checker): verdicts, grids,
   sweeps, and the Section 6 case classifier. *)

let check = Alcotest.check


let t_unit = Vtime.of_int 1000

let config ?(n = 3) ?(partition = Partition.none)
    ?(delay = Delay.uniform ~t_max:t_unit) ?(seed = 1L) () =
  let base = Runner.default_config ~n ~t_unit () in
  { base with Runner.partition; delay; seed; trace_enabled = false }

let partition ?heals_after ~g2 ~at ~n () =
  let starts_at = Vtime.of_int at in
  Partition.make
    ?heals_at:
      (Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heals_after)
    ~group2:(Site_id.set_of_ints g2) ~starts_at ~n ()

(* ------------------------------------------------------------------ *)
(* Verdict                                                             *)
(* ------------------------------------------------------------------ *)

let test_verdict_committed () =
  let result = Runner.run (module Termination.Static) (config ()) in
  let v = Verdict.of_result result in
  check Alcotest.bool "atomic" true v.atomic;
  check Alcotest.int "3 committed" 3 (List.length v.committed);
  check Alcotest.bool "resilient" true (Verdict.resilient v);
  check Alcotest.bool "outcome" true (Verdict.outcome v = `Committed);
  check Alcotest.bool "has max decision time" true (v.max_decision_time <> None)

let test_verdict_mixed () =
  (* The ext2pc Section 3 counterexample yields a Mixed outcome. *)
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let result =
    Runner.run
      (module Ext_two_phase)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "not atomic" false v.atomic;
  check Alcotest.bool "mixed" true (Verdict.outcome v = `Mixed);
  check Alcotest.bool "not resilient" false (Verdict.resilient v)

let test_verdict_blocked_and_vacuous () =
  (* 2pc with the transaction cut off from site3 before delivery:
     master+site2 block mid-protocol; site3 never heard of it. *)
  let p = partition ~g2:[ 3 ] ~at:100 ~n:3 () in
  let result =
    Runner.run
      (module Two_phase)
      (config ~partition:p ~delay:(Delay.full ~t_max:t_unit) ())
  in
  let v = Verdict.of_result result in
  check Alcotest.bool "undecided" true (Verdict.outcome v = `Undecided);
  check Alcotest.bool "blocked nonempty" true (v.blocked <> []);
  check Alcotest.(list int) "site3 vacuous"
    [ 3 ]
    (List.map Site_id.to_int v.vacuous);
  check Alcotest.bool "not resilient" false (Verdict.resilient v)

(* ------------------------------------------------------------------ *)
(* Scenario grids                                                      *)
(* ------------------------------------------------------------------ *)

let test_all_cuts () =
  let cuts3 = Scenario.all_cuts ~n:3 in
  check Alcotest.int "2^(n-1)-1 cuts for n=3" 3 (List.length cuts3);
  let cuts5 = Scenario.all_cuts ~n:5 in
  check Alcotest.int "15 cuts for n=5" 15 (List.length cuts5);
  check Alcotest.bool "master never in G2" true
    (List.for_all
       (fun cut -> not (Site_id.Set.mem Site_id.master cut))
       cuts5);
  check Alcotest.bool "no empty cut" true
    (List.for_all (fun cut -> not (Site_id.Set.is_empty cut)) cuts5)

let test_instants () =
  let ts = Scenario.instants ~t_unit ~until_mult:2 ~per_t:4 in
  check Alcotest.int "8 instants" 8 (List.length ts);
  check Alcotest.int "first" 250 (List.hd ts);
  check Alcotest.int "last" 2000 (List.nth ts 7)

let test_configs_product () =
  let base = Runner.default_config ~n:3 ~t_unit () in
  let grid =
    {
      Scenario.cuts = Scenario.all_cuts ~n:3;
      starts = Scenario.instants ~t_unit ~until_mult:2 ~per_t:1;
      heals_after = [ None; Some (Vtime.of_int 500) ];
      delays = [ Delay.minimal ];
      seeds = [ 1L; 2L ];
      votes = [ [] ];
      crashes = [ [] ];
    }
  in
  let configs = Scenario.configs ~base grid in
  check Alcotest.int "cartesian size" (3 * 2 * 2 * 1 * 2) (List.length configs)

let test_all_multi_cuts () =
  check Alcotest.(list (list (list int))) "n=2 has none" []
    (List.map
       (List.map (fun s -> List.map Site_id.to_int (Site_id.Set.elements s)))
       (Scenario.all_multi_cuts ~n:2));
  (* Stirling numbers: S(3,3) = 1; S(4,3) + S(4,4) = 6 + 1 = 7. *)
  check Alcotest.int "n=3 -> 1 multiple partitioning" 1
    (List.length (Scenario.all_multi_cuts ~n:3));
  check Alcotest.int "n=4 -> 7 multiple partitionings" 7
    (List.length (Scenario.all_multi_cuts ~n:4));
  List.iter
    (fun cells ->
      let union =
        List.fold_left Site_id.Set.union Site_id.Set.empty cells
      in
      check Alcotest.int "cells cover all sites" 4 (Site_id.Set.cardinal union);
      check Alcotest.bool "at least 3 cells" true (List.length cells >= 3))
    (Scenario.all_multi_cuts ~n:4)

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let tiny_grid ~n =
  let base = Runner.default_config ~n ~t_unit () in
  Scenario.configs ~base
    {
      Scenario.cuts = Scenario.all_cuts ~n;
      starts = Scenario.instants ~t_unit ~until_mult:6 ~per_t:1;
      heals_after = [ None ];
      delays = [ Delay.full ~t_max:t_unit ];
      seeds = [ 1L ];
      votes = [ [] ];
      crashes = [ [] ];
    }

let test_sweep_accounting () =
  let configs = tiny_grid ~n:3 in
  let summary = Sweep.run (module Termination.Static) configs in
  check Alcotest.int "all runs counted" (List.length configs) summary.runs;
  check Alcotest.int "partition"
    (summary.committed + summary.aborted + summary.undecided
   + summary.violations)
    summary.runs;
  check Alcotest.int "termination never violates" 0 summary.violations

let test_sweep_collects_examples () =
  let summary = Sweep.run ~keep:2 (module Two_phase) (tiny_grid ~n:3) in
  check Alcotest.bool "blocked runs found" true (summary.blocked_runs > 0);
  check Alcotest.bool "examples kept" true
    (List.length summary.blocked_examples > 0
    && List.length summary.blocked_examples <= 2)

(* ------------------------------------------------------------------ *)
(* Case classifier                                                     *)
(* ------------------------------------------------------------------ *)

let observe ?heals_after ~g2 ~at ?(delay = Delay.full ~t_max:t_unit)
    ?(protocol = (module Termination.Static : Site.S)) ?(n = 3) () =
  let p = partition ?heals_after ~g2 ~at ~n () in
  Cases.observe protocol (config ~n ~partition:p ~delay ())

let case_t : Timing.case option Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "none"
      | Some c -> Timing.pp_case fmt c)
    ( = )

let test_case_none_before_prepare () =
  (* Partition before any prepare exists: outside the Section 6 tree. *)
  let obs = observe ~g2:[ 3 ] ~at:100 () in
  check case_t "no case" None obs.case

let test_case_1 () =
  (* Partition at 2.1T: prepares leave at 2T with full delays and all
     bounce — no prepare passes B. *)
  let obs = observe ~g2:[ 3 ] ~at:2100 () in
  check case_t "case 1" (Some Timing.Case_1) obs.case

let test_case_3_1 () =
  (* Prepares delivered at 3T; the cut at 3.05T bounces the acks. *)
  let obs = observe ~g2:[ 3 ] ~at:3050 () in
  check case_t "case 3.1" (Some Timing.Case_3_1) obs.case

let test_case_2_1 () =
  (* The asymmetric per-link scenario cut at 1815 ticks: prepare3 was
     delivered (1810) but its ack (1820) bounces, and prepare4 (slow
     link) bounces -> some prepares pass, some acks do not. *)
  let delay =
    Delay.Per_link
      (fun src dst ->
        match (Site_id.to_int src, Site_id.to_int dst) with
        | 1, 4 | 4, 1 -> Vtime.of_int 900
        | 1, 3 | 3, 1 -> Vtime.of_int 10
        | _, _ -> Vtime.of_int 100)
  in
  let obs = observe ~g2:[ 3; 4 ] ~at:1815 ~delay ~n:4 () in
  check case_t "case 2.1" (Some Timing.Case_2_1) obs.case

let test_case_3_2_2_2_static_unbounded () =
  let obs = observe ~g2:[ 2 ] ~at:1750 ~heals_after:1000
      ~delay:(Delay.uniform ~t_max:t_unit) () in
  check case_t "case 3.2.2.2" (Some Timing.Case_3_2_2_2) obs.case;
  (* Static protocol: the probing slave never decides. *)
  check Alcotest.bool "unbounded wait" true
    (List.exists (fun (_, w) -> w = None) obs.probe_waits)

let test_case_3_2_2_2_transient_bounded () =
  let obs =
    observe
      ~protocol:(module Termination.Transient)
      ~g2:[ 2 ] ~at:1750 ~heals_after:1000
      ~delay:(Delay.uniform ~t_max:t_unit) ()
  in
  check case_t "case 3.2.2.2" (Some Timing.Case_3_2_2_2) obs.case;
  List.iter
    (fun (s, w) ->
      match w with
      | Some w ->
          check Alcotest.bool
            (Format.asprintf "%a decided at 5T sharp" Site_id.pp s)
            true (w = 5000)
      | None -> Alcotest.fail "transient slave undecided")
    obs.probe_waits

let test_case_3_2_1_harmless () =
  (* Partition only after the commits landed: every generation passed
     B; the partition was harmless. *)
  let obs = observe ~g2:[ 2 ] ~at:5050 () in
  check case_t "case 3.2.1" (Some Timing.Case_3_2_1) obs.case

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_empty () =
  check Alcotest.bool "empty is None" true (Stats.of_list [] = None)

let test_stats_quantiles () =
  match Stats.of_list (List.init 100 (fun i -> i + 1)) with
  | None -> Alcotest.fail "expected stats"
  | Some s ->
      check Alcotest.int "count" 100 s.Stats.count;
      check Alcotest.int "min" 1 s.Stats.min;
      check Alcotest.int "p50" 50 s.Stats.p50;
      check Alcotest.int "p90" 90 s.Stats.p90;
      check Alcotest.int "p99" 99 s.Stats.p99;
      check Alcotest.int "max" 100 s.Stats.max;
      check (Alcotest.float 0.001) "mean" 50.5 s.Stats.mean

let test_stats_singleton () =
  match Stats.of_list [ 7 ] with
  | None -> Alcotest.fail "expected stats"
  | Some s ->
      check Alcotest.int "all quantiles equal" 7 s.Stats.p50;
      check Alcotest.int "max" 7 s.Stats.max

let test_stats_acc_empty () =
  check Alcotest.bool "empty is None" true (Stats.Acc.to_stats Stats.Acc.empty = None);
  check Alcotest.int "count" 0 (Stats.Acc.count Stats.Acc.empty);
  let raised =
    try
      ignore (Stats.Acc.add Stats.Acc.empty (-1));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "negative rejected" true raised

let test_stats_acc_singleton () =
  (* A single sample is exact in every field, even in the coarse
     bucketing range, because percentiles clamp to [min, max]. *)
  List.iter
    (fun v ->
      match Stats.Acc.to_stats (Stats.Acc.add Stats.Acc.empty v) with
      | None -> Alcotest.fail "expected stats"
      | Some s ->
          check Alcotest.int "count" 1 s.Stats.count;
          check Alcotest.int "min" v s.Stats.min;
          check Alcotest.int "p50" v s.Stats.p50;
          check Alcotest.int "p99" v s.Stats.p99;
          check Alcotest.int "max" v s.Stats.max;
          check (Alcotest.float 0.001) "mean" (float_of_int v) s.Stats.mean)
    [ 0; 7; 63; 64; 5000; 123_456_789 ]

let test_stats_acc_merge_vs_batch () =
  (* Splitting a sample stream across accumulators and merging is
     exactly the same as accumulating everything in one — the cluster's
     sharded metric pipelines depend on it. *)
  let samples =
    List.init 500 (fun i -> (i * 7919) mod 10_000)
    @ List.init 100 (fun i -> i)
  in
  let rec split_3 (a, b, c) k = function
    | [] -> (a, b, c)
    | x :: rest ->
        let next =
          match k mod 3 with
          | 0 -> (x :: a, b, c)
          | 1 -> (a, x :: b, c)
          | _ -> (a, b, x :: c)
        in
        split_3 next (k + 1) rest
  in
  let sa, sb, sc = split_3 ([], [], []) 0 samples in
  let acc_of l = Stats.Acc.add_list Stats.Acc.empty l in
  let batch = acc_of samples in
  let merged =
    Stats.Acc.merge (acc_of sa) (Stats.Acc.merge (acc_of sb) (acc_of sc))
  in
  check Alcotest.int "count" (Stats.Acc.count batch) (Stats.Acc.count merged);
  check Alcotest.int "total" (Stats.Acc.total batch) (Stats.Acc.total merged);
  match (Stats.Acc.to_stats batch, Stats.Acc.to_stats merged) with
  | Some b, Some m ->
      check Alcotest.int "min" b.Stats.min m.Stats.min;
      check Alcotest.int "p50" b.Stats.p50 m.Stats.p50;
      check Alcotest.int "p90" b.Stats.p90 m.Stats.p90;
      check Alcotest.int "p99" b.Stats.p99 m.Stats.p99;
      check Alcotest.int "max" b.Stats.max m.Stats.max;
      check (Alcotest.float 0.0001) "mean" b.Stats.mean m.Stats.mean
  | _ -> Alcotest.fail "expected stats"

let test_stats_acc_vs_exact () =
  (* In the exact range (< 64) the streaming histogram agrees with
     Stats.of_list on every field. *)
  let samples = List.init 60 (fun i -> (i * 13) mod 60) in
  match
    (Stats.of_list samples, Stats.Acc.to_stats (Stats.Acc.add_list Stats.Acc.empty samples))
  with
  | Some exact, Some streamed ->
      check Alcotest.int "p50" exact.Stats.p50 streamed.Stats.p50;
      check Alcotest.int "p90" exact.Stats.p90 streamed.Stats.p90;
      check Alcotest.int "p99" exact.Stats.p99 streamed.Stats.p99;
      check Alcotest.int "min" exact.Stats.min streamed.Stats.min;
      check Alcotest.int "max" exact.Stats.max streamed.Stats.max
  | _ -> Alcotest.fail "expected stats"

(* Everything observable about an accumulator, as one comparable value. *)
let acc_repr acc =
  ( Stats.Acc.count acc,
    Stats.Acc.total acc,
    match Stats.Acc.to_stats acc with
    | None -> "none"
    | Some s -> Export.to_string (Export.of_stats s) )

let test_stats_acc_add_many () =
  let samples = Array.init 777 (fun i -> i * i mod 99_991) in
  let one_by_one = Array.fold_left Stats.Acc.add Stats.Acc.empty samples in
  let batched = Stats.Acc.add_many Stats.Acc.empty samples in
  check
    Alcotest.(triple int int string)
    "add_many = fold add" (acc_repr one_by_one) (acc_repr batched);
  check
    Alcotest.(triple int int string)
    "add_many on empty array is identity"
    (acc_repr Stats.Acc.empty)
    (acc_repr (Stats.Acc.add_many Stats.Acc.empty [||]))

let qcheck_acc_chunked_merge =
  (* The parallel sweeps lean on this: splitting a sample stream into
     arbitrary chunks, accumulating each independently (in either
     order), and merging in any association gives exactly the batch
     accumulator.  QCheck drives the chunk sizes and a shuffle seed. *)
  QCheck.Test.make ~count:200
    ~name:"Acc: any chunking/permutation of merges = one accumulator"
    QCheck.(
      triple
        (list (int_bound 200_000))
        (list (int_range 1 7))
        (int_bound 10_000))
    (fun (samples, chunk_sizes, seed) ->
      let arr = Array.of_list samples in
      let batch = Stats.Acc.add_many Stats.Acc.empty arr in
      (* cut [arr] into chunks, cycling through [chunk_sizes] *)
      let sizes = if chunk_sizes = [] then [ 3 ] else chunk_sizes in
      let sizes = Array.of_list sizes in
      let chunks = ref [] in
      let pos = ref 0 and k = ref 0 in
      while !pos < Array.length arr do
        let len =
          Stdlib.min sizes.(!k mod Array.length sizes) (Array.length arr - !pos)
        in
        chunks := Array.sub arr !pos len :: !chunks;
        pos := !pos + len;
        incr k
      done;
      let chunks = Array.of_list !chunks in
      (* accumulate each chunk on its own, then merge in shuffled order *)
      Rng.shuffle (Rng.create (Int64.of_int seed)) chunks;
      let partials =
        Array.map (Stats.Acc.add_many Stats.Acc.empty) chunks
      in
      let merged = Array.fold_left Stats.Acc.merge Stats.Acc.empty partials in
      acc_repr merged = acc_repr batch)

(* ------------------------------------------------------------------ *)
(* Diagram                                                             *)
(* ------------------------------------------------------------------ *)

let test_diagram_contents () =
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let cfg = config ~partition:p ~delay:(Delay.full ~t_max:t_unit) () in
  let rendered = Diagram.run (module Termination.Static) cfg in
  let contains needle =
    let nh = String.length rendered and nn = String.length needle in
    let rec scan i =
      if i + nn > nh then false
      else if String.sub rendered i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  check Alcotest.bool "has header" true (contains "master");
  check Alcotest.bool "shows the partition" true (contains "partition@2100");
  check Alcotest.bool "shows a bounce" true (contains "UD(prepare)");
  check Alcotest.bool "shows the decision" true (contains "ABORT (collect-abort)");
  check Alcotest.bool "shows arrows" true (contains "-->");
  (* deterministic: rendering twice is identical *)
  check Alcotest.string "deterministic" rendered
    (Diagram.run (module Termination.Static) cfg)

let test_diagram_collect_chronological () =
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let cfg = config ~partition:p ~delay:(Delay.full ~t_max:t_unit) () in
  let events, result = Diagram.collect (module Termination.Static) cfg in
  check Alcotest.bool "nonempty" true (events <> []);
  check Alcotest.bool "run decided" true
    ((Runner.site_result result (Site_id.of_int 1)).decision <> None);
  let times =
    List.map
      (function
        | Diagram.Message { at; _ }
        | Diagram.Decision { at; _ }
        | Diagram.Boundary { at; _ } ->
            at)
      events
  in
  let sorted = List.sort Vtime.compare times in
  check Alcotest.bool "chronological" true (times = sorted)

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let test_json_encoding () =
  let open Export in
  check Alcotest.string "escaping" "{\"a\\\"b\":\"x\\ny\"}"
    (to_string (Obj [ ("a\"b", String "x\ny") ]));
  check Alcotest.string "list" "[1,true,null,\"s\"]"
    (to_string (List [ Int 1; Bool true; Null; String "s" ]));
  check Alcotest.string "float" "2.5" (to_string (Float 2.5));
  check Alcotest.string "nested" "{\"k\":[{\"x\":0}]}"
    (to_string (Obj [ ("k", List [ Obj [ ("x", Int 0) ] ]) ]))

let test_json_summary_shape () =
  let summary =
    Sweep.run (module Termination.Static)
      (tiny_grid ~n:3)
  in
  let json = Export.to_string (Export.of_summary summary) in
  let contains needle =
    let nh = String.length json and nn = String.length needle in
    let rec scan i =
      if i + nn > nh then false
      else if String.sub json i nn = needle then true
      else scan (i + 1)
    in
    scan 0
  in
  check Alcotest.bool "protocol field" true
    (contains "\"protocol\":\"termination\"");
  check Alcotest.bool "violations field" true (contains "\"violations\":0");
  check Alcotest.bool "valid-ish" true
    (String.length json > 2 && json.[0] = '{')

let test_json_stats_and_verdict () =
  (match Stats.of_list [ 1; 2; 3 ] with
  | Some stats ->
      check Alcotest.string "stats json"
        "{\"count\":3,\"min\":1,\"p50\":2,\"p90\":3,\"p95\":3,\"p99\":3,\"max\":3,\"mean\":2.0}"
        (Export.to_string (Export.of_stats stats))
  | None -> Alcotest.fail "stats expected");
  let result = Runner.run (module Termination.Static) (config ()) in
  let json = Export.to_string (Export.of_verdict (Verdict.of_result result)) in
  check Alcotest.bool "verdict outcome" true
    (String.length json > 0 && json.[0] = '{')

(* ------------------------------------------------------------------ *)
(* Facts plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let test_admissible_reason_lists () =
  check Alcotest.int "six slave commit cases" 6
    (List.length (Facts.admissible_commit_reasons_slave ~variant:Termination.Static));
  check Alcotest.int "transient adds one" 7
    (List.length
       (Facts.admissible_commit_reasons_slave ~variant:Termination.Transient));
  check Alcotest.int "three master commit cases" 3
    (List.length Facts.admissible_commit_reasons_master)

let test_audit_clean_run () =
  let result = Runner.run (module Termination.Static) (config ()) in
  check Alcotest.bool "clean" true (Facts.audit result = Ok ())

let () =
  Alcotest.run "commit_checker"
    [
      ( "verdict",
        [
          Alcotest.test_case "committed" `Quick test_verdict_committed;
          Alcotest.test_case "mixed" `Quick test_verdict_mixed;
          Alcotest.test_case "blocked and vacuous" `Quick
            test_verdict_blocked_and_vacuous;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "all cuts" `Quick test_all_cuts;
          Alcotest.test_case "instants" `Quick test_instants;
          Alcotest.test_case "configs product" `Quick test_configs_product;
          Alcotest.test_case "all multi cuts" `Quick test_all_multi_cuts;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "accounting" `Quick test_sweep_accounting;
          Alcotest.test_case "collects examples" `Quick
            test_sweep_collects_examples;
        ] );
      ( "cases",
        [
          Alcotest.test_case "pre-prepare is no case" `Quick
            test_case_none_before_prepare;
          Alcotest.test_case "case 1" `Quick test_case_1;
          Alcotest.test_case "case 3.1" `Quick test_case_3_1;
          Alcotest.test_case "case 2.1" `Quick test_case_2_1;
          Alcotest.test_case "case 3.2.2.2 static unbounded" `Quick
            test_case_3_2_2_2_static_unbounded;
          Alcotest.test_case "case 3.2.2.2 transient bounded" `Quick
            test_case_3_2_2_2_transient_bounded;
          Alcotest.test_case "case 3.2.1 harmless" `Quick test_case_3_2_1_harmless;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "quantiles" `Quick test_stats_quantiles;
          Alcotest.test_case "singleton" `Quick test_stats_singleton;
          Alcotest.test_case "acc empty" `Quick test_stats_acc_empty;
          Alcotest.test_case "acc singleton" `Quick test_stats_acc_singleton;
          Alcotest.test_case "acc merge = batch" `Quick
            test_stats_acc_merge_vs_batch;
          Alcotest.test_case "acc matches exact stats" `Quick
            test_stats_acc_vs_exact;
          Alcotest.test_case "acc add_many" `Quick test_stats_acc_add_many;
          QCheck_alcotest.to_alcotest qcheck_acc_chunked_merge;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "contents" `Quick test_diagram_contents;
          Alcotest.test_case "collect is chronological" `Quick
            test_diagram_collect_chronological;
        ] );
      ( "export",
        [
          Alcotest.test_case "json encoding" `Quick test_json_encoding;
          Alcotest.test_case "summary shape" `Quick test_json_summary_shape;
          Alcotest.test_case "stats and verdict" `Quick
            test_json_stats_and_verdict;
        ] );
      ( "facts",
        [
          Alcotest.test_case "admissible reasons" `Quick
            test_admissible_reason_lists;
          Alcotest.test_case "audit clean run" `Quick test_audit_clean_run;
        ] );
    ]
