(* Tests for the streaming-telemetry layer: windowed metric snapshots,
   gauges, the span->histogram bridge, the subsystem profiler, and the
   JSON round-trip machinery behind `tp_sim metrics`. *)

module Cluster = Commit_cluster
module Metrics = Cluster.Metrics
module Runtime = Cluster.Runtime
module Cluster_sweep = Cluster.Cluster_sweep
module Span_bridge = Cluster.Span_bridge
module Lock_manager = Commit_db.Lock_manager
module Tm = Commit_db.Tm
module Workload = Commit_db.Workload

let check = Alcotest.check

let t mult = Vtime.of_int (mult * 1000)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

(* A short partitioned run: enough load and a cut/heal to touch every
   instrument (termination path, gauges, all the series). *)
let small_config =
  let base = Runtime.default_config () in
  {
    base with
    Runtime.duration = t 60;
    drain = t 25;
    load = 30;
    timeline =
      Partition.make
        ~group2:(Site_id.set_of_ints [ 3 ])
        ~starts_at:(t 20) ~heals_at:(t 40) ~n:base.Runtime.n ();
  }

(* ------------------------------------------------------------------ *)
(* Windowed snapshots                                                  *)
(* ------------------------------------------------------------------ *)

(* The tentpole property: for ANY window size, replaying the snapshot
   stream into a fresh pipeline rebuilds the end-of-run metrics
   byte-for-byte — counters are exact deltas, series cells are closed
   exactly once, window histogram accumulators merge losslessly. *)
let snapshot_merge_exact =
  QCheck.Test.make ~count:15
    ~name:"snapshot stream merges to end-of-run metrics (any window)"
    QCheck.(int_range 3 90)
    (fun window_t ->
      let config =
        { small_config with Runtime.snapshot_every = Some (t window_t) }
      in
      let report = Runtime.run config in
      let final = report.Runtime.metrics in
      let merged =
        Metrics.create
          ~bucket:(Metrics.bucket_ticks final)
          ~t_unit:(Metrics.t_unit final) ()
      in
      List.iter (Metrics.merge_snapshot merged) report.Runtime.snapshots;
      String.equal
        (Export.to_string (Metrics.to_json merged))
        (Export.to_string (Metrics.to_json final)))

let render_lines (report : Runtime.report) =
  List.map
    (fun snap ->
      Export.to_string (Metrics.snapshot_to_json report.Runtime.metrics snap))
    report.Runtime.snapshots

let test_stream_deterministic () =
  let config = { small_config with Runtime.snapshot_every = Some (t 15) } in
  let a = render_lines (Runtime.run config) in
  let b = render_lines (Runtime.run config) in
  check Alcotest.(list string) "two invocations identical" a b;
  (* 85T horizon / 15T windows: cuts at 15T..75T plus the final one *)
  check Alcotest.int "one record per window plus final" 6 (List.length a);
  let final_lines = List.filter (fun l -> contains l "\"final\":true") a in
  check Alcotest.int "exactly one final cut" 1 (List.length final_lines)

let test_sweep_stream_jobs_invariant () =
  let grid =
    {
      Cluster_sweep.base =
        { small_config with Runtime.snapshot_every = Some (t 20) };
      seeds = [ 1L; 2L; 3L; 4L ];
      timelines = [ ("cut", small_config.Runtime.timeline) ];
      policies = [ Cluster.Scheduler.Partition_aware ];
      protocols = [];
      faults = [];
    }
  in
  let lines jobs =
    (Cluster_sweep.run ~jobs grid).Cluster_sweep.snapshot_lines
  in
  let l1 = lines 1 in
  check Alcotest.bool "stream nonempty" true (l1 <> []);
  check Alcotest.bool "lines carry the run label" true
    (List.for_all (fun l -> contains l "\"run\":") l1);
  check Alcotest.(list string) "jobs=2 identical" l1 (lines 2);
  check Alcotest.(list string) "jobs=4 identical" l1 (lines 4)

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let test_gauges () =
  let m = Metrics.create ~t_unit:(t 1) () in
  check Alcotest.int "unset gauge reads 0" 0 (Metrics.gauge m "g");
  Metrics.set_gauge m "g" 5;
  Metrics.set_gauge m "g" 3;
  check Alcotest.int "set replaces" 3 (Metrics.gauge m "g");
  Metrics.set_gauge m "a" 2;
  check
    Alcotest.(list (pair string int))
    "name-sorted listing"
    [ ("a", 2); ("g", 3) ]
    (Metrics.gauges m);
  let m2 = Metrics.create ~t_unit:(t 1) () in
  Metrics.set_gauge m2 "g" 4;
  Metrics.merge_into m m2;
  check Alcotest.int "merge sums gauges" 7 (Metrics.gauge m "g")

let test_runtime_samples_gauges () =
  let report = Runtime.run small_config in
  let m = report.Runtime.metrics in
  check Alcotest.int "all sites alive at horizon" 3
    (Metrics.gauge m "gauge.live_sites");
  check Alcotest.int "partition healed at horizon" 1
    (Metrics.gauge m "gauge.partition_components");
  check Alcotest.bool "in-flight gauge present" true
    (List.mem_assoc "gauge.in_flight" (Metrics.gauges m))

(* ------------------------------------------------------------------ *)
(* Span -> histogram bridge                                            *)
(* ------------------------------------------------------------------ *)

let test_span_bridge () =
  let obs = Obs.create () in
  Obs.span_begin obs ~at:(Vtime.of_int 10) ~site:1 ~tid:1 ~cat:"proto" "phase";
  Obs.span_end obs ~at:(Vtime.of_int 25) ~site:1 ~tid:1;
  Obs.span_begin obs ~at:(Vtime.of_int 30) ~site:2 ~tid:2 ~cat:"proto" "phase";
  Obs.span_end obs ~at:(Vtime.of_int 37) ~site:2 ~tid:2;
  Obs.span_begin obs ~at:(Vtime.of_int 40) ~site:1 ~tid:1 "other";
  Obs.span_end obs ~at:(Vtime.of_int 41) ~site:1 ~tid:1;
  let bridge = Span_bridge.create obs in
  let m = Metrics.create ~t_unit:(t 1) () in
  Span_bridge.flush bridge m;
  (match Metrics.histogram m "span.proto.phase" with
  | None -> Alcotest.fail "span.proto.phase histogram missing"
  | Some s ->
      check Alcotest.int "two proto spans" 2 s.Stats.count;
      check Alcotest.int "min duration exact" 7 s.Stats.min;
      check Alcotest.int "max duration exact" 15 s.Stats.max);
  (match Metrics.histogram m "span.phase.other" with
  | None -> Alcotest.fail "default-category histogram missing"
  | Some s -> check Alcotest.int "one default-cat span" 1 s.Stats.count);
  (* the cursor advances: a second flush with nothing new adds nothing *)
  Span_bridge.flush bridge m;
  match Metrics.histogram m "span.proto.phase" with
  | Some s -> check Alcotest.int "flush is incremental" 2 s.Stats.count
  | None -> Alcotest.fail "histogram vanished"

let test_bridge_in_runtime () =
  let obs = Obs.create () in
  let report = Runtime.run ~obs small_config in
  let spans =
    List.filter
      (fun (name, _) -> String.length name > 5 && String.sub name 0 5 = "span.")
      (List.filter_map
         (fun name ->
           Option.map (fun s -> (name, s)) (Metrics.histogram report.Runtime.metrics name))
         [ "span.txn.txn"; "span.phase.txn"; "span.txn.queued" ])
  in
  (* Exact names depend on the runtime's span vocabulary; the invariant
     is that an obs-enabled run lands SOME span histograms. *)
  let json = Export.to_string (Metrics.to_json report.Runtime.metrics) in
  check Alcotest.bool "span histograms reach the metrics pipeline" true
    (spans <> [] || contains json "\"span.");
  (* and a trace-off run must not: the bridge only exists with obs *)
  let plain = Runtime.run small_config in
  check Alcotest.bool "no span histograms without obs" false
    (contains (Export.to_string (Metrics.to_json plain.Runtime.metrics)) "\"span.")

(* ------------------------------------------------------------------ *)
(* Profiler                                                            *)
(* ------------------------------------------------------------------ *)

let test_prof () =
  let p = Prof.create () in
  Prof.enter p Prof.Network;
  Prof.enter p Prof.Protocol;
  Prof.leave p;
  Prof.leave p;
  Prof.note_entries p Prof.Engine 42;
  let r = Prof.report p in
  check Alcotest.int "five buckets" 5 (List.length r.Prof.rows);
  let row name =
    List.find (fun row -> String.equal row.Prof.row_bucket name) r.Prof.rows
  in
  check Alcotest.int "engine entries overridden" 42 (row "engine").Prof.row_entries;
  check Alcotest.int "network entered once" 1 (row "network").Prof.row_entries;
  check Alcotest.int "protocol entered once" 1 (row "protocol").Prof.row_entries;
  check Alcotest.bool "total is a sum of rows" true
    (r.Prof.total_seconds >= 0.);
  Alcotest.check_raises "unbalanced leave rejected"
    (Invalid_argument "Prof.leave: nothing entered") (fun () ->
      Prof.leave (Prof.create ()))

let test_runtime_profile () =
  let report = Runtime.run { small_config with Runtime.profile = true } in
  (match report.Runtime.profile with
  | None -> Alcotest.fail "profile requested but absent"
  | Some r ->
      check Alcotest.int "five buckets" 5 (List.length r.Prof.rows);
      let entries name =
        (List.find (fun row -> String.equal row.Prof.row_bucket name) r.Prof.rows)
          .Prof.row_entries
      in
      check Alcotest.int "engine entries = events run" report.Runtime.events_run
        (entries "engine");
      check Alcotest.bool "network bracketed" true (entries "network" > 0);
      check Alcotest.bool "protocol bracketed" true (entries "protocol" > 0);
      check Alcotest.bool "auditor bracketed" true (entries "auditor" > 0));
  (* profiling must not perturb the deterministic surface *)
  let plain = Runtime.run small_config in
  check Alcotest.string "JSON identical with profiling on"
    (Export.to_string (Runtime.to_json plain))
    (Export.to_string
       (Runtime.to_json (Runtime.run { small_config with Runtime.profile = true })))

(* ------------------------------------------------------------------ *)
(* Tm / Lock_manager instrumentation                                   *)
(* ------------------------------------------------------------------ *)

let test_wait_depth () =
  let lm = Lock_manager.create () in
  check Alcotest.int "empty table" 0 (Lock_manager.wait_depth lm);
  let acquire tid =
    Lock_manager.acquire lm ~tid ~key:"k" ~mode:Lock_manager.Exclusive
  in
  check Alcotest.bool "first granted" true (acquire 1 = `Granted);
  check Alcotest.bool "second waits" true (acquire 2 = `Waiting);
  check Alcotest.bool "third waits" true (acquire 3 = `Waiting);
  check Alcotest.int "two waiters" 2 (Lock_manager.wait_depth lm);
  ignore (Lock_manager.release_all lm ~tid:1);
  check Alcotest.int "one waiter after grant" 1 (Lock_manager.wait_depth lm)

let test_tm_on_gauge () =
  let w = Workload.hot_spot ~n:3 ~txns:4 ~spacing:(Vtime.of_int 500) in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial = w.Workload.initial;
    }
  in
  let sampled = ref false and max_depth = ref 0 in
  let (_ : Tm.report) =
    Tm.run
      ~on_gauge:(fun name v ->
        if String.equal name "gauge.lock_waiters" then begin
          sampled := true;
          if v > !max_depth then max_depth := v
        end)
      config w.Workload.txns
  in
  check Alcotest.bool "lock-waiters gauge sampled" true !sampled;
  check Alcotest.bool "hot-spot contention observed" true (!max_depth >= 1)

let test_components_at () =
  let p =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int 1000) ~heals_at:(Vtime.of_int 2000) ~n:3 ()
  in
  check Alcotest.int "one component before the cut" 1
    (Partition.components_at p ~at:(Vtime.of_int 500));
  check Alcotest.int "two components during" 2
    (Partition.components_at p ~at:(Vtime.of_int 1500));
  check Alcotest.int "one component after heal" 1
    (Partition.components_at p ~at:(Vtime.of_int 2500));
  check Alcotest.int "no partition: one component" 1
    (Partition.components_at Partition.none ~at:Vtime.zero)

(* ------------------------------------------------------------------ *)
(* JSON surface                                                        *)
(* ------------------------------------------------------------------ *)

let test_runtime_json_section () =
  let report = Runtime.run small_config in
  let json = Export.to_string (Runtime.to_json report) in
  check Alcotest.bool "events_run serialised" true
    (contains json "\"runtime\":{\"events_run\":");
  check Alcotest.bool "trace_dropped serialised" true
    (contains json "\"trace_dropped\":");
  check Alcotest.bool "gauges serialised" true (contains json "\"gauges\":")

let test_export_of_string () =
  let doc =
    Export.Obj
      [
        ("a", Export.Int 1);
        ("neg", Export.Int (-7));
        ("b", Export.List [ Export.Null; Export.Bool true; Export.Float 1.5 ]);
        ("s", Export.String "x\"y\n\t\\z\001");
        ("empty", Export.Obj []);
        ("nil", Export.List []);
      ]
  in
  (match Export.of_string (Export.to_string doc) with
  | Ok v ->
      check Alcotest.string "roundtrip" (Export.to_string doc)
        (Export.to_string v)
  | Error e -> Alcotest.fail e);
  (match Export.of_string "{\"a\":1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated object");
  (match Export.of_string "[1,2] junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trailing garbage");
  match Export.of_string "{\"k\":{\"n\":3}}" with
  | Ok v -> (
      match Option.bind (Export.member "k" v) (Export.member "n") with
      | Some (Export.Int 3) -> ()
      | _ -> Alcotest.fail "member lookup failed")
  | Error e -> Alcotest.fail e

let test_snapshot_stream_reparses () =
  let config = { small_config with Runtime.snapshot_every = Some (t 25) } in
  let report = Runtime.run config in
  List.iter
    (fun line ->
      match Export.of_string line with
      | Ok v -> check Alcotest.string "line reparses exactly" line (Export.to_string v)
      | Error e -> Alcotest.fail e)
    (render_lines report);
  let doc = Export.to_string (Runtime.to_json report) in
  match Export.of_string doc with
  | Ok v -> check Alcotest.string "full report reparses" doc (Export.to_string v)
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "telemetry"
    [
      ( "snapshots",
        [
          QCheck_alcotest.to_alcotest snapshot_merge_exact;
          Alcotest.test_case "stream deterministic" `Quick
            test_stream_deterministic;
          Alcotest.test_case "sweep stream jobs-invariant" `Quick
            test_sweep_stream_jobs_invariant;
        ] );
      ( "gauges",
        [
          Alcotest.test_case "set/read/merge" `Quick test_gauges;
          Alcotest.test_case "runtime samples gauges" `Quick
            test_runtime_samples_gauges;
        ] );
      ( "span-bridge",
        [
          Alcotest.test_case "manual spans" `Quick test_span_bridge;
          Alcotest.test_case "runtime integration" `Quick
            test_bridge_in_runtime;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "flat attribution" `Quick test_prof;
          Alcotest.test_case "runtime wiring" `Quick test_runtime_profile;
        ] );
      ( "db-gauges",
        [
          Alcotest.test_case "lock wait depth" `Quick test_wait_depth;
          Alcotest.test_case "tm on_gauge callback" `Quick test_tm_on_gauge;
          Alcotest.test_case "partition components" `Quick test_components_at;
        ] );
      ( "json",
        [
          Alcotest.test_case "runtime section" `Quick test_runtime_json_section;
          Alcotest.test_case "of_string" `Quick test_export_of_string;
          Alcotest.test_case "snapshot stream reparses" `Quick
            test_snapshot_stream_reparses;
        ] );
    ]
