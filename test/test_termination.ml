(* Tests for the paper's termination protocol (lib/core): every idea of
   Section 5.2 exercised on a crafted scenario, Theorem 9 as a sweep,
   the Section 6 transient extension and its case bounds, and the FACT
   1/2 audit of every decision. *)

let check = Alcotest.check

let site = Site_id.of_int

let t_unit = Vtime.of_int 1000

let t mult = Vtime.of_int (mult * 1000)

let config ?(n = 3) ?(partition = Partition.none)
    ?(delay = Delay.uniform ~t_max:t_unit) ?(seed = 1L) ?(votes = []) () =
  let base = Runner.default_config ~n ~t_unit () in
  { base with Runner.partition; delay; seed; votes; trace_enabled = false }

let partition ?heals_after ~g2 ~at ~n () =
  let starts_at = Vtime.of_int at in
  Partition.make
    ?heals_at:
      (Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heals_after)
    ~group2:(Site_id.set_of_ints g2) ~starts_at ~n ()

let decision_t : Types.decision option Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | None -> Format.pp_print_string fmt "none"
      | Some d -> Types.pp_decision fmt d)
    ( = )

let expect_site result id ~decision ~reason =
  let s = Runner.site_result result (site id) in
  check decision_t
    (Printf.sprintf "site %d decision" id)
    (Some decision) s.decision;
  check Alcotest.bool
    (Printf.sprintf "site %d reason %s (got: %s)" id reason
       (String.concat "," s.reasons))
    true (List.mem reason s.reasons)

let run_static = Runner.run (module Termination.Static)

let run_transient = Runner.run (module Termination.Transient)

(* ------------------------------------------------------------------ *)
(* Failure-free and vote-abort flows                                   *)
(* ------------------------------------------------------------------ *)

let test_failure_free_commit () =
  let result = run_static (config ~n:6 ()) in
  Array.iter
    (fun (s : Runner.site_result) ->
      check decision_t "committed" (Some Types.Commit) s.decision)
    result.sites;
  expect_site result 1 ~decision:Types.Commit ~reason:"fact2-case1";
  expect_site result 2 ~decision:Types.Commit ~reason:"fact1-case1"

let test_no_vote_aborts () =
  let result = run_static (config ~votes:[ (site 2, false) ] ()) in
  expect_site result 1 ~decision:Types.Abort ~reason:"no-vote";
  expect_site result 2 ~decision:Types.Abort ~reason:"voted-no";
  expect_site result 3 ~decision:Types.Abort ~reason:"abort-cmd"

(* ------------------------------------------------------------------ *)
(* The Section 5.2 ideas, one scenario each (full delays = T per hop,  *)
(* so the timeline is exact)                                           *)
(* ------------------------------------------------------------------ *)

let full = Delay.full ~t_max:t_unit

(* Idea: xact cannot reach a slave -> master aborts on UD(xact); the cut
   slave never hears of the transaction (vacuous). *)
let test_ud_xact_aborts () =
  let p = partition ~g2:[ 3 ] ~at:100 ~n:3 () in
  let result = run_static (config ~partition:p ~delay:full ()) in
  expect_site result 1 ~decision:Types.Abort ~reason:"ud-xact";
  expect_site result 2 ~decision:Types.Abort ~reason:"abort-cmd";
  let v = Verdict.of_result result in
  check Alcotest.bool "site3 vacuous" true (v.vacuous = [ site 3 ]);
  check Alcotest.bool "atomic" true v.atomic

(* Idea 2: master times out in w1 -> abort is safe (no prepare exists);
   the cut slave's yes bounced, so it aborts for all of G2 (ud-yes). *)
let test_w1_timeout_and_ud_yes () =
  let p = partition ~g2:[ 3 ] ~at:1100 ~n:3 () in
  let result = run_static (config ~partition:p ~delay:full ()) in
  expect_site result 1 ~decision:Types.Abort ~reason:"w1-timeout";
  expect_site result 2 ~decision:Types.Abort ~reason:"abort-cmd";
  expect_site result 3 ~decision:Types.Abort ~reason:"ud-yes";
  check Alcotest.bool "resilient" true (Verdict.resilient (Verdict.of_result result))

(* Idea 3: all prepares were delivered before the cut, so the master's
   p1 timeout commits (fact2-case2); the cut slave's ack bounced, so it
   commits its side (fact1-case5, "idea 6"). *)
let test_p1_timeout_commit_and_ud_ack () =
  let p = partition ~g2:[ 3 ] ~at:3050 ~n:3 () in
  let result = run_static (config ~partition:p ~delay:full ()) in
  expect_site result 1 ~decision:Types.Commit ~reason:"fact2-case2";
  expect_site result 2 ~decision:Types.Commit ~reason:"fact1-case1";
  expect_site result 3 ~decision:Types.Commit ~reason:"fact1-case5";
  check Alcotest.bool "resilient" true (Verdict.resilient (Verdict.of_result result))

(* Idea 4, abort side: no prepare crossed B, so the probes match N - UD
   exactly and the master aborts everyone; the G2 slave aborts at the
   end of its 6T window (Fig. 7). *)
let test_collect_window_abort () =
  let p = partition ~g2:[ 3 ] ~at:2100 ~n:3 () in
  let result = run_static (config ~partition:p ~delay:full ()) in
  expect_site result 1 ~decision:Types.Abort ~reason:"collect-abort";
  expect_site result 2 ~decision:Types.Abort ~reason:"abort-cmd";
  expect_site result 3 ~decision:Types.Abort ~reason:"w2-expired";
  (* The master's collect window closes 5T after the first UD(prepare):
     prepares leave at 2T, bounce back at 4T, window ends at 9T. *)
  let master = Runner.site_result result (site 1) in
  check (Alcotest.option Alcotest.int) "window closes at 9T" (Some (t 9))
    master.decided_at

(* Idea 4, commit side: an asymmetric cut lets prepare3 through and
   bounces prepare4, so PB (probes: site2 only) differs from N - UD
   ({2,3}) and the master commits G1; meanwhile site3, cut off with a
   prepare, learns its position from UD(probe) and commits G2,
   including site4 which never saw a prepare (the Fig. 8 w->c
   transition, FACT1 case 2). *)
let per_link_delays =
  Delay.Per_link
    (fun src dst ->
      match (Site_id.to_int src, Site_id.to_int dst) with
      | 1, 4 | 4, 1 -> Vtime.of_int 900
      | 1, 3 | 3, 1 -> Vtime.of_int 10
      | _, _ -> Vtime.of_int 100)

let test_collect_window_commit () =
  let p = partition ~g2:[ 3; 4 ] ~at:2000 ~n:4 () in
  let result = run_static (config ~n:4 ~partition:p ~delay:per_link_delays ()) in
  expect_site result 1 ~decision:Types.Commit ~reason:"fact2-case3";
  (* site2 (G1) probed before the master's window closed, so its commit
     arrives while probing: FACT1 case 4. *)
  expect_site result 2 ~decision:Types.Commit ~reason:"fact1-case4";
  expect_site result 3 ~decision:Types.Commit ~reason:"fact1-case3";
  expect_site result 4 ~decision:Types.Commit ~reason:"fact1-case2";
  check Alcotest.bool "resilient" true (Verdict.resilient (Verdict.of_result result))

(* ------------------------------------------------------------------ *)
(* Theorem 9: the full sweep has no violation and no blocked site      *)
(* ------------------------------------------------------------------ *)

let static_grid ~n =
  let base = Runner.default_config ~n ~t_unit () in
  Scenario.configs ~base (Scenario.default_grid ~n ~t_unit)

let transient_grid ~n =
  let base = Runner.default_config ~n ~t_unit () in
  let grid = Scenario.default_grid ~n ~t_unit in
  let grid =
    {
      grid with
      Scenario.heals_after =
        [ None; Some (t 1); Some (t 3); Some (t 6) ];
    }
  in
  Scenario.configs ~base grid

let test_theorem9_n3 () =
  let summary = Sweep.run (module Termination.Static) (static_grid ~n:3) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_theorem9_n4 () =
  let summary = Sweep.run (module Termination.Static) (static_grid ~n:4) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_theorem9_n2 () =
  let summary = Sweep.run (module Termination.Static) (static_grid ~n:2) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_theorem9_with_no_votes () =
  let base = Runner.default_config ~n:3 ~t_unit () in
  let grid =
    {
      (Scenario.default_grid ~n:3 ~t_unit) with
      Scenario.votes = [ []; [ (site 2, false) ]; [ (site 3, false) ] ];
    }
  in
  let summary =
    Sweep.run (module Termination.Static) (Scenario.configs ~base grid)
  in
  check Alcotest.int "no violations with no-votes" 0 summary.violations;
  check Alcotest.int "no blocked runs with no-votes" 0 summary.blocked_runs

(* ------------------------------------------------------------------ *)
(* Section 6: transient partitioning                                   *)
(* ------------------------------------------------------------------ *)

let test_static_blocks_on_transient () =
  (* The static protocol is only valid under assumption 5; with heals
     in the grid, case 3.2.2.2 strands a probing slave (the paper's
     motivation for the 5T rule).  Atomicity still holds. *)
  let summary = Sweep.run (module Termination.Static) (transient_grid ~n:3) in
  check Alcotest.int "still atomic" 0 summary.violations;
  check Alcotest.bool "but blocks in case 3.2.2.2" true (summary.blocked_runs > 0)

let test_transient_never_blocks () =
  let summary = Sweep.run (module Termination.Transient) (transient_grid ~n:3) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_transient_never_blocks_n4 () =
  let summary = Sweep.run (module Termination.Transient) (transient_grid ~n:4) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_case_3222_scenario () =
  (* Master committed; commit2 missed the cut slave; the heal lets its
     probe through to a decided master that ignores it.  Static: blocked
     forever.  Transient: commits 5T after the probe. *)
  let p = partition ~g2:[ 2 ] ~at:1750 ~heals_after:1000 ~n:3 () in
  let static_result = run_static (config ~partition:p ()) in
  let s2 = Runner.site_result static_result (site 2) in
  check decision_t "static site2 blocked" None s2.decision;
  check Alcotest.string "stuck probing" "p/probing" s2.final_state;
  let transient_result = run_transient (config ~partition:p ()) in
  expect_site transient_result 2 ~decision:Types.Commit
    ~reason:"transient-5t-commit";
  check Alcotest.bool "transient resilient" true
    (Verdict.resilient (Verdict.of_result transient_result))

(* ------------------------------------------------------------------ *)
(* Section 6 case bounds, measured                                     *)
(* ------------------------------------------------------------------ *)

let test_case_bounds_hold () =
  (* For every grid point that classifies into a bounded case, the
     measured wait from a G2 slave's p-timeout (probe send) to its
     decision must respect the paper's bound. *)
  let configs = transient_grid ~n:3 @ transient_grid ~n:4 in
  let checked = ref 0 in
  List.iter
    (fun cfg ->
      let obs = Cases.observe (module Termination.Transient) cfg in
      match obs.case with
      | None -> ()
      | Some case -> (
          match Timing.case_bound_mult case with
          | None -> ()
          | Some bound ->
              List.iter
                (fun (slave, wait) ->
                  match wait with
                  | None ->
                      Alcotest.fail
                        (Format.asprintf "%a undecided in bounded %a"
                           Site_id.pp slave Timing.pp_case case)
                  | Some w ->
                      incr checked;
                      check Alcotest.bool
                        (Format.asprintf "%a wait %a <= %dT in %a" Site_id.pp
                           slave Vtime.pp w bound Timing.pp_case case)
                        true
                        (w <= bound * 1000))
                obs.probe_waits))
    configs;
  check Alcotest.bool "some bounded waits were actually measured" true
    (!checked > 0)

let test_transient_probe_wait_never_exceeds_5t () =
  (* The Section 6 rule: 5T after the probe, a slave can always decide. *)
  List.iter
    (fun cfg ->
      let obs = Cases.observe (module Termination.Transient) cfg in
      List.iter
        (fun (slave, wait) ->
          match wait with
          | None ->
              Alcotest.fail
                (Format.asprintf "%a never decided" Site_id.pp slave)
          | Some w ->
              check Alcotest.bool
                (Format.asprintf "%a wait %a <= 5T" Site_id.pp slave Vtime.pp w)
                true (w <= 5000))
        obs.probe_waits)
    (transient_grid ~n:3)

(* ------------------------------------------------------------------ *)
(* Window-necessity ablation                                           *)
(* ------------------------------------------------------------------ *)

module Short_collect = Termination.With_windows (struct
  let collect_window_mult = 3

  let wait_window_mult = 6
end)

let test_short_collect_window_breaks () =
  (* Close the master's collection window at 3T and probes that needed
     up to 5T (Fig. 6) arrive too late: the master reads N-UD = PB
     wrongly and mis-decides somewhere on the grid. *)
  let summary = Sweep.run (module Short_collect) (static_grid ~n:3) in
  check Alcotest.bool "3T collect window violates atomicity" true
    (summary.violations > 0)

let test_paper_windows_clean () =
  let module Paper_windows = Termination.With_windows (struct
    let collect_window_mult = Timing.collect_window_mult

    let wait_window_mult = Timing.wait_window_mult
  end) in
  let summary = Sweep.run (module Paper_windows) (static_grid ~n:3) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked" 0 summary.blocked_runs

(* ------------------------------------------------------------------ *)
(* Assumption 2: no subsequent partition before termination completes  *)
(* ------------------------------------------------------------------ *)

let chained ~ta ~da ~gap ~cut_b =
  Partition.sequence
    [
      Partition.make
        ~group2:(Site_id.set_of_ints [ 3 ])
        ~starts_at:(Vtime.of_int ta)
        ~heals_at:(Vtime.of_int (ta + da))
        ~n:3 ();
      Partition.make
        ~group2:(Site_id.set_of_ints cut_b)
        ~starts_at:(Vtime.of_int (ta + da + gap))
        ~n:3 ();
    ]

let test_assumption2_violated_breaks () =
  (* A second cut lands while the first one's termination is still in
     flight: even the transient variant can be broken — this is exactly
     what the paper's assumption 2 excludes. *)
  let broke = ref false in
  List.iter
    (fun ta ->
      List.iter
        (fun da ->
          List.iter
            (fun gap ->
              List.iter
                (fun cut_b ->
                  List.iter
                    (fun delay ->
                      let p = chained ~ta ~da ~gap ~cut_b in
                      let cfg = config ~partition:p ~delay () in
                      let v =
                        Verdict.of_result (Runner.run (module Termination.Transient) cfg)
                      in
                      if not (Verdict.resilient v) then broke := true)
                    [ Delay.minimal; full; Delay.uniform ~t_max:t_unit ])
                [ [ 2 ]; [ 2; 3 ] ])
            [ 100; 600; 1100 ])
        [ 500; 1000; 2000; 3000 ])
    (List.init 20 (fun i -> 250 * (i + 1)));
  check Alcotest.bool "a mid-termination second cut breaks the protocol" true
    !broke

let test_assumption2_respected_is_fine () =
  (* The same second cut arriving well after every affected transaction
     terminated (>= 15T later) is just a partition over a finished
     transaction: harmless. *)
  List.iter
    (fun ta ->
      List.iter
        (fun cut_b ->
          let p = chained ~ta ~da:2000 ~gap:15000 ~cut_b in
          let cfg = config ~partition:p ~delay:full () in
          let v =
            Verdict.of_result (Runner.run (module Termination.Transient) cfg)
          in
          check Alcotest.bool
            (Printf.sprintf "late second cut harmless (ta=%d)" ta)
            true (Verdict.resilient v))
        [ [ 2 ]; [ 2; 3 ] ])
    [ 1000; 2500; 4000 ]

(* ------------------------------------------------------------------ *)
(* Multiple partitioning: the second impossibility theorem             *)
(* ------------------------------------------------------------------ *)

let multi_grid ~n =
  Scenario.multi_configs
    ~base:(Runner.default_config ~n ~t_unit ())
    ~starts:(Scenario.instants ~t_unit ~until_mult:8 ~per_t:2)
    ~delays:
      [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ]
    ~seeds:[ 1L; 42L ]

let test_multiple_partitioning_breaks_termination () =
  (* "There exists no protocol resilient to a multiple network
     partitioning" — the termination protocol included. *)
  let summary = Sweep.run (module Termination.Static) (multi_grid ~n:4) in
  check Alcotest.bool "violations under multiple partitioning" true
    (summary.violations > 0)

let test_multiple_partitioning_quorum_safe_but_blocks () =
  (* The quorum baseline stays atomic under multiple partitioning (no
     two cells can both assemble a quorum) at the price of blocking —
     the classic trade-off the paper's protocol sidesteps by assuming
     simple partitions. *)
  let summary = Sweep.run (module Quorum) (multi_grid ~n:4) in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.bool "blocking instead" true (summary.blocked_runs > 0)

(* ------------------------------------------------------------------ *)
(* Boundary instants: ties between deliveries, timers and the cut      *)
(* ------------------------------------------------------------------ *)

let test_partition_on_exact_instants () =
  (* With full-T delays every event lands on a multiple of T.  Cutting
     the network exactly on those instants exercises the tie rules:
     partition membership is evaluated at arrival, and deliveries
     precede timers at equal timestamps.  Resilience must hold on every
     exact boundary. *)
  List.iter
    (fun at ->
      List.iter
        (fun g2 ->
          let p = partition ~g2 ~at ~n:3 () in
          let result = run_static (config ~partition:p ~delay:full ()) in
          let v = Verdict.of_result result in
          check Alcotest.bool
            (Printf.sprintf "resilient at exact instant %d" at)
            true (Verdict.resilient v);
          check Alcotest.bool
            (Printf.sprintf "facts hold at %d" at)
            true
            (Facts.audit result = Ok ()))
        [ [ 2 ]; [ 3 ]; [ 2; 3 ] ])
    [ 1000; 2000; 3000; 4000; 5000; 6000; 7000; 8000; 9000; 10000 ]

let test_heal_on_exact_window_close () =
  (* Heals landing exactly on the master's collect-window close and one
     tick around it. *)
  List.iter
    (fun heals_after ->
      let p = partition ~g2:[ 3 ] ~at:2100 ~heals_after ~n:3 () in
      let result = run_transient (config ~partition:p ~delay:full ()) in
      check Alcotest.bool
        (Printf.sprintf "resilient with heal after %d" heals_after)
        true
        (Verdict.resilient (Verdict.of_result result)))
    [ 6899; 6900; 6901; 7899; 7900; 7901 ]

let test_larger_site_counts () =
  (* Spot sweeps at n = 6 and n = 8 (reduced grid: fewer cuts/instants
     keep it fast while still crossing every protocol phase). *)
  List.iter
    (fun n ->
      let slaves = Site_id.slaves ~n in
      let half =
        Site_id.Set.of_list
          (List.filteri (fun i _ -> i mod 2 = 1) slaves)
      in
      let single = Site_id.Set.singleton (Site_id.of_int n) in
      List.iter
        (fun cut ->
          List.iter
            (fun at ->
              let p =
                Partition.make ~group2:cut ~starts_at:(Vtime.of_int at) ~n ()
              in
              List.iter
                (fun delay ->
                  let result =
                    run_static (config ~n ~partition:p ~delay ())
                  in
                  check Alcotest.bool
                    (Printf.sprintf "n=%d at=%d resilient" n at)
                    true
                    (Verdict.resilient (Verdict.of_result result)))
                [ full; Delay.uniform ~t_max:t_unit ])
            [ 500; 1500; 2500; 3500; 4500; 5500 ])
        [ half; single ])
    [ 6; 8 ]

(* ------------------------------------------------------------------ *)
(* Theorem 10, constructively: four-phase commit terminated            *)
(* ------------------------------------------------------------------ *)

let test_theorem10_4pc_failure_free () =
  let result = Runner.run (module Theorem10.Four_phase_termination) (config ~n:5 ()) in
  Array.iter
    (fun (s : Runner.site_result) ->
      check decision_t "committed" (Some Types.Commit) s.decision)
    result.sites;
  let abort =
    Runner.run
      (module Theorem10.Four_phase_termination)
      (config ~votes:[ (site 3, false) ] ())
  in
  check Alcotest.bool "aborts on a no vote" true
    (List.for_all (( = ) (Some Types.Abort)) (Runner.decisions abort))

let test_theorem10_4pc_resilient_n3 () =
  let summary =
    Sweep.run (module Theorem10.Four_phase_termination) (static_grid ~n:3)
  in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let test_theorem10_4pc_resilient_n4 () =
  let summary =
    Sweep.run (module Theorem10.Four_phase_termination) (static_grid ~n:4)
  in
  check Alcotest.int "no violations" 0 summary.violations;
  check Alcotest.int "no blocked runs" 0 summary.blocked_runs

let theorem10_random_resilient =
  QCheck.Test.make ~count:200
    ~name:"4pc termination resilient under random per-link delays"
    QCheck.(triple (int_range 2 5) (int_range 0 11000) small_nat)
    (fun (n, at, seed) ->
      let rng = Rng.create (Int64.of_int ((seed * 5) + 1)) in
      let matrix =
        Array.init (n + 1) (fun _ ->
            Array.init (n + 1) (fun _ -> 1 + Rng.int rng ~bound:1000))
      in
      let delay =
        Delay.Per_link
          (fun src dst ->
            Vtime.of_int matrix.(Site_id.to_int src).(Site_id.to_int dst))
      in
      let slaves = Site_id.slaves ~n in
      let g2 = List.filter (fun _ -> Rng.bool rng) slaves in
      let g2 =
        if g2 = [] then [ List.nth slaves (Rng.int rng ~bound:(n - 1)) ]
        else g2
      in
      let p =
        Partition.make
          ~group2:(Site_id.Set.of_list g2)
          ~starts_at:(Vtime.of_int at) ~n ()
      in
      let cfg = config ~n ~partition:p ~delay () in
      let result = Runner.run (module Theorem10.Four_phase_termination) cfg in
      Verdict.resilient (Verdict.of_result result))

(* ------------------------------------------------------------------ *)
(* Lemma 8: the outcome is exactly "did a prepare cross B"             *)
(* ------------------------------------------------------------------ *)

let test_lemma8_case_family_decides_outcome () =
  (* Lemma 8 (static partitions): all sites commit iff some G2 slave
     received a prepare — i.e. case 1 aborts and every case-2/3 scenario
     commits.  Under a *transient* partition one extra behaviour is
     sound and observed: in case 2.2.2 the healed network can deliver
     the G2 probes into the master's window, making PB = N - UD and
     aborting everyone — consistently, since case 2.2 guarantees no
     UD(ack) self-commit happened.  The lemma's dichotomy is an
     assumption-5 statement; atomicity holds regardless. *)
  let checked = ref 0 in
  let observe ~transient cfg =
    let obs = Cases.observe (module Termination.Transient) cfg in
    let v = Verdict.of_result obs.Cases.result in
    match obs.Cases.case with
    | None -> ()
    | Some case ->
        incr checked;
        let allowed =
          match case with
          | Timing.Case_1 -> [ `Aborted ]
          | Timing.Case_2_2_2 when transient -> [ `Committed; `Aborted ]
          | Timing.Case_2_1 | Timing.Case_2_2_1 | Timing.Case_2_2_2
          | Timing.Case_3_1 | Timing.Case_3_2_1 | Timing.Case_3_2_2_1
          | Timing.Case_3_2_2_2 ->
              [ `Committed ]
        in
        check Alcotest.bool
          (Format.asprintf "%a outcome admissible" Timing.pp_case case)
          true
          (List.mem (Verdict.outcome v) allowed)
  in
  List.iter (observe ~transient:false) (static_grid ~n:3 @ static_grid ~n:4);
  List.iter (observe ~transient:true) (transient_grid ~n:3);
  check Alcotest.bool "cases were observed" true (!checked > 1000)

(* ------------------------------------------------------------------ *)
(* FACT 1 / FACT 2 audit                                               *)
(* ------------------------------------------------------------------ *)

let test_facts_audit_static () =
  List.iter
    (fun cfg ->
      let result = Runner.run (module Termination.Static) cfg in
      match Facts.audit result with
      | Ok () -> ()
      | Error problems ->
          Alcotest.fail
            (Format.asprintf "%s: %a" (Scenario.config_id cfg) Facts.pp_problem
               (List.hd problems)))
    (static_grid ~n:3)

let test_facts_audit_transient () =
  List.iter
    (fun cfg ->
      let result = Runner.run (module Termination.Transient) cfg in
      match Facts.audit result with
      | Ok () -> ()
      | Error problems ->
          Alcotest.fail
            (Format.asprintf "%s: %a" (Scenario.config_id cfg) Facts.pp_problem
               (List.hd problems)))
    (transient_grid ~n:3)

let test_facts_rejects_other_protocols () =
  let result = Runner.run (module Two_phase) (config ()) in
  let raised =
    try
      ignore (Facts.audit result);
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "audit refuses 2pc results" true raised

(* ------------------------------------------------------------------ *)
(* Property: random scenarios are always resilient                     *)
(* ------------------------------------------------------------------ *)

let random_scenario_resilient =
  QCheck.Test.make ~count:300 ~name:"termination protocol resilient on random scenarios"
    QCheck.(
      quad (int_range 2 6) (int_range 0 9000) (int_range 0 2) small_nat)
    (fun (n, at, delay_ix, seed) ->
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      (* random nonempty proper subset of slaves *)
      let slaves = Site_id.slaves ~n in
      let g2 =
        List.filter (fun _ -> Rng.bool rng) slaves
      in
      let g2 = if g2 = [] then [ List.nth slaves (Rng.int rng ~bound:(n - 1)) ] else g2 in
      let g2 = if List.length g2 = n - 1 && n = 2 then g2 else g2 in
      let p =
        Partition.make
          ~group2:(Site_id.Set.of_list g2)
          ~starts_at:(Vtime.of_int at) ~n ()
      in
      let delay =
        match delay_ix with
        | 0 -> Delay.minimal
        | 1 -> Delay.full ~t_max:t_unit
        | _ -> Delay.uniform ~t_max:t_unit
      in
      let cfg =
        config ~n ~partition:p ~delay ~seed:(Int64.of_int (seed * 31 + 7)) ()
      in
      let result = Runner.run (module Termination.Static) cfg in
      let v = Verdict.of_result result in
      Verdict.resilient v && Facts.audit result = Ok ())

(* Adversarial asymmetric links: a random delay matrix (each directed
   link a fixed delay in [1,T]), random cut, random instant.  The grids
   only use symmetric models; this hunts for orderings they miss. *)
let random_link_matrix_resilient =
  QCheck.Test.make ~count:250
    ~name:"termination protocol resilient under random per-link delays"
    QCheck.(triple (int_range 2 5) (int_range 0 9000) small_nat)
    (fun (n, at, seed) ->
      let rng = Rng.create (Int64.of_int ((seed * 7) + 13)) in
      let matrix =
        Array.init (n + 1) (fun _ ->
            Array.init (n + 1) (fun _ -> 1 + Rng.int rng ~bound:1000))
      in
      let delay =
        Delay.Per_link
          (fun src dst ->
            Vtime.of_int matrix.(Site_id.to_int src).(Site_id.to_int dst))
      in
      let slaves = Site_id.slaves ~n in
      let g2 = List.filter (fun _ -> Rng.bool rng) slaves in
      let g2 =
        if g2 = [] then [ List.nth slaves (Rng.int rng ~bound:(n - 1)) ]
        else g2
      in
      let p =
        Partition.make
          ~group2:(Site_id.Set.of_list g2)
          ~starts_at:(Vtime.of_int at) ~n ()
      in
      let cfg = config ~n ~partition:p ~delay () in
      let result = Runner.run (module Termination.Static) cfg in
      Verdict.resilient (Verdict.of_result result)
      && Facts.audit result = Ok ())

(* The transient variant under random heal instants on top of the random
   matrix — the hardest setting the paper covers. *)
let random_transient_resilient =
  QCheck.Test.make ~count:250
    ~name:"transient variant resilient under random heals and delays"
    QCheck.(
      quad (int_range 2 5) (int_range 0 9000) (int_range 1 12000) small_nat)
    (fun (n, at, heal_after, seed) ->
      let rng = Rng.create (Int64.of_int ((seed * 11) + 3)) in
      let matrix =
        Array.init (n + 1) (fun _ ->
            Array.init (n + 1) (fun _ -> 1 + Rng.int rng ~bound:1000))
      in
      let delay =
        Delay.Per_link
          (fun src dst ->
            Vtime.of_int matrix.(Site_id.to_int src).(Site_id.to_int dst))
      in
      let slaves = Site_id.slaves ~n in
      let g2 = List.filter (fun _ -> Rng.bool rng) slaves in
      let g2 =
        if g2 = [] then [ List.nth slaves (Rng.int rng ~bound:(n - 1)) ]
        else g2
      in
      let p =
        Partition.make
          ~group2:(Site_id.Set.of_list g2)
          ~starts_at:(Vtime.of_int at)
          ~heals_at:(Vtime.of_int (at + heal_after))
          ~n ()
      in
      let cfg = config ~n ~partition:p ~delay () in
      let result = Runner.run (module Termination.Transient) cfg in
      Verdict.resilient (Verdict.of_result result)
      && Facts.audit result = Ok ())

let () =
  Alcotest.run "commit_termination"
    [
      ( "flows",
        [
          Alcotest.test_case "failure-free commit (n=6)" `Quick
            test_failure_free_commit;
          Alcotest.test_case "no vote aborts" `Quick test_no_vote_aborts;
        ] );
      ( "section5-ideas",
        [
          Alcotest.test_case "UD(xact) aborts" `Quick test_ud_xact_aborts;
          Alcotest.test_case "w1 timeout + UD(yes)" `Quick
            test_w1_timeout_and_ud_yes;
          Alcotest.test_case "p1 timeout commit + UD(ack)" `Quick
            test_p1_timeout_commit_and_ud_ack;
          Alcotest.test_case "collect window aborts (N-UD = PB)" `Quick
            test_collect_window_abort;
          Alcotest.test_case "collect window commits (N-UD <> PB)" `Quick
            test_collect_window_commit;
        ] );
      ( "theorem9",
        [
          Alcotest.test_case "n=2 sweep" `Slow test_theorem9_n2;
          Alcotest.test_case "n=3 sweep" `Slow test_theorem9_n3;
          Alcotest.test_case "n=4 sweep" `Slow test_theorem9_n4;
          Alcotest.test_case "with no-votes" `Slow test_theorem9_with_no_votes;
          QCheck_alcotest.to_alcotest random_scenario_resilient;
          QCheck_alcotest.to_alcotest random_link_matrix_resilient;
          QCheck_alcotest.to_alcotest random_transient_resilient;
        ] );
      ( "section6-transient",
        [
          Alcotest.test_case "static blocks on transient partitions" `Slow
            test_static_blocks_on_transient;
          Alcotest.test_case "transient variant never blocks (n=3)" `Slow
            test_transient_never_blocks;
          Alcotest.test_case "transient variant never blocks (n=4)" `Slow
            test_transient_never_blocks_n4;
          Alcotest.test_case "case 3.2.2.2 scenario" `Quick test_case_3222_scenario;
          Alcotest.test_case "case bounds hold" `Slow test_case_bounds_hold;
          Alcotest.test_case "probe wait <= 5T (transient)" `Slow
            test_transient_probe_wait_never_exceeds_5t;
        ] );
      ( "window-ablation",
        [
          Alcotest.test_case "3T collect window breaks" `Slow
            test_short_collect_window_breaks;
          Alcotest.test_case "paper windows are clean" `Slow
            test_paper_windows_clean;
        ] );
      ( "assumption2",
        [
          Alcotest.test_case "mid-termination second cut breaks" `Slow
            test_assumption2_violated_breaks;
          Alcotest.test_case "post-termination second cut harmless" `Quick
            test_assumption2_respected_is_fine;
        ] );
      ( "multiple-partitioning",
        [
          Alcotest.test_case "termination protocol breaks (impossibility)"
            `Slow test_multiple_partitioning_breaks_termination;
          Alcotest.test_case "quorum stays atomic but blocks" `Slow
            test_multiple_partitioning_quorum_safe_but_blocks;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "partition on exact instants" `Quick
            test_partition_on_exact_instants;
          Alcotest.test_case "heal on exact window close" `Quick
            test_heal_on_exact_window_close;
          Alcotest.test_case "larger site counts" `Slow
            test_larger_site_counts;
        ] );
      ( "theorem10",
        [
          Alcotest.test_case "4pc failure-free flows" `Quick
            test_theorem10_4pc_failure_free;
          Alcotest.test_case "4pc-termination resilient (n=3)" `Slow
            test_theorem10_4pc_resilient_n3;
          Alcotest.test_case "4pc-termination resilient (n=4)" `Slow
            test_theorem10_4pc_resilient_n4;
          QCheck_alcotest.to_alcotest theorem10_random_resilient;
        ] );
      ( "lemma8",
        [
          Alcotest.test_case "case family decides the outcome" `Slow
            test_lemma8_case_family_decides_outcome;
        ] );
      ( "facts",
        [
          Alcotest.test_case "audit static sweep" `Slow test_facts_audit_static;
          Alcotest.test_case "audit transient sweep" `Slow
            test_facts_audit_transient;
          Alcotest.test_case "audit refuses other protocols" `Quick
            test_facts_rejects_other_protocols;
        ] );
    ]
