(* Tests for the span recorder (lib/obs): well-formed nesting, export
   determinism (across runs and across domain counts), and the
   zero-allocation guarantee of the disabled recorder. *)

let check = Alcotest.check

let qtest = QCheck_alcotest.to_alcotest

let t_unit = Vtime.of_int 1000

(* ------------------------------------------------------------------ *)
(* Nesting discipline                                                  *)
(* ------------------------------------------------------------------ *)

(* Replay a random op sequence and assert every track's begin/end
   events stay balanced: depth never dips below zero, and after
   [close_open_spans] every track ends at depth 0 with a well-formed
   (stack-ordered) close sequence. *)
let qcheck_balance =
  let op =
    QCheck.(
      quad (int_bound 3) (int_bound 2) (int_bound 2) (int_bound 100)
      |> map (fun (what, site, tid, at) -> (what, site, tid, at)))
  in
  QCheck.Test.make ~name:"span open/close balance under random ops"
    ~count:200
    QCheck.(list_of_size Gen.(int_bound 60) op)
    (fun ops ->
      let obs = Obs.create () in
      let now = ref 0 in
      List.iter
        (fun (what, site, tid, at) ->
          now := !now + at;
          let at = Vtime.of_int !now in
          match what with
          | 0 -> Obs.span_begin obs ~at ~site ~tid "s"
          | 1 -> Obs.span_end obs ~at ~site ~tid
          | 2 -> Obs.instant obs ~at ~site ~tid "i"
          | _ ->
              let id = Obs.flow_start obs ~at ~site ~tid "f" in
              Obs.flow_end obs ~at ~site ~tid id)
        ops;
      Obs.close_open_spans obs ~at:(Vtime.of_int (!now + 1));
      let depth = Hashtbl.create 8 in
      let ok = ref true in
      Obs.iter obs (fun e ->
          let k = (e.Obs.site, e.Obs.tid) in
          let d = Option.value (Hashtbl.find_opt depth k) ~default:0 in
          match e.Obs.kind with
          | Obs.Span_begin -> Hashtbl.replace depth k (d + 1)
          | Obs.Span_end ->
              if d <= 0 then ok := false;
              Hashtbl.replace depth k (d - 1)
          | Obs.Instant | Obs.Flow_start | Obs.Flow_end -> ());
      Hashtbl.iter (fun _ d -> if d <> 0 then ok := false) depth;
      !ok)

let test_spurious_end_dropped () =
  let obs = Obs.create () in
  Obs.span_end obs ~at:Vtime.zero ~site:1 ~tid:1;
  check Alcotest.int "no event for a spurious end" 0 (Obs.num_events obs);
  Obs.span_begin obs ~at:Vtime.zero ~site:1 ~tid:1 "a";
  Obs.span_end obs ~at:(Vtime.of_int 5) ~site:1 ~tid:1;
  Obs.span_end obs ~at:(Vtime.of_int 6) ~site:1 ~tid:1;
  check Alcotest.int "balanced pair only" 2 (Obs.num_events obs);
  check Alcotest.int "depth back to zero" 0 (Obs.open_depth obs ~site:1 ~tid:1)

(* ------------------------------------------------------------------ *)
(* Export determinism                                                  *)
(* ------------------------------------------------------------------ *)

let runner_config () =
  let base = Runner.default_config ~n:3 ~t_unit () in
  {
    base with
    Runner.trace_enabled = false;
    partition =
      Partition.make
        ~group2:(Site_id.set_of_ints [ 3 ])
        ~starts_at:(Vtime.of_int 1500) ~n:3 ();
    delay = Delay.uniform ~t_max:t_unit;
  }

let runner_jsons () =
  let obs = Obs.create () in
  let (_ : Runner.result) =
    Runner.run ~obs (module Termination.Transient) (runner_config ())
  in
  (Obs.to_trace_event_json obs, Obs.to_causality_json obs)

let test_runner_export_repeatable () =
  let t1, c1 = runner_jsons () in
  let t2, c2 = runner_jsons () in
  check Alcotest.string "trace_event byte-identical across runs" t1 t2;
  check Alcotest.string "causality byte-identical across runs" c1 c2;
  check Alcotest.bool "trace_event non-trivial" true
    (String.length t1 > 200)

let test_runner_export_across_jobs () =
  let direct = runner_jsons () in
  let pooled =
    Commit_par.Pool.with_pool ~domains:2 (fun pool ->
        Commit_par.Pool.map pool ~chunk:1 (fun () -> runner_jsons ())
          [| (); () |])
  in
  Array.iter
    (fun (t, c) ->
      check Alcotest.string "trace_event identical under a pool" (fst direct) t;
      check Alcotest.string "causality identical under a pool" (snd direct) c)
    pooled

let cluster_jsons () =
  let module Runtime = Commit_cluster.Runtime in
  let config =
    {
      (Runtime.default_config ()) with
      Runtime.duration = Vtime.of_int 40_000;
      drain = Vtime.of_int 20_000;
      load = 30;
      timeline =
        Partition.make
          ~group2:(Site_id.set_of_ints [ 3 ])
          ~starts_at:(Vtime.of_int 10_000) ~heals_at:(Vtime.of_int 25_000)
          ~n:3 ();
    }
  in
  let obs = Obs.create () in
  let (_ : Runtime.report) = Runtime.run ~obs config in
  (Obs.to_trace_event_json obs, Obs.to_causality_json obs)

let test_cluster_export_repeatable () =
  let t1, c1 = cluster_jsons () in
  let t2, c2 = cluster_jsons () in
  check Alcotest.string "cluster trace_event byte-identical" t1 t2;
  check Alcotest.string "cluster causality byte-identical" c1 c2

(* The acceptance scenario: a partition mid-w returns in-flight
   messages to their senders (optimistic model), so the recorder must
   hold at least one flow whose start and end sit on the same site. *)
let test_bounce_edge_recorded () =
  let obs = Obs.create () in
  let (_ : Runner.result) =
    Runner.run ~obs (module Termination.Transient) (runner_config ())
  in
  let starts = Hashtbl.create 16 in
  let bounce = ref false in
  Obs.iter obs (fun e ->
      match e.Obs.kind with
      | Obs.Flow_start -> Hashtbl.replace starts e.Obs.flow e.Obs.site
      | Obs.Flow_end -> (
          match Hashtbl.find_opt starts e.Obs.flow with
          | Some src when src = e.Obs.site -> bounce := true
          | Some _ | None -> ())
      | Obs.Span_begin | Obs.Span_end | Obs.Instant -> ());
  check Alcotest.bool "a returned-to-sender flow edge exists" true !bounce

let test_probe_round_span_recorded () =
  let obs = Obs.create () in
  let (_ : Runner.result) =
    Runner.run ~obs (module Termination.Transient) (runner_config ())
  in
  let probe_round = ref false in
  Obs.iter obs (fun e ->
      if e.Obs.kind = Obs.Span_begin && e.Obs.name = "probe-round" then
        probe_round := true);
  check Alcotest.bool "a probe-round span exists" true !probe_round

(* ------------------------------------------------------------------ *)
(* The disabled recorder allocates nothing                             *)
(* ------------------------------------------------------------------ *)

let test_disabled_allocates_nothing () =
  let obs = Obs.disabled in
  let sink = ref 0 in
  Gc.minor ();
  let collections0 = (Gc.quick_stat ()).Gc.minor_collections in
  let bytes0 = Gc.allocated_bytes () in
  for i = 1 to 10_000 do
    let at = Vtime.of_int i in
    Obs.span_begin obs ~at ~site:1 ~tid:1 "s";
    Obs.instant obs ~at ~site:1 ~tid:1 "i";
    let id = Obs.flow_start obs ~at ~site:1 ~tid:1 "f" in
    Obs.flow_end obs ~at ~site:2 ~tid:1 id;
    Obs.span_end obs ~at ~site:1 ~tid:1;
    sink := !sink + id + Obs.open_depth obs ~site:1 ~tid:1
  done;
  let bytes1 = Gc.allocated_bytes () in
  let collections1 = (Gc.quick_stat ()).Gc.minor_collections in
  check Alcotest.int "flow ids and depths all zero" 0 !sink;
  check Alcotest.int "no minor collection over 50k disabled calls" 0
    (collections1 - collections0);
  (* Gc.allocated_bytes itself boxes a float; anything beyond those two
     boxes would be a leak on the disabled path (50k calls x >= 16 B
     each would show up as >= 800 kB). *)
  check Alcotest.bool "allocation delta below 1 kB" true
    (bytes1 -. bytes0 < 1024.)

let () =
  Alcotest.run "commit_obs"
    [
      ( "nesting",
        [
          qtest qcheck_balance;
          Alcotest.test_case "spurious end dropped" `Quick
            test_spurious_end_dropped;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "runner export repeatable" `Quick
            test_runner_export_repeatable;
          Alcotest.test_case "runner export across jobs" `Quick
            test_runner_export_across_jobs;
          Alcotest.test_case "cluster export repeatable" `Quick
            test_cluster_export_repeatable;
        ] );
      ( "content",
        [
          Alcotest.test_case "bounce edge recorded" `Quick
            test_bounce_edge_recorded;
          Alcotest.test_case "probe-round span recorded" `Quick
            test_probe_round_span_recorded;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "disabled recorder allocates nothing" `Quick
            test_disabled_allocates_nothing;
        ] );
    ]
