(* Tests for the domain pool (lib/par) and the determinism guarantee
   of the parallel sweeps built on it: for any [jobs], the merged
   summary — and its JSON export — is byte-identical to the sequential
   fold. *)

module Pool = Commit_par.Pool
module Cluster = Commit_cluster

let check = Alcotest.check

let t_unit = Vtime.of_int 1000

let t mult = Vtime.of_int (mult * 1000)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 37 Fun.id in
      let out = Pool.map pool ~chunk:4 (fun x -> x * x) input in
      check Alcotest.int "length" 37 (Array.length out);
      Array.iteri
        (fun i y -> check Alcotest.int "element" (i * i) y)
        out)

let test_pool_map_empty () =
  Pool.with_pool ~domains:2 (fun pool ->
      let out = Pool.map pool ~chunk:4 (fun x -> x * x) [||] in
      check Alcotest.int "empty in, empty out" 0 (Array.length out))

let test_pool_map_reduce_empty_raises () =
  Pool.with_pool ~domains:2 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map_reduce pool ~chunk:4 Fun.id ~merge:( + ) ([||] : int array));
          false
        with Invalid_argument _ -> true
      in
      check Alcotest.bool "empty input rejected" true raised;
      let raised =
        try
          ignore (Pool.map_reduce pool ~chunk:0 Fun.id ~merge:( + ) [| 1 |]);
          false
        with Invalid_argument _ -> true
      in
      check Alcotest.bool "chunk < 1 rejected" true raised)

let test_pool_chunk_larger_than_input () =
  Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 5 (fun i -> i + 1) in
      let sum = Pool.map_reduce pool ~chunk:100 Fun.id ~merge:( + ) input in
      check Alcotest.int "one chunk still reduces" 15 sum;
      let out = Pool.map pool ~chunk:100 (fun x -> x * 2) input in
      check Alcotest.int "one chunk still maps" 10 out.(4))

let test_pool_map_reduce_ordered () =
  (* A non-commutative merge (string concat) exposes any ordering bug:
     chunks must fold left-to-right regardless of which domain finishes
     first. *)
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 26 (fun i -> String.make 1 (Char.chr (65 + i))) in
      List.iter
        (fun chunk ->
          let s = Pool.map_reduce pool ~chunk Fun.id ~merge:( ^ ) input in
          check Alcotest.string
            (Printf.sprintf "chunk=%d keeps order" chunk)
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ" s)
        [ 1; 2; 3; 7; 26; 100 ])

exception Boom of int

let test_pool_exception_propagation () =
  Pool.with_pool ~domains:2 (fun pool ->
      let input = Array.init 20 Fun.id in
      let observed =
        try
          ignore
            (Pool.map_reduce pool ~chunk:3
               (fun x -> if x >= 7 then raise (Boom x) else x)
               ~merge:( + ) input);
          None
        with Boom x -> Some x
      in
      (* elements 7..19 all raise; the lowest-indexed chunk's exception
         (element 7, chunk [6;7;8]) is the one re-raised *)
      check
        Alcotest.(option int)
        "first failing chunk wins" (Some 7) observed;
      (* the pool survives a failed batch and runs the next one *)
      let sum = Pool.map_reduce pool ~chunk:3 Fun.id ~merge:( + ) input in
      check Alcotest.int "pool reusable after failure" 190 sum)

let test_pool_default_jobs () =
  check Alcotest.bool "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  let pool = Pool.create () in
  check Alcotest.bool "default pool size >= 1" true (Pool.size pool >= 1);
  Pool.shutdown pool;
  (* shutdown is idempotent *)
  Pool.shutdown pool

(* ------------------------------------------------------------------ *)
(* Sweep determinism across jobs                                       *)
(* ------------------------------------------------------------------ *)

let sweep_grid () =
  let base =
    { (Runner.default_config ~n:3 ~t_unit ()) with Runner.trace_enabled = false }
  in
  Scenario.configs ~base (Scenario.default_grid ~n:3 ~t_unit)

let test_sweep_jobs_deterministic () =
  let grid = sweep_grid () in
  let export s = Export.to_string (Export.of_summary s) in
  let sequential = export (Sweep.run (module Termination.Static) grid) in
  List.iter
    (fun jobs ->
      let parallel = export (Sweep.run ~jobs (module Termination.Static) grid) in
      check Alcotest.string
        (Printf.sprintf "jobs=%d = sequential" jobs)
        sequential parallel)
    [ 1; 2; 4 ]

let test_sweep_jobs_rejects_zero () =
  let raised =
    try
      ignore (Sweep.run ~jobs:0 (module Termination.Static) (sweep_grid ()));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "jobs=0 rejected" true raised

(* ------------------------------------------------------------------ *)
(* Cluster-sweep determinism across jobs                               *)
(* ------------------------------------------------------------------ *)

let cluster_grid () =
  let base =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = t 120;
      drain = t 40;
      load = 40;
      bucket = t 40;
    }
  in
  let cut =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(t 50) ~heals_at:(t 70) ~n:3 ()
  in
  {
    Cluster.Cluster_sweep.base;
    seeds = [ 1L; 2L; 3L ];
    timelines = [ ("none", Partition.none); ("cut", cut) ];
    policies =
      [ Cluster.Scheduler.Fixed_master; Cluster.Scheduler.Partition_aware ];
  }

let test_cluster_sweep_jobs_deterministic () =
  let grid = cluster_grid () in
  let export s = Export.to_string (Cluster.Cluster_sweep.to_json s) in
  let sequential = export (Cluster.Cluster_sweep.run grid) in
  List.iter
    (fun jobs ->
      let parallel = export (Cluster.Cluster_sweep.run ~jobs grid) in
      check Alcotest.string
        (Printf.sprintf "jobs=%d = sequential" jobs)
        sequential parallel)
    [ 1; 2; 4 ]

let test_cluster_sweep_accounting () =
  let grid = cluster_grid () in
  let tasks = Cluster.Cluster_sweep.tasks grid in
  check Alcotest.int "grid size = seeds x timelines x policies" 12
    (List.length tasks);
  let s = Cluster.Cluster_sweep.run ~jobs:2 grid in
  check Alcotest.int "one summary row per task" 12 s.Cluster.Cluster_sweep.runs;
  check Alcotest.int "settled = committed + aborted + torn"
    s.Cluster.Cluster_sweep.settled
    (s.Cluster.Cluster_sweep.committed + s.Cluster.Cluster_sweep.aborted
   + s.Cluster.Cluster_sweep.torn);
  (* the merged metrics really aggregate across runs: the commit
     histogram has one sample per committed transaction *)
  match Cluster.Metrics.histogram s.Cluster.Cluster_sweep.metrics "latency.commit" with
  | Some stats ->
      check Alcotest.int "histogram spans all runs"
        s.Cluster.Cluster_sweep.committed stats.Stats.count
  | None -> Alcotest.fail "expected a merged commit-latency histogram"

let () =
  Alcotest.run "commit_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "map empty" `Quick test_pool_map_empty;
          Alcotest.test_case "map_reduce empty/chunk<1 raise" `Quick
            test_pool_map_reduce_empty_raises;
          Alcotest.test_case "chunk > input" `Quick
            test_pool_chunk_larger_than_input;
          Alcotest.test_case "merge order" `Quick test_pool_map_reduce_ordered;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "defaults and shutdown" `Quick
            test_pool_default_jobs;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_sweep_jobs_deterministic;
          Alcotest.test_case "rejects jobs=0" `Quick
            test_sweep_jobs_rejects_zero;
        ] );
      ( "cluster-sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_cluster_sweep_jobs_deterministic;
          Alcotest.test_case "accounting" `Quick test_cluster_sweep_accounting;
        ] );
    ]
