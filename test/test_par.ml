(* Tests for the domain pool (lib/par) and the determinism guarantee
   of the parallel sweeps built on it: for any [jobs], the merged
   summary — and its JSON export — is byte-identical to the sequential
   fold. *)

module Pool = Commit_par.Pool
module Cluster = Commit_cluster

let check = Alcotest.check

let t_unit = Vtime.of_int 1000

let t mult = Vtime.of_int (mult * 1000)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_map () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 37 Fun.id in
      let out = Pool.map pool ~chunk:4 (fun x -> x * x) input in
      check Alcotest.int "length" 37 (Array.length out);
      Array.iteri
        (fun i y -> check Alcotest.int "element" (i * i) y)
        out)

let test_pool_map_empty () =
  Pool.with_pool ~domains:2 (fun pool ->
      let out = Pool.map pool ~chunk:4 (fun x -> x * x) [||] in
      check Alcotest.int "empty in, empty out" 0 (Array.length out))

let test_pool_map_reduce_empty_raises () =
  Pool.with_pool ~domains:2 (fun pool ->
      let raised =
        try
          ignore
            (Pool.map_reduce pool ~chunk:4 Fun.id ~merge:( + ) ([||] : int array));
          false
        with Invalid_argument _ -> true
      in
      check Alcotest.bool "empty input rejected" true raised;
      let raised =
        try
          ignore (Pool.map_reduce pool ~chunk:0 Fun.id ~merge:( + ) [| 1 |]);
          false
        with Invalid_argument _ -> true
      in
      check Alcotest.bool "chunk < 1 rejected" true raised)

let test_pool_chunk_larger_than_input () =
  Pool.with_pool ~domains:4 (fun pool ->
      let input = Array.init 5 (fun i -> i + 1) in
      let sum = Pool.map_reduce pool ~chunk:100 Fun.id ~merge:( + ) input in
      check Alcotest.int "one chunk still reduces" 15 sum;
      let out = Pool.map pool ~chunk:100 (fun x -> x * 2) input in
      check Alcotest.int "one chunk still maps" 10 out.(4))

let test_pool_map_reduce_ordered () =
  (* A non-commutative merge (string concat) exposes any ordering bug:
     chunks must fold left-to-right regardless of which domain finishes
     first. *)
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 26 (fun i -> String.make 1 (Char.chr (65 + i))) in
      List.iter
        (fun chunk ->
          let s = Pool.map_reduce pool ~chunk Fun.id ~merge:( ^ ) input in
          check Alcotest.string
            (Printf.sprintf "chunk=%d keeps order" chunk)
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ" s)
        [ 1; 2; 3; 7; 26; 100 ])

exception Boom of int

let test_pool_exception_propagation () =
  Pool.with_pool ~domains:2 (fun pool ->
      let input = Array.init 20 Fun.id in
      let observed =
        try
          ignore
            (Pool.map_reduce pool ~chunk:3
               (fun x -> if x >= 7 then raise (Boom x) else x)
               ~merge:( + ) input);
          None
        with Boom x -> Some x
      in
      (* elements 7..19 all raise; the lowest-indexed chunk's exception
         (element 7, chunk [6;7;8]) is the one re-raised *)
      check
        Alcotest.(option int)
        "first failing chunk wins" (Some 7) observed;
      (* the pool survives a failed batch and runs the next one *)
      let sum = Pool.map_reduce pool ~chunk:3 Fun.id ~merge:( + ) input in
      check Alcotest.int "pool reusable after failure" 190 sum)

let test_pool_default_jobs () =
  check Alcotest.bool "default_jobs >= 1" true (Pool.default_jobs () >= 1);
  let pool = Pool.create () in
  check Alcotest.bool "default pool size >= 1" true (Pool.size pool >= 1);
  Pool.shutdown pool;
  (* shutdown is idempotent *)
  Pool.shutdown pool

let test_pool_scratch_per_domain () =
  Pool.with_pool ~domains:3 (fun pool ->
      let created = Atomic.make 0 in
      let input = Array.init 48 Fun.id in
      let users = Array.make (Array.length input) (-1, -1) in
      let sum =
        Pool.map_reduce_scratch pool ~chunk:2
          ~init:(fun () -> Atomic.fetch_and_add created 1)
          ~f:(fun scratch_id x ->
            users.(x) <- (scratch_id, (Domain.self () :> int));
            x)
          ~merge:( + ) input
      in
      check Alcotest.int "reduction unchanged by scratch" 1128 sum;
      check Alcotest.int "init called exactly (size pool) times"
        (Pool.size pool) (Atomic.get created);
      (* a scratch value is never shared: each scratch id maps to exactly
         one domain across the whole job *)
      let domain_of = Hashtbl.create 8 in
      Array.iter
        (fun (scratch_id, domain) ->
          check Alcotest.bool "every element saw a scratch" true
            (scratch_id >= 0);
          match Hashtbl.find_opt domain_of scratch_id with
          | None -> Hashtbl.add domain_of scratch_id domain
          | Some d -> check Alcotest.int "scratch never crosses domains" d domain)
        users)

(* ------------------------------------------------------------------ *)
(* Sweep determinism across jobs                                       *)
(* ------------------------------------------------------------------ *)

let sweep_grid () =
  let base =
    { (Runner.default_config ~n:3 ~t_unit ()) with Runner.trace_enabled = false }
  in
  Scenario.configs ~base (Scenario.default_grid ~n:3 ~t_unit)

let test_sweep_jobs_deterministic () =
  let grid = sweep_grid () in
  let export s = Export.to_string (Export.of_summary s) in
  let sequential = export (Sweep.run (module Termination.Static) grid) in
  List.iter
    (fun jobs ->
      let parallel = export (Sweep.run ~jobs (module Termination.Static) grid) in
      check Alcotest.string
        (Printf.sprintf "jobs=%d = sequential" jobs)
        sequential parallel)
    [ 1; 2; 4; 8 ]

(* Scratch reuse must be invisible: a run on a reused engine is
   identical to a run on a fresh one, whatever ran on the scratch
   before. *)
let test_runner_scratch_invisible () =
  let configs = sweep_grid () in
  let sample = List.filteri (fun i _ -> i mod 97 = 0) configs in
  let scratch = Runner.make_scratch () in
  List.iter
    (fun config ->
      let fresh = Runner.run (module Termination.Static) config in
      let reused = Runner.run ~scratch (module Termination.Static) config in
      check Alcotest.string
        (Scenario.config_id config)
        (Format.asprintf "%a" Runner.pp_result fresh)
        (Format.asprintf "%a" Runner.pp_result reused);
      check Alcotest.int "events_run identical" fresh.Runner.events_run
        reused.Runner.events_run)
    sample

(* The qcheck property behind the determinism guarantee: for ANY chunk
   size, ANY executor count and ANY permutation of the grid, the
   batched parallel fold is byte-identical to the sequential fold over
   the same permutation. *)
let shuffled ~seed arr =
  let st = Random.State.make [| seed |] in
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let chunk_jobs_perm = QCheck.(triple (int_range 1 4) (int_range 1 9) small_nat)

let qcheck_sweep_batched_identical =
  QCheck.Test.make ~count:8
    ~name:"checker sweep byte-identical across chunk x jobs x permutation"
    chunk_jobs_perm
    (fun (domains, chunk, perm_seed) ->
      let configs = shuffled ~seed:perm_seed (Array.of_list (sweep_grid ())) in
      let eval scratch config =
        Sweep.of_verdict ~protocol:"termination-static"
          ( config,
            Verdict.of_result
              (Runner.run ~scratch (module Termination.Static) config) )
      in
      let merge = Sweep.merge ~keep:3 in
      let sequential =
        let scratch = Runner.make_scratch () in
        match Array.to_list (Array.map (eval scratch) configs) with
        | [] -> assert false
        | first :: rest -> List.fold_left merge first rest
      in
      let batched =
        Pool.with_pool ~domains (fun pool ->
            Pool.map_reduce_scratch pool ~chunk ~init:Runner.make_scratch
              ~f:eval ~merge configs)
      in
      String.equal
        (Export.to_string (Export.of_summary sequential))
        (Export.to_string (Export.of_summary batched)))

let test_sweep_jobs_rejects_zero () =
  let raised =
    try
      ignore (Sweep.run ~jobs:0 (module Termination.Static) (sweep_grid ()));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "jobs=0 rejected" true raised

(* ------------------------------------------------------------------ *)
(* Cluster-sweep determinism across jobs                               *)
(* ------------------------------------------------------------------ *)

let cluster_grid () =
  let base =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = t 120;
      drain = t 40;
      load = 40;
      bucket = t 40;
    }
  in
  let cut =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(t 50) ~heals_at:(t 70) ~n:3 ()
  in
  {
    Cluster.Cluster_sweep.base;
    seeds = [ 1L; 2L; 3L ];
    timelines = [ ("none", Partition.none); ("cut", cut) ];
    policies =
      [ Cluster.Scheduler.Fixed_master; Cluster.Scheduler.Partition_aware ];
    protocols = [];
    faults = [];
  }

let test_cluster_sweep_jobs_deterministic () =
  let grid = cluster_grid () in
  let export s = Export.to_string (Cluster.Cluster_sweep.to_json s) in
  let sequential = export (Cluster.Cluster_sweep.run grid) in
  List.iter
    (fun jobs ->
      let parallel = export (Cluster.Cluster_sweep.run ~jobs grid) in
      check Alcotest.string
        (Printf.sprintf "jobs=%d = sequential" jobs)
        sequential parallel)
    [ 1; 2; 4; 8 ]

let qcheck_cluster_batched_identical =
  QCheck.Test.make ~count:4
    ~name:"cluster sweep byte-identical across chunk x jobs x permutation"
    QCheck.(triple (int_range 1 3) (int_range 1 5) small_nat)
    (fun (domains, chunk, perm_seed) ->
      let tasks =
        shuffled ~seed:perm_seed
          (Array.of_list (Cluster.Cluster_sweep.tasks (cluster_grid ())))
      in
      let eval scratch (label, config) =
        Cluster.Cluster_sweep.of_report ~label
          (Cluster.Runtime.run ~scratch config)
      in
      let merge = Cluster.Cluster_sweep.merge ~keep:5 in
      let sequential =
        let scratch = Cluster.Runtime.make_scratch () in
        match Array.to_list (Array.map (eval scratch) tasks) with
        | [] -> assert false
        | first :: rest -> List.fold_left merge first rest
      in
      let batched =
        Pool.with_pool ~domains (fun pool ->
            Pool.map_reduce_scratch pool ~chunk
              ~init:Cluster.Runtime.make_scratch ~f:eval ~merge tasks)
      in
      String.equal
        (Export.to_string (Cluster.Cluster_sweep.to_json sequential))
        (Export.to_string (Cluster.Cluster_sweep.to_json batched)))

let test_cluster_sweep_accounting () =
  let grid = cluster_grid () in
  let tasks = Cluster.Cluster_sweep.tasks grid in
  check Alcotest.int "grid size = seeds x timelines x policies" 12
    (List.length tasks);
  let s = Cluster.Cluster_sweep.run ~jobs:2 grid in
  check Alcotest.int "one summary row per task" 12 s.Cluster.Cluster_sweep.runs;
  check Alcotest.int "settled = committed + aborted + torn"
    s.Cluster.Cluster_sweep.settled
    (s.Cluster.Cluster_sweep.committed + s.Cluster.Cluster_sweep.aborted
   + s.Cluster.Cluster_sweep.torn);
  (* the merged metrics really aggregate across runs: the commit
     histogram has one sample per committed transaction *)
  match Cluster.Metrics.histogram s.Cluster.Cluster_sweep.metrics "latency.commit" with
  | Some stats ->
      check Alcotest.int "histogram spans all runs"
        s.Cluster.Cluster_sweep.committed stats.Stats.count
  | None -> Alcotest.fail "expected a merged commit-latency histogram"

let () =
  Alcotest.run "commit_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map" `Quick test_pool_map;
          Alcotest.test_case "map empty" `Quick test_pool_map_empty;
          Alcotest.test_case "map_reduce empty/chunk<1 raise" `Quick
            test_pool_map_reduce_empty_raises;
          Alcotest.test_case "chunk > input" `Quick
            test_pool_chunk_larger_than_input;
          Alcotest.test_case "merge order" `Quick test_pool_map_reduce_ordered;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception_propagation;
          Alcotest.test_case "defaults and shutdown" `Quick
            test_pool_default_jobs;
          Alcotest.test_case "scratch per domain" `Quick
            test_pool_scratch_per_domain;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_sweep_jobs_deterministic;
          Alcotest.test_case "rejects jobs=0" `Quick
            test_sweep_jobs_rejects_zero;
          Alcotest.test_case "scratch reuse invisible" `Quick
            test_runner_scratch_invisible;
          QCheck_alcotest.to_alcotest qcheck_sweep_batched_identical;
        ] );
      ( "cluster-sweep",
        [
          Alcotest.test_case "deterministic across jobs" `Slow
            test_cluster_sweep_jobs_deterministic;
          Alcotest.test_case "accounting" `Quick test_cluster_sweep_accounting;
          QCheck_alcotest.to_alcotest qcheck_cluster_batched_identical;
        ] );
    ]
