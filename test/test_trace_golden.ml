(* Golden-output tests for the trace and span layers.

   Each scenario renders observable trace output — [Trace.pp] text,
   Perfetto trace_event JSON, the causality DAG — and compares it
   byte-for-byte against a checked-in golden file captured from the
   eager-string implementation (pre binary-record storage).  The
   binary-backed deferred rendering must reproduce every byte.

   Regenerate with:
     GOLDEN_REGEN=1 GOLDEN_DIR=test/golden dune exec test/test_trace_golden.exe
   from the repository root (only ever against a known-good tree). *)

let check = Alcotest.check

let t_unit = Vtime.of_int 1000

let t mult = mult * 1000

let golden_dir =
  match Sys.getenv_opt "GOLDEN_DIR" with Some d -> d | None -> "golden"

let regen = Sys.getenv_opt "GOLDEN_REGEN" <> None

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let check_golden name render () =
  let path = Filename.concat golden_dir (name ^ ".txt") in
  let actual = render () in
  if regen then write_file path actual
  else
    let expected = read_file path in
    check Alcotest.string name expected actual

(* ------------------------------------------------------------------ *)
(* Scenario builders                                                   *)
(* ------------------------------------------------------------------ *)

let partition ?heals_after ~g2 ~at ~n () =
  let starts_at = Vtime.of_int at in
  Partition.make
    ?heals_at:
      (Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heals_after)
    ~group2:(Site_id.set_of_ints g2) ~starts_at ~n ()

let config ?(n = 3) ?partition:p ?mode ?delay ?(seed = 1L) ?votes ?crashes () =
  let base = Runner.default_config ~n ~t_unit () in
  {
    base with
    Runner.partition = (match p with Some p -> p | None -> Partition.none);
    mode = (match mode with Some m -> m | None -> base.Runner.mode);
    delay = (match delay with Some d -> d | None -> base.Runner.delay);
    seed;
    votes = (match votes with Some v -> v | None -> []);
    crashes = (match crashes with Some c -> c | None -> []);
  }

let trace_of protocol config () =
  let result = Runner.run protocol config in
  Format.asprintf "%a" Trace.pp result.Runner.trace

let full = Delay.full ~t_max:t_unit

let uniform = Delay.uniform ~t_max:t_unit

(* The protocol-level scenarios: every protocol family, every network
   trace path (deliver, bounce, boundary loss, dead-sender suppression,
   dead-destination loss, crash marks), masters and slaves, clean and
   partitioned runs, and a votes-no abort. *)
let runner_scenarios =
  [
    ("2pc-clean", trace_of (module Two_phase) (config ()));
    ( "2pc-pessimistic-cut",
      trace_of
        (module Two_phase)
        (config ~partition:(partition ~g2:[ 3 ] ~at:1500 ~n:3 ())
           ~mode:Network.Pessimistic ~delay:full ()) );
    ( "ext2pc-cut",
      trace_of
        (module Ext_two_phase)
        (config ~partition:(partition ~g2:[ 3 ] ~at:2100 ~n:3 ()) ~delay:full ())
    );
    ( "3pc-partition-heal",
      trace_of
        (module Three_phase)
        (config ~n:5
           ~partition:(partition ~heals_after:(t 3) ~g2:[ 4; 5 ] ~at:2100 ~n:5 ())
           ~delay:full ()) );
    ( "3pc-rules-strict-cut",
      trace_of
        (module Three_phase_rules.Strict)
        (config ~n:4
           ~partition:(partition ~g2:[ 3; 4 ] ~at:2100 ~n:4 ())
           ~delay:uniform ~seed:42L ()) );
    ( "skeen-cut",
      trace_of
        (module Three_phase_skeen)
        (config ~partition:(partition ~g2:[ 3 ] ~at:1500 ~n:3 ()) ~delay:full ())
    );
    ( "quorum-cut",
      trace_of
        (module Quorum)
        (config ~n:4
           ~partition:(partition ~g2:[ 3; 4 ] ~at:2100 ~n:4 ())
           ~delay:full ()) );
    ( "termination-cut",
      trace_of
        (module Termination.Static)
        (config ~n:4
           ~partition:(partition ~g2:[ 3; 4 ] ~at:3050 ~n:4 ())
           ~delay:full ()) );
    ( "termination-transient-heal",
      trace_of
        (module Termination.Transient)
        (config
           ~partition:(partition ~heals_after:3000 ~g2:[ 3 ] ~at:1100 ~n:3 ())
           ~delay:uniform ~seed:42L ()) );
    ( "termination-votes-no",
      trace_of
        (module Termination.Static)
        (config ~partition:(partition ~g2:[ 3 ] ~at:2100 ~n:3 ()) ~delay:full
           ~votes:[ (Site_id.of_int 2, false) ]
           ()) );
    ( "termination-crash",
      trace_of
        (module Termination.Static)
        (config ~n:4
           ~partition:(partition ~g2:[ 4 ] ~at:2100 ~n:4 ())
           ~delay:full
           ~crashes:[ (Site_id.of_int 2, Vtime.of_int 2500) ]
           ()) );
    ( "paxos-master-crash",
      trace_of Paxos_commit.protocol
        (config ~delay:full ~crashes:[ (Site_id.master, Vtime.of_int 1000) ] ())
    );
    ("paxos-f0-clean", trace_of Paxos_commit.protocol_f0 (config ()));
    ( "theorem10-4pc-cut",
      trace_of
        (module Theorem10.Four_phase_termination)
        (config ~partition:(partition ~g2:[ 3 ] ~at:2100 ~n:3 ()) ~delay:full ())
    );
  ]

(* ------------------------------------------------------------------ *)
(* Transaction-manager and cluster traces                              *)
(* ------------------------------------------------------------------ *)

let tm_trace protocol () =
  let module Tm = Commit_db.Tm in
  let module Workload = Commit_db.Workload in
  let w =
    Workload.bank_transfers ~n:3 ~pairs:6 ~balance:1000 ~amount:70
      ~spacing:(Vtime.of_int 6000) ~seed:2024L
  in
  let p =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int 20200) ~n:3 ()
  in
  let config =
    {
      (Tm.default_config ~protocol ()) with
      Tm.initial = w.Workload.initial;
      partition = p;
      delay = full;
      trace_enabled = true;
    }
  in
  let report = Tm.run config w.Workload.txns in
  Format.asprintf "%a" Trace.pp report.Commit_db.Tm.trace

let cluster_trace ?crashes () =
  let module Cluster = Commit_cluster in
  let cut =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int (t 20))
      ~heals_at:(Vtime.of_int (t 40))
      ~n:3 ()
  in
  let config =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = Vtime.of_int (t 60);
      drain = Vtime.of_int (t 30);
      load = 40;
      bucket = Vtime.of_int (t 20);
      timeline = cut;
      crashes = (match crashes with Some c -> c | None -> []);
      trace_enabled = true;
    }
  in
  let report = Cluster.Runtime.run config in
  Format.asprintf "%a" Trace.pp report.Commit_cluster.Runtime.trace

let db_scenarios =
  [
    ("tm-termination-cut", tm_trace (module Termination.Static : Site.S));
    ("tm-2pc-cut", tm_trace (module Two_phase));
    ("cluster-cut", fun () -> cluster_trace ());
    ( "cluster-crash",
      fun () ->
        cluster_trace ~crashes:[ (Site_id.of_int 2, Vtime.of_int (t 30)) ] () );
  ]

(* ------------------------------------------------------------------ *)
(* Span exports                                                        *)
(* ------------------------------------------------------------------ *)

let spans_export fmt protocol config () =
  let obs = Obs.create () in
  ignore (Runner.run ~obs protocol config);
  match fmt with
  | `Trace_event -> Obs.to_trace_event_json obs
  | `Causality -> Obs.to_causality_json obs

let cluster_spans fmt () =
  let module Cluster = Commit_cluster in
  let cut =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int (t 20))
      ~heals_at:(Vtime.of_int (t 40))
      ~n:3 ()
  in
  let config =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = Vtime.of_int (t 50);
      drain = Vtime.of_int (t 30);
      load = 30;
      bucket = Vtime.of_int (t 20);
      timeline = cut;
      trace_enabled = false;
    }
  in
  let obs = Obs.create () in
  ignore (Cluster.Runtime.run ~obs config);
  match fmt with
  | `Trace_event -> Obs.to_trace_event_json obs
  | `Causality -> Obs.to_causality_json obs

let obs_scenarios =
  let cut3pc =
    config ~partition:(partition ~g2:[ 3 ] ~at:1500 ~n:3 ()) ~delay:full ()
  in
  let cut_term =
    config ~partition:(partition ~g2:[ 3 ] ~at:1500 ~n:3 ()) ~delay:uniform ()
  in
  [
    ( "spans-3pc-partition",
      spans_export `Trace_event (module Three_phase) cut3pc );
    ( "causality-3pc-partition",
      spans_export `Causality (module Three_phase) cut3pc );
    ( "spans-termination-partition",
      spans_export `Trace_event (module Termination.Transient) cut_term );
    ( "causality-termination-partition",
      spans_export `Causality (module Termination.Transient) cut_term );
    ("spans-cluster-cut", cluster_spans `Trace_event);
    ("causality-cluster-cut", cluster_spans `Causality);
  ]

let () =
  let cases =
    List.map
      (fun (name, render) ->
        Alcotest.test_case name `Quick (check_golden name render))
      (runner_scenarios @ db_scenarios @ obs_scenarios)
  in
  Alcotest.run "trace-golden" [ ("golden", cases) ]
