(* Tests for the long-running cluster runtime (lib/cluster). *)

module Cluster = Commit_cluster
module Scheduler = Cluster.Scheduler
module Auditor = Cluster.Auditor
module Metrics = Cluster.Metrics
module Runtime = Cluster.Runtime

let check = Alcotest.check

let site = Site_id.of_int

let t mult = Vtime.of_int (mult * 1000)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_scheduler_window () =
  let s = Scheduler.create ~queue_limit:2 ~window:2 ~n:3 () in
  let timeline = Partition.none and now = Vtime.zero in
  let admit label =
    match Scheduler.submit s ~timeline ~now label with
    | `Admit _ -> `Admit
    | `Enqueued -> `Enqueued
    | `Rejected -> `Rejected
  in
  check Alcotest.bool "first admitted" true (admit "a" = `Admit);
  check Alcotest.bool "second admitted" true (admit "b" = `Admit);
  check Alcotest.bool "third queued" true (admit "c" = `Enqueued);
  check Alcotest.bool "fourth queued" true (admit "d" = `Enqueued);
  check Alcotest.bool "fifth rejected" true (admit "e" = `Rejected);
  check Alcotest.int "in flight" 2 (Scheduler.in_flight s);
  check Alcotest.int "queued" 2 (Scheduler.queued s);
  check Alcotest.int "rejected" 1 (Scheduler.rejected s);
  (* nothing pops while the window is full *)
  check Alcotest.bool "no pop" true (Scheduler.next s ~timeline ~now () = None);
  Scheduler.complete s;
  (match Scheduler.next s ~timeline ~now () with
  | Some ("c", _) -> ()
  | Some _ -> Alcotest.fail "FIFO order violated"
  | None -> Alcotest.fail "slot free but nothing popped");
  check Alcotest.int "admitted total" 3 (Scheduler.admitted s)

let test_scheduler_policies () =
  let timeline =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3; 4 ])
      ~starts_at:(t 1) ~heals_at:(t 2) ~n:4 ()
  in
  let masters policy ~now rounds =
    let s = Scheduler.create ~policy ~window:1000 ~n:4 () in
    List.init rounds (fun _ ->
        match Scheduler.submit s ~timeline ~now () with
        | `Admit m -> m
        | `Enqueued | `Rejected -> Alcotest.fail "expected admission")
  in
  check Alcotest.bool "fixed always master" true
    (List.for_all Site_id.is_master
       (masters Scheduler.Fixed_master ~now:Vtime.zero 8));
  let rr = masters Scheduler.Round_robin ~now:Vtime.zero 8 in
  check Alcotest.int "round-robin covers all sites" 4
    (List.length (List.sort_uniq compare rr));
  (* partition-aware while the cut is up: only G1 coordinators *)
  let aware = masters Scheduler.Partition_aware ~now:(t 1) 8 in
  check Alcotest.bool "aware avoids G2" true
    (List.for_all
       (fun m -> Site_id.Set.mem m (Partition.group1 timeline ~n:4))
       aware);
  check Alcotest.int "aware still rotates within G1" 2
    (List.length (List.sort_uniq compare aware));
  (* after the heal it rotates over everybody again *)
  let healed = masters Scheduler.Partition_aware ~now:(t 3) 8 in
  check Alcotest.int "healed rotation covers all" 4
    (List.length (List.sort_uniq compare healed))

let test_scheduler_pause () =
  let timeline =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(t 1) ~heals_at:(t 2) ~n:3 ()
  in
  let s = Scheduler.create ~pause_during_cut:true ~window:4 ~n:3 () in
  (match Scheduler.submit s ~timeline ~now:(t 1) () with
  | `Enqueued -> ()
  | `Admit _ | `Rejected -> Alcotest.fail "paused scheduler must enqueue");
  check Alcotest.bool "still paused" true
    (Scheduler.next s ~timeline ~now:(t 1) () = None);
  check Alcotest.bool "drains after heal" true
    (Scheduler.next s ~timeline ~now:(t 2) () <> None)

(* ------------------------------------------------------------------ *)
(* Auditor                                                             *)
(* ------------------------------------------------------------------ *)

let contributions = [ (site 1, 975); (site 2, 1025) ]

let test_auditor_commit_abort () =
  let a = Auditor.create ~n:3 () in
  Auditor.begin_txn a ~tid:1 ~contributions;
  Auditor.begin_txn a ~tid:2 ~contributions;
  check Alcotest.int "open" 2 (Auditor.open_txns a);
  List.iter (fun s -> Auditor.record a ~tid:1 ~site:(site s) Types.Commit) [ 1; 2; 3 ];
  List.iter (fun s -> Auditor.record a ~tid:2 ~site:(site s) Types.Abort) [ 1; 2; 3 ];
  check Alcotest.int "settled" 2 (Auditor.settled a);
  check Alcotest.int "open after settle" 0 (Auditor.open_txns a);
  check Alcotest.int "applied" 2000 (Auditor.applied_total a);
  check Alcotest.int "atomic expected" 2000 (Auditor.atomic_expected_total a);
  check Alcotest.bool "clean" true (Auditor.check a = Ok ())

let test_auditor_torn () =
  let a = Auditor.create ~n:3 () in
  Auditor.begin_txn a ~tid:7 ~contributions;
  Auditor.record a ~tid:7 ~site:(site 1) Types.Commit;
  Auditor.record a ~tid:7 ~site:(site 2) Types.Abort;
  Auditor.record a ~tid:7 ~site:(site 3) Types.Abort;
  check Alcotest.int "one violation" 1 (Auditor.agreement_violations a);
  check (Alcotest.list Alcotest.int) "torn tid recorded" [ 7 ]
    (Auditor.torn_tids a);
  check Alcotest.int "partial deposit counted as breach" 1
    (Auditor.conservation_breaches a);
  check Alcotest.bool "check fails" true (Auditor.check a <> Ok ());
  (* duplicate identical decision is idempotent; a flip is an error *)
  Auditor.record a ~tid:7 ~site:(site 1) Types.Commit;
  let raised =
    try
      Auditor.record a ~tid:7 ~site:(site 1) Types.Abort;
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "decision flip raises" true raised

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create ~bucket:(t 10) ~t_unit:(t 1) () in
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  check Alcotest.int "counter" 5 (Metrics.counter m "x");
  check Alcotest.int "missing counter" 0 (Metrics.counter m "nope");
  Metrics.mark m ~at:(t 5) "commits";
  Metrics.mark m ~at:(t 5) "commits";
  Metrics.mark m ~at:(t 15) "commits";
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "series buckets"
    [ (0, 2); (1, 1) ]
    (Metrics.series m "commits");
  Metrics.observe m "lat" 100;
  Metrics.observe m "lat" 300;
  (match Metrics.histogram m "lat" with
  | Some s ->
      check Alcotest.int "histogram count" 2 s.Stats.count;
      check Alcotest.int "histogram min" 100 s.Stats.min
  | None -> Alcotest.fail "histogram missing");
  (* deterministic JSON: keys sorted, shape stable *)
  let json = Format.asprintf "%a" Export.pp (Metrics.to_json m) in
  let json' = Format.asprintf "%a" Export.pp (Metrics.to_json m) in
  check Alcotest.string "json stable" json json'

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let timeline =
  Partition.make
    ~group2:(Site_id.set_of_ints [ 3 ])
    ~starts_at:(t 40) ~heals_at:(t 120) ~n:3 ()

let config protocol =
  { (Runtime.default_config ~protocol ()) with Runtime.timeline }

let test_runtime_failure_free () =
  let report =
    Runtime.run
      { (Runtime.default_config ()) with Runtime.timeline = Partition.none }
  in
  check Alcotest.int "everything offered admitted" report.Runtime.offered
    report.Runtime.admitted;
  check Alcotest.int "everything commits" report.Runtime.admitted
    report.Runtime.committed;
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked;
  check Alcotest.int "no termination work" 0
    report.Runtime.termination_invocations;
  check Alcotest.bool "atomic" true (Runtime.atomic report);
  check Alcotest.int "money matches the ledger"
    (Auditor.atomic_expected_total report.Runtime.auditor)
    report.Runtime.disk_total

let test_runtime_termination_under_cut () =
  let report = Runtime.run (config (module Termination.Transient : Site.S)) in
  check Alcotest.bool "some transactions committed" true
    (report.Runtime.committed > 0);
  check Alcotest.bool "the cut forced termination work" true
    (report.Runtime.termination_invocations > 0);
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked;
  check Alcotest.int "nothing torn" 0 report.Runtime.torn;
  check Alcotest.int "everything settled" report.Runtime.admitted
    report.Runtime.settled;
  check Alcotest.bool "atomic through the partition" true
    (Runtime.atomic report)

let test_runtime_baselines_block () =
  List.iter
    (fun protocol ->
      let report = Runtime.run (config protocol) in
      check Alcotest.bool "cut wedges the window" true
        (report.Runtime.blocked > 0);
      check Alcotest.bool "queue backs up" true (report.Runtime.starved > 0);
      check Alcotest.bool "never invokes termination" true
        (report.Runtime.termination_invocations = 0))
    [ (module Two_phase : Site.S); (module Three_phase) ]

let test_runtime_deterministic_json () =
  let dump () =
    Format.asprintf "%a" Export.pp
      (Runtime.to_json
         (Runtime.run (config (module Termination.Transient : Site.S))))
  in
  check Alcotest.string "byte-identical reruns" (dump ()) (dump ());
  let other =
    Format.asprintf "%a" Export.pp
      (Runtime.to_json
         (Runtime.run
            { (config (module Termination.Transient : Site.S)) with
              Runtime.seed = 2L;
            }))
  in
  check Alcotest.bool "a different seed changes the run" true (dump () <> other)

let test_runtime_pause_during_cut () =
  let report =
    Runtime.run
      {
        (config (module Termination.Transient : Site.S)) with
        Runtime.pause_during_cut = true;
        queue_limit = None;
      }
  in
  (* deferring admissions during the cut avoids most termination work
     and still settles everything after the heal *)
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked;
  check Alcotest.int "nothing rejected" 0 report.Runtime.rejected;
  check Alcotest.bool "atomic" true (Runtime.atomic report);
  check Alcotest.bool "queue drained after the heal" true
    (report.Runtime.starved = 0)

let () =
  Alcotest.run "commit_cluster"
    [
      ( "scheduler",
        [
          Alcotest.test_case "window and queue" `Quick test_scheduler_window;
          Alcotest.test_case "placement policies" `Quick
            test_scheduler_policies;
          Alcotest.test_case "pause during cut" `Quick test_scheduler_pause;
        ] );
      ( "auditor",
        [
          Alcotest.test_case "commit and abort settle" `Quick
            test_auditor_commit_abort;
          Alcotest.test_case "torn transaction" `Quick test_auditor_torn;
        ] );
      ( "metrics",
        [ Alcotest.test_case "counters, series, histograms" `Quick
            test_metrics_basics ] );
      ( "runtime",
        [
          Alcotest.test_case "failure-free steady state" `Quick
            test_runtime_failure_free;
          Alcotest.test_case "termination rides out the cut" `Quick
            test_runtime_termination_under_cut;
          Alcotest.test_case "2pc/3pc wedge the window" `Quick
            test_runtime_baselines_block;
          Alcotest.test_case "deterministic JSON" `Quick
            test_runtime_deterministic_json;
          Alcotest.test_case "pause-during-cut drains after heal" `Quick
            test_runtime_pause_during_cut;
        ] );
    ]
