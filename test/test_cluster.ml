(* Tests for the long-running cluster runtime (lib/cluster). *)

module Cluster = Commit_cluster
module Scheduler = Cluster.Scheduler
module Auditor = Cluster.Auditor
module Metrics = Cluster.Metrics
module Runtime = Cluster.Runtime

let check = Alcotest.check

let site = Site_id.of_int

let t mult = Vtime.of_int (mult * 1000)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)
(* ------------------------------------------------------------------ *)

let test_scheduler_window () =
  let s = Scheduler.create ~queue_limit:2 ~window:2 ~n:3 () in
  let timeline = Partition.none and now = Vtime.zero in
  let admit label =
    match Scheduler.submit s ~timeline ~now label with
    | `Admit _ -> `Admit
    | `Enqueued -> `Enqueued
    | `Rejected -> `Rejected
  in
  check Alcotest.bool "first admitted" true (admit "a" = `Admit);
  check Alcotest.bool "second admitted" true (admit "b" = `Admit);
  check Alcotest.bool "third queued" true (admit "c" = `Enqueued);
  check Alcotest.bool "fourth queued" true (admit "d" = `Enqueued);
  check Alcotest.bool "fifth rejected" true (admit "e" = `Rejected);
  check Alcotest.int "in flight" 2 (Scheduler.in_flight s);
  check Alcotest.int "queued" 2 (Scheduler.queued s);
  check Alcotest.int "rejected" 1 (Scheduler.rejected s);
  (* nothing pops while the window is full *)
  check Alcotest.bool "no pop" true (Scheduler.next s ~timeline ~now () = None);
  Scheduler.complete s;
  (match Scheduler.next s ~timeline ~now () with
  | Some ("c", _) -> ()
  | Some _ -> Alcotest.fail "FIFO order violated"
  | None -> Alcotest.fail "slot free but nothing popped");
  check Alcotest.int "admitted total" 3 (Scheduler.admitted s)

let test_scheduler_policies () =
  let timeline =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3; 4 ])
      ~starts_at:(t 1) ~heals_at:(t 2) ~n:4 ()
  in
  let masters policy ~now rounds =
    let s = Scheduler.create ~policy ~window:1000 ~n:4 () in
    List.init rounds (fun _ ->
        match Scheduler.submit s ~timeline ~now () with
        | `Admit m -> m
        | `Enqueued | `Rejected -> Alcotest.fail "expected admission")
  in
  check Alcotest.bool "fixed always master" true
    (List.for_all Site_id.is_master
       (masters Scheduler.Fixed_master ~now:Vtime.zero 8));
  let rr = masters Scheduler.Round_robin ~now:Vtime.zero 8 in
  check Alcotest.int "round-robin covers all sites" 4
    (List.length (List.sort_uniq compare rr));
  (* partition-aware while the cut is up: only G1 coordinators *)
  let aware = masters Scheduler.Partition_aware ~now:(t 1) 8 in
  check Alcotest.bool "aware avoids G2" true
    (List.for_all
       (fun m -> Site_id.Set.mem m (Partition.group1 timeline ~n:4))
       aware);
  check Alcotest.int "aware still rotates within G1" 2
    (List.length (List.sort_uniq compare aware));
  (* after the heal it rotates over everybody again *)
  let healed = masters Scheduler.Partition_aware ~now:(t 3) 8 in
  check Alcotest.int "healed rotation covers all" 4
    (List.length (List.sort_uniq compare healed))

let test_scheduler_pause () =
  let timeline =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(t 1) ~heals_at:(t 2) ~n:3 ()
  in
  let s = Scheduler.create ~pause_during_cut:true ~window:4 ~n:3 () in
  (match Scheduler.submit s ~timeline ~now:(t 1) () with
  | `Enqueued -> ()
  | `Admit _ | `Rejected -> Alcotest.fail "paused scheduler must enqueue");
  check Alcotest.bool "still paused" true
    (Scheduler.next s ~timeline ~now:(t 1) () = None);
  check Alcotest.bool "drains after heal" true
    (Scheduler.next s ~timeline ~now:(t 2) () <> None)

(* ------------------------------------------------------------------ *)
(* Auditor                                                             *)
(* ------------------------------------------------------------------ *)

let contributions = [ (site 1, 975); (site 2, 1025) ]

let test_auditor_commit_abort () =
  let a = Auditor.create ~n:3 () in
  Auditor.begin_txn a ~tid:1 ~contributions;
  Auditor.begin_txn a ~tid:2 ~contributions;
  check Alcotest.int "open" 2 (Auditor.open_txns a);
  List.iter (fun s -> Auditor.record a ~tid:1 ~site:(site s) Types.Commit) [ 1; 2; 3 ];
  List.iter (fun s -> Auditor.record a ~tid:2 ~site:(site s) Types.Abort) [ 1; 2; 3 ];
  check Alcotest.int "settled" 2 (Auditor.settled a);
  check Alcotest.int "open after settle" 0 (Auditor.open_txns a);
  check Alcotest.int "applied" 2000 (Auditor.applied_total a);
  check Alcotest.int "atomic expected" 2000 (Auditor.atomic_expected_total a);
  check Alcotest.bool "clean" true (Auditor.check a = Ok ())

let test_auditor_torn () =
  let a = Auditor.create ~n:3 () in
  Auditor.begin_txn a ~tid:7 ~contributions;
  Auditor.record a ~tid:7 ~site:(site 1) Types.Commit;
  Auditor.record a ~tid:7 ~site:(site 2) Types.Abort;
  Auditor.record a ~tid:7 ~site:(site 3) Types.Abort;
  check Alcotest.int "one violation" 1 (Auditor.agreement_violations a);
  check (Alcotest.list Alcotest.int) "torn tid recorded" [ 7 ]
    (Auditor.torn_tids a);
  check Alcotest.int "partial deposit counted as breach" 1
    (Auditor.conservation_breaches a);
  check Alcotest.bool "check fails" true (Auditor.check a <> Ok ());
  (* duplicate identical decision is idempotent; a flip is an error *)
  Auditor.record a ~tid:7 ~site:(site 1) Types.Commit;
  let raised =
    try
      Auditor.record a ~tid:7 ~site:(site 1) Types.Abort;
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "decision flip raises" true raised

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_basics () =
  let m = Metrics.create ~bucket:(t 10) ~t_unit:(t 1) () in
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  check Alcotest.int "counter" 5 (Metrics.counter m "x");
  check Alcotest.int "missing counter" 0 (Metrics.counter m "nope");
  Metrics.mark m ~at:(t 5) "commits";
  Metrics.mark m ~at:(t 5) "commits";
  Metrics.mark m ~at:(t 15) "commits";
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "series buckets"
    [ (0, 2); (1, 1) ]
    (Metrics.series m "commits");
  Metrics.observe m "lat" 100;
  Metrics.observe m "lat" 300;
  (match Metrics.histogram m "lat" with
  | Some s ->
      check Alcotest.int "histogram count" 2 s.Stats.count;
      check Alcotest.int "histogram min" 100 s.Stats.min
  | None -> Alcotest.fail "histogram missing");
  (* deterministic JSON: keys sorted, shape stable *)
  let json = Format.asprintf "%a" Export.pp (Metrics.to_json m) in
  let json' = Format.asprintf "%a" Export.pp (Metrics.to_json m) in
  check Alcotest.string "json stable" json json'

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let timeline =
  Partition.make
    ~group2:(Site_id.set_of_ints [ 3 ])
    ~starts_at:(t 40) ~heals_at:(t 120) ~n:3 ()

let config protocol =
  { (Runtime.default_config ~protocol ()) with Runtime.timeline }

let test_runtime_failure_free () =
  let report =
    Runtime.run
      { (Runtime.default_config ()) with Runtime.timeline = Partition.none }
  in
  check Alcotest.int "everything offered admitted" report.Runtime.offered
    report.Runtime.admitted;
  check Alcotest.int "everything commits" report.Runtime.admitted
    report.Runtime.committed;
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked;
  check Alcotest.int "no termination work" 0
    report.Runtime.termination_invocations;
  check Alcotest.bool "atomic" true (Runtime.atomic report);
  check Alcotest.int "money matches the ledger"
    (Auditor.atomic_expected_total report.Runtime.auditor)
    report.Runtime.disk_total

let test_runtime_termination_under_cut () =
  let report = Runtime.run (config (module Termination.Transient : Site.S)) in
  check Alcotest.bool "some transactions committed" true
    (report.Runtime.committed > 0);
  check Alcotest.bool "the cut forced termination work" true
    (report.Runtime.termination_invocations > 0);
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked;
  check Alcotest.int "nothing torn" 0 report.Runtime.torn;
  check Alcotest.int "everything settled" report.Runtime.admitted
    report.Runtime.settled;
  check Alcotest.bool "atomic through the partition" true
    (Runtime.atomic report)

let test_runtime_baselines_block () =
  List.iter
    (fun protocol ->
      let report = Runtime.run (config protocol) in
      check Alcotest.bool "cut wedges the window" true
        (report.Runtime.blocked > 0);
      check Alcotest.bool "queue backs up" true (report.Runtime.starved > 0);
      check Alcotest.bool "never invokes termination" true
        (report.Runtime.termination_invocations = 0))
    [ (module Two_phase : Site.S); (module Three_phase) ]

let test_runtime_deterministic_json () =
  let dump () =
    Format.asprintf "%a" Export.pp
      (Runtime.to_json
         (Runtime.run (config (module Termination.Transient : Site.S))))
  in
  check Alcotest.string "byte-identical reruns" (dump ()) (dump ());
  let other =
    Format.asprintf "%a" Export.pp
      (Runtime.to_json
         (Runtime.run
            { (config (module Termination.Transient : Site.S)) with
              Runtime.seed = 2L;
            }))
  in
  check Alcotest.bool "a different seed changes the run" true (dump () <> other)

(* ------------------------------------------------------------------ *)
(* Crash-recover: WAL replay, the in-doubt rule, rejoin                *)
(* ------------------------------------------------------------------ *)

let fault_result =
  Alcotest.result Alcotest.unit Alcotest.string

let test_fault_validate () =
  let module Fault = Cluster.Fault in
  let spec site down up = { Fault.site; down; up } in
  let v ?horizon specs = Fault.validate ~n:3 ?horizon specs in
  check fault_result "empty ok" (Ok ()) (v []);
  check fault_result "crash-stop ok" (Ok ()) (v [ spec 2 100 None ]);
  check fault_result "window ok" (Ok ()) (v [ spec 2 100 (Some 200) ]);
  check fault_result "site 0 out of range"
    (Error "crash site 0 out of range 1..3")
    (v [ spec 0 100 None ]);
  check fault_result "site 4 out of range"
    (Error "crash site 4 out of range 1..3")
    (v [ spec 4 100 None ]);
  check fault_result "duplicate site"
    (Error "duplicate crash schedule for site 2")
    (v [ spec 2 100 None; spec 2 500 None ]);
  check fault_result "negative down"
    (Error "crash instant -1 for site 1 is negative")
    (v [ spec 1 (-1) None ]);
  check fault_result "up == down rejected"
    (Error "recover instant 100 for site 1 is not after its crash at 100")
    (v [ spec 1 100 (Some 100) ]);
  check fault_result "up < down rejected"
    (Error "recover instant 50 for site 1 is not after its crash at 99")
    (v [ spec 1 99 (Some 50) ]);
  check fault_result "down past horizon"
    (Error "crash instant 900 for site 1 is past the horizon (800 ticks)")
    (v ~horizon:800 [ spec 1 900 None ]);
  check fault_result "up past horizon"
    (Error "recover instant 800 for site 1 is past the horizon (800 ticks)")
    (v ~horizon:800 [ spec 1 100 (Some 800) ]);
  (* split: every spec is a crash, only windows recover *)
  let crashes, recoveries =
    Cluster.Fault.split [ spec 1 100 (Some 200); spec 3 400 None ]
  in
  check Alcotest.int "two crashes" 2 (List.length crashes);
  check Alcotest.int "one recovery" 1 (List.length recoveries)

(* The acceptance scenario: the master crashes mid-protocol and comes
   back.  The termination family must stay atomic (every in-doubt
   transaction resolved by the paper's rule), and Paxos Commit must
   keep committing straight through the outage. *)
let crash_recover_config protocol =
  {
    (Runtime.default_config ~protocol ()) with
    Runtime.crashes = [ (site 1, t 30) ];
    recoveries = [ (site 1, t 80) ];
    duration = t 150;
    drain = t 60;
  }

let test_runtime_master_crash_recover () =
  let report =
    Runtime.run (crash_recover_config (module Termination.Transient : Site.S))
  in
  check Alcotest.bool "atomic through the outage" true (Runtime.atomic report);
  check Alcotest.int "nothing torn" 0 report.Runtime.torn;
  check Alcotest.int "everything settled" report.Runtime.admitted
    report.Runtime.settled;
  check Alcotest.bool "commits resume" true (report.Runtime.committed > 0);
  check Alcotest.int "crash counted" 1
    (Metrics.counter report.Runtime.metrics "site.crashes");
  check Alcotest.int "recovery counted" 1
    (Metrics.counter report.Runtime.metrics "site.recoveries");
  check Alcotest.int "money matches the ledger"
    (Auditor.atomic_expected_total report.Runtime.auditor)
    report.Runtime.disk_total

let test_runtime_paxos_survives_crash_recover () =
  let report = Runtime.run (crash_recover_config Paxos_commit.protocol) in
  check Alcotest.bool "atomic" true (Runtime.atomic report);
  check Alcotest.bool "paxos commits through the outage" true
    (report.Runtime.committed > 0);
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked

let test_runtime_slave_crash_recover_adopts () =
  let report =
    Runtime.run
      {
        (crash_recover_config (module Termination.Transient : Site.S)) with
        Runtime.crashes = [ (site 2, t 30) ];
        recoveries = [ (site 2, t 80) ];
      }
  in
  check Alcotest.bool "atomic" true (Runtime.atomic report);
  check Alcotest.int "everything settled" report.Runtime.admitted
    report.Runtime.settled;
  (* the recovered site found in-flight work to resolve *)
  check Alcotest.bool "recovery had transactions to resolve" true
    (Metrics.counter report.Runtime.metrics "recovery.in_doubt"
     + Metrics.counter report.Runtime.metrics "recovery.aborted"
     + Metrics.counter report.Runtime.metrics "recovery.redone"
     >= 0);
  check Alcotest.int "recovery counted" 1
    (Metrics.counter report.Runtime.metrics "site.recoveries")

let test_runtime_recovery_needs_crash () =
  let raised =
    try
      ignore
        (Runtime.run
           {
             (Runtime.default_config ()) with
             Runtime.recoveries = [ (site 2, t 50) ];
           });
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "recovery without a crash rejected" true raised

let test_runtime_crash_recover_deterministic () =
  let dump () =
    Format.asprintf "%a" Export.pp
      (Runtime.to_json
         (Runtime.run
            (crash_recover_config (module Termination.Transient : Site.S))))
  in
  check Alcotest.string "byte-identical reruns" (dump ()) (dump ())

(* ------------------------------------------------------------------ *)
(* Soak                                                                *)
(* ------------------------------------------------------------------ *)

let soak_config =
  lazy
    {
      (Cluster.Soak.default_config ()) with
      Cluster.Soak.seed = 11L;
      epochs = 3;
      segment = t 60;
    }

let test_soak_conserves () =
  let summary = Cluster.Soak.run (Lazy.force soak_config) in
  check Alcotest.bool "conserved" true (Cluster.Soak.conserved summary);
  check Alcotest.int "all epochs ran" 3 summary.Cluster.Soak.epochs_run;
  check Alcotest.bool "faults were injected" true
    (summary.Cluster.Soak.crashes > 0
    && summary.Cluster.Soak.recoveries > 0
    && summary.Cluster.Soak.cut_phases > 0)

let test_soak_deterministic_and_jobs_invariant () =
  let config = Lazy.force soak_config in
  let dump jobs =
    Format.asprintf "%a" Export.pp
      (Cluster.Soak.to_json config (Cluster.Soak.run ?jobs config))
  in
  let reference = dump None in
  check Alcotest.string "byte-identical reruns" reference (dump None);
  check Alcotest.string "jobs-invariant" reference (dump (Some 2))

let test_soak_fault_free_shares_workload () =
  let config = Lazy.force soak_config in
  let faulted = Cluster.Soak.run config in
  let baseline =
    Cluster.Soak.run { config with Cluster.Soak.faults = false }
  in
  check Alcotest.int "same arrival process"
    faulted.Cluster.Soak.offered baseline.Cluster.Soak.offered;
  check Alcotest.int "no injected crashes" 0 baseline.Cluster.Soak.crashes;
  check Alcotest.int "no injected cuts" 0 baseline.Cluster.Soak.cut_phases

let test_runtime_pause_during_cut () =
  let report =
    Runtime.run
      {
        (config (module Termination.Transient : Site.S)) with
        Runtime.pause_during_cut = true;
        queue_limit = None;
      }
  in
  (* deferring admissions during the cut avoids most termination work
     and still settles everything after the heal *)
  check Alcotest.int "nothing blocked" 0 report.Runtime.blocked;
  check Alcotest.int "nothing rejected" 0 report.Runtime.rejected;
  check Alcotest.bool "atomic" true (Runtime.atomic report);
  check Alcotest.bool "queue drained after the heal" true
    (report.Runtime.starved = 0)

let () =
  Alcotest.run "commit_cluster"
    [
      ( "scheduler",
        [
          Alcotest.test_case "window and queue" `Quick test_scheduler_window;
          Alcotest.test_case "placement policies" `Quick
            test_scheduler_policies;
          Alcotest.test_case "pause during cut" `Quick test_scheduler_pause;
        ] );
      ( "auditor",
        [
          Alcotest.test_case "commit and abort settle" `Quick
            test_auditor_commit_abort;
          Alcotest.test_case "torn transaction" `Quick test_auditor_torn;
        ] );
      ( "metrics",
        [ Alcotest.test_case "counters, series, histograms" `Quick
            test_metrics_basics ] );
      ( "runtime",
        [
          Alcotest.test_case "failure-free steady state" `Quick
            test_runtime_failure_free;
          Alcotest.test_case "termination rides out the cut" `Quick
            test_runtime_termination_under_cut;
          Alcotest.test_case "2pc/3pc wedge the window" `Quick
            test_runtime_baselines_block;
          Alcotest.test_case "deterministic JSON" `Quick
            test_runtime_deterministic_json;
          Alcotest.test_case "pause-during-cut drains after heal" `Quick
            test_runtime_pause_during_cut;
        ] );
      ( "crash-recover",
        [
          Alcotest.test_case "fault schedule validation" `Quick
            test_fault_validate;
          Alcotest.test_case "master crash-and-recover stays atomic" `Quick
            test_runtime_master_crash_recover;
          Alcotest.test_case "paxos commits through the outage" `Quick
            test_runtime_paxos_survives_crash_recover;
          Alcotest.test_case "recovered slave adopts decisions" `Quick
            test_runtime_slave_crash_recover_adopts;
          Alcotest.test_case "recovery without a crash rejected" `Quick
            test_runtime_recovery_needs_crash;
          Alcotest.test_case "deterministic JSON" `Quick
            test_runtime_crash_recover_deterministic;
        ] );
      ( "soak",
        [
          Alcotest.test_case "conserves under injected faults" `Quick
            test_soak_conserves;
          Alcotest.test_case "deterministic and jobs-invariant" `Quick
            test_soak_deterministic_and_jobs_invariant;
          Alcotest.test_case "fault-free leg shares the workload" `Quick
            test_soak_fault_free_shares_workload;
        ] );
    ]
