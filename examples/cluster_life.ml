(* A day in the life of the cluster: a steady stream of transfers, a
   partition that opens and heals, and the throughput timeline under
   three commit protocols.

     dune exec examples/cluster_life.exe

   60 cross-site transfers arrive every 2T; the network loses site3
   between 40T and 80T.  Watch what each protocol does to goodput while
   the partition is up, and verify nobody loses money. *)

module Tm = Commit_db.Tm
module Workload = Commit_db.Workload


let t mult = mult * 1000

let n_txns = 60

let workload =
  Workload.bank_transfers ~n:4 ~pairs:n_txns ~balance:1000 ~amount:25
    ~spacing:(Vtime.of_int (t 2)) ~seed:7L

let partition =
  Partition.make
    ~group2:(Site_id.set_of_ints [ 3 ])
    ~starts_at:(Vtime.of_int (t 40))
    ~heals_at:(Vtime.of_int (t 80))
    ~n:4 ()

let expected = Workload.expected_total workload ~prefix:"acct:"

let run protocol =
  let config =
    {
      (Tm.default_config ~protocol ~n:4 ()) with
      Tm.initial = workload.Workload.initial;
      partition;
      horizon = Vtime.of_int (t 200);
    }
  in
  Tm.run config workload.Workload.txns

let bucket_of at = Vtime.to_int at / t 10

let committed_per_bucket report =
  let buckets = Array.make 21 0 in
  List.iter
    (fun (r : Tm.txn_report) ->
      match (r.status, r.all_decided_at) with
      | Tm.Txn_committed, Some at ->
          let b = bucket_of at in
          if b < Array.length buckets then buckets.(b) <- buckets.(b) + 1
      | _ -> ())
    report.Tm.txns;
  buckets

let () =
  let protocols =
    [
      ("2pc", (module Two_phase : Site.S));
      ("quorum", (module Quorum));
      ("termination-transient", (module Termination.Transient));
    ]
  in
  let reports = List.map (fun (name, p) -> (name, run p)) protocols in
  Format.printf
    "60 transfers, one every 2T; site3 cut off from 40T to 80T.@.@.";
  Format.printf "commits completed per 10T interval:@.";
  Format.printf "  %-10s" "interval";
  List.iter (fun (name, _) -> Format.printf "%-24s" name) reports;
  Format.printf "@.";
  for b = 0 to 13 do
    Format.printf "  %3dT-%3dT " (b * 10) ((b + 1) * 10);
    List.iter
      (fun (_, report) ->
        let buckets = committed_per_bucket report in
        let marker =
          if b * 10 >= 40 && b * 10 < 80 then " <- partition up" else ""
        in
        ignore marker;
        Format.printf "%-24d" buckets.(b))
      reports;
    if b * 10 >= 40 && b * 10 < 80 then Format.printf " | partition up";
    Format.printf "@."
  done;
  Format.printf "@.totals:@.";
  List.iter
    (fun (name, report) ->
      Format.printf
        "  %-22s committed=%-3d aborted=%-3d blocked=%-3d starved=%-3d \
         money %d/%d@."
        name
        (Tm.count_status report Tm.Txn_committed)
        (Tm.count_status report Tm.Txn_aborted)
        (Tm.count_status report Tm.Txn_blocked)
        (Tm.count_status report Tm.Txn_waiting_locks)
        (Tm.balance_total report ~prefix:"acct:")
        expected)
    reports;
  Format.printf
    "@.every transaction spans all four sites, so nothing can commit while@.";
  Format.printf
    "site3 is cut off.  The difference is what happens to the in-doubt@.";
  Format.printf
    "transfers: the termination protocol (and quorum, which has a majority@.";
  Format.printf
    "here) abort them within a bounded window, freeing their locks for@.";
  Format.printf
    "retries -- 2pc leaves them blocked forever, even after the heal.@."
