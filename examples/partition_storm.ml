(* Partition storm: every protocol against every cut, instant, delay
   model and seed — the paper's claims as one table.

     dune exec examples/partition_storm.exe

   Rows are protocols, columns aggregate a full scenario grid (static
   partitions, and a second grid with transient ones).  Expect:

   - 2pc / 3pc / quorum: zero violations but blocking;
   - ext2pc, 3pc+rules (both resolutions): atomicity violations;
   - termination: zero violations, zero blocking on static partitions;
   - termination-transient: zero/zero even when partitions heal. *)

let t_unit = Vtime.of_int 1000

let protocols : Site.packed list =
  [
    (module Two_phase);
    (module Ext_two_phase);
    (module Three_phase);
    (module Three_phase_rules.Paper);
    (module Three_phase_rules.Strict);
    (module Three_phase_skeen);
    (module Quorum);
    (module Termination.Static);
    (module Termination.Transient);
    (module Theorem10.Four_phase_termination);
  ]

let grid ~n ~transient =
  let base = Runner.default_config ~n ~t_unit () in
  let g = Scenario.default_grid ~n ~t_unit in
  let g =
    if transient then
      {
        g with
        Scenario.heals_after =
          [
            None;
            Some (Vtime.of_int 1000);
            Some (Vtime.of_int 3000);
            Some (Vtime.of_int 6000);
          ];
      }
    else g
  in
  Scenario.configs ~base g

let storm ~n ~transient =
  Format.printf "--- n = %d, %s partitions (%d scenarios each) ---@." n
    (if transient then "static + transient" else "static")
    (List.length (grid ~n ~transient));
  List.iter
    (fun protocol ->
      let summary = Sweep.run protocol (grid ~n ~transient) in
      Format.printf "%a@." Sweep.pp_summary
        { summary with Sweep.violation_examples = []; blocked_examples = [] })
    protocols;
  Format.printf "@."

let () =
  storm ~n:3 ~transient:false;
  storm ~n:4 ~transient:false;
  storm ~n:3 ~transient:true;
  (* One named counterexample from each broken protocol, replayable. *)
  Format.printf "--- first counterexamples (replayable grid points) ---@.";
  List.iter
    (fun protocol ->
      let summary = Sweep.run ~keep:1 protocol (grid ~n:3 ~transient:false) in
      match summary.Sweep.violation_examples with
      | (config, v) :: _ ->
          Format.printf "%-18s %s@.                   -> %a@."
            summary.Sweep.protocol
            (Scenario.config_id config)
            Verdict.pp v
      | [] -> ())
    protocols
