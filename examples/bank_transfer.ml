(* Bank transfers across a partition: the database-level cost of a
   commit protocol, measured.

     dune exec examples/bank_transfer.exe

   A three-site bank.  Eight transfers, each moving money between
   accounts on two different sites, with a partition cutting site3 off
   mid-stream.  We run the same workload under two-phase commit (which
   blocks and strands locks), extended 2PC (which can tear a transfer
   apart and lose money), and the paper's termination protocol (which
   terminates everything consistently). *)

module Tm = Commit_db.Tm
module Workload = Commit_db.Workload

let t_unit = Vtime.of_int 1000

let workload = Workload.bank_transfers ~n:3 ~pairs:8 ~balance:1000 ~amount:70
    ~spacing:(Vtime.of_int 6000) ~seed:2024L

let partition =
  (* Arrives in the middle of the third transfer's commit exchange. *)
  Partition.make
    ~group2:(Site_id.set_of_ints [ 3 ])
    ~starts_at:(Vtime.of_int 20200) ~n:3 ()

let expected = Workload.expected_total workload ~prefix:"acct:"

let run protocol =
  let config =
    {
      (Tm.default_config ~protocol ()) with
      Tm.initial = workload.Workload.initial;
      partition;
      delay = Delay.full ~t_max:t_unit;
    }
  in
  Tm.run config workload.Workload.txns

let describe name report =
  let count s = Tm.count_status report s in
  let total = Tm.balance_total report ~prefix:"acct:" in
  Format.printf "%-22s committed=%d aborted=%d blocked=%d starved=%d@." name
    (count Tm.Txn_committed) (count Tm.Txn_aborted) (count Tm.Txn_blocked)
    (count Tm.Txn_waiting_locks);
  Format.printf "%-22s money: %d expected, %d on disk%s@.@." "" expected total
    (if total = expected then " (conserved)" else "  <-- MONEY LOST OR CREATED");
  report

let () =
  Format.printf
    "Eight cross-site transfers; site3 cut off at 20.2T (during transfer 3).@.@.";
  let _ = describe "2pc" (run (module Two_phase)) in
  let _ = describe "ext2pc" (run (module Ext_two_phase)) in
  let report = describe "termination (paper)" (run (module Termination.Static)) in

  (* With the termination protocol every store is cleanly terminated:
     recovery finds nothing in doubt. *)
  Array.iteri
    (fun i store ->
      let r = Durable_site.recover store in
      Format.printf "site%d recovery: %d redone, %d in doubt, %d aborted@."
        (i + 1)
        (List.length r.Durable_site.redone)
        (List.length r.Durable_site.in_doubt)
        (List.length r.Durable_site.aborted))
    report.Tm.stores;
  Format.printf "@.Transfer latencies under the termination protocol:@.";
  List.iter
    (fun (t : Tm.txn_report) ->
      Format.printf "  t%-2d %-10s latency %s@." t.spec.tid
        (Format.asprintf "%a" Tm.pp_status t.status)
        (match t.latency with
        | Some l -> Format.asprintf "%a" (Vtime.pp_in_t ~unit_t:t_unit) l
        | None -> "-"))
    report.Tm.txns
