(* Protocol autopsy: the paper's counterexamples, replayed message by
   message.

     dune exec examples/protocol_autopsy.exe

   Four exhibits:
     A. Section 3, observation 1 — extended 2PC is inconsistent with
        three sites when a commit command bounces.
     B. Section 3, observation 2 — 3PC + timeout/UD rules is
        inconsistent when prepare3 bounces.
     C. Section 5.3, "a fly in the ointment" — why Fig. 8 adds the
        slave transition w -> c: a G2 slave that never saw a prepare
        must accept the commit relayed by a G2 peer.
     D. Section 6, case 3.2.2.2 — the only unbounded wait, and the 5T
        self-commit that fixes it. *)

let t_unit = Vtime.of_int 1000

let full = Delay.full ~t_max:t_unit

let partition ?heals_after ~g2 ~at ~n () =
  let starts_at = Vtime.of_int at in
  Partition.make
    ?heals_at:
      (Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heals_after)
    ~group2:(Site_id.set_of_ints g2) ~starts_at ~n ()

let replay ~label ~commentary protocol config =
  Format.printf "=============================================================@.";
  Format.printf "%s@." label;
  Format.printf "%s@.@." commentary;
  let result = Runner.run protocol config in
  (* The runs are deterministic, so re-running for the diagram replays
     the identical execution. *)
  print_string (Diagram.run ~width:20 protocol config);
  Format.printf "@.%a" Runner.pp_result result;
  Format.printf "verdict: %a@.@." Verdict.pp (Verdict.of_result result);
  result

let base ~n partition =
  let config = Runner.default_config ~n ~t_unit () in
  { config with Runner.partition; delay = full; trace_enabled = true }

let () =
  (* A: extended 2PC, n=3.  Master has sent commit2/commit3 (it is in
     p1 awaiting acks); the partition bounces commit3.  Rule(b) sends
     the master to abort on the returned message — but site2 already
     committed. *)
  let _ =
    replay
      ~label:"A. Extended 2PC, three sites (Section 3, observation 1)"
      ~commentary:
        "Partition at 2.1T separates site3 just as the commit commands \
         travel.\ncommit2 is delivered; commit3 bounces; the master aborts \
         on UD(commit3)."
      (module Ext_two_phase)
      (base ~n:3 (partition ~g2:[ 3 ] ~at:2100 ~n:3 ()))
  in

  (* B: 3PC + rules, n=3.  prepare3 bounces; site3 times out in w and
     aborts while the master and site2 commit. *)
  let _ =
    replay
      ~label:"B. 3PC + Rule(a)/(b) only (Section 3, observation 2)"
      ~commentary:
        "Partition at 2.1T renders prepare3 undeliverable.  site3 times \
         out in w3 and aborts;\nthe p-side commits.  Lemma 3: no assignment \
         of timeout/UD transitions can fix this."
      (module Three_phase_rules.Paper)
      (base ~n:3 (partition ~g2:[ 3 ] ~at:2100 ~n:3 ()))
  in

  (* C: the Fig. 8 modification at work.  Asymmetric link delays let
     prepare3 through and bounce prepare4; site3 commits G2 on its
     bounced ack and its commit reaches site4 while site4 is still in
     w — only the added w -> c transition saves site4. *)
  let per_link =
    Delay.Per_link
      (fun src dst ->
        match (Site_id.to_int src, Site_id.to_int dst) with
        | 1, 4 | 4, 1 -> Vtime.of_int 900
        | 1, 3 | 3, 1 -> Vtime.of_int 10
        | _, _ -> Vtime.of_int 100)
  in
  let config_c = base ~n:4 (partition ~g2:[ 3; 4 ] ~at:1815 ~n:4 ()) in
  let config_c = { config_c with Runner.delay = per_link } in
  let result_c =
    replay
      ~label:"C. The termination protocol and Fig. 8 (the fly in the ointment)"
      ~commentary:
        "G2 = {site3, site4}.  site3 received its prepare; its ack \
         bounces, so it commits G2\n(FACT1 case 5) and relays the commit.  \
         site4 never saw a prepare: it accepts the\nrelayed commit in state \
         w via the Fig. 8 transition (FACT1 case 6)."
      (module Termination.Static)
      config_c
  in
  (match (Runner.site_result result_c (Site_id.of_int 4)).reasons with
  | [ "fact1-case6" ] ->
      Format.printf
        "site4 committed through FACT1 case 6 (the Fig. 8 w -> c transition).@.@."
  | other ->
      Format.printf "site4 reasons: %s@.@." (String.concat "," other));

  (* D: case 3.2.2.2. *)
  let p_d = partition ~g2:[ 2 ] ~at:1750 ~heals_after:1000 ~n:3 () in
  let config_d =
    {
      (Runner.default_config ~n:3 ~t_unit ()) with
      Runner.partition = p_d;
      trace_enabled = true;
    }
  in
  let _ =
    replay
      ~label:"D1. Case 3.2.2.2 under the static protocol (blocks)"
      ~commentary:
        "The master committed; commit2 bounced; the network heals before \
         site2's probe,\nso the probe reaches a decided master that ignores \
         it.  The static protocol\n(valid only without transient \
         partitions) strands site2."
      (module Termination.Static)
      config_d
  in
  let _ =
    replay
      ~label:"D2. Case 3.2.2.2 under the Section 6 variant (commits at 5T)"
      ~commentary:
        "Same scenario.  Only case 3.2.2.2 can keep a probing slave \
         waiting beyond 5T,\nand in that case the master has committed — \
         so after 5T site2 commits itself."
      (module Termination.Transient)
      config_d
  in
  ()
