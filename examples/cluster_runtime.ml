(* The cluster runtime: cluster_life's batch experiment, upgraded to
   the long-running lib/cluster machinery.

     dune exec examples/cluster_runtime.exe

   Where cluster_life replays a fixed list of 60 transfers through the
   batch transaction manager, this keeps the cluster alive for 300T of
   open-loop load (40 transfers per 100T), lets the scheduler place a
   coordinator per transaction (partition-aware: never in G2 while the
   cut is up), and drives two cuts from one Partition.sequence timeline
   -- the second one violating nobody, because the first's transactions
   all terminated.  The metrics pipeline renders the bucket-by-bucket
   life of the cluster, and the auditor confirms the money. *)

module Cluster = Commit_cluster

let t mult = Vtime.of_int (mult * 1000)

let timeline =
  Partition.sequence
    [
      Partition.make
        ~group2:(Site_id.set_of_ints [ 3 ])
        ~starts_at:(t 60) ~heals_at:(t 110) ~n:3 ();
      Partition.make
        ~group2:(Site_id.set_of_ints [ 2; 3 ])
        ~starts_at:(t 180) ~heals_at:(t 220) ~n:3 ();
    ]

let run protocol =
  Cluster.Runtime.run
    {
      (Cluster.Runtime.default_config ~protocol ()) with
      Cluster.Runtime.timeline;
      duration = t 300;
      drain = t 40;
      load = 40;
    }

let () =
  Format.printf
    "300T of open-loop load (40 transfers/100T, window 8) over three sites;@.";
  Format.printf
    "site3 cut off 60T-110T, then sites 2+3 cut off 180T-220T.@.@.";
  let report = run (module Termination.Transient : Site.S) in
  Format.printf "%a@." Cluster.Runtime.pp_timeline report;
  Format.printf "%a@." Cluster.Runtime.pp_report report;
  Format.printf "and the same timeline under the blocking baselines:@.";
  List.iter
    (fun (name, protocol) ->
      let r = run protocol in
      Format.printf
        "  %-22s committed=%-4d aborted=%-4d blocked=%-3d starved=%-3d \
         rejected=%-3d@."
        name r.Cluster.Runtime.committed r.Cluster.Runtime.aborted
        r.Cluster.Runtime.blocked r.Cluster.Runtime.starved
        r.Cluster.Runtime.rejected)
    [
      ("2pc", (module Two_phase : Site.S));
      ("3pc", (module Three_phase));
      ("quorum", (module Quorum));
    ];
  Format.printf
    "@.each cut strands whatever 2pc/3pc had in flight: the stuck transactions@.";
  Format.printf
    "hold their admission-window slots forever, so the queue backs up and the@.";
  Format.printf
    "cluster never recovers even after the heal.  The termination protocol@.";
  Format.printf
    "settles every stranded transaction within its bounded windows, so the@.";
  Format.printf
    "second cut starts from a clean slate -- the paper's assumption 2 holds@.";
  Format.printf "by construction here.@."
