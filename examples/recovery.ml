(* Crash, recover, resolve: the Section 2 single-site scheme meeting
   the commit protocol.

     dune exec examples/recovery.exe

   A transfer is mid-commit when site3 dies.  The survivors terminate
   (the transfer commits); site3 restarts later with a prepared,
   undecided transaction in its log.  Local recovery replays what it
   can, reports the in-doubt transaction, and the resolver settles it
   from the peers' stable state — after which the books balance. *)

module Tm = Commit_db.Tm
module Resolver = Commit_db.Resolver

let t_unit = Vtime.of_int 1000

let updates_site3 = [ { Wal.key = "acct:b"; value = "1070" } ]

let () =
  let transfer =
    Tm.txn ~tid:1 ~start_at:Vtime.zero
      [
        (Site_id.of_int 2, [ { Wal.key = "acct:a"; value = "930" } ]);
        (Site_id.of_int 3, updates_site3);
      ]
  in
  let config =
    {
      (Tm.default_config ~protocol:(module Termination.Static) ()) with
      Tm.initial =
        [
          (Site_id.of_int 2, [ ("acct:a", "1000") ]);
          (Site_id.of_int 3, [ ("acct:b", "1000") ]);
        ];
      delay = Delay.full ~t_max:t_unit;
      crashes = [ (Site_id.of_int 3, Vtime.of_int 3500) ];
      trace_enabled = false;
    }
  in
  let report = Tm.run config [ transfer ] in
  Format.printf "the run: site3 died at 3.5T, after acknowledging its prepare@.";
  Format.printf "%a@." Tm.pp_report report;
  let store3 = report.Tm.stores.(2) in
  Format.printf "site3's write-ahead log at restart:@.";
  List.iter
    (fun r -> Format.printf "  %a@." Wal.pp r)
    (Durable_site.wal_records store3);
  Format.printf "@.recovery at site3:@.";
  let resolved =
    Resolver.resolve_all ~stores:report.Tm.stores ~self:(Site_id.of_int 3)
      ~reachable:(fun _ -> true)
  in
  List.iter
    (fun (tid, outcome) ->
      Format.printf "  t%d is in doubt -> peers say: %a@." tid
        Resolver.pp_outcome outcome;
      Resolver.apply store3 ~tid ~updates:updates_site3 outcome)
    resolved;
  Format.printf "@.after resolution:@.";
  Format.printf "  acct:a at site2 = %s@."
    (Option.value
       (Durable_site.read report.Tm.stores.(1) "acct:a")
       ~default:"?");
  Format.printf "  acct:b at site3 = %s@."
    (Option.value (Durable_site.read store3 "acct:b") ~default:"?");
  Format.printf "  total = %d (started at 2000)@."
    (Tm.balance_total report ~prefix:"acct:");
  Format.printf
    "@.the paper's division of labour, in one run: the termination protocol@.";
  Format.printf
    "settles the operational sites during the failure; Section 2's log and@.";
  Format.printf
    "idempotent redo bring the dead site back; and a prepared participant@.";
  Format.printf "never decides alone — it asks the survivors.@."
