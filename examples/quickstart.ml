(* Quickstart: run the paper's termination protocol once without and
   once with a network partition, and watch it terminate everybody.

     dune exec examples/quickstart.exe

   Three sites, T = 1000 ticks.  The partition cuts site3 off just as
   the master is collecting acknowledgements — the scenario in which
   plain 3PC would block and Rule(a)/(b) augmentation would be
   inconsistent. *)

let t_unit = Vtime.of_int 1000

let print_outcome label result =
  Format.printf "== %s ==@." label;
  Format.printf "%a" Runner.pp_result result;
  Format.printf "verdict: %a@.@." Verdict.pp (Verdict.of_result result)

let () =
  (* 1. Failure-free: the ordinary three-phase flow. *)
  let config = Runner.default_config ~n:3 ~t_unit () in
  let config = { config with Runner.trace_enabled = false } in
  print_outcome "failure-free" (Runner.run (module Termination.Static) config);

  (* 2. A simple partition: G2 = {site3}, starting at 2.1T — the
     prepares are in flight and prepare3 bounces off boundary B.  The
     master runs the Section 5 collection window; everyone aborts,
     consistently, without blocking. *)
  let partition =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int 2100) ~n:3 ()
  in
  let config =
    {
      config with
      Runner.partition;
      delay = Delay.full ~t_max:t_unit;
      trace_enabled = true;
    }
  in
  let result = Runner.run (module Termination.Static) config in
  Format.printf "trace of the partitioned run:@.";
  Trace.iter
    (fun (e : Trace.entry) ->
      if e.topic <> "net" then Format.printf "  %a@." Trace.pp_entry e)
    result.trace;
  Format.printf "@.";
  print_outcome "partition at 2.1T cutting off site3" result;

  (* 3. The same scenario under plain 3PC: blocked sites. *)
  let result_3pc = Runner.run (module Three_phase) config in
  print_outcome "same scenario, plain 3PC (blocks)" result_3pc
