(* The benchmark / reproduction harness.

   The paper (ICDE 1987) has no measurement tables; its "results" are
   nine figures — protocol FSAs (Figs 1, 2, 3, 8), the partition model
   (Fig 4), worst-case timing analyses (Figs 5, 6, 7, 9) — the Section 6
   case-bound table, and the theorems.  One section below regenerates
   the behavioural content of each: the same protocols, the same
   counterexamples, the same bounds, measured in the simulator.  A final
   section runs Bechamel micro-benchmarks of the simulator itself.

     dune exec bench/main.exe *)

open Bechamel

let t_unit = Vtime.of_int 1000

let t mult = mult * 1000

let section title = Format.printf "@.=== %s ===@." title

let row fmt = Format.printf fmt

let partition ?heals_after ~g2 ~at ~n () =
  let starts_at = Vtime.of_int at in
  Partition.make
    ?heals_at:
      (Option.map (fun h -> Vtime.add starts_at (Vtime.of_int h)) heals_after)
    ~group2:(Site_id.set_of_ints g2) ~starts_at ~n ()

let base_config ?(n = 3) () =
  let config = Runner.default_config ~n ~t_unit () in
  { config with Runner.trace_enabled = false }

let static_grid ~n =
  Scenario.configs ~base:(base_config ~n ()) (Scenario.default_grid ~n ~t_unit)

let transient_grid ~n =
  let grid = Scenario.default_grid ~n ~t_unit in
  let grid =
    {
      grid with
      Scenario.heals_after =
        [
          None;
          Some (Vtime.of_int (t 1));
          Some (Vtime.of_int (t 3));
          Some (Vtime.of_int (t 6));
        ];
    }
  in
  Scenario.configs ~base:(base_config ~n ()) grid

let pp_summary_line name (s : Sweep.summary) =
  row "  %-26s runs=%-5d violations=%-4d blocked=%-4d commit=%-5d abort=%-5d@."
    name s.runs s.violations s.blocked_runs s.committed s.aborted

(* ------------------------------------------------------------------ *)
(* Fig. 1 — two-phase commit                                           *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Fig. 1 — the two-phase commit protocol";
  row "  paper: 2 phases; master decides when sending the command;@.";
  row "  blocking whenever an in-doubt site loses the master.@.";
  List.iter
    (fun n ->
      let result = Runner.run (module Two_phase) (base_config ~n ()) in
      let v = Verdict.of_result result in
      row "  n=%d failure-free: %d messages (3(n-1)=%d), outcome %s@." n
        result.net_stats.sent
        (3 * (n - 1))
        (match Verdict.outcome v with `Committed -> "commit" | _ -> "?"))
    [ 2; 3; 5; 8 ];
  let summary = Sweep.run (module Two_phase) (static_grid ~n:3) in
  pp_summary_line "2pc under partitions" summary;
  row "  -> consistent but blocks in %d/%d scenarios (the paper's motivation)@."
    summary.blocked_runs summary.runs

(* ------------------------------------------------------------------ *)
(* Fig. 2 — extended two-phase commit                                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Fig. 2 — extended 2PC (timeout + UD transitions, two sites)";
  row "  The figure's protocol, rederived mechanically from Rule(a)/(b):@.";
  (match Commit_fsa.Catalog.find "ext2pc" with
  | Some protocol ->
      let analysis = Commit_fsa.Analysis.analyze protocol ~n:2 in
      Format.printf "%a" Commit_fsa.Augment.pp
        (Commit_fsa.Augment.apply_rules analysis)
  | None -> ());
  let s2 = Sweep.run (module Ext_two_phase) (static_grid ~n:2) in
  let s3 = Sweep.run (module Ext_two_phase) (static_grid ~n:3) in
  pp_summary_line "ext2pc n=2" s2;
  pp_summary_line "ext2pc n=3" s3;
  row "  paper: resilient for two sites, inconsistent for more.@.";
  row "  measured: n=2 -> %d violations; n=3 -> %d violations.@." s2.violations
    s3.violations

(* ------------------------------------------------------------------ *)
(* Fig. 3 — three-phase commit (and the Section 3/4 strawmen)          *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "Fig. 3 — three-phase commit and the Rule(a)/(b) strawmen";
  (match Commit_fsa.Catalog.find "3pc" with
  | Some protocol ->
      let a = Commit_fsa.Analysis.analyze protocol ~n:3 in
      row
        "  Lemma 1: %s; Lemma 2: %s (3PC qualifies for a termination protocol)@."
        (if Commit_fsa.Analysis.lemma1_violations a = [] then "satisfied"
         else "violated")
        (if Commit_fsa.Analysis.lemma2_violations a = [] then "satisfied"
         else "violated")
  | None -> ());
  pp_summary_line "3pc (no augmentation)"
    (Sweep.run (module Three_phase) (static_grid ~n:3));
  pp_summary_line "3pc+rules (paper reading)"
    (Sweep.run (module Three_phase_rules.Paper) (static_grid ~n:3));
  pp_summary_line "3pc+rules-strict"
    (Sweep.run (module Three_phase_rules.Strict) (static_grid ~n:3));
  pp_summary_line "3pc+rules-strict n=4"
    (Sweep.run (module Three_phase_rules.Strict) (static_grid ~n:4));
  row "  paper (Lemma 3): timeout/UD transitions cannot make 3PC resilient;@.";
  row "  measured: plain 3PC blocks, both rule resolutions violate atomicity.@."

(* ------------------------------------------------------------------ *)
(* Fig. 4 — the simple-partition network model                         *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Fig. 4 — simple partitioning with return of messages";
  row "  every message sent across boundary B during a partition must come@.";
  row "  back to its sender exactly once (optimistic model).@.";
  List.iter
    (fun n ->
      List.iter
        (fun cut ->
          let sent = ref 0 and delivered = ref 0 and bounced = ref 0 in
          let cross = ref 0 in
          let p = Partition.make ~group2:cut ~starts_at:Vtime.zero ~n () in
          let config = { (base_config ~n ()) with Runner.partition = p } in
          let tap = function
            | Network.Sent { env; _ } ->
                incr sent;
                if Partition.separated p ~at:Vtime.zero env.Network.src env.dst
                then incr cross
            | Network.Delivered _ -> incr delivered
            | Network.Bounced _ -> incr bounced
            | Network.Lost _ -> ()
          in
          ignore (Runner.run ~tap (module Termination.Static) config);
          row
            "  n=%d G2=%-16s sent=%-3d delivered=%-3d bounced=%-3d \
             cross-sends=%-3d conserved=%b@."
            n
            (Format.asprintf "%a" Site_id.pp_set cut)
            !sent !delivered !bounced !cross
            (!sent = !delivered + !bounced))
        (Scenario.all_cuts ~n))
    [ 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Fig. 5 — timeout intervals (master 2T, slave 3T)                    *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "Fig. 5 — timeout analysis (failure-free worst cases)";
  let max_vote_wait = ref 0 and max_prepare_wait = ref 0 in
  let max_commit_wait = ref 0 in
  let note_max r v = if v > !r then r := v in
  let measure seed delay =
    let config = { (base_config ~n:4 ()) with Runner.delay; seed } in
    let xact_at = ref 0 and prepare_sent = ref 0 in
    let w_enter = Hashtbl.create 8 and p_enter = Hashtbl.create 8 in
    let tap = function
      | Network.Sent { env; at } -> (
          match env.Network.payload with
          | Types.Xact -> xact_at := at
          | Types.Prepare -> prepare_sent := at
          | Types.Yes -> Hashtbl.replace w_enter env.src at
          | Types.Ack -> Hashtbl.replace p_enter env.src at
          | _ -> ())
      | Network.Delivered _ | Network.Bounced _ | Network.Lost _ -> ()
    in
    let result = Runner.run ~tap (module Termination.Static) config in
    (* The master had collected every vote by the time it sent the
       prepares; a slave's wait in w ends when it sends its ack, and in
       p when it decides. *)
    note_max max_vote_wait (!prepare_sent - !xact_at);
    Hashtbl.iter
      (fun src entered ->
        match Hashtbl.find_opt p_enter src with
        | Some acked -> note_max max_prepare_wait (acked - entered)
        | None -> ())
      w_enter;
    Hashtbl.iter
      (fun src acked ->
        match (Runner.site_result result src).decided_at with
        | Some at -> note_max max_commit_wait (at - acked)
        | None -> ())
      p_enter
  in
  List.iter
    (fun seed ->
      List.iter (measure (Int64.of_int seed))
        [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ])
    (List.init 40 (fun i -> i + 1));
  row "  master wait for all votes : measured max %5d ticks, timeout 2T = %d@."
    !max_vote_wait (t 2);
  row "  slave wait in w (prepare) : measured max %5d ticks, timeout 3T = %d@."
    !max_prepare_wait (t 3);
  row "  slave wait in p (commit)  : measured max %5d ticks, timeout 3T = %d%s@."
    !max_commit_wait (t 3)
    (if !max_commit_wait > t 3 then
       "  (benign false timeout: probing recovers, see DESIGN.md)"
     else "")

(* ------------------------------------------------------------------ *)
(* Fig. 6 — master probe-collection window (5T)                        *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig. 6 — probe arrives within 5T of the first UD(prepare)";
  let max_lag = ref 0 and samples = ref 0 in
  List.iter
    (fun config ->
      let first_ud = ref None and probe_arrivals = ref [] in
      (* The tap carries exact event times: the instant the UD(prepare)
         reached the master and the instant each probe arrived. *)
      let tap = function
        | Network.Bounced { env; at }
          when env.Network.payload = Types.Prepare
               && Site_id.is_master env.Network.src -> (
            match !first_ud with None -> first_ud := Some at | Some _ -> ())
        | Network.Delivered { env; at } -> (
            match env.Network.payload with
            | Types.Probe _ when Site_id.is_master env.Network.dst ->
                probe_arrivals := at :: !probe_arrivals
            | _ -> ())
        | Network.Sent _ | Network.Bounced _ | Network.Lost _ -> ()
      in
      ignore (Runner.run ~tap (module Termination.Static) config);
      match !first_ud with
      | None -> ()
      | Some t0 ->
          List.iter
            (fun arrival ->
              if arrival >= t0 then begin
                incr samples;
                if arrival - t0 > !max_lag then max_lag := arrival - t0
              end)
            !probe_arrivals)
    (static_grid ~n:3 @ static_grid ~n:4);
  row "  probes measured against their window: %d@." !samples;
  row
    "  worst probe lag after the first UD(prepare): %d ticks; paper bound 5T \
     = %d@."
    !max_lag (t 5);
  row "  -> %s@." (if !max_lag <= t 5 then "bound holds" else "BOUND VIOLATED")

(* ------------------------------------------------------------------ *)
(* Fig. 7 — slave post-w window (6T)                                   *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Fig. 7 — a slave that timed out in w decides within 6T";
  let max_wait = ref 0 and samples = ref 0 in
  List.iter
    (fun config ->
      let yes_sent = Hashtbl.create 8 in
      let tap = function
        | Network.Sent { env; at } when env.Network.payload = Types.Yes ->
            Hashtbl.replace yes_sent env.Network.src at
        | Network.Sent _ | Network.Delivered _ | Network.Bounced _
        | Network.Lost _ ->
            ()
      in
      let result = Runner.run ~tap (module Termination.Static) config in
      Array.iter
        (fun (s : Runner.site_result) ->
          let through_w2 =
            List.exists
              (fun r -> r = "fact1-case2" || r = "w2-expired")
              s.reasons
          in
          if through_w2 then
            match (Hashtbl.find_opt yes_sent s.site, s.decided_at) with
            | Some sent, Some decided ->
                let timeout_at = sent + t 3 in
                incr samples;
                if decided - timeout_at > !max_wait then
                  max_wait := decided - timeout_at
            | _ -> ())
        result.sites)
    (static_grid ~n:3 @ static_grid ~n:4);
  row "  slaves that timed out in w and decided later: %d@." !samples;
  row "  worst wait after the w timeout: %d ticks; paper bound 6T = %d@."
    !max_wait (t 6);
  row "  -> %s@." (if !max_wait <= t 6 then "bound holds" else "BOUND VIOLATED")

(* ------------------------------------------------------------------ *)
(* Fig. 8 — the modified 3PC ablation                                  *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  section "Fig. 8 — why the slave needs the w -> c transition";
  let with_fig8 = Sweep.run (module Termination.Static) (static_grid ~n:4) in
  let without =
    Sweep.run (module Termination.Static_without_fig8) (static_grid ~n:4)
  in
  pp_summary_line "termination (Fig. 8 slave)" with_fig8;
  pp_summary_line "termination without w->c" without;
  row "  paper: without the modification a G2 slave can miss the only commit@.";
  row "  it will ever receive.  measured: %d violations appear without it.@."
    without.violations

(* ------------------------------------------------------------------ *)
(* Fig. 9 + the Section 6 case table                                   *)
(* ------------------------------------------------------------------ *)

let sec6 () =
  section "Fig. 9 / Section 6 — per-case worst-case waits after a p timeout";
  let table = Hashtbl.create 8 in
  let note case wait =
    let runs, max_wait, unbounded =
      Option.value (Hashtbl.find_opt table case) ~default:(0, 0, 0)
    in
    let entry =
      match wait with
      | None -> (runs + 1, max_wait, unbounded + 1)
      | Some w -> (runs + 1, Stdlib.max max_wait w, unbounded)
    in
    Hashtbl.replace table case entry
  in
  List.iter
    (fun protocol ->
      Hashtbl.reset table;
      let configs = transient_grid ~n:3 @ transient_grid ~n:4 in
      List.iter
        (fun config ->
          let obs = Cases.observe protocol config in
          match obs.Cases.case with
          | None -> ()
          | Some case ->
              List.iter (fun (_, wait) -> note case wait) obs.Cases.probe_waits)
        configs;
      row "  --- %s ---@." (Site.name protocol);
      row "  %-10s %-8s %-24s %s@." "case" "probes" "measured max wait"
        "paper bound";
      List.iter
        (fun case ->
          match Hashtbl.find_opt table case with
          | None -> ()
          | Some (runs, max_wait, unbounded) ->
              row "  %-10s %-8d %-24s %s@." (Timing.case_name case) runs
                (if unbounded > 0 then
                   Printf.sprintf "%d unbounded (blocked)" unbounded
                 else Printf.sprintf "%d ticks" max_wait)
                (match Timing.case_bound_mult case with
                | Some b -> Printf.sprintf "%dT = %d" b (t b)
                | None -> (
                    match case with
                    | Timing.Case_3_2_2_2 -> "unbounded (hence the 5T rule)"
                    | Timing.Case_1 | Timing.Case_2_1 | Timing.Case_2_2_1
                    | Timing.Case_2_2_2 | Timing.Case_3_1 | Timing.Case_3_2_1
                    | Timing.Case_3_2_2_1 ->
                        "n/a (no slave waits in p)")))
        Timing.all_cases)
    [
      (module Termination.Static : Site.S);
      (module Termination.Transient : Site.S);
    ];
  row "  paper: only case 3.2.2.2 exceeds 5T; the transient variant commits@.";
  row "  after 5T and is therefore never blocked.@."

(* ------------------------------------------------------------------ *)
(* Theorem 9 — the resilience matrix                                   *)
(* ------------------------------------------------------------------ *)

let thm9 () =
  section "Theorem 9 — resilience to optimistic multisite simple partitioning";
  let protocols : (string * Site.packed * string) list =
    [
      ("2pc", (module Two_phase), "blocks");
      ("ext2pc", (module Ext_two_phase), "violates (n>2)");
      ("3pc", (module Three_phase), "blocks");
      ("3pc+rules", (module Three_phase_rules.Paper), "violates");
      ("3pc+rules-strict", (module Three_phase_rules.Strict), "violates");
      ("3pc-skeen (ref [4])", (module Three_phase_skeen), "violates");
      ("quorum", (module Quorum), "blocks minority");
      ("termination", (module Termination.Static), "resilient");
      ("termination-transient", (module Termination.Transient), "resilient");
    ]
  in
  List.iter
    (fun n ->
      row "  -- n = %d --@." n;
      List.iter
        (fun (name, protocol, expectation) ->
          let s = Sweep.run protocol (static_grid ~n) in
          row "  %-24s violations=%-4d blocked=%-4d   paper: %s@." name
            s.violations s.blocked_runs expectation)
        protocols)
    [ 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Window-necessity ablation: why 5T and 6T                            *)
(* ------------------------------------------------------------------ *)

let window_ablation () =
  section "Window ablation — the 5T collect and 6T wait windows are minimal";
  row "  the paper derives the master's probe-collection window (Fig. 6)@.";
  row "  and the slave's post-w wait (Fig. 7); shrink either and the@.";
  row "  protocol breaks on the grid:@.";
  row "  %-10s %-10s %-12s %-10s@." "collect" "wait" "violations" "blocked";
  List.iter
    (fun (collect, wait) ->
      let module P = Termination.With_windows (struct
        let collect_window_mult = collect

        let wait_window_mult = wait
      end) in
      let s =
        Sweep.run (module P) (static_grid ~n:3 @ static_grid ~n:4)
      in
      row "  %-10s %-10s %-12d %-10d%s@."
        (Printf.sprintf "%dT" collect)
        (Printf.sprintf "%dT" wait)
        s.violations s.blocked_runs
        (if collect = 5 && wait = 6 then "   <- the paper's values" else ""))
    [ (3, 6); (4, 6); (5, 4); (5, 5); (4, 5); (5, 6); (6, 7) ];
  row "  -> the collect window is minimal: at 3T or 4T it closes before@.";
  row "     legitimate probes land and the master mis-decides.  The 6T wait@.";
  row "     is attained by abort outcomes (Fig. 7 measured max = 6T) but is@.";
  row "     conservative for commits under simultaneous prepares -- no grid@.";
  row "     scenario needs more than 5T to receive one; longer windows only@.";
  row "     add latency.@."

(* ------------------------------------------------------------------ *)
(* Lemma 3 — exhaustively: every augmentation of 3PC fails             *)
(* ------------------------------------------------------------------ *)

let lemma3 () =
  section "Lemma 3 — every timeout/UD augmentation of 3PC fails, exhaustively";
  let fsa = Commit_fsa.Catalog.three_phase in
  let assignments = Fsa_actor.all_assignments fsa in
  row "  3PC has %d waiting states -> %d possible assignments of@."
    (List.length (Fsa_actor.waiting_states fsa))
    (List.length assignments);
  row "  timeout and undeliverable-message outcomes.  Lemma 3: none is@.";
  row "  resilient.  Stage 1 kills most on 10 adversarial scenarios;@.";
  row "  stage 2 runs the survivors through the full n=3 grid.@.";
  let mk ?(votes = []) ~n ~g2 ~at ~delay () =
    {
      (base_config ~n ()) with
      Runner.partition = partition ~g2 ~at ~n ();
      delay;
      votes;
    }
  in
  let full = Delay.full ~t_max:t_unit in
  let mini_grid =
    [
      mk ~n:3 ~g2:[ 3 ] ~at:100 ~delay:full ();
      mk ~n:3 ~g2:[ 3 ] ~at:1100 ~delay:full ();
      mk ~n:3 ~g2:[ 3 ] ~at:2100 ~delay:full ();
      mk ~n:3 ~g2:[ 3 ] ~at:3050 ~delay:full ();
      mk ~n:3 ~g2:[ 3 ] ~at:4050 ~delay:full ();
      mk ~n:3 ~g2:[ 2; 3 ] ~at:250 ~delay:(Delay.uniform ~t_max:t_unit) ();
      mk ~n:3 ~g2:[ 2; 3 ] ~at:2100 ~delay:full ();
      mk ~n:4 ~g2:[ 3; 4 ] ~at:3050 ~delay:full ();
      mk ~n:3 ~g2:[ 3 ] ~at:1100 ~delay:full
        ~votes:[ (Site_id.of_int 2, false) ]
        ();
      mk ~n:3 ~g2:[ 3 ] ~at:2100 ~delay:full
        ~votes:[ (Site_id.of_int 3, false) ]
        ();
      (* and the protocol must still work failure-free *)
      { (base_config ~n:3 ()) with Runner.delay = full };
    ]
  in
  let resilient_on grid proto =
    List.for_all
      (fun (cfg : Runner.config) ->
        let result = Runner.run proto cfg in
        let v = Verdict.of_result result in
        Verdict.resilient v
        && ((not (Partition.group_count cfg.partition = 0))
           || Verdict.outcome v
              = (if cfg.votes = [] then `Committed else `Aborted)))
      grid
  in
  let survivors =
    List.filter
      (fun a -> resilient_on mini_grid (Fsa_actor.make ~name:"candidate" fsa a))
      assignments
  in
  row "  stage 1: %d/%d assignments survive the 10 scenarios@."
    (List.length survivors) (List.length assignments);
  let final_survivors =
    List.filter
      (fun a ->
        resilient_on (static_grid ~n:3) (Fsa_actor.make ~name:"candidate" fsa a))
      survivors
  in
  row "  stage 2: %d/%d survive the full n=3 grid (864 scenarios each)@."
    (List.length final_survivors) (List.length survivors);
  row "  -> %s@."
    (if final_survivors = [] then
       "no augmentation is resilient: Lemma 3 confirmed mechanically"
     else "LEMMA 3 REFUTED?! inspect the surviving assignments")

(* ------------------------------------------------------------------ *)
(* Theorem 10 — generalisation (static FSA check)                      *)
(* ------------------------------------------------------------------ *)

let thm10 () =
  section "Theorem 10 — which protocols admit such a termination protocol";
  row "  condition: no state concurrent with both outcomes (L1), no@.";
  row "  noncommittable state concurrent with a commit (L2).@.";
  List.iter
    (fun (protocol : Commit_fsa.Machine.t) ->
      List.iter
        (fun n ->
          let a = Commit_fsa.Analysis.analyze protocol ~n in
          row "  %-12s n=%d  Lemma1 %-9s Lemma2 %-9s -> %s@."
            protocol.Commit_fsa.Machine.name n
            (if Commit_fsa.Analysis.lemma1_violations a = [] then "holds"
             else "violated")
            (if Commit_fsa.Analysis.lemma2_violations a = [] then "holds"
             else "violated")
            (if Commit_fsa.Analysis.satisfies_lemmas a then "qualifies"
             else "does not qualify"))
        [ 2; 3 ])
    Commit_fsa.Catalog.all;
  row "  constructive check — four-phase commit with the substituted@.";
  row "  termination protocol (m = prepare), swept like Theorem 9:@.";
  List.iter
    (fun n ->
      let s =
        Sweep.run (module Theorem10.Four_phase_termination) (static_grid ~n)
      in
      row "  4pc-termination n=%d: %d violations, %d blocked over %d scenarios@."
        n s.violations s.blocked_runs s.runs)
    [ 3; 4 ]

(* ------------------------------------------------------------------ *)
(* The second impossibility: multiple partitioning                     *)
(* ------------------------------------------------------------------ *)

let multi_partitioning () =
  section "Theorem (Sec. 2) — no protocol survives multiple partitioning";
  let grid =
    Scenario.multi_configs
      ~base:(base_config ~n:4 ())
      ~starts:(Scenario.instants ~t_unit ~until_mult:8 ~per_t:2)
      ~delays:
        [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ]
      ~seeds:[ 1L; 42L ]
  in
  row "  all %d ways to split 4 sites into >= 3 groups, %d scenarios:@."
    (List.length (Scenario.all_multi_cuts ~n:4))
    (List.length grid);
  List.iter
    (fun (name, protocol) ->
      pp_summary_line name (Sweep.run protocol grid))
    [
      ("termination", (module Termination.Static : Site.S));
      ("termination-transient", (module Termination.Transient));
      ("quorum", (module Quorum));
      ("2pc", (module Two_phase));
    ]

(* ------------------------------------------------------------------ *)
(* Reference [4] — the complementary failure classes                   *)
(* ------------------------------------------------------------------ *)

let ref4 () =
  section "Reference [4] — Skeen's termination protocol vs this paper's";
  row "  the two termination protocols cover complementary failure classes@.";
  row "  (the paper's Section 7 point):@.";
  let crash_sweep protocol =
    (* the master dies at every instant of the protocol's life *)
    let violations = ref 0 and blocked = ref 0 and runs = ref 0 in
    List.iter
      (fun at ->
        List.iter
          (fun delay ->
            List.iter
              (fun seed ->
                let config =
                  {
                    (base_config ~n:4 ()) with
                    Runner.delay;
                    seed;
                    crashes = [ (Site_id.master, Vtime.of_int at) ];
                  }
                in
                let v = Verdict.of_result (Runner.run protocol config) in
                incr runs;
                if not v.Verdict.atomic then incr violations;
                if v.Verdict.blocked <> [] then incr blocked)
              [ 1L; 42L; 1987L ])
          [
            Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit;
          ])
      (List.init 24 (fun i -> 250 * (i + 1)));
    (!runs, !violations, !blocked)
  in
  let partition_sweep protocol =
    let s = Sweep.run protocol (static_grid ~n:4) in
    (s.Sweep.runs, s.Sweep.violations, s.Sweep.blocked_runs)
  in
  List.iter
    (fun (name, protocol) ->
      let cr, cv, cb = crash_sweep protocol in
      let pr, pv, pb = partition_sweep protocol in
      row "  %-18s master-crash: %d runs, %d violations, %d blocked@." name cr
        cv cb;
      row "  %-18s partition   : %d runs, %d violations, %d blocked@." "" pr pv
        pb)
    [
      ("3pc-skeen", (module Three_phase_skeen : Site.S));
      ("termination", (module Termination.Static));
    ];
  row "  paper: Skeen's protocol terminates site failures but not partitions;@.";
  row "  this paper's does the reverse — hence the master-never-fails@.";
  row "  assumption and the impossibility of covering both at once.@."

(* ------------------------------------------------------------------ *)
(* Paxos Commit vs 3PC+termination (BENCH_paxos.json)                  *)
(* ------------------------------------------------------------------ *)

(* The head-to-head the new protocol family exists for: what does
   master-failure tolerance cost in messages and latency when nothing
   fails, and what does it buy when the master dies mid-protocol. *)
let paxos_bench ~smoke () =
  section "Paxos Commit vs 3PC+termination — the price of leader failover";
  let crash_instants =
    List.init (if smoke then 6 else 24) (fun i -> 250 * (i + 1))
  in
  let seeds = if smoke then [ 1L ] else [ 1L; 42L; 1987L ] in
  let delays =
    [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ]
  in
  let fault_free_configs =
    List.concat_map
      (fun delay ->
        List.map
          (fun seed -> { (base_config ()) with Runner.delay; seed })
          seeds)
      delays
  in
  let crash_configs =
    List.concat_map
      (fun at ->
        List.concat_map
          (fun delay ->
            List.map
              (fun seed ->
                {
                  (base_config ()) with
                  Runner.delay;
                  seed;
                  crashes = [ (Site_id.master, Vtime.of_int at) ];
                })
              seeds)
          delays)
      crash_instants
  in
  let measure protocol configs =
    let runs = ref 0
    and decided = ref 0
    and committed = ref 0
    and blocked = ref 0
    and violations = ref 0
    and messages = ref 0
    and latencies = ref [] in
    List.iter
      (fun config ->
        let result = Runner.run protocol config in
        let v = Verdict.of_result result in
        incr runs;
        messages := !messages + result.net_stats.Network.sent;
        if not v.Verdict.atomic then incr violations;
        if v.Verdict.blocked <> [] then incr blocked
        else if v.Verdict.committed <> [] || v.Verdict.aborted <> [] then begin
          incr decided;
          if v.Verdict.committed <> [] then incr committed;
          match v.Verdict.max_decision_time with
          | Some at -> latencies := Vtime.to_int at :: !latencies
          | None -> ()
        end)
      configs;
    let stats = Stats.of_list !latencies in
    let per_decided =
      if !decided = 0 then nan
      else float_of_int !messages /. float_of_int !decided
    in
    ( !runs,
      !decided,
      !committed,
      !blocked,
      !violations,
      !messages,
      per_decided,
      stats )
  in
  let stats_json = function
    | None -> Export.Null
    | Some (s : Stats.t) ->
        Export.Obj
          [
            ("count", Export.Int s.count);
            ("min", Export.Int s.min);
            ("p50", Export.Int s.p50);
            ("p90", Export.Int s.p90);
            ("p95", Export.Int s.p95);
            ("p99", Export.Int s.p99);
            ("max", Export.Int s.max);
            ("mean", Export.Float s.mean);
          ]
  in
  let leg_json (runs, decided, committed, blocked, violations, messages, per, stats)
      =
    Export.Obj
      [
        ("runs", Export.Int runs);
        ("decided", Export.Int decided);
        ("committed", Export.Int committed);
        ("blocked", Export.Int blocked);
        ("violations", Export.Int violations);
        ("messages", Export.Int messages);
        ("messages_per_decided_txn", Export.Float per);
        ("decision_latency_ticks", stats_json stats);
      ]
  in
  let families =
    [
      ("paxos", Paxos_commit.protocol);
      ("paxos-f0", Paxos_commit.protocol_f0);
      ("termination-transient", (module Termination.Transient : Site.S));
    ]
  in
  let report_leg label
      (runs, decided, committed, blocked, violations, _, per, stats) =
    row
      "    %-13s %4d runs: %4d decided (%d committed), %3d blocked, %d \
       violations@."
      label runs decided committed blocked violations;
    row "    %-13s %.1f msgs/decided txn, latency %a@." "" per
      (Fmt.option ~none:(Fmt.any "-") (Stats.pp_in_t ~unit_t:t_unit))
      stats
  in
  let results =
    List.map
      (fun (name, protocol) ->
        let clean = measure protocol fault_free_configs in
        let crash = measure protocol crash_configs in
        row "  %s:@." name;
        report_leg "fault-free" clean;
        report_leg "master-crash" crash;
        (name, clean, crash))
      families
  in
  row "  paper family blocks or aborts when its master dies; Paxos (F=1)@.";
  row "  pays more messages per transaction and keeps deciding.@.";
  let json =
    Export.Obj
      [
        ("smoke", Export.Bool smoke);
        ("n", Export.Int 3);
        ("t_unit", Export.Int (Vtime.to_int t_unit));
        ( "families",
          Export.List
            (List.map
               (fun (name, clean, crash) ->
                 Export.Obj
                   [
                     ("name", Export.String name);
                     ("fault_free", leg_json clean);
                     ("master_crash", leg_json crash);
                   ])
               results) );
      ]
  in
  let oc = open_out "BENCH_paxos.json" in
  output_string oc (Export.to_string json);
  output_string oc "\n";
  close_out oc;
  row "  wrote BENCH_paxos.json@."

(* ------------------------------------------------------------------ *)
(* Assumption 2 — no back-to-back partitions                           *)
(* ------------------------------------------------------------------ *)

let assumption2 () =
  section "Assumption 2 — a second cut mid-termination breaks the protocol";
  let runs = ref 0 and violations = ref 0 and blocked = ref 0 in
  List.iter
    (fun ta ->
      List.iter
        (fun da ->
          List.iter
            (fun gap ->
              List.iter
                (fun cut_b ->
                  List.iter
                    (fun delay ->
                      let p =
                        Partition.sequence
                          [
                            Partition.make
                              ~group2:(Site_id.set_of_ints [ 3 ])
                              ~starts_at:(Vtime.of_int ta)
                              ~heals_at:(Vtime.of_int (ta + da))
                              ~n:3 ();
                            Partition.make
                              ~group2:(Site_id.set_of_ints cut_b)
                              ~starts_at:(Vtime.of_int (ta + da + gap))
                              ~n:3 ();
                          ]
                      in
                      let cfg =
                        { (base_config ~n:3 ()) with Runner.partition = p; delay }
                      in
                      let v =
                        Verdict.of_result
                          (Runner.run (module Termination.Transient) cfg)
                      in
                      incr runs;
                      if not v.Verdict.atomic then incr violations;
                      if v.Verdict.blocked <> [] then incr blocked)
                    [
                      Delay.minimal;
                      Delay.full ~t_max:t_unit;
                      Delay.uniform ~t_max:t_unit;
                    ])
                [ [ 2 ]; [ 2; 3 ]; [ 3 ] ])
            [ 100; 600; 1100 ])
        [ 500; 1000; 2000; 3000 ])
    (List.init 20 (fun i -> 250 * (i + 1)));
  row "  chained cuts (heal then re-cut before termination finishes):@.";
  row "  %d scenarios -> %d violations, %d blocked@." !runs !violations !blocked;
  row "  paper: \"there is no subsequent network partitioning before all@.";
  row "  the transactions affected by the previous partitioning have@.";
  row "  terminated\" — measured: dropping it breaks even the transient@.";
  row "  variant, exactly as assumed.@."

(* ------------------------------------------------------------------ *)
(* Section 7 — why the assumptions are necessary                       *)
(* ------------------------------------------------------------------ *)

let sec7 () =
  section "Section 7 — site failures concurrent with a partition break it";
  let per_link =
    Delay.Per_link
      (fun src dst ->
        match (Site_id.to_int src, Site_id.to_int dst) with
        | 1, 4 | 4, 1 -> Vtime.of_int 900
        | 1, 3 | 3, 1 -> Vtime.of_int 10
        | _, _ -> Vtime.of_int 100)
  in
  let config1 =
    {
      (base_config ~n:4 ()) with
      Runner.partition = partition ~g2:[ 3; 4 ] ~at:1815 ~n:4 ();
      delay = per_link;
      crashes = [ (Site_id.of_int 3, Vtime.of_int 1825) ];
    }
  in
  let r1 = Runner.run (module Termination.Static) config1 in
  row "  observation 1: G2's only prepared slave (site3) dies at 1825@.";
  row "    %a@." Verdict.pp (Verdict.of_result r1);
  let config2 =
    {
      (base_config ~n:4 ()) with
      Runner.partition = partition ~g2:[ 4 ] ~at:2100 ~n:4 ();
      delay = Delay.full ~t_max:t_unit;
      crashes = [ (Site_id.of_int 2, Vtime.of_int 3500) ];
    }
  in
  let r2 = Runner.run (module Termination.Static) config2 in
  row "  observation 2: G1 slave site2 dies after its prepare, before probing@.";
  row "    %a@." Verdict.pp (Verdict.of_result r2);
  row "  paper: no commit protocol is resilient to concurrent partitions and@.";
  row "  site failures (failures look like lost messages).@.";
  let grid =
    List.map
      (fun c -> { c with Runner.mode = Network.Pessimistic })
      (static_grid ~n:3)
  in
  let s = Sweep.run (module Termination.Static) grid in
  pp_summary_line "termination, messages LOST" s;
  row "  -> with message loss the protocol is no longer nonblocking:@.";
  row "     %d blocked runs (theorem: no resilient protocol exists there).@."
    s.blocked_runs

(* ------------------------------------------------------------------ *)
(* Database-level cost (the paper's motivation, quantified)            *)
(* ------------------------------------------------------------------ *)

let db_cost () =
  section "Database view — locks held behind a blocked commit protocol";
  let module Tm = Commit_db.Tm in
  let module Workload = Commit_db.Workload in
  let w =
    Workload.bank_transfers ~n:3 ~pairs:8 ~balance:1000 ~amount:70
      ~spacing:(Vtime.of_int 6000) ~seed:2024L
  in
  let p =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int 20200) ~n:3 ()
  in
  let expected = Workload.expected_total w ~prefix:"acct:" in
  List.iter
    (fun (name, protocol) ->
      let config =
        {
          (Tm.default_config ~protocol ()) with
          Tm.initial = w.Workload.initial;
          partition = p;
          delay = Delay.full ~t_max:t_unit;
        }
      in
      let report = Tm.run config w.Workload.txns in
      row
        "  %-22s committed=%d aborted=%d blocked=%d torn=%d starved=%d  money \
         %d/%d@."
        name
        (Tm.count_status report Tm.Txn_committed)
        (Tm.count_status report Tm.Txn_aborted)
        (Tm.count_status report Tm.Txn_blocked)
        (Tm.count_status report Tm.Txn_torn)
        (Tm.count_status report Tm.Txn_waiting_locks)
        (Tm.balance_total report ~prefix:"acct:")
        expected)
    [
      ("2pc", (module Two_phase : Site.S));
      ("ext2pc", (module Ext_two_phase));
      ("quorum", (module Quorum));
      ("termination", (module Termination.Static));
    ]

(* ------------------------------------------------------------------ *)
(* Decision-latency distributions                                      *)
(* ------------------------------------------------------------------ *)

let latency_distribution () =
  section "Decision latency under partitions (per-site, across the grid)";
  row "  how long a site waits for its verdict, in multiples of T:@.";
  List.iter
    (fun (name, protocol) ->
      let samples = ref [] in
      List.iter
        (fun config ->
          let result = Runner.run protocol config in
          Array.iter
            (fun (s : Runner.site_result) ->
              match s.decided_at with
              | Some at -> samples := at :: !samples
              | None -> ())
            result.sites)
        (static_grid ~n:3);
      match Stats.of_list !samples with
      | Some stats ->
          row "  %-24s %a@." name (Stats.pp_in_t ~unit_t:t_unit) stats
      | None -> row "  %-24s no decisions@." name)
    [
      ("2pc", (module Two_phase : Site.S));
      ("3pc", (module Three_phase));
      ("quorum", (module Quorum));
      ("termination", (module Termination.Static));
      ("termination-transient", (module Termination.Transient));
    ];
  row "  -> the termination protocol trades worst-case latency (the fixed@.";
  row "     5T/6T windows) for never blocking; quorum is faster when it can@.";
  row "     decide and infinitely slower when it cannot.@."

(* ------------------------------------------------------------------ *)
(* Scalability with the number of sites                                *)
(* ------------------------------------------------------------------ *)

let scalability () =
  section "Scalability — messages and decision latency vs. number of sites";
  row "  failure-free (full-T delays: every hop costs exactly T):@.";
  row "  %-4s %-28s %-28s %-28s@." "n" "2pc msgs/latency"
    "3pc msgs/latency" "termination msgs/latency";
  List.iter
    (fun n ->
      let cell protocol =
        let config =
          { (base_config ~n ()) with Runner.delay = Delay.full ~t_max:t_unit }
        in
        let result = Runner.run protocol config in
        let latest =
          Array.fold_left
            (fun acc (s : Runner.site_result) ->
              match s.decided_at with
              | Some at -> Stdlib.max acc at
              | None -> acc)
            0 result.sites
        in
        Printf.sprintf "%4d msgs, %2dT" result.net_stats.sent (latest / t 1)
      in
      row "  %-4d %-28s %-28s %-28s@." n
        (cell (module Two_phase))
        (cell (module Three_phase))
        (cell (module Termination.Static)))
    [ 2; 4; 8; 16; 32 ];
  row "@.  partitioned at 2.1T (half the slaves cut off), termination protocol:@.";
  List.iter
    (fun n ->
      let g2 =
        Site_id.Set.of_list
          (List.filteri (fun i _ -> i mod 2 = 1) (Site_id.slaves ~n))
      in
      let config =
        {
          (base_config ~n ()) with
          Runner.delay = Delay.full ~t_max:t_unit;
          partition =
            Partition.make ~group2:g2 ~starts_at:(Vtime.of_int (t 2 + 100)) ~n
              ();
        }
      in
      let result = Runner.run (module Termination.Static) config in
      let v = Verdict.of_result result in
      let latest =
        Array.fold_left
          (fun acc (s : Runner.site_result) ->
            match s.decided_at with Some at -> Stdlib.max acc at | None -> acc)
          0 result.sites
      in
      row "  n=%-3d |G2|=%-3d msgs=%-5d all decided by %2dT, %s@." n
        (Site_id.Set.cardinal g2) result.net_stats.sent (latest / t 1)
        (if Verdict.resilient v then "resilient" else "NOT RESILIENT"))
    [ 4; 8; 16; 32 ];
  row "  -> message cost stays linear in n; termination latency is bounded@.";
  row "     by the fixed windows (9-10T), independent of n.@."

(* ------------------------------------------------------------------ *)
(* Cluster steady state — sustained throughput around a partition      *)
(* ------------------------------------------------------------------ *)

let cluster_throughput () =
  section "Cluster runtime — steady-state throughput, with and without a cut";
  let module Cluster = Commit_cluster in
  row "  2000T of offered load (60 transfers/100T, window 8) through the@.";
  row "  transient termination protocol; the partitioned run cuts off site 3@.";
  row "  for 80T mid-run:@.";
  let config timeline =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = Vtime.of_int (t 2000);
      drain = Vtime.of_int (t 40);
      load = 60;
      timeline;
      bucket = Vtime.of_int (t 100);
    }
  in
  let cut =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int (t 800))
      ~heals_at:(Vtime.of_int (t 880))
      ~n:3 ()
  in
  List.iter
    (fun (name, timeline) ->
      let report = Cluster.Runtime.run (config timeline) in
      let pct p =
        match report.Cluster.Runtime.latency with
        | Some s -> (
            match p with `P50 -> s.Stats.p50 | `P99 -> s.Stats.p99)
        | None -> 0
      in
      row
        "  %-14s committed=%-5d throughput=%.1f/100T p50=%.2fT p99=%.2fT \
         terminations=%d atomic=%b@."
        name report.Cluster.Runtime.committed
        report.Cluster.Runtime.throughput_per_100t
        (float_of_int (pct `P50) /. float_of_int (t 1))
        (float_of_int (pct `P99) /. float_of_int (t 1))
        report.Cluster.Runtime.termination_invocations
        (Cluster.Runtime.atomic report);
      row "  %s json: %s@." name
        (Format.asprintf "%a" Export.pp (Cluster.Runtime.to_json report)
        |> String.split_on_char '\n' |> String.concat " "))
    [ ("no partition", Partition.none); ("80T cut", cut) ];
  row "  -> the cut dents goodput for its window (termination aborts in@.";
  row "     bounded time, freeing the admission window); plain 2PC/3PC would@.";
  row "     wedge the window permanently — see `tp_sim cluster -p 2pc`.@."

(* ------------------------------------------------------------------ *)
(* Domain-parallel sweeps — wall-clock and determinism                 *)
(* ------------------------------------------------------------------ *)

(* Wall-clock, not Sys.time: CPU time is summed across domains and
   would hide any speedup. *)
let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let has_flag name = Array.exists (String.equal name) Sys.argv

let grid_from_argv ~smoke () =
  let v = ref (if smoke then "small" else "large") in
  Array.iteri
    (fun i arg ->
      if arg = "--grid" && i + 1 < Array.length Sys.argv then
        v := Sys.argv.(i + 1))
    Sys.argv;
  match !v with
  | "large" -> `Large
  | "small" -> `Small
  | other ->
      Printf.eprintf "warning: unknown --grid %s (want small|large)\n%!" other;
      if smoke then `Small else `Large

(* The jobs-curve bench: run the same sweep at 1/2/4/8 jobs and record
   wall time, per-domain throughput and byte-identity against the
   jobs=1 leg.  [run jobs] produces the summary; [to_json] serialises
   it (the identity check); effective domains are clamped exactly as
   the sweeps clamp. *)
let jobs_curve ~name ~runs ~jobs_list ~run ~to_json =
  let recommended = Domain.recommended_domain_count () in
  let legs =
    List.map
      (fun jobs ->
        let summary, secs = wall (fun () -> run jobs) in
        (jobs, Stdlib.min jobs recommended, secs, to_json summary))
      jobs_list
  in
  let base_secs, base_json =
    match legs with
    | (_, _, secs, json) :: _ -> (secs, json)
    | [] -> invalid_arg "jobs_curve: empty jobs list"
  in
  row "  %s (%d runs):@." name runs;
  let leg_json =
    List.map
      (fun (jobs, domains, secs, json) ->
        let rps = float_of_int runs /. secs in
        let identical = String.equal base_json json in
        row
          "    --jobs %d (%d domain%s)  %.3fs  %.0f runs/s  (%.0f per \
           domain)  speedup %.2fx  identical %b@."
          jobs domains
          (if domains = 1 then "" else "s")
          secs rps
          (rps /. float_of_int domains)
          (base_secs /. secs) identical;
        if not identical then
          row "  *** NONDETERMINISM: --jobs %d differs from --jobs 1 ***@."
            jobs;
        Export.Obj
          [
            ("jobs", Export.Int jobs);
            ("domains", Export.Int domains);
            ("seconds", Export.Float secs);
            ("runs_per_sec", Export.Float rps);
            ( "per_domain_runs_per_sec",
              Export.Float (rps /. float_of_int domains) );
            ("speedup", Export.Float (base_secs /. secs));
            ("identical", Export.Bool identical);
          ])
      legs
  in
  Export.Obj [ ("runs", Export.Int runs); ("curve", Export.List leg_json) ]

let parallel_sweeps ~smoke () =
  let recommended = Domain.recommended_domain_count () in
  let grid_size = grid_from_argv ~smoke () in
  let grid_name = match grid_size with `Small -> "small" | `Large -> "large" in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  section
    (Printf.sprintf
       "Domain-parallel sweeps — jobs curve %s on the %s grid (%d \
        recommended domain%s)"
       (String.concat "/" (List.map string_of_int jobs_list))
       grid_name recommended
       (if recommended = 1 then "" else "s"));
  (* Checker sweep: the Theorem-9 grid for the termination protocol;
     --grid large crosses it with heal timelines and ten seeds. *)
  let grid =
    match grid_size with
    | `Small -> static_grid ~n:3 @ static_grid ~n:4
    | `Large ->
        let configs ~n =
          Scenario.configs ~base:(base_config ~n ())
            (Scenario.large_grid ~n ~t_unit)
        in
        configs ~n:3 @ configs ~n:4
  in
  let sweep_json =
    jobs_curve ~name:"checker sweep" ~runs:(List.length grid) ~jobs_list
      ~run:(fun jobs -> Sweep.run ~jobs (module Termination.Static) grid)
      ~to_json:(fun s -> Export.to_string (Export.of_summary s))
  in
  (* Cluster sweep: seeds x timelines x policies x protocols, one
     runtime per task. *)
  let module Cluster = Commit_cluster in
  let base =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = Vtime.of_int (t 200);
      drain = Vtime.of_int (t 40);
      load = 40;
      bucket = Vtime.of_int (t 50);
    }
  in
  let cut =
    Partition.make
      ~group2:(Site_id.set_of_ints [ 3 ])
      ~starts_at:(Vtime.of_int (t 80))
      ~heals_at:(Vtime.of_int (t 110))
      ~n:3 ()
  in
  let cgrid =
    match grid_size with
    | `Small ->
        {
          Cluster.Cluster_sweep.base;
          seeds = List.init 6 (fun i -> Int64.of_int (i + 1));
          timelines = [ ("none", Partition.none); ("cut-80T", cut) ];
          policies = [ Cluster.Scheduler.Partition_aware ];
          protocols = [];
          faults = [];
        }
    | `Large ->
        {
          Cluster.Cluster_sweep.base;
          seeds = List.init 10 (fun i -> Int64.of_int (i + 1));
          timelines = [ ("none", Partition.none); ("cut-80T", cut) ];
          policies =
            Cluster.Scheduler.[ Fixed_master; Round_robin; Partition_aware ];
          protocols =
            [
              ("transient", (module Termination.Transient : Site.S));
              ("paxos", Paxos_commit.protocol);
            ];
          faults = [];
        }
  in
  let cruns = List.length (Cluster.Cluster_sweep.tasks cgrid) in
  let cluster_json =
    jobs_curve ~name:"cluster sweep" ~runs:cruns ~jobs_list
      ~run:(fun jobs -> Cluster.Cluster_sweep.run ~jobs cgrid)
      ~to_json:(fun s -> Export.to_string (Cluster.Cluster_sweep.to_json s))
  in
  let bench_json =
    Export.Obj
      [
        ("grid", Export.String grid_name);
        ("recommended_domains", Export.Int recommended);
        ("sweep", sweep_json);
        ("cluster", cluster_json);
      ]
  in
  let oc = open_out "BENCH_sweep.json" in
  output_string oc (Export.to_string bench_json);
  output_string oc "\n";
  close_out oc;
  row "  wrote BENCH_sweep.json@."

(* ------------------------------------------------------------------ *)
(* Soak throughput: faults on vs. off (BENCH_soak.json)                *)
(* ------------------------------------------------------------------ *)

(* The price of the fault schedule: both legs derive from the same soak
   seed, so (the workload seed being the first unconditional draw) they
   run identical arrival processes — the throughput delta is purely the
   cuts, crash-recover windows and delay jitter. *)
let soak_bench ~smoke () =
  let module Soak = Commit_cluster.Soak in
  section
    (Printf.sprintf "Soak throughput: faults on vs. off%s"
       (if smoke then " (smoke mode)" else ""));
  let epochs = if smoke then 3 else 8 in
  let segment = Vtime.of_int (t (if smoke then 100 else 200)) in
  let config =
    { (Soak.default_config ()) with Soak.seed = 1987L; epochs; segment }
  in
  let leg faults =
    let cfg = { config with Soak.faults } in
    let summary, seconds = wall (fun () -> Soak.run cfg) in
    let txns_per_s = float_of_int summary.Soak.settled /. seconds in
    row "  faults %-3s %d epochs x %d ticks: settled=%d committed=%d \
         conserved=%b  %.0f txns/s@."
      (if faults then "on" else "off")
      epochs (Vtime.to_int segment) summary.Soak.settled
      summary.Soak.committed (Soak.conserved summary) txns_per_s;
    (cfg, summary, seconds, txns_per_s)
  in
  let _, on_summary, on_s, on_tps = leg true in
  let _, off_summary, off_s, off_tps = leg false in
  let slowdown = if on_tps > 0. then off_tps /. on_tps else nan in
  row "  fault-schedule slowdown: %.2fx (identical workload seeds)@." slowdown;
  let leg_json (summary : Soak.summary) seconds tps =
    Export.Obj
      [
        ("settled", Export.Int summary.Soak.settled);
        ("committed", Export.Int summary.Soak.committed);
        ("aborted", Export.Int summary.Soak.aborted);
        ("torn", Export.Int summary.Soak.torn);
        ("crashes", Export.Int summary.Soak.crashes);
        ("recoveries", Export.Int summary.Soak.recoveries);
        ("cut_phases", Export.Int summary.Soak.cut_phases);
        ("conserved", Export.Bool (Soak.conserved summary));
        ("seconds", Export.Float seconds);
        ("txns_per_s", Export.Float tps);
      ]
  in
  let bench_json =
    Export.Obj
      [
        ("smoke", Export.Bool smoke);
        ("seed", Export.String (Int64.to_string config.Soak.seed));
        ("epochs", Export.Int epochs);
        ("segment_ticks", Export.Int (Vtime.to_int segment));
        ("faults_on", leg_json on_summary on_s on_tps);
        ("faults_off", leg_json off_summary off_s off_tps);
        ("slowdown", Export.Float slowdown);
      ]
  in
  let oc = open_out "BENCH_soak.json" in
  output_string oc (Export.to_string bench_json);
  output_string oc "\n";
  close_out oc;
  row "  wrote BENCH_soak.json@."

(* ------------------------------------------------------------------ *)
(* Engine throughput and GC cost per event (BENCH_engine.json)         *)
(* ------------------------------------------------------------------ *)

(* Events/sec and allocation per event are the binding constraint on
   every sweep (BENCH_sweep.json showed parallelism cannot save a 1-core
   container), so this section measures the discrete-event core end to
   end: a raw schedule/pop churn, the paper's 3PC-family protocols under
   a partition, and a cluster steady-state run — each with tracing off
   and on.  [Gc.allocated_bytes] counts every minor allocation whether
   or not it survives, which is exactly the hot-path metric. *)

let engine_bench ~smoke () =
  section
    (Printf.sprintf "Engine — events/sec and GC cost per event%s"
       (if smoke then " (smoke mode)" else ""));
  let scale n = if smoke then max 1 (n / 20) else n in
  let measure ~name ~trace ~iters run_once =
    ignore (run_once ());
    Gc.full_major ();
    let stat0 = Gc.quick_stat () in
    let bytes0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let events = ref 0 in
    for _ = 1 to iters do
      events := !events + run_once ()
    done;
    let seconds = Unix.gettimeofday () -. t0 in
    let bytes1 = Gc.allocated_bytes () in
    let stat1 = Gc.quick_stat () in
    let ev = float_of_int !events in
    let events_per_sec = ev /. seconds in
    let bytes_per_event = (bytes1 -. bytes0) /. ev in
    let minor_per_kevent =
      float_of_int (stat1.Gc.minor_collections - stat0.Gc.minor_collections)
      *. 1000. /. ev
    in
    row "  %-24s trace=%-3s %10.0f ev/s %8.1f B/ev %7.2f minor-gc/1k-ev@."
      name trace events_per_sec bytes_per_event minor_per_kevent;
    ( events_per_sec,
      Export.Obj
        [
          ("name", Export.String name);
          ("trace", Export.String trace);
          ("iters", Export.Int iters);
          ("events", Export.Int !events);
          ("seconds", Export.Float seconds);
          ("events_per_sec", Export.Float events_per_sec);
          ("bytes_per_event", Export.Float bytes_per_event);
          ("minor_gc_per_1k_events", Export.Float minor_per_kevent);
        ] )
  in
  (* Raw engine churn: schedule/pop only, no protocol on top. *)
  let churn () =
    let e = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
    for i = 1 to 10_000 do
      ignore
        (Engine.schedule e
           ~rank:(if i land 1 = 0 then Engine.Delivery else Engine.Timer)
           ~delay:(Vtime.of_int ((i mod 97) + 1))
           ~label:(Label.Static "churn") ignore)
    done;
    Engine.run e;
    Engine.events_run e
  in
  (* The paper's protocols under a mid-W1 partition that heals 3T
     later, with full delay variability and n = 5.  The config is built
     ONCE, outside the measured loop: [Delay.full] and [Partition.make]
     allocate far more than a whole trace-off run, and rebuilding them
     per iteration would drown the engine in harness noise. *)
  let protocol_config trace_enabled =
    {
      (base_config ~n:5 ()) with
      Runner.partition =
        partition ~heals_after:(t 3) ~g2:[ 4; 5 ] ~at:2100 ~n:5 ();
      delay = Delay.full ~t_max:t_unit;
      trace_enabled;
    }
  in
  let protocol_off = protocol_config false in
  let protocol_on = protocol_config true in
  let protocol_run protocol config () =
    (Runner.run protocol config).Runner.events_run
  in
  (* Cluster steady state: many concurrent transactions, watchdogs,
     scheduler pump — the long-running workload from PR 1. *)
  let module Cluster = Commit_cluster in
  let cluster_config trace_enabled =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = Vtime.of_int (t 100);
      drain = Vtime.of_int (t 30);
      load = 40;
      bucket = Vtime.of_int (t 25);
      trace_enabled;
    }
  in
  let cluster_off = cluster_config false in
  let cluster_on = cluster_config true in
  let cluster_run config () =
    (Cluster.Runtime.run config).Cluster.Runtime.events_run
  in
  (* Explicit lets: list literals evaluate right-to-left, which would
     print the rows in reverse. *)
  let ev1, s1 =
    measure ~name:"engine-churn" ~trace:"off" ~iters:(scale 200) (fun () ->
        churn ())
  in
  ignore ev1;
  let off2, s2 =
    measure ~name:"3pc-partition" ~trace:"off" ~iters:(scale 2000)
      (protocol_run (module Three_phase) protocol_off)
  in
  let on3, s3 =
    measure ~name:"3pc-partition" ~trace:"on" ~iters:(scale 2000)
      (protocol_run (module Three_phase) protocol_on)
  in
  let off4, s4 =
    measure ~name:"termination-partition" ~trace:"off" ~iters:(scale 2000)
      (protocol_run (module Termination.Static) protocol_off)
  in
  let on5, s5 =
    measure ~name:"termination-partition" ~trace:"on" ~iters:(scale 2000)
      (protocol_run (module Termination.Static) protocol_on)
  in
  let off6, s6 =
    measure ~name:"cluster-steady" ~trace:"off" ~iters:(scale 20)
      (cluster_run cluster_off)
  in
  let on7, s7 =
    measure ~name:"cluster-steady" ~trace:"on" ~iters:(scale 20)
      (cluster_run cluster_on)
  in
  let scenarios = [ s1; s2; s3; s4; s5; s6; s7 ] in
  (* One number per paired scenario: trace-on throughput as a fraction
     of trace-off (1.0 = tracing is free).  This is the trajectory the
     CI overhead gate watches. *)
  let ratios =
    [
      ("3pc-partition", on3 /. off2);
      ("termination-partition", on5 /. off4);
      ("cluster-steady", on7 /. off6);
    ]
  in
  List.iter
    (fun (name, r) -> row "  %-24s trace_overhead_ratio %5.2f@." name r)
    ratios;
  let bench_json =
    Export.Obj
      [
        ("smoke", Export.Bool smoke);
        ("t_unit", Export.Int (Vtime.to_int t_unit));
        ("recommended_domains", Export.Int (Domain.recommended_domain_count ()));
        ("scenarios", Export.List scenarios);
        ( "trace_overhead_ratio",
          Export.Obj (List.map (fun (n, r) -> (n, Export.Float r)) ratios) );
      ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Export.to_string bench_json);
  output_string oc "\n";
  close_out oc;
  row "  wrote BENCH_engine.json@."

(* ------------------------------------------------------------------ *)
(* Span-recording overhead (BENCH_obs.json)                            *)
(* ------------------------------------------------------------------ *)

(* The obs recorder follows the trace ring's discipline: a cached
   enabled flag, zero allocation on the off path.  This section prices
   both sides of that claim — the obs-absent and obs-disabled variants
   must agree on bytes/event (the hot paths are the same closures), and
   the obs-on variants show what recording every span and flow costs.
   A fresh recorder per run is part of the measured on-cost: that is
   what `tp_sim spans` pays. *)

let obs_bench ~smoke () =
  section
    (Printf.sprintf "Obs — span-recording cost per event%s"
       (if smoke then " (smoke mode)" else ""));
  let scale n = if smoke then max 1 (n / 20) else n in
  (* Returns (json, events_per_sec): the telemetry section below gates
     on throughput ratios between legs. *)
  let measure ~name ~obs ~iters run_once =
    ignore (run_once ());
    Gc.full_major ();
    let bytes0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let events = ref 0 in
    for _ = 1 to iters do
      events := !events + run_once ()
    done;
    let seconds = Unix.gettimeofday () -. t0 in
    let bytes1 = Gc.allocated_bytes () in
    let ev = float_of_int !events in
    let events_per_sec = ev /. seconds in
    let bytes_per_event = (bytes1 -. bytes0) /. ev in
    row "  %-24s obs=%-14s %10.0f ev/s %8.1f B/ev@." name obs events_per_sec
      bytes_per_event;
    ( Export.Obj
        [
          ("name", Export.String name);
          ("obs", Export.String obs);
          ("iters", Export.Int iters);
          ("events", Export.Int !events);
          ("seconds", Export.Float seconds);
          ("events_per_sec", Export.Float events_per_sec);
          ("bytes_per_event", Export.Float bytes_per_event);
        ],
      events_per_sec )
  in
  let protocol_config =
    {
      (base_config ~n:5 ()) with
      Runner.partition =
        partition ~heals_after:(t 3) ~g2:[ 4; 5 ] ~at:2100 ~n:5 ();
      delay = Delay.full ~t_max:t_unit;
    }
  in
  let module Cluster = Commit_cluster in
  let cluster_config =
    {
      (Cluster.Runtime.default_config ()) with
      Cluster.Runtime.duration = Vtime.of_int (t 100);
      drain = Vtime.of_int (t 30);
      load = 40;
      bucket = Vtime.of_int (t 25);
    }
  in
  let s1 =
    measure ~name:"termination-partition" ~obs:"absent" ~iters:(scale 2000)
      (fun () ->
        (Runner.run (module Termination.Static) protocol_config)
          .Runner.events_run)
  in
  let s2 =
    measure ~name:"termination-partition" ~obs:"disabled" ~iters:(scale 2000)
      (fun () ->
        (Runner.run ~obs:Obs.disabled (module Termination.Static)
           protocol_config)
          .Runner.events_run)
  in
  let s3 =
    measure ~name:"termination-partition" ~obs:"on" ~iters:(scale 2000)
      (fun () ->
        (Runner.run ~obs:(Obs.create ()) (module Termination.Static)
           protocol_config)
          .Runner.events_run)
  in
  let s4 =
    measure ~name:"cluster-steady" ~obs:"absent" ~iters:(scale 20) (fun () ->
        (Cluster.Runtime.run cluster_config).Cluster.Runtime.events_run)
  in
  let s5 =
    measure ~name:"cluster-steady" ~obs:"disabled" ~iters:(scale 20) (fun () ->
        (Cluster.Runtime.run ~obs:Obs.disabled cluster_config)
          .Cluster.Runtime.events_run)
  in
  let s6 =
    measure ~name:"cluster-steady" ~obs:"on" ~iters:(scale 20) (fun () ->
        (Cluster.Runtime.run ~obs:(Obs.create ()) cluster_config)
          .Cluster.Runtime.events_run)
  in
  (* Telemetry overhead: the same cluster scenario with each telemetry
     feature switched on, priced against the plain (obs-absent,
     telemetry-off) s4 leg.  The span->histogram bridge is active
     whenever obs is on, so s6/s4 is the bridge gate the CI smoke
     enforces (>= 0.5, i.e. less than 2x slowdown). *)
  section "Telemetry — windowed snapshots, span bridge, profiler";
  let snapshot_config =
    {
      cluster_config with
      Cluster.Runtime.snapshot_every = Some (Vtime.of_int (t 25));
    }
  in
  let s7 =
    measure ~name:"cluster-steady" ~obs:"absent+snaps" ~iters:(scale 20)
      (fun () ->
        (Cluster.Runtime.run snapshot_config).Cluster.Runtime.events_run)
  in
  let s8 =
    measure ~name:"cluster-steady" ~obs:"on+snaps" ~iters:(scale 20)
      (fun () ->
        (Cluster.Runtime.run ~obs:(Obs.create ()) snapshot_config)
          .Cluster.Runtime.events_run)
  in
  let profile_config =
    { cluster_config with Cluster.Runtime.profile = true }
  in
  let s9 =
    measure ~name:"cluster-steady" ~obs:"absent+profile" ~iters:(scale 20)
      (fun () ->
        (Cluster.Runtime.run profile_config).Cluster.Runtime.events_run)
  in
  (* The bridge in isolation: record span pairs, then stream them into
     per-name histograms.  The cluster legs above can't price the
     bridge — there the obs *recording* (PR 8 machinery) dominates —
     so the acceptance gate lives here: draining every span through
     the bridge must keep >= 50% of record-only throughput, i.e. the
     enabled bridge costs < 2x the bridge-off span path. *)
  let spans_per_round = if smoke then 20_000 else 100_000 in
  let emit_spans obs =
    for i = 1 to spans_per_round do
      Obs.span_begin obs ~at:(Vtime.of_int i) ~site:1 ~tid:(i land 7)
        ~cat:"proto" "phase";
      Obs.span_end obs ~at:(Vtime.of_int (i + 3)) ~site:1 ~tid:(i land 7)
    done;
    2 * spans_per_round
  in
  let s10 =
    measure ~name:"span-bridge" ~obs:"record-only" ~iters:(scale 100)
      (fun () -> emit_spans (Obs.create ()))
  in
  let s11 =
    measure ~name:"span-bridge" ~obs:"record+drain" ~iters:(scale 100)
      (fun () ->
        let obs = Obs.create () in
        let n = emit_spans obs in
        let bridge = Cluster.Span_bridge.create obs in
        let metrics = Cluster.Metrics.create ~t_unit () in
        Cluster.Span_bridge.flush bridge metrics;
        n)
  in
  let ratio over under = if under > 0. then over /. under else 0. in
  let bridge_overhead_ratio = ratio (snd s11) (snd s10) in
  let span_record_ratio = ratio (snd s6) (snd s4) in
  let snapshot_overhead_ratio = ratio (snd s7) (snd s4) in
  let full_telemetry_ratio = ratio (snd s8) (snd s4) in
  let profile_overhead_ratio = ratio (snd s9) (snd s4) in
  row "  span bridge keeps %.0f%% of record-only throughput (gate: >= 50%%)@."
    (100. *. bridge_overhead_ratio);
  row "  vs the trace-off cluster: spans %.0f%%; snapshots %.0f%%; \
       snapshots+obs %.0f%%; profiler %.0f%%@."
    (100. *. span_record_ratio)
    (100. *. snapshot_overhead_ratio)
    (100. *. full_telemetry_ratio)
    (100. *. profile_overhead_ratio);
  (* One profiled run's wall-clock attribution, for the record.  The
     numbers are host-dependent by design — they live only here and on
     stderr, never in any deterministic surface. *)
  let profile_json =
    match (Cluster.Runtime.run profile_config).Cluster.Runtime.profile with
    | None -> Export.Null
    | Some r ->
        Export.Obj
          [
            ("total_seconds", Export.Float r.Prof.total_seconds);
            ( "buckets",
              Export.Obj
                (List.map
                   (fun row ->
                     ( row.Prof.row_bucket,
                       Export.Obj
                         [
                           ("seconds", Export.Float row.Prof.row_seconds);
                           ("entries", Export.Int row.Prof.row_entries);
                         ] ))
                   r.Prof.rows) );
          ]
  in
  let scenarios =
    List.map fst [ s1; s2; s3; s4; s5; s6; s7; s8; s9; s10; s11 ]
  in
  let bench_json =
    Export.Obj
      [
        ("smoke", Export.Bool smoke);
        ("t_unit", Export.Int (Vtime.to_int t_unit));
        ("scenarios", Export.List scenarios);
        ( "telemetry",
          Export.Obj
            [
              ("bridge_overhead_ratio", Export.Float bridge_overhead_ratio);
              ("span_record_ratio", Export.Float span_record_ratio);
              ("snapshot_overhead_ratio", Export.Float snapshot_overhead_ratio);
              ("full_telemetry_ratio", Export.Float full_telemetry_ratio);
              ("profile_overhead_ratio", Export.Float profile_overhead_ratio);
              ("profile", profile_json);
            ] );
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Export.to_string bench_json);
  output_string oc "\n";
  close_out oc;
  row "  wrote BENCH_obs.json@.";
  row "  -> absent vs disabled is the PR's regression gate: same B/ev@."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the simulator                          *)
(* ------------------------------------------------------------------ *)

let microbenchmarks () =
  section "Bechamel micro-benchmarks (simulator cost per operation)";
  let failure_free protocol () =
    ignore (Runner.run protocol (base_config ~n:3 ()))
  in
  let partitioned protocol () =
    let config =
      {
        (base_config ~n:3 ()) with
        Runner.partition = partition ~g2:[ 3 ] ~at:2100 ~n:3 ();
        delay = Delay.full ~t_max:t_unit;
      }
    in
    ignore (Runner.run protocol config)
  in
  let engine_churn () =
    let e = Engine.create ~trace:(Trace.create ~enabled:false ()) () in
    for i = 1 to 1000 do
      ignore
        (Engine.schedule e ~delay:(Vtime.of_int ((i mod 97) + 1)) ~label:(Label.Static "x")
           ignore)
    done;
    Engine.run e
  in
  let fsa_analyze () =
    ignore (Commit_fsa.Analysis.analyze Commit_fsa.Catalog.three_phase ~n:3)
  in
  let bank () =
    let module Tm = Commit_db.Tm in
    let module Workload = Commit_db.Workload in
    let w =
      Workload.bank_transfers ~n:3 ~pairs:4 ~balance:100 ~amount:5
        ~spacing:(Vtime.of_int 6000) ~seed:7L
    in
    let config =
      {
        (Tm.default_config ~protocol:(module Termination.Static) ()) with
        Tm.initial = w.Workload.initial;
      }
    in
    ignore (Tm.run config w.Workload.txns)
  in
  let tests =
    [
      Test.make ~name:"run/2pc-clean"
        (Staged.stage (failure_free (module Two_phase)));
      Test.make ~name:"run/3pc-clean"
        (Staged.stage (failure_free (module Three_phase)));
      Test.make ~name:"run/termination-clean"
        (Staged.stage (failure_free (module Termination.Static)));
      Test.make ~name:"run/termination-partitioned"
        (Staged.stage (partitioned (module Termination.Static)));
      Test.make ~name:"run/quorum-partitioned"
        (Staged.stage (partitioned (module Quorum)));
      Test.make ~name:"engine/1k-events" (Staged.stage engine_churn);
      Test.make ~name:"fsa/analyze-3pc-n3" (Staged.stage fsa_analyze);
      Test.make ~name:"db/bank-4-transfers" (Staged.stage bank);
    ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.3) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"sim" tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some [ e ] -> e
          | Some _ | None -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      row "  %-32s %12.0f ns/run (%.3f ms)@." name ns (ns /. 1e6))
    rows

let () =
  Format.printf
    "Reproduction harness — Huang & Li, \"A Termination Protocol for Simple@.";
  Format.printf
    "Network Partitioning in Distributed Database Systems\", ICDE 1987.@.";
  Format.printf "T = %d ticks; grids are exhaustive over cuts x instants x@."
    (t 1);
  Format.printf "delay models x seeds (see Scenario.default_grid).@.";
  let smoke = has_flag "--smoke" in
  if has_flag "--engine-only" then engine_bench ~smoke ()
  else if has_flag "--obs-overhead" || has_flag "--telemetry-overhead" then
    obs_bench ~smoke ()
  else if has_flag "--paxos-only" then paxos_bench ~smoke ()
  else if has_flag "--sweep-only" then parallel_sweeps ~smoke ()
  else if has_flag "--soak-only" then soak_bench ~smoke ()
  else begin
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  window_ablation ();
  sec6 ();
  thm9 ();
  lemma3 ();
  thm10 ();
  multi_partitioning ();
  assumption2 ();
  ref4 ();
  paxos_bench ~smoke ();
  sec7 ();
  db_cost ();
  latency_distribution ();
  scalability ();
  cluster_throughput ();
  parallel_sweeps ~smoke ();
  soak_bench ~smoke ();
  engine_bench ~smoke ();
  obs_bench ~smoke ();
  microbenchmarks ()
  end;
  Format.printf "@.done.@."
