(** Commit protocols as communicating finite-state automata.

    This is the paper's formal model (Section 2, after Skeen &
    Stonebraker): transaction execution at each site is an FSA; the
    network is a common input/output tape; a global transition is one
    local transition that reads messages addressed to the site, writes
    messages, and moves to the next local state.

    Protocols here are {e master/slave} protocols described by two role
    machines; instantiating a protocol for [n] sites gives one master and
    [n-1] identical slaves, which covers every protocol in the paper
    (2PC, extended 2PC, 3PC, quorum 3PC). *)

type role = Master | Slave

val pp_role : Format.formatter -> role -> unit

(** Classification of local states.  [Commit]/[Abort] are the final
    states; a site occupying one has decided. *)
type state_kind = Initial | Intermediate | Commit | Abort

type state = { id : string; kind : state_kind }

(** What a transition waits for. *)
type guard =
  | Start
      (** The user's "request" arriving at the master; enabled once, in
          the master's initial state. *)
  | Recv of string
      (** One message with this tag, from any site. *)
  | Recv_all_votes of string
      (** Master only: one message with this tag from {e every} slave
          (the "all yes" collection step, reading a string of messages
          in a single transition, as Skeen's model allows). *)

type action =
  | Send_slaves of string  (** master broadcasts to all slaves *)
  | Send_master of string  (** slave sends to the master *)

type transition = {
  source : string;
  guard : guard;
  target : string;
  actions : action list;
  votes_yes : bool;
      (** Does taking this transition constitute this site's yes vote?
          (Used for the committable/noncommittable classification.) *)
}

type machine = {
  role : role;
  initial : string;
  states : state list;
  transitions : transition list;
}

type t = { name : string; master : machine; slave : machine }

val validate : t -> (unit, string) result
(** Structural checks: distinct state ids, transitions reference known
    states, the initial state exists, [Start] only in the master's
    initial state, actions match the role. *)

val validate_exn : t -> t
(** @raise Invalid_argument with the first problem found. *)

val state_of : machine -> string -> state
(** @raise Not_found if the id is unknown. *)

val kind_of : machine -> string -> state_kind

val is_final : machine -> string -> bool

val machine_of_role : t -> role -> machine

val receivable_tags : machine -> string -> string list
(** Tags some transition out of this state can read. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump of both role machines. *)

val to_dot : t -> string
(** The protocol as a Graphviz digraph, one cluster per role — the
    repository's rendering of the paper's protocol figures (Figs. 1, 2,
    3, 8).  Commit states are drawn as double circles, abort states as
    double octagons; edge labels read ["guard / actions"]. *)
