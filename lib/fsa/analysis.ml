open Machine

type site_state = role * string

let pp_site_state fmt (role, id) =
  Format.fprintf fmt "%a:%s" pp_role role id

let compare_site_state (r1, s1) (r2, s2) =
  let c = Stdlib.compare r1 r2 in
  if c <> 0 then c else String.compare s1 s2

module SS = Set.Make (struct
  type t = site_state

  let compare = compare_site_state
end)

module SS_map = Map.Make (struct
  type t = site_state

  let compare = compare_site_state
end)

type t = {
  protocol : Machine.t;
  n : int;
  globals : Explore.global list;
  concurrency : SS.t SS_map.t;
  occupied : SS.t;  (* states seen in some reachable global *)
  not_committable : SS.t;  (* occupied with not-all-voted *)
}

let all_states protocol =
  List.map (fun s -> (Master, s.id)) protocol.master.states
  @ List.map (fun s -> (Slave, s.id)) protocol.slave.states

let role_of_site site = if site = 1 then Master else Slave

let analyze ?max_states protocol ~n =
  let globals = Explore.reachable ?max_states protocol ~n in
  let concurrency = ref SS_map.empty in
  let occupied = ref SS.empty in
  let not_committable = ref SS.empty in
  let note_concurrent a b =
    let add key v map =
      SS_map.update key
        (function None -> Some (SS.singleton v) | Some set -> Some (SS.add v set))
        map
    in
    concurrency := add a b (add b a !concurrency)
  in
  List.iter
    (fun (g : Explore.global) ->
      let all_voted = Explore.all_voted g in
      for i = 1 to n do
        let si = (role_of_site i, g.locals.(i - 1)) in
        occupied := SS.add si !occupied;
        if not all_voted then not_committable := SS.add si !not_committable;
        for j = i + 1 to n do
          let sj = (role_of_site j, g.locals.(j - 1)) in
          note_concurrent si sj
        done
      done)
    globals;
  {
    protocol;
    n;
    globals;
    concurrency = !concurrency;
    occupied = !occupied;
    not_committable = !not_committable;
  }

let protocol t = t.protocol

let n_sites t = t.n

let reachable_count t = List.length t.globals

let concurrency_set t s =
  match SS_map.find_opt s t.concurrency with
  | None -> []
  | Some set -> SS.elements set

let kind_of_site_state t (role, id) =
  kind_of (machine_of_role t.protocol role) id

let concurrent_kinds t s =
  concurrency_set t s
  |> List.map (kind_of_site_state t)
  |> List.sort_uniq Stdlib.compare

let sender_set t s =
  let (role, id) = s in
  let machine = machine_of_role t.protocol role in
  let receivable = receivable_tags machine id in
  let senders_of other_machine to_this_role =
    List.filter_map
      (fun (tr : transition) ->
        let sends_to_us =
          List.exists
            (fun a ->
              match (a, to_this_role) with
              | Send_slaves tag, Slave -> List.mem tag receivable
              | Send_master tag, Master -> List.mem tag receivable
              | (Send_slaves _ | Send_master _), _ -> false)
            tr.actions
        in
        if sends_to_us then Some (other_machine.role, tr.source) else None)
      other_machine.transitions
  in
  (* A slave receives from the master; the master receives from slaves.
     With n >= 3, slaves may also receive from other slaves only in the
     termination protocol, which is not an FSA-level construct. *)
  let candidates =
    match role with
    | Slave -> senders_of t.protocol.master Slave
    | Master -> senders_of t.protocol.slave Master
  in
  SS.elements (SS.of_list candidates)

let committable t s =
  not (SS.mem s t.not_committable)

let unreachable_states t =
  List.filter (fun s -> not (SS.mem s t.occupied)) (all_states t.protocol)

let lemma1_violations t =
  List.filter
    (fun s ->
      let kinds = concurrent_kinds t s in
      List.mem Commit kinds && List.mem Abort kinds)
    (all_states t.protocol)

let lemma2_violations t =
  List.filter
    (fun s ->
      SS.mem s t.occupied
      && (not (committable t s))
      && List.mem Commit (concurrent_kinds t s))
    (all_states t.protocol)

let satisfies_lemmas t =
  lemma1_violations t = [] && lemma2_violations t = []

let terminal_outcomes t =
  List.filter_map
    (fun (g : Explore.global) ->
      if not (Explore.is_terminal t.protocol g) then None
      else
        let kinds =
          Array.to_list g.locals
          |> List.mapi (fun i id ->
                 kind_of (machine_of_role t.protocol (role_of_site (i + 1))) id)
        in
        let commits = List.exists (( = ) Commit) kinds in
        let aborts = List.exists (( = ) Abort) kinds in
        match (commits, aborts) with
        | true, true -> Some `Mixed
        | true, false -> Some `All_commit
        | false, true -> Some `All_abort
        | false, false -> None)
    t.globals
  |> List.sort_uniq Stdlib.compare

let pp_report fmt t =
  Format.fprintf fmt "protocol %s with n=%d: %d reachable global states@."
    t.protocol.name t.n (reachable_count t);
  List.iter
    (fun s ->
      if SS.mem s t.occupied then
        Format.fprintf fmt "  C(%a) = {%a}  [%s]@." pp_site_state s
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
             pp_site_state)
          (concurrency_set t s)
          (if committable t s then "committable" else "noncommittable"))
    (all_states t.protocol);
  (match lemma1_violations t with
  | [] -> Format.fprintf fmt "  Lemma 1: satisfied@."
  | vs ->
      Format.fprintf fmt "  Lemma 1 violated at: %a@."
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_site_state)
        vs);
  match lemma2_violations t with
  | [] -> Format.fprintf fmt "  Lemma 2: satisfied@."
  | vs ->
      Format.fprintf fmt "  Lemma 2 violated at: %a@."
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_site_state)
        vs
