(** Static analyses from the paper: concurrency sets, sender sets,
    committability, and the Lemma 1 / Lemma 2 structural conditions.

    Definitions (Section 2):
    - {b Concurrency set} C(s): all local states potentially concurrent
      with s in the (failure-free) execution of the protocol.
    - {b Sender set} S(s): the states from which some transition sends a
      message receivable in s.
    - A local state is {b committable} if its occupancy by any site
      implies every site has voted yes; otherwise {b noncommittable}.

    Lemma 1: resilience to optimistic multisite simple partitioning
    requires no local state whose concurrency set contains both a commit
    and an abort state.  Lemma 2: ... no noncommittable state whose
    concurrency set contains a commit state. *)

type site_state = Machine.role * string

val pp_site_state : Format.formatter -> site_state -> unit

val compare_site_state : site_state -> site_state -> int

type t

val analyze : ?max_states:int -> Machine.t -> n:int -> t
(** Explores the global state space for [n] sites and computes all
    analyses.  [n >= 2]. *)

val protocol : t -> Machine.t

val n_sites : t -> int

val reachable_count : t -> int

val concurrency_set : t -> site_state -> site_state list
(** C(s), sorted.  States of the same role at other sites count:
    with n >= 3 two slaves can occupy slave states simultaneously. *)

val concurrent_kinds : t -> site_state -> Machine.state_kind list
(** The kinds present in C(s). *)

val sender_set : t -> site_state -> site_state list
(** S(s) — static, derived from the transition structure. *)

val committable : t -> site_state -> bool
(** True iff every reachable global state occupying s has all sites
    voted yes.  (States never occupied in any reachable global state are
    vacuously committable and are reported by {!unreachable_states}.) *)

val unreachable_states : t -> site_state list

val lemma1_violations : t -> site_state list
(** States with both a commit and an abort in their concurrency set. *)

val lemma2_violations : t -> site_state list
(** Noncommittable states with a commit in their concurrency set. *)

val satisfies_lemmas : t -> bool
(** No violations of either lemma — the Theorem 10 precondition. *)

val terminal_outcomes : t -> [ `All_commit | `All_abort | `Mixed ] list
(** Outcome classes over terminal reachable global states; a correct
    commit protocol never produces [`Mixed] in failure-free execution. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable summary (used by the fig2/fig3/thm10 benches). *)
