(** Global-state reachability for a protocol FSA.

    A global state is the paper's pair: the global state vector (one
    local state per site) plus the outstanding messages in the network.
    We additionally track which sites have voted yes, to support the
    committable/noncommittable classification.

    Exploration is over {e failure-free} executions (every message is
    eventually deliverable, sites never fail): this is exactly the
    execution set over which the paper defines concurrency sets. *)

type global = {
  locals : string array;  (** [locals.(i-1)] is the local state of site i. *)
  inflight : (int * int * string) list;
      (** Outstanding messages [(src, dst, tag)], kept sorted (canonical). *)
  voted : bool array;  (** [voted.(i-1)]: site i has voted yes. *)
  started : bool;  (** The master has received the user's request. *)
}

val compare_global : global -> global -> int

val initial : Machine.t -> n:int -> global

val successors : Machine.t -> n:int -> global -> global list
(** All one-transition successors (each possible local transition on
    each possible enabling message choice). *)

val reachable : ?max_states:int -> Machine.t -> n:int -> global list
(** Breadth-first closure from {!initial}.  @raise Failure if more than
    [max_states] (default 200_000) distinct global states appear —
    commit protocols are tiny; blowing the bound indicates a modelling
    bug, not a big protocol. *)

val is_terminal : Machine.t -> global -> bool
(** Every site is in a final (commit/abort) state. *)

val all_voted : global -> bool

val pp_global : Format.formatter -> global -> unit
