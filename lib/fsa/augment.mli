(** Rule(a)/Rule(b) augmentation (Skeen & Stonebraker, reviewed in
    Section 2 of the paper).

    Rule(a): a waiting state whose concurrency set contains a commit
    state gets a timeout transition to commit; otherwise to abort.

    Rule(b): a waiting state s, on receiving an undeliverable message,
    follows the timeout assignment of the states in its sender set S(s)
    — the peers it was waiting on will time out, so s must match them.
    When S(s) mixes senders whose timeout assignments disagree, the rule
    is {e ambiguous}; the paper's Section 3 observations and Lemma 3 show
    this is where the rules stop being sufficient in the multisite case.

    These two rules are proved necessary and sufficient for {e two-site}
    simple partitioning with return of messages; applying them for
    n >= 3 produces the broken protocols our simulation benches then
    exhibit as counterexamples. *)

type outcome = To_commit | To_abort

val pp_outcome : Format.formatter -> outcome -> unit

type assignment = {
  state : Analysis.site_state;
  timeout : outcome;  (** Rule(a) *)
  on_undeliverable : outcome option;
      (** Rule(b); [None] when the sender set's timeout outcomes
          disagree. *)
  sender_outcomes : (Analysis.site_state * outcome option) list;
      (** The evidence for Rule(b): each sender state and its own
          timeout assignment (None for final sender states, which never
          time out). *)
}

type t = {
  analysis : Analysis.t;
  assignments : assignment list;  (** one per occupied waiting state *)
}

val apply_rules : Analysis.t -> t

val assignment_for : t -> Analysis.site_state -> assignment option

val ambiguous : t -> assignment list
(** Assignments where Rule(b) could not decide. *)

val pp : Format.formatter -> t -> unit
