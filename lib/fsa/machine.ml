type role = Master | Slave

let pp_role fmt = function
  | Master -> Format.pp_print_string fmt "master"
  | Slave -> Format.pp_print_string fmt "slave"

type state_kind = Initial | Intermediate | Commit | Abort

type state = { id : string; kind : state_kind }

type guard = Start | Recv of string | Recv_all_votes of string

type action = Send_slaves of string | Send_master of string

type transition = {
  source : string;
  guard : guard;
  target : string;
  actions : action list;
  votes_yes : bool;
}

type machine = {
  role : role;
  initial : string;
  states : state list;
  transitions : transition list;
}

type t = { name : string; master : machine; slave : machine }

let state_of machine id = List.find (fun s -> String.equal s.id id) machine.states

let kind_of machine id = (state_of machine id).kind

let is_final machine id =
  match kind_of machine id with
  | Commit | Abort -> true
  | Initial | Intermediate -> false

let machine_of_role t = function Master -> t.master | Slave -> t.slave

let receivable_tags machine source =
  List.filter_map
    (fun tr ->
      if not (String.equal tr.source source) then None
      else
        match tr.guard with
        | Recv tag | Recv_all_votes tag -> Some tag
        | Start -> None)
    machine.transitions

let validate_machine m =
  let ids = List.map (fun s -> s.id) m.states in
  let dup =
    List.find_opt (fun id -> List.length (List.filter (String.equal id) ids) > 1) ids
  in
  match dup with
  | Some id -> Error (Printf.sprintf "duplicate state id %S" id)
  | None ->
      if not (List.mem m.initial ids) then
        Error (Printf.sprintf "initial state %S not declared" m.initial)
      else
        let check_transition tr =
          if not (List.mem tr.source ids) then
            Some (Printf.sprintf "transition from unknown state %S" tr.source)
          else if not (List.mem tr.target ids) then
            Some (Printf.sprintf "transition to unknown state %S" tr.target)
          else
            match (tr.guard, m.role) with
            | Start, Slave -> Some "Start guard on a slave transition"
            | Start, Master when not (String.equal tr.source m.initial) ->
                Some "Start guard outside the master's initial state"
            | Recv_all_votes _, Slave ->
                Some "Recv_all_votes guard on a slave transition"
            | (Start | Recv _ | Recv_all_votes _), _ -> (
                let bad_action =
                  List.find_opt
                    (fun a ->
                      match (a, m.role) with
                      | Send_slaves _, Slave -> true
                      | Send_master _, Master -> true
                      | (Send_slaves _ | Send_master _), _ -> false)
                    tr.actions
                in
                match bad_action with
                | Some _ -> Some "action direction does not match the role"
                | None -> None)
        in
        let rec first_error = function
          | [] -> Ok ()
          | tr :: rest -> (
              match check_transition tr with
              | Some e -> Error e
              | None -> first_error rest)
        in
        first_error m.transitions

let validate t =
  match validate_machine t.master with
  | Error e -> Error (Printf.sprintf "%s: master machine: %s" t.name e)
  | Ok () -> (
      match t.master.role with
      | Slave -> Error (Printf.sprintf "%s: master machine has role Slave" t.name)
      | Master -> (
          match validate_machine t.slave with
          | Error e -> Error (Printf.sprintf "%s: slave machine: %s" t.name e)
          | Ok () -> (
              match t.slave.role with
              | Master ->
                  Error (Printf.sprintf "%s: slave machine has role Master" t.name)
              | Slave -> Ok ())))

let validate_exn t =
  match validate t with Ok () -> t | Error e -> invalid_arg e

let pp_kind fmt = function
  | Initial -> Format.pp_print_string fmt "initial"
  | Intermediate -> Format.pp_print_string fmt "intermediate"
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort -> Format.pp_print_string fmt "abort"

let pp_guard fmt = function
  | Start -> Format.pp_print_string fmt "on request"
  | Recv tag -> Format.fprintf fmt "recv %s" tag
  | Recv_all_votes tag -> Format.fprintf fmt "recv %s from every slave" tag

let pp_action fmt = function
  | Send_slaves tag -> Format.fprintf fmt "send %s to slaves" tag
  | Send_master tag -> Format.fprintf fmt "send %s to master" tag

let pp_machine fmt m =
  Format.fprintf fmt "  %a machine (initial %s):@." pp_role m.role m.initial;
  List.iter
    (fun s -> Format.fprintf fmt "    state %-6s [%a]@." s.id pp_kind s.kind)
    m.states;
  List.iter
    (fun tr ->
      Format.fprintf fmt "    %-6s --%a--> %-6s%s%a@." tr.source pp_guard
        tr.guard tr.target
        (if tr.votes_yes then " (votes yes)" else "")
        (fun fmt actions ->
          List.iter (fun a -> Format.fprintf fmt " ; %a" pp_action a) actions)
        tr.actions)
    m.transitions

let pp fmt t =
  Format.fprintf fmt "protocol %s:@.%a%a" t.name pp_machine t.master pp_machine
    t.slave

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let dot_machine buffer prefix m =
  let node id = Printf.sprintf "%s_%s" prefix id in
  Buffer.add_string buffer
    (Printf.sprintf "  subgraph cluster_%s {\n    label=\"%s\";\n" prefix prefix);
  List.iter
    (fun s ->
      let shape =
        match s.kind with
        | Commit -> "doublecircle"
        | Abort -> "doubleoctagon"
        | Initial -> "circle"
        | Intermediate -> "ellipse"
      in
      Buffer.add_string buffer
        (Printf.sprintf "    %s [label=\"%s\", shape=%s];\n" (node s.id)
           (dot_escape s.id) shape))
    m.states;
  List.iter
    (fun tr ->
      let guard =
        match tr.guard with
        | Start -> "request"
        | Recv tag -> tag
        | Recv_all_votes tag -> "all " ^ tag
      in
      let actions =
        String.concat ", "
          (List.map
             (function
               | Send_slaves tag -> "!" ^ tag
               | Send_master tag -> "!" ^ tag ^ "->m")
             tr.actions)
      in
      let label = if actions = "" then guard else guard ^ " / " ^ actions in
      Buffer.add_string buffer
        (Printf.sprintf "    %s -> %s [label=\"%s\"];\n" (node tr.source)
           (node tr.target) (dot_escape label)))
    m.transitions;
  Buffer.add_string buffer "  }\n"

let to_dot t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (Printf.sprintf "digraph \"%s\" {\n" (dot_escape t.name));
  Buffer.add_string buffer "  rankdir=TB;\n";
  dot_machine buffer "master" t.master;
  dot_machine buffer "slave" t.slave;
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
