open Machine

type global = {
  locals : string array;
  inflight : (int * int * string) list;
  voted : bool array;
  started : bool;
}

let compare_msg (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else String.compare a3 b3

let compare_global a b =
  let c = Stdlib.compare a.locals b.locals in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.voted b.voted in
    if c <> 0 then c
    else
      let c = Bool.compare a.started b.started in
      if c <> 0 then c else Stdlib.compare a.inflight b.inflight

module Global_set = Set.Make (struct
  type t = global

  let compare = compare_global
end)

let initial protocol ~n =
  if n < 2 then invalid_arg "Explore.initial: need at least two sites";
  {
    locals =
      Array.init n (fun i ->
          if i = 0 then protocol.master.initial else protocol.slave.initial);
    inflight = [];
    voted = Array.make n false;
    started = false;
  }

let machine_for protocol site = if site = 1 then protocol.master else protocol.slave

(* Remove exactly one occurrence of [msg] from a sorted multiset. *)
let remove_one msg inflight =
  let rec go = function
    | [] -> []
    | m :: rest -> if compare_msg m msg = 0 then rest else m :: go rest
  in
  go inflight

let add_messages ~n ~site actions inflight =
  let sends =
    List.concat_map
      (function
        | Send_slaves tag -> List.map (fun s -> (site, s, tag)) (List.init (n - 1) (fun i -> i + 2))
        | Send_master tag -> [ (site, 1, tag) ])
      actions
  in
  List.sort compare_msg (sends @ inflight)

let apply ~n global ~site ~(transition : transition) ~consumed =
  let locals = Array.copy global.locals in
  locals.(site - 1) <- transition.target;
  let voted = Array.copy global.voted in
  if transition.votes_yes then voted.(site - 1) <- true;
  let inflight = List.fold_left (fun acc m -> remove_one m acc) global.inflight consumed in
  let inflight = add_messages ~n ~site transition.actions inflight in
  { locals; inflight; voted; started = global.started || transition.guard = Start }

let pending_for global ~site ~tag =
  List.filter (fun (_, dst, t) -> dst = site && String.equal t tag) global.inflight

let successors protocol ~n global =
  let next = ref [] in
  let emit g = next := g :: !next in
  for site = 1 to n do
    let machine = machine_for protocol site in
    let here = global.locals.(site - 1) in
    List.iter
      (fun transition ->
        if String.equal transition.source here then
          match transition.guard with
          | Start ->
              if (not global.started) && site = 1 then
                emit (apply ~n global ~site ~transition ~consumed:[])
          | Recv tag ->
              (* One successor per distinct pending instance of the tag
                 addressed to this site (distinct senders give distinct
                 interleavings). *)
              let pending = pending_for global ~site ~tag in
              let seen = ref [] in
              List.iter
                (fun msg ->
                  if not (List.exists (fun m -> compare_msg m msg = 0) !seen)
                  then begin
                    seen := msg :: !seen;
                    emit (apply ~n global ~site ~transition ~consumed:[ msg ])
                  end)
                pending
          | Recv_all_votes tag ->
              if site = 1 then begin
                let votes =
                  List.filter_map
                    (fun slave ->
                      match pending_for global ~site:1 ~tag with
                      | msgs -> List.find_opt (fun (src, _, _) -> src = slave) msgs)
                    (List.init (n - 1) (fun i -> i + 2))
                in
                if List.length votes = n - 1 then
                  emit (apply ~n global ~site ~transition ~consumed:votes)
              end)
      machine.transitions
  done;
  !next

let reachable ?(max_states = 200_000) protocol ~n =
  let start = initial protocol ~n in
  let seen = ref (Global_set.singleton start) in
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    List.iter
      (fun g' ->
        if not (Global_set.mem g' !seen) then begin
          seen := Global_set.add g' !seen;
          if Global_set.cardinal !seen > max_states then
            failwith "Explore.reachable: state-space bound exceeded";
          Queue.add g' queue
        end)
      (successors protocol ~n g)
  done;
  Global_set.elements !seen

let is_terminal protocol global =
  let n = Array.length global.locals in
  let ok = ref true in
  for site = 1 to n do
    let machine = machine_for protocol site in
    if not (is_final machine global.locals.(site - 1)) then ok := false
  done;
  !ok

let all_voted global = Array.for_all Fun.id global.voted

let pp_global fmt g =
  Format.fprintf fmt "<%s | %s%s>"
    (String.concat "," (Array.to_list g.locals))
    (String.concat ","
       (List.map (fun (s, d, t) -> Printf.sprintf "%d->%d:%s" s d t) g.inflight))
    (if g.started then "" else " (not started)")
