open Machine

let st id kind = { id; kind }

let tr ?(votes_yes = false) source guard target actions =
  { source; guard; target; actions; votes_yes }

(* Fig. 1.  The master reaches c1/a1 at the moment it sends the command:
   two-phase commit has no acknowledgement phase. *)
let two_phase =
  validate_exn
    {
      name = "2pc";
      master =
        {
          role = Master;
          initial = "q1";
          states =
            [ st "q1" Initial; st "w1" Intermediate; st "c1" Commit; st "a1" Abort ];
          transitions =
            [
              tr "q1" Start "w1" [ Send_slaves "xact" ];
              tr ~votes_yes:true "w1" (Recv_all_votes "yes") "c1"
                [ Send_slaves "commit" ];
              tr "w1" (Recv "no") "a1" [ Send_slaves "abort" ];
            ];
        };
      slave =
        {
          role = Slave;
          initial = "q";
          states =
            [ st "q" Initial; st "w" Intermediate; st "c" Commit; st "a" Abort ];
          transitions =
            [
              tr ~votes_yes:true "q" (Recv "xact") "w" [ Send_master "yes" ];
              tr "q" (Recv "xact") "a" [ Send_master "no" ];
              tr "w" (Recv "commit") "c" [];
              tr "w" (Recv "abort") "a" [];
            ];
        };
    }

(* The two-phase skeleton with an acknowledgement phase.  The master
   commits only after every slave acknowledged the commit command; this
   is the shape whose Rule(a)/(b) augmentation is the extended protocol
   of Fig. 2 (see DESIGN.md for the reconstruction argument). *)
let extended_two_phase =
  validate_exn
    {
      name = "ext2pc";
      master =
        {
          role = Master;
          initial = "q1";
          states =
            [
              st "q1" Initial;
              st "w1" Intermediate;
              st "p1" Intermediate;
              st "c1" Commit;
              st "a1" Abort;
            ];
          transitions =
            [
              tr "q1" Start "w1" [ Send_slaves "xact" ];
              tr ~votes_yes:true "w1" (Recv_all_votes "yes") "p1"
                [ Send_slaves "commit" ];
              tr "w1" (Recv "no") "a1" [ Send_slaves "abort" ];
              tr "p1" (Recv_all_votes "ack") "c1" [];
            ];
        };
      slave =
        {
          role = Slave;
          initial = "q";
          states =
            [ st "q" Initial; st "w" Intermediate; st "c" Commit; st "a" Abort ];
          transitions =
            [
              tr ~votes_yes:true "q" (Recv "xact") "w" [ Send_master "yes" ];
              tr "q" (Recv "xact") "a" [ Send_master "no" ];
              tr "w" (Recv "commit") "c" [ Send_master "ack" ];
              tr "w" (Recv "abort") "a" [];
            ];
        };
    }

let three_phase_master =
  {
    role = Master;
    initial = "q1";
    states =
      [
        st "q1" Initial;
        st "w1" Intermediate;
        st "p1" Intermediate;
        st "c1" Commit;
        st "a1" Abort;
      ];
    transitions =
      [
        tr "q1" Start "w1" [ Send_slaves "xact" ];
        tr ~votes_yes:true "w1" (Recv_all_votes "yes") "p1"
          [ Send_slaves "prepare" ];
        tr "w1" (Recv "no") "a1" [ Send_slaves "abort" ];
        tr "p1" (Recv_all_votes "ack") "c1" [ Send_slaves "commit" ];
      ];
  }

let three_phase_slave_transitions =
  [
    tr ~votes_yes:true "q" (Recv "xact") "w" [ Send_master "yes" ];
    tr "q" (Recv "xact") "a" [ Send_master "no" ];
    tr "w" (Recv "prepare") "p" [ Send_master "ack" ];
    tr "w" (Recv "abort") "a" [];
    tr "p" (Recv "commit") "c" [];
    tr "p" (Recv "abort") "a" [];
  ]

let three_phase_slave_states =
  [
    st "q" Initial;
    st "w" Intermediate;
    st "p" Intermediate;
    st "c" Commit;
    st "a" Abort;
  ]

let three_phase =
  validate_exn
    {
      name = "3pc";
      master = three_phase_master;
      slave =
        {
          role = Slave;
          initial = "q";
          states = three_phase_slave_states;
          transitions = three_phase_slave_transitions;
        };
    }

(* Fig. 8: the only change is the slave transition w --commit--> c. *)
let modified_three_phase =
  validate_exn
    {
      name = "3pc-fig8";
      master = three_phase_master;
      slave =
        {
          role = Slave;
          initial = "q";
          states = three_phase_slave_states;
          transitions =
            three_phase_slave_transitions @ [ tr "w" (Recv "commit") "c" [] ];
        };
    }

(* Skeen's quorum-based commit has the same phase structure as 3PC at
   this level of abstraction (its novelty is the quorum termination
   rule, which is dynamic, not part of the failure-free FSA). *)
let quorum_three_phase =
  validate_exn
    {
      name = "quorum3pc";
      master = { three_phase_master with initial = "q1" };
      slave =
        {
          role = Slave;
          initial = "q";
          states = three_phase_slave_states;
          transitions = three_phase_slave_transitions;
        };
    }

(* Four-phase commit: an extra buffering round (pre-prepare/pre-ack)
   between the vote and the prepare.  Structurally it satisfies Lemma 1
   and Lemma 2 with "prepare" still the noncommittable-to-committable
   message m, so Theorem 10 applies — lib/core/theorem10.ml carries the
   substituted termination protocol. *)
let four_phase =
  validate_exn
    {
      name = "4pc";
      master =
        {
          role = Master;
          initial = "q1";
          states =
            [
              st "q1" Initial;
              st "w1" Intermediate;
              st "x1" Intermediate;
              st "p1" Intermediate;
              st "c1" Commit;
              st "a1" Abort;
            ];
          transitions =
            [
              tr "q1" Start "w1" [ Send_slaves "xact" ];
              tr ~votes_yes:true "w1" (Recv_all_votes "yes") "x1"
                [ Send_slaves "pre-prepare" ];
              tr "w1" (Recv "no") "a1" [ Send_slaves "abort" ];
              tr "x1" (Recv_all_votes "pre-ack") "p1" [ Send_slaves "prepare" ];
              tr "p1" (Recv_all_votes "ack") "c1" [ Send_slaves "commit" ];
            ];
        };
      slave =
        {
          role = Slave;
          initial = "q";
          states =
            [
              st "q" Initial;
              st "w" Intermediate;
              st "x" Intermediate;
              st "p" Intermediate;
              st "c" Commit;
              st "a" Abort;
            ];
          transitions =
            [
              tr ~votes_yes:true "q" (Recv "xact") "w" [ Send_master "yes" ];
              tr "q" (Recv "xact") "a" [ Send_master "no" ];
              tr "w" (Recv "pre-prepare") "x" [ Send_master "pre-ack" ];
              tr "w" (Recv "abort") "a" [];
              tr "x" (Recv "prepare") "p" [ Send_master "ack" ];
              tr "x" (Recv "abort") "a" [];
              (* the Fig. 8-style early-commit acceptances the
                 termination protocol needs *)
              tr "w" (Recv "commit") "c" [];
              tr "x" (Recv "commit") "c" [];
              tr "p" (Recv "commit") "c" [];
              tr "p" (Recv "abort") "a" [];
            ];
        };
    }

let all =
  [
    two_phase;
    extended_two_phase;
    three_phase;
    modified_three_phase;
    quorum_three_phase;
    four_phase;
  ]

let find name = List.find_opt (fun p -> String.equal p.name name) all
