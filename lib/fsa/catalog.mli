(** The protocols of the paper, as declarative FSAs.

    These definitions power the static analyses (concurrency sets,
    Lemma 1/2 checks, Rule(a)/(b) augmentation).  The executable, timed
    realisations live in [commit_protocols]/[commit_termination]. *)

val two_phase : Machine.t
(** Fig. 1.  Master: q1 -> w1 -> c1/a1.  Slave: q -> w -> c/a.  The master
    decides when it sends the commands. *)

val extended_two_phase : Machine.t
(** The commit-protocol skeleton underlying Fig. 2: two-phase commit
    with an acknowledgement phase (master states q1, w1, p1, c1, a1), the
    shape on which Rule(a)/Rule(b) augmentation yields the extended
    protocol of Skeen & Stonebraker.  The timeout/UD transitions
    themselves are derived by {!Augment.apply_rules}, not baked in. *)

val three_phase : Machine.t
(** Fig. 3.  Master: q1 -> w1 -> p1 -> c1 / a1.  Slave: q -> w -> p -> c,
    with aborts reachable from q (no vote), w. *)

val modified_three_phase : Machine.t
(** Fig. 8: three-phase commit plus the slave transition w -> c on
    receipt of a commit message, required by the termination protocol
    (Section 5.3, "a fly in the ointment"). *)

val quorum_three_phase : Machine.t
(** The quorum-commit skeleton (Skeen 1982, the paper's reference [5]):
    structurally a three-phase protocol — it satisfies Lemmas 1 and 2 —
    whose termination rule (not visible at this level) is quorum-based.
    Used for the Theorem 10 generalisation check. *)

val four_phase : Machine.t
(** Four-phase commit: vote, pre-prepare, prepare, commit.  Satisfies
    Lemma 1/2 with the prepare still being the message m of Theorem 10;
    the constructive generalisation in [Commit_termination.Theorem10]
    terminates it. *)

val all : Machine.t list
(** Every catalogued protocol, validated. *)

val find : string -> Machine.t option
(** Look up by {!Machine.t.name}. *)
