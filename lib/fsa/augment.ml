open Machine

type outcome = To_commit | To_abort

let pp_outcome fmt = function
  | To_commit -> Format.pp_print_string fmt "commit"
  | To_abort -> Format.pp_print_string fmt "abort"

type assignment = {
  state : Analysis.site_state;
  timeout : outcome;
  on_undeliverable : outcome option;
  sender_outcomes : (Analysis.site_state * outcome option) list;
}

type t = { analysis : Analysis.t; assignments : assignment list }

let is_waiting machine id =
  (not (is_final machine id)) && receivable_tags machine id <> []

let waiting_states analysis =
  let protocol = Analysis.protocol analysis in
  let of_machine machine =
    List.filter_map
      (fun s ->
        if is_waiting machine s.id then Some (machine.role, s.id) else None)
      machine.states
  in
  of_machine protocol.master @ of_machine protocol.slave

let rule_a analysis state =
  if List.mem Commit (Analysis.concurrent_kinds analysis state) then To_commit
  else To_abort

let apply_rules analysis =
  let waiting = waiting_states analysis in
  let timeout_of state =
    if List.exists (fun s -> Analysis.compare_site_state s state = 0) waiting
    then Some (rule_a analysis state)
    else None
  in
  let assignments =
    List.map
      (fun state ->
        let senders = Analysis.sender_set analysis state in
        let sender_outcomes =
          List.map (fun sender -> (sender, timeout_of sender)) senders
        in
        let decided =
          List.filter_map (fun (_, o) -> o) sender_outcomes
          |> List.sort_uniq Stdlib.compare
        in
        let on_undeliverable =
          match decided with [ o ] -> Some o | [] | _ :: _ :: _ -> None
        in
        { state; timeout = rule_a analysis state; on_undeliverable; sender_outcomes })
      waiting
  in
  { analysis; assignments }

let assignment_for t state =
  List.find_opt
    (fun a -> Analysis.compare_site_state a.state state = 0)
    t.assignments

let ambiguous t =
  List.filter (fun a -> a.on_undeliverable = None) t.assignments

let pp fmt t =
  let protocol = Analysis.protocol t.analysis in
  Format.fprintf fmt "Rule(a)/Rule(b) augmentation of %s (n=%d):@." protocol.name
    (Analysis.n_sites t.analysis);
  List.iter
    (fun a ->
      Format.fprintf fmt "  %a: timeout -> %a; UD -> %s@." Analysis.pp_site_state
        a.state pp_outcome a.timeout
        (match a.on_undeliverable with
        | Some o -> Format.asprintf "%a" pp_outcome o
        | None ->
            Format.asprintf "AMBIGUOUS (senders: %a)"
              (Format.pp_print_list
                 ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
                 (fun fmt (s, o) ->
                   Format.fprintf fmt "%a->%s" Analysis.pp_site_state s
                     (match o with
                     | Some o -> Format.asprintf "%a" pp_outcome o
                     | None -> "final")))
              a.sender_outcomes))
    t.assignments
