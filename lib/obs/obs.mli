(** Causal span tracing over the virtual-time simulation.

    A recorder holds one growable event log with two views:

    - {e spans}: begin/end pairs on a {e track} keyed by
      (site, transaction id).  Tracks nest (a protocol-state span inside
      the root transaction span, a probe round inside a state), and the
      per-track stack discipline guarantees the nesting is well formed —
      an [span_end] always closes the innermost open span.
    - {e causality}: send/recv flow edges between tracks, recorded by
      the network layer for every delivery {e and} every optimistic
      returned-to-sender bounce, so cross-site message causality is
      explicit rather than inferred from timestamps.

    Everything is deterministic: events are appended in engine order,
    flow ids are a plain counter, and both exporters emit byte-identical
    output for identical runs.

    Allocation policy (the discipline of the engine core): every record
    function first checks a cached [enabled] flag and is a true no-op on
    a disabled recorder — no closure, no string, no event record.  Call
    sites that must {e build} an argument (a rendered payload name)
    guard on [enabled] themselves.  [disabled] is the shared inert
    recorder instrumented layers default to. *)

type kind = Span_begin | Span_end | Instant | Flow_start | Flow_end

type event = {
  at : Vtime.t;
  kind : kind;
  site : int;  (** 0 = the runtime/coordinator track *)
  tid : int;  (** transaction id; 0 = not transaction-scoped *)
  name : string;
  cat : string;
  flow : int;  (** flow id for [Flow_start]/[Flow_end], else 0 *)
}

type t

val create : unit -> t
(** A fresh, enabled recorder. *)

val disabled : t
(** The shared inert recorder: every record call is a no-op that
    allocates nothing, and {!flow_start} returns [0]. *)

val enabled : t -> bool

val num_events : t -> int

val span_begin :
  t -> at:Vtime.t -> site:int -> tid:int -> ?cat:string -> string -> unit
(** Opens a span on the (site, tid) track.  [cat] defaults to
    ["phase"]. *)

val span_end : t -> at:Vtime.t -> site:int -> tid:int -> unit
(** Closes the innermost open span on the track.  A spurious end (no
    span open) is dropped. *)

val open_depth : t -> site:int -> tid:int -> int
(** Number of spans currently open on the track (0 when disabled). *)

val close_open_spans : t -> at:Vtime.t -> unit
(** Closes every still-open span at [at], tracks in sorted order —
    called by the harnesses after the engine stops so blocked sites
    still export well-formed timelines. *)

val instant : t -> at:Vtime.t -> site:int -> tid:int -> ?cat:string -> string -> unit
(** A zero-duration mark ([cat] defaults to ["mark"]). *)

val flow_start :
  t -> at:Vtime.t -> site:int -> tid:int -> ?cat:string -> string -> int
(** Opens a causality edge at its source and returns its flow id
    ([0] when disabled; [cat] defaults to ["net"]). *)

type name_renderer = Buffer.t -> int -> unit
(** Renders a coded flow name from its packed-int argument.  Registered
    once at module-init time (same domain-safety contract as
    {!Trace.register_template}); the network layer registers one per
    payload codec. *)

val register_name_renderer : name_renderer -> int

val flow_start_coded :
  t ->
  at:Vtime.t ->
  site:int ->
  tid:int ->
  ?cat:string ->
  renderer:int ->
  code:int ->
  unit ->
  int
(** {!flow_start} with the name stored as [(renderer, code)] — two int
    writes instead of a formatted string.  The text is produced by the
    registered renderer only when the recorder is exported. *)

val flow_end : t -> at:Vtime.t -> site:int -> tid:int -> int -> unit
(** Closes the edge at its destination.  No-op for flow id [0]. *)

val iter : t -> (event -> unit) -> unit
(** All recorded events, in record (= engine) order. *)

val fold_closed_spans :
  t -> from:int -> (name:int -> cat:int -> dur:int -> unit) -> int
(** Hands every span end recorded in [\[from, num_events)] to the
    callback as interned ids plus the span's duration in ticks (an end
    record carries its begin instant, so no pairing state is needed),
    and returns the new cursor.  No strings are rendered — resolve ids
    with {!name_string}, memoised per id.  The incremental feed behind
    the span->histogram bridge. *)

val name_string : t -> int -> string
(** The interned string behind a [name]/[cat] id from
    {!fold_closed_spans}. *)

val to_trace_event_json : t -> string
(** Chrome [trace_event] JSON, loadable in Perfetto /
    [chrome://tracing]: pid = site, tid = transaction id, virtual ticks
    as microseconds; spans as ["B"]/["E"], instants as ["i"], flow
    edges as ["s"]/["f"], plus process/thread-name metadata. *)

val to_causality_json : t -> string
(** The causality DAG: closed spans and completed send->recv edges,
    name-sorted, as a stable diffable JSON artifact. *)
