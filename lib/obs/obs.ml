type kind = Span_begin | Span_end | Instant | Flow_start | Flow_end

type event = {
  at : Vtime.t;
  kind : kind;
  site : int;
  tid : int;
  name : string;
  cat : string;
  flow : int;
}

type t = {
  enabled : bool;
  mutable events : event array;
  mutable len : int;
  open_spans : (int, (string * string) list) Hashtbl.t;
      (* packed (site, tid) -> stack of (name, cat), innermost first *)
  flow_meta : (int, string * string) Hashtbl.t;  (* flow id -> (name, cat) *)
  mutable next_flow : int;
}

let dummy =
  { at = Vtime.zero; kind = Instant; site = 0; tid = 0; name = ""; cat = ""; flow = 0 }

let disabled =
  {
    enabled = false;
    events = [||];
    len = 0;
    open_spans = Hashtbl.create 1;
    flow_meta = Hashtbl.create 1;
    next_flow = 0;
  }

let create () =
  {
    enabled = true;
    events = Array.make 1024 dummy;
    len = 0;
    open_spans = Hashtbl.create 64;
    flow_meta = Hashtbl.create 256;
    next_flow = 0;
  }

let enabled t = t.enabled

let num_events t = t.len

(* Sites fit in a few bits and tids in well under 32; pack the pair so
   the per-track stacks live in one int-keyed table. *)
let key ~site ~tid = (site lsl 32) lor (tid land 0xFFFFFFFF)

let push t ev =
  (if t.len = Array.length t.events then begin
     let grown = Array.make (Stdlib.max 1024 (2 * t.len)) dummy in
     Array.blit t.events 0 grown 0 t.len;
     t.events <- grown
   end);
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let span_begin t ~at ~site ~tid ?(cat = "phase") name =
  if t.enabled then begin
    push t { at; kind = Span_begin; site; tid; name; cat; flow = 0 };
    let k = key ~site ~tid in
    let stack =
      match Hashtbl.find_opt t.open_spans k with Some s -> s | None -> []
    in
    Hashtbl.replace t.open_spans k ((name, cat) :: stack)
  end

let span_end t ~at ~site ~tid =
  if t.enabled then
    let k = key ~site ~tid in
    match Hashtbl.find_opt t.open_spans k with
    | None | Some [] -> ()  (* unbalanced end: drop rather than corrupt *)
    | Some ((name, cat) :: rest) ->
        Hashtbl.replace t.open_spans k rest;
        push t { at; kind = Span_end; site; tid; name; cat; flow = 0 }

let open_depth t ~site ~tid =
  match Hashtbl.find_opt t.open_spans (key ~site ~tid) with
  | None -> 0
  | Some stack -> List.length stack

let close_open_spans t ~at =
  if t.enabled then begin
    let keys =
      Hashtbl.fold
        (fun k stack acc -> if stack = [] then acc else k :: acc)
        t.open_spans []
      |> List.sort Int.compare
    in
    List.iter
      (fun k ->
        let site = k lsr 32 and tid = k land 0xFFFFFFFF in
        let rec drain () =
          match Hashtbl.find_opt t.open_spans k with
          | None | Some [] -> ()
          | Some _ ->
              span_end t ~at ~site ~tid;
              drain ()
        in
        drain ())
      keys
  end

let instant t ~at ~site ~tid ?(cat = "mark") name =
  if t.enabled then
    push t { at; kind = Instant; site; tid; name; cat; flow = 0 }

let flow_start t ~at ~site ~tid ?(cat = "net") name =
  if not t.enabled then 0
  else begin
    t.next_flow <- t.next_flow + 1;
    let id = t.next_flow in
    Hashtbl.replace t.flow_meta id (name, cat);
    push t { at; kind = Flow_start; site; tid; name; cat; flow = id };
    id
  end

let flow_end t ~at ~site ~tid id =
  if t.enabled && id <> 0 then
    match Hashtbl.find_opt t.flow_meta id with
    | None -> ()
    | Some (name, cat) ->
        push t { at; kind = Flow_end; site; tid; name; cat; flow = id }

let iter t f =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

(* ---- export ------------------------------------------------------------ *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str_field buf key value =
  Buffer.add_char buf '"';
  Buffer.add_string buf key;
  Buffer.add_string buf "\":\"";
  add_escaped buf value;
  Buffer.add_char buf '"'

let add_int_field buf key value =
  Buffer.add_char buf '"';
  Buffer.add_string buf key;
  Buffer.add_string buf "\":";
  Buffer.add_string buf (string_of_int value)

(* Distinct sites and (site, tid) tracks, in sorted order, for the
   trace_event metadata records. *)
let tracks t =
  let keys = ref [] in
  iter t (fun ev -> keys := key ~site:ev.site ~tid:ev.tid :: !keys);
  let tracks = List.sort_uniq Int.compare !keys in
  let sites =
    List.sort_uniq Int.compare (List.map (fun k -> k lsr 32) tracks)
  in
  (sites, List.map (fun k -> (k lsr 32, k land 0xFFFFFFFF)) tracks)

let site_name site = if site = 0 then "runtime" else "site " ^ string_of_int site

(* Chrome trace_event JSON (the Perfetto / chrome://tracing format).
   pid = site, tid = transaction id, ts = virtual ticks read as
   microseconds.  Metadata records name the tracks; "B"/"E" pairs are
   the spans, "i" the instants, and "s"/"f" the message-flow arrows
   (bound by matching name + cat + id, each enclosed by a span on its
   track). *)
let to_trace_event_json t =
  let buf = Buffer.create ((t.len * 96) + 1024) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n "
  in
  let sites, tracks = tracks t in
  List.iter
    (fun site ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"M\",\"name\":\"process_name\",";
      add_int_field buf "pid" site;
      Buffer.add_string buf ",\"tid\":0,\"args\":{";
      add_str_field buf "name" (site_name site);
      Buffer.add_string buf "}}")
    sites;
  List.iter
    (fun (site, tid) ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"M\",\"name\":\"thread_name\",";
      add_int_field buf "pid" site;
      Buffer.add_char buf ',';
      add_int_field buf "tid" tid;
      Buffer.add_string buf ",\"args\":{";
      add_str_field buf "name" ("t" ^ string_of_int tid);
      Buffer.add_string buf "}}")
    tracks;
  iter t (fun ev ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"";
      Buffer.add_string buf
        (match ev.kind with
        | Span_begin -> "B"
        | Span_end -> "E"
        | Instant -> "i"
        | Flow_start -> "s"
        | Flow_end -> "f");
      Buffer.add_string buf "\",";
      add_int_field buf "pid" ev.site;
      Buffer.add_char buf ',';
      add_int_field buf "tid" ev.tid;
      Buffer.add_char buf ',';
      add_int_field buf "ts" (Vtime.to_int ev.at);
      Buffer.add_char buf ',';
      add_str_field buf "name" ev.name;
      Buffer.add_char buf ',';
      add_str_field buf "cat" ev.cat;
      (match ev.kind with
      | Instant -> Buffer.add_string buf ",\"s\":\"t\""
      | Flow_start ->
          Buffer.add_char buf ',';
          add_int_field buf "id" ev.flow
      | Flow_end ->
          Buffer.add_char buf ',';
          add_int_field buf "id" ev.flow;
          Buffer.add_string buf ",\"bp\":\"e\""
      | Span_begin | Span_end -> ());
      Buffer.add_char buf '}');
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

type span = {
  s_site : int;
  s_tid : int;
  s_name : string;
  s_cat : string;
  s_begin : Vtime.t;
  s_end : Vtime.t;
}

type edge = {
  e_name : string;
  e_cat : string;
  e_id : int;
  e_src_site : int;
  e_src_tid : int;
  e_sent : Vtime.t;
  e_dst_site : int;
  e_dst_tid : int;
  e_recv : Vtime.t;
}

(* Pair up begins/ends (per-track stacks) and flow starts/ends into
   closed spans and causality edges.  Events still open when the
   recorder stopped are dropped — harnesses call [close_open_spans]
   first, so nothing is normally lost. *)
let reconstruct t =
  let stacks : (int, (string * string * Vtime.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let starts : (int, event) Hashtbl.t = Hashtbl.create 256 in
  let spans = ref [] and edges = ref [] in
  iter t (fun ev ->
      let k = key ~site:ev.site ~tid:ev.tid in
      match ev.kind with
      | Span_begin ->
          let stack =
            match Hashtbl.find_opt stacks k with Some s -> s | None -> []
          in
          Hashtbl.replace stacks k ((ev.name, ev.cat, ev.at) :: stack)
      | Span_end -> (
          match Hashtbl.find_opt stacks k with
          | None | Some [] -> ()
          | Some ((name, cat, began) :: rest) ->
              Hashtbl.replace stacks k rest;
              spans :=
                {
                  s_site = ev.site;
                  s_tid = ev.tid;
                  s_name = name;
                  s_cat = cat;
                  s_begin = began;
                  s_end = ev.at;
                }
                :: !spans)
      | Instant -> ()
      | Flow_start -> Hashtbl.replace starts ev.flow ev
      | Flow_end -> (
          match Hashtbl.find_opt starts ev.flow with
          | None -> ()
          | Some src ->
              Hashtbl.remove starts ev.flow;
              edges :=
                {
                  e_name = ev.name;
                  e_cat = ev.cat;
                  e_id = ev.flow;
                  e_src_site = src.site;
                  e_src_tid = src.tid;
                  e_sent = src.at;
                  e_dst_site = ev.site;
                  e_dst_tid = ev.tid;
                  e_recv = ev.at;
                }
                :: !edges));
  (!spans, !edges)

(* The causality DAG: every closed span as a node and every completed
   send->recv flow as an edge, both name-sorted so the artifact is a
   stable, diffable summary of "what depended on what". *)
let to_causality_json t =
  let spans, edges = reconstruct t in
  let spans =
    List.sort
      (fun a b ->
        let c = String.compare a.s_name b.s_name in
        if c <> 0 then c
        else
          let c = Int.compare a.s_site b.s_site in
          if c <> 0 then c
          else
            let c = Int.compare a.s_tid b.s_tid in
            if c <> 0 then c
            else
              let c = Vtime.compare a.s_begin b.s_begin in
              if c <> 0 then c else Vtime.compare a.s_end b.s_end)
      spans
  in
  let edges =
    List.sort
      (fun a b ->
        let c = String.compare a.e_name b.e_name in
        if c <> 0 then c
        else
          let c = Vtime.compare a.e_sent b.e_sent in
          if c <> 0 then c else Int.compare a.e_id b.e_id)
      edges
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"spans\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n {";
      add_str_field buf "name" s.s_name;
      Buffer.add_char buf ',';
      add_str_field buf "cat" s.s_cat;
      Buffer.add_char buf ',';
      add_int_field buf "site" s.s_site;
      Buffer.add_char buf ',';
      add_int_field buf "tid" s.s_tid;
      Buffer.add_char buf ',';
      add_int_field buf "begin" (Vtime.to_int s.s_begin);
      Buffer.add_char buf ',';
      add_int_field buf "end" (Vtime.to_int s.s_end);
      Buffer.add_char buf '}')
    spans;
  Buffer.add_string buf "\n],\"edges\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n {";
      add_str_field buf "name" e.e_name;
      Buffer.add_char buf ',';
      add_str_field buf "cat" e.e_cat;
      Buffer.add_char buf ',';
      add_int_field buf "id" e.e_id;
      Buffer.add_char buf ',';
      add_int_field buf "src_site" e.e_src_site;
      Buffer.add_char buf ',';
      add_int_field buf "src_tid" e.e_src_tid;
      Buffer.add_char buf ',';
      add_int_field buf "sent_at" (Vtime.to_int e.e_sent);
      Buffer.add_char buf ',';
      add_int_field buf "dst_site" e.e_dst_site;
      Buffer.add_char buf ',';
      add_int_field buf "dst_tid" e.e_dst_tid;
      Buffer.add_char buf ',';
      add_int_field buf "recv_at" (Vtime.to_int e.e_recv);
      Buffer.add_char buf '}')
    edges;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
