type kind = Span_begin | Span_end | Instant | Flow_start | Flow_end

type event = {
  at : Vtime.t;
  kind : kind;
  site : int;
  tid : int;
  name : string;
  cat : string;
  flow : int;
}

(* ------------------------------------------------------------------ *)
(* Coded-name registry                                                 *)
(*                                                                     *)
(* Same contract as {!Trace.register_template}: renderers are global   *)
(* mutable state written only at module-init time, before any worker   *)
(* domain spawns, so sweeps read the array without synchronisation.    *)
(* The network layer registers one renderer per payload codec, and a   *)
(* flow's name is then stored as two ints (renderer, code) instead of  *)
(* a formatted string.                                                 *)
(* ------------------------------------------------------------------ *)

type name_renderer = Buffer.t -> int -> unit

let renderers = ref (Array.make 8 (None : name_renderer option))

let n_renderers = ref 0

let register_name_renderer r =
  let i = !n_renderers in
  if i = Array.length !renderers then begin
    let grown = Array.make (2 * i) None in
    Array.blit !renderers 0 grown 0 i;
    renderers := grown
  end;
  !renderers.(i) <- Some r;
  incr n_renderers;
  i

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(*                                                                     *)
(* One event is [stride] consecutive ints in a flat growable array:    *)
(* at, kind code, site, tid, name word, name code, cat id, flow id.    *)
(* The name word is an id into the per-recorder intern table when      *)
(* >= 0, or [-(renderer id) - 1] for a coded name whose argument sits  *)
(* in the name-code word.  Categories are always interned.  Text is    *)
(* materialised only when the recorder is read (iter / export).        *)
(* ------------------------------------------------------------------ *)

let stride = 8

(* kind codes: 0 = begin, 1 = end, 2 = instant, 3 = flow start,
   4 = flow end *)
let kind_of_code = [| Span_begin; Span_end; Instant; Flow_start; Flow_end |]

type t = {
  enabled : bool;
  mutable words : int array;
  mutable len : int;  (* events recorded *)
  (* per-recorder intern table: span/instant names and categories *)
  ids : (string, int) Hashtbl.t;
  mutable strs : string array;
  mutable n_strs : int;
  open_spans : (int, (int * int * int) list) Hashtbl.t;
      (* packed (site, tid) -> stack of (name word, cat id, begin
         ticks), innermost first.  The begin instant rides along so a
         span-end record can carry it in its otherwise-unused name-code
         word: consumers then read durations straight off end records,
         with no pairing state (see [fold_closed_spans]). *)
  (* flow id -> (name word, name code, cat id); ids are a plain counter
     from 1, so parallel arrays replace the old meta hashtable *)
  mutable flow_name : int array;
  mutable flow_code : int array;
  mutable flow_cat : int array;
  mutable next_flow : int;
  scratch : Buffer.t;  (* deferred-rendering scratch; reused per query *)
}

let empty_text = ""

let dummy_ids : (string, int) Hashtbl.t = Hashtbl.create 1

let dummy_scratch = Buffer.create 1

let disabled =
  {
    enabled = false;
    words = [||];
    len = 0;
    ids = dummy_ids;
    strs = [||];
    n_strs = 0;
    open_spans = Hashtbl.create 1;
    flow_name = [||];
    flow_code = [||];
    flow_cat = [||];
    next_flow = 0;
    scratch = dummy_scratch;
  }

let create () =
  {
    enabled = true;
    words = Array.make (1024 * stride) 0;
    len = 0;
    ids = Hashtbl.create 64;
    strs = [||];
    n_strs = 0;
    open_spans = Hashtbl.create 64;
    flow_name = [||];
    flow_code = [||];
    flow_cat = [||];
    next_flow = 0;
    scratch = Buffer.create 256;
  }

let enabled t = t.enabled

let num_events t = t.len

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some i -> i
  | None ->
      let i = t.n_strs in
      if i = Array.length t.strs then begin
        let grown = Array.make (max 32 (2 * i)) empty_text in
        Array.blit t.strs 0 grown 0 i;
        t.strs <- grown
      end;
      t.strs.(i) <- s;
      t.n_strs <- i + 1;
      Hashtbl.add t.ids s i;
      i

(* Claim the next record and return its base offset.  Only called with
   [t.enabled]. *)
let claim t =
  (if t.len * stride = Array.length t.words then begin
     let grown = Array.make (max (1024 * stride) (2 * t.len * stride)) 0 in
     Array.blit t.words 0 grown 0 (t.len * stride);
     t.words <- grown
   end);
  let base = t.len * stride in
  t.len <- t.len + 1;
  base

let push t ~at ~kind ~site ~tid ~name ~code ~cat ~flow =
  let base = claim t in
  let w = t.words in
  w.(base) <- Vtime.to_int at;
  w.(base + 1) <- kind;
  w.(base + 2) <- site;
  w.(base + 3) <- tid;
  w.(base + 4) <- name;
  w.(base + 5) <- code;
  w.(base + 6) <- cat;
  w.(base + 7) <- flow

(* Sites fit in a few bits and tids in well under 32; pack the pair so
   the per-track stacks live in one int-keyed table. *)
let key ~site ~tid = (site lsl 32) lor (tid land 0xFFFFFFFF)

let span_begin t ~at ~site ~tid ?(cat = "phase") name =
  if t.enabled then begin
    let name = intern t name and cat = intern t cat in
    push t ~at ~kind:0 ~site ~tid ~name ~code:0 ~cat ~flow:0;
    let k = key ~site ~tid in
    let stack =
      match Hashtbl.find_opt t.open_spans k with Some s -> s | None -> []
    in
    Hashtbl.replace t.open_spans k ((name, cat, Vtime.to_int at) :: stack)
  end

let span_end t ~at ~site ~tid =
  if t.enabled then
    let k = key ~site ~tid in
    match Hashtbl.find_opt t.open_spans k with
    | None | Some [] -> ()  (* unbalanced end: drop rather than corrupt *)
    | Some ((name, cat, began) :: rest) ->
        Hashtbl.replace t.open_spans k rest;
        (* Span names are always interned (name >= 0), so the name-code
           word is free: stash the begin instant there.  Rendering
           ignores the code for interned names, so exports are
           unchanged. *)
        push t ~at ~kind:1 ~site ~tid ~name ~code:began ~cat ~flow:0

let open_depth t ~site ~tid =
  match Hashtbl.find_opt t.open_spans (key ~site ~tid) with
  | None -> 0
  | Some stack -> List.length stack

let close_open_spans t ~at =
  if t.enabled then begin
    let keys =
      Hashtbl.fold
        (fun k stack acc -> if stack = [] then acc else k :: acc)
        t.open_spans []
      |> List.sort Int.compare
    in
    List.iter
      (fun k ->
        let site = k lsr 32 and tid = k land 0xFFFFFFFF in
        let rec drain () =
          match Hashtbl.find_opt t.open_spans k with
          | None | Some [] -> ()
          | Some _ ->
              span_end t ~at ~site ~tid;
              drain ()
        in
        drain ())
      keys
  end

(* ---- incremental span consumption -------------------------------------- *)

(* Hand every span end recorded in [from, num_events) to [f] as packed
   ids plus its duration (an end record carries its begin instant in
   the name-code word, so no pairing state is needed) and return the
   new cursor.  No rendering happens here: consumers memoise
   [name_string] per distinct id, not per event. *)
let fold_closed_spans t ~from f =
  let w = t.words in
  for i = from to t.len - 1 do
    let base = i * stride in
    if Array.unsafe_get w (base + 1) = 1 then
      f ~name:w.(base + 4) ~cat:w.(base + 6) ~dur:(w.(base) - w.(base + 5))
  done;
  t.len

(* Interned-string lookup for consumers of the packed ids above (span
   names and categories are always interned). *)
let name_string t id = t.strs.(id)

let instant t ~at ~site ~tid ?(cat = "mark") name =
  if t.enabled then
    push t ~at ~kind:2 ~site ~tid ~name:(intern t name) ~code:0
      ~cat:(intern t cat) ~flow:0

(* Record a flow start whose name is already reduced to two ints; the
   shared body of the string and coded entry points. *)
let flow_start_raw t ~at ~site ~tid ~name ~code ~cat =
  t.next_flow <- t.next_flow + 1;
  let id = t.next_flow in
  (if id > Array.length t.flow_name then begin
     let n = max 256 (2 * Array.length t.flow_name) in
     let grow a =
       let g = Array.make n 0 in
       Array.blit a 0 g 0 (id - 1);
       g
     in
     t.flow_name <- grow t.flow_name;
     t.flow_code <- grow t.flow_code;
     t.flow_cat <- grow t.flow_cat
   end);
  t.flow_name.(id - 1) <- name;
  t.flow_code.(id - 1) <- code;
  t.flow_cat.(id - 1) <- cat;
  push t ~at ~kind:3 ~site ~tid ~name ~code ~cat ~flow:id;
  id

let flow_start t ~at ~site ~tid ?(cat = "net") name =
  if not t.enabled then 0
  else
    flow_start_raw t ~at ~site ~tid ~name:(intern t name) ~code:0
      ~cat:(intern t cat)

let flow_start_coded t ~at ~site ~tid ?(cat = "net") ~renderer ~code () =
  if not t.enabled then 0
  else
    flow_start_raw t ~at ~site ~tid ~name:(-renderer - 1) ~code
      ~cat:(intern t cat)

let flow_end t ~at ~site ~tid id =
  if t.enabled && id <> 0 && id <= t.next_flow then
    push t ~at ~kind:4 ~site ~tid ~name:t.flow_name.(id - 1)
      ~code:t.flow_code.(id - 1) ~cat:t.flow_cat.(id - 1) ~flow:id

(* ---- deferred rendering ------------------------------------------------ *)

let render_name t ~name ~code =
  if name >= 0 then t.strs.(name)
  else begin
    let buf = t.scratch in
    Buffer.clear buf;
    (match !renderers.(-name - 1) with
    | Some render -> render buf code
    | None -> Buffer.add_string buf "<unregistered renderer>");
    Buffer.contents buf
  end

let event_of_base t base =
  let w = t.words in
  {
    at = Vtime.of_int w.(base);
    kind = kind_of_code.(w.(base + 1));
    site = w.(base + 2);
    tid = w.(base + 3);
    name = render_name t ~name:w.(base + 4) ~code:w.(base + 5);
    cat = t.strs.(w.(base + 6));
    flow = w.(base + 7);
  }

let iter t f =
  for i = 0 to t.len - 1 do
    f (event_of_base t (i * stride))
  done

(* ---- export ------------------------------------------------------------ *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str_field buf key value =
  Buffer.add_char buf '"';
  Buffer.add_string buf key;
  Buffer.add_string buf "\":\"";
  add_escaped buf value;
  Buffer.add_char buf '"'

let add_int_field buf key value =
  Buffer.add_char buf '"';
  Buffer.add_string buf key;
  Buffer.add_string buf "\":";
  Buffer.add_string buf (string_of_int value)

(* Distinct sites and (site, tid) tracks, in sorted order, for the
   trace_event metadata records.  Reads the packed words directly — no
   event records, no name rendering. *)
let tracks t =
  let keys = ref [] in
  for i = 0 to t.len - 1 do
    let base = i * stride in
    keys := key ~site:t.words.(base + 2) ~tid:t.words.(base + 3) :: !keys
  done;
  let tracks = List.sort_uniq Int.compare !keys in
  let sites =
    List.sort_uniq Int.compare (List.map (fun k -> k lsr 32) tracks)
  in
  (sites, List.map (fun k -> (k lsr 32, k land 0xFFFFFFFF)) tracks)

let site_name site = if site = 0 then "runtime" else "site " ^ string_of_int site

(* Chrome trace_event JSON (the Perfetto / chrome://tracing format).
   pid = site, tid = transaction id, ts = virtual ticks read as
   microseconds.  Metadata records name the tracks; "B"/"E" pairs are
   the spans, "i" the instants, and "s"/"f" the message-flow arrows
   (bound by matching name + cat + id, each enclosed by a span on its
   track). *)
let to_trace_event_json t =
  let buf = Buffer.create ((t.len * 96) + 1024) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_string buf "\n "
  in
  let sites, tracks = tracks t in
  List.iter
    (fun site ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"M\",\"name\":\"process_name\",";
      add_int_field buf "pid" site;
      Buffer.add_string buf ",\"tid\":0,\"args\":{";
      add_str_field buf "name" (site_name site);
      Buffer.add_string buf "}}")
    sites;
  List.iter
    (fun (site, tid) ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"M\",\"name\":\"thread_name\",";
      add_int_field buf "pid" site;
      Buffer.add_char buf ',';
      add_int_field buf "tid" tid;
      Buffer.add_string buf ",\"args\":{";
      add_str_field buf "name" ("t" ^ string_of_int tid);
      Buffer.add_string buf "}}")
    tracks;
  iter t (fun ev ->
      sep ();
      Buffer.add_string buf "{\"ph\":\"";
      Buffer.add_string buf
        (match ev.kind with
        | Span_begin -> "B"
        | Span_end -> "E"
        | Instant -> "i"
        | Flow_start -> "s"
        | Flow_end -> "f");
      Buffer.add_string buf "\",";
      add_int_field buf "pid" ev.site;
      Buffer.add_char buf ',';
      add_int_field buf "tid" ev.tid;
      Buffer.add_char buf ',';
      add_int_field buf "ts" (Vtime.to_int ev.at);
      Buffer.add_char buf ',';
      add_str_field buf "name" ev.name;
      Buffer.add_char buf ',';
      add_str_field buf "cat" ev.cat;
      (match ev.kind with
      | Instant -> Buffer.add_string buf ",\"s\":\"t\""
      | Flow_start ->
          Buffer.add_char buf ',';
          add_int_field buf "id" ev.flow
      | Flow_end ->
          Buffer.add_char buf ',';
          add_int_field buf "id" ev.flow;
          Buffer.add_string buf ",\"bp\":\"e\""
      | Span_begin | Span_end -> ());
      Buffer.add_char buf '}');
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

type span = {
  s_site : int;
  s_tid : int;
  s_name : string;
  s_cat : string;
  s_begin : Vtime.t;
  s_end : Vtime.t;
}

type edge = {
  e_name : string;
  e_cat : string;
  e_id : int;
  e_src_site : int;
  e_src_tid : int;
  e_sent : Vtime.t;
  e_dst_site : int;
  e_dst_tid : int;
  e_recv : Vtime.t;
}

(* Pair up begins/ends (per-track stacks) and flow starts/ends into
   closed spans and causality edges.  Events still open when the
   recorder stopped are dropped — harnesses call [close_open_spans]
   first, so nothing is normally lost.  Names are rendered here, at
   export time; the sorts below compare the rendered strings so the
   artifact is unchanged by the packed storage. *)
let reconstruct t =
  let stacks : (int, (string * string * Vtime.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let starts : (int, event) Hashtbl.t = Hashtbl.create 256 in
  let spans = ref [] and edges = ref [] in
  iter t (fun ev ->
      let k = key ~site:ev.site ~tid:ev.tid in
      match ev.kind with
      | Span_begin ->
          let stack =
            match Hashtbl.find_opt stacks k with Some s -> s | None -> []
          in
          Hashtbl.replace stacks k ((ev.name, ev.cat, ev.at) :: stack)
      | Span_end -> (
          match Hashtbl.find_opt stacks k with
          | None | Some [] -> ()
          | Some ((name, cat, began) :: rest) ->
              Hashtbl.replace stacks k rest;
              spans :=
                {
                  s_site = ev.site;
                  s_tid = ev.tid;
                  s_name = name;
                  s_cat = cat;
                  s_begin = began;
                  s_end = ev.at;
                }
                :: !spans)
      | Instant -> ()
      | Flow_start -> Hashtbl.replace starts ev.flow ev
      | Flow_end -> (
          match Hashtbl.find_opt starts ev.flow with
          | None -> ()
          | Some src ->
              Hashtbl.remove starts ev.flow;
              edges :=
                {
                  e_name = ev.name;
                  e_cat = ev.cat;
                  e_id = ev.flow;
                  e_src_site = src.site;
                  e_src_tid = src.tid;
                  e_sent = src.at;
                  e_dst_site = ev.site;
                  e_dst_tid = ev.tid;
                  e_recv = ev.at;
                }
                :: !edges));
  (!spans, !edges)

(* The causality DAG: every closed span as a node and every completed
   send->recv flow as an edge, both name-sorted so the artifact is a
   stable, diffable summary of "what depended on what". *)
let to_causality_json t =
  let spans, edges = reconstruct t in
  let spans =
    List.sort
      (fun a b ->
        let c = String.compare a.s_name b.s_name in
        if c <> 0 then c
        else
          let c = Int.compare a.s_site b.s_site in
          if c <> 0 then c
          else
            let c = Int.compare a.s_tid b.s_tid in
            if c <> 0 then c
            else
              let c = Vtime.compare a.s_begin b.s_begin in
              if c <> 0 then c else Vtime.compare a.s_end b.s_end)
      spans
  in
  let edges =
    List.sort
      (fun a b ->
        let c = String.compare a.e_name b.e_name in
        if c <> 0 then c
        else
          let c = Vtime.compare a.e_sent b.e_sent in
          if c <> 0 then c else Int.compare a.e_id b.e_id)
      edges
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"spans\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n {";
      add_str_field buf "name" s.s_name;
      Buffer.add_char buf ',';
      add_str_field buf "cat" s.s_cat;
      Buffer.add_char buf ',';
      add_int_field buf "site" s.s_site;
      Buffer.add_char buf ',';
      add_int_field buf "tid" s.s_tid;
      Buffer.add_char buf ',';
      add_int_field buf "begin" (Vtime.to_int s.s_begin);
      Buffer.add_char buf ',';
      add_int_field buf "end" (Vtime.to_int s.s_end);
      Buffer.add_char buf '}')
    spans;
  Buffer.add_string buf "\n],\"edges\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n {";
      add_str_field buf "name" e.e_name;
      Buffer.add_char buf ',';
      add_str_field buf "cat" e.e_cat;
      Buffer.add_char buf ',';
      add_int_field buf "id" e.e_id;
      Buffer.add_char buf ',';
      add_int_field buf "src_site" e.e_src_site;
      Buffer.add_char buf ',';
      add_int_field buf "src_tid" e.e_src_tid;
      Buffer.add_char buf ',';
      add_int_field buf "sent_at" (Vtime.to_int e.e_sent);
      Buffer.add_char buf ',';
      add_int_field buf "dst_site" e.e_dst_site;
      Buffer.add_char buf ',';
      add_int_field buf "dst_tid" e.e_dst_tid;
      Buffer.add_char buf ',';
      add_int_field buf "recv_at" (Vtime.to_int e.e_recv);
      Buffer.add_char buf '}')
    edges;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf
