(** A fixed-size executor pool with batched chunk execution.

    The repository's experiments are embarrassingly parallel: a sweep is
    thousands of independent simulator runs folded into one summary, and
    a cluster sweep is dozens of independent runtimes folded into one
    merged metrics document.  The pool parallelises {e across} runs —
    each run still owns one engine and one virtual clock — and recovers
    the sequential answer exactly, provided the caller's [merge] is
    associative: chunks are folded left-to-right {e within} each chunk
    and partial results are folded left-to-right {e across} chunks, so
    for an associative [merge] the result is independent of both the
    chunk size and the number of executors.

    Execution is batched, not queued: a call publishes one job over the
    whole input array, and each executor claims contiguous chunks with
    an atomic cursor and runs every item of a chunk in a tight loop —
    no per-task locking, signaling, or closure allocation.  The calling
    thread is executor 0 and does its share of the work, so a pool of
    [domains] executors spawns only [domains - 1] domains; a
    one-executor pool spawns nothing and degenerates to a plain loop.

    Workers hold no caller-visible state between calls; a pool survives
    a raising task and can be reused immediately. *)

type t
(** A pool of executors.  Create once, run many [map]/[map_reduce]
    calls, then {!shutdown} (or use {!with_pool}). *)

type pool = t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the useful parallelism cap
    on this machine, and the CLI's [--jobs] default.  Sweeps clamp
    their effective executor count to this: beyond it, extra domains
    only time-slice (and OCaml 5's stop-the-world minor GC makes them
    actively slower). *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] executors (default {!default_jobs}): the
    calling thread plus [domains - 1] spawned worker domains.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
(** The number of executors (including the calling thread). *)

val shutdown : t -> unit
(** Joins every worker.  Idempotent.  Calling {!map} or {!map_reduce}
    on a shut-down pool raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] over a fresh pool and shuts it down on the
    way out, exception or not. *)

val map : t -> chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool ~chunk f xs] is [Array.map f xs], with contiguous chunks
    of [chunk] elements claimed across the pool's executors.  Returns
    [ [||] ] on empty input.  If any application of [f] raises, the
    exception raised by the lowest-indexed chunk is re-raised (with its
    backtrace) after all chunks have finished, and the pool remains
    usable.
    @raise Invalid_argument if [chunk < 1]. *)

val map_reduce :
  pool -> chunk:int -> ('a -> 'b) -> merge:('b -> 'b -> 'b) -> 'a array -> 'b
(** [map_reduce pool ~chunk f ~merge xs] is
    [merge (... (merge (f xs.(0)) (f xs.(1))) ...) (f xs.(n-1))] — the
    left fold of per-element results in index order — computed as
    parallel per-chunk partial folds merged across chunks in chunk
    order.  Equal to the sequential fold for any [chunk] and any pool
    size whenever [merge] is associative ([merge] may consume its left
    argument: each partial is owned by exactly one executor at a time).
    Exceptions propagate as in {!map}.
    @raise Invalid_argument if [chunk < 1] or [xs] is empty (there is
    no unit to return; callers with a natural empty summary should
    handle [ [||] ] themselves). *)

val map_reduce_scratch :
  pool ->
  chunk:int ->
  init:(unit -> 's) ->
  f:('s -> 'a -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  'a array ->
  'b
(** {!map_reduce} with per-executor scratch state.  [init] is called
    exactly [size pool] times, by the submitting thread, before any
    chunk runs; executor [e] threads its own scratch through every
    [f scratch x] it claims, and no scratch is ever visible to two
    executors.  Use it to hoist per-item allocation (simulator engines,
    buffers) out of the hot loop.

    Soundness contract: [f] must leave the scratch in a state where the
    next item's result does not depend on which items this executor ran
    before — reuse must be observationally identical to a fresh
    [init ()] per item, or the result will depend on the chunk
    schedule.  Exceptions propagate as in {!map}. *)
