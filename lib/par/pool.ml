(* A fixed-size domain pool over a mutex-protected task queue.

   Tasks are [unit -> unit] closures that never raise: every submitted
   chunk wraps its body in a handler that parks the exception (with its
   backtrace) in a per-chunk slot, so a worker survives any task and
   the pool is reusable after a failed call.  Completion is tracked by
   a per-call countdown guarded by the same mutex as the queue. *)

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue grows or on shutdown *)
  queue : task Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
}

type pool = t

let default_jobs () = Domain.recommended_domain_count ()

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && pool.live do
    Condition.wait pool.work pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ?domains () =
  let domains =
    match domains with Some d -> d | None -> default_jobs ()
  in
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [||];
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Runs [body c] for every chunk index [c] in [0 .. nchunks-1] across
   the pool, waits for all of them, and re-raises the lowest-indexed
   chunk's exception, if any. *)
let run_chunks pool ~nchunks body =
  let remaining = ref nchunks in
  let all_done = Condition.create () in
  let errors = Array.make nchunks None in
  Mutex.lock pool.mutex;
  if not pool.live then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: pool already shut down"
  end;
  for c = 0 to nchunks - 1 do
    Queue.add
      (fun () ->
        (try body c
         with e -> errors.(c) <- Some (e, Printexc.get_raw_backtrace ()));
        Mutex.lock pool.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock pool.mutex)
      pool.queue
  done;
  Condition.broadcast pool.work;
  while !remaining > 0 do
    Condition.wait all_done pool.mutex
  done;
  Mutex.unlock pool.mutex;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let chunk_count ~chunk n =
  if chunk < 1 then invalid_arg "Pool: chunk must be >= 1";
  (n + chunk - 1) / chunk

let map pool ~chunk f xs =
  let n = Array.length xs in
  let nchunks = chunk_count ~chunk n in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_chunks pool ~nchunks (fun c ->
        let lo = c * chunk in
        let hi = Stdlib.min n (lo + chunk) in
        for i = lo to hi - 1 do
          results.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce pool ~chunk f ~merge xs =
  let n = Array.length xs in
  let nchunks = chunk_count ~chunk n in
  if n = 0 then invalid_arg "Pool.map_reduce: empty input";
  let partials = Array.make nchunks None in
  run_chunks pool ~nchunks (fun c ->
      let lo = c * chunk in
      let hi = Stdlib.min n (lo + chunk) in
      let acc = ref (f xs.(lo)) in
      for i = lo + 1 to hi - 1 do
        acc := merge !acc (f xs.(i))
      done;
      partials.(c) <- Some !acc);
  let total = ref None in
  Array.iter
    (fun partial ->
      match (partial, !total) with
      | Some p, None -> total := Some p
      | Some p, Some acc -> total := Some (merge acc p)
      | None, _ -> assert false)
    partials;
  match !total with Some v -> v | None -> assert false
