(* A fixed-size executor pool with batched chunk execution.

   The first revision of this pool pushed one closure per chunk through
   a mutex-protected queue and woke a condition variable for every
   enqueue and every completion.  On a grid of thousands of cheap
   simulator runs the bookkeeping beat the work: BENCH_sweep.json
   recorded parallel sweeps *losing* to the sequential fold.  This
   version keeps the same observable semantics with a batched engine:

   - The calling thread is executor 0 and does its share of the work; a
     pool of [domains] executors spawns only [domains - 1] worker
     domains.  A one-executor pool is a plain tight loop — no spawn, no
     lock, no signal.
   - A call publishes ONE job (an immutable descriptor plus an atomic
     chunk cursor).  Executors claim contiguous chunks with
     [Atomic.fetch_and_add] — no mutex round-trip per task — and run
     every item of a chunk in a tight loop, writing results into
     preallocated slot arrays.
   - Each executor touches the mutex once per job: to add its finished
     chunk count and (for the last finisher) signal completion.
   - Per-executor scratch: {!map_reduce_scratch} creates one ['s] per
     executor (exactly [size pool] calls to [init], by the submitter,
     before any chunk runs) and threads it through every item that
     executor claims, so callers can hoist per-run allocation out of
     the loop.  A scratch value is only ever visible to its executor.

   Tasks never raise into a worker: chunk bodies park exceptions (with
   their backtraces) in a per-chunk slot, and the lowest-indexed
   chunk's exception is re-raised after the job completes, leaving the
   pool reusable. *)

type job = {
  id : int;  (* generation: a worker never re-enters a job it served *)
  next : int Atomic.t;  (* next unclaimed chunk *)
  nchunks : int;
  run_chunk : executor:int -> int -> unit;  (* never raises *)
  mutable completed : int;  (* chunks finished; guarded by the mutex *)
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* a new job was published, or shutdown *)
  finished : Condition.t;  (* a job completed (and its slot was freed) *)
  mutable job : job option;
  mutable next_job_id : int;
  mutable live : bool;
  mutable workers : unit Domain.t array;  (* executors 1 .. size-1 *)
  executors : int;
}

type pool = t

let default_jobs () = Domain.recommended_domain_count ()

(* Claim-and-run loop shared by workers and the submitter.  Returns
   once the cursor passes [nchunks]; the executor that finishes the
   job's last chunk signals the submitter.  One mutex section per
   executor per job. *)
let participate pool job ~executor =
  let finished = ref 0 in
  let running = ref true in
  while !running do
    let c = Atomic.fetch_and_add job.next 1 in
    if c >= job.nchunks then running := false
    else begin
      job.run_chunk ~executor c;
      incr finished
    end
  done;
  if !finished > 0 then begin
    Mutex.lock pool.mutex;
    job.completed <- job.completed + !finished;
    if job.completed = job.nchunks then Condition.broadcast pool.finished;
    Mutex.unlock pool.mutex
  end

let rec worker_loop pool ~executor ~last_served =
  Mutex.lock pool.mutex;
  let rec await () =
    if not pool.live then None
    else
      match pool.job with
      | Some job when job.id <> last_served -> Some job
      | Some _ | None ->
          Condition.wait pool.work pool.mutex;
          await ()
  in
  match await () with
  | None -> Mutex.unlock pool.mutex
  | Some job ->
      Mutex.unlock pool.mutex;
      participate pool job ~executor;
      worker_loop pool ~executor ~last_served:job.id

let create ?domains () =
  let domains =
    match domains with Some d -> d | None -> default_jobs ()
  in
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      job = None;
      next_job_id = 0;
      live = true;
      workers = [||];
      executors = domains;
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            worker_loop pool ~executor:(i + 1) ~last_served:(-1)));
  pool

let size pool = pool.executors

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.live <- false;
  pool.workers <- [||];
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join workers

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Publishes [run_chunk] over [nchunks] chunks, participates as
   executor 0, and waits for the stragglers.  Submissions are
   serialized: a second caller blocks until the active job's slot is
   free. *)
let run_job pool ~nchunks run_chunk =
  Mutex.lock pool.mutex;
  if not pool.live then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Pool: pool already shut down"
  end;
  while pool.job <> None do
    Condition.wait pool.finished pool.mutex
  done;
  let job =
    {
      id = pool.next_job_id;
      next = Atomic.make 0;
      nchunks;
      run_chunk;
      completed = 0;
    }
  in
  pool.next_job_id <- pool.next_job_id + 1;
  pool.job <- Some job;
  if Array.length pool.workers > 0 then Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  participate pool job ~executor:0;
  Mutex.lock pool.mutex;
  while job.completed < job.nchunks do
    Condition.wait pool.finished pool.mutex
  done;
  pool.job <- None;
  (* wake any queued submitter waiting for the slot *)
  Condition.broadcast pool.finished;
  Mutex.unlock pool.mutex

let reraise_first errors =
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors

let chunk_count ~chunk n =
  if chunk < 1 then invalid_arg "Pool: chunk must be >= 1";
  (n + chunk - 1) / chunk

let map pool ~chunk f xs =
  let n = Array.length xs in
  let nchunks = chunk_count ~chunk n in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make nchunks None in
    run_job pool ~nchunks (fun ~executor:_ c ->
        try
          let lo = c * chunk in
          let hi = Stdlib.min n (lo + chunk) in
          for i = lo to hi - 1 do
            results.(i) <- Some (f xs.(i))
          done
        with e -> errors.(c) <- Some (e, Printexc.get_raw_backtrace ()));
    reraise_first errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_reduce_scratch pool ~chunk ~init ~f ~merge xs =
  let n = Array.length xs in
  let nchunks = chunk_count ~chunk n in
  if n = 0 then invalid_arg "Pool.map_reduce: empty input";
  (* One scratch per executor, created up front by the submitter: the
     count is deterministic (exactly [size pool] calls) and [init]
     needs no synchronisation.  Executor [e] is the only reader of
     [scratches.(e)]. *)
  let scratches = Array.init pool.executors (fun _ -> init ()) in
  let partials = Array.make nchunks None in
  let errors = Array.make nchunks None in
  run_job pool ~nchunks (fun ~executor c ->
      try
        let scratch = Array.unsafe_get scratches executor in
        let lo = c * chunk in
        let hi = Stdlib.min n (lo + chunk) in
        let acc = ref (f scratch xs.(lo)) in
        for i = lo + 1 to hi - 1 do
          acc := merge !acc (f scratch xs.(i))
        done;
        partials.(c) <- Some !acc
      with e -> errors.(c) <- Some (e, Printexc.get_raw_backtrace ()));
  reraise_first errors;
  let total = ref None in
  Array.iter
    (fun partial ->
      match (partial, !total) with
      | Some p, None -> total := Some p
      | Some p, Some acc -> total := Some (merge acc p)
      | None, _ -> assert false)
    partials;
  match !total with Some v -> v | None -> assert false

let map_reduce pool ~chunk f ~merge xs =
  map_reduce_scratch pool ~chunk
    ~init:(fun () -> ())
    ~f:(fun () x -> f x)
    ~merge xs
