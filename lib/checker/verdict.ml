type t = {
  committed : Site_id.t list;
  aborted : Site_id.t list;
  blocked : Site_id.t list;
  vacuous : Site_id.t list;
  crashed : Site_id.t list;
  atomic : bool;
  max_decision_time : Vtime.t option;
}

let is_initial_state = function "q" | "q1" -> true | _ -> false

let of_result (result : Runner.result) =
  let committed = ref [] and aborted = ref [] in
  let blocked = ref [] and vacuous = ref [] and crashed = ref [] in
  let max_decision_time = ref None in
  Array.iter
    (fun (s : Runner.site_result) ->
      if s.crashed then crashed := s.site :: !crashed
      else
        match s.decision with
        | Some Types.Commit -> committed := s.site :: !committed
        | Some Types.Abort -> aborted := s.site :: !aborted
        | None ->
            if is_initial_state s.final_state then vacuous := s.site :: !vacuous
            else blocked := s.site :: !blocked)
    result.sites;
  Array.iter
    (fun (s : Runner.site_result) ->
      match s.decided_at with
      | Some at ->
          max_decision_time :=
            Some
              (match !max_decision_time with
              | None -> at
              | Some prior -> Vtime.max prior at)
      | None -> ())
    result.sites;
  {
    committed = List.rev !committed;
    aborted = List.rev !aborted;
    blocked = List.rev !blocked;
    vacuous = List.rev !vacuous;
    crashed = List.rev !crashed;
    atomic = !committed = [] || !aborted = [];
    max_decision_time = !max_decision_time;
  }

let resilient t = t.atomic && t.blocked = []

let outcome t =
  match (t.committed, t.aborted) with
  | [], [] -> `Undecided
  | _ :: _, [] -> `Committed
  | [], _ :: _ -> `Aborted
  | _ :: _, _ :: _ -> `Mixed

let pp fmt t =
  let pp_sites = Site_id.pp_set in
  Format.fprintf fmt "%s%s"
    (match outcome t with
    | `Committed -> "committed"
    | `Aborted -> "aborted"
    | `Mixed ->
        Format.asprintf "ATOMICITY VIOLATION (commit %a / abort %a)" pp_sites
          (Site_id.Set.of_list t.committed)
          pp_sites
          (Site_id.Set.of_list t.aborted)
    | `Undecided -> "undecided")
    ((if t.blocked = [] then ""
      else
        Format.asprintf ", blocked %a" pp_sites (Site_id.Set.of_list t.blocked))
    ^ (if t.vacuous = [] then ""
       else
         Format.asprintf ", vacuous %a" pp_sites (Site_id.Set.of_list t.vacuous))
    ^
    if t.crashed = [] then ""
    else Format.asprintf ", crashed %a" pp_sites (Site_id.Set.of_list t.crashed))
