type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buffer (Printf.sprintf "%.1f" f)
      else Buffer.add_string buffer (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buffer '"';
      Buffer.add_string buffer (escape s);
      Buffer.add_char buffer '"'
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer (String key);
          Buffer.add_char buffer ':';
          write buffer value)
        fields;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 256 in
  write buffer json;
  Buffer.contents buffer

let pp fmt json = Format.pp_print_string fmt (to_string json)

(* A recursive-descent parser for the same dialect [to_string] emits
   (the container is sealed, so round-tripping our own output cannot
   lean on an external JSON library).  Numbers without '.', 'e' or 'E'
   parse as [Int]; anything fractional as [Float]. *)
exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      value)
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          (if !pos >= n then fail "truncated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buffer '"'; incr pos
             | '\\' -> Buffer.add_char buffer '\\'; incr pos
             | '/' -> Buffer.add_char buffer '/'; incr pos
             | 'n' -> Buffer.add_char buffer '\n'; incr pos
             | 'r' -> Buffer.add_char buffer '\r'; incr pos
             | 't' -> Buffer.add_char buffer '\t'; incr pos
             | 'b' -> Buffer.add_char buffer '\b'; incr pos
             | 'f' -> Buffer.add_char buffer '\012'; incr pos
             | 'u' ->
                 incr pos;
                 let v = hex4 () in
                 (* Enough UTF-8 for our own output: [escape] only emits
                    \u for control characters, but accept the BMP. *)
                 if v < 0x80 then Buffer.add_char buffer (Char.chr v)
                 else if v < 0x800 then (
                   Buffer.add_char buffer (Char.chr (0xC0 lor (v lsr 6)));
                   Buffer.add_char buffer (Char.chr (0x80 lor (v land 0x3F))))
                 else (
                   Buffer.add_char buffer (Char.chr (0xE0 lor (v lsr 12)));
                   Buffer.add_char buffer
                     (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                   Buffer.add_char buffer (Char.chr (0x80 lor (v land 0x3F))))
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          loop ()
      | c ->
          Buffer.add_char buffer c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let fractional = ref false in
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') -> incr pos; digits ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          fractional := true;
          incr pos;
          digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected number";
    let text = String.sub s start (!pos - start) in
    if !fractional then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "malformed number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (
          incr pos;
          Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((key, value) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (
          incr pos;
          List [])
        else
          let rec items acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (value :: acc)
            | Some ']' ->
                incr pos;
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let sites_json sites = List (List.map (fun s -> Int (Site_id.to_int s)) sites)

let of_verdict (v : Verdict.t) =
  Obj
    [
      ( "outcome",
        String
          (match Verdict.outcome v with
          | `Committed -> "committed"
          | `Aborted -> "aborted"
          | `Mixed -> "mixed"
          | `Undecided -> "undecided") );
      ("atomic", Bool v.atomic);
      ("resilient", Bool (Verdict.resilient v));
      ("committed", sites_json v.committed);
      ("aborted", sites_json v.aborted);
      ("blocked", sites_json v.blocked);
      ("vacuous", sites_json v.vacuous);
      ("crashed", sites_json v.crashed);
      ( "max_decision_time",
        match v.max_decision_time with Some t -> Int t | None -> Null );
    ]

let of_summary (s : Sweep.summary) =
  let examples pairs =
    List
      (List.map
         (fun (config, v) ->
           Obj
             [
               ("scenario", String (Scenario.config_id config));
               ("verdict", of_verdict v);
             ])
         pairs)
  in
  Obj
    [
      ("protocol", String s.protocol);
      ("runs", Int s.runs);
      ("violations", Int s.violations);
      ("blocked_runs", Int s.blocked_runs);
      ("committed", Int s.committed);
      ("aborted", Int s.aborted);
      ("undecided", Int s.undecided);
      ( "max_decision_time",
        match s.max_decision_time with Some t -> Int t | None -> Null );
      ("total_decision_time", Int s.total_decision_time);
      ( "mean_decision_time",
        match Sweep.mean_decision_time s with
        | Some mean -> Float mean
        | None -> Null );
      ("violation_examples", examples s.violation_examples);
      ("blocked_examples", examples s.blocked_examples);
    ]

let of_stats (s : Stats.t) =
  Obj
    [
      ("count", Int s.count);
      ("min", Int s.min);
      ("p50", Int s.p50);
      ("p90", Int s.p90);
      ("p95", Int s.p95);
      ("p99", Int s.p99);
      ("max", Int s.max);
      ("mean", Float s.mean);
    ]

let of_observation (o : Cases.observation) =
  Obj
    [
      ( "case",
        match o.case with
        | Some c -> String (Timing.case_name c)
        | None -> Null );
      ( "probe_waits",
        List
          (List.map
             (fun (slave, wait) ->
               Obj
                 [
                   ("slave", Int (Site_id.to_int slave));
                   ("wait", match wait with Some w -> Int w | None -> Null);
                 ])
             o.probe_waits) );
    ]
