type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buffer (Printf.sprintf "%.1f" f)
      else Buffer.add_string buffer (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buffer '"';
      Buffer.add_string buffer (escape s);
      Buffer.add_char buffer '"'
  | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer item)
        items;
      Buffer.add_char buffer ']'
  | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buffer ',';
          write buffer (String key);
          Buffer.add_char buffer ':';
          write buffer value)
        fields;
      Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 256 in
  write buffer json;
  Buffer.contents buffer

let pp fmt json = Format.pp_print_string fmt (to_string json)

let sites_json sites = List (List.map (fun s -> Int (Site_id.to_int s)) sites)

let of_verdict (v : Verdict.t) =
  Obj
    [
      ( "outcome",
        String
          (match Verdict.outcome v with
          | `Committed -> "committed"
          | `Aborted -> "aborted"
          | `Mixed -> "mixed"
          | `Undecided -> "undecided") );
      ("atomic", Bool v.atomic);
      ("resilient", Bool (Verdict.resilient v));
      ("committed", sites_json v.committed);
      ("aborted", sites_json v.aborted);
      ("blocked", sites_json v.blocked);
      ("vacuous", sites_json v.vacuous);
      ("crashed", sites_json v.crashed);
      ( "max_decision_time",
        match v.max_decision_time with Some t -> Int t | None -> Null );
    ]

let of_summary (s : Sweep.summary) =
  let examples pairs =
    List
      (List.map
         (fun (config, v) ->
           Obj
             [
               ("scenario", String (Scenario.config_id config));
               ("verdict", of_verdict v);
             ])
         pairs)
  in
  Obj
    [
      ("protocol", String s.protocol);
      ("runs", Int s.runs);
      ("violations", Int s.violations);
      ("blocked_runs", Int s.blocked_runs);
      ("committed", Int s.committed);
      ("aborted", Int s.aborted);
      ("undecided", Int s.undecided);
      ( "max_decision_time",
        match s.max_decision_time with Some t -> Int t | None -> Null );
      ("total_decision_time", Int s.total_decision_time);
      ( "mean_decision_time",
        match Sweep.mean_decision_time s with
        | Some mean -> Float mean
        | None -> Null );
      ("violation_examples", examples s.violation_examples);
      ("blocked_examples", examples s.blocked_examples);
    ]

let of_stats (s : Stats.t) =
  Obj
    [
      ("count", Int s.count);
      ("min", Int s.min);
      ("p50", Int s.p50);
      ("p90", Int s.p90);
      ("p95", Int s.p95);
      ("p99", Int s.p99);
      ("max", Int s.max);
      ("mean", Float s.mean);
    ]

let of_observation (o : Cases.observation) =
  Obj
    [
      ( "case",
        match o.case with
        | Some c -> String (Timing.case_name c)
        | None -> Null );
      ( "probe_waits",
        List
          (List.map
             (fun (slave, wait) ->
               Obj
                 [
                   ("slave", Int (Site_id.to_int slave));
                   ("wait", match wait with Some w -> Int w | None -> Null);
                 ])
             o.probe_waits) );
    ]
