(** Running a protocol over a scenario grid and aggregating verdicts.

    This is how the repository phrases the paper's theorems as
    experiments: Theorem 9 becomes "the termination protocol's sweep has
    zero violations and zero blocked runs"; Section 3's observations
    become "the extended-2PC and 3PC+rules sweeps have nonzero
    violations, and here are the first counterexamples".

    Grids are embarrassingly parallel — every run owns its engine, its
    network and its clock — so [run ~jobs:n] partitions the grid across
    [n] domains and folds the per-domain partial summaries in task-index
    order.  The summary, including which counterexamples are kept, is
    byte-identical to the sequential run for every [jobs]. *)

type summary = {
  protocol : string;
  runs : int;
  violations : int;  (** runs that broke atomicity *)
  blocked_runs : int;  (** runs with at least one blocked site *)
  committed : int;
  aborted : int;
  undecided : int;  (** runs where no site decided *)
  max_decision_time : Vtime.t option;
      (** worst decision latency across all runs *)
  total_decision_time : int;
      (** sum of per-run worst decision instants (ticks) over the
          [runs - undecided] deciding runs — mean latency without
          retaining per-run verdicts *)
  violation_examples : (Runner.config * Verdict.t) list;
  blocked_examples : (Runner.config * Verdict.t) list;
}

val run :
  ?keep:int ->
  ?jobs:int ->
  ?trace:bool ->
  Site.packed ->
  Runner.config list ->
  summary
(** Runs every config (with tracing off by default — grids are large)
    and keeps up to [keep] (default 3) example configs per failure
    class.  [jobs] (default 1 = sequential, no domains spawned) runs the
    grid on a {!Commit_par.Pool}; the effective executor count is
    [min jobs (Pool.default_jobs ())] — beyond the recommended domain
    count extra domains only time-slice, and since the summary is
    identical for every [jobs], the flag is purely a performance knob.
    Every executor (including the sequential path) reuses one
    {!Runner.scratch} across all its runs.
    @raise Invalid_argument if [jobs < 1]. *)

val of_verdict : protocol:string -> Runner.config * Verdict.t -> summary
(** The summary of one run: the unit the parallel merge folds over.
    [merge]-ing per-run summaries in task order reproduces {!run}. *)

val merge : keep:int -> summary -> summary -> summary
(** The exact merge the parallel path folds with: counts add, the max
    takes the later instant, and example lists concatenate in task
    order truncated to [keep].  Associative, with {e earlier} examples
    winning — merging per-run summaries left to right reproduces the
    sequential selection. *)

val mean_decision_time : summary -> float option
(** [total_decision_time / (runs - undecided)]; [None] when no run
    decided. *)

val run_verdicts :
  ?trace:bool -> Site.packed -> Runner.config list ->
  (Runner.config * Verdict.t) list
(** The raw per-run verdicts, for custom aggregation. *)

val pp_summary : Format.formatter -> summary -> unit
