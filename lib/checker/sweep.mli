(** Running a protocol over a scenario grid and aggregating verdicts.

    This is how the repository phrases the paper's theorems as
    experiments: Theorem 9 becomes "the termination protocol's sweep has
    zero violations and zero blocked runs"; Section 3's observations
    become "the extended-2PC and 3PC+rules sweeps have nonzero
    violations, and here are the first counterexamples". *)

type summary = {
  protocol : string;
  runs : int;
  violations : int;  (** runs that broke atomicity *)
  blocked_runs : int;  (** runs with at least one blocked site *)
  committed : int;
  aborted : int;
  undecided : int;  (** runs where no site decided *)
  max_decision_time : Vtime.t option;
      (** worst decision latency across all runs *)
  violation_examples : (Runner.config * Verdict.t) list;
  blocked_examples : (Runner.config * Verdict.t) list;
}

val run :
  ?keep:int -> ?trace:bool -> Site.packed -> Runner.config list -> summary
(** Runs every config (with tracing off by default — grids are large)
    and keeps up to [keep] (default 3) example configs per failure
    class. *)

val run_verdicts :
  ?trace:bool -> Site.packed -> Runner.config list ->
  (Runner.config * Verdict.t) list
(** The raw per-run verdicts, for custom aggregation. *)

val pp_summary : Format.formatter -> summary -> unit
