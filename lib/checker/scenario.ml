let all_cuts ~n =
  let slaves = Site_id.slaves ~n in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let rest_subsets = subsets rest in
        rest_subsets @ List.map (fun s -> x :: s) rest_subsets
  in
  subsets slaves
  |> List.filter (fun s -> s <> [])
  |> List.map Site_id.Set.of_list
  |> List.sort (fun a b ->
         let c = Int.compare (Site_id.Set.cardinal a) (Site_id.Set.cardinal b) in
         if c <> 0 then c else Site_id.Set.compare a b)

let instants ~t_unit ~until_mult ~per_t =
  if until_mult <= 0 || per_t <= 0 then
    invalid_arg "Scenario.instants: positive arguments required";
  let step = Stdlib.max 1 (Vtime.to_int t_unit / per_t) in
  let horizon = until_mult * Vtime.to_int t_unit in
  let rec go acc at = if at > horizon then List.rev acc else go (at :: acc) (at + step) in
  go [] step

type grid = {
  cuts : Site_id.Set.t list;
  starts : Vtime.t list;
  heals_after : Vtime.t option list;
  delays : Delay.t list;
  seeds : int64 list;
  votes : (Site_id.t * bool) list list;
  crashes : (Site_id.t * Vtime.t) list list;
}

let default_grid ~n ~t_unit =
  {
    cuts = all_cuts ~n;
    starts = instants ~t_unit ~until_mult:8 ~per_t:4;
    heals_after = [ None ];
    delays = [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ];
    seeds = [ 1L; 42L; 1987L ];
    votes = [ [] ];
    crashes = [ [] ];
  }

(* The saturation grid: everything in [default_grid] crossed with heal
   timelines and ten seeds — tens of thousands of runs once a couple of
   protocols and site counts are in play, which is what a multi-core
   box needs before domain parallelism has anything to chew on. *)
let large_grid ~n ~t_unit =
  let t = Vtime.to_int t_unit in
  {
    cuts = all_cuts ~n;
    starts = instants ~t_unit ~until_mult:8 ~per_t:4;
    heals_after =
      [
        None;
        Some (Vtime.of_int t);
        Some (Vtime.of_int (3 * t));
        Some (Vtime.of_int (6 * t));
      ];
    delays =
      [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ];
    seeds = List.init 10 (fun i -> Int64.of_int (i + 1));
    votes = [ [] ];
    crashes = [ [] ];
  }

let master_crash_grid ~t_unit =
  {
    cuts = [ Site_id.Set.empty ];
    starts = [ Vtime.zero ];
    heals_after = [ None ];
    delays =
      [ Delay.minimal; Delay.full ~t_max:t_unit; Delay.uniform ~t_max:t_unit ];
    seeds = [ 1L; 42L; 1987L ];
    votes = [ [] ];
    crashes =
      List.map
        (fun at -> [ (Site_id.master, at) ])
        (instants ~t_unit ~until_mult:6 ~per_t:2);
  }

let configs ~base grid =
  let acc = ref [] in
  List.iter
    (fun cut ->
      List.iter
        (fun start ->
          List.iter
            (fun heal ->
              List.iter
                (fun delay ->
                  List.iter
                    (fun seed ->
                      List.iter
                        (fun votes ->
                          List.iter
                            (fun crashes ->
                              let partition =
                                if Site_id.Set.is_empty cut then Partition.none
                                else
                                  Partition.make
                                    ?heals_at:
                                      (Option.map
                                         (fun d -> Vtime.add start d)
                                         heal)
                                    ~group2:cut ~starts_at:start
                                    ~n:base.Runner.n ()
                              in
                              acc :=
                                {
                                  base with
                                  Runner.partition;
                                  delay;
                                  seed;
                                  votes;
                                  crashes;
                                }
                                :: !acc)
                            grid.crashes)
                        grid.votes)
                    grid.seeds)
                grid.delays)
            grid.heals_after)
        grid.starts)
    grid.cuts;
  List.rev !acc

(* All set partitions of [sites], via the standard recursion: place each
   element into an existing block or a new one. *)
let set_partitions sites =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let smaller = go rest in
        List.concat_map
          (fun blocks ->
            let with_new = [ x ] :: blocks in
            let into_existing =
              List.mapi
                (fun i _ ->
                  List.mapi
                    (fun j block -> if i = j then x :: block else block)
                    blocks)
                blocks
            in
            with_new :: into_existing)
          smaller
  in
  go sites

let all_multi_cuts ~n =
  set_partitions (Site_id.all ~n)
  |> List.filter (fun blocks -> List.length blocks >= 3)
  |> List.map (List.map Site_id.Set.of_list)

let multi_configs ~base ~starts ~delays ~seeds =
  let acc = ref [] in
  List.iter
    (fun groups ->
      List.iter
        (fun start ->
          List.iter
            (fun delay ->
              List.iter
                (fun seed ->
                  let partition =
                    Partition.make_multiple ~groups ~starts_at:start
                      ~n:base.Runner.n ()
                  in
                  acc := { base with Runner.partition; delay; seed } :: !acc)
                seeds)
            delays)
        starts)
    (all_multi_cuts ~n:base.Runner.n);
  List.rev !acc

let config_id (config : Runner.config) =
  Format.asprintf "n=%d %a delay=%a seed=%Ld%s%s" config.n Partition.pp
    config.partition Delay.pp config.delay config.seed
    (if config.votes = [] then ""
     else
       " votes="
       ^ String.concat ","
           (List.map
              (fun (s, v) ->
                Format.asprintf "%a:%s" Site_id.pp s (if v then "y" else "n"))
              config.votes))
    (if config.crashes = [] then ""
     else
       " crash="
       ^ String.concat ","
           (List.map
              (fun (s, at) ->
                Format.asprintf "%a@%d" Site_id.pp s (Vtime.to_int at))
              config.crashes))
