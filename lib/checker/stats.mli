(** Small descriptive statistics over integer samples (virtual times),
    for the latency-distribution benches. *)

type t = {
  count : int;
  min : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
  mean : float;
}

val of_list : int list -> t option
(** [None] on the empty list.  Percentiles use the nearest-rank method
    (deterministic, no interpolation). *)

val pp : Format.formatter -> t -> unit

val pp_in_t : unit_t:Vtime.t -> Format.formatter -> t -> unit
(** Renders every quantile as a multiple of T, e.g.
    ["n=42 min=1.00T p50=3.00T p90=5.00T p99=9.00T max=10.00T"]. *)
