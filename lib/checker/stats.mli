(** Small descriptive statistics over integer samples (virtual times),
    for the latency-distribution benches. *)

type t = {
  count : int;
  min : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
  max : int;
  mean : float;
}

val of_list : int list -> t option
(** [None] on the empty list.  Percentiles use the nearest-rank method
    (deterministic, no interpolation). *)

val pp : Format.formatter -> t -> unit

val pp_in_t : unit_t:Vtime.t -> Format.formatter -> t -> unit
(** Renders every quantile as a multiple of T, e.g.
    ["n=42 min=1.00T p50=3.00T p90=5.00T p99=9.00T max=10.00T"]. *)

(** Streaming accumulation: a bounded-memory histogram that never
    retains individual samples, for long cluster runs where millions of
    latencies stream through.

    Values below 64 get one bucket each (exact); larger values share
    log2-linear buckets of 32 sub-buckets per octave (relative error
    below [1/32]).  Accumulators form a commutative monoid under
    {!Acc.merge}, and merging is {e exactly} equivalent to adding the
    samples into a single accumulator — the per-shard metric pipelines
    rely on that. *)
module Acc : sig
  type acc

  val empty : acc

  val add : acc -> int -> acc
  (** @raise Invalid_argument on a negative sample (virtual times are
      never negative). *)

  val add_list : acc -> int list -> acc

  val add_many : acc -> int array -> acc
  (** Batch fast path: exactly [Array.fold_left add acc samples] (one
      scratch pass instead of one map update per sample).
      @raise Invalid_argument on a negative sample. *)

  val merge : acc -> acc -> acc

  val count : acc -> int

  val total : acc -> int
  (** Sum of all samples (exact). *)

  val to_stats : acc -> t option
  (** [None] for {!empty}.  [count], [min], [max] and [mean] are exact;
      the percentiles are nearest-rank over bucket lower bounds, clamped
      into [\[min, max\]] (so a single-sample accumulator reports that
      sample for every quantile). *)
end
