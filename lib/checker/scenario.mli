(** Scenario grids: the adversary's move space.

    A simple-partition scenario is a cut (which slaves form G2), a
    partition instant, optionally a heal instant (Section 6), a delay
    model and a seed.  The checker enumerates grids of these and runs a
    protocol over every point; because the simulator is deterministic,
    a grid point is a reproducible counterexample when it fails. *)

val all_cuts : n:int -> Site_id.Set.t list
(** Every nonempty proper subset of the slaves, as G2 (the master stays
    in G1 by the paper's convention).  [2^(n-1) - 1] cuts; with the
    all-slaves cut excluded when [n = 2] would make G2 everything —
    i.e. for n sites there are [2^(n-1) - 1] cuts, all valid because G1
    always retains the master. *)

val instants :
  t_unit:Vtime.t -> until_mult:int -> per_t:int -> Vtime.t list
(** Partition instants: [per_t] evenly spaced points per T over
    [(0, until_mult * T\]].  The protocol's whole life fits in a few T,
    so small grids already cover every interleaving class. *)

type grid = {
  cuts : Site_id.Set.t list;
      (** an empty set means "no link cut" — a pure crash timeline *)
  starts : Vtime.t list;
  heals_after : Vtime.t option list;
      (** [None] = static partition; [Some d] heals [d] ticks after it
          starts *)
  delays : Delay.t list;
  seeds : int64 list;
  votes : (Site_id.t * bool) list list;
  crashes : (Site_id.t * Vtime.t) list list;
      (** crash-stop faults: each element is one timeline's list of
          (site, instant) crashes; [[]] means fault-free *)
}

val default_grid : n:int -> t_unit:Vtime.t -> grid
(** All cuts; instants at 4/T over 8T; static; minimal+full+uniform
    delays; 3 seeds; all-yes votes; no crashes. *)

val large_grid : n:int -> t_unit:Vtime.t -> grid
(** The saturation grid ([--grid large]): {!default_grid} crossed with
    heal timelines (static, heal after 1T/3T/6T) and seeds 1..10 —
    11,520 configs at n=3, 26,880 at n=4.  Same move space, just dense
    enough that a multi-core sweep has real work per domain. *)

val master_crash_grid : t_unit:Vtime.t -> grid
(** No link cuts; instead the master crash-stops at 2 instants per T
    over 6T, across the three delay models and three seeds.  Usable by
    every protocol family: the termination protocol visibly blocks or
    aborts on these timelines where Paxos Commit (F>=1) decides. *)

val configs : base:Runner.config -> grid -> Runner.config list
(** The cartesian product, each as a runnable config. *)

val all_multi_cuts : n:int -> Site_id.Set.t list list
(** Every way to split the [n] sites into {e three or more} groups —
    the multiple partitionings of the paper's second impossibility
    theorem.  Empty for [n < 3]. *)

val multi_configs :
  base:Runner.config ->
  starts:Vtime.t list ->
  delays:Delay.t list ->
  seeds:int64 list ->
  Runner.config list
(** A grid over every multiple partitioning of [base.n] sites — used to
    demonstrate that no protocol survives them. *)

val config_id : Runner.config -> string
(** Compact, stable description of a grid point (including any crash
    timeline), for reports. *)
