(** Auditing runs of the termination protocol against the proof's case
    analysis (Section 5.4).

    FACT 1 lists the only six ways a slave in G2 may come to commit;
    FACT 2 the only three ways a site in G1 (the master and, through it,
    the G1 slaves) may.  The termination protocol implementation tags
    every decision with the case it took; this module checks that every
    decision in a run is tagged with an admissible case, giving the
    proofs an executable counterpart. *)

type problem = {
  site : Site_id.t;
  decision : Types.decision;
  reason : string;  (** the offending tag ("-" if the site carried none) *)
  detail : string;
}

val pp_problem : Format.formatter -> problem -> unit

val audit : Runner.result -> (unit, problem list) result
(** Checks every decided, non-crashed site of a termination-protocol
    run.  @raise Invalid_argument when applied to a result produced by
    a different protocol (the tags would be meaningless). *)

val admissible_commit_reasons_slave : variant:Termination.variant -> string list

val admissible_commit_reasons_master : string list

val admissible_abort_reasons_slave : string list

val admissible_abort_reasons_master : string list
