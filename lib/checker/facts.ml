type problem = {
  site : Site_id.t;
  decision : Types.decision;
  reason : string;
  detail : string;
}

let pp_problem fmt p =
  Format.fprintf fmt "%a decided %a with reason %S: %s" Site_id.pp p.site
    Types.pp_decision p.decision p.reason p.detail

let admissible_commit_reasons_slave ~variant =
  Termination.fact1_reasons
  @
  match variant with
  | Termination.Static -> []
  | Termination.Transient -> [ "transient-5t-commit" ]

let admissible_commit_reasons_master = Termination.fact2_reasons

let admissible_abort_reasons_slave =
  [ "voted-no"; "abort-cmd"; "w2-expired"; "ud-yes" ]

let admissible_abort_reasons_master =
  [ "w1-timeout"; "ud-xact"; "no-vote"; "collect-abort" ]

let variant_of_result (result : Runner.result) =
  match result.protocol_name with
  | "termination" -> Termination.Static
  | "termination-transient" -> Termination.Transient
  | other ->
      invalid_arg
        (Printf.sprintf
           "Facts.audit: %s is not a termination-protocol result" other)

let audit (result : Runner.result) =
  let variant = variant_of_result result in
  let problems = ref [] in
  Array.iter
    (fun (s : Runner.site_result) ->
      if not s.crashed then
        match s.decision with
        | None -> ()
        | Some decision ->
            let admissible =
              match (Site_id.is_master s.site, decision) with
              | true, Types.Commit -> admissible_commit_reasons_master
              | true, Types.Abort -> admissible_abort_reasons_master
              | false, Types.Commit -> admissible_commit_reasons_slave ~variant
              | false, Types.Abort -> admissible_abort_reasons_slave
            in
            let tags = List.filter (fun r -> List.mem r admissible) s.reasons in
            let unknown =
              List.filter
                (fun r ->
                  not
                    (List.mem r
                       (admissible_commit_reasons_master
                       @ admissible_abort_reasons_master
                       @ admissible_commit_reasons_slave ~variant
                       @ admissible_abort_reasons_slave)))
                s.reasons
            in
            if tags = [] then
              problems :=
                {
                  site = s.site;
                  decision;
                  reason = (match s.reasons with r :: _ -> r | [] -> "-");
                  detail = "decision carries no admissible FACT case";
                }
                :: !problems
            else
              List.iter
                (fun r ->
                  problems :=
                    {
                      site = s.site;
                      decision;
                      reason = r;
                      detail = "tag outside the proof's case analysis";
                    }
                    :: !problems)
                unknown)
    result.sites;
  match List.rev !problems with [] -> Ok () | ps -> Error ps
