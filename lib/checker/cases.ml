type observation = {
  case : Timing.case option;
  probe_waits : (Site_id.t * Vtime.t option) list;
  result : Runner.result;
}

type fate = F_delivered | F_bounced | F_lost

(* One record per message the tap saw reach a terminal fate. *)
type seen = { env : Types.msg Network.envelope; fate : fate }

let observe protocol (config : Runner.config) =
  let events = ref [] in
  let tap = function
    | Network.Sent _ -> ()
    | Network.Delivered { env; _ } ->
        events := { env; fate = F_delivered } :: !events
    | Network.Bounced { env; _ } -> events := { env; fate = F_bounced } :: !events
    | Network.Lost { env; _ } -> events := { env; fate = F_lost } :: !events
  in
  let result = Runner.run ~tap protocol config in
  let seen = List.rev !events in
  let g2 = Partition.group2 config.partition in
  let in_g2 site = Site_id.Set.mem site g2 in
  let select predicate = List.filter predicate seen in
  let delivered msgs = List.filter (fun s -> s.fate = F_delivered) msgs in
  let bounced msgs = List.filter (fun s -> s.fate = F_bounced) msgs in
  (* Message generations relevant to the case split — always relative to
     crossing the boundary, i.e. traffic with the G2 side. *)
  let prepares_to_g2 =
    select (fun s -> s.env.payload = Types.Prepare && in_g2 s.env.dst)
  in
  let acks_from_g2 =
    select (fun s ->
        s.env.payload = Types.Ack
        && in_g2 s.env.src
        && Site_id.is_master s.env.dst)
  in
  let master_commits_to_g2 =
    select (fun s ->
        s.env.payload = Types.Commit_cmd
        && Site_id.is_master s.env.src
        && in_g2 s.env.dst)
  in
  let g2_commit_receivers =
    delivered master_commits_to_g2
    |> List.map (fun s -> s.env.dst)
    |> Site_id.Set.of_list
  in
  let probes_from probe_senders =
    select (fun s ->
        match s.env.payload with
        | Types.Probe { slave; _ } ->
            in_g2 s.env.src && probe_senders slave
        | Types.Xact | Types.Yes | Types.No | Types.Pre_prepare
        | Types.Pre_ack | Types.Prepare | Types.Ack | Types.Commit_cmd
        | Types.Abort_cmd | Types.State_inquiry _ | Types.State_answer _
        | Types.Px_vote _ | Types.Px_accept _ | Types.Px_poll _
        | Types.Px_promise _ ->
            false)
  in
  let case =
    if Site_id.Set.is_empty g2 then None
    else if prepares_to_g2 = [] then None
    else if delivered prepares_to_g2 = [] then Some Timing.Case_1
    else begin
      let all_prepares_passed = bounced prepares_to_g2 = [] in
      let some_acks_bounced = bounced acks_from_g2 <> [] in
      if not all_prepares_passed then begin
        (* case 2: some prepares pass, some do not *)
        if some_acks_bounced then Some Timing.Case_2_1
        else
          let probes = probes_from (fun _ -> true) in
          if bounced probes <> [] then Some Timing.Case_2_2_1
          else Some Timing.Case_2_2_2
      end
      else if some_acks_bounced then Some Timing.Case_3_1
      else if
        master_commits_to_g2 <> [] && bounced master_commits_to_g2 = []
      then Some Timing.Case_3_2_1
      else begin
        (* case 3.2.2: some master commits did not pass; split on the
           probes of the G2 sites that missed the commit *)
        let missed slave = not (Site_id.Set.mem slave g2_commit_receivers) in
        let probes = probes_from missed in
        if bounced probes <> [] then Some Timing.Case_3_2_2_1
        else Some Timing.Case_3_2_2_2
      end
    end
  in
  let probe_sends =
    List.filter_map
      (fun s ->
        match s.env.payload with
        | Types.Probe { slave; _ } when in_g2 s.env.src ->
            Some (slave, s.env.sent_at)
        | Types.Probe _ | Types.Xact | Types.Yes | Types.No
        | Types.Pre_prepare | Types.Pre_ack | Types.Prepare | Types.Ack
        | Types.Commit_cmd | Types.Abort_cmd | Types.State_inquiry _
        | Types.State_answer _ | Types.Px_vote _ | Types.Px_accept _
        | Types.Px_poll _ | Types.Px_promise _ ->
            None)
      seen
  in
  let probe_waits =
    probe_sends
    |> List.sort_uniq (fun (a, _) (b, _) -> Site_id.compare a b)
    |> List.map (fun (slave, sent_at) ->
           let site = Runner.site_result result slave in
           let wait =
             Option.map (fun at -> Vtime.sub at sent_at) site.decided_at
           in
           (slave, wait))
  in
  { case; probe_waits; result }

let pp_observation fmt o =
  Format.fprintf fmt "%s"
    (match o.case with
    | None -> "no case (partition outside the prepare exchange)"
    | Some c -> Format.asprintf "%a" Timing.pp_case c);
  List.iter
    (fun (slave, wait) ->
      Format.fprintf fmt ", %a wait=%s" Site_id.pp slave
        (match wait with
        | Some w -> Format.asprintf "%a" Vtime.pp w
        | None -> "unbounded"))
    o.probe_waits
