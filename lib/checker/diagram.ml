type event =
  | Message of {
      at : Vtime.t;
      src : Site_id.t;
      dst : Site_id.t;
      label : string;
      kind : [ `Delivered | `Bounced | `Lost ];
    }
  | Decision of { at : Vtime.t; site : Site_id.t; label : string }
  | Boundary of { at : Vtime.t; label : string }

let event_time = function
  | Message { at; _ } | Decision { at; _ } | Boundary { at; _ } -> at

let collect protocol (config : Runner.config) =
  let events = ref [] in
  let note e = events := e :: !events in
  let tap = function
    | Network.Sent _ -> ()
    | Network.Delivered { env; at } ->
        note
          (Message
             {
               at;
               src = env.Network.src;
               dst = env.dst;
               label = Format.asprintf "%a" Types.pp_msg env.payload;
               kind = `Delivered;
             })
    | Network.Bounced { env; at } ->
        (* drawn back towards the sender *)
        note
          (Message
             {
               at;
               src = env.Network.dst;
               dst = env.src;
               label = Format.asprintf "UD(%a)" Types.pp_msg env.payload;
               kind = `Bounced;
             })
    | Network.Lost { env; at } ->
        note
          (Message
             {
               at;
               src = env.Network.src;
               dst = env.dst;
               label = Format.asprintf "%a lost" Types.pp_msg env.payload;
               kind = `Lost;
             })
  in
  let result = Runner.run ~tap protocol config in
  Array.iter
    (fun (s : Runner.site_result) ->
      (match (s.decision, s.decided_at) with
      | Some d, Some at ->
          note
            (Decision
               {
                 at;
                 site = s.site;
                 label =
                   Format.asprintf "%s%s"
                     (match d with
                     | Types.Commit -> "COMMIT"
                     | Types.Abort -> "ABORT")
                     (match s.reasons with
                     | r :: _ -> Printf.sprintf " (%s)" r
                     | [] -> "");
               })
      | _, _ -> ());
      if s.crashed then
        note (Decision { at = Vtime.infinity; site = s.site; label = "CRASHED" }))
    result.sites;
  let p = config.partition in
  if Partition.group_count p > 0 then begin
    note
      (Boundary
         {
           at = Partition.starts_at p;
           label = Format.asprintf "== %a ==" Partition.pp p;
         });
    match Partition.heals_at p with
    | Some h -> note (Boundary { at = h; label = "== partition heals ==" })
    | None -> ()
  end;
  let sorted =
    List.stable_sort
      (fun a b -> Vtime.compare (event_time a) (event_time b))
      (List.rev !events)
  in
  (* drop events past the horizon sentinel except crashes *)
  let sorted =
    List.filter
      (fun e ->
        match e with
        | Decision { at; _ } | Message { at; _ } | Boundary { at; _ } ->
            Vtime.( < ) at Vtime.infinity)
      sorted
  in
  (sorted, result)

let lane_centre ~width i = (i * width) - (width / 2)

let render_events ?(width = 22) ~n events =
  let width = Stdlib.max 12 width in
  (* room after the last lane for decision labels *)
  let line_len = (n * width) + 32 in
  let buffer = Buffer.create 4096 in
  let gutter at = Printf.sprintf "t=%-8d" (Vtime.to_int at) in
  let blank_row () =
    let row = Bytes.make line_len ' ' in
    for i = 1 to n do
      Bytes.set row (lane_centre ~width i) '|'
    done;
    row
  in
  let put_string row pos s =
    String.iteri
      (fun i c ->
        let p = pos + i in
        if p >= 0 && p < Bytes.length row then Bytes.set row p c)
      s
  in
  (* header *)
  let header = Bytes.make line_len ' ' in
  for i = 1 to n do
    let name =
      Format.asprintf "%a" Site_id.pp (Site_id.of_int i)
    in
    put_string header (lane_centre ~width i - (String.length name / 2)) name
  done;
  Buffer.add_string buffer (String.make 10 ' ');
  Buffer.add_string buffer (Bytes.to_string header);
  Buffer.add_char buffer '\n';
  List.iter
    (fun event ->
      let row = blank_row () in
      (match event with
      | Boundary { label; _ } ->
          let pos = Stdlib.max 0 ((line_len - String.length label) / 2) in
          put_string row pos label
      | Decision { site; label; _ } ->
          let c = lane_centre ~width (Site_id.to_int site) in
          put_string row c "*";
          put_string row (c + 2) label
      | Message { src; dst; label; kind; _ } ->
          let cs = lane_centre ~width (Site_id.to_int src) in
          let cd = lane_centre ~width (Site_id.to_int dst) in
          let lo = Stdlib.min cs cd and hi = Stdlib.max cs cd in
          let dash =
            match kind with `Delivered -> '-' | `Bounced -> '~' | `Lost -> '.'
          in
          for p = lo + 1 to hi - 1 do
            Bytes.set row p dash
          done;
          if cd > cs then Bytes.set row (cd - 1) '>'
          else Bytes.set row (cd + 1) '<';
          let label =
            match kind with `Lost -> label ^ " x" | `Delivered | `Bounced -> label
          in
          let mid = ((lo + hi) / 2) - (String.length label / 2) in
          put_string row mid label);
      let line =
        let s = Bytes.to_string row in
        let len = ref (String.length s) in
        while !len > 0 && s.[!len - 1] = ' ' do
          decr len
        done;
        String.sub s 0 !len
      in
      Buffer.add_string buffer (gutter (event_time event));
      Buffer.add_string buffer line;
      Buffer.add_char buffer '\n')
    events;
  Buffer.contents buffer

let run ?width protocol config =
  let events, result = collect protocol config in
  render_events ?width ~n:result.Runner.config.Runner.n events
