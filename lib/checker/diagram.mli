(** ASCII message-sequence diagrams — the paper's Figs. 5–9, generated
    from actual runs.

    One column per site, time flowing downward; each row is an event:
    a delivery (solid arrow), an undeliverable message returning to its
    sender (dashed arrow, labelled [UD(tag)]), a loss, a site decision,
    or the partition going up / healing.  The renderer is deterministic,
    so diagrams are stable artefacts for documentation and tests.

    {v
    t=2000      |------prepare----------------->|
    t=3100      |  == partition {site3} ==      |
    t=4000      |<~~~~~~UD(prepare)~~~~~~~~~~~~~|
    v} *)

val run :
  ?width:int -> Site.packed -> Runner.config -> string
(** Runs the scenario once with a tap and renders the diagram.
    [width] is the lane width in characters (default 22; minimum 12). *)

(** The assembled timeline, for custom rendering or tests. *)
type event =
  | Message of {
      at : Vtime.t;
      src : Site_id.t;
      dst : Site_id.t;
      label : string;
      kind : [ `Delivered | `Bounced | `Lost ];
    }
  | Decision of { at : Vtime.t; site : Site_id.t; label : string }
  | Boundary of { at : Vtime.t; label : string }

val collect :
  Site.packed -> Runner.config -> event list * Runner.result
(** The chronological event list a run produces (network fates from a
    tap, decisions from the result, partition boundaries from the
    config). *)

val render_events : ?width:int -> n:int -> event list -> string
