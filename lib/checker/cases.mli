(** The Section 6 case classifier.

    Section 6 enumerates every way a (possibly transient) partition can
    interleave with the protocol by which message generations pass
    boundary B: prepares, acks, master commits, probes.  This module
    replays a scenario with a network tap, classifies the run into the
    paper's case tree, and measures the quantity the paper bounds — the
    time from a slave's p-state timeout (= its probe send) to its
    decision.  The sec6 bench prints the resulting measured-vs-analytic
    table; the tests assert the bounds. *)

type observation = {
  case : Timing.case option;
      (** [None]: the partition never intersected the prepare/ack/commit
          exchange (e.g. it started before any prepare was sent, or
          there was no partition). *)
  probe_waits : (Site_id.t * Vtime.t option) list;
      (** for every G2 slave that probed: time from probe send to its
          decision; [None] = still undecided at the horizon *)
  result : Runner.result;
}

val observe : Site.packed -> Runner.config -> observation
(** Runs the scenario once with a tap and classifies it. *)

val pp_observation : Format.formatter -> observation -> unit
