(** Correctness verdicts over a finished run.

    The paper's resilience demands two properties of every failure in
    the class: {e atomicity} (no site commits while another aborts) and
    {e nonblocking} (every operational site eventually decides).

    A site still in its {e initial} state at the end of a run never
    learned of the transaction (its xact bounced and, under a static
    partition, nothing else can reach it).  Such a site holds no locks
    and has trivially "performed none of the updates", so it is counted
    as {e vacuous}, not blocked; the paper's FSAs give q a timeout to
    abort, which is the same thing operationally.  Crashed sites
    (Section 7 experiments only) are excluded from both properties. *)

type t = {
  committed : Site_id.t list;
  aborted : Site_id.t list;
  blocked : Site_id.t list;
      (** operational, past the initial state, undecided at the horizon *)
  vacuous : Site_id.t list;  (** never left the initial state *)
  crashed : Site_id.t list;
  atomic : bool;  (** [committed = \[\]] or [aborted = \[\]] *)
  max_decision_time : Vtime.t option;
      (** latest decision instant among deciding sites *)
}

val of_result : Runner.result -> t

val resilient : t -> bool
(** [atomic] and nothing blocked. *)

val outcome : t -> [ `Committed | `Aborted | `Mixed | `Undecided ]
(** The collective outcome ([`Mixed] is an atomicity violation). *)

val pp : Format.formatter -> t -> unit
