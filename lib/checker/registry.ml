type entry = { name : string; summary : string; protocol : Site.packed }

(* The one place a protocol family is registered: tp_sim's --protocol
   enums, `tp_sim list`, and the bench head-to-heads all read this
   table, so adding a family is one line here. *)
let all : entry list =
  [
    {
      name = "2pc";
      summary = "two-phase commit; blocks when the master is unreachable";
      protocol = (module Two_phase);
    }
    ;
    {
      name = "ext2pc";
      summary = "2PC with the paper's extended (cooperative) termination";
      protocol = (module Ext_two_phase);
    }
    ;
    {
      name = "3pc";
      summary = "three-phase commit, no termination rules";
      protocol = (module Three_phase);
    }
    ;
    {
      name = "3pc+rules";
      summary = "3PC with the paper's timeout/UD rules (a)-(d)";
      protocol = (module Three_phase_rules);
    }
    ;
    {
      name = "3pc+rules-strict";
      summary = "3PC rules with the strict rule (c) reading";
      protocol = (module Three_phase_rules.Strict);
    }
    ;
    {
      name = "3pc-skeen";
      summary = "Skeen-style 3PC with cooperative termination";
      protocol = (module Three_phase_skeen);
    }
    ;
    {
      name = "quorum";
      summary = "quorum-commit baseline with state-inquiry termination";
      protocol = (module Quorum);
    }
    ;
    {
      name = "termination";
      summary = "the paper's termination protocol, static partitions";
      protocol = (module Termination.Static);
    }
    ;
    {
      name = "termination-transient";
      summary = "the paper's termination protocol, transient partitions";
      protocol = (module Termination.Transient);
    }
    ;
    {
      name = "4pc-termination";
      summary = "Theorem 10 four-phase commit with termination";
      protocol = (module Theorem10.Four_phase_termination);
    }
    ;
    {
      name = "paxos";
      summary = "Paxos Commit, F=1 (3 acceptors); survives master failure";
      protocol = Paxos_commit.protocol;
    }
    ;
    {
      name = "paxos-f0";
      summary = "Paxos Commit fast path, F=0; collapses to 2PC";
      protocol = Paxos_commit.protocol_f0;
    }
    ;
  ]

let enum = List.map (fun e -> (e.name, e.protocol)) all

let find name = List.find_opt (fun e -> String.equal e.name name) all

let get name =
  match find name with
  | Some e -> e.protocol
  | None -> invalid_arg (Printf.sprintf "Registry.get: unknown protocol %S" name)
