(** Acceptor-majority audit for Paxos Commit runs.

    A commit is only safe if {e every} participant's consensus instance
    chose Prepared, and a value is only chosen once a majority of
    acceptors accepted it at one ballot.  This module reconstructs that
    evidence from the wire: feed it the {!Network.event} stream of a
    run (via [Runner.run ~tap]) and it checks, for each committed run
    and each instance, that some ballot accumulated a majority of
    distinct accepting acceptors.

    The count is a documented {e over}-approximation in one place: a
    leader co-located with an acceptor talks to it by function call, so
    its own accept never crosses the wire.  The audit credits the
    ballot owner's co-located acceptor with one accept when it is not
    already a wire sender.  Any shortfall the audit reports is
    therefore a genuine safety gap; a pass certifies the wire evidence
    plus at most one local accept per ballot. *)

type fact = {
  instance : Site_id.t;  (** whose vote this consensus instance decides *)
  ballot : int;  (** the ballot that reached majority *)
  wire_accepts : int;  (** distinct acceptors whose 2b crossed the wire *)
  leader_local : bool;  (** the owner's co-located acceptor was credited *)
  majority : int;
}

type problem = {
  instance : Site_id.t;
  majority : int;
  best : int;  (** strongest support found across all ballots *)
  detail : string;
}

val pp_fact : Format.formatter -> fact -> unit

val pp_problem : Format.formatter -> problem -> unit

val audit :
  f:int ->
  Runner.result ->
  Types.msg Network.event list ->
  (fact list, problem list) result
(** [audit ~f result events] checks a run of [Paxos_commit.Make] with
    resilience [f].  A run with no committed site passes vacuously with
    [Ok []]; a committed run yields one {!fact} per instance (ascending
    instance order) or the list of under-supported instances. *)

val collecting_tap :
  unit -> (Types.msg Network.event -> unit) * (unit -> Types.msg Network.event list)
(** [let tap, events = collecting_tap () in Runner.run ~tap ...] —
    the recorded events come back in arrival order. *)
