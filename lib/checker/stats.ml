type t = {
  count : int;
  min : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max : int;
  mean : float;
}

let of_list = function
  | [] -> None
  | samples ->
      let sorted = List.sort Int.compare samples in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      (* nearest-rank: the smallest value with at least p% of the mass
         at or below it *)
      let percentile p =
        let rank = int_of_float (ceil (p *. float_of_int n /. 100.)) in
        arr.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
      in
      let total = List.fold_left ( + ) 0 samples in
      Some
        {
          count = n;
          min = arr.(0);
          p50 = percentile 50.;
          p90 = percentile 90.;
          p99 = percentile 99.;
          max = arr.(n - 1);
          mean = float_of_int total /. float_of_int n;
        }

let pp fmt t =
  Format.fprintf fmt "n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f"
    t.count t.min t.p50 t.p90 t.p99 t.max t.mean

let pp_in_t ~unit_t fmt t =
  let in_t v = float_of_int v /. float_of_int (Vtime.to_int unit_t) in
  Format.fprintf fmt
    "n=%-5d min=%.2fT p50=%.2fT p90=%.2fT p99=%.2fT max=%.2fT" t.count
    (in_t t.min) (in_t t.p50) (in_t t.p90) (in_t t.p99) (in_t t.max)
