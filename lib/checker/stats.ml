type t = {
  count : int;
  min : int;
  p50 : int;
  p90 : int;
  p95 : int;
  p99 : int;
  max : int;
  mean : float;
}

let of_list = function
  | [] -> None
  | samples ->
      let sorted = List.sort Int.compare samples in
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      (* nearest-rank: the smallest value with at least p% of the mass
         at or below it *)
      let percentile p =
        let rank = int_of_float (ceil (p *. float_of_int n /. 100.)) in
        arr.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
      in
      let total = List.fold_left ( + ) 0 samples in
      Some
        {
          count = n;
          min = arr.(0);
          p50 = percentile 50.;
          p90 = percentile 90.;
          p95 = percentile 95.;
          p99 = percentile 99.;
          max = arr.(n - 1);
          mean = float_of_int total /. float_of_int n;
        }

let pp fmt t =
  Format.fprintf fmt
    "n=%d min=%d p50=%d p90=%d p95=%d p99=%d max=%d mean=%.1f" t.count t.min
    t.p50 t.p90 t.p95 t.p99 t.max t.mean

module Acc = struct
  module Bucket_map = Map.Make (Int)

  type acc = {
    acc_count : int;
    acc_total : int;
    acc_min : int;
    acc_max : int;
    buckets : int Bucket_map.t;  (* bucket index -> sample count *)
  }

  let empty =
    {
      acc_count = 0;
      acc_total = 0;
      acc_min = max_int;
      acc_max = 0;
      buckets = Bucket_map.empty;
    }

  (* Values 0..63 are their own bucket; v >= 64 lands in one of 32
     sub-buckets of its octave [2^e, 2^(e+1)). *)
  let bucket_of v =
    if v < 64 then v
    else begin
      let e = ref 6 in
      while v lsr (!e + 1) > 0 do
        incr e
      done;
      let sub = (v lsr (!e - 5)) - 32 in
      64 + ((!e - 6) * 32) + sub
    end

  (* Lower bound of the bucket: the smallest value mapping to it. *)
  let bucket_floor idx =
    if idx < 64 then idx
    else
      let e = 6 + ((idx - 64) / 32) in
      let sub = (idx - 64) mod 32 in
      (32 + sub) lsl (e - 5)

  let add acc v =
    if v < 0 then invalid_arg "Stats.Acc.add: negative sample";
    let idx = bucket_of v in
    {
      acc_count = acc.acc_count + 1;
      acc_total = acc.acc_total + v;
      acc_min = Stdlib.min acc.acc_min v;
      acc_max = Stdlib.max acc.acc_max v;
      buckets =
        Bucket_map.update idx
          (function None -> Some 1 | Some c -> Some (c + 1))
          acc.buckets;
    }

  let add_list acc samples = List.fold_left add acc samples

  (* Batch fast path: one pass over the array accumulating per-bucket
     counts in a scratch table, then one map update per distinct
     bucket.  Exactly [Array.fold_left add acc samples] — the domain-
     parallel sweeps lean on that equivalence. *)
  let add_many acc samples =
    if Array.length samples = 0 then acc
    else begin
      let total = ref 0 in
      let mn = ref acc.acc_min and mx = ref acc.acc_max in
      let scratch = Hashtbl.create 64 in
      Array.iter
        (fun v ->
          if v < 0 then invalid_arg "Stats.Acc.add_many: negative sample";
          total := !total + v;
          if v < !mn then mn := v;
          if v > !mx then mx := v;
          let idx = bucket_of v in
          match Hashtbl.find_opt scratch idx with
          | Some cell -> Stdlib.incr cell
          | None -> Hashtbl.add scratch idx (ref 1))
        samples;
      {
        acc_count = acc.acc_count + Array.length samples;
        acc_total = acc.acc_total + !total;
        acc_min = !mn;
        acc_max = !mx;
        buckets =
          Hashtbl.fold
            (fun idx cell buckets ->
              Bucket_map.update idx
                (function None -> Some !cell | Some c -> Some (c + !cell))
                buckets)
            scratch acc.buckets;
      }
    end

  let merge a b =
    if a.acc_count = 0 then b
    else if b.acc_count = 0 then a
    else
      {
        acc_count = a.acc_count + b.acc_count;
        acc_total = a.acc_total + b.acc_total;
        acc_min = Stdlib.min a.acc_min b.acc_min;
        acc_max = Stdlib.max a.acc_max b.acc_max;
        buckets =
          Bucket_map.union (fun _ ca cb -> Some (ca + cb)) a.buckets b.buckets;
      }

  let count acc = acc.acc_count

  let total acc = acc.acc_total

  let to_stats acc =
    if acc.acc_count = 0 then None
    else begin
      let n = acc.acc_count in
      (* nearest-rank over the bucket histogram, as in [of_list] *)
      let percentile p =
        let rank =
          Stdlib.max 1 (int_of_float (ceil (p *. float_of_int n /. 100.)))
        in
        let remaining = ref rank in
        let found = ref acc.acc_max in
        (try
           Bucket_map.iter
             (fun idx c ->
               if !remaining <= c then begin
                 found := bucket_floor idx;
                 raise Exit
               end
               else remaining := !remaining - c)
             acc.buckets
         with Exit -> ());
        Stdlib.max acc.acc_min (Stdlib.min acc.acc_max !found)
      in
      Some
        {
          count = n;
          min = acc.acc_min;
          p50 = percentile 50.;
          p90 = percentile 90.;
          p95 = percentile 95.;
          p99 = percentile 99.;
          max = acc.acc_max;
          mean = float_of_int acc.acc_total /. float_of_int n;
        }
    end
end

let pp_in_t ~unit_t fmt t =
  let in_t v = float_of_int v /. float_of_int (Vtime.to_int unit_t) in
  Format.fprintf fmt
    "n=%-5d min=%.2fT p50=%.2fT p90=%.2fT p95=%.2fT p99=%.2fT max=%.2fT"
    t.count (in_t t.min) (in_t t.p50) (in_t t.p90) (in_t t.p95) (in_t t.p99)
    (in_t t.max)
