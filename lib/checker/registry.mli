(** The protocol registry: the single place a commit-protocol family is
    registered.  [tp_sim]'s [--protocol] enums, [tp_sim list], and the
    bench head-to-heads all consume this table, so adding a family is a
    one-line registration instead of four string matches. *)

type entry = {
  name : string;  (** the CLI name, e.g. ["paxos"] *)
  summary : string;  (** one-line description for [tp_sim list] *)
  protocol : Site.packed;
}

val all : entry list

val enum : (string * Site.packed) list
(** In registration order, ready for [Cmdliner.Arg.enum]. *)

val find : string -> entry option

val get : string -> Site.packed
(** @raise Invalid_argument on an unknown name. *)
