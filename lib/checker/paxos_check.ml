type fact = {
  instance : Site_id.t;
  ballot : int;
  wire_accepts : int;
  leader_local : bool;
  majority : int;
}

type problem = {
  instance : Site_id.t;
  majority : int;
  best : int;
  detail : string;
}

let pp_fact fmt (f : fact) =
  Format.fprintf fmt "i%a chosen at ballot %d: %d wire accept(s)%s >= %d"
    Site_id.pp f.instance f.ballot f.wire_accepts
    (if f.leader_local then " + leader-local" else "")
    f.majority

let pp_problem fmt (p : problem) =
  Format.fprintf fmt "i%a: %s (best %d < majority %d)" Site_id.pp p.instance
    p.detail p.best p.majority

let collecting_tap () =
  let events = ref [] in
  ((fun e -> events := e :: !events), fun () -> List.rev !events)

let acceptor_count ~f ~n = min n ((2 * f) + 1)

let audit ~f (result : Runner.result) events =
  let n = result.config.Runner.n in
  let k = acceptor_count ~f ~n in
  let majority = (k / 2) + 1 in
  let committed =
    Array.exists
      (fun (s : Runner.site_result) -> s.decision = Some Types.Commit)
      result.sites
  in
  if not committed then Ok []
  else begin
    (* (instance, ballot) -> distinct acceptors whose Prepared 2b was
       actually delivered; sends that were lost or bounced never
       reached a leader and must not count as evidence. *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (function
        | Network.Delivered
            {
              env =
                {
                  Network.src;
                  payload =
                    Types.Px_accept { instance; ballot; prepared = true };
                  _;
                };
              _;
            } ->
            let key = (Site_id.to_int instance, ballot) in
            let cur =
              Option.value (Hashtbl.find_opt tbl key)
                ~default:Site_id.Set.empty
            in
            Hashtbl.replace tbl key (Site_id.Set.add src cur)
        | _ -> ())
      events;
    let facts = ref [] and problems = ref [] in
    List.iter
      (fun inst ->
        let i = Site_id.to_int inst in
        let best =
          Hashtbl.fold
            (fun (i', ballot) srcs acc ->
              if i' <> i then acc
              else begin
                let owner = Acceptor.owner ~n ballot in
                let local =
                  Site_id.to_int owner <= k
                  && not (Site_id.Set.mem owner srcs)
                in
                let support =
                  Site_id.Set.cardinal srcs + if local then 1 else 0
                in
                match acc with
                | Some (_, s, _) when s >= support -> acc
                | Some _ | None -> Some (ballot, support, local)
              end)
            tbl None
        in
        match best with
        | Some (ballot, support, local) when support >= majority ->
            facts :=
              {
                instance = inst;
                ballot;
                wire_accepts = (support - if local then 1 else 0);
                leader_local = local;
                majority;
              }
              :: !facts
        | Some (ballot, support, _) ->
            problems :=
              {
                instance = inst;
                majority;
                best = support;
                detail =
                  Printf.sprintf
                    "committed, but the best ballot (%d) lacks an acceptor \
                     majority"
                    ballot;
              }
              :: !problems
        | None ->
            problems :=
              {
                instance = inst;
                majority;
                best = 0;
                detail = "committed with no Prepared 2b on the wire";
              }
              :: !problems)
      (Site_id.all ~n);
    if !problems = [] then Ok (List.rev !facts)
    else Error (List.rev !problems)
  end
