(** JSON export of checker results, for CI pipelines and notebooks.

    A tiny self-contained encoder (no external JSON dependency — the
    container is sealed) plus encoders for the checker's result types.
    Output is deterministic: object fields appear in the order listed
    here, so exported files diff cleanly across runs. *)

(** A minimal JSON document. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact, valid JSON (strings escaped per RFC 8259). *)

val pp : Format.formatter -> json -> unit

val of_string : string -> (json, string) result
(** Parses the dialect {!to_string} emits (plus insignificant
    whitespace): [Ok] round-trips our own output exactly — integer
    literals come back as [Int], fractional ones as [Float] — and
    [Error] carries a message with the byte offset.  Used by the CLI to
    re-read telemetry snapshot streams. *)

val member : string -> json -> json option
(** [member key json] is the value bound to [key] when [json] is an
    object containing it. *)

val of_verdict : Verdict.t -> json

val of_summary : Sweep.summary -> json
(** Includes the failure-example grid points as {!Scenario.config_id}
    strings. *)

val of_stats : Stats.t -> json

val of_observation : Cases.observation -> json
(** The Section 6 classification and per-slave probe waits (without the
    embedded run result). *)
