type summary = {
  protocol : string;
  runs : int;
  violations : int;
  blocked_runs : int;
  committed : int;
  aborted : int;
  undecided : int;
  max_decision_time : Vtime.t option;
  total_decision_time : int;
  violation_examples : (Runner.config * Verdict.t) list;
  blocked_examples : (Runner.config * Verdict.t) list;
}

let run_verdicts ?(trace = false) protocol configs =
  let scratch = Runner.make_scratch () in
  List.map
    (fun config ->
      let config = { config with Runner.trace_enabled = trace } in
      let result = Runner.run ~scratch protocol config in
      (config, Verdict.of_result result))
    configs

let empty ~protocol =
  {
    protocol;
    runs = 0;
    violations = 0;
    blocked_runs = 0;
    committed = 0;
    aborted = 0;
    undecided = 0;
    max_decision_time = None;
    total_decision_time = 0;
    violation_examples = [];
    blocked_examples = [];
  }

(* The summary of one run: the unit the parallel merge folds over. *)
let of_verdict ~protocol (config, (v : Verdict.t)) =
  let base = empty ~protocol in
  let base =
    match Verdict.outcome v with
    | `Mixed ->
        {
          base with
          violations = 1;
          violation_examples = [ (config, v) ];
        }
    | `Committed -> { base with committed = 1 }
    | `Aborted -> { base with aborted = 1 }
    | `Undecided -> { base with undecided = 1 }
  in
  let base =
    if v.blocked <> [] then
      { base with blocked_runs = 1; blocked_examples = [ (config, v) ] }
    else base
  in
  {
    base with
    runs = 1;
    max_decision_time = v.max_decision_time;
    total_decision_time =
      (match v.max_decision_time with Some at -> Vtime.to_int at | None -> 0);
  }

(* First [keep] elements of [a @ b] in O(keep) work: lengths are
   counted only up to [keep + 1] (never a full [List.length] scan), the
   append is never materialised beyond the cap, and a left list that
   already fills the cap is returned physically unchanged — so an
   at-cap accumulator is never rebuilt by later merges. *)
let rec prefix budget l =
  if budget = 0 then []
  else match l with [] -> [] | x :: rest -> x :: prefix (budget - 1) rest

let cap_append ~keep a b =
  let rec len_capped n l =
    if n > keep then n
    else match l with [] -> n | _ :: rest -> len_capped (n + 1) rest
  in
  let la = len_capped 0 a in
  if la > keep then prefix keep a
  else if la = keep || b == [] then a
  else match prefix (keep - la) b with [] -> a | extra -> a @ extra

let merge ~keep a b =
  {
    protocol = a.protocol;
    runs = a.runs + b.runs;
    violations = a.violations + b.violations;
    blocked_runs = a.blocked_runs + b.blocked_runs;
    committed = a.committed + b.committed;
    aborted = a.aborted + b.aborted;
    undecided = a.undecided + b.undecided;
    max_decision_time =
      (match (a.max_decision_time, b.max_decision_time) with
      | None, later | later, None -> later
      | Some p, Some q -> Some (Vtime.max p q));
    total_decision_time = a.total_decision_time + b.total_decision_time;
    violation_examples =
      cap_append ~keep a.violation_examples b.violation_examples;
    blocked_examples = cap_append ~keep a.blocked_examples b.blocked_examples;
  }

let eval ~protocol ~protocol_name ~trace scratch config =
  let config = { config with Runner.trace_enabled = trace } in
  let result = Runner.run ~scratch protocol config in
  of_verdict ~protocol:protocol_name (config, Verdict.of_result result)

let run ?(keep = 3) ?jobs ?(trace = false) protocol configs =
  let protocol_name = Site.name protocol in
  let eval = eval ~protocol ~protocol_name ~trace in
  let sequential () =
    (* Same scratch reuse as the parallel path, so jobs=1 pays the same
       per-run cost as one executor of a pool. *)
    let scratch = Runner.make_scratch () in
    List.fold_left
      (fun acc config -> merge ~keep acc (eval scratch config))
      (empty ~protocol:protocol_name)
      configs
  in
  match jobs with
  | Some j when j < 1 -> invalid_arg "Sweep.run: jobs must be >= 1"
  | None | Some 1 -> sequential ()
  | Some j -> (
      (* Beyond the recommended domain count extra domains only
         time-slice (and fight the stop-the-world minor GC), and the
         summary is identical either way, so clamp: --jobs is purely a
         performance knob. *)
      let domains = Stdlib.min j (Commit_par.Pool.default_jobs ()) in
      if domains = 1 then sequential ()
      else
        match Array.of_list configs with
        | [||] -> empty ~protocol:protocol_name
        | configs ->
            (* Chunks fine enough to balance uneven run costs, coarse
               enough to amortise dispatch; any choice yields the same
               summary (the merge is associative and in task order). *)
            let chunk =
              Stdlib.max 1
                ((Array.length configs + (4 * domains) - 1) / (4 * domains))
            in
            Commit_par.Pool.with_pool ~domains (fun pool ->
                Commit_par.Pool.map_reduce_scratch pool ~chunk
                  ~init:Runner.make_scratch ~f:eval ~merge:(merge ~keep)
                  configs))

let mean_decision_time s =
  let decided = s.runs - s.undecided in
  if decided <= 0 then None
  else Some (float_of_int s.total_decision_time /. float_of_int decided)

let pp_summary fmt s =
  Format.fprintf fmt
    "%-22s runs=%-5d violations=%-4d blocked=%-4d commit=%-4d abort=%-4d \
     undecided=%-3d%s%s"
    s.protocol s.runs s.violations s.blocked_runs s.committed s.aborted
    s.undecided
    (match s.max_decision_time with
    | Some t -> Format.asprintf " max-decide=%a" Vtime.pp t
    | None -> "")
    (match mean_decision_time s with
    | Some mean -> Format.asprintf " mean-decide=%.0f" mean
    | None -> "");
  List.iter
    (fun (config, v) ->
      Format.fprintf fmt "@.    violation at %s: %a" (Scenario.config_id config)
        Verdict.pp v)
    s.violation_examples;
  List.iter
    (fun (config, v) ->
      Format.fprintf fmt "@.    blocked at %s: %a" (Scenario.config_id config)
        Verdict.pp v)
    s.blocked_examples
