type summary = {
  protocol : string;
  runs : int;
  violations : int;
  blocked_runs : int;
  committed : int;
  aborted : int;
  undecided : int;
  max_decision_time : Vtime.t option;
  violation_examples : (Runner.config * Verdict.t) list;
  blocked_examples : (Runner.config * Verdict.t) list;
}

let run_verdicts ?(trace = false) protocol configs =
  List.map
    (fun config ->
      let config = { config with Runner.trace_enabled = trace } in
      let result = Runner.run protocol config in
      (config, Verdict.of_result result))
    configs

let run ?(keep = 3) ?trace protocol configs =
  let verdicts = run_verdicts ?trace protocol configs in
  let violations = ref 0 and blocked = ref 0 in
  let committed = ref 0 and aborted = ref 0 and undecided = ref 0 in
  let max_time = ref None in
  let violation_examples = ref [] and blocked_examples = ref [] in
  List.iter
    (fun (config, (v : Verdict.t)) ->
      (match Verdict.outcome v with
      | `Mixed ->
          incr violations;
          if List.length !violation_examples < keep then
            violation_examples := (config, v) :: !violation_examples
      | `Committed -> incr committed
      | `Aborted -> incr aborted
      | `Undecided -> incr undecided);
      if v.blocked <> [] then begin
        incr blocked;
        if List.length !blocked_examples < keep then
          blocked_examples := (config, v) :: !blocked_examples
      end;
      match v.max_decision_time with
      | Some at ->
          max_time :=
            Some
              (match !max_time with
              | None -> at
              | Some prior -> Vtime.max prior at)
      | None -> ())
    verdicts;
  {
    protocol = Site.name protocol;
    runs = List.length verdicts;
    violations = !violations;
    blocked_runs = !blocked;
    committed = !committed;
    aborted = !aborted;
    undecided = !undecided;
    max_decision_time = !max_time;
    violation_examples = List.rev !violation_examples;
    blocked_examples = List.rev !blocked_examples;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "%-22s runs=%-5d violations=%-4d blocked=%-4d commit=%-4d abort=%-4d \
     undecided=%-3d%s"
    s.protocol s.runs s.violations s.blocked_runs s.committed s.aborted
    s.undecided
    (match s.max_decision_time with
    | Some t -> Format.asprintf " max-decide=%a" Vtime.pp t
    | None -> "");
  List.iter
    (fun (config, v) ->
      Format.fprintf fmt "@.    violation at %s: %a" (Scenario.config_id config)
        Verdict.pp v)
    s.violation_examples;
  List.iter
    (fun (config, v) ->
      Format.fprintf fmt "@.    blocked at %s: %a" (Scenario.config_id config)
        Verdict.pp v)
    s.blocked_examples
