type summary = {
  protocol : string;
  runs : int;
  violations : int;
  blocked_runs : int;
  committed : int;
  aborted : int;
  undecided : int;
  max_decision_time : Vtime.t option;
  total_decision_time : int;
  violation_examples : (Runner.config * Verdict.t) list;
  blocked_examples : (Runner.config * Verdict.t) list;
}

let run_verdicts ?(trace = false) protocol configs =
  List.map
    (fun config ->
      let config = { config with Runner.trace_enabled = trace } in
      let result = Runner.run protocol config in
      (config, Verdict.of_result result))
    configs

let empty ~protocol =
  {
    protocol;
    runs = 0;
    violations = 0;
    blocked_runs = 0;
    committed = 0;
    aborted = 0;
    undecided = 0;
    max_decision_time = None;
    total_decision_time = 0;
    violation_examples = [];
    blocked_examples = [];
  }

(* The summary of one run: the unit the parallel merge folds over. *)
let of_verdict ~protocol (config, (v : Verdict.t)) =
  let base = empty ~protocol in
  let base =
    match Verdict.outcome v with
    | `Mixed ->
        {
          base with
          violations = 1;
          violation_examples = [ (config, v) ];
        }
    | `Committed -> { base with committed = 1 }
    | `Aborted -> { base with aborted = 1 }
    | `Undecided -> { base with undecided = 1 }
  in
  let base =
    if v.blocked <> [] then
      { base with blocked_runs = 1; blocked_examples = [ (config, v) ] }
    else base
  in
  {
    base with
    runs = 1;
    max_decision_time = v.max_decision_time;
    total_decision_time =
      (match v.max_decision_time with Some at -> Vtime.to_int at | None -> 0);
  }

let take keep l =
  if List.length l <= keep then l else List.filteri (fun i _ -> i < keep) l

let merge ~keep a b =
  {
    protocol = a.protocol;
    runs = a.runs + b.runs;
    violations = a.violations + b.violations;
    blocked_runs = a.blocked_runs + b.blocked_runs;
    committed = a.committed + b.committed;
    aborted = a.aborted + b.aborted;
    undecided = a.undecided + b.undecided;
    max_decision_time =
      (match (a.max_decision_time, b.max_decision_time) with
      | None, later | later, None -> later
      | Some p, Some q -> Some (Vtime.max p q));
    total_decision_time = a.total_decision_time + b.total_decision_time;
    violation_examples = take keep (a.violation_examples @ b.violation_examples);
    blocked_examples = take keep (a.blocked_examples @ b.blocked_examples);
  }

let run ?(keep = 3) ?jobs ?(trace = false) protocol configs =
  let protocol_name = Site.name protocol in
  let eval config =
    let config = { config with Runner.trace_enabled = trace } in
    let result = Runner.run protocol config in
    of_verdict ~protocol:protocol_name (config, Verdict.of_result result)
  in
  match jobs with
  | Some j when j < 1 -> invalid_arg "Sweep.run: jobs must be >= 1"
  | None | Some 1 ->
      List.fold_left
        (fun acc config -> merge ~keep acc (eval config))
        (empty ~protocol:protocol_name)
        configs
  | Some j -> (
      match Array.of_list configs with
      | [||] -> empty ~protocol:protocol_name
      | configs ->
          (* Chunks fine enough to balance uneven run costs, coarse
             enough to amortise dispatch; any choice yields the same
             summary (the merge is associative and in task order). *)
          let chunk =
            Stdlib.max 1 ((Array.length configs + (4 * j) - 1) / (4 * j))
          in
          Commit_par.Pool.with_pool ~domains:j (fun pool ->
              Commit_par.Pool.map_reduce pool ~chunk eval ~merge:(merge ~keep)
                configs))

let mean_decision_time s =
  let decided = s.runs - s.undecided in
  if decided <= 0 then None
  else Some (float_of_int s.total_decision_time /. float_of_int decided)

let pp_summary fmt s =
  Format.fprintf fmt
    "%-22s runs=%-5d violations=%-4d blocked=%-4d commit=%-4d abort=%-4d \
     undecided=%-3d%s%s"
    s.protocol s.runs s.violations s.blocked_runs s.committed s.aborted
    s.undecided
    (match s.max_decision_time with
    | Some t -> Format.asprintf " max-decide=%a" Vtime.pp t
    | None -> "")
    (match mean_decision_time s with
    | Some mean -> Format.asprintf " mean-decide=%.0f" mean
    | None -> "");
  List.iter
    (fun (config, v) ->
      Format.fprintf fmt "@.    violation at %s: %a" (Scenario.config_id config)
        Verdict.pp v)
    s.violation_examples;
  List.iter
    (fun (config, v) ->
      Format.fprintf fmt "@.    blocked at %s: %a" (Scenario.config_id config)
        Verdict.pp v)
    s.blocked_examples
