(** The interface every executable commit protocol implements.

    One module = one protocol; the runner instantiates it once per
    participating site.  Protocol modules are pure state machines over
    {!Ctx.t} operations — they never touch the engine or network
    directly, which keeps them within the paper's model. *)

type role =
  | Master_role
  | Slave_role of { vote_yes : bool }
      (** [vote_yes = false]: this slave unilaterally aborts when the
          transaction arrives (sends "no"). *)

val pp_role : Format.formatter -> role -> unit

module type S = sig
  val name : string
  (** Stable identifier, e.g. ["2pc"], ["termination"]. *)

  val blocking_by_design : bool
  (** Whether the protocol is expected to block under partition (used by
      the checker to phrase verdicts; e.g. 2PC blocks, quorum blocks the
      minority side). *)

  type t

  val create : Ctx.t -> role -> t

  val begin_transaction : t -> unit
  (** The user's "request" arriving.  Meaningful only at the master;
      slaves ignore it. *)

  val on_delivery : t -> Types.msg Network.delivery -> unit

  val state_name : t -> string
  (** The current local state, using the paper's names (q1, w1, p1, c1,
      a1; q, w, p, c, a; plus termination sub-states like "p1/collect",
      "p/probing").  For traces, tests and the autopsy example. *)
end

type packed = (module S)

val name : packed -> string
