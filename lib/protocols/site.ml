type role = Master_role | Slave_role of { vote_yes : bool }

let pp_role fmt = function
  | Master_role -> Format.pp_print_string fmt "master"
  | Slave_role { vote_yes } ->
      Format.fprintf fmt "slave(vote=%s)" (if vote_yes then "yes" else "no")

module type S = sig
  val name : string

  val blocking_by_design : bool

  type t

  val create : Ctx.t -> role -> t

  val begin_transaction : t -> unit

  val on_delivery : t -> Types.msg Network.delivery -> unit

  val state_name : t -> string
end

type packed = (module S)

let name (module P : S) = P.name
