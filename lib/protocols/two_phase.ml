let name = "2pc"

let blocking_by_design = true

let tmpl_ud_dropped =
  Ctx.msg_template ~prefix:"UD(" ~suffix:") ignored (2pc has no UD transitions)"

type master_state =
  | M_initial
  | M_wait of { yes : Site_id.Set.t }  (** w1: collecting votes *)
  | M_committed
  | M_aborted

type slave_state = S_initial | S_wait | S_committed | S_aborted

type machine = Master of master_state | Slave of { vote_yes : bool; state : slave_state }

type t = { ctx : Ctx.t; mutable machine : machine }

let create ctx role =
  match role with
  | Site.Master_role -> { ctx; machine = Master M_initial }
  | Site.Slave_role { vote_yes } ->
      { ctx; machine = Slave { vote_yes; state = S_initial } }

let state_name t =
  match t.machine with
  | Master M_initial -> "q1"
  | Master (M_wait _) -> "w1"
  | Master M_committed -> "c1"
  | Master M_aborted -> "a1"
  | Slave { state = S_initial; _ } -> "q"
  | Slave { state = S_wait; _ } -> "w"
  | Slave { state = S_committed; _ } -> "c"
  | Slave { state = S_aborted; _ } -> "a"

let begin_transaction t =
  match t.machine with
  | Master M_initial ->
      Ctx.log_text t.ctx "request received; sending xact to all slaves";
      Ctx.broadcast_slaves t.ctx Types.Xact;
      t.machine <- Master (M_wait { yes = Site_id.Set.empty })
  | Master (M_wait _ | M_committed | M_aborted) | Slave _ -> ()

let master_all_yes t yes =
  Site_id.Set.cardinal yes = Ctx.n t.ctx - 1

let on_master t state (envelope : Types.msg Network.envelope) =
  match (state, envelope.payload) with
  | M_wait { yes }, Types.Yes ->
      let yes = Site_id.Set.add envelope.src yes in
      if master_all_yes t yes then begin
        Ctx.broadcast_slaves t.ctx Types.Commit_cmd;
        t.machine <- Master M_committed;
        Ctx.decide t.ctx Types.Commit
      end
      else t.machine <- Master (M_wait { yes })
  | M_wait _, Types.No ->
      Ctx.broadcast_slaves t.ctx Types.Abort_cmd;
      t.machine <- Master M_aborted;
      Ctx.decide t.ctx Types.Abort
  | (M_initial | M_committed | M_aborted), _ | M_wait _, _ ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_slave t ~vote_yes state (envelope : Types.msg Network.envelope) =
  match (state, envelope.payload) with
  | S_initial, Types.Xact ->
      if vote_yes then begin
        Ctx.send_master t.ctx Types.Yes;
        t.machine <- Slave { vote_yes; state = S_wait }
      end
      else begin
        Ctx.send_master t.ctx Types.No;
        t.machine <- Slave { vote_yes; state = S_aborted };
        Ctx.decide t.ctx Types.Abort ~reason:"voted no"
      end
  | (S_initial | S_wait), Types.Commit_cmd ->
      t.machine <- Slave { vote_yes; state = S_committed };
      Ctx.decide t.ctx Types.Commit
  | (S_initial | S_wait), Types.Abort_cmd ->
      t.machine <- Slave { vote_yes; state = S_aborted };
      Ctx.decide t.ctx Types.Abort
  | (S_initial | S_wait | S_committed | S_aborted), _ ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_delivery t = function
  | Network.Undeliverable envelope ->
      (* Pure 2PC has no undeliverable-message transitions: the bounce is
         observed and dropped — this is exactly why it blocks. *)
      Ctx.log_msg t.ctx tmpl_ud_dropped envelope.payload
  | Network.Msg envelope -> (
      match t.machine with
      | Master state -> on_master t state envelope
      | Slave { vote_yes; state } -> on_slave t ~vote_yes state envelope)
