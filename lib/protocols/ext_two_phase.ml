let name = "ext2pc"

let blocking_by_design = false

type master_state =
  | M_initial
  | M_wait of { yes : Site_id.Set.t }
  | M_sent_commits of { acks : Site_id.Set.t }  (** p1 *)
  | M_committed
  | M_aborted

type slave_state = S_initial | S_wait | S_committed | S_aborted

type machine =
  | Master of master_state
  | Slave of { vote_yes : bool; state : slave_state }

type t = { ctx : Ctx.t; timer : Ctx.Timer_slot.slot; mutable machine : machine }

let create ctx role =
  let timer = Ctx.Timer_slot.create () in
  match role with
  | Site.Master_role -> { ctx; timer; machine = Master M_initial }
  | Site.Slave_role { vote_yes } ->
      { ctx; timer; machine = Slave { vote_yes; state = S_initial } }

let state_name t =
  match t.machine with
  | Master M_initial -> "q1"
  | Master (M_wait _) -> "w1"
  | Master (M_sent_commits _) -> "p1"
  | Master M_committed -> "c1"
  | Master M_aborted -> "a1"
  | Slave { state = S_initial; _ } -> "q"
  | Slave { state = S_wait; _ } -> "w"
  | Slave { state = S_committed; _ } -> "c"
  | Slave { state = S_aborted; _ } -> "a"

let master_abort t ~reason =
  Ctx.Timer_slot.cancel t.timer;
  Ctx.broadcast_slaves t.ctx Types.Abort_cmd;
  t.machine <- Master M_aborted;
  Ctx.decide t.ctx Types.Abort ~reason

let master_commit t ~reason =
  Ctx.Timer_slot.cancel t.timer;
  t.machine <- Master M_committed;
  Ctx.decide t.ctx Types.Commit ~reason

let begin_transaction t =
  match t.machine with
  | Master M_initial ->
      Ctx.broadcast_slaves t.ctx Types.Xact;
      t.machine <- Master (M_wait { yes = Site_id.Set.empty });
      Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "w1-timeout") (fun () ->
          match t.machine with
          | Master (M_wait _) -> master_abort t ~reason:"w1 timeout (Rule a)"
          | Master (M_initial | M_sent_commits _ | M_committed | M_aborted)
          | Slave _ ->
              ())
  | Master (M_wait _ | M_sent_commits _ | M_committed | M_aborted) | Slave _ ->
      ()

let slave_abort t ~vote_yes ~reason =
  Ctx.Timer_slot.cancel t.timer;
  t.machine <- Slave { vote_yes; state = S_aborted };
  Ctx.decide t.ctx Types.Abort ~reason

let slave_commit t ~vote_yes ~reason =
  Ctx.Timer_slot.cancel t.timer;
  Ctx.send_master t.ctx Types.Ack;
  t.machine <- Slave { vote_yes; state = S_committed };
  Ctx.decide t.ctx Types.Commit ~reason

let on_master_msg t state (envelope : Types.msg Network.envelope) =
  match (state, envelope.payload) with
  | M_wait { yes }, Types.Yes ->
      let yes = Site_id.Set.add envelope.src yes in
      if Site_id.Set.cardinal yes = Ctx.n t.ctx - 1 then begin
        Ctx.broadcast_slaves t.ctx Types.Commit_cmd;
        t.machine <- Master (M_sent_commits { acks = Site_id.Set.empty });
        Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "p1-timeout")
          (fun () ->
            match t.machine with
            | Master (M_sent_commits _) ->
                master_commit t ~reason:"p1 timeout (Rule a)"
            | Master (M_initial | M_wait _ | M_committed | M_aborted)
            | Slave _ ->
                ())
      end
      else t.machine <- Master (M_wait { yes })
  | M_wait _, Types.No -> master_abort t ~reason:"received a no vote"
  | M_sent_commits { acks }, Types.Ack ->
      let acks = Site_id.Set.add envelope.src acks in
      if Site_id.Set.cardinal acks = Ctx.n t.ctx - 1 then
        master_commit t ~reason:"all acks received"
      else t.machine <- Master (M_sent_commits { acks })
  | (M_initial | M_committed | M_aborted), _
  | M_wait _, _
  | M_sent_commits _, _ ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_master_ud t state (envelope : Types.msg Network.envelope) =
  match state with
  | M_wait _ ->
      master_abort t
        ~reason:
          (Format.asprintf "UD(%a) in w1 (Rule b)" Types.pp_msg envelope.payload)
  | M_sent_commits _ ->
      (* Rule(b): S(p1) is the slave wait state, whose timeout goes to
         abort — so an undeliverable message received in p1 aborts. *)
      master_abort t
        ~reason:
          (Format.asprintf "UD(%a) in p1 (Rule b)" Types.pp_msg envelope.payload)
  | M_initial | M_committed | M_aborted ->
      Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

let on_slave_msg t ~vote_yes state (envelope : Types.msg Network.envelope) =
  match (state, envelope.payload) with
  | S_initial, Types.Xact ->
      if vote_yes then begin
        Ctx.send_master t.ctx Types.Yes;
        t.machine <- Slave { vote_yes; state = S_wait };
        Ctx.Timer_slot.set t.ctx t.timer ~mult_t:3 ~label:(Label.Static "w-timeout") (fun () ->
            match t.machine with
            | Slave { state = S_wait; _ } ->
                slave_abort t ~vote_yes ~reason:"w timeout (Rule a)"
            | Slave { state = S_initial | S_committed | S_aborted; _ }
            | Master _ ->
                ())
      end
      else begin
        Ctx.send_master t.ctx Types.No;
        slave_abort t ~vote_yes ~reason:"voted no"
      end
  | (S_initial | S_wait), Types.Commit_cmd ->
      slave_commit t ~vote_yes ~reason:"commit command"
  | (S_initial | S_wait), Types.Abort_cmd ->
      slave_abort t ~vote_yes ~reason:"abort command"
  | (S_initial | S_wait | S_committed | S_aborted), _ ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_slave_ud t ~vote_yes state (envelope : Types.msg Network.envelope) =
  match state with
  | S_wait ->
      slave_abort t ~vote_yes
        ~reason:
          (Format.asprintf "UD(%a) in w (Rule b)" Types.pp_msg envelope.payload)
  | S_initial | S_committed | S_aborted ->
      Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

let on_delivery t delivery =
  match (t.machine, delivery) with
  | Master state, Network.Msg envelope -> on_master_msg t state envelope
  | Master state, Network.Undeliverable envelope -> on_master_ud t state envelope
  | Slave { vote_yes; state }, Network.Msg envelope ->
      on_slave_msg t ~vote_yes state envelope
  | Slave { vote_yes; state }, Network.Undeliverable envelope ->
      on_slave_ud t ~vote_yes state envelope
