(** Quorum-based commit (Skeen 1982 — the paper's reference [5]),
    implemented as the comparison baseline.

    The failure-free flow is three-phase (it satisfies Lemma 1/2).  On
    detecting a partition (timeout or returned message) a site starts
    {e quorum termination}: it polls every site for its phase, waits one
    round trip, and decides over the group it can reach —

    - any committed member: commit;  any aborted member: abort;
    - a prepared member and group weight >= commit quorum [V_C]: commit;
    - no prepared member and group weight >= abort quorum [V_A]: abort;
    - otherwise stay blocked and re-poll every 5T.

    Skeen's protocol assigns every site a vote weight [V_i] with
    [V_C + V_A > sum V_i], so the two sides of a simple partition can
    never decide differently — but a side without a quorum {e blocks},
    precisely the availability loss the paper's termination protocol
    avoids (at the price of its stronger model assumptions).  Transient
    partitions are handled by the periodic re-poll.

    The default export gives every site one vote (majority quorums);
    {!Make} takes arbitrary positive weights, e.g. a heavier master so
    the master's side stays live in more cuts. *)

module type WEIGHTS = sig
  val weight : Site_id.t -> int
  (** must be positive *)
end

module Uniform_weights : WEIGHTS

module Make (_ : WEIGHTS) : sig
  include Site.S

  val total_weight : n:int -> int

  val commit_quorum : n:int -> int

  val abort_quorum : n:int -> int
end

include Site.S

val commit_quorum : n:int -> int

val abort_quorum : n:int -> int
