(** The two-phase commit protocol (paper Fig. 1).

    Pure 2PC: no timeout and no undeliverable-message transitions.  Under
    a partition (or a silent master) every in-doubt site blocks, holding
    its locks — the behaviour whose cost motivates the whole paper.  The
    master decides at the instant it sends the commit/abort commands. *)

include Site.S
