(** The extended two-phase commit protocol (paper Fig. 2).

    Two-phase commit with an acknowledgement phase, augmented with the
    timeout and undeliverable-message transitions obtained from Rule(a)
    and Rule(b) (Skeen & Stonebraker).  These rules are {e necessary and
    sufficient} for two-site simple partitioning with return of
    messages, so for [n = 2] this protocol is resilient; Section 3 of
    the paper shows it is inconsistent for [n >= 3], which the fig2
    bench reproduces.

    Derived transitions (see DESIGN.md for the reconstruction):
    - master w1: timeout -> abort; UD -> abort
    - master p1 (sent commits, awaiting acks): timeout -> commit
      (a slave commit state is in C(p1)); UD -> abort (the sender set of
      p1 is the slave wait state, whose timeout goes to abort)
    - slave w: timeout -> abort; UD -> abort *)

include Site.S
