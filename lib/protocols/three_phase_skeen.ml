let name = "3pc-skeen"

let blocking_by_design = false

let tmpl_coop_termination =
  Ctx.str_template ~prefix:"cooperative termination (" ~suffix:")"

type base_state =
  | B_initial
  | B_wait of { yes : Site_id.Set.t }  (** master: w1 collecting; slave: w *)
  | B_prepared of { acks : Site_id.Set.t }  (** master: p1; slave: p *)
  | B_committed
  | B_aborted

type term_stage =
  | Collecting of { answers : Types.phase Site_id.Map.t }
  | Repreparing of { pending : Site_id.Set.t }

type t = {
  ctx : Ctx.t;
  role : Site.role;
  timer : Ctx.Timer_slot.slot;
  mutable base : base_state;
  mutable terminating : term_stage option;
}

let create ctx role =
  {
    ctx;
    role;
    timer = Ctx.Timer_slot.create ();
    base = B_initial;
    terminating = None;
  }

let is_master t =
  match t.role with Site.Master_role -> true | Site.Slave_role _ -> false

let state_name t =
  let base =
    match (t.base, is_master t) with
    | B_initial, true -> "q1"
    | B_wait _, true -> "w1"
    | B_prepared _, true -> "p1"
    | B_committed, true -> "c1"
    | B_aborted, true -> "a1"
    | B_initial, false -> "q"
    | B_wait _, false -> "w"
    | B_prepared _, false -> "p"
    | B_committed, false -> "c"
    | B_aborted, false -> "a"
  in
  match t.terminating with
  | None -> base
  | Some (Collecting _) -> base ^ "/term-collect"
  | Some (Repreparing _) -> base ^ "/term-reprepare"

let phase_of t =
  match t.base with
  | B_initial -> Types.Ph_initial
  | B_wait _ -> Types.Ph_wait
  | B_prepared _ -> Types.Ph_prepared
  | B_committed -> Types.Ph_committed
  | B_aborted -> Types.Ph_aborted

let finish t decision ~reason =
  Ctx.Timer_slot.cancel t.timer;
  t.terminating <- None;
  t.base <-
    (match decision with Types.Commit -> B_committed | Types.Abort -> B_aborted);
  Ctx.decide t.ctx decision ~reason

let decide_and_tell t decision ~reason =
  finish t decision ~reason;
  Ctx.broadcast_all t.ctx
    (match decision with
    | Types.Commit -> Types.Commit_cmd
    | Types.Abort -> Types.Abort_cmd)

(* ---- Skeen's cooperative termination ---------------------------------- *)

let rec start_termination t ~why =
  match t.base with
  | B_committed | B_aborted -> ()
  | B_initial | B_wait _ | B_prepared _ ->
      Ctx.log_str t.ctx tmpl_coop_termination why;
      t.terminating <- Some (Collecting { answers = Site_id.Map.empty });
      Ctx.broadcast_all t.ctx
        (Types.State_inquiry { coordinator = Ctx.self t.ctx });
      Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "term-collect")
        (fun () -> close_collection t)

and close_collection t =
  match t.terminating with
  | None | Some (Repreparing _) -> ()
  | Some (Collecting { answers }) ->
      let answers = Site_id.Map.add (Ctx.self t.ctx) (phase_of t) answers in
      let has phase = Site_id.Map.exists (fun _ p -> p = phase) answers in
      if has Types.Ph_committed then
        decide_and_tell t Types.Commit ~reason:"term: a respondent committed"
      else if has Types.Ph_aborted then
        decide_and_tell t Types.Abort ~reason:"term: a respondent aborted"
      else if not (has Types.Ph_prepared) then
        (* Nobody reachable is prepared, so nobody anywhere can have
           committed (commitment requires every site prepared) — sound
           for site failures, unsound across a partition boundary. *)
        decide_and_tell t Types.Abort ~reason:"term: nobody prepared"
      else begin
        (* Someone prepared: bring the waiters forward, then commit. *)
        let waiters =
          Site_id.Map.fold
            (fun site phase acc ->
              if
                phase = Types.Ph_wait
                && not (Site_id.equal site (Ctx.self t.ctx))
              then Site_id.Set.add site acc
              else acc)
            answers Site_id.Set.empty
        in
        if Site_id.Set.is_empty waiters then
          decide_and_tell t Types.Commit ~reason:"term: prepared, no waiters"
        else begin
          Site_id.Set.iter (fun site -> Ctx.send t.ctx site Types.Prepare) waiters;
          t.terminating <- Some (Repreparing { pending = waiters });
          Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "term-reprepare")
            (fun () -> finish_reprepare t)
        end
      end

and finish_reprepare t =
  match t.terminating with
  | Some (Repreparing _) ->
      decide_and_tell t Types.Commit ~reason:"term: re-prepared and committed"
  | None | Some (Collecting _) -> ()

(* ---- the three-phase base flow ----------------------------------------- *)

let arm_base_timer t ~mult_t ~label =
  Ctx.Timer_slot.set t.ctx t.timer ~mult_t ~label (fun () ->
      if t.terminating = None then
        (* forced only when the timeout actually fires *)
        start_termination t ~why:(Label.force label ^ " timeout"))

let begin_transaction t =
  match (t.role, t.base) with
  | Site.Master_role, B_initial ->
      Ctx.broadcast_slaves t.ctx Types.Xact;
      t.base <- B_wait { yes = Site_id.Set.empty };
      arm_base_timer t ~mult_t:2 ~label:(Label.Static "w1")
  | Site.Master_role, (B_wait _ | B_prepared _ | B_committed | B_aborted)
  | Site.Slave_role _, _ ->
      ()

let on_msg t (envelope : Types.msg Network.envelope) =
  let n = Ctx.n t.ctx in
  match (t.role, t.base, envelope.payload) with
  (* master, failure-free flow *)
  | Site.Master_role, B_wait { yes }, Types.Yes ->
      let yes = Site_id.Set.add envelope.src yes in
      if Site_id.Set.cardinal yes = n - 1 then begin
        Ctx.broadcast_slaves t.ctx Types.Prepare;
        t.base <- B_prepared { acks = Site_id.Set.empty };
        arm_base_timer t ~mult_t:2 ~label:(Label.Static "p1")
      end
      else t.base <- B_wait { yes }
  | Site.Master_role, B_wait _, Types.No ->
      decide_and_tell t Types.Abort ~reason:"received a no vote"
  | Site.Master_role, B_prepared { acks }, Types.Ack
    when t.terminating = None ->
      let acks = Site_id.Set.add envelope.src acks in
      if Site_id.Set.cardinal acks = n - 1 then
        decide_and_tell t Types.Commit ~reason:"all acks received"
      else t.base <- B_prepared { acks }
  (* slave, failure-free flow *)
  | Site.Slave_role { vote_yes }, B_initial, Types.Xact ->
      if vote_yes then begin
        Ctx.send_master t.ctx Types.Yes;
        t.base <- B_wait { yes = Site_id.Set.empty };
        arm_base_timer t ~mult_t:3 ~label:(Label.Static "w")
      end
      else begin
        Ctx.send_master t.ctx Types.No;
        finish t Types.Abort ~reason:"voted no"
      end
  | _, B_wait _, Types.Prepare ->
      (* Acknowledge to whoever sent the prepare: the master in the
         failure-free flow, a terminator during cooperative
         termination. *)
      Ctx.send t.ctx envelope.src Types.Ack;
      t.base <- B_prepared { acks = Site_id.Set.empty };
      if t.terminating = None then arm_base_timer t ~mult_t:3 ~label:(Label.Static "p")
  (* decisions, from the master or any terminator *)
  | _, (B_initial | B_wait _ | B_prepared _), Types.Commit_cmd ->
      finish t Types.Commit ~reason:"commit command"
  | _, (B_initial | B_wait _ | B_prepared _), Types.Abort_cmd ->
      finish t Types.Abort ~reason:"abort command"
  (* cooperative termination traffic *)
  | _, _, Types.State_inquiry { coordinator } ->
      Ctx.send t.ctx coordinator (Types.State_answer { phase = phase_of t })
  | _, _, Types.State_answer { phase } -> (
      match t.terminating with
      | Some (Collecting { answers }) ->
          t.terminating <-
            Some
              (Collecting
                 { answers = Site_id.Map.add envelope.src phase answers })
      | Some (Repreparing _) | None -> ())
  | _, _, Types.Ack -> (
      match t.terminating with
      | Some (Repreparing { pending }) ->
          let pending = Site_id.Set.remove envelope.src pending in
          if Site_id.Set.is_empty pending then finish_reprepare t
          else t.terminating <- Some (Repreparing { pending })
      | Some (Collecting _) | None ->
          Ctx.log_ignoring t.ctx envelope.payload (state_name t))
  | _, (B_committed | B_aborted), (Types.Commit_cmd | Types.Abort_cmd)
  | ( _,
      _,
      ( Types.Xact | Types.Yes | Types.No | Types.Pre_prepare | Types.Pre_ack
      | Types.Prepare | Types.Probe _ | Types.Px_vote _ | Types.Px_accept _
      | Types.Px_poll _ | Types.Px_promise _ ) ) ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_delivery t = function
  | Network.Msg envelope -> on_msg t envelope
  | Network.Undeliverable envelope -> (
      match envelope.payload with
      | Types.State_inquiry _ | Types.State_answer _ ->
          (* bounced poll traffic: the window timer bounds the wait *)
          ()
      | Types.Xact | Types.Yes | Types.No | Types.Pre_prepare | Types.Pre_ack
      | Types.Prepare | Types.Ack | Types.Commit_cmd | Types.Abort_cmd
      | Types.Probe _ | Types.Px_vote _ | Types.Px_accept _ | Types.Px_poll _
      | Types.Px_promise _ ->
          if t.terminating = None then
            start_termination t
              ~why:
                (Format.asprintf "UD(%a) returned" Types.pp_msg
                   envelope.payload))
