(** Three-phase commit augmented with {e only} timeout and
    undeliverable-message transitions (Rule(a)/Rule(b)) — the strawman
    of the paper's Sections 3 and 4, in two resolutions.

    Rule(a) assigns: slave w times out to abort, slave p to commit,
    master w1 to abort.  For master p1 and the undeliverable-message
    transitions of the p states the two layers of this repository
    disagree in an instructive way:

    - the {e mechanical} application of the rules
      ({!Commit_fsa.Augment} over the failure-free concurrency sets)
      sends master p1 to {e abort} (C(p1) contains no commit state) and
      the p-state UD transitions to abort;
    - the paper's Section 3 {e narrative} ("site2 will timeout and
      commit") presumes the commit-leaning reading.

    Lemma 3 proves every resolution fails; they differ only in where:
    [Paper] (the default, name ["3pc+rules"]) violates atomicity with a
    single-slave cut — the paper's own counterexample, a partition that
    makes prepare3 undeliverable.  [Strict] (name ["3pc+rules-strict"])
    survives single-slave cuts but violates atomicity when a cut of two
    or more slaves splits the acks: one G2 slave's ack passes B, the
    other's bounces, the master times out in p1 and aborts while the
    acked, cut-off slave times out in p and commits.  The fig3 bench
    shows both. *)

module Make (_ : sig
  val resolution : [ `Paper | `Strict ]
end) : Site.S

module Paper : Site.S

module Strict : Site.S

include Site.S
(** [Paper]. *)
