(* Templates shared by every protocol actor, registered once at module
   init (see Trace.register_template's domain-safety contract). *)

let tmpl_ignoring =
  Trace.register_template (fun b lookup code state _ _ _ ->
      Buffer.add_string b "ignoring ";
      Types.buf_msg_code b code;
      Buffer.add_string b " in ";
      Buffer.add_string b (lookup state))

let tmpl_ud_ignored =
  Trace.register_template (fun b lookup code state _ _ _ ->
      Buffer.add_string b "UD(";
      Types.buf_msg_code b code;
      Buffer.add_string b ") ignored in ";
      Buffer.add_string b (lookup state))

(* Template factories for the recurring one-argument shapes, so each
   protocol module can register its fixed wording at init time. *)

let msg_template ~prefix ~suffix =
  Trace.register_template (fun b _ code _ _ _ _ ->
      Buffer.add_string b prefix;
      Types.buf_msg_code b code;
      Buffer.add_string b suffix)

let msg_str_template ~prefix ~mid ~suffix =
  Trace.register_template (fun b lookup code s _ _ _ ->
      Buffer.add_string b prefix;
      Types.buf_msg_code b code;
      Buffer.add_string b mid;
      Buffer.add_string b (lookup s);
      Buffer.add_string b suffix)

let str_template ~prefix ~suffix =
  Trace.register_template (fun b lookup a0 _ _ _ _ ->
      Buffer.add_string b prefix;
      Buffer.add_string b (lookup a0);
      Buffer.add_string b suffix)

let str2_template ~prefix ~mid ~suffix =
  Trace.register_template (fun b lookup a0 a1 _ _ _ ->
      Buffer.add_string b prefix;
      Buffer.add_string b (lookup a0);
      Buffer.add_string b mid;
      Buffer.add_string b (lookup a1);
      Buffer.add_string b suffix)

let int_template ~prefix ~suffix =
  Trace.register_template (fun b _ a0 _ _ _ _ ->
      Buffer.add_string b prefix;
      Buffer.add_string b (string_of_int a0);
      Buffer.add_string b suffix)

let int2_template ~prefix ~mid ~suffix =
  Trace.register_template (fun b _ a0 a1 _ _ _ ->
      Buffer.add_string b prefix;
      Buffer.add_string b (string_of_int a0);
      Buffer.add_string b mid;
      Buffer.add_string b (string_of_int a1);
      Buffer.add_string b suffix)

let site_template ~prefix ~suffix =
  Trace.register_template (fun b _ a0 _ _ _ _ ->
      Buffer.add_string b prefix;
      Site_id.buf b (Site_id.of_int a0);
      Buffer.add_string b suffix)

let tmpl_decide =
  Trace.register_template (fun b lookup decision reason _ _ _ ->
      Buffer.add_string b
        (if decision = 0 then "DECIDE commit" else "DECIDE abort");
      if reason >= 0 then begin
        Buffer.add_string b " (";
        Buffer.add_string b (lookup reason);
        Buffer.add_char b ')'
      end)

type t = {
  engine : Engine.t;
  trace : Trace.t;  (* cached Engine.trace *)
  tracing : bool;  (* cached Trace.enabled: callers guard argument work *)
  topic : Trace.topic;  (* interned "%a" Site_id.pp self — once, not per log *)
  obs : Obs.t;
  obs_on : bool;  (* cached Obs.enabled *)
  site : int;  (* cached Site_id.to_int self, the obs track *)
  n : int;
  t_unit : Vtime.t;
  self : Site_id.t;
  trans_id : int;
  send_fn : Site_id.t -> Types.msg -> unit;
  on_decide : Types.decision -> unit;
  on_reason : string -> unit;
  mutable decision : Types.decision option;
}

let make ~engine ~n ~t_unit ~self ~trans_id ~send ~on_decide ~on_reason
    ?(obs = Obs.disabled) ?obs_site () =
  let trace = Engine.trace engine in
  (* Harnesses that relabel site ids (the cluster's logical<->physical
     rotation) pin the obs track to the physical id so state spans land
     on the same timeline as the wire's flow endpoints. *)
  let site = match obs_site with Some s -> s | None -> Site_id.to_int self in
  let obs_on = Obs.enabled obs in
  (* The root span of this site's timeline: everything else (states,
     phases, flow endpoints) nests inside it; the harness's
     [Obs.close_open_spans] seals it when the run stops. *)
  if obs_on then
    Obs.span_begin obs ~at:(Engine.now engine) ~site ~tid:trans_id ~cat:"txn"
      "txn";
  {
    engine;
    trace;
    tracing = Trace.enabled trace;
    (* The topic string is only built when tracing is on, and without
       going through a formatter — contexts are created per (site, txn)
       and the asprintf was a measurable share of the trace-on tax. *)
    topic =
      (if Trace.enabled trace then
         Trace.topic trace
           (if Site_id.is_master self then "master"
            else "site" ^ string_of_int (Site_id.to_int self))
       else Trace.topic trace "");
    obs;
    obs_on;
    site;
    n;
    t_unit;
    self;
    trans_id;
    send_fn = send;
    on_decide;
    on_reason;
    decision = None;
  }

let engine t = t.engine

let self t = t.self

let n t = t.n

let t_unit t = t.t_unit

let trans_id t = t.trans_id

let now t = Engine.now t.engine

let is_master t = Site_id.is_master t.self

let slaves t = Site_id.slaves ~n:(n t)

let tracing t = t.tracing

let intern t s = Trace.intern t.trace s

(* Typed binary logging: a few int stores per record.  Callers whose
   arguments cost anything to compute guard on {!tracing} first. *)

let log1 t tmpl a0 =
  if t.tracing then Trace.log1 t.trace ~at:(now t) ~topic:t.topic tmpl a0

let log2 t tmpl a0 a1 =
  if t.tracing then Trace.log2 t.trace ~at:(now t) ~topic:t.topic tmpl a0 a1

let log3 t tmpl a0 a1 a2 =
  if t.tracing then
    Trace.log3 t.trace ~at:(now t) ~topic:t.topic tmpl a0 a1 a2

let log_text t text =
  if t.tracing then Trace.log_text t.trace ~at:(now t) ~topic:t.topic text

let log_msg t tmpl msg =
  if t.tracing then
    Trace.log1 t.trace ~at:(now t) ~topic:t.topic tmpl (Types.msg_code msg)

let log_str t tmpl s =
  if t.tracing then
    Trace.log1 t.trace ~at:(now t) ~topic:t.topic tmpl (intern t s)

let log_msg_str t tmpl msg s =
  if t.tracing then
    Trace.log2 t.trace ~at:(now t) ~topic:t.topic tmpl (Types.msg_code msg)
      (intern t s)

let log_site t tmpl site =
  if t.tracing then
    Trace.log1 t.trace ~at:(now t) ~topic:t.topic tmpl (Site_id.to_int site)

let log_ignoring t msg state =
  if t.tracing then
    Trace.log2 t.trace ~at:(now t) ~topic:t.topic tmpl_ignoring
      (Types.msg_code msg) (intern t state)

let log_ud_ignored t msg state =
  if t.tracing then
    Trace.log2 t.trace ~at:(now t) ~topic:t.topic tmpl_ud_ignored
      (Types.msg_code msg) (intern t state)

let obs t = t.obs

let obs_on t = t.obs_on

(* Span levels on a site timeline: 1 = the root txn span, 2 = the
   protocol state, 3 = a phase within the state (a probe round, a
   collect window).  Re-entering a level first closes everything at or
   below it, so the nesting can never go ill-formed regardless of how a
   protocol's transitions interleave. *)

let obs_close_to t level =
  while Obs.open_depth t.obs ~site:t.site ~tid:t.trans_id > level do
    Obs.span_end t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id
  done

let obs_state t name =
  if t.obs_on then begin
    obs_close_to t 1;
    Obs.span_begin t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id ~cat:"state"
      name
  end

let obs_phase t name =
  if t.obs_on then begin
    obs_close_to t 2;
    Obs.span_begin t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id ~cat:"phase"
      name
  end

let obs_instant t ?cat name =
  if t.obs_on then
    Obs.instant t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id ?cat name

let send t dst msg = t.send_fn dst msg

let send_master t msg = send t Site_id.master msg

let broadcast_slaves t msg =
  List.iter
    (fun dst -> if not (Site_id.equal dst t.self) then send t dst msg)
    (slaves t)

let broadcast_all t msg =
  List.iter
    (fun dst -> if not (Site_id.equal dst t.self) then send t dst msg)
    (Site_id.all ~n:t.n)

let decided t = t.decision

let reason t note = t.on_reason note

let decide t ?reason:why decision =
  match t.decision with
  | Some prior when Types.equal_decision prior decision -> ()
  | Some prior ->
      failwith
        (Format.asprintf "%a: decision flip %a -> %a (protocol bug)" Site_id.pp
           t.self Types.pp_decision prior Types.pp_decision decision)
  | None ->
      t.decision <- Some decision;
      (match why with Some w -> t.on_reason w | None -> ());
      if t.obs_on then
        obs_instant t ~cat:"decision"
          (match decision with
          | Types.Commit -> "decide:commit"
          | Types.Abort -> "decide:abort");
      if t.tracing then
        Trace.log2 t.trace ~at:(now t) ~topic:t.topic tmpl_decide
          (match decision with Types.Commit -> 0 | Types.Abort -> 1)
          (match why with Some w -> intern t w | None -> -1);
      t.on_decide decision

module Timer_slot = struct
  type slot = { mutable handle : Engine.handle option }

  let create () = { handle = None }

  let cancel slot =
    match slot.handle with
    | Some h ->
        Engine.cancel h;
        slot.handle <- None
    | None -> ()

  let set_ticks t slot ~ticks ~label f =
    cancel slot;
    let handle =
      Engine.schedule t.engine ~rank:Engine.Timer ~delay:ticks ~label (fun () ->
          slot.handle <- None;
          f ())
    in
    slot.handle <- Some handle

  let set t slot ~mult_t ~label f =
    if mult_t <= 0 then invalid_arg "Timer_slot.set: mult_t must be positive";
    let ticks = Vtime.of_int (mult_t * Vtime.to_int (t_unit t)) in
    set_ticks t slot ~ticks ~label f

  let armed slot =
    match slot.handle with
    | Some h -> not (Engine.cancelled h)
    | None -> false
end
