type t = {
  engine : Engine.t;
  trace : Trace.t;  (* cached Engine.trace *)
  topic : string;  (* cached "%a" Site_id.pp self — once, not per log *)
  obs : Obs.t;
  obs_on : bool;  (* cached Obs.enabled *)
  site : int;  (* cached Site_id.to_int self, the obs track *)
  n : int;
  t_unit : Vtime.t;
  self : Site_id.t;
  trans_id : int;
  send_fn : Site_id.t -> Types.msg -> unit;
  on_decide : Types.decision -> unit;
  on_reason : string -> unit;
  mutable decision : Types.decision option;
}

let make ~engine ~n ~t_unit ~self ~trans_id ~send ~on_decide ~on_reason
    ?(obs = Obs.disabled) ?obs_site () =
  let trace = Engine.trace engine in
  (* Harnesses that relabel site ids (the cluster's logical<->physical
     rotation) pin the obs track to the physical id so state spans land
     on the same timeline as the wire's flow endpoints. *)
  let site = match obs_site with Some s -> s | None -> Site_id.to_int self in
  let obs_on = Obs.enabled obs in
  (* The root span of this site's timeline: everything else (states,
     phases, flow endpoints) nests inside it; the harness's
     [Obs.close_open_spans] seals it when the run stops. *)
  if obs_on then
    Obs.span_begin obs ~at:(Engine.now engine) ~site ~tid:trans_id ~cat:"txn"
      "txn";
  {
    engine;
    trace;
    (* Rendering the topic costs ~280 words; with tracing off the string
       is never read, so don't pay for it. *)
    topic =
      (if Trace.enabled trace then Format.asprintf "%a" Site_id.pp self
       else "");
    obs;
    obs_on;
    site;
    n;
    t_unit;
    self;
    trans_id;
    send_fn = send;
    on_decide;
    on_reason;
    decision = None;
  }

let engine t = t.engine

let self t = t.self

let n t = t.n

let t_unit t = t.t_unit

let trans_id t = t.trans_id

let now t = Engine.now t.engine

let is_master t = Site_id.is_master t.self

let slaves t = Site_id.slaves ~n:(n t)

let log t fmt = Trace.addf t.trace ~at:(now t) ~topic:t.topic fmt

let obs t = t.obs

let obs_on t = t.obs_on

(* Span levels on a site timeline: 1 = the root txn span, 2 = the
   protocol state, 3 = a phase within the state (a probe round, a
   collect window).  Re-entering a level first closes everything at or
   below it, so the nesting can never go ill-formed regardless of how a
   protocol's transitions interleave. *)

let obs_close_to t level =
  while Obs.open_depth t.obs ~site:t.site ~tid:t.trans_id > level do
    Obs.span_end t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id
  done

let obs_state t name =
  if t.obs_on then begin
    obs_close_to t 1;
    Obs.span_begin t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id ~cat:"state"
      name
  end

let obs_phase t name =
  if t.obs_on then begin
    obs_close_to t 2;
    Obs.span_begin t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id ~cat:"phase"
      name
  end

let obs_instant t ?cat name =
  if t.obs_on then
    Obs.instant t.obs ~at:(now t) ~site:t.site ~tid:t.trans_id ?cat name

let send t dst msg = t.send_fn dst msg

let send_master t msg = send t Site_id.master msg

let broadcast_slaves t msg =
  List.iter
    (fun dst -> if not (Site_id.equal dst t.self) then send t dst msg)
    (slaves t)

let broadcast_all t msg =
  List.iter
    (fun dst -> if not (Site_id.equal dst t.self) then send t dst msg)
    (Site_id.all ~n:t.n)

let decided t = t.decision

let reason t note = t.on_reason note

let decide t ?reason:why decision =
  match t.decision with
  | Some prior when Types.equal_decision prior decision -> ()
  | Some prior ->
      failwith
        (Format.asprintf "%a: decision flip %a -> %a (protocol bug)" Site_id.pp
           t.self Types.pp_decision prior Types.pp_decision decision)
  | None ->
      t.decision <- Some decision;
      (match why with Some w -> t.on_reason w | None -> ());
      if t.obs_on then
        obs_instant t ~cat:"decision"
          (match decision with
          | Types.Commit -> "decide:commit"
          | Types.Abort -> "decide:abort");
      log t "DECIDE %a%s" Types.pp_decision decision
        (match why with Some w -> " (" ^ w ^ ")" | None -> "");
      t.on_decide decision

module Timer_slot = struct
  type slot = { mutable handle : Engine.handle option }

  let create () = { handle = None }

  let cancel slot =
    match slot.handle with
    | Some h ->
        Engine.cancel h;
        slot.handle <- None
    | None -> ()

  let set_ticks t slot ~ticks ~label f =
    cancel slot;
    let handle =
      Engine.schedule t.engine ~rank:Engine.Timer ~delay:ticks ~label (fun () ->
          slot.handle <- None;
          f ())
    in
    slot.handle <- Some handle

  let set t slot ~mult_t ~label f =
    if mult_t <= 0 then invalid_arg "Timer_slot.set: mult_t must be positive";
    let ticks = Vtime.of_int (mult_t * Vtime.to_int (t_unit t)) in
    set_ticks t slot ~ticks ~label f

  let armed slot =
    match slot.handle with
    | Some h -> not (Engine.cancelled h)
    | None -> false
end
