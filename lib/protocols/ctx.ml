type t = {
  engine : Engine.t;
  trace : Trace.t;  (* cached Engine.trace *)
  topic : string;  (* cached "%a" Site_id.pp self — once, not per log *)
  n : int;
  t_unit : Vtime.t;
  self : Site_id.t;
  trans_id : int;
  send_fn : Site_id.t -> Types.msg -> unit;
  on_decide : Types.decision -> unit;
  on_reason : string -> unit;
  mutable decision : Types.decision option;
}

let make ~engine ~n ~t_unit ~self ~trans_id ~send ~on_decide ~on_reason () =
  let trace = Engine.trace engine in
  {
    engine;
    trace;
    (* Rendering the topic costs ~280 words; with tracing off the string
       is never read, so don't pay for it. *)
    topic =
      (if Trace.enabled trace then Format.asprintf "%a" Site_id.pp self
       else "");
    n;
    t_unit;
    self;
    trans_id;
    send_fn = send;
    on_decide;
    on_reason;
    decision = None;
  }

let engine t = t.engine

let self t = t.self

let n t = t.n

let t_unit t = t.t_unit

let trans_id t = t.trans_id

let now t = Engine.now t.engine

let is_master t = Site_id.is_master t.self

let slaves t = Site_id.slaves ~n:(n t)

let log t fmt = Trace.addf t.trace ~at:(now t) ~topic:t.topic fmt

let send t dst msg = t.send_fn dst msg

let send_master t msg = send t Site_id.master msg

let broadcast_slaves t msg =
  List.iter
    (fun dst -> if not (Site_id.equal dst t.self) then send t dst msg)
    (slaves t)

let broadcast_all t msg =
  List.iter
    (fun dst -> if not (Site_id.equal dst t.self) then send t dst msg)
    (Site_id.all ~n:t.n)

let decided t = t.decision

let reason t note = t.on_reason note

let decide t ?reason:why decision =
  match t.decision with
  | Some prior when Types.equal_decision prior decision -> ()
  | Some prior ->
      failwith
        (Format.asprintf "%a: decision flip %a -> %a (protocol bug)" Site_id.pp
           t.self Types.pp_decision prior Types.pp_decision decision)
  | None ->
      t.decision <- Some decision;
      (match why with Some w -> t.on_reason w | None -> ());
      log t "DECIDE %a%s" Types.pp_decision decision
        (match why with Some w -> " (" ^ w ^ ")" | None -> "");
      t.on_decide decision

module Timer_slot = struct
  type slot = { mutable handle : Engine.handle option }

  let create () = { handle = None }

  let cancel slot =
    match slot.handle with
    | Some h ->
        Engine.cancel h;
        slot.handle <- None
    | None -> ()

  let set_ticks t slot ~ticks ~label f =
    cancel slot;
    let handle =
      Engine.schedule t.engine ~rank:Engine.Timer ~delay:ticks ~label (fun () ->
          slot.handle <- None;
          f ())
    in
    slot.handle <- Some handle

  let set t slot ~mult_t ~label f =
    if mult_t <= 0 then invalid_arg "Timer_slot.set: mult_t must be positive";
    let ticks = Vtime.of_int (mult_t * Vtime.to_int (t_unit t)) in
    set_ticks t slot ~ticks ~label f

  let armed slot =
    match slot.handle with
    | Some h -> not (Engine.cancelled h)
    | None -> false
end
