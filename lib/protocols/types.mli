(** Shared vocabulary of the executable commit protocols.

    One message alphabet serves every protocol in the repository; each
    protocol simply never sends the tags it does not use.  [Probe] is the
    termination protocol's probe(trans_id, slave_id) message
    (Section 5.3); [State_inquiry]/[State_answer] belong to the
    quorum-commit baseline's termination rule; the [Px_*] family carries
    Paxos Commit (Gray & Lamport), one consensus instance per
    participant's prepared/aborted vote. *)

type decision = Commit | Abort

val pp_decision : Format.formatter -> decision -> unit

val equal_decision : decision -> decision -> bool

(** A slave's phase, as reported during quorum termination. *)
type phase = Ph_initial | Ph_wait | Ph_prepared | Ph_committed | Ph_aborted

val pp_phase : Format.formatter -> phase -> unit

type msg =
  | Xact  (** master -> slaves: the transaction itself *)
  | Yes  (** slave -> master: intent to commit *)
  | No  (** slave -> master: unilateral abort *)
  | Pre_prepare
      (** master -> slaves: the extra buffering phase of the four-phase
          commit used by the Theorem 10 construction *)
  | Pre_ack  (** slave -> master: pre-prepare acknowledged *)
  | Prepare  (** master -> slaves: 3PC second phase *)
  | Ack  (** slave -> master: prepare acknowledged *)
  | Commit_cmd  (** commit command *)
  | Abort_cmd  (** abort command *)
  | Probe of { trans_id : int; slave : Site_id.t }
      (** termination protocol: sent to the master by a slave that timed
          out in state p *)
  | State_inquiry of { coordinator : Site_id.t }
      (** quorum termination: the elected in-group coordinator polls *)
  | State_answer of { phase : phase }
  | Px_vote of { instance : Site_id.t; ballot : int; prepared : bool }
      (** Paxos phase 2a: the ballot leader (or, at ballot 0, the
          instance's own participant) proposes a vote value for
          [instance] to an acceptor *)
  | Px_accept of { instance : Site_id.t; ballot : int; prepared : bool }
      (** Paxos phase 2b: acceptor -> ballot leader; the acceptor's
          identity is the envelope source *)
  | Px_poll of { ballot : int }
      (** Paxos phase 1a for every instance at once: a would-be leader
          asks acceptors to promise ballot [ballot] *)
  | Px_promise of { ballot : int; accepted : (Site_id.t * (int * bool)) list }
      (** Paxos phase 1b: per non-free instance, the highest
          (ballot, prepared) value this acceptor has accepted *)

val pp_msg : Format.formatter -> msg -> unit

val msg_tag : msg -> string
(** Short stable tag ("xact", "probe", ...) used in traces and tests. *)

(** {1 Binary trace codec} *)

val phase_index : phase -> int
(** 0..4, in declaration order; the inverse lives in {!buf_msg_code}'s
    phase table. *)

val msg_code : msg -> int
(** Pack a message into one int: bits 0-4 constructor tag, bits 5-14
    site id, bit 15 the [prepared] flag, bits 16-39 the numeric field
    (trans_id / ballot / phase).  Bits 40+ stay free for an enclosing
    wire code. *)

val buf_msg_code : Buffer.t -> int -> unit
(** Render a {!msg_code} byte-identically to {!pp_msg}. *)

val msg_codec : int * (msg -> int)
(** Ready-made [payload_codec] for [Network.create] when the payload
    type is {!msg}. *)
