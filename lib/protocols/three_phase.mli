(** The three-phase commit protocol (paper Fig. 3), unaugmented.

    Satisfies Lemma 1 and Lemma 2 (no local state is concurrent with
    both outcomes; no noncommittable state is concurrent with a commit),
    but carries no timeout or undeliverable-message transitions — under
    a partition it simply blocks, like 2PC.  It is the substrate the
    termination protocol (lib/core) makes resilient. *)

include Site.S
