(* Two resolutions of the Rule(b) readings for the p states; see the
   .mli headline.  [`Paper] reproduces the Section 3 narrative (breaks
   at n = 3); [`Strict] is the mechanical Rule(a)/(b) output of
   [Commit_fsa.Augment] (breaks at n = 4, acks split across B). *)

module Make (V : sig
  val resolution : [ `Paper | `Strict ]
end) =
struct
  let name =
    match V.resolution with
    | `Paper -> "3pc+rules"
    | `Strict -> "3pc+rules-strict"

  let blocking_by_design = false

  type master_state =
    | M_initial
    | M_wait of { yes : Site_id.Set.t }
    | M_prepared of { acks : Site_id.Set.t }
    | M_committed
    | M_aborted

  type slave_state = S_initial | S_wait | S_prepared | S_committed | S_aborted

  type machine =
    | Master of master_state
    | Slave of { vote_yes : bool; state : slave_state }

  type t = { ctx : Ctx.t; timer : Ctx.Timer_slot.slot; mutable machine : machine }

  let create ctx role =
    let timer = Ctx.Timer_slot.create () in
    match role with
    | Site.Master_role -> { ctx; timer; machine = Master M_initial }
    | Site.Slave_role { vote_yes } ->
        { ctx; timer; machine = Slave { vote_yes; state = S_initial } }

  let state_name t =
    match t.machine with
    | Master M_initial -> "q1"
    | Master (M_wait _) -> "w1"
    | Master (M_prepared _) -> "p1"
    | Master M_committed -> "c1"
    | Master M_aborted -> "a1"
    | Slave { state = S_initial; _ } -> "q"
    | Slave { state = S_wait; _ } -> "w"
    | Slave { state = S_prepared; _ } -> "p"
    | Slave { state = S_committed; _ } -> "c"
    | Slave { state = S_aborted; _ } -> "a"

  let master_abort t ~reason =
    Ctx.Timer_slot.cancel t.timer;
    Ctx.broadcast_slaves t.ctx Types.Abort_cmd;
    t.machine <- Master M_aborted;
    Ctx.decide t.ctx Types.Abort ~reason

  let master_commit t ~reason =
    Ctx.Timer_slot.cancel t.timer;
    Ctx.broadcast_slaves t.ctx Types.Commit_cmd;
    t.machine <- Master M_committed;
    Ctx.decide t.ctx Types.Commit ~reason

  let slave_finish t ~vote_yes ~decision ~reason =
    Ctx.Timer_slot.cancel t.timer;
    t.machine <-
      Slave
        {
          vote_yes;
          state =
            (match decision with
            | Types.Commit -> S_committed
            | Types.Abort -> S_aborted);
        };
    Ctx.decide t.ctx decision ~reason

  let begin_transaction t =
    match t.machine with
    | Master M_initial ->
        Ctx.broadcast_slaves t.ctx Types.Xact;
        t.machine <- Master (M_wait { yes = Site_id.Set.empty });
        Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "w1-timeout") (fun () ->
            match t.machine with
            | Master (M_wait _) -> master_abort t ~reason:"w1 timeout -> abort"
            | Master (M_initial | M_prepared _ | M_committed | M_aborted)
            | Slave _ ->
                ())
    | Master (M_wait _ | M_prepared _ | M_committed | M_aborted) | Slave _ -> ()

  let on_master_msg t state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | M_wait { yes }, Types.Yes ->
        let yes = Site_id.Set.add envelope.src yes in
        if Site_id.Set.cardinal yes = Ctx.n t.ctx - 1 then begin
          Ctx.broadcast_slaves t.ctx Types.Prepare;
          t.machine <- Master (M_prepared { acks = Site_id.Set.empty });
          Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "p1-timeout")
            (fun () ->
              match t.machine with
              | Master (M_prepared _) -> (
                  match V.resolution with
                  | `Paper ->
                      master_commit t ~reason:"p1 timeout -> commit (paper)"
                  | `Strict ->
                      master_abort t ~reason:"p1 timeout -> abort (Rule a)")
              | Master (M_initial | M_wait _ | M_committed | M_aborted)
              | Slave _ ->
                  ())
        end
        else t.machine <- Master (M_wait { yes })
    | M_wait _, Types.No -> master_abort t ~reason:"received a no vote"
    | M_prepared { acks }, Types.Ack ->
        let acks = Site_id.Set.add envelope.src acks in
        if Site_id.Set.cardinal acks = Ctx.n t.ctx - 1 then
          master_commit t ~reason:"all acks received"
        else t.machine <- Master (M_prepared { acks })
    | (M_initial | M_committed | M_aborted), _
    | M_wait _, _
    | M_prepared _, _ ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_master_ud t state (envelope : Types.msg Network.envelope) =
    let why rule =
      Format.asprintf "UD(%a) in %s -> %s" Types.pp_msg envelope.payload
        (state_name t) rule
    in
    match state with
    | M_wait _ -> master_abort t ~reason:(why "abort (Rule b)")
    | M_prepared _ -> (
        match V.resolution with
        | `Paper -> master_commit t ~reason:(why "commit (Rule b, paper)")
        | `Strict -> master_abort t ~reason:(why "abort (Rule b, strict)"))
    | M_initial | M_committed | M_aborted ->
        Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

  let on_slave_msg t ~vote_yes state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | S_initial, Types.Xact ->
        if vote_yes then begin
          Ctx.send_master t.ctx Types.Yes;
          t.machine <- Slave { vote_yes; state = S_wait };
          Ctx.Timer_slot.set t.ctx t.timer ~mult_t:3 ~label:(Label.Static "w-timeout") (fun () ->
              match t.machine with
              | Slave { state = S_wait; _ } ->
                  slave_finish t ~vote_yes ~decision:Types.Abort
                    ~reason:"w timeout -> abort (Rule a)"
              | Slave { state = S_initial | S_prepared | S_committed | S_aborted; _ }
              | Master _ ->
                  ())
        end
        else begin
          Ctx.send_master t.ctx Types.No;
          slave_finish t ~vote_yes ~decision:Types.Abort ~reason:"voted no"
        end
    | S_wait, Types.Prepare ->
        Ctx.send_master t.ctx Types.Ack;
        t.machine <- Slave { vote_yes; state = S_prepared };
        Ctx.Timer_slot.set t.ctx t.timer ~mult_t:3 ~label:(Label.Static "p-timeout") (fun () ->
            match t.machine with
            | Slave { state = S_prepared; _ } ->
                slave_finish t ~vote_yes ~decision:Types.Commit
                  ~reason:"p timeout -> commit (Rule a)"
            | Slave { state = S_initial | S_wait | S_committed | S_aborted; _ }
            | Master _ ->
                ())
    | (S_initial | S_wait | S_prepared), Types.Abort_cmd ->
        slave_finish t ~vote_yes ~decision:Types.Abort ~reason:"abort command"
    | S_prepared, Types.Commit_cmd ->
        slave_finish t ~vote_yes ~decision:Types.Commit ~reason:"commit command"
    | (S_committed | S_aborted), _
    | S_initial, _
    | S_wait, _
    | S_prepared, _ ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_slave_ud t ~vote_yes state (envelope : Types.msg Network.envelope) =
    let why outcome =
      Format.asprintf "UD(%a) in %s -> %s" Types.pp_msg envelope.payload
        (state_name t) outcome
    in
    match state with
    | S_wait ->
        slave_finish t ~vote_yes ~decision:Types.Abort
          ~reason:(why "abort (Rule b)")
    | S_prepared -> (
        match V.resolution with
        | `Paper ->
            slave_finish t ~vote_yes ~decision:Types.Commit
              ~reason:(why "commit (Rule b, paper)")
        | `Strict ->
            slave_finish t ~vote_yes ~decision:Types.Abort
              ~reason:(why "abort (Rule b, strict)"))
    | S_initial | S_committed | S_aborted ->
        Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

  let on_delivery t delivery =
    match (t.machine, delivery) with
    | Master state, Network.Msg envelope -> on_master_msg t state envelope
    | Master state, Network.Undeliverable envelope -> on_master_ud t state envelope
    | Slave { vote_yes; state }, Network.Msg envelope ->
        on_slave_msg t ~vote_yes state envelope
    | Slave { vote_yes; state }, Network.Undeliverable envelope ->
        on_slave_ud t ~vote_yes state envelope

end

module Paper = Make (struct
  let resolution = `Paper
end)

module Strict = Make (struct
  let resolution = `Strict
end)

include Paper
