type decision = Commit | Abort

let pp_decision fmt = function
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort -> Format.pp_print_string fmt "abort"

let equal_decision a b =
  match (a, b) with
  | Commit, Commit | Abort, Abort -> true
  | Commit, Abort | Abort, Commit -> false

type phase = Ph_initial | Ph_wait | Ph_prepared | Ph_committed | Ph_aborted

let pp_phase fmt p =
  Format.pp_print_string fmt
    (match p with
    | Ph_initial -> "initial"
    | Ph_wait -> "wait"
    | Ph_prepared -> "prepared"
    | Ph_committed -> "committed"
    | Ph_aborted -> "aborted")

type msg =
  | Xact
  | Yes
  | No
  | Pre_prepare
  | Pre_ack
  | Prepare
  | Ack
  | Commit_cmd
  | Abort_cmd
  | Probe of { trans_id : int; slave : Site_id.t }
  | State_inquiry of { coordinator : Site_id.t }
  | State_answer of { phase : phase }
  | Px_vote of { instance : Site_id.t; ballot : int; prepared : bool }
  | Px_accept of { instance : Site_id.t; ballot : int; prepared : bool }
  | Px_poll of { ballot : int }
  | Px_promise of { ballot : int; accepted : (Site_id.t * (int * bool)) list }

let msg_tag = function
  | Xact -> "xact"
  | Yes -> "yes"
  | No -> "no"
  | Pre_prepare -> "pre-prepare"
  | Pre_ack -> "pre-ack"
  | Prepare -> "prepare"
  | Ack -> "ack"
  | Commit_cmd -> "commit"
  | Abort_cmd -> "abort"
  | Probe _ -> "probe"
  | State_inquiry _ -> "state-inquiry"
  | State_answer _ -> "state-answer"
  | Px_vote _ -> "px-vote"
  | Px_accept _ -> "px-accept"
  | Px_poll _ -> "px-poll"
  | Px_promise _ -> "px-promise"

let pp_msg fmt = function
  | Probe { trans_id; slave } ->
      Format.fprintf fmt "probe(t%d,%a)" trans_id Site_id.pp slave
  | State_inquiry { coordinator } ->
      Format.fprintf fmt "state-inquiry(%a)" Site_id.pp coordinator
  | State_answer { phase } -> Format.fprintf fmt "state-answer(%a)" pp_phase phase
  | Px_vote { instance; ballot; prepared } ->
      Format.fprintf fmt "px-vote(i%a,b%d,%s)" Site_id.pp instance ballot
        (if prepared then "prepared" else "aborted")
  | Px_accept { instance; ballot; prepared } ->
      Format.fprintf fmt "px-accept(i%a,b%d,%s)" Site_id.pp instance ballot
        (if prepared then "prepared" else "aborted")
  | Px_poll { ballot } -> Format.fprintf fmt "px-poll(b%d)" ballot
  | Px_promise { ballot; accepted } ->
      Format.fprintf fmt "px-promise(b%d,%d accepted)" ballot
        (List.length accepted)
  | (Xact | Yes | No | Pre_prepare | Pre_ack | Prepare | Ack | Commit_cmd
    | Abort_cmd) as m ->
      Format.pp_print_string fmt (msg_tag m)

(* ------------------------------------------------------------------ *)
(* Binary trace codec                                                  *)
(*                                                                     *)
(* A message packs into one int so a trace record can carry it as a    *)
(* template argument: bits 0-4 constructor tag, bits 5-14 site id      *)
(* (slave / coordinator / instance / promise count), bit 15 the        *)
(* [prepared] flag, bits 16-39 the numeric field (trans_id / ballot /  *)
(* phase).  Bits 40+ stay free for an enclosing wire code (the db and  *)
(* cluster layers stash their transaction id there).                   *)
(* ------------------------------------------------------------------ *)

let phase_index = function
  | Ph_initial -> 0
  | Ph_wait -> 1
  | Ph_prepared -> 2
  | Ph_committed -> 3
  | Ph_aborted -> 4

let phase_names = [| "initial"; "wait"; "prepared"; "committed"; "aborted" |]

let msg_code = function
  | Xact -> 0
  | Yes -> 1
  | No -> 2
  | Pre_prepare -> 3
  | Pre_ack -> 4
  | Prepare -> 5
  | Ack -> 6
  | Commit_cmd -> 7
  | Abort_cmd -> 8
  | Probe { trans_id; slave } ->
      9 lor (Site_id.to_int slave lsl 5) lor (trans_id lsl 16)
  | State_inquiry { coordinator } -> 10 lor (Site_id.to_int coordinator lsl 5)
  | State_answer { phase } -> 11 lor (phase_index phase lsl 16)
  | Px_vote { instance; ballot; prepared } ->
      12
      lor (Site_id.to_int instance lsl 5)
      lor ((if prepared then 1 else 0) lsl 15)
      lor (ballot lsl 16)
  | Px_accept { instance; ballot; prepared } ->
      13
      lor (Site_id.to_int instance lsl 5)
      lor ((if prepared then 1 else 0) lsl 15)
      lor (ballot lsl 16)
  | Px_poll { ballot } -> 14 lor (ballot lsl 16)
  | Px_promise { ballot; accepted } ->
      15 lor (List.length accepted lsl 5) lor (ballot lsl 16)

let tag_names =
  [|
    "xact";
    "yes";
    "no";
    "pre-prepare";
    "pre-ack";
    "prepare";
    "ack";
    "commit";
    "abort";
  |]

(* Renders a {!msg_code} byte-identically to {!pp_msg}. *)
let buf_msg_code b code =
  let tag = code land 0x1f in
  let site b = Site_id.buf b (Site_id.of_int ((code lsr 5) land 0x3ff)) in
  let num = (code lsr 16) land 0xFFFFFF in
  let int b n = Buffer.add_string b (string_of_int n) in
  match tag with
  | 9 ->
      Buffer.add_string b "probe(t";
      int b num;
      Buffer.add_char b ',';
      site b;
      Buffer.add_char b ')'
  | 10 ->
      Buffer.add_string b "state-inquiry(";
      site b;
      Buffer.add_char b ')'
  | 11 ->
      Buffer.add_string b "state-answer(";
      Buffer.add_string b phase_names.(num);
      Buffer.add_char b ')'
  | 12 | 13 ->
      Buffer.add_string b (if tag = 12 then "px-vote(i" else "px-accept(i");
      site b;
      Buffer.add_string b ",b";
      int b num;
      Buffer.add_char b ',';
      Buffer.add_string b
        (if (code lsr 15) land 1 = 1 then "prepared" else "aborted");
      Buffer.add_char b ')'
  | 14 ->
      Buffer.add_string b "px-poll(b";
      int b num;
      Buffer.add_char b ')'
  | 15 ->
      Buffer.add_string b "px-promise(b";
      int b num;
      Buffer.add_char b ',';
      int b ((code lsr 5) land 0x3ff);
      Buffer.add_string b " accepted)"
  | tag -> Buffer.add_string b tag_names.(tag)

let msg_renderer = Network.register_payload_renderer buf_msg_code

(* Pass to [Network.create ~payload_codec] wherever the payload is
   {!msg}, so network trace lines become binary records. *)
let msg_codec : int * (msg -> int) = (msg_renderer, msg_code)
