type decision = Commit | Abort

let pp_decision fmt = function
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort -> Format.pp_print_string fmt "abort"

let equal_decision a b =
  match (a, b) with
  | Commit, Commit | Abort, Abort -> true
  | Commit, Abort | Abort, Commit -> false

type phase = Ph_initial | Ph_wait | Ph_prepared | Ph_committed | Ph_aborted

let pp_phase fmt p =
  Format.pp_print_string fmt
    (match p with
    | Ph_initial -> "initial"
    | Ph_wait -> "wait"
    | Ph_prepared -> "prepared"
    | Ph_committed -> "committed"
    | Ph_aborted -> "aborted")

type msg =
  | Xact
  | Yes
  | No
  | Pre_prepare
  | Pre_ack
  | Prepare
  | Ack
  | Commit_cmd
  | Abort_cmd
  | Probe of { trans_id : int; slave : Site_id.t }
  | State_inquiry of { coordinator : Site_id.t }
  | State_answer of { phase : phase }
  | Px_vote of { instance : Site_id.t; ballot : int; prepared : bool }
  | Px_accept of { instance : Site_id.t; ballot : int; prepared : bool }
  | Px_poll of { ballot : int }
  | Px_promise of { ballot : int; accepted : (Site_id.t * (int * bool)) list }

let msg_tag = function
  | Xact -> "xact"
  | Yes -> "yes"
  | No -> "no"
  | Pre_prepare -> "pre-prepare"
  | Pre_ack -> "pre-ack"
  | Prepare -> "prepare"
  | Ack -> "ack"
  | Commit_cmd -> "commit"
  | Abort_cmd -> "abort"
  | Probe _ -> "probe"
  | State_inquiry _ -> "state-inquiry"
  | State_answer _ -> "state-answer"
  | Px_vote _ -> "px-vote"
  | Px_accept _ -> "px-accept"
  | Px_poll _ -> "px-poll"
  | Px_promise _ -> "px-promise"

let pp_msg fmt = function
  | Probe { trans_id; slave } ->
      Format.fprintf fmt "probe(t%d,%a)" trans_id Site_id.pp slave
  | State_inquiry { coordinator } ->
      Format.fprintf fmt "state-inquiry(%a)" Site_id.pp coordinator
  | State_answer { phase } -> Format.fprintf fmt "state-answer(%a)" pp_phase phase
  | Px_vote { instance; ballot; prepared } ->
      Format.fprintf fmt "px-vote(i%a,b%d,%s)" Site_id.pp instance ballot
        (if prepared then "prepared" else "aborted")
  | Px_accept { instance; ballot; prepared } ->
      Format.fprintf fmt "px-accept(i%a,b%d,%s)" Site_id.pp instance ballot
        (if prepared then "prepared" else "aborted")
  | Px_poll { ballot } -> Format.fprintf fmt "px-poll(b%d)" ballot
  | Px_promise { ballot; accepted } ->
      Format.fprintf fmt "px-promise(b%d,%d accepted)" ballot
        (List.length accepted)
  | (Xact | Yes | No | Pre_prepare | Pre_ack | Prepare | Ack | Commit_cmd
    | Abort_cmd) as m ->
      Format.pp_print_string fmt (msg_tag m)
