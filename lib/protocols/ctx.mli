(** Per-site execution context handed to protocol actors.

    Wraps the engine and network with the operations the paper's
    protocol descriptions use: send/broadcast, decide, and timers
    measured in multiples of T (the longest end-to-end propagation
    delay).  At equal virtual times, message deliveries run before timer
    expiries (see {!Commit_sim.Engine.rank}), which realises the paper's
    "times out only if the awaited message cannot still arrive within
    the bound" semantics exactly. *)

type t

val make :
  engine:Engine.t ->
  n:int ->
  t_unit:Vtime.t ->
  self:Site_id.t ->
  trans_id:int ->
  send:(Site_id.t -> Types.msg -> unit) ->
  on_decide:(Types.decision -> unit) ->
  on_reason:(string -> unit) ->
  unit ->
  t
(** [send] delivers one protocol message to another site; the caller
    (runner or transaction manager) decides how it travels — directly
    over a {!Network.t}, or multiplexed with a transaction id.  This
    keeps protocol actors independent of the wire representation. *)

val engine : t -> Engine.t

val self : t -> Site_id.t

val n : t -> int

val t_unit : t -> Vtime.t
(** T, in ticks (the network's [t_max]). *)

val trans_id : t -> int

val now : t -> Vtime.t

val is_master : t -> bool

val slaves : t -> Site_id.t list

val send : t -> Site_id.t -> Types.msg -> unit

val send_master : t -> Types.msg -> unit

val broadcast_slaves : t -> Types.msg -> unit
(** To every slave (used by the master; the paper's "send commit_1-n"). *)

val broadcast_all : t -> Types.msg -> unit
(** To every other site (used by slaves acting for their group). *)

val decide : t -> ?reason:string -> Types.decision -> unit
(** Records this site's decision (idempotent: a second call with the
    same decision is ignored; a contradictory second call raises —
    protocol actors must never flip). *)

val decided : t -> Types.decision option

val reason : t -> string -> unit
(** Attach a free-form annotation ("FACT1 case 5", ...) retrievable from
    the run result; used to audit the proof's case analysis. *)

val log : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** A single resettable timer slot, as used by every protocol state
    ("reset timer 5T"). *)
module Timer_slot : sig
  type slot

  val create : unit -> slot

  val set : t -> slot -> mult_t:int -> label:Label.t -> (unit -> unit) -> unit
  (** Cancels any pending timer in the slot, then arms it for
      [mult_t * T] from now. *)

  val set_ticks :
    t -> slot -> ticks:Vtime.t -> label:Label.t -> (unit -> unit) -> unit

  val cancel : slot -> unit

  val armed : slot -> bool
end
