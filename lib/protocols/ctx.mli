(** Per-site execution context handed to protocol actors.

    Wraps the engine and network with the operations the paper's
    protocol descriptions use: send/broadcast, decide, and timers
    measured in multiples of T (the longest end-to-end propagation
    delay).  At equal virtual times, message deliveries run before timer
    expiries (see {!Commit_sim.Engine.rank}), which realises the paper's
    "times out only if the awaited message cannot still arrive within
    the bound" semantics exactly. *)

type t

val make :
  engine:Engine.t ->
  n:int ->
  t_unit:Vtime.t ->
  self:Site_id.t ->
  trans_id:int ->
  send:(Site_id.t -> Types.msg -> unit) ->
  on_decide:(Types.decision -> unit) ->
  on_reason:(string -> unit) ->
  ?obs:Obs.t ->
  ?obs_site:int ->
  unit ->
  t
(** [send] delivers one protocol message to another site; the caller
    (runner or transaction manager) decides how it travels — directly
    over a {!Network.t}, or multiplexed with a transaction id.  This
    keeps protocol actors independent of the wire representation.

    With an enabled [obs] (default {!Obs.disabled}) the context opens
    the root ["txn"] span of this site's (site, trans_id) timeline and
    exposes the {!obs_state}/{!obs_phase}/{!obs_instant} helpers.
    [obs_site] overrides the track's site number (default
    [Site_id.to_int self]) for harnesses that relabel site ids. *)

val engine : t -> Engine.t

val self : t -> Site_id.t

val n : t -> int

val t_unit : t -> Vtime.t
(** T, in ticks (the network's [t_max]). *)

val trans_id : t -> int

val now : t -> Vtime.t

val is_master : t -> bool

val slaves : t -> Site_id.t list

val send : t -> Site_id.t -> Types.msg -> unit

val send_master : t -> Types.msg -> unit

val broadcast_slaves : t -> Types.msg -> unit
(** To every slave (used by the master; the paper's "send commit_1-n"). *)

val broadcast_all : t -> Types.msg -> unit
(** To every other site (used by slaves acting for their group). *)

val decide : t -> ?reason:string -> Types.decision -> unit
(** Records this site's decision (idempotent: a second call with the
    same decision is ignored; a contradictory second call raises —
    protocol actors must never flip). *)

val decided : t -> Types.decision option

val reason : t -> string -> unit
(** Attach a free-form annotation ("FACT1 case 5", ...) retrievable from
    the run result; used to audit the proof's case analysis. *)

(** {1 Typed trace logging}

    Protocol actors log through registered binary templates instead of
    printf formats: a log call is a few int stores, and the text is
    rendered only when the trace is read.  Templates are registered at
    module-init time (the factories below, or {!Trace.register_template}
    directly); the per-call payload is packed ints / interned strings. *)

val tracing : t -> bool
(** Cached [Trace.enabled].  Guard argument computation on this before
    calling the [log*] functions below (they are also internally
    guarded, so unguarded calls with cheap arguments are fine). *)

val intern : t -> string -> int
(** Intern a string in this context's trace for use as a template
    argument. *)

val log1 : t -> Trace.template -> int -> unit

val log2 : t -> Trace.template -> int -> int -> unit

val log3 : t -> Trace.template -> int -> int -> int -> unit

val log_text : t -> string -> unit
(** A text-only entry (the string is interned, so repeated messages
    cost one int). *)

val log_msg : t -> Trace.template -> Types.msg -> unit
(** [log1] with a {!Types.msg_code}-packed message argument. *)

val log_str : t -> Trace.template -> string -> unit
(** [log1] with an interned-string argument. *)

val log_site : t -> Trace.template -> Site_id.t -> unit

val log_msg_str : t -> Trace.template -> Types.msg -> string -> unit

val log_ignoring : t -> Types.msg -> string -> unit
(** The ["ignoring <msg> in <state>"] line every protocol shares. *)

val log_ud_ignored : t -> Types.msg -> string -> unit
(** ["UD(<msg>) ignored in <state>"]. *)

val msg_template : prefix:string -> suffix:string -> Trace.template
(** [prefix ^ msg ^ suffix]; register at module init only. *)

val msg_str_template :
  prefix:string -> mid:string -> suffix:string -> Trace.template

val str_template : prefix:string -> suffix:string -> Trace.template

val str2_template : prefix:string -> mid:string -> suffix:string -> Trace.template

val int_template : prefix:string -> suffix:string -> Trace.template

val int2_template : prefix:string -> mid:string -> suffix:string -> Trace.template

val site_template : prefix:string -> suffix:string -> Trace.template

val obs : t -> Obs.t

val obs_on : t -> bool
(** Cached [Obs.enabled]: call sites that must build an argument (a
    formatted name) guard on this, exactly like {!log}'s tracing
    guard.  Calls with static names need no guard — every obs
    operation is a no-op on a disabled recorder. *)

val obs_state : t -> string -> unit
(** Begin the protocol-state span [name], first closing the previous
    state (and any phase inside it).  States sit directly under the
    root txn span, so the site's timeline reads q1 → w1 → p1 → ... *)

val obs_phase : t -> string -> unit
(** Begin a phase span nested inside the current state (a probe round,
    a collect window), first closing any previous phase. *)

val obs_instant : t -> ?cat:string -> string -> unit
(** A zero-duration mark on this site's timeline. *)

(** A single resettable timer slot, as used by every protocol state
    ("reset timer 5T"). *)
module Timer_slot : sig
  type slot

  val create : unit -> slot

  val set : t -> slot -> mult_t:int -> label:Label.t -> (unit -> unit) -> unit
  (** Cancels any pending timer in the slot, then arms it for
      [mult_t * T] from now. *)

  val set_ticks :
    t -> slot -> ticks:Vtime.t -> label:Label.t -> (unit -> unit) -> unit

  val cancel : slot -> unit

  val armed : slot -> bool
end
