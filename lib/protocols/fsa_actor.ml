module M = Commit_fsa.Machine

type outcome = [ `To_commit | `To_abort ]

let tmpl_fsa_transition = Ctx.str2_template ~prefix:"fsa: " ~mid:" -> " ~suffix:""

type assignment = {
  timeouts : ((M.role * string) * outcome) list;
  uds : ((M.role * string) * outcome) list;
}

let msg_of_tag = function
  | "xact" -> Types.Xact
  | "yes" -> Types.Yes
  | "no" -> Types.No
  | "pre-prepare" -> Types.Pre_prepare
  | "pre-ack" -> Types.Pre_ack
  | "prepare" -> Types.Prepare
  | "ack" -> Types.Ack
  | "commit" -> Types.Commit_cmd
  | "abort" -> Types.Abort_cmd
  | tag -> invalid_arg (Printf.sprintf "Fsa_actor: unknown message tag %S" tag)

let tag_of_msg = function
  | Types.Xact -> Some "xact"
  | Types.Yes -> Some "yes"
  | Types.No -> Some "no"
  | Types.Pre_prepare -> Some "pre-prepare"
  | Types.Pre_ack -> Some "pre-ack"
  | Types.Prepare -> Some "prepare"
  | Types.Ack -> Some "ack"
  | Types.Commit_cmd -> Some "commit"
  | Types.Abort_cmd -> Some "abort"
  | Types.Probe _ | Types.State_inquiry _ | Types.State_answer _
  | Types.Px_vote _ | Types.Px_accept _ | Types.Px_poll _ | Types.Px_promise _
    ->
      None

let is_waiting machine id =
  (not (M.is_final machine id)) && M.receivable_tags machine id <> []

let waiting_states (fsa : M.t) =
  let of_machine (machine : M.machine) =
    List.filter_map
      (fun (s : M.state) ->
        if is_waiting machine s.id then Some (machine.M.role, s.id) else None)
      machine.M.states
  in
  of_machine fsa.M.master @ of_machine fsa.M.slave

let all_assignments fsa =
  let domain = waiting_states fsa in
  let rec enumerate = function
    | [] -> [ [] ]
    | state :: rest ->
        let tails = enumerate rest in
        List.concat_map
          (fun o -> List.map (fun tail -> (state, o) :: tail) tails)
          [ `To_commit; `To_abort ]
  in
  let timeout_choices = enumerate domain in
  let ud_choices = enumerate domain in
  List.concat_map
    (fun timeouts -> List.map (fun uds -> { timeouts; uds }) ud_choices)
    timeout_choices

let validate_assignment (fsa : M.t) assignment =
  let domain = waiting_states fsa in
  List.iter
    (fun (state, _) ->
      if not (List.mem state domain) then
        invalid_arg
          (Format.asprintf "Fsa_actor: assignment for non-waiting state %a"
             Commit_fsa.Analysis.pp_site_state state))
    (assignment.timeouts @ assignment.uds)

(* One module per (fsa, assignment) pair, packed as a first-class
   Site.S. *)
let make ~name:protocol_name fsa assignment =
  let fsa = M.validate_exn fsa in
  validate_assignment fsa assignment;
  (* Check every tag is realisable up front. *)
  List.iter
    (fun (machine : M.machine) ->
      List.iter
        (fun (tr : M.transition) ->
          (match tr.M.guard with
          | M.Recv tag | M.Recv_all_votes tag -> ignore (msg_of_tag tag)
          | M.Start -> ());
          List.iter
            (function
              | M.Send_slaves tag | M.Send_master tag -> ignore (msg_of_tag tag))
            tr.M.actions)
        machine.M.transitions)
    [ fsa.M.master; fsa.M.slave ];
  let module Actor = struct
    let name = protocol_name

    let blocking_by_design = false

    type t = {
      ctx : Ctx.t;
      machine : M.machine;
      vote_yes : bool;
      timer : Ctx.Timer_slot.slot;
      mutable state : string;
      mutable votes : (string * Site_id.Set.t) list;  (* Recv_all_votes *)
    }

    let role_of t = t.machine.M.role

    let create ctx role =
      let machine, vote_yes =
        match role with
        | Site.Master_role -> (fsa.M.master, true)
        | Site.Slave_role { vote_yes } -> (fsa.M.slave, vote_yes)
      in
      Ctx.obs_state ctx machine.M.initial;
      {
        ctx;
        machine;
        vote_yes;
        timer = Ctx.Timer_slot.create ();
        state = machine.M.initial;
        votes = [];
      }

    let state_name t = t.state

    let lookup table t = List.assoc_opt (role_of t, t.state) table

    let final_of t kind =
      match
        List.find_opt (fun (s : M.state) -> s.M.kind = kind) t.machine.M.states
      with
      | Some s -> s.M.id
      | None ->
          invalid_arg
            (Printf.sprintf "Fsa_actor: %s has no %s state" protocol_name
               (match kind with M.Commit -> "commit" | _ -> "abort"))

    let do_action t = function
      | M.Send_slaves tag -> Ctx.broadcast_slaves t.ctx (msg_of_tag tag)
      | M.Send_master tag -> Ctx.send_master t.ctx (msg_of_tag tag)

    let decide_if_final t =
      match M.kind_of t.machine t.state with
      | M.Commit -> Ctx.decide t.ctx Types.Commit ~reason:"fsa: commit state"
      | M.Abort -> Ctx.decide t.ctx Types.Abort ~reason:"fsa: abort state"
      | M.Initial | M.Intermediate -> ()

    (* Jump to the assigned final state on a timeout or returned
       message; the master announces the outcome. *)
    let rec jump t why outcome =
      Ctx.Timer_slot.cancel t.timer;
      let kind = match outcome with `To_commit -> M.Commit | `To_abort -> M.Abort in
      t.state <- final_of t kind;
      Ctx.obs_state t.ctx t.state;
      if Ctx.tracing t.ctx then
        Ctx.log2 t.ctx tmpl_fsa_transition (Ctx.intern t.ctx why)
          (Ctx.intern t.ctx t.state);
      if role_of t = M.Master then
        Ctx.broadcast_slaves t.ctx
          (match outcome with
          | `To_commit -> Types.Commit_cmd
          | `To_abort -> Types.Abort_cmd);
      decide_if_final t

    and arm_timer t =
      Ctx.Timer_slot.cancel t.timer;
      if is_waiting t.machine t.state then
        match lookup assignment.timeouts t with
        | None -> ()
        | Some outcome ->
            let mult_t = if role_of t = M.Master then 2 else 3 in
            let here = t.state in
            Ctx.Timer_slot.set t.ctx t.timer ~mult_t ~label:(Label.Static "fsa-timeout")
              (fun () ->
                if String.equal t.state here then
                  jump t ("timeout in " ^ here) outcome)

    let apply t (tr : M.transition) =
      t.state <- tr.M.target;
      Ctx.obs_state t.ctx t.state;
      List.iter (do_action t) tr.M.actions;
      arm_timer t;
      decide_if_final t

    let begin_transaction t =
      match
        List.find_opt
          (fun (tr : M.transition) ->
            tr.M.guard = M.Start && String.equal tr.M.source t.state)
          t.machine.M.transitions
      with
      | Some tr -> apply t tr
      | None -> ()

    let candidate_transitions t tag =
      List.filter
        (fun (tr : M.transition) ->
          String.equal tr.M.source t.state
          &&
          match tr.M.guard with
          | M.Recv tag' | M.Recv_all_votes tag' -> String.equal tag tag'
          | M.Start -> false)
        t.machine.M.transitions

    let on_message t (envelope : Types.msg Network.envelope) =
      match tag_of_msg envelope.payload with
      | None -> ()
      | Some tag -> (
          (* A vote choice appears as two transitions reading the same
             tag; the voting flag picks the branch. *)
          let candidates = candidate_transitions t tag in
          let chosen =
            match candidates with
            | [] -> None
            | [ tr ] -> Some tr
            | multiple ->
                List.find_opt
                  (fun (tr : M.transition) -> tr.M.votes_yes = t.vote_yes)
                  multiple
          in
          match chosen with
          | None -> ()
          | Some tr -> (
              match tr.M.guard with
              | M.Start -> ()
              | M.Recv _ -> apply t tr
              | M.Recv_all_votes tag ->
                  let seen =
                    Option.value
                      (List.assoc_opt tag t.votes)
                      ~default:Site_id.Set.empty
                  in
                  let seen = Site_id.Set.add envelope.src seen in
                  t.votes <- (tag, seen) :: List.remove_assoc tag t.votes;
                  if Site_id.Set.cardinal seen = Ctx.n t.ctx - 1 then
                    apply t tr))

    let on_delivery t = function
      | Network.Msg envelope -> on_message t envelope
      | Network.Undeliverable _ -> (
          match lookup assignment.uds t with
          | Some outcome -> jump t ("UD in " ^ t.state) outcome
          | None -> ())
  end in
  (module Actor : Site.S)

let of_augment ~name augment =
  let analysis = augment.Commit_fsa.Augment.analysis in
  let fsa = Commit_fsa.Analysis.protocol analysis in
  let to_outcome = function
    | Commit_fsa.Augment.To_commit -> `To_commit
    | Commit_fsa.Augment.To_abort -> `To_abort
  in
  let timeouts, uds =
    List.fold_left
      (fun (timeouts, uds) (a : Commit_fsa.Augment.assignment) ->
        let timeout = to_outcome a.Commit_fsa.Augment.timeout in
        let ud =
          match a.Commit_fsa.Augment.on_undeliverable with
          | Some o -> to_outcome o
          | None -> timeout (* ambiguous: follow Rule(a) *)
        in
        ((a.state, timeout) :: timeouts, (a.state, ud) :: uds))
      ([], []) augment.Commit_fsa.Augment.assignments
  in
  make ~name fsa { timeouts; uds }
