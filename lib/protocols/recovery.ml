type status =
  [ `Unknown | `Active | `Prepared | `Committed | `Aborted | `Ended ]

type action = Redo | Abort_local | Ask | Done

let on_restart : status -> action = function
  | `Unknown | `Active -> Abort_local
  | `Prepared -> Ask
  | `Committed -> Redo
  | `Aborted | `Ended -> Done

type resolution = Adopt of Types.decision | Wait

let resolve ~group_decision =
  match group_decision with Some d -> Adopt d | None -> Wait

let pp_action fmt a =
  Format.pp_print_string fmt
    (match a with
    | Redo -> "redo"
    | Abort_local -> "abort-local"
    | Ask -> "ask"
    | Done -> "done")
