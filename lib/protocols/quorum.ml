(* Skeen's quorum-based commit assigns every site a vote weight V_i and
   requires V_C + V_A > sum(V_i).  [Make] takes the weighting; the
   default export gives every site one vote and majority quorums. *)

module type WEIGHTS = sig
  val weight : Site_id.t -> int
  (** must be positive *)
end

module Uniform_weights = struct
  let weight _ = 1
end

let tmpl_quorum_termination =
  Ctx.str_template ~prefix:"quorum termination (" ~suffix:")"

let tmpl_blocked_repolling =
  Ctx.int_template ~prefix:"group weight "
    ~suffix:" cannot reach a quorum; blocked, re-polling"

let tmpl_late_answer =
  Ctx.site_template ~prefix:"late state-answer from " ~suffix:" ignored"

module Make (W : WEIGHTS) = struct
  let name = "quorum"

  let blocking_by_design = true

  let weight_of_sites sites =
    List.fold_left (fun acc s -> acc + W.weight s) 0 sites

  let total_weight ~n = weight_of_sites (Site_id.all ~n)

  let commit_quorum ~n = (total_weight ~n / 2) + 1

  let abort_quorum ~n = total_weight ~n - commit_quorum ~n + 1

  type base_state =
    | B_initial
    | B_wait of { yes : Site_id.Set.t }  (** master: w1; slave: w *)
    | B_prepared of { acks : Site_id.Set.t }  (** master: p1; slave: p *)
    | B_committed
    | B_aborted

  type termination = {
    mutable answers : Types.phase Site_id.Map.t;
    mutable round : int;
  }

  type t = {
    ctx : Ctx.t;
    role : Site.role;
    timer : Ctx.Timer_slot.slot;
    mutable base : base_state;
    mutable terminating : termination option;
  }

  let create ctx role =
    {
      ctx;
      role;
      timer = Ctx.Timer_slot.create ();
      base = B_initial;
      terminating = None;
    }

  let is_master t = match t.role with Site.Master_role -> true | Site.Slave_role _ -> false

  let state_name t =
    let base =
      match (t.base, is_master t) with
      | B_initial, true -> "q1"
      | B_wait _, true -> "w1"
      | B_prepared _, true -> "p1"
      | B_committed, true -> "c1"
      | B_aborted, true -> "a1"
      | B_initial, false -> "q"
      | B_wait _, false -> "w"
      | B_prepared _, false -> "p"
      | B_committed, false -> "c"
      | B_aborted, false -> "a"
    in
    match t.terminating with
    | None -> base
    | Some term -> Printf.sprintf "%s/quorum-round%d" base term.round

  let phase_of t =
    match t.base with
    | B_initial -> Types.Ph_initial
    | B_wait _ -> Types.Ph_wait
    | B_prepared _ -> Types.Ph_prepared
    | B_committed -> Types.Ph_committed
    | B_aborted -> Types.Ph_aborted

  let finish t decision ~reason =
    Ctx.Timer_slot.cancel t.timer;
    t.terminating <- None;
    t.base <-
      (match decision with Types.Commit -> B_committed | Types.Abort -> B_aborted);
    Ctx.decide t.ctx decision ~reason

  let decide_and_tell_group t decision ~reason =
    finish t decision ~reason;
    Ctx.broadcast_all t.ctx
      (match decision with
      | Types.Commit -> Types.Commit_cmd
      | Types.Abort -> Types.Abort_cmd)

  (* --- quorum termination ------------------------------------------------ *)

  let rec start_termination t ~why =
    match t.base with
    | B_committed | B_aborted -> ()
    | B_initial | B_wait _ | B_prepared _ ->
        Ctx.log_str t.ctx tmpl_quorum_termination why;
        let term =
          match t.terminating with
          | Some term ->
              term.round <- term.round + 1;
              term.answers <- Site_id.Map.empty;
              term
          | None -> { answers = Site_id.Map.empty; round = 1 }
        in
        t.terminating <- Some term;
        Ctx.broadcast_all t.ctx
          (Types.State_inquiry { coordinator = Ctx.self t.ctx });
        (* One round trip gathers every reachable answer. *)
        Ctx.Timer_slot.set t.ctx t.timer ~mult_t:2 ~label:(Label.Static "quorum-window")
          (fun () -> close_window t)

  and close_window t =
    match t.terminating with
    | None -> ()
    | Some term ->
        let n = Ctx.n t.ctx in
        let answers = Site_id.Map.add (Ctx.self t.ctx) (phase_of t) term.answers in
        let group_weight =
        Site_id.Map.fold (fun site _ acc -> acc + W.weight site) answers 0
      in
        let has phase =
          Site_id.Map.exists (fun _ p -> p = phase) answers
        in
        if has Types.Ph_committed then
          decide_and_tell_group t Types.Commit ~reason:"group member committed"
        else if has Types.Ph_aborted then
          decide_and_tell_group t Types.Abort ~reason:"group member aborted"
        else if has Types.Ph_prepared && group_weight >= commit_quorum ~n then
          decide_and_tell_group t Types.Commit
            ~reason:
              (Printf.sprintf
                 "prepared member and group weight %d >= commit quorum %d"
                 group_weight (commit_quorum ~n))
        else if
          (not (has Types.Ph_prepared)) && group_weight >= abort_quorum ~n
        then
          decide_and_tell_group t Types.Abort
            ~reason:
              (Printf.sprintf
                 "no prepared member and group weight %d >= abort quorum %d"
                 group_weight (abort_quorum ~n))
        else begin
          Ctx.log1 t.ctx tmpl_blocked_repolling group_weight;
          Ctx.Timer_slot.set t.ctx t.timer ~mult_t:5 ~label:(Label.Static "quorum-retry")
            (fun () -> start_termination t ~why:"re-poll")
        end

  (* --- the three-phase base flow ----------------------------------------- *)

  let arm_base_timer t ~mult_t ~label =
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t ~label (fun () ->
        (* forced only when the timeout actually fires *)
        start_termination t ~why:(Label.force label ^ " timeout"))

  let begin_transaction t =
    match (t.role, t.base) with
    | Site.Master_role, B_initial ->
        Ctx.broadcast_slaves t.ctx Types.Xact;
        t.base <- B_wait { yes = Site_id.Set.empty };
        arm_base_timer t ~mult_t:2 ~label:(Label.Static "w1")
    | Site.Master_role, (B_wait _ | B_prepared _ | B_committed | B_aborted)
    | Site.Slave_role _, _ ->
        ()

  let on_base_msg t (envelope : Types.msg Network.envelope) =
    let n = Ctx.n t.ctx in
    match (t.role, t.base, envelope.payload) with
    (* master *)
    | Site.Master_role, B_wait { yes }, Types.Yes ->
        let yes = Site_id.Set.add envelope.src yes in
        if Site_id.Set.cardinal yes = n - 1 then begin
          Ctx.broadcast_slaves t.ctx Types.Prepare;
          t.base <- B_prepared { acks = Site_id.Set.empty };
          arm_base_timer t ~mult_t:2 ~label:(Label.Static "p1")
        end
        else t.base <- B_wait { yes }
    | Site.Master_role, B_wait _, Types.No ->
        decide_and_tell_group t Types.Abort ~reason:"received a no vote"
    | Site.Master_role, B_prepared { acks }, Types.Ack ->
        let acks = Site_id.Set.add envelope.src acks in
        if Site_id.Set.cardinal acks = n - 1 then
          decide_and_tell_group t Types.Commit ~reason:"all acks received"
        else t.base <- B_prepared { acks }
    (* slave *)
    | Site.Slave_role { vote_yes }, B_initial, Types.Xact ->
        if vote_yes then begin
          Ctx.send_master t.ctx Types.Yes;
          t.base <- B_wait { yes = Site_id.Set.empty };
          arm_base_timer t ~mult_t:3 ~label:(Label.Static "w")
        end
        else begin
          Ctx.send_master t.ctx Types.No;
          finish t Types.Abort ~reason:"voted no"
        end
    | Site.Slave_role _, B_wait _, Types.Prepare ->
        Ctx.send_master t.ctx Types.Ack;
        t.base <- B_prepared { acks = Site_id.Set.empty };
        arm_base_timer t ~mult_t:3 ~label:(Label.Static "p")
    (* commands, for either role *)
    | _, (B_initial | B_wait _ | B_prepared _), Types.Commit_cmd ->
        finish t Types.Commit ~reason:"commit command"
    | _, (B_initial | B_wait _ | B_prepared _), Types.Abort_cmd ->
        finish t Types.Abort ~reason:"abort command"
    | _, _, Types.State_inquiry { coordinator } ->
        Ctx.send t.ctx coordinator (Types.State_answer { phase = phase_of t })
    | _, _, Types.State_answer { phase } -> (
        match t.terminating with
        | Some term ->
            term.answers <- Site_id.Map.add envelope.src phase term.answers
        | None ->
            Ctx.log_site t.ctx tmpl_late_answer envelope.src)
    | ( _,
        _,
        ( Types.Xact | Types.Yes | Types.No | Types.Pre_prepare
        | Types.Pre_ack | Types.Prepare | Types.Ack | Types.Probe _
        | Types.Commit_cmd | Types.Abort_cmd | Types.Px_vote _
        | Types.Px_accept _ | Types.Px_poll _ | Types.Px_promise _ ) ) ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_delivery t = function
    | Network.Msg envelope -> on_base_msg t envelope
    | Network.Undeliverable envelope -> (
        match envelope.payload with
        | Types.State_inquiry _ | Types.State_answer _ ->
            (* Bounced poll traffic carries no new information: the window
               timer already bounds the wait. *)
            ()
        | Types.Xact | Types.Yes | Types.No | Types.Pre_prepare
        | Types.Pre_ack | Types.Prepare | Types.Ack | Types.Commit_cmd
        | Types.Abort_cmd | Types.Probe _ | Types.Px_vote _
        | Types.Px_accept _ | Types.Px_poll _ | Types.Px_promise _ ->
            start_termination t
              ~why:
                (Format.asprintf "UD(%a) returned" Types.pp_msg envelope.payload))

end

include Make (Uniform_weights)
