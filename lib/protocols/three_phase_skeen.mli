(** Three-phase commit with Skeen's cooperative termination protocol for
    {e site failures} — the paper's reference [4], and the protocol its
    Section 7 contrasts with ("the termination protocol to be taken for
    network partitioning is different from the termination protocol to
    be taken for master site failure which has been proposed by Dale
    Skeen").

    Failure-free flow: ordinary 3PC.  When a site times out (it lost
    its master — or, indistinguishably, got cut off), it elects itself
    terminator and runs the cooperative protocol:

    + poll every site for its phase and wait one round trip;
    + any committed respondent: commit;  any aborted: abort;
    + no respondent (nor self) prepared: abort — nobody can have
      committed, since commitment requires every site prepared;
    + someone prepared: move the wait-state respondents to prepared
      (second prepare round), then commit everyone reachable.

    Under the class it was designed for — site failures, including the
    master's, with {e no} partition — this protocol is nonblocking and
    consistent, which the master-failure tests verify.  Under a network
    partition it is {e inconsistent}: the two sides run independent
    terminators over different evidence (e.g. the G1 side holds a
    prepared site and commits while the G2 side, all waiters, aborts).
    That contrast is exactly why the paper needs a different
    termination protocol for partitioning, and the thm9 bench shows it. *)

include Site.S
