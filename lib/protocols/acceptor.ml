let ballot_zero = 0

let make_ballot ~n ~site ~round =
  if round < 1 then
    invalid_arg (Printf.sprintf "Acceptor.make_ballot: round %d < 1" round);
  ((round - 1) * n) + Site_id.to_int site

let owner ~n b =
  if b = 0 then Site_id.master else Site_id.of_int ((((b - 1) mod n) + 1))

let round ~n b = if b = 0 then 0 else ((b - 1) / n) + 1

type t = {
  n : int;
  mutable promised : int;
  accepted : (int * bool) option array;  (* index = logical site - 1 *)
}

let create ~n = { n; promised = 0; accepted = Array.make n None }

let promised t = t.promised

let receive_poll t ~ballot =
  if ballot < t.promised then `Stale
  else begin
    t.promised <- ballot;
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      match t.accepted.(i) with
      | None -> ()
      | Some v -> acc := (Site_id.of_int (i + 1), v) :: !acc
    done;
    `Promise !acc
  end

let receive_vote t ~instance ~ballot ~prepared =
  if ballot < t.promised then `Stale
  else begin
    t.promised <- ballot;
    let i = Site_id.to_int instance - 1 in
    (match t.accepted.(i) with
    | Some (b, _) when b > ballot -> ()
    | Some _ | None -> t.accepted.(i) <- Some (ballot, prepared));
    `Accepted
  end
