module type RESILIENCE = sig
  val f : int
end

let tmpl_escalating = Ctx.int_template ~prefix:"px: escalating to ballot " ~suffix:""

let tmpl_leading_b0 =
  Ctx.int2_template ~prefix:"px: leading ballot 0 (" ~mid:" acceptors, majority "
    ~suffix:")"

let tmpl_ud_observed =
  Ctx.msg_str_template ~prefix:"UD(" ~mid:") observed in " ~suffix:""

module Make (R : RESILIENCE) = struct
  let name =
    if R.f = 0 then "paxos-f0"
    else if R.f = 1 then "paxos"
    else Printf.sprintf "paxos-f%d" R.f

  let blocking_by_design = R.f = 0

  type leader =
    | L_idle
    | L_poll of poll
    | L_collect of collect

  and poll = {
    p_ballot : int;
    mutable promises : Site_id.Set.t;
    best : (int * bool) option array;  (* per instance, from phase 1b *)
  }

  and collect = {
    c_ballot : int;
    accepts : Site_id.Set.t array;  (* per instance: distinct 2b senders *)
    values : bool option array;  (* per instance: the value being accepted *)
  }

  type t = {
    ctx : Ctx.t;
    role : Site.role;
    vote_yes : bool;
    timer : Ctx.Timer_slot.slot;
    acc : Acceptor.t option;  (* Some iff this site hosts an acceptor *)
    mutable voted : bool;  (* ballot-0 2a for our own instance cast *)
    mutable round : int;  (* last escalation round this site used *)
    mutable max_ballot : int;  (* highest ballot seen in any message *)
    mutable leader : leader;
    mutable finished : bool;
  }

  let acceptor_count n = min n ((2 * R.f) + 1)

  let majority t = (acceptor_count (Ctx.n t.ctx) / 2) + 1

  let acceptor_sites t =
    let k = acceptor_count (Ctx.n t.ctx) in
    List.filter
      (fun s -> Site_id.to_int s <= k)
      (Site_id.all ~n:(Ctx.n t.ctx))

  let create ctx role =
    let n = Ctx.n ctx in
    let self = Ctx.self ctx in
    Ctx.obs_state ctx (if Site_id.is_master self then "q1" else "q");
    {
      ctx;
      role;
      vote_yes =
        (match role with
        | Site.Master_role -> true
        | Site.Slave_role { vote_yes } -> vote_yes);
      timer = Ctx.Timer_slot.create ();
      acc =
        (if Site_id.to_int self <= acceptor_count n then
           Some (Acceptor.create ~n)
         else None);
      voted = false;
      round = 0;
      max_ballot = Acceptor.ballot_zero;
      leader = L_idle;
      finished = false;
    }

  let state_name t =
    let base =
      match Ctx.decided t.ctx with
      | Some Types.Commit -> "c"
      | Some Types.Abort -> "a"
      | None -> if t.voted then "p" else "q"
    in
    if Site_id.is_master (Ctx.self t.ctx) then base ^ "1" else base

  let note_ballot t b = if b > t.max_ballot then t.max_ballot <- b

  (* Per-site stagger plus a per-round backoff: two surviving would-be
     leaders under worst-case delay would otherwise escalate into each
     other's in-flight rounds forever (each new poll makes the other's
     pending votes stale).  Growing the retry window by 2T per round
     guarantees one of them eventually gets the 4T of quiet a full
     poll->promise->vote->accept cycle needs. *)
  let retry_mult t ~round = 3 + (Site_id.to_int (Ctx.self t.ctx) mod 3) + (2 * round)

  (* Sending to our co-located acceptor (or to ourselves as ballot
     leader) is a local function call, never a network message. *)
  let rec send_px t dst msg =
    if Site_id.equal dst (Ctx.self t.ctx) then handle t ~src:dst msg
    else Ctx.send t.ctx dst msg

  and handle t ~src msg =
    match msg with
    | Types.Xact -> (
        match t.role with
        | Site.Master_role -> ()
        | Site.Slave_role _ -> cast_vote t)
    | Types.Commit_cmd -> learn t Types.Commit
    | Types.Abort_cmd -> learn t Types.Abort
    | Types.Px_vote { instance; ballot; prepared } -> (
        note_ballot t ballot;
        match t.acc with
        | None -> ()
        | Some acc -> (
            match Acceptor.receive_vote acc ~instance ~ballot ~prepared with
            | `Stale -> ()
            | `Accepted ->
                Ctx.obs_instant t.ctx ~cat:"paxos" "px-accept";
                send_px t
                  (Acceptor.owner ~n:(Ctx.n t.ctx) ballot)
                  (Types.Px_accept { instance; ballot; prepared })))
    | Types.Px_poll { ballot } -> (
        note_ballot t ballot;
        match t.acc with
        | None -> ()
        | Some acc -> (
            match Acceptor.receive_poll acc ~ballot with
            | `Stale -> ()
            | `Promise accepted ->
                send_px t
                  (Acceptor.owner ~n:(Ctx.n t.ctx) ballot)
                  (Types.Px_promise { ballot; accepted })))
    | Types.Px_accept { instance; ballot; prepared } -> (
        note_ballot t ballot;
        match t.leader with
        | L_collect c when c.c_ballot = ballot ->
            let i = Site_id.to_int instance - 1 in
            if not (Site_id.Set.mem src c.accepts.(i)) then begin
              c.accepts.(i) <- Site_id.Set.add src c.accepts.(i);
              c.values.(i) <- Some prepared;
              check_chosen t c
            end
        | L_collect _ | L_poll _ | L_idle -> ())
    | Types.Px_promise { ballot; accepted } -> (
        note_ballot t ballot;
        match t.leader with
        | L_poll p when p.p_ballot = ballot ->
            if not (Site_id.Set.mem src p.promises) then begin
              p.promises <- Site_id.Set.add src p.promises;
              List.iter
                (fun (inst, ((b, _) as bv)) ->
                  let i = Site_id.to_int inst - 1 in
                  match p.best.(i) with
                  | Some (b0, _) when b0 >= b -> ()
                  | Some _ | None -> p.best.(i) <- Some bv)
                accepted;
              if Site_id.Set.cardinal p.promises >= majority t then
                start_round t p
            end
        | L_poll _ | L_collect _ | L_idle -> ())
    | Types.Yes | Types.No | Types.Pre_prepare | Types.Pre_ack | Types.Prepare
    | Types.Ack | Types.Probe _ | Types.State_inquiry _ | Types.State_answer _
      ->
        Ctx.log_ignoring t.ctx msg (state_name t)

  (* Cast the ballot-0 2a for our own instance.  A participant that
     votes Aborted may decide unilaterally: no acceptor can ever accept
     Prepared for our instance unless we proposed it, so the instance
     (and hence the transaction) can only choose Aborted. *)
  and cast_vote t =
    if (not t.voted) && not t.finished then begin
      t.voted <- true;
      let self = Ctx.self t.ctx in
      let prepared = t.vote_yes in
      if prepared then
        Ctx.obs_state t.ctx (if Site_id.is_master self then "p1" else "p");
      List.iter
        (fun a ->
          if not t.finished then
            send_px t a
              (Types.Px_vote
                 { instance = self; ballot = Acceptor.ballot_zero; prepared }))
        (acceptor_sites t);
      if prepared then arm_timer t ~mult:4
      else finish t Types.Abort ~reason:"voted no"
    end

  and arm_timer t ~mult =
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t:mult
      ~label:(Label.Static "px-escalate") (fun () -> escalate t)

  (* The escalation path: become leader of a ballot we own that is
     higher than anything seen, poll the acceptors, and re-drive every
     instance from whatever a promise majority reports. *)
  and escalate t =
    if not t.finished then begin
      let n = Ctx.n t.ctx in
      let self = Ctx.self t.ctx in
      t.round <- max (t.round + 1) (Acceptor.round ~n t.max_ballot + 1);
      let ballot = Acceptor.make_ballot ~n ~site:self ~round:t.round in
      note_ballot t ballot;
      t.leader <-
        L_poll
          {
            p_ballot = ballot;
            promises = Site_id.Set.empty;
            best = Array.make n None;
          };
      if Ctx.obs_on t.ctx then
        Ctx.obs_phase t.ctx (Printf.sprintf "poll-b%d" ballot);
      Ctx.log1 t.ctx tmpl_escalating ballot;
      List.iter
        (fun a ->
          if not t.finished then send_px t a (Types.Px_poll { ballot }))
        (acceptor_sites t);
      if not t.finished then arm_timer t ~mult:(retry_mult t ~round:t.round)
    end

  (* Phase 1 done: a majority promised.  Per instance, re-propose the
     highest accepted value; a free instance gets Aborted (the Gray &
     Lamport rule), except our own, which gets our actual vote — if it
     were chosen otherwise a majority promise would have reported it. *)
  and start_round t p =
    let n = Ctx.n t.ctx in
    let self_i = Site_id.to_int (Ctx.self t.ctx) - 1 in
    let values =
      Array.init n (fun i ->
          match p.best.(i) with
          | Some (_, v) -> v
          | None -> i = self_i && t.vote_yes)
    in
    t.leader <-
      L_collect
        {
          c_ballot = p.p_ballot;
          accepts = Array.init n (fun _ -> Site_id.Set.empty);
          values = Array.map Option.some values;
        };
    if Ctx.obs_on t.ctx then
      Ctx.obs_phase t.ctx (Printf.sprintf "collect-b%d" p.p_ballot);
    let sites = acceptor_sites t in
    Array.iteri
      (fun i v ->
        let instance = Site_id.of_int (i + 1) in
        List.iter
          (fun a ->
            if not t.finished then
              send_px t a
                (Types.Px_vote { instance; ballot = p.p_ballot; prepared = v }))
          sites)
      values

  and check_chosen t c =
    if not t.finished then begin
      let n = Ctx.n t.ctx in
      let maj = majority t in
      let aborted = ref false and all_prepared = ref true in
      for i = 0 to n - 1 do
        if Site_id.Set.cardinal c.accepts.(i) >= maj then begin
          match c.values.(i) with
          | Some false -> aborted := true
          | Some true | None -> ()
        end
        else all_prepared := false
      done;
      if !aborted then announce t Types.Abort ~ballot:c.c_ballot
      else if !all_prepared then announce t Types.Commit ~ballot:c.c_ballot
    end

  and announce t decision ~ballot =
    Ctx.broadcast_all t.ctx
      (match decision with
      | Types.Commit -> Types.Commit_cmd
      | Types.Abort -> Types.Abort_cmd);
    finish t decision
      ~reason:
        (if ballot = Acceptor.ballot_zero then "px-chosen"
         else "px-chosen-recovery")

  and learn t decision =
    t.voted <- true;
    finish t decision
      ~reason:
        (match decision with
        | Types.Commit -> "px-learned-commit"
        | Types.Abort -> "px-learned-abort")

  and finish t decision ~reason =
    if not t.finished then begin
      t.finished <- true;
      t.leader <- L_idle;
      Ctx.Timer_slot.cancel t.timer;
      let base =
        match decision with Types.Commit -> "c" | Types.Abort -> "a"
      in
      Ctx.obs_state t.ctx
        (if Site_id.is_master (Ctx.self t.ctx) then base ^ "1" else base);
      Ctx.decide t.ctx decision ~reason
    end

  let begin_transaction t =
    match t.role with
    | Site.Slave_role _ -> ()
    | Site.Master_role ->
        if (not t.voted) && not t.finished then begin
          Ctx.log2 t.ctx tmpl_leading_b0
            (acceptor_count (Ctx.n t.ctx))
            (majority t);
          Ctx.broadcast_slaves t.ctx Types.Xact;
          let n = Ctx.n t.ctx in
          t.leader <-
            L_collect
              {
                c_ballot = Acceptor.ballot_zero;
                accepts = Array.init n (fun _ -> Site_id.Set.empty);
                values = Array.make n None;
              };
          cast_vote t;
          if (not t.finished) && Ctx.obs_on t.ctx then
            Ctx.obs_phase t.ctx "collect-b0"
        end

  let on_delivery t = function
    | Network.Undeliverable envelope ->
        (* A bounce carries no new information: the escalation timer
           already bounds the wait, and polls are re-sent on retry. *)
        Ctx.log_msg_str t.ctx tmpl_ud_observed envelope.payload (state_name t)
    | Network.Msg envelope -> handle t ~src:envelope.src envelope.payload
end

module F1 = Make (struct
  let f = 1
end)

module F0 = Make (struct
  let f = 0
end)

let protocol : Site.packed = (module F1)

let protocol_f0 : Site.packed = (module F0)
