(** A generic interpreter turning a declarative commit-protocol FSA
    (from [Commit_fsa]) plus an assignment of timeout and
    undeliverable-message transitions into an executable {!Site.S}
    actor.

    This closes the loop between the repository's two layers: the
    hand-written actors (extended 2PC, 3PC+rules) can be cross-validated
    against the interpretation of their FSAs, and — the real payoff —
    {e Lemma 3 becomes an exhaustive experiment}: enumerate {e every}
    possible assignment of timeout/UD outcomes for 3PC's waiting states
    (2^10 of them) and check that each one either violates atomicity or
    blocks somewhere on an adversarial grid.  The paper proves no
    assignment works; the lemma3 bench confirms it mechanically.

    Interpretation semantics:
    - base transitions follow the FSA; a slave's vote picks between the
      yes/no branches out of its initial state;
    - entering a waiting state arms the Fig. 5 timer (master 2T,
      slave 3T);
    - a timeout or returned message in a state with an assigned outcome
      jumps to that role's commit/abort state; the {e master}
      additionally broadcasts the corresponding command (as the
      hand-written protocols do — a silent master decision would
      trivially block every slave);
    - a state with no assignment ignores the event (and can therefore
      block, which the verdicts detect). *)

type outcome = [ `To_commit | `To_abort ]

type assignment = {
  timeouts : ((Commit_fsa.Machine.role * string) * outcome) list;
  uds : ((Commit_fsa.Machine.role * string) * outcome) list;
}

val make : name:string -> Commit_fsa.Machine.t -> assignment -> Site.packed
(** @raise Invalid_argument if the FSA fails validation, if an
    assignment mentions an unknown or final state, or if a message tag
    has no {!Types.msg} counterpart. *)

val of_augment : name:string -> Commit_fsa.Augment.t -> Site.packed
(** The Rule(a)/Rule(b) augmentation as an executable protocol: timeout
    outcomes from Rule(a); UD outcomes from Rule(b) where it is decided,
    falling back to the Rule(a) outcome where it is ambiguous. *)

val waiting_states :
  Commit_fsa.Machine.t -> (Commit_fsa.Machine.role * string) list
(** The states an assignment ranges over (non-final, message-awaiting),
    master's first — the enumeration domain of the lemma3 bench. *)

val all_assignments : Commit_fsa.Machine.t -> assignment list
(** Every total assignment of both timeout and UD outcomes over
    {!waiting_states} — [4^k] of them for [k] waiting states.  3PC has
    [k = 5], giving 1024. *)
