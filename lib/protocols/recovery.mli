(** The paper's recovery rule (Section 2), as data.

    A restarting site classifies each transaction found in its WAL and
    takes exactly one of four actions — these are the protocol-level
    entry points a cluster runtime drives after
    [Durable_site.recover]:

    - [Redo]: a commit log exists but no end record; replay the updates
      (idempotently) and finish.
    - [Abort_local]: the site never reached its prepared state (or
      never heard of the transaction at all, e.g. it was admitted while
      the site was down); the paper prescribes an immediate unilateral
      abort — no operational site can have committed without this
      site's prepared vote.
    - [Ask]: the site is {e in doubt} — prepared, undecided.  It must
      not decide locally; it asks an operational site for the group
      outcome and adopts it ({!resolve}).
    - [Done]: a decision already reached stable storage; nothing to do.

    Note the [Abort_local] case is only sound for protocols whose
    commit point requires every participant to have durably prepared
    (3PC, the termination family, Paxos Commit).  Plain 2PC
    participants vote without a forced prepared record, so a
    crash-recover can contradict a group commit — the classic argument
    for forcing the vote, and visible in this codebase as a torn
    transaction when 2PC is run under a crash-recover schedule. *)

type status =
  [ `Unknown | `Active | `Prepared | `Committed | `Aborted | `Ended ]

type action = Redo | Abort_local | Ask | Done

val on_restart : status -> action

type resolution = Adopt of Types.decision | Wait

val resolve : group_decision:Types.decision option -> resolution
(** In-doubt resolution: adopt the first decision any operational site
    has recorded (all-or-nothing agreement makes "first" equal "the"
    group decision), or wait for one to appear. *)

val pp_action : Format.formatter -> action -> unit
