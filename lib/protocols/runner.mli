(** Wires a protocol module to the simulated network, runs one
    transaction to quiescence, and harvests the result.

    This is the experiment unit everything else builds on: the checker
    sweeps it over scenario grids, the benches time it, the examples
    narrate its traces. *)

type config = {
  n : int;  (** number of participating sites (master = site 1) *)
  t_unit : Vtime.t;  (** T, the longest end-to-end propagation delay *)
  mode : Network.mode;
  partition : Partition.t;
  delay : Delay.t;
  seed : int64;
  votes : (Site_id.t * bool) list;
      (** per-slave vote overrides; a slave not listed votes yes *)
  crashes : (Site_id.t * Vtime.t) list;
      (** site failures (Section 7 experiments only) *)
  start_at : Vtime.t;  (** when the user's request reaches the master *)
  horizon : Vtime.t;  (** give-up time for the run *)
  trace_enabled : bool;
}

val default_config : ?n:int -> ?t_unit:Vtime.t -> unit -> config
(** n = 3, t_unit = 1000 ticks, optimistic mode, no partition, uniform
    delays, seed 1, all-yes votes, start at 0, horizon 50T, tracing on. *)

type site_result = {
  site : Site_id.t;
  decision : Types.decision option;  (** [None] = blocked (or crashed) *)
  decided_at : Vtime.t option;
  final_state : string;
  reasons : string list;  (** annotations recorded via {!Ctx.reason} *)
  crashed : bool;
}

type result = {
  protocol_name : string;
  config : config;
  sites : site_result array;  (** index i = site i+1 *)
  net_stats : Network.stats;
  trace : Trace.t;
  finished_at : Vtime.t;  (** virtual time when the run quiesced *)
  events_run : int;
      (** simulator events executed — the engine-bench denominator *)
}

type scratch
(** Reusable per-domain state (today: one engine whose grown heap array
    survives across runs).  A scratch must never be used by two runs
    concurrently; the result of a run with a scratch is byte-identical
    to one without. *)

val make_scratch : unit -> scratch

val run :
  ?tap:(Types.msg Network.event -> unit) ->
  ?obs:Obs.t ->
  ?scratch:scratch ->
  Site.packed ->
  config ->
  result
(** [tap] observes every message fate (see {!Network.set_tap}); the
    checker's case classifier and the timing benches use it.

    [obs] (default {!Obs.disabled}) records per-site lifecycle spans
    and message-flow edges; the runner seals any still-open spans when
    the engine stops, so the recorder is export-ready on return.

    [scratch] reuses a {!scratch}'s engine via {!Engine.reset} instead
    of allocating a fresh one — the sweep hot path threads one scratch
    per domain through every run that domain executes.  The returned
    [result.trace] is always a fresh trace, never shared with the
    scratch. *)

val site_result : result -> Site_id.t -> site_result

val decisions : result -> Types.decision option list
(** In site order. *)

val pp_result : Format.formatter -> result -> unit
(** One-line-per-site summary. *)
