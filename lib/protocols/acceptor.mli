(** Ballot arithmetic and acceptor state for Paxos Commit.

    One acceptor lives co-located on each acceptor site and serves every
    consensus instance of the transaction (one instance per participant's
    prepared/aborted vote).  Ballots are plain ints whose integer order is
    exactly the lexicographic (round, site) order, so a would-be leader
    always owns a ballot higher than anything it has seen by bumping the
    round. *)

(** {1 Ballots}

    Ballot 0 is the initial leader's fast-path ballot (owned by the
    logical master, site 1, at round 0).  For round [r >= 1] and site
    [s] in [1..n], the ballot is [(r - 1) * n + s]. *)

val ballot_zero : int
(** [0]: the fast-path ballot every instance starts on. *)

val make_ballot : n:int -> site:Site_id.t -> round:int -> int
(** The ballot owned by [site] at escalation [round >= 1].
    Raises [Invalid_argument] if [round < 1]. *)

val owner : n:int -> int -> Site_id.t
(** The site that owns a ballot: site 1 for ballot 0, else
    [((b - 1) mod n) + 1]. *)

val round : n:int -> int -> int
(** The escalation round a ballot belongs to: 0 for ballot 0, else
    [(b - 1) / n + 1]. *)

(** {1 Acceptor state} *)

type t
(** Mutable acceptor state: a single promise ballot covering all
    instances plus, per instance, the highest (ballot, prepared) value
    accepted so far. *)

val create : n:int -> t

val promised : t -> int
(** Highest ballot this acceptor has promised (0 initially — ballot-0
    proposals are always admissible at a fresh acceptor). *)

val receive_poll :
  t -> ballot:int -> [ `Promise of (Site_id.t * (int * bool)) list | `Stale ]
(** Phase 1a for all instances at once.  If [ballot >= promised], raise
    the promise and return the accepted (ballot, prepared) value of every
    non-free instance; instances absent from the list are free.
    Otherwise [`Stale]. *)

val receive_vote :
  t -> instance:Site_id.t -> ballot:int -> prepared:bool -> [ `Accepted | `Stale ]
(** Phase 2a.  If [ballot >= promised], record the value for [instance]
    (accepting at [b] implies promising [b]) and answer [`Accepted];
    otherwise [`Stale]. *)
