(** Paxos Commit (Gray & Lamport, "Consensus on Transaction Commit").

    One Paxos consensus instance per participant decides that
    participant's prepared/aborted vote; the transaction commits iff
    every instance chooses Prepared.  2F+1 acceptors are co-located on
    the logical sites 1..min(2F+1, n) (a message to the local acceptor
    is a function call, not a network send).  The logical master (site 1)
    leads ballot 0; any participant whose escalation timer fires can
    replace the leader by polling the acceptors at a higher ballot it
    owns, so a coordinator crash or cut never blocks the protocol as
    long as a majority of acceptors stays reachable.

    At F=0 there is a single acceptor, co-located on the master: the
    message pattern, timing, and decisions collapse exactly to
    two-phase commit — and so does the blocking behaviour. *)

module type RESILIENCE = sig
  val f : int
  (** Number of acceptor failures to tolerate; 2F+1 acceptor sites. *)
end

module Make (_ : RESILIENCE) : Site.S

val protocol : Site.packed
(** F = 1 (three acceptors on sites 1..3), registered as ["paxos"]. *)

val protocol_f0 : Site.packed
(** F = 0 (single acceptor on the master), registered as ["paxos-f0"];
    the fast path that degenerates to 2PC. *)
