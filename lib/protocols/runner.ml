type config = {
  n : int;
  t_unit : Vtime.t;
  mode : Network.mode;
  partition : Partition.t;
  delay : Delay.t;
  seed : int64;
  votes : (Site_id.t * bool) list;
  crashes : (Site_id.t * Vtime.t) list;
  start_at : Vtime.t;
  horizon : Vtime.t;
  trace_enabled : bool;
}

let default_config ?(n = 3) ?(t_unit = Vtime.of_int 1000) () =
  {
    n;
    t_unit;
    mode = Network.Optimistic;
    partition = Partition.none;
    delay = Delay.uniform ~t_max:t_unit;
    seed = 1L;
    votes = [];
    crashes = [];
    start_at = Vtime.zero;
    horizon = Vtime.of_int (50 * Vtime.to_int t_unit);
    trace_enabled = true;
  }

type site_result = {
  site : Site_id.t;
  decision : Types.decision option;
  decided_at : Vtime.t option;
  final_state : string;
  reasons : string list;
  crashed : bool;
}

type result = {
  protocol_name : string;
  config : config;
  sites : site_result array;
  net_stats : Network.stats;
  trace : Trace.t;
  finished_at : Vtime.t;
  events_run : int;
}

let vote_of config site =
  match List.assoc_opt site config.votes with Some v -> v | None -> true

(* Per-domain reusable state for sweeps: one engine whose heap array
   survives (reset, not reallocated) across runs.  The trace is NOT
   part of the scratch — each run gets a fresh [Trace.t] (free when
   disabled) so [result.trace] never aliases a later run's data. *)
type scratch = { scratch_engine : Engine.t }

let make_scratch () =
  { scratch_engine = Engine.create ~trace:(Trace.create ~enabled:false ()) () }

let run ?tap ?(obs = Obs.disabled) ?scratch (module P : Site.S) config =
  if config.n < 2 then invalid_arg "Runner.run: need at least two sites";
  let trace = Trace.create ~enabled:config.trace_enabled () in
  let engine =
    match scratch with
    | Some s ->
        Engine.reset ~trace s.scratch_engine;
        s.scratch_engine
    | None -> Engine.create ~trace ()
  in
  let net =
    Network.create ~engine ~n:config.n ~t_max:config.t_unit ~mode:config.mode
      ~partition:config.partition ~delay:config.delay ~seed:config.seed
      ~pp_payload:Types.pp_msg ~payload_codec:Types.msg_codec ~obs
      ~obs_tid:(fun _ -> 1)  (* the single transaction *)
      ()
  in
  (match tap with Some tap -> Network.set_tap net tap | None -> ());
  let decisions = Array.make config.n None in
  let decided_at = Array.make config.n None in
  let reasons = Array.make config.n [] in
  let make_site id =
    let index = Site_id.to_int id - 1 in
    let ctx =
      Ctx.make ~engine ~n:config.n ~t_unit:config.t_unit ~self:id ~trans_id:1
        ~send:(fun dst msg -> Network.send net ~src:id ~dst msg)
        ~on_decide:(fun d ->
          decisions.(index) <- Some d;
          decided_at.(index) <- Some (Engine.now engine))
        ~on_reason:(fun r -> reasons.(index) <- r :: reasons.(index))
        ~obs ()
    in
    let role =
      if Site_id.is_master id then Site.Master_role
      else Site.Slave_role { vote_yes = vote_of config id }
    in
    P.create ctx role
  in
  let sites = Array.init config.n (fun i -> make_site (Site_id.of_int (i + 1))) in
  Network.set_handler net (fun id delivery ->
      P.on_delivery sites.(Site_id.to_int id - 1) delivery);
  List.iter
    (fun (site, at) ->
      ignore
        (Engine.schedule_at engine ~at ~label:(Label.Static "crash") (fun () ->
             Network.crash net site)))
    config.crashes;
  ignore
    (Engine.schedule_at engine ~at:config.start_at
       ~label:(Label.Static "request") (fun () ->
         P.begin_transaction sites.(0)));
  Engine.run ~until:config.horizon engine;
  Obs.close_open_spans obs ~at:(Engine.now engine);
  let site_results =
    Array.init config.n (fun i ->
        let site = Site_id.of_int (i + 1) in
        {
          site;
          decision = decisions.(i);
          decided_at = decided_at.(i);
          final_state = P.state_name sites.(i);
          reasons = List.rev reasons.(i);
          crashed = not (Network.alive net site);
        })
  in
  {
    protocol_name = P.name;
    config;
    sites = site_results;
    net_stats = Network.stats net;
    trace;
    finished_at = Engine.now engine;
    events_run = Engine.events_run engine;
  }

let site_result result site = result.sites.(Site_id.to_int site - 1)

let decisions result =
  Array.to_list (Array.map (fun s -> s.decision) result.sites)

let pp_result fmt result =
  Format.fprintf fmt "%s (n=%d, %a):@." result.protocol_name result.config.n
    Partition.pp result.config.partition;
  Array.iter
    (fun s ->
      Format.fprintf fmt "  %-7s %-18s %s%s@."
        (Format.asprintf "%a" Site_id.pp s.site)
        (match (s.decision, s.crashed) with
        | _, true -> "CRASHED"
        | Some d, false ->
            Format.asprintf "%a@%s" Types.pp_decision d
              (match s.decided_at with
              | Some t -> Format.asprintf "%a" Vtime.pp t
              | None -> "?")
        | None, false -> "BLOCKED")
        s.final_state
        (match s.reasons with
        | [] -> ""
        | rs -> " [" ^ String.concat "; " rs ^ "]"))
    result.sites
