let name = "3pc"

let blocking_by_design = true

let tmpl_ud_dropped =
  Ctx.msg_template ~prefix:"UD("
    ~suffix:") ignored (plain 3pc has no UD transitions)"

type master_state =
  | M_initial
  | M_wait of { yes : Site_id.Set.t }  (** w1 *)
  | M_prepared of { acks : Site_id.Set.t }  (** p1 *)
  | M_committed
  | M_aborted

type slave_state = S_initial | S_wait | S_prepared | S_committed | S_aborted

type machine =
  | Master of master_state
  | Slave of { vote_yes : bool; state : slave_state }

type t = { ctx : Ctx.t; mutable machine : machine }

let create ctx role =
  match role with
  | Site.Master_role -> { ctx; machine = Master M_initial }
  | Site.Slave_role { vote_yes } ->
      { ctx; machine = Slave { vote_yes; state = S_initial } }

let state_name t =
  match t.machine with
  | Master M_initial -> "q1"
  | Master (M_wait _) -> "w1"
  | Master (M_prepared _) -> "p1"
  | Master M_committed -> "c1"
  | Master M_aborted -> "a1"
  | Slave { state = S_initial; _ } -> "q"
  | Slave { state = S_wait; _ } -> "w"
  | Slave { state = S_prepared; _ } -> "p"
  | Slave { state = S_committed; _ } -> "c"
  | Slave { state = S_aborted; _ } -> "a"

let begin_transaction t =
  match t.machine with
  | Master M_initial ->
      Ctx.broadcast_slaves t.ctx Types.Xact;
      t.machine <- Master (M_wait { yes = Site_id.Set.empty })
  | Master (M_wait _ | M_prepared _ | M_committed | M_aborted) | Slave _ -> ()

let on_master t state (envelope : Types.msg Network.envelope) =
  match (state, envelope.payload) with
  | M_wait { yes }, Types.Yes ->
      let yes = Site_id.Set.add envelope.src yes in
      if Site_id.Set.cardinal yes = Ctx.n t.ctx - 1 then begin
        Ctx.broadcast_slaves t.ctx Types.Prepare;
        t.machine <- Master (M_prepared { acks = Site_id.Set.empty })
      end
      else t.machine <- Master (M_wait { yes })
  | M_wait _, Types.No ->
      Ctx.broadcast_slaves t.ctx Types.Abort_cmd;
      t.machine <- Master M_aborted;
      Ctx.decide t.ctx Types.Abort
  | M_prepared { acks }, Types.Ack ->
      let acks = Site_id.Set.add envelope.src acks in
      if Site_id.Set.cardinal acks = Ctx.n t.ctx - 1 then begin
        Ctx.broadcast_slaves t.ctx Types.Commit_cmd;
        t.machine <- Master M_committed;
        Ctx.decide t.ctx Types.Commit
      end
      else t.machine <- Master (M_prepared { acks })
  | (M_initial | M_committed | M_aborted), _
  | M_wait _, _
  | M_prepared _, _ ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_slave t ~vote_yes state (envelope : Types.msg Network.envelope) =
  let set state' = t.machine <- Slave { vote_yes; state = state' } in
  match (state, envelope.payload) with
  | S_initial, Types.Xact ->
      if vote_yes then begin
        Ctx.send_master t.ctx Types.Yes;
        set S_wait
      end
      else begin
        Ctx.send_master t.ctx Types.No;
        set S_aborted;
        Ctx.decide t.ctx Types.Abort ~reason:"voted no"
      end
  | S_wait, Types.Prepare ->
      Ctx.send_master t.ctx Types.Ack;
      set S_prepared
  | (S_initial | S_wait | S_prepared), Types.Abort_cmd ->
      set S_aborted;
      Ctx.decide t.ctx Types.Abort
  | S_prepared, Types.Commit_cmd ->
      set S_committed;
      Ctx.decide t.ctx Types.Commit
  | (S_committed | S_aborted), _
  | S_initial, _
  | S_wait, _
  | S_prepared, _ ->
      Ctx.log_ignoring t.ctx envelope.payload (state_name t)

let on_delivery t = function
  | Network.Undeliverable envelope ->
      Ctx.log_msg t.ctx tmpl_ud_dropped envelope.payload
  | Network.Msg envelope -> (
      match t.machine with
      | Master state -> on_master t state envelope
      | Slave { vote_yes; state } -> on_slave t ~vote_yes state envelope)
