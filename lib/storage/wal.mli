(** Write-ahead log records (paper, Section 2).

    The paper's single-site scheme: before committing, a site forces a
    {e commit log} record containing the transaction's update
    information to stable storage; updates are then applied
    idempotently, so replaying them after a crash is harmless.  We add
    the [Prepared] record needed by three-phase participants (reaching
    state p must survive a restart) and an [End] record marking that all
    updates reached the database, which bounds redo work.

    Records have a trivial line-oriented wire format ([encode]/[decode])
    so the log can be dumped, diffed and property-tested. *)

type update = { key : string; value : string }

type record =
  | Begin of { tid : int }
  | Stage of { tid : int; updates : update list }
      (** the update information staged so far, forced alongside
          [Prepared] so an in-doubt participant that crashes can still
          apply the transaction if the group's outcome turns out to be
          commit (the staged buffer itself is volatile and lost) *)
  | Prepared of { tid : int }
  | Commit_log of { tid : int; updates : update list }
      (** the decisive record: once on stable storage, the transaction
          commits at this site *)
  | Abort_log of { tid : int }
  | End of { tid : int }  (** all updates applied to the database *)

val tid_of : record -> int

val encode : record -> string
(** Single line, no ['\n']. *)

val decode : string -> (record, string) result

val pp : Format.formatter -> record -> unit

val equal : record -> record -> bool
