(** A small versioned key-value store — the "database" each site keeps.

    Writes are absolute (idempotent): applying the same update twice is
    the same as once, which is the property the paper's redo recovery
    relies on.  The store counts applications so tests can verify that
    recovery replays are harmless. *)

type t

val create : unit -> t

val get : t -> string -> string option

val set : t -> key:string -> value:string -> unit

val remove : t -> string -> unit

val keys : t -> string list
(** Sorted. *)

val cardinal : t -> int

val applications : t -> int
(** Total number of [set]/[remove] operations ever applied. *)

val snapshot : t -> (string * string) list
(** Sorted association list. *)

val restore : (string * string) list -> t

val equal_contents : t -> t -> bool

val pp : Format.formatter -> t -> unit
