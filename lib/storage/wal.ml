type update = { key : string; value : string }

type record =
  | Begin of { tid : int }
  | Stage of { tid : int; updates : update list }
  | Prepared of { tid : int }
  | Commit_log of { tid : int; updates : update list }
  | Abort_log of { tid : int }
  | End of { tid : int }

let tid_of = function
  | Begin { tid }
  | Stage { tid; _ }
  | Prepared { tid }
  | Commit_log { tid; _ }
  | Abort_log { tid }
  | End { tid } ->
      tid

(* Percent-escape the characters the wire format uses as structure. *)
let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '=' | ';' | ' ' | '\n' ->
          Buffer.add_string buffer (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let unescape s =
  let buffer = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buffer)
    else if s.[i] = '%' then
      if i + 2 >= n then Error "truncated escape"
      else
        match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
        | Some code ->
            Buffer.add_char buffer (Char.chr code);
            go (i + 3)
        | None -> Error "bad escape"
    else begin
      Buffer.add_char buffer s.[i];
      go (i + 1)
    end
  in
  go 0

let encode_updates updates =
  String.concat ";"
    (List.map (fun { key; value } -> escape key ^ "=" ^ escape value) updates)

let encode = function
  | Begin { tid } -> Printf.sprintf "begin %d" tid
  | Prepared { tid } -> Printf.sprintf "prepared %d" tid
  | Abort_log { tid } -> Printf.sprintf "abort %d" tid
  | End { tid } -> Printf.sprintf "end %d" tid
  | Stage { tid; updates } ->
      Printf.sprintf "stage %d %s" tid (encode_updates updates)
  | Commit_log { tid; updates } ->
      Printf.sprintf "commit %d %s" tid (encode_updates updates)

let decode_update field =
  match String.index_opt field '=' with
  | None -> Error (Printf.sprintf "update %S has no '='" field)
  | Some i -> (
      let raw_key = String.sub field 0 i in
      let raw_value = String.sub field (i + 1) (String.length field - i - 1) in
      match (unescape raw_key, unescape raw_value) with
      | Ok key, Ok value -> Ok { key; value }
      | Error e, _ | _, Error e -> Error e)

let decode line =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ' ' line with
  | [ "begin"; tid ] -> (
      match int_of_string_opt tid with
      | Some tid -> Ok (Begin { tid })
      | None -> fail "bad tid %S" tid)
  | [ "prepared"; tid ] -> (
      match int_of_string_opt tid with
      | Some tid -> Ok (Prepared { tid })
      | None -> fail "bad tid %S" tid)
  | [ "abort"; tid ] -> (
      match int_of_string_opt tid with
      | Some tid -> Ok (Abort_log { tid })
      | None -> fail "bad tid %S" tid)
  | [ "end"; tid ] -> (
      match int_of_string_opt tid with
      | Some tid -> Ok (End { tid })
      | None -> fail "bad tid %S" tid)
  | [ "commit"; tid ] | [ "commit"; tid; "" ] -> (
      match int_of_string_opt tid with
      | Some tid -> Ok (Commit_log { tid; updates = [] })
      | None -> fail "bad tid %S" tid)
  | [ "stage"; tid ] | [ "stage"; tid; "" ] -> (
      match int_of_string_opt tid with
      | Some tid -> Ok (Stage { tid; updates = [] })
      | None -> fail "bad tid %S" tid)
  | ([ "commit"; tid; updates ] | [ "stage"; tid; updates ]) as fields -> (
      let mk tid parsed =
        match fields with
        | "stage" :: _ -> Stage { tid; updates = parsed }
        | _ -> Commit_log { tid; updates = parsed }
      in
      match int_of_string_opt tid with
      | None -> fail "bad tid %S" tid
      | Some tid ->
          let fields = String.split_on_char ';' updates in
          let rec parse acc = function
            | [] -> Ok (mk tid (List.rev acc))
            | f :: rest -> (
                match decode_update f with
                | Ok u -> parse (u :: acc) rest
                | Error e -> Error e)
          in
          parse [] fields)
  | _ -> fail "unrecognised record %S" line

let pp fmt r = Format.pp_print_string fmt (encode r)

let equal a b = a = b
