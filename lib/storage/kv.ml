module String_map = Map.Make (String)

type t = {
  mutable data : string String_map.t;
  mutable applications : int;
}

let create () = { data = String_map.empty; applications = 0 }

let get t key = String_map.find_opt key t.data

let set t ~key ~value =
  t.data <- String_map.add key value t.data;
  t.applications <- t.applications + 1

let remove t key =
  t.data <- String_map.remove key t.data;
  t.applications <- t.applications + 1

let keys t = List.map fst (String_map.bindings t.data)

let cardinal t = String_map.cardinal t.data

let applications t = t.applications

let snapshot t = String_map.bindings t.data

let restore bindings =
  {
    data = List.fold_left (fun m (k, v) -> String_map.add k v m) String_map.empty bindings;
    applications = 0;
  }

let equal_contents a b = String_map.equal String.equal a.data b.data

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt (k, v) -> Format.fprintf fmt "%s=%s" k v))
    (snapshot t)
