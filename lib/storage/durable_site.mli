(** A single site's durable transaction state — the paper's Section 2
    scheme, executable.

    Stable storage holds the write-ahead log and the database; staged
    updates (the "partially executed transaction") are volatile.  The
    commit sequence is: force the {!Wal.Commit_log} record (with the
    update information), then apply the updates to the database, then
    write {!Wal.End}.  A crash at any point is recovered by {!recover}:

    - transactions with a commit log but no end record are {e redone} —
      safe because updates are idempotent;
    - transactions that reached [Prepared] but have no decision are
      reported {e in doubt} (a 3PC participant must ask the termination
      protocol, not decide locally);
    - transactions with only a [Begin] are aborted, exactly as the paper
      prescribes ("immediately upon recovery the site will abort"). *)

type t

type recovery_report = {
  redone : int list;  (** committed transactions whose updates were replayed *)
  in_doubt : int list;  (** prepared, undecided — escalate to termination *)
  aborted : int list;  (** begun but never prepared/committed *)
}

val create : unit -> t

val begin_transaction : t -> tid:int -> unit
(** @raise Invalid_argument if the tid was already begun. *)

val stage : t -> tid:int -> Wal.update list -> unit
(** Buffer updates in volatile memory (repeatable; replaces earlier
    staging for the tid). *)

val staged : t -> tid:int -> Wal.update list

val prepare : t -> tid:int -> unit
(** Force a [Prepared] record (3PC state p must survive restarts). *)

val commit : t -> ?crash_after:int -> tid:int -> unit -> unit
(** Force the commit log, then apply the staged updates and write
    [End].  [crash_after n] injects a crash after [n] updates have been
    applied: the site loses volatile state and no [End] is written —
    the recovery tests' bread and butter. *)

val abort : t -> tid:int -> unit

val crash : t -> unit
(** Lose all volatile state (staged updates).  Stable WAL and database
    survive. *)

val recover : t -> recovery_report
(** Redo incomplete committed transactions (idempotently), abort
    unprepared ones, report prepared-undecided ones. *)

val read : t -> string -> string option

val database : t -> Kv.t

val wal_records : t -> Wal.record list
(** In append order. *)

val status :
  t -> tid:int -> [ `Unknown | `Active | `Prepared | `Committed | `Aborted | `Ended ]

val pp : Format.formatter -> t -> unit
