(** A single site's durable transaction state — the paper's Section 2
    scheme, executable.

    Stable storage holds the write-ahead log and the database; staged
    updates (the "partially executed transaction") are volatile.  The
    commit sequence is: force the {!Wal.Commit_log} record (with the
    update information), then apply the updates to the database, then
    write {!Wal.End}.  A crash at any point is recovered by {!recover}:

    - transactions with a commit log but no end record are {e redone} —
      safe because updates are idempotent;
    - transactions that reached [Prepared] but have no decision are
      reported {e in doubt} (a 3PC participant must ask the termination
      protocol, not decide locally);
    - transactions with only a [Begin] are aborted, exactly as the paper
      prescribes ("immediately upon recovery the site will abort"). *)

type t

type recovery_report = {
  redone : int list;  (** committed transactions whose updates were replayed *)
  in_doubt : int list;
      (** prepared (or caller-declared undecided) — escalate to the
          termination protocol rather than decide locally *)
  aborted : int list;  (** begun but never prepared/committed *)
}

val create : unit -> t

val begin_transaction : t -> tid:int -> unit
(** @raise Invalid_argument if the tid was already begun. *)

val stage : t -> tid:int -> Wal.update list -> unit
(** Buffer updates in volatile memory (repeatable; replaces earlier
    staging for the tid).  Staging after [prepare] additionally forces
    a {!Wal.Stage} record: an in-doubt site must be able to commit
    after a restart, and volatile staging would not survive one. *)

val staged : t -> tid:int -> Wal.update list

val prepare : t -> tid:int -> unit
(** Force the staged update information (as a {!Wal.Stage} record, when
    non-empty) and then a [Prepared] record: 3PC state p must survive
    restarts, and so must the updates a post-restart commit would
    apply. *)

val commit : t -> ?crash_after:int -> tid:int -> unit -> unit
(** Force the commit log, then apply the staged updates and write
    [End].  [crash_after n] injects a crash after [n] updates have been
    applied: the site loses volatile state and no [End] is written —
    the recovery tests' bread and butter. *)

val abort : t -> tid:int -> unit

val crash : t -> unit
(** Lose all volatile state (staged updates).  Stable WAL and database
    survive. *)

val recover : ?undecided:int list -> t -> recovery_report
(** Redo incomplete committed transactions (idempotently), abort
    unprepared ones, report prepared-undecided ones.  For each in-doubt
    transaction the staged updates are restored from its forced
    {!Wal.Stage} record, so a subsequent [commit] applies them.
    Recovering an already-recovered site is harmless: the database is
    unchanged and the report reaches a fixpoint after the first call.

    [undecided] lists active tids whose fate the caller knows is still
    open group-wide (the termination protocol can commit a transaction
    whose crashed participant had voted yes but not yet forced its
    prepare record).  Those are kept active and reported in doubt
    instead of being aborted unilaterally; the caller adopts the group's
    decision, re-staging updates as needed.  Default: [[]], the paper's
    unilateral-abort rule. *)

val read : t -> string -> string option

val database : t -> Kv.t

val wal_records : t -> Wal.record list
(** In append order. *)

val status :
  t -> tid:int -> [ `Unknown | `Active | `Prepared | `Committed | `Aborted | `Ended ]
(** O(1): backed by a per-tid last-record index maintained on append,
    not a scan of the WAL. *)

val pp : Format.formatter -> t -> unit
