module Int_map = Map.Make (Int)

type t = {
  mutable wal : Wal.record list;  (* reversed; stable *)
  db : Kv.t;  (* stable *)
  mutable volatile_staged : Wal.update list Int_map.t;
  index :
    (int, [ `Active | `Prepared | `Committed | `Aborted | `Ended ]) Hashtbl.t;
      (* last status-bearing record per tid, kept in lockstep with
         [wal]; makes [status] O(1) on long-lived sites *)
}

type recovery_report = {
  redone : int list;
  in_doubt : int list;
  aborted : int list;
}

let create () =
  {
    wal = [];
    db = Kv.create ();
    volatile_staged = Int_map.empty;
    index = Hashtbl.create 64;
  }

let append t record =
  t.wal <- record :: t.wal;
  match record with
  | Wal.Stage _ -> ()  (* staging does not change the tid's status *)
  | Wal.Begin { tid } -> Hashtbl.replace t.index tid `Active
  | Wal.Prepared { tid } -> Hashtbl.replace t.index tid `Prepared
  | Wal.Commit_log { tid; _ } -> Hashtbl.replace t.index tid `Committed
  | Wal.Abort_log { tid } -> Hashtbl.replace t.index tid `Aborted
  | Wal.End { tid } -> Hashtbl.replace t.index tid `Ended

let wal_records t = List.rev t.wal

let status t ~tid =
  match Hashtbl.find_opt t.index tid with
  | Some s -> (s :> [ `Unknown | `Active | `Prepared | `Committed | `Aborted | `Ended ])
  | None -> `Unknown

let begin_transaction t ~tid =
  match status t ~tid with
  | `Unknown -> append t (Wal.Begin { tid })
  | `Active | `Prepared | `Committed | `Aborted | `Ended ->
      invalid_arg (Printf.sprintf "Durable_site: tid %d already known" tid)

let require t ~tid expected =
  let got = status t ~tid in
  if not (List.mem got expected) then
    invalid_arg
      (Printf.sprintf "Durable_site: tid %d in unexpected state" tid)

let staged t ~tid =
  match Int_map.find_opt tid t.volatile_staged with
  | Some updates -> updates
  | None -> []

let stage t ~tid updates =
  require t ~tid [ `Active; `Prepared ];
  t.volatile_staged <- Int_map.add tid updates t.volatile_staged;
  (* Once prepared the staged buffer must survive a crash: the group may
     still commit while this site is in doubt, and the volatile copy is
     exactly what a crash destroys. *)
  if status t ~tid = `Prepared && updates <> [] then
    append t (Wal.Stage { tid; updates })

let prepare t ~tid =
  require t ~tid [ `Active ];
  (match staged t ~tid with
  | [] -> ()
  | updates -> append t (Wal.Stage { tid; updates }));
  append t (Wal.Prepared { tid })

let apply_updates t updates = List.iter (fun (u : Wal.update) -> Kv.set t.db ~key:u.key ~value:u.value) updates

let crash t = t.volatile_staged <- Int_map.empty

let commit t ?crash_after ~tid () =
  require t ~tid [ `Active; `Prepared ];
  let updates = staged t ~tid in
  append t (Wal.Commit_log { tid; updates });
  (match crash_after with
  | None ->
      apply_updates t updates;
      append t (Wal.End { tid });
      t.volatile_staged <- Int_map.remove tid t.volatile_staged
  | Some n ->
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | u :: rest -> u :: take (k - 1) rest
      in
      apply_updates t (take n updates);
      crash t)

let abort t ~tid =
  require t ~tid [ `Active; `Prepared ];
  append t (Wal.Abort_log { tid });
  t.volatile_staged <- Int_map.remove tid t.volatile_staged

let recover ?(undecided = []) t =
  crash t;
  let records = wal_records t in
  let tids =
    List.fold_left
      (fun acc record ->
        let tid = Wal.tid_of record in
        if List.mem tid acc then acc else tid :: acc)
      [] records
    |> List.rev
  in
  let redone = ref [] and in_doubt = ref [] and aborted = ref [] in
  List.iter
    (fun tid ->
      match status t ~tid with
      | `Ended | `Aborted | `Unknown -> ()
      | `Committed ->
          (* Redo every update from the commit log; idempotence makes
             replaying already-applied ones harmless. *)
          let updates =
            List.fold_left
              (fun acc record ->
                match record with
                | Wal.Commit_log { tid = t'; updates } when t' = tid ->
                    Some updates
                | Wal.Commit_log _ | Wal.Stage _ | Wal.Begin _
                | Wal.Prepared _ | Wal.Abort_log _ | Wal.End _ ->
                    acc)
              None records
          in
          apply_updates t (Option.value updates ~default:[]);
          append t (Wal.End { tid });
          redone := tid :: !redone
      | `Prepared ->
          (* Re-stage the update information from the forced Stage
             record so a later group-commit can still apply it. *)
          let staged_updates =
            List.fold_left
              (fun acc record ->
                match record with
                | Wal.Stage { tid = t'; updates } when t' = tid ->
                    Some updates
                | _ -> acc)
              None records
          in
          (match staged_updates with
          | Some updates ->
              t.volatile_staged <- Int_map.add tid updates t.volatile_staged
          | None -> ());
          in_doubt := tid :: !in_doubt
      | `Active ->
          (* The paper's rule aborts transactions that never reached the
             prepared state — but a caller that knows the group has not
             yet decided (termination may still commit while this site was
             between its vote and the forced prepare) can keep them open
             and report them in doubt instead. *)
          if List.mem tid undecided then in_doubt := tid :: !in_doubt
          else begin
            append t (Wal.Abort_log { tid });
            aborted := tid :: !aborted
          end)
    tids;
  {
    redone = List.rev !redone;
    in_doubt = List.rev !in_doubt;
    aborted = List.rev !aborted;
  }

let read t key = Kv.get t.db key

let database t = t.db

let pp fmt t =
  Format.fprintf fmt "wal:@.";
  List.iter (fun r -> Format.fprintf fmt "  %a@." Wal.pp r) (wal_records t);
  Format.fprintf fmt "db: %a@." Kv.pp t.db
