module Four_phase_termination = struct
  let name = "4pc-termination"

  let blocking_by_design = false

  type master_state =
    | M_initial  (** q1 *)
    | M_wait of { yes : Site_id.Set.t }  (** w1, timer 2T *)
    | M_buffer of { pre_acks : Site_id.Set.t }  (** x1, timer 2T *)
    | M_prepared of { acks : Site_id.Set.t }  (** p1, timer 2T *)
    | M_collect of { ud : Site_id.Set.t; pb : Site_id.Set.t }
        (** p1 after the first UD(prepare); 5T window *)
    | M_committed
    | M_aborted

  type slave_state =
    | S_initial  (** q *)
    | S_wait  (** w, timer 3T *)
    | S_buffer  (** x, timer 3T *)
    | S_wait2  (** w or x after a timeout; 6T window *)
    | S_prepared  (** p, timer 3T *)
    | S_probing
    | S_committed
    | S_aborted

  type machine =
    | Master of master_state
    | Slave of { vote_yes : bool; state : slave_state }

  type t = { ctx : Ctx.t; timer : Ctx.Timer_slot.slot; mutable machine : machine }

  let create ctx role =
    let timer = Ctx.Timer_slot.create () in
    match role with
    | Site.Master_role -> { ctx; timer; machine = Master M_initial }
    | Site.Slave_role { vote_yes } ->
        { ctx; timer; machine = Slave { vote_yes; state = S_initial } }

  let state_name t =
    match t.machine with
    | Master M_initial -> "q1"
    | Master (M_wait _) -> "w1"
    | Master (M_buffer _) -> "x1"
    | Master (M_prepared _) -> "p1"
    | Master (M_collect _) -> "p1/collect"
    | Master M_committed -> "c1"
    | Master M_aborted -> "a1"
    | Slave { state = S_initial; _ } -> "q"
    | Slave { state = S_wait; _ } -> "w"
    | Slave { state = S_buffer; _ } -> "x"
    | Slave { state = S_wait2; _ } -> "w/waiting"
    | Slave { state = S_prepared; _ } -> "p"
    | Slave { state = S_probing; _ } -> "p/probing"
    | Slave { state = S_committed; _ } -> "c"
    | Slave { state = S_aborted; _ } -> "a"

  (* ---- master ---------------------------------------------------------- *)

  let master_decide t decision ~reason =
    Ctx.Timer_slot.cancel t.timer;
    t.machine <-
      Master
        (match decision with Types.Commit -> M_committed | Types.Abort -> M_aborted);
    Ctx.broadcast_slaves t.ctx
      (match decision with
      | Types.Commit -> Types.Commit_cmd
      | Types.Abort -> Types.Abort_cmd);
    Ctx.decide t.ctx decision ~reason

  let arm_master_timer t ~label f =
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t:Timing.master_timeout_mult ~label f

  let begin_transaction t =
    match t.machine with
    | Master M_initial ->
        Ctx.broadcast_slaves t.ctx Types.Xact;
        t.machine <- Master (M_wait { yes = Site_id.Set.empty });
        arm_master_timer t ~label:(Label.Static "w1-timeout") (fun () ->
            match t.machine with
            | Master (M_wait _) ->
                (* pre-m: no prepare exists, aborting is safe *)
                master_decide t Types.Abort ~reason:"t10-w1-timeout"
            | Master _ | Slave _ -> ())
    | Master _ | Slave _ -> ()

  let close_collect_window t ~ud ~pb =
    let slaves = Site_id.Set.of_list (Ctx.slaves t.ctx) in
    let reached = Site_id.Set.diff slaves ud in
    if Site_id.Set.equal reached pb then
      master_decide t Types.Abort ~reason:"t10-collect-abort"
    else master_decide t Types.Commit ~reason:"t10-collect-commit"

  let enter_collect t ~ud ~pb =
    t.machine <- Master (M_collect { ud; pb });
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t:Timing.collect_window_mult
      ~label:(Label.Static "collect-window") (fun () ->
        match t.machine with
        | Master (M_collect { ud; pb }) -> close_collect_window t ~ud ~pb
        | Master _ | Slave _ -> ())

  let on_master_msg t state (envelope : Types.msg Network.envelope) =
    let n_slaves = Ctx.n t.ctx - 1 in
    match (state, envelope.payload) with
    | M_wait { yes }, Types.Yes ->
        let yes = Site_id.Set.add envelope.src yes in
        if Site_id.Set.cardinal yes = n_slaves then begin
          Ctx.broadcast_slaves t.ctx Types.Pre_prepare;
          t.machine <- Master (M_buffer { pre_acks = Site_id.Set.empty });
          arm_master_timer t ~label:(Label.Static "x1-timeout") (fun () ->
              match t.machine with
              | Master (M_buffer _) ->
                  (* still pre-m: abort everyone *)
                  master_decide t Types.Abort ~reason:"t10-x1-timeout"
              | Master _ | Slave _ -> ())
        end
        else t.machine <- Master (M_wait { yes })
    | M_wait _, Types.No -> master_decide t Types.Abort ~reason:"t10-no-vote"
    | M_buffer { pre_acks }, Types.Pre_ack ->
        let pre_acks = Site_id.Set.add envelope.src pre_acks in
        if Site_id.Set.cardinal pre_acks = n_slaves then begin
          Ctx.broadcast_slaves t.ctx Types.Prepare;
          t.machine <- Master (M_prepared { acks = Site_id.Set.empty });
          arm_master_timer t ~label:(Label.Static "p1-timeout") (fun () ->
              match t.machine with
              | Master (M_prepared _) ->
                  (* m was delivered everywhere: idea 3 commits *)
                  master_decide t Types.Commit ~reason:"t10-p1-timeout"
              | Master _ | Slave _ -> ())
        end
        else t.machine <- Master (M_buffer { pre_acks })
    | M_prepared { acks }, Types.Ack ->
        let acks = Site_id.Set.add envelope.src acks in
        if Site_id.Set.cardinal acks = n_slaves then
          master_decide t Types.Commit ~reason:"t10-all-acks"
        else t.machine <- Master (M_prepared { acks })
    | M_collect { ud; pb }, Types.Probe { slave; _ } ->
        t.machine <- Master (M_collect { ud; pb = Site_id.Set.add slave pb })
    | M_prepared _, Types.Probe _ ->
        Ctx.log_text t.ctx "probe ignored in p1 (no partition detected)"
    | (M_initial | M_committed | M_aborted), _
    | M_wait _, _
    | M_buffer _, _
    | M_prepared _, _
    | M_collect _, _ ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_master_ud t state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | M_wait _, Types.Xact ->
        master_decide t Types.Abort ~reason:"t10-ud-xact"
    | M_buffer _, Types.Pre_prepare ->
        (* pre-m traffic bounced: abort is still safe *)
        master_decide t Types.Abort ~reason:"t10-ud-pre-prepare"
    | M_prepared _, Types.Prepare ->
        enter_collect t
          ~ud:(Site_id.Set.singleton envelope.dst)
          ~pb:Site_id.Set.empty
    | M_collect { ud; pb }, Types.Prepare ->
        t.machine <- Master (M_collect { ud = Site_id.Set.add envelope.dst ud; pb })
    | ( ( M_initial | M_wait _ | M_buffer _ | M_prepared _ | M_collect _
        | M_committed | M_aborted ),
        _ ) ->
        Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

  (* ---- slaves ----------------------------------------------------------- *)

  let slave_decide t ~vote_yes decision ~reason ~tell =
    Ctx.Timer_slot.cancel t.timer;
    t.machine <-
      Slave
        {
          vote_yes;
          state =
            (match decision with
            | Types.Commit -> S_committed
            | Types.Abort -> S_aborted);
        };
    if tell then
      Ctx.broadcast_all t.ctx
        (match decision with
        | Types.Commit -> Types.Commit_cmd
        | Types.Abort -> Types.Abort_cmd);
    Ctx.decide t.ctx decision ~reason

  let set_slave t ~vote_yes state = t.machine <- Slave { vote_yes; state }

  let arm_slave_timer t ~mult_t ~label ~expected f =
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t ~label (fun () ->
        match t.machine with
        | Slave { state; vote_yes } when state = expected -> f ~vote_yes
        | Slave _ | Master _ -> ())

  let enter_wait2 t ~vote_yes =
    set_slave t ~vote_yes S_wait2;
    arm_slave_timer t ~mult_t:Timing.wait_window_mult ~label:(Label.Static "w2-window")
      ~expected:S_wait2 (fun ~vote_yes ->
        slave_decide t ~vote_yes Types.Abort ~reason:"t10-w2-expired"
          ~tell:false)

  let enter_probing t ~vote_yes =
    Ctx.send_master t.ctx
      (Types.Probe { trans_id = Ctx.trans_id t.ctx; slave = Ctx.self t.ctx });
    set_slave t ~vote_yes S_probing

  let on_slave_msg t ~vote_yes state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | S_initial, Types.Xact ->
        if vote_yes then begin
          Ctx.send_master t.ctx Types.Yes;
          set_slave t ~vote_yes S_wait;
          arm_slave_timer t ~mult_t:Timing.slave_timeout_mult ~label:(Label.Static "w-timeout")
            ~expected:S_wait (fun ~vote_yes -> enter_wait2 t ~vote_yes)
        end
        else begin
          Ctx.send_master t.ctx Types.No;
          slave_decide t ~vote_yes Types.Abort ~reason:"t10-voted-no"
            ~tell:false
        end
    | S_wait, Types.Pre_prepare ->
        Ctx.send_master t.ctx Types.Pre_ack;
        set_slave t ~vote_yes S_buffer;
        arm_slave_timer t ~mult_t:Timing.slave_timeout_mult ~label:(Label.Static "x-timeout")
          ~expected:S_buffer (fun ~vote_yes -> enter_wait2 t ~vote_yes)
    | S_buffer, Types.Prepare ->
        Ctx.send_master t.ctx Types.Ack;
        set_slave t ~vote_yes S_prepared;
        arm_slave_timer t ~mult_t:Timing.slave_timeout_mult ~label:(Label.Static "p-timeout")
          ~expected:S_prepared (fun ~vote_yes -> enter_probing t ~vote_yes)
    | ( (S_initial | S_wait | S_buffer | S_wait2 | S_prepared | S_probing),
        Types.Commit_cmd ) ->
        (* the generalised Fig. 8 acceptance: every noncommittable state
           takes a commit command directly *)
        slave_decide t ~vote_yes Types.Commit ~reason:"t10-commit-cmd"
          ~tell:false
    | ( (S_initial | S_wait | S_buffer | S_wait2 | S_prepared | S_probing),
        Types.Abort_cmd ) ->
        slave_decide t ~vote_yes Types.Abort ~reason:"t10-abort-cmd"
          ~tell:false
    | ( ( S_initial | S_wait | S_buffer | S_wait2 | S_prepared | S_probing
        | S_committed | S_aborted ),
        _ ) ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_slave_ud t ~vote_yes state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | S_wait, Types.Yes ->
        slave_decide t ~vote_yes Types.Abort ~reason:"t10-ud-yes" ~tell:true
    | S_buffer, Types.Pre_ack ->
        (* pre-m: the master cannot assemble all pre-acks, so m will
           never be sent — abort the reachable side *)
        slave_decide t ~vote_yes Types.Abort ~reason:"t10-ud-pre-ack"
          ~tell:true
    | (S_prepared | S_probing), Types.Ack ->
        slave_decide t ~vote_yes Types.Commit ~reason:"t10-ud-ack" ~tell:true
    | S_probing, Types.Probe _ ->
        slave_decide t ~vote_yes Types.Commit ~reason:"t10-ud-probe" ~tell:true
    | ( ( S_initial | S_wait | S_buffer | S_wait2 | S_prepared | S_probing
        | S_committed | S_aborted ),
        _ ) ->
        Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

  let on_delivery t delivery =
    match (t.machine, delivery) with
    | Master state, Network.Msg envelope -> on_master_msg t state envelope
    | Master state, Network.Undeliverable envelope ->
        on_master_ud t state envelope
    | Slave { vote_yes; state }, Network.Msg envelope ->
        on_slave_msg t ~vote_yes state envelope
    | Slave { vote_yes; state }, Network.Undeliverable envelope ->
        on_slave_ud t ~vote_yes state envelope
end
