let master_timeout_mult = 2

let slave_timeout_mult = 3

let collect_window_mult = 5

let wait_window_mult = 6

let probe_window_mult = 5

type case =
  | Case_1
  | Case_2_1
  | Case_2_2_1
  | Case_2_2_2
  | Case_3_1
  | Case_3_2_1
  | Case_3_2_2_1
  | Case_3_2_2_2

let all_cases =
  [
    Case_1;
    Case_2_1;
    Case_2_2_1;
    Case_2_2_2;
    Case_3_1;
    Case_3_2_1;
    Case_3_2_2_1;
    Case_3_2_2_2;
  ]

let case_name = function
  | Case_1 -> "1"
  | Case_2_1 -> "2.1"
  | Case_2_2_1 -> "2.2.1"
  | Case_2_2_2 -> "2.2.2"
  | Case_3_1 -> "3.1"
  | Case_3_2_1 -> "3.2.1"
  | Case_3_2_2_1 -> "3.2.2.1"
  | Case_3_2_2_2 -> "3.2.2.2"

let pp_case fmt c = Format.fprintf fmt "case %s" (case_name c)

let case_bound_mult = function
  | Case_1 -> None
  | Case_2_1 -> Some 1
  | Case_2_2_1 -> Some 4
  | Case_2_2_2 -> Some 5
  | Case_3_1 -> Some 1
  | Case_3_2_1 -> None
  | Case_3_2_2_1 -> Some 4
  | Case_3_2_2_2 -> None
