(** The paper's contribution: the termination protocol that makes
    (modified) three-phase commit resilient to optimistic multisite
    simple network partitioning (Sections 5 and 6).

    The commit-protocol skeleton is the modified 3PC of Fig. 8 (slaves
    accept a commit in state w).  On top of it, the termination actions
    of Section 5.3:

    {b Master} (site 1):
    - w1, timeout 2T: abort, send abort_1..n.
    - w1, UD(xact): abort, send abort_1..n.
    - p1, timeout 2T with no UD(prepare) seen: commit, send commit_1..n
      (every prepare was delivered, so every G2 slave will commit).
    - p1, UD(prepare_i): start a 5T {e collection window}; accumulate
      UD := slaves whose prepare bounced, PB := slaves that probed.  At
      the window's end: if [slaves − UD = PB] then abort all else commit
      all.  (The paper writes [N − UD = PB] with N "the set of sites";
      Lemma 4's proof equates [N − UD] with "the set of all slaves in
      G1", so N must be read as the slave set — see DESIGN.md.)

    {b Slave} i:
    - w, timeout 3T: wait a further 6T for a command; a commit decides
      commit, an abort or the 6T expiry decides abort.
    - w, UD(yes_i): abort and send abort_1..n (the master can never have
      collected all votes).
    - p, UD(ack_i): commit and send commit_1..n (this slave is in G2 and
      holds a prepare: it commits the whole group — "idea 6").
    - p, timeout 3T: send probe(trans_id, i) to the master, then wait:
      UD(probe) means "I am in G2, the master is unreachable" — commit
      and send commit_1..n; a command decides accordingly.  The {e
      static} variant waits indefinitely (valid when partitions never
      heal mid-protocol); the {e transient} variant (Section 6) commits
      after a 5T wait, which is safe because only case 3.2.2.2 — in
      which the master has committed — exceeds 5T.

    Decisions are annotated (see {!Commit_protocols.Runner.site_result}
    reasons) with stable strings of the form ["fact1-case3"] /
    ["fact2-case2"] matching the proof's case analysis, so tests can
    audit that every commit happened through a case FACT 1 / FACT 2
    allows. *)

type variant = Static | Transient

val pp_variant : Format.formatter -> variant -> unit

module type CONFIG = sig
  val variant : variant

  val fig8_w_commit : bool
  (** Whether slaves accept a commit command in state w (the Fig. 8
      modification).  The real protocol requires [true]; [false] exists
      only for the fig8 ablation bench, which shows the inconsistency
      the paper's "fly in the ointment" paragraph predicts. *)

  val collect_window_mult : int
  (** The master's UD/probe collection window, in multiples of T.  The
      paper derives 5 (Fig. 6); smaller values let the window close
      before the last legitimate probe and are provided for the
      window-necessity ablation. *)

  val wait_window_mult : int
  (** The slave's post-w wait, in multiples of T.  The paper derives 6
      (Fig. 7). *)
end

module Make_full (_ : CONFIG) : Site.S

module Make (_ : sig
  val variant : variant
end) : Site.S
(** [Make_full] with the Fig. 8 modification enabled. *)

module Static : Site.S
(** Section 5.3, ["termination"]. *)

module Transient : Site.S
(** Section 6, ["termination-transient"]. *)

module With_windows (_ : sig
  val collect_window_mult : int

  val wait_window_mult : int
end) : Site.S
(** The static protocol with shortened (or lengthened) windows — the
    ablation showing the paper's 5T/6T are minimal. *)

module Static_without_fig8 : Site.S
(** The ablation: Section 5.3 over the {e unmodified} 3PC slave
    (["termination-nofig8"]).  Not resilient — see Fig. 8. *)

val fact1_reasons : string list
(** The exact reason strings a slave may carry on a commit decision —
    FACT 1's six cases.  (The failure-free flow is case 1: a commit
    received from the master.)  The transient variant adds
    ["transient-5t-commit"]. *)

val fact2_reasons : string list
(** The reason strings the master may carry on a commit decision —
    FACT 2's three cases. *)
