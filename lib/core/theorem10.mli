(** Theorem 10, constructively.

    The paper's last theorem: {e any} master/slave commit protocol
    satisfying Lemma 1 and Lemma 2 can be made resilient to optimistic
    multisite simple partitioning by rebuilding the Section 5.2 ideas
    around the message [m] that moves slaves from their last
    noncommittable state to a committable one.

    This module carries the construction out for a protocol the paper
    never spells out: {b four-phase commit}
    ([Commit_fsa.Catalog.four_phase] — vote, pre-prepare, prepare,
    commit), whose [m] is still the prepare.  The termination protocol
    is the Section 5.3 machinery with the substitution applied:

    - the master aborts everyone on a timeout or returned message in
      either pre-[m] wait (w1 or x1) — no prepare exists, so no slave
      anywhere can commit;
    - after sending [m], the master's p1 behaves exactly as in the
      paper: silent timeout commits, a returned UD(prepare) opens the
      5T collection window and the [slaves − UD = PB] test decides;
    - slaves in the noncommittable states w and x ride the 6T
      post-timeout window (accepting an early commit — the Fig. 8
      acceptance generalised to both states) and abort on a bounced
      yes/pre-ack;
    - slaves in p (committable) probe, and commit their side on
      UD(ack) or UD(probe).

    The thm10 bench and tests sweep it exactly like the 3PC version:
    zero violations, zero blocked sites on the full grids. *)

module Four_phase_termination : Site.S
(** Protocol name ["4pc-termination"]. *)
