(** The paper's timing constants, all in multiples of T (the longest
    end-to-end propagation delay).

    Fig. 5 fixes the commit-protocol timeout intervals; Figs. 6, 7, 9
    derive the termination-protocol windows; Section 6 tabulates the
    worst-case wait after a p-state timeout for each transient-partition
    case.  These constants are shared by the protocol implementation
    (lib/core), the checker's bound assertions, and the benches. *)

val master_timeout_mult : int
(** 2 — the master waits 2T for the slaves' responses (Fig. 5). *)

val slave_timeout_mult : int
(** 3 — a slave waits 3T for the master's next command (Fig. 5). *)

val collect_window_mult : int
(** 5 — after the first UD(prepare), the master collects further UDs and
    probes for 5T (Fig. 6). *)

val wait_window_mult : int
(** 6 — a slave that timed out in state w waits 6T for a commit before
    aborting (Fig. 7). *)

val probe_window_mult : int
(** 5 — transient variant: a slave that timed out in state p commits if
    5T pass with neither UD(probe) nor a command (Fig. 9, case
    3.2.2.2). *)

(** Section 6's exhaustive case split of a (transient) partition, keyed
    by which message generations crossed boundary B. *)
type case =
  | Case_1  (** no prepare passes B *)
  | Case_2_1  (** some prepares pass, some acks do not pass *)
  | Case_2_2_1  (** some prepares pass, acks pass, some probes do not *)
  | Case_2_2_2  (** some prepares pass, acks pass, all probes pass *)
  | Case_3_1  (** all prepares pass, some acks do not *)
  | Case_3_2_1  (** all prepares and acks pass, all commits pass *)
  | Case_3_2_2_1
      (** all prepares/acks pass, some commits do not, and some probe
          from a commit-missing site does not pass *)
  | Case_3_2_2_2
      (** all prepares/acks pass, some commits do not, all probes pass
          — the only unbounded case, fixed by the 5T self-commit *)

val all_cases : case list

val case_name : case -> string
(** The paper's numbering: "1", "2.1", "2.2.1", ... *)

val pp_case : Format.formatter -> case -> unit

val case_bound_mult : case -> int option
(** Section 6's worst-case wait (after the p-state timeout) for a slave
    to learn the outcome, in multiples of T; [None] for the unbounded
    case 3.2.2.2 and for cases where no slave waits in p at all
    (1 and 3.2.1, which the paper leaves out of its table). *)
