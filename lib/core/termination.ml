type variant = Static | Transient

let pp_variant fmt = function
  | Static -> Format.pp_print_string fmt "static"
  | Transient -> Format.pp_print_string fmt "transient"

let fact1_reasons =
  [
    "fact1-case1";
    "fact1-case2";
    "fact1-case3";
    "fact1-case4";
    "fact1-case5";
    "fact1-case6";
  ]

let fact2_reasons = [ "fact2-case1"; "fact2-case2"; "fact2-case3" ]

(* Trace templates (module-init registration; shared by every functor
   application).  Site sets travel as bitmask ints. *)

let tmpl_collect_no_cross =
  Trace.register_template (fun b _ pb _ _ _ _ ->
      Buffer.add_string b "collect window: N-UD = PB = ";
      Site_id.buf_set_mask b pb;
      Buffer.add_string b " -> no prepare crossed B")

let tmpl_collect_crossed =
  Trace.register_template (fun b _ reached pb _ _ _ ->
      Buffer.add_string b "collect window: N-UD = ";
      Site_id.buf_set_mask b reached;
      Buffer.add_string b " but PB = ";
      Site_id.buf_set_mask b pb;
      Buffer.add_string b " -> a prepare crossed B")

let tmpl_probe_no_partition =
  Ctx.site_template ~prefix:"probe from "
    ~suffix:" in p1 ignored (no partition detected)"

module type CONFIG = sig
  val variant : variant

  val fig8_w_commit : bool

  val collect_window_mult : int

  val wait_window_mult : int
end

module Make_full (V : CONFIG) = struct
  let name =
    (match V.variant with
    | Static -> "termination"
    | Transient -> "termination-transient")
    ^ (if V.fig8_w_commit then "" else "-nofig8")
    ^
    if
      V.collect_window_mult = Timing.collect_window_mult
      && V.wait_window_mult = Timing.wait_window_mult
    then ""
    else Printf.sprintf "-w%d-%d" V.collect_window_mult V.wait_window_mult

  let blocking_by_design = false

  type master_state =
    | M_initial  (** q1 *)
    | M_wait of { yes : Site_id.Set.t }  (** w1, timer 2T *)
    | M_prepared of { acks : Site_id.Set.t }  (** p1, timer 2T *)
    | M_collect of { ud : Site_id.Set.t; pb : Site_id.Set.t }
        (** p1 after the first UD(prepare); 5T collection window *)
    | M_committed
    | M_aborted

  type slave_state =
    | S_initial  (** q *)
    | S_wait  (** w, timer 3T *)
    | S_wait2  (** w after timeout; 6T window for a command (Fig. 7) *)
    | S_prepared  (** p, timer 3T *)
    | S_probing  (** p after timeout; probe sent (5T window if transient) *)
    | S_committed
    | S_aborted

  type machine =
    | Master of master_state
    | Slave of { vote_yes : bool; state : slave_state }

  type t = { ctx : Ctx.t; timer : Ctx.Timer_slot.slot; mutable machine : machine }

  let create ctx role =
    let timer = Ctx.Timer_slot.create () in
    match role with
    | Site.Master_role ->
        Ctx.obs_state ctx "q1";
        { ctx; timer; machine = Master M_initial }
    | Site.Slave_role { vote_yes } ->
        Ctx.obs_state ctx "q";
        { ctx; timer; machine = Slave { vote_yes; state = S_initial } }

  let state_name t =
    match t.machine with
    | Master M_initial -> "q1"
    | Master (M_wait _) -> "w1"
    | Master (M_prepared _) -> "p1"
    | Master (M_collect _) -> "p1/collect"
    | Master M_committed -> "c1"
    | Master M_aborted -> "a1"
    | Slave { state = S_initial; _ } -> "q"
    | Slave { state = S_wait; _ } -> "w"
    | Slave { state = S_wait2; _ } -> "w/waiting"
    | Slave { state = S_prepared; _ } -> "p"
    | Slave { state = S_probing; _ } -> "p/probing"
    | Slave { state = S_committed; _ } -> "c"
    | Slave { state = S_aborted; _ } -> "a"

  (* ---- master ---------------------------------------------------------- *)

  let master_decide t decision ~reason ~tell =
    Ctx.Timer_slot.cancel t.timer;
    t.machine <-
      Master
        (match decision with Types.Commit -> M_committed | Types.Abort -> M_aborted);
    Ctx.obs_state t.ctx
      (match decision with Types.Commit -> "c1" | Types.Abort -> "a1");
    if tell then
      Ctx.broadcast_slaves t.ctx
        (match decision with
        | Types.Commit -> Types.Commit_cmd
        | Types.Abort -> Types.Abort_cmd);
    Ctx.decide t.ctx decision ~reason

  let begin_transaction t =
    match t.machine with
    | Master M_initial ->
        Ctx.broadcast_slaves t.ctx Types.Xact;
        t.machine <- Master (M_wait { yes = Site_id.Set.empty });
        Ctx.obs_state t.ctx "w1";
        Ctx.Timer_slot.set t.ctx t.timer ~mult_t:Timing.master_timeout_mult
          ~label:(Label.Static "w1-timeout") (fun () ->
            match t.machine with
            | Master (M_wait _) ->
                (* Idea 2: no prepare was ever generated, so no slave in
                   G2 can commit; aborting G1 is safe. *)
                master_decide t Types.Abort ~reason:"w1-timeout" ~tell:true
            | Master
                (M_initial | M_prepared _ | M_collect _ | M_committed
                | M_aborted)
            | Slave _ ->
                ())
    | Master (M_wait _ | M_prepared _ | M_collect _ | M_committed | M_aborted)
    | Slave _ ->
        ()

  let close_collect_window t ~ud ~pb =
    (* The paper's test N - UD = PB, with N read as the slave set (see
       DESIGN.md): the probes received came exactly from the slaves
       whose prepare was delivered iff no prepare crossed boundary B. *)
    let slaves = Site_id.Set.of_list (Ctx.slaves t.ctx) in
    let reached = Site_id.Set.diff slaves ud in
    if Site_id.Set.equal reached pb then begin
      if Ctx.tracing t.ctx then
        Ctx.log1 t.ctx tmpl_collect_no_cross (Site_id.set_to_mask pb);
      master_decide t Types.Abort ~reason:"collect-abort" ~tell:true
    end
    else begin
      if Ctx.tracing t.ctx then
        Ctx.log2 t.ctx tmpl_collect_crossed
          (Site_id.set_to_mask reached)
          (Site_id.set_to_mask pb);
      master_decide t Types.Commit ~reason:"fact2-case3" ~tell:true
    end

  let enter_collect t ~ud ~pb =
    t.machine <- Master (M_collect { ud; pb });
    (* The 5T collection window is a phase of p1, not a new protocol
       state — the paper keeps the master "in p1" while it gathers
       probes and UD(prepare)s. *)
    Ctx.obs_state t.ctx "p1/collect";
    Ctx.obs_phase t.ctx "collect-window";
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t:V.collect_window_mult
      ~label:(Label.Static "collect-window") (fun () ->
        match t.machine with
        | Master (M_collect { ud; pb }) -> close_collect_window t ~ud ~pb
        | Master (M_initial | M_wait _ | M_prepared _ | M_committed | M_aborted)
        | Slave _ ->
            ())

  let on_master_msg t state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | M_wait { yes }, Types.Yes ->
        let yes = Site_id.Set.add envelope.src yes in
        if Site_id.Set.cardinal yes = Ctx.n t.ctx - 1 then begin
          Ctx.broadcast_slaves t.ctx Types.Prepare;
          t.machine <- Master (M_prepared { acks = Site_id.Set.empty });
          Ctx.obs_state t.ctx "p1";
          Ctx.Timer_slot.set t.ctx t.timer ~mult_t:Timing.master_timeout_mult
            ~label:(Label.Static "p1-timeout") (fun () ->
              match t.machine with
              | Master (M_prepared _) ->
                  (* Idea 3: the timer outlived every possible
                     UD(prepare) return, so every prepare was delivered
                     and every slave will commit. *)
                  master_decide t Types.Commit ~reason:"fact2-case2"
                    ~tell:true
              | Master
                  (M_initial | M_wait _ | M_collect _ | M_committed
                  | M_aborted)
              | Slave _ ->
                  ())
        end
        else t.machine <- Master (M_wait { yes })
    | M_wait _, Types.No ->
        master_decide t Types.Abort ~reason:"no-vote" ~tell:true
    | M_prepared { acks }, Types.Ack ->
        let acks = Site_id.Set.add envelope.src acks in
        if Site_id.Set.cardinal acks = Ctx.n t.ctx - 1 then
          master_decide t Types.Commit ~reason:"fact2-case1" ~tell:true
        else t.machine <- Master (M_prepared { acks })
    | M_collect { ud; pb }, Types.Probe { slave; _ } ->
        Ctx.obs_instant t.ctx ~cat:"probe" "probe-collected";
        t.machine <- Master (M_collect { ud; pb = Site_id.Set.add slave pb })
    | M_prepared _, Types.Probe _ ->
        (* A slave's p-timer fired early on a fast path with no
           partition; it will receive the commit command in due course. *)
        Ctx.log_site t.ctx tmpl_probe_no_partition envelope.src
    | (M_initial | M_committed | M_aborted), _
    | M_wait _, _
    | M_prepared _, _
    | M_collect _, _ ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_master_ud t state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | M_wait _, Types.Xact ->
        (* The transaction never reached some slave: that slave never
           voted, so nobody can commit. *)
        master_decide t Types.Abort ~reason:"ud-xact" ~tell:true
    | M_prepared _, Types.Prepare ->
        Ctx.obs_instant t.ctx ~cat:"probe" "ud-prepare";
        enter_collect t ~ud:(Site_id.Set.singleton envelope.dst) ~pb:Site_id.Set.empty
    | M_collect { ud; pb }, Types.Prepare ->
        Ctx.obs_instant t.ctx ~cat:"probe" "ud-prepare";
        t.machine <- Master (M_collect { ud = Site_id.Set.add envelope.dst ud; pb })
    | ( ( M_initial | M_wait _ | M_prepared _ | M_collect _ | M_committed
        | M_aborted ),
        _ ) ->
        Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

  (* ---- slaves ----------------------------------------------------------- *)

  let slave_decide t ~vote_yes decision ~reason ~tell =
    Ctx.Timer_slot.cancel t.timer;
    t.machine <-
      Slave
        {
          vote_yes;
          state =
            (match decision with
            | Types.Commit -> S_committed
            | Types.Abort -> S_aborted);
        };
    Ctx.obs_state t.ctx
      (match decision with Types.Commit -> "c" | Types.Abort -> "a");
    if tell then
      (* "It will send to all the slaves in G2": the slave does not know
         the boundary, so it sends to everyone; copies addressed across
         B bounce and are ignored. *)
      Ctx.broadcast_all t.ctx
        (match decision with
        | Types.Commit -> Types.Commit_cmd
        | Types.Abort -> Types.Abort_cmd);
    Ctx.decide t.ctx decision ~reason

  let set_slave t ~vote_yes state =
    t.machine <- Slave { vote_yes; state };
    Ctx.obs_state t.ctx (state_name t)

  let arm_slave_timer t ~mult_t ~label ~expected f =
    Ctx.Timer_slot.set t.ctx t.timer ~mult_t ~label (fun () ->
        match t.machine with
        | Slave { state; vote_yes } when state = expected -> f ~vote_yes
        | Slave _ | Master _ -> ())

  let enter_wait2 t ~vote_yes =
    set_slave t ~vote_yes S_wait2;
    arm_slave_timer t ~mult_t:V.wait_window_mult ~label:(Label.Static "w2-window")
      ~expected:S_wait2 (fun ~vote_yes ->
        (* 6T passed with no command: no commit exists anywhere
           reachable; abort (Fig. 7's bound makes this safe). *)
        slave_decide t ~vote_yes Types.Abort ~reason:"w2-expired" ~tell:false)

  let enter_probing t ~vote_yes =
    Ctx.send_master t.ctx
      (Types.Probe { trans_id = Ctx.trans_id t.ctx; slave = Ctx.self t.ctx });
    set_slave t ~vote_yes S_probing;
    Ctx.obs_phase t.ctx "probe-round";
    Ctx.obs_instant t.ctx ~cat:"probe" "probe-sent";
    match V.variant with
    | Static -> Ctx.Timer_slot.cancel t.timer
    | Transient ->
        arm_slave_timer t ~mult_t:Timing.probe_window_mult ~label:(Label.Static "probe-window")
          ~expected:S_probing (fun ~vote_yes ->
            (* Section 6: only case 3.2.2.2 keeps a probing slave waiting
               beyond 5T, and in that case the master has committed. *)
            slave_decide t ~vote_yes Types.Commit ~reason:"transient-5t-commit"
              ~tell:false)

  let commit_reason t ~state (envelope : Types.msg Network.envelope) =
    ignore t;
    match state with
    | S_wait2 -> "fact1-case2"
    | S_probing -> "fact1-case4"
    | S_wait | S_prepared ->
        if Site_id.is_master envelope.src then "fact1-case1" else "fact1-case6"
    | S_initial | S_committed | S_aborted -> "fact1-unexpected"

  let on_slave_msg t ~vote_yes state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | S_initial, Types.Xact ->
        if vote_yes then begin
          Ctx.send_master t.ctx Types.Yes;
          set_slave t ~vote_yes S_wait;
          arm_slave_timer t ~mult_t:Timing.slave_timeout_mult ~label:(Label.Static "w-timeout")
            ~expected:S_wait (fun ~vote_yes -> enter_wait2 t ~vote_yes)
        end
        else begin
          Ctx.send_master t.ctx Types.No;
          slave_decide t ~vote_yes Types.Abort ~reason:"voted-no" ~tell:false
        end
    | S_wait, Types.Prepare ->
        Ctx.send_master t.ctx Types.Ack;
        set_slave t ~vote_yes S_prepared;
        arm_slave_timer t ~mult_t:Timing.slave_timeout_mult ~label:(Label.Static "p-timeout")
          ~expected:S_prepared (fun ~vote_yes -> enter_probing t ~vote_yes)
    | S_wait, Types.Commit_cmd when not V.fig8_w_commit ->
        (* Ablation: the unmodified 3PC slave of Fig. 3 has no w -> c
           transition; it drops the relayed commit — which may be the
           only commit it will ever receive ("a fly in the ointment"). *)
        Ctx.log_text t.ctx "commit in w dropped (Fig. 8 modification disabled)"
    | S_wait2, Types.Prepare ->
        (* Cannot happen within the model's timing envelope: a prepare
           arrives at most 3T after the slave entered w.  Logged for the
           failure-injection tests. *)
        Ctx.log_text t.ctx "late prepare ignored in w/waiting"
    | (S_wait | S_wait2 | S_prepared | S_probing | S_initial), Types.Commit_cmd
      ->
        slave_decide t ~vote_yes Types.Commit
          ~reason:(commit_reason t ~state envelope)
          ~tell:false
    | (S_wait | S_wait2 | S_prepared | S_probing | S_initial), Types.Abort_cmd
      ->
        slave_decide t ~vote_yes Types.Abort ~reason:"abort-cmd" ~tell:false
    | ( ( S_initial | S_wait | S_wait2 | S_prepared | S_probing | S_committed
        | S_aborted ),
        _ ) ->
        Ctx.log_ignoring t.ctx envelope.payload (state_name t)

  let on_slave_ud t ~vote_yes state (envelope : Types.msg Network.envelope) =
    match (state, envelope.payload) with
    | S_wait, Types.Yes ->
        (* My vote never reached the master, so the master cannot have
           collected all votes and no prepare exists: abort my side. *)
        slave_decide t ~vote_yes Types.Abort ~reason:"ud-yes" ~tell:true
    | (S_prepared | S_probing), Types.Ack ->
        (* Idea 6(1): I hold a prepare and my ack bounced — I am in G2
           and responsible for committing it. *)
        slave_decide t ~vote_yes Types.Commit ~reason:"fact1-case5" ~tell:true
    | S_probing, Types.Probe _ ->
        (* Idea 6(2): my probe bounced — same conclusion. *)
        slave_decide t ~vote_yes Types.Commit ~reason:"fact1-case3" ~tell:true
    | ( ( S_initial | S_wait | S_wait2 | S_prepared | S_probing | S_committed
        | S_aborted ),
        _ ) ->
        Ctx.log_ud_ignored t.ctx envelope.payload (state_name t)

  let on_delivery t delivery =
    match (t.machine, delivery) with
    | Master state, Network.Msg envelope -> on_master_msg t state envelope
    | Master state, Network.Undeliverable envelope ->
        on_master_ud t state envelope
    | Slave { vote_yes; state }, Network.Msg envelope ->
        on_slave_msg t ~vote_yes state envelope
    | Slave { vote_yes; state }, Network.Undeliverable envelope ->
        on_slave_ud t ~vote_yes state envelope
end

module Make (V : sig
  val variant : variant
end) =
  Make_full (struct
    let variant = V.variant

    let fig8_w_commit = true

    let collect_window_mult = Timing.collect_window_mult

    let wait_window_mult = Timing.wait_window_mult
  end)

module With_windows (V : sig
  val collect_window_mult : int

  val wait_window_mult : int
end) =
  Make_full (struct
    let variant = Static

    let fig8_w_commit = true

    let collect_window_mult = V.collect_window_mult

    let wait_window_mult = V.wait_window_mult
  end)

module Static = Make (struct
  let variant = Static
end)

module Transient = Make (struct
  let variant = Transient
end)

module Static_without_fig8 = Make_full (struct
  let variant = Static

  let fig8_w_commit = false

  let collect_window_mult = Timing.collect_window_mult

  let wait_window_mult = Timing.wait_window_mult
end)
