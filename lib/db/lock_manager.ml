type mode = Shared | Exclusive

let pp_mode fmt = function
  | Shared -> Format.pp_print_string fmt "S"
  | Exclusive -> Format.pp_print_string fmt "X"

type grant = { tid : int; key : string; mode : mode }

module String_map = Map.Make (String)

type entry = {
  mutable holders : (int * mode) list;  (* in grant order *)
  mutable queue : (int * mode) list;  (* FIFO *)
}

type t = { mutable table : entry String_map.t }

let create () = { table = String_map.empty }

let entry_for t key =
  match String_map.find_opt key t.table with
  | Some e -> e
  | None ->
      let e = { holders = []; queue = [] } in
      t.table <- String_map.add key e t.table;
      e

let compatible mode holders =
  match mode with
  | Exclusive -> holders = []
  | Shared -> List.for_all (fun (_, m) -> m = Shared) holders

let holds t ~tid ~key =
  match String_map.find_opt key t.table with
  | None -> None
  | Some e -> List.assoc_opt tid e.holders

let acquire t ~tid ~key ~mode =
  let e = entry_for t key in
  match List.assoc_opt tid e.holders with
  | Some Exclusive -> `Granted
  | Some Shared when mode = Shared -> `Granted
  | Some Shared ->
      (* Upgrade: allowed immediately when sole holder, else wait. *)
      if List.for_all (fun (holder, _) -> holder = tid) e.holders then begin
        e.holders <- [ (tid, Exclusive) ];
        `Granted
      end
      else begin
        e.queue <- e.queue @ [ (tid, Exclusive) ];
        `Waiting
      end
  | None ->
      if e.queue = [] && compatible mode e.holders then begin
        e.holders <- e.holders @ [ (tid, mode) ];
        `Granted
      end
      else begin
        e.queue <- e.queue @ [ (tid, mode) ];
        `Waiting
      end

(* Move queue heads to holders while compatible. *)
let promote key e =
  let granted = ref [] in
  let rec go () =
    match e.queue with
    | (tid, mode) :: rest when compatible mode e.holders ->
        e.holders <- e.holders @ [ (tid, mode) ];
        e.queue <- rest;
        granted := { tid; key; mode } :: !granted;
        go ()
    | (tid, Exclusive) :: rest
      when List.for_all (fun (h, _) -> h = tid) e.holders && e.holders <> [] ->
        (* Queued upgrade whose blockers have gone. *)
        e.holders <- [ (tid, Exclusive) ];
        e.queue <- rest;
        granted := { tid; key; mode = Exclusive } :: !granted;
        go ()
    | _ -> ()
  in
  go ();
  List.rev !granted

let release_all t ~tid =
  let granted = ref [] in
  String_map.iter
    (fun key e ->
      let held = List.mem_assoc tid e.holders in
      let queued_here = List.mem_assoc tid e.queue in
      if held || queued_here then begin
        e.holders <- List.filter (fun (h, _) -> h <> tid) e.holders;
        e.queue <- List.filter (fun (h, _) -> h <> tid) e.queue;
        granted := !granted @ promote key e
      end)
    t.table;
  !granted

let purge t ~keep =
  let granted = ref [] in
  String_map.iter
    (fun key e ->
      let dropped l = List.exists (fun (tid, _) -> not (keep tid)) l in
      if dropped e.holders || dropped e.queue then begin
        e.holders <- List.filter (fun (tid, _) -> keep tid) e.holders;
        e.queue <- List.filter (fun (tid, _) -> keep tid) e.queue;
        granted := !granted @ promote key e
      end)
    t.table;
  !granted

let holders t ~key =
  match String_map.find_opt key t.table with None -> [] | Some e -> e.holders

let queued t ~key =
  match String_map.find_opt key t.table with None -> [] | Some e -> e.queue

(* Total number of queued (waiting) lock requests across every key —
   the "lock-wait queue depth" gauge sampled at telemetry cuts. *)
let wait_depth t =
  String_map.fold (fun _ e n -> n + List.length e.queue) t.table 0

let waits_for_edges t =
  String_map.fold
    (fun _ e acc ->
      List.fold_left
        (fun acc (waiter, _) ->
          List.fold_left
            (fun acc (holder, _) ->
              if holder <> waiter then (waiter, holder) :: acc else acc)
            acc e.holders)
        acc e.queue)
    t.table []

let find_cycle t =
  let edges = waits_for_edges t in
  let nodes =
    List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
  in
  let successors v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  (* DFS with an explicit path to extract the cycle. *)
  let visited = Hashtbl.create 16 in
  let rec dfs path v =
    if List.mem v path then
      let rec cut = function
        | [] -> []
        | x :: rest -> if x = v then [ x ] else x :: cut rest
      in
      Some (List.rev (cut path))
    else if Hashtbl.mem visited v then None
    else begin
      Hashtbl.add visited v ();
      let rec try_successors = function
        | [] -> None
        | s :: rest -> (
            match dfs (v :: path) s with
            | Some cycle -> Some cycle
            | None -> try_successors rest)
      in
      try_successors (successors v)
    end
  in
  let rec try_nodes = function
    | [] -> None
    | v :: rest -> (
        Hashtbl.reset visited;
        match dfs [] v with Some c -> Some c | None -> try_nodes rest)
  in
  try_nodes nodes

let pp fmt t =
  String_map.iter
    (fun key e ->
      if e.holders <> [] || e.queue <> [] then
        Format.fprintf fmt "%s: held by %s%s@." key
          (String.concat ","
             (List.map
                (fun (tid, m) ->
                  Format.asprintf "t%d(%a)" tid pp_mode m)
                e.holders))
          (if e.queue = [] then ""
           else
             " queue "
             ^ String.concat ","
                 (List.map
                    (fun (tid, m) -> Format.asprintf "t%d(%a)" tid pp_mode m)
                    e.queue)))
    t.table
