(** The distributed transaction manager: locks, storage and a pluggable
    commit protocol, multiplexed over one simulated network.

    Every transaction spans all [n] sites (sites it does not write
    still vote — the paper's protocols assume a fixed participant set;
    narrowing participation is orthogonal to termination).  The flow per
    transaction: acquire strict-2PL locks at every touched site; stage
    the updates; run the commit protocol (site 1 mastering); on each
    site's decision, commit/abort the site's durable store and release
    its locks.  Cross-site deadlocks are detected on a global waits-for
    graph and resolved by aborting the youngest transaction.

    This layer is what turns the paper's abstract cost of blocking into
    a measurable one: a blocked commit protocol keeps its locks, and
    every later transaction touching those keys waits with it (the
    fig1/thm9 lock-availability benches). *)

type txn_spec = {
  tid : int;  (** unique, >= 1 *)
  start_at : Vtime.t;
  writes : (Site_id.t * Wal.update list) list;
  reads : (Site_id.t * string list) list;
  vote_no : Site_id.t list;  (** slaves that will vote no *)
}

val txn :
  ?reads:(Site_id.t * string list) list ->
  ?vote_no:Site_id.t list ->
  tid:int ->
  start_at:Vtime.t ->
  (Site_id.t * Wal.update list) list ->
  txn_spec

type txn_status =
  | Txn_committed  (** every site committed *)
  | Txn_aborted  (** every site aborted *)
  | Txn_blocked  (** some site undecided at the horizon *)
  | Txn_torn
      (** sites decided differently — an atomicity violation, visible
          as money lost/created by the bank workload *)
  | Txn_waiting_locks  (** never acquired its lock set *)
  | Txn_deadlock_victim

val pp_status : Format.formatter -> txn_status -> unit

type txn_report = {
  spec : txn_spec;
  status : txn_status;
  locks_granted_at : Vtime.t option;
  all_decided_at : Vtime.t option;
  lock_wait : Vtime.t option;  (** start -> locks granted *)
  latency : Vtime.t option;  (** start -> all sites decided *)
}

type config = {
  protocol : Site.packed;
  n : int;
  t_unit : Vtime.t;
  mode : Network.mode;
  partition : Partition.t;
  delay : Delay.t;
  seed : int64;
  horizon : Vtime.t;
  trace_enabled : bool;
  initial : (Site_id.t * (string * string) list) list;
      (** pre-loaded per-site database contents (a restored snapshot,
          not WAL-logged) *)
  crashes : (Site_id.t * Vtime.t) list;
      (** site failures; a dead site neither sends nor receives.  Its
          durable store survives and can be taken through
          {!Commit_storage.Durable_site.recover} and {!Resolver} after
          the run — the end-to-end recovery tests do exactly that. *)
}

val default_config : protocol:Site.packed -> ?n:int -> unit -> config

type report = {
  txns : txn_report list;
  stores : Durable_site.t array;  (** index i = site i+1; inspectable *)
  trace : Trace.t;
  net_stats : Network.stats;
  deadlocks_resolved : int;
  crashed : Site_id.t list;
      (** sites dead at the horizon; transaction statuses are computed
          over the surviving sites *)
}

val run :
  ?obs:Obs.t ->
  ?prof:Prof.t ->
  ?on_gauge:(string -> int -> unit) ->
  config ->
  txn_spec list ->
  report
(** [obs] (default {!Obs.disabled}) records, besides the per-site
    protocol spans and message flows, a transaction-lifecycle timeline
    on track 0: a root txn span containing lock-wait and protocol
    phases, sealed when the last site decides.

    [prof] brackets lock-manager work (acquire / release / deadlock
    checks) with the [Locks] profiler bucket and the network with
    [Network].  [on_gauge] receives point-in-time samples — today
    ["gauge.lock_waiters"], the cross-site lock-wait queue depth —
    whenever the wait graph may have changed; Tm sits below the metrics
    pipeline, so gauges flow out through this callback. *)

val balance_total : report -> prefix:string -> int
(** Sum of the integer values of all keys starting with [prefix] across
    all stores — the conservation invariant of the bank workload. *)

val count_status : report -> txn_status -> int

val pp_report : Format.formatter -> report -> unit
