(** A strict two-phase-locking lock manager for one site.

    Exclusive and shared locks with FIFO queueing; locks are held until
    the owning transaction's commit protocol decides (strictness), which
    is exactly why a {e blocked} commit protocol is expensive: the
    blocked transaction's locks pin its data until the partition heals.
    The transaction manager uses {!waits_for_edges}/{!find_cycle} for
    deadlock detection. *)

type mode = Shared | Exclusive

val pp_mode : Format.formatter -> mode -> unit

type grant = { tid : int; key : string; mode : mode }

type t

val create : unit -> t

val acquire : t -> tid:int -> key:string -> mode:mode -> [ `Granted | `Waiting ]
(** Re-acquiring a lock already held is granted immediately; a sole
    shared holder requesting exclusive is upgraded. *)

val holds : t -> tid:int -> key:string -> mode option

val release_all : t -> tid:int -> grant list
(** Frees every lock and queue entry of [tid]; returns the requests
    granted as a consequence, in grant order. *)

val purge : t -> keep:(int -> bool) -> grant list
(** Frees every lock and queue entry whose tid fails [keep]; returns
    the requests granted as a consequence, in key order.  Used when a
    site crashes: its volatile lock table is rebuilt with only the
    in-doubt (prepared) transactions' locks, which the WAL pins until
    the group outcome is known. *)

val holders : t -> key:string -> (int * mode) list

val queued : t -> key:string -> (int * mode) list

val wait_depth : t -> int
(** Total queued (waiting) lock requests across every key — the
    lock-wait-depth gauge sampled at telemetry cuts. *)

val waits_for_edges : t -> (int * int) list
(** [(waiter, holder)] pairs. *)

val find_cycle : t -> int list option
(** Some deadlocked cycle of tids (each waits for the next, the last for
    the first), if any. *)

val pp : Format.formatter -> t -> unit
