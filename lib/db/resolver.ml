type outcome = Resolved_commit | Resolved_abort | Still_in_doubt of string

let pp_outcome fmt = function
  | Resolved_commit -> Format.pp_print_string fmt "commit"
  | Resolved_abort -> Format.pp_print_string fmt "abort"
  | Still_in_doubt why -> Format.fprintf fmt "in-doubt (%s)" why

let resolve ~stores ~self ~reachable ~tid =
  let n = Array.length stores in
  let peers =
    List.filter
      (fun site -> not (Site_id.equal site self))
      (Site_id.all ~n)
  in
  let status_of site =
    Durable_site.status stores.(Site_id.to_int site - 1) ~tid
  in
  let reachable_peers = List.filter reachable peers in
  let unreachable = List.filter (fun s -> not (reachable s)) peers in
  let statuses = List.map status_of reachable_peers in
  if List.exists (fun s -> s = `Committed || s = `Ended) statuses then
    Resolved_commit
  else if List.exists (( = ) `Aborted) statuses then Resolved_abort
  else if unreachable <> [] then
    Still_in_doubt
      (Format.asprintf "%d site(s) unreachable and no decision found"
         (List.length unreachable))
  else if List.exists (fun s -> s = `Active || s = `Unknown) statuses then
    (* Someone never prepared, so no site can have committed. *)
    Resolved_abort
  else
    Still_in_doubt "every reachable site is prepared but undecided"

let resolve_all ~stores ~self ~reachable =
  let own = stores.(Site_id.to_int self - 1) in
  let report = Durable_site.recover own in
  List.map
    (fun tid -> (tid, resolve ~stores ~self ~reachable ~tid))
    report.Durable_site.in_doubt

let apply store ~tid ~updates = function
  | Resolved_commit ->
      Durable_site.stage store ~tid updates;
      Durable_site.commit store ~tid ()
  | Resolved_abort -> Durable_site.abort store ~tid
  | Still_in_doubt _ -> ()
