type txn_spec = {
  tid : int;
  start_at : Vtime.t;
  writes : (Site_id.t * Wal.update list) list;
  reads : (Site_id.t * string list) list;
  vote_no : Site_id.t list;
}

let txn ?(reads = []) ?(vote_no = []) ~tid ~start_at writes =
  if tid < 1 then invalid_arg "Tm.txn: tids start at 1";
  { tid; start_at; writes; reads; vote_no }

type txn_status =
  | Txn_committed
  | Txn_aborted
  | Txn_blocked
  | Txn_torn
  | Txn_waiting_locks
  | Txn_deadlock_victim

let pp_status fmt s =
  Format.pp_print_string fmt
    (match s with
    | Txn_committed -> "committed"
    | Txn_aborted -> "aborted"
    | Txn_blocked -> "blocked"
    | Txn_torn -> "TORN"
    | Txn_waiting_locks -> "waiting-locks"
    | Txn_deadlock_victim -> "deadlock-victim")

type txn_report = {
  spec : txn_spec;
  status : txn_status;
  locks_granted_at : Vtime.t option;
  all_decided_at : Vtime.t option;
  lock_wait : Vtime.t option;
  latency : Vtime.t option;
}

type config = {
  protocol : Site.packed;
  n : int;
  t_unit : Vtime.t;
  mode : Network.mode;
  partition : Partition.t;
  delay : Delay.t;
  seed : int64;
  horizon : Vtime.t;
  trace_enabled : bool;
  initial : (Site_id.t * (string * string) list) list;
  crashes : (Site_id.t * Vtime.t) list;
}

let default_config ~protocol ?(n = 3) () =
  let t_unit = Vtime.of_int 1000 in
  {
    protocol;
    n;
    t_unit;
    mode = Network.Optimistic;
    partition = Partition.none;
    delay = Delay.uniform ~t_max:t_unit;
    seed = 1L;
    horizon = Vtime.of_int (200 * Vtime.to_int t_unit);
    trace_enabled = false;
    initial = [];
    crashes = [];
  }

type report = {
  txns : txn_report list;
  stores : Durable_site.t array;
  trace : Trace.t;
  net_stats : Network.stats;
  deadlocks_resolved : int;
  crashed : Site_id.t list;
}

(* Wire payload: protocol messages multiplexed by transaction. *)
type wire = { wtid : int; body : Types.msg }

let pp_wire fmt w = Format.fprintf fmt "t%d:%a" w.wtid Types.pp_msg w.body

(* Binary wire codec: the transaction id rides in bits 40+ above the
   packed message (see Types.msg_code's layout). *)
let wire_code w = Types.msg_code w.body lor (w.wtid lsl 40)

let buf_wire_code b code =
  Buffer.add_char b 't';
  Buffer.add_string b (string_of_int (code lsr 40));
  Buffer.add_char b ':';
  Types.buf_msg_code b (code land ((1 lsl 40) - 1))

let wire_renderer = Network.register_payload_renderer buf_wire_code

let wire_codec = (wire_renderer, wire_code)

(* Manager-side trace templates ("tm" topic).  Registered here, not in
   [Run] — the functor is applied per run and templates are global. *)

let buf_tid b tid =
  Buffer.add_char b 't';
  Buffer.add_string b (string_of_int tid)

let tmpl_locks_granted =
  Trace.register_template (fun b lookup tid name _ _ _ ->
      buf_tid b tid;
      Buffer.add_string b ": all locks granted; starting ";
      Buffer.add_string b (lookup name))

let tmpl_never_reached =
  Trace.register_template (fun b _ tid site _ _ _ ->
      buf_tid b tid;
      Buffer.add_string b ": ";
      Site_id.buf b (Site_id.of_int site);
      Buffer.add_string b " never reached by the transaction; local abort")

let tmpl_deadlock_victim =
  Trace.register_template (fun b _ tid _ _ _ _ ->
      buf_tid b tid;
      Buffer.add_string b ": deadlock victim; released")

let tmpl_lock_wait =
  Trace.register_template (fun b _ tid n _ _ _ ->
      buf_tid b tid;
      Buffer.add_string b ": waiting for ";
      Buffer.add_string b (string_of_int n);
      Buffer.add_string b " locks")

module Run (P : Site.S) = struct
  type txn_rt = {
    spec : txn_spec;
    mutable pending_locks : int;
    mutable granted_at : Vtime.t option;
    mutable instances : P.t array option;  (* created at activation *)
    decisions : Types.decision option array;
    decided_ats : Vtime.t option array;
    mutable victim : bool;
  }

  type state = {
    config : config;
    engine : Engine.t;
    trace_store : Trace.t;
    tracing : bool;
    topic_tm : Trace.topic;
    obs : Obs.t;
    obs_on : bool;  (* cached Obs.enabled *)
    net : wire Network.t;
    stores : Durable_site.t array;
    locks : Lock_manager.t array;
    txns : (int, txn_rt) Hashtbl.t;
    mutable deadlocks : int;
    prof : Prof.t option;  (* wall-time bracket for lock work, or None *)
    on_gauge : (string -> int -> unit) option;
        (* telemetry gauge sink ("gauge.lock_waiters") — Tm sits below
           the metrics pipeline, so gauges flow out via callback *)
  }

  let store state site = state.stores.(Site_id.to_int site - 1)

  let locks_at state site = state.locks.(Site_id.to_int site - 1)

  let prof_enter state b =
    match state.prof with Some p -> Prof.enter p b | None -> ()

  let prof_leave state =
    match state.prof with Some p -> Prof.leave p | None -> ()

  (* Sample the cross-site lock-wait queue depth into the gauge sink;
     called whenever the wait graph may have changed shape. *)
  let sample_lock_gauge state =
    match state.on_gauge with
    | None -> ()
    | Some sink ->
        sink "gauge.lock_waiters"
          (Array.fold_left
             (fun n lm -> n + Lock_manager.wait_depth lm)
             0 state.locks)

  (* Call sites guard with [state.tracing]. *)
  let log1 state tmpl a0 =
    Trace.log1 state.trace_store ~at:(Engine.now state.engine)
      ~topic:state.topic_tm tmpl a0

  let log2 state tmpl a0 a1 =
    Trace.log2 state.trace_store ~at:(Engine.now state.engine)
      ~topic:state.topic_tm tmpl a0 a1

  (* Transaction-lifecycle spans live on track 0 (the manager's own
     timeline): txn ⊃ lock-wait, protocol.  Sealed when the last site
     decides, or by [close_open_spans] for transactions still blocked
     at the horizon. *)
  let obs_track_done state rt =
    let at = Engine.now state.engine in
    while Obs.open_depth state.obs ~site:0 ~tid:rt.spec.tid > 0 do
      Obs.span_end state.obs ~at ~site:0 ~tid:rt.spec.tid
    done

  let all_decided rt = not (Array.exists (( = ) None) rt.decisions)

  let lock_requests (spec : txn_spec) =
    List.concat_map
      (fun (site, updates) ->
        List.map
          (fun (u : Wal.update) -> (site, u.key, Lock_manager.Exclusive))
          updates)
      spec.writes
    @ List.concat_map
        (fun (site, keys) ->
          List.map (fun key -> (site, key, Lock_manager.Shared)) keys)
        spec.reads

  (* Activation: begin + stage at every site, then start the protocol. *)
  let rec activate state rt =
    rt.granted_at <- Some (Engine.now state.engine);
    if state.obs_on then begin
      let at = Engine.now state.engine in
      if Obs.open_depth state.obs ~site:0 ~tid:rt.spec.tid > 1 then
        Obs.span_end state.obs ~at ~site:0 ~tid:rt.spec.tid;  (* lock-wait *)
      Obs.span_begin state.obs ~at ~site:0 ~tid:rt.spec.tid ~cat:"lifecycle"
        "protocol"
    end;
    if state.tracing then
      log2 state tmpl_locks_granted rt.spec.tid
        (Trace.intern state.trace_store P.name);
    let writes_of site =
      match List.assoc_opt site rt.spec.writes with
      | Some updates -> updates
      | None -> []
    in
    let release_site site =
      prof_enter state Prof.Locks;
      let grants = Lock_manager.release_all (locks_at state site) ~tid:rt.spec.tid in
      prof_leave state;
      grants
    in
    let instances =
      Array.init state.config.n (fun i ->
          let site = Site_id.of_int (i + 1) in
          let durable = store state site in
          Durable_site.begin_transaction durable ~tid:rt.spec.tid;
          Durable_site.stage durable ~tid:rt.spec.tid (writes_of site);
          let ctx =
            Ctx.make ~engine:state.engine ~n:state.config.n
              ~t_unit:state.config.t_unit ~self:site ~trans_id:rt.spec.tid
              ~send:(fun dst body ->
                Network.send state.net ~src:site ~dst
                  { wtid = rt.spec.tid; body })
              ~on_decide:(fun decision ->
                rt.decisions.(i) <- Some decision;
                rt.decided_ats.(i) <- Some (Engine.now state.engine);
                (match decision with
                | Types.Commit -> Durable_site.commit durable ~tid:rt.spec.tid ()
                | Types.Abort -> Durable_site.abort durable ~tid:rt.spec.tid);
                if state.obs_on && all_decided rt then obs_track_done state rt;
                let grants = release_site site in
                on_grants state grants)
              ~on_reason:(fun _ -> ())
              ~obs:state.obs ()
          in
          let role =
            if Site_id.is_master site then Site.Master_role
            else
              Site.Slave_role
                { vote_yes = not (List.mem site rt.spec.vote_no) }
          in
          P.create ctx role)
    in
    rt.instances <- Some instances;
    (* A site cut off before the xact reaches it stays in its initial
       state forever; its FSA's q-timeout aborts the local transaction
       (releasing its locks).  12T is far beyond any legitimate quiet
       period — the xact otherwise arrives within T of activation. *)
    Array.iteri
      (fun i instance ->
        let site = Site_id.of_int (i + 1) in
        ignore
          (Engine.schedule state.engine ~rank:Engine.Timer
             ~delay:(Vtime.of_int (12 * Vtime.to_int state.config.t_unit))
             ~label:(Label.Static "q-watchdog")
             (fun () ->
               let initial =
                 match P.state_name instance with
                 | "q" | "q1" -> true
                 | _ -> false
               in
               if rt.decisions.(i) = None && initial && not rt.victim then begin
                 if state.tracing then
                   log2 state tmpl_never_reached rt.spec.tid
                     (Site_id.to_int site);
                 rt.decisions.(i) <- Some Types.Abort;
                 rt.decided_ats.(i) <- Some (Engine.now state.engine);
                 Durable_site.abort (store state site) ~tid:rt.spec.tid;
                 if state.obs_on && all_decided rt then obs_track_done state rt;
                 on_grants state (release_site site)
               end)))
      instances;
    P.begin_transaction instances.(0)

  and on_grants state grants =
    List.iter
      (fun (g : Lock_manager.grant) ->
        match Hashtbl.find_opt state.txns g.tid with
        | None -> ()
        | Some rt ->
            if not rt.victim then begin
              rt.pending_locks <- rt.pending_locks - 1;
              if rt.pending_locks = 0 then activate state rt
            end)
      grants;
    sample_lock_gauge state

  let kill_victim state rt =
    rt.victim <- true;
    state.deadlocks <- state.deadlocks + 1;
    if state.obs_on then begin
      Obs.instant state.obs ~at:(Engine.now state.engine) ~site:0
        ~tid:rt.spec.tid ~cat:"lifecycle" "deadlock-victim";
      obs_track_done state rt
    end;
    if state.tracing then log1 state tmpl_deadlock_victim rt.spec.tid;
    prof_enter state Prof.Locks;
    let grants =
      List.concat_map
        (fun site -> Lock_manager.release_all (locks_at state site) ~tid:rt.spec.tid)
        (Site_id.all ~n:state.config.n)
    in
    prof_leave state;
    on_grants state grants

  let check_deadlock state =
    prof_enter state Prof.Locks;
    let edges =
      Array.to_list state.locks |> List.concat_map Lock_manager.waits_for_edges
    in
    prof_leave state;
    if edges <> [] then begin
      (* A cycle in the union graph is a (possibly cross-site) deadlock;
         the youngest transaction (largest tid) dies. *)
      let nodes =
        List.sort_uniq Int.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges)
      in
      let successors v =
        List.filter_map (fun (a, b) -> if a = v then Some b else None) edges
      in
      let visited = Hashtbl.create 16 in
      let rec dfs path v =
        if List.mem v path then
          let rec cut = function
            | [] -> []
            | x :: rest -> if x = v then [ x ] else x :: cut rest
          in
          Some (cut path)
        else if Hashtbl.mem visited v then None
        else begin
          Hashtbl.add visited v ();
          List.fold_left
            (fun acc s -> match acc with Some _ -> acc | None -> dfs (v :: path) s)
            None (successors v)
        end
      in
      let cycle =
        List.fold_left
          (fun acc v ->
            match acc with
            | Some _ -> acc
            | None ->
                Hashtbl.reset visited;
                dfs [] v)
          None nodes
      in
      match cycle with
      | None -> ()
      | Some tids -> (
          let victim = List.fold_left Stdlib.max min_int tids in
          match Hashtbl.find_opt state.txns victim with
          | Some rt when not rt.victim -> kill_victim state rt
          | Some _ | None -> ())
    end

  let start_txn state rt =
    if state.obs_on then
      Obs.span_begin state.obs ~at:(Engine.now state.engine) ~site:0
        ~tid:rt.spec.tid ~cat:"txn" "txn";
    let requests = lock_requests rt.spec in
    if requests = [] then activate state rt
    else begin
      let waiting = ref 0 in
      prof_enter state Prof.Locks;
      List.iter
        (fun (site, key, mode) ->
          match Lock_manager.acquire (locks_at state site) ~tid:rt.spec.tid ~key ~mode with
          | `Granted -> ()
          | `Waiting -> incr waiting)
        requests;
      prof_leave state;
      rt.pending_locks <- !waiting;
      if !waiting = 0 then activate state rt
      else begin
        if state.obs_on then
          Obs.span_begin state.obs ~at:(Engine.now state.engine) ~site:0
            ~tid:rt.spec.tid ~cat:"lifecycle" "lock-wait";
        if state.tracing then log2 state tmpl_lock_wait rt.spec.tid !waiting;
        sample_lock_gauge state;
        (* Waits can only deadlock when a new waiter arrives. *)
        ignore
          (Engine.schedule state.engine ~delay:(Vtime.of_int 1)
             ~label:(Label.Static "deadlock-check") (fun () -> check_deadlock state))
      end
    end

  let run ~obs ~prof ~on_gauge config specs =
    let tids = List.map (fun s -> s.tid) specs in
    let distinct = List.sort_uniq Int.compare tids in
    if List.length distinct <> List.length tids then
      invalid_arg "Tm.run: duplicate tids";
    let trace_store = Trace.create ~enabled:config.trace_enabled () in
    let engine = Engine.create ~trace:trace_store () in
    let net =
      Network.create ~engine ~n:config.n ~t_max:config.t_unit ~mode:config.mode
        ~partition:config.partition ~delay:config.delay ~seed:config.seed
        ~pp_payload:pp_wire ~payload_codec:wire_codec ~obs
        ~obs_tid:(fun w -> w.wtid)
        ?prof ()
    in
    let state =
      {
        config;
        engine;
        trace_store;
        tracing = Trace.enabled trace_store;
        topic_tm = Trace.topic trace_store "tm";
        obs;
        obs_on = Obs.enabled obs;
        net;
        stores =
          Array.init config.n (fun i ->
              let store = Durable_site.create () in
              (match List.assoc_opt (Site_id.of_int (i + 1)) config.initial with
              | Some kvs ->
                  List.iter
                    (fun (key, value) ->
                      Kv.set (Durable_site.database store) ~key ~value)
                    kvs
              | None -> ());
              store);
        locks = Array.init config.n (fun _ -> Lock_manager.create ());
        txns = Hashtbl.create 64;
        deadlocks = 0;
        prof;
        on_gauge;
      }
    in
    Network.set_handler net (fun site delivery ->
        let wtid =
          match delivery with
          | Network.Msg e | Network.Undeliverable e -> e.payload.wtid
        in
        match Hashtbl.find_opt state.txns wtid with
        | None -> ()
        | Some rt -> (
            match rt.instances with
            | None -> ()
            | Some instances ->
                let unwrap = function
                  | Network.Msg e -> Network.Msg { e with payload = e.payload.body }
                  | Network.Undeliverable e ->
                      Network.Undeliverable { e with payload = e.payload.body }
                in
                let instance = instances.(Site_id.to_int site - 1) in
                P.on_delivery instance (unwrap delivery);
                (* Reaching the prepared state must survive a restart
                   (the paper's p / p1 states); persist it on the
                   transition. *)
                (match P.state_name instance with
                | "p" | "p1" ->
                    let durable = store state site in
                    if Durable_site.status durable ~tid:wtid = `Active then
                      Durable_site.prepare durable ~tid:wtid
                | _ -> ())));
    List.iter
      (fun (site, at) ->
        ignore
          (Engine.schedule_at engine ~at ~label:(Label.Static "crash") (fun () ->
               Network.crash net site;
               (* The site loses volatile state: staged updates and the
                  lock table.  Only in-doubt (prepared) transactions
                  keep their locks — the WAL pins their data until the
                  group outcome is known; everything else is released,
                  waking compatible waiters. *)
               let durable = store state site in
               Durable_site.crash durable;
               prof_enter state Prof.Locks;
               let grants =
                 Lock_manager.purge (locks_at state site) ~keep:(fun tid ->
                     Durable_site.status durable ~tid = `Prepared)
               in
               prof_leave state;
               on_grants state grants)))
      config.crashes;
    List.iter
      (fun spec ->
        let rt =
          {
            spec;
            pending_locks = 0;
            granted_at = None;
            instances = None;
            decisions = Array.make config.n None;
            decided_ats = Array.make config.n None;
            victim = false;
          }
        in
        Hashtbl.add state.txns spec.tid rt;
        ignore
          (Engine.schedule_at engine ~at:spec.start_at ~label:(Label.Static "txn-start")
             (fun () -> start_txn state rt)))
      specs;
    Engine.run ~until:config.horizon engine;
    Obs.close_open_spans obs ~at:(Engine.now engine);
    let reports =
      List.map
        (fun spec ->
          let rt = Hashtbl.find state.txns spec.tid in
          let decisions =
            List.filteri
              (fun i _ -> Network.alive net (Site_id.of_int (i + 1)))
              (Array.to_list rt.decisions)
          in
          let status =
            if rt.victim then Txn_deadlock_victim
            else if rt.instances = None then Txn_waiting_locks
            else if List.for_all (( = ) (Some Types.Commit)) decisions then
              Txn_committed
            else if List.for_all (( = ) (Some Types.Abort)) decisions then
              Txn_aborted
            else if List.exists (( = ) None) decisions then Txn_blocked
            else Txn_torn
          in
          let all_decided_at =
            if Array.exists (( = ) None) rt.decided_ats then None
            else
              Array.fold_left
                (fun acc at ->
                  match (acc, at) with
                  | None, x -> x
                  | Some a, Some b -> Some (Vtime.max a b)
                  | Some a, None -> Some a)
                None rt.decided_ats
          in
          let lock_wait =
            Option.map (fun g -> Vtime.sub g spec.start_at) rt.granted_at
          in
          let latency =
            Option.map (fun d -> Vtime.sub d spec.start_at) all_decided_at
          in
          {
            spec;
            status;
            locks_granted_at = rt.granted_at;
            all_decided_at;
            lock_wait;
            latency;
          })
        specs
    in
    {
      txns = reports;
      stores = state.stores;
      trace = trace_store;
      net_stats = Network.stats net;
      deadlocks_resolved = state.deadlocks;
      crashed =
        List.filter
          (fun site -> not (Network.alive net site))
          (Site_id.all ~n:config.n);
    }
end

let run ?(obs = Obs.disabled) ?prof ?on_gauge config specs =
  let (module P : Site.S) = config.protocol in
  let module R = Run (P) in
  R.run ~obs ~prof ~on_gauge config specs

let balance_total report ~prefix =
  Array.fold_left
    (fun acc store ->
      List.fold_left
        (fun acc (key, value) ->
          if String.length key >= String.length prefix
             && String.equal (String.sub key 0 (String.length prefix)) prefix
          then acc + int_of_string value
          else acc)
        acc
        (Kv.snapshot (Durable_site.database store)))
    0 report.stores

let count_status report status =
  List.length (List.filter (fun r -> r.status = status) report.txns)

let pp_report fmt report =
  List.iter
    (fun r ->
      Format.fprintf fmt "t%-3d %-16s lock-wait=%-6s latency=%s@." r.spec.tid
        (Format.asprintf "%a" pp_status r.status)
        (match r.lock_wait with
        | Some w -> Format.asprintf "%a" Vtime.pp w
        | None -> "-")
        (match r.latency with
        | Some l -> Format.asprintf "%a" Vtime.pp l
        | None -> "-"))
    report.txns;
  Format.fprintf fmt "deadlocks resolved: %d@." report.deadlocks_resolved
