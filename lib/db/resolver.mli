(** Resolving in-doubt transactions after a site restart.

    A recovering site may hold transactions that were [Prepared] but
    carry no local decision ({!Commit_storage.Durable_site.recover}
    reports them in doubt).  A prepared 3PC participant must not decide
    unilaterally; the classic recovery procedure consults the stable
    state of the other participants:

    - any reachable site with a commit log for the tid: {e commit};
    - any reachable site with an abort record: {e abort};
    - every other site reachable and at least one of them never
      prepared: {e abort} — the master cannot have committed, because
      commitment requires every site to acknowledge a prepare;
    - otherwise (everyone reachable is also merely prepared, or some
      site is unreachable): {e still in doubt} — the decision belongs
      to a termination protocol, not to recovery.

    The resolver reads other sites' stable stores directly; in a real
    deployment this is a message exchange, but its information content
    is exactly the WAL status consulted here. *)

type outcome =
  | Resolved_commit
  | Resolved_abort
  | Still_in_doubt of string  (** why resolution must wait *)

val pp_outcome : Format.formatter -> outcome -> unit

val resolve :
  stores:Durable_site.t array ->
  self:Site_id.t ->
  reachable:(Site_id.t -> bool) ->
  tid:int ->
  outcome
(** [stores] is indexed by site (position i = site i+1), [self]'s own
    store included but never consulted as a peer. *)

val resolve_all :
  stores:Durable_site.t array ->
  self:Site_id.t ->
  reachable:(Site_id.t -> bool) ->
  (int * outcome) list
(** One {!resolve} per in-doubt transaction of [self]'s store (as
    reported by a fresh {!Commit_storage.Durable_site.recover}). *)

val apply :
  Durable_site.t -> tid:int -> updates:Wal.update list -> outcome -> unit
(** Applies a resolution to the local store: a commit re-stages
    [updates] (the staged originals were volatile and died with the
    crash — a real system re-fetches them with the decision) and
    commits; an abort aborts; in-doubt is a no-op. *)
