(** Workload generators for the transaction-manager experiments.

    Three families, mirroring the motivation in the paper's
    introduction (availability of data under failures):

    - {!bank_transfers}: each transaction moves an amount between two
      accounts on {e different} sites; account pairs are disjoint across
      transactions, so the invariant "total balance is conserved" holds
      for {e any} subset of transactions committing atomically — and
      breaks exactly when a commit protocol tears a transaction apart.
    - {!hot_spot}: every transaction updates one contended key plus a
      private key; measures how lock queues build up behind a blocked
      transaction.
    - {!uniform_mix}: random read/write sets over a small key space;
      exercises queueing and (cross-site) deadlock resolution. *)

type t = {
  initial : (Site_id.t * (string * string) list) list;
      (** per-site initial database contents *)
  txns : Tm.txn_spec list;
}

val bank_transfers :
  n:int ->
  pairs:int ->
  balance:int ->
  amount:int ->
  spacing:Vtime.t ->
  seed:int64 ->
  t
(** [pairs] transfer transactions (tids 1..pairs), the j-th starting at
    [j * spacing].  Every account starts at [balance]; each transfer
    moves [amount] from the debtor to the creditor. *)

val expected_total : t -> prefix:string -> int
(** The conserved total for {!bank_transfers} workloads. *)

val transfer :
  tid:int ->
  start_at:Vtime.t ->
  debtor:Site_id.t ->
  creditor:Site_id.t ->
  balance:int ->
  amount:int ->
  Tm.txn_spec
(** A single self-contained transfer for {e open-ended} streams (the
    cluster runtime): the transaction creates its own two accounts
    ["acct:<tid>:d"] / ["acct:<tid>:c"] with final values
    [balance - amount] / [balance + amount].  A committed transfer adds
    exactly [2 * balance] to the cluster's books, an aborted one adds
    nothing, and a {e torn} one adds a value distinguishable from both —
    which is what the continuous atomicity auditor keys on.

    @raise Invalid_argument if the sites coincide or
    [amount >= balance]. *)

val transfer_contributions : Tm.txn_spec -> (Site_id.t * int) list
(** Per-site money the transaction deposits if that site commits (the
    sum of its integer write values) — the auditor's per-site
    contribution ledger. *)

val hot_spot :
  n:int -> txns:int -> spacing:Vtime.t -> t
(** All transactions write the key ["hot"] at site 2 plus a private
    key. *)

val inventory :
  n:int ->
  items:int ->
  orders:int ->
  contention:float ->
  spacing:Vtime.t ->
  seed:int64 ->
  t
(** An order shop: item [i] lives at a warehouse site (sites 2..n,
    round-robin); selling it writes the owner tag at the warehouse
    {e and} a matching receipt at the accounting site (site 1) — two
    sites, one transaction.  [contention] is the probability that an
    order targets an already-targeted item (lock conflicts, serialised
    by 2PL; the later order overwrites both cells).  The invariant
    checked by {!inventory_consistent}: for every item, the warehouse
    owner equals the accounting receipt — exactly the cross-site
    atomicity the commit protocol must provide. *)

val inventory_consistent : Tm.report -> (unit, string) result
(** [Error] describes the first item whose warehouse owner and
    accounting receipt disagree (a torn order). *)

val uniform_mix :
  n:int ->
  txns:int ->
  keys_per_txn:int ->
  key_space:int ->
  spacing:Vtime.t ->
  seed:int64 ->
  t
(** Random exclusive write sets over [key_space] keys spread across all
    sites; adjacent transactions overlap and may deadlock. *)
