type t = {
  initial : (Site_id.t * (string * string) list) list;
  txns : Tm.txn_spec list;
}

let account_key ~site ~index =
  Printf.sprintf "acct:%d:%d" (Site_id.to_int site) index

let bank_transfers ~n ~pairs ~balance ~amount ~spacing ~seed =
  if n < 2 then invalid_arg "Workload.bank_transfers: need two sites";
  let rng = Rng.create seed in
  let initial = Hashtbl.create 16 in
  let add_account site key value =
    let existing = Option.value (Hashtbl.find_opt initial site) ~default:[] in
    Hashtbl.replace initial site ((key, value) :: existing)
  in
  let txns =
    List.init pairs (fun j ->
        let tid = j + 1 in
        let site_a = Site_id.of_int (Rng.int_in rng ~lo:1 ~hi:n) in
        let site_b =
          (* any other site *)
          let rec pick () =
            let s = Site_id.of_int (Rng.int_in rng ~lo:1 ~hi:n) in
            if Site_id.equal s site_a then pick () else s
          in
          pick ()
        in
        let key_a = account_key ~site:site_a ~index:j in
        let key_b = account_key ~site:site_b ~index:j in
        add_account site_a key_a (string_of_int balance);
        add_account site_b key_b (string_of_int balance);
        Tm.txn ~tid
          ~start_at:(Vtime.of_int (tid * Vtime.to_int spacing))
          [
            ( site_a,
              [ { Wal.key = key_a; value = string_of_int (balance - amount) } ] );
            ( site_b,
              [ { Wal.key = key_b; value = string_of_int (balance + amount) } ] );
          ])
  in
  {
    initial = Hashtbl.fold (fun site kvs acc -> (site, kvs) :: acc) initial [];
    txns;
  }

let transfer ~tid ~start_at ~debtor ~creditor ~balance ~amount =
  if Site_id.equal debtor creditor then
    invalid_arg "Workload.transfer: debtor and creditor must differ";
  if amount <= 0 || amount >= balance then
    invalid_arg "Workload.transfer: need 0 < amount < balance";
  Tm.txn ~tid ~start_at
    [
      ( debtor,
        [
          {
            Wal.key = Printf.sprintf "acct:%d:d" tid;
            value = string_of_int (balance - amount);
          };
        ] );
      ( creditor,
        [
          {
            Wal.key = Printf.sprintf "acct:%d:c" tid;
            value = string_of_int (balance + amount);
          };
        ] );
    ]

let transfer_contributions spec =
  List.map
    (fun (site, updates) ->
      ( site,
        List.fold_left
          (fun acc (u : Wal.update) -> acc + int_of_string u.value)
          0 updates ))
    spec.Tm.writes

let expected_total t ~prefix =
  List.fold_left
    (fun acc (_, kvs) ->
      List.fold_left
        (fun acc (key, value) ->
          if String.length key >= String.length prefix
             && String.equal (String.sub key 0 (String.length prefix)) prefix
          then acc + int_of_string value
          else acc)
        acc kvs)
    0 t.initial

let hot_spot ~n ~txns ~spacing =
  if n < 2 then invalid_arg "Workload.hot_spot: need two sites";
  let hot_site = Site_id.of_int 2 in
  let specs =
    List.init txns (fun j ->
        let tid = j + 1 in
        let private_site = Site_id.of_int ((j mod n) + 1) in
        let writes =
          let private_update =
            ( private_site,
              [ { Wal.key = Printf.sprintf "priv:%d" tid; value = "1" } ] )
          in
          let hot_update =
            (hot_site, [ { Wal.key = "hot"; value = string_of_int tid } ])
          in
          if Site_id.equal private_site hot_site then
            [
              ( hot_site,
                [
                  { Wal.key = "hot"; value = string_of_int tid };
                  { Wal.key = Printf.sprintf "priv:%d" tid; value = "1" };
                ] );
            ]
          else [ hot_update; private_update ]
        in
        Tm.txn ~tid ~start_at:(Vtime.of_int (tid * Vtime.to_int spacing)) writes)
  in
  { initial = [ (hot_site, [ ("hot", "0") ]) ]; txns = specs }

let warehouse_of_item ~n i = Site_id.of_int (2 + (i mod (n - 1)))

let inventory ~n ~items ~orders ~contention ~spacing ~seed =
  if n < 2 then invalid_arg "Workload.inventory: need two sites";
  if contention < 0. || contention > 1. then
    invalid_arg "Workload.inventory: contention must be in [0,1]";
  let rng = Rng.create seed in
  let targeted = ref [] in
  let pick_item () =
    match !targeted with
    | old :: _ when Rng.float rng < contention ->
        if Rng.bool rng then old
        else List.nth !targeted (Rng.int rng ~bound:(List.length !targeted))
    | _ ->
        let fresh = Rng.int rng ~bound:items in
        targeted := fresh :: !targeted;
        fresh
  in
  let txns =
    List.init orders (fun j ->
        let tid = j + 1 in
        let item = pick_item () in
        let owner = Printf.sprintf "order-%d" tid in
        Tm.txn ~tid
          ~start_at:(Vtime.of_int (tid * Vtime.to_int spacing))
          [
            ( warehouse_of_item ~n item,
              [ { Wal.key = Printf.sprintf "own:%d" item; value = owner } ] );
            ( Site_id.of_int 1,
              [ { Wal.key = Printf.sprintf "rcpt:%d" item; value = owner } ] );
          ])
  in
  let initial =
    List.init items (fun i -> (warehouse_of_item ~n i, (Printf.sprintf "own:%d" i, "stocked")))
    |> List.fold_left
         (fun acc (site, kv) ->
           match List.assoc_opt site acc with
           | Some kvs -> (site, kv :: kvs) :: List.remove_assoc site acc
           | None -> (site, [ kv ]) :: acc)
         []
  in
  { initial; txns }

let inventory_consistent (report : Tm.report) =
  let n = Array.length report.Tm.stores in
  let accounting = Durable_site.database report.Tm.stores.(0) in
  let starts_with prefix key =
    String.length key > String.length prefix
    && String.sub key 0 (String.length prefix) = prefix
  in
  (* Forward: every sold item's warehouse owner has a matching receipt. *)
  let forward =
    Array.to_list report.Tm.stores
    |> List.concat_map (fun store -> Kv.snapshot (Durable_site.database store))
    |> List.find_opt (fun (key, owner) ->
           starts_with "own:" key
           && owner <> "stocked"
           &&
           let item = String.sub key 4 (String.length key - 4) in
           Kv.get accounting ("rcpt:" ^ item) <> Some owner)
  in
  match forward with
  | Some (key, owner) ->
      Error
        (Printf.sprintf
           "%s owned by %s at the warehouse but the receipt disagrees" key
           owner)
  | None -> (
      (* Reverse: every receipt points at the item's actual owner — this
         catches the torn order whose warehouse half aborted. *)
      let reverse =
        Kv.snapshot accounting
        |> List.find_opt (fun (key, owner) ->
               starts_with "rcpt:" key
               &&
               match
                 int_of_string_opt (String.sub key 5 (String.length key - 5))
               with
               | None -> false
               | Some item ->
                   let warehouse =
                     Durable_site.database
                       report.Tm.stores.(Site_id.to_int
                                           (warehouse_of_item ~n item)
                                        - 1)
                   in
                   Kv.get warehouse ("own:" ^ string_of_int item) <> Some owner)
      in
      match reverse with
      | Some (key, owner) ->
          Error
            (Printf.sprintf
               "%s receipted to %s but the warehouse owner disagrees" key owner)
      | None -> Ok ())

let uniform_mix ~n ~txns ~keys_per_txn ~key_space ~spacing ~seed =
  let rng = Rng.create seed in
  let site_of_key k = Site_id.of_int ((k mod n) + 1) in
  let key_name k = Printf.sprintf "k%d" k in
  let specs =
    List.init txns (fun j ->
        let tid = j + 1 in
        let chosen = Hashtbl.create 8 in
        let rec pick remaining acc =
          if remaining = 0 then acc
          else
            let k = Rng.int rng ~bound:key_space in
            if Hashtbl.mem chosen k then pick remaining acc
            else begin
              Hashtbl.add chosen k ();
              pick (remaining - 1) (k :: acc)
            end
        in
        let keys = pick (Stdlib.min keys_per_txn key_space) [] in
        let writes =
          List.fold_left
            (fun acc k ->
              let site = site_of_key k in
              let update = { Wal.key = key_name k; value = string_of_int tid } in
              match List.assoc_opt site acc with
              | Some updates ->
                  (site, update :: updates) :: List.remove_assoc site acc
              | None -> (site, [ update ]) :: acc)
            [] keys
        in
        Tm.txn ~tid ~start_at:(Vtime.of_int (tid * Vtime.to_int spacing)) writes)
  in
  let initial =
    List.init key_space (fun k -> (site_of_key k, (key_name k, "0")))
    |> List.fold_left
         (fun acc (site, kv) ->
           match List.assoc_opt site acc with
           | Some kvs -> (site, kv :: kvs) :: List.remove_assoc site acc
           | None -> (site, [ kv ]) :: acc)
         []
  in
  { initial; txns = specs }
