(** Link-delay models.

    The paper's sole timing parameter is [T], the longest end-to-end
    propagation delay; every message takes some positive time <= T per
    hop.  Deterministic models let the checker construct adversarial
    timings (e.g. "prepare3 is slow, prepare2 is instant"); the uniform
    model exercises the bounds statistically. *)

type t =
  | Fixed of Vtime.t
      (** Every hop takes exactly this long (must be in [\[1, T\]]). *)
  | Uniform of { lo : Vtime.t; hi : Vtime.t }
      (** Per-message uniform sample from [\[lo, hi\]]. *)
  | Per_link of (Site_id.t -> Site_id.t -> Vtime.t)
      (** Deterministic function of (src, dst); used for adversarial
          constructions.  Must return values in [\[1, T\]]. *)

val full : t_max:Vtime.t -> t
(** The adversary's favourite: every hop takes exactly [T]. *)

val minimal : t
(** Every hop takes one tick. *)

val uniform : t_max:Vtime.t -> t
(** Uniform over [\[1, T\]]. *)

val sample :
  t -> rng:Rng.t -> t_max:Vtime.t -> src:Site_id.t -> dst:Site_id.t -> Vtime.t
(** Draws one hop delay and clamps it into [\[1, t_max\]] so that no
    model can violate the paper's T bound. *)

val pp : Format.formatter -> t -> unit
