type 'a envelope = {
  src : Site_id.t;
  dst : Site_id.t;
  payload : 'a;
  sent_at : Vtime.t;
}

type 'a delivery = Msg of 'a envelope | Undeliverable of 'a envelope

type mode = Optimistic | Pessimistic

type 'a event =
  | Sent of { env : 'a envelope; at : Vtime.t }
  | Delivered of { env : 'a envelope; at : Vtime.t }
  | Bounced of { env : 'a envelope; at : Vtime.t }
  | Lost of { env : 'a envelope; at : Vtime.t }

type stats = { sent : int; delivered : int; bounced : int; lost : int }

(* ------------------------------------------------------------------ *)
(* Binary trace templates                                              *)
(*                                                                     *)
(* The network's trace lines all have the shape "endpoints, verb,      *)
(* payload [, hop]".  When the caller supplies a [payload_codec] the   *)
(* payload travels through the trace as one packed int plus a renderer *)
(* id from the registry below, and every line becomes a typed binary   *)
(* record; without a codec the legacy eager [addf] path is kept (tests *)
(* trace arbitrary payload types).  Renderer registration is           *)
(* module-init-only, like {!Trace.register_template}.                  *)
(* ------------------------------------------------------------------ *)

let payload_renderers =
  ref (Array.make 8 (None : (Buffer.t -> int -> unit) option))

let n_payload_renderers = ref 0

(* Each payload renderer doubles as an obs flow-name renderer, so coded
   flow names share the registration; indexed by payload renderer id. *)
let obs_name_ids = ref (Array.make 8 (-1))

let register_payload_renderer r =
  let i = !n_payload_renderers in
  if i = Array.length !payload_renderers then begin
    let grown = Array.make (2 * i) None in
    Array.blit !payload_renderers 0 grown 0 i;
    payload_renderers := grown;
    let grown_ids = Array.make (2 * i) (-1) in
    Array.blit !obs_name_ids 0 grown_ids 0 i;
    obs_name_ids := grown_ids
  end;
  !payload_renderers.(i) <- Some r;
  !obs_name_ids.(i) <- Obs.register_name_renderer r;
  incr n_payload_renderers;
  i

let buf_payload b rid code =
  match !payload_renderers.(rid) with
  | Some r -> r b code
  | None -> Buffer.add_string b "<msg>"

(* Endpoints pack as [src lsl 10 lor dst] in one argument. *)
let buf_site b i = Site_id.buf b (Site_id.of_int i)

let buf_src_arrow_dst b sd =
  buf_site b (sd lsr 10);
  Buffer.add_string b " -> ";
  buf_site b (sd land 0x3ff)

let tmpl_crashed =
  Trace.register_template (fun b _ site _ _ _ _ ->
      buf_site b site;
      Buffer.add_string b " crashed")

let tmpl_recovered =
  Trace.register_template (fun b _ site _ _ _ _ ->
      buf_site b site;
      Buffer.add_string b " recovered")

(* "src -> dst payload: <suffix>" — lost (destination dead) / lost at
   boundary B / suppressed (sender dead) share one shape. *)
let endpoints_payload_suffix suffix =
  Trace.register_template (fun b _ sd rid code _ _ ->
      buf_src_arrow_dst b sd;
      Buffer.add_char b ' ';
      buf_payload b rid code;
      Buffer.add_string b suffix)

let tmpl_lost_dest_dead = endpoints_payload_suffix ": lost (destination dead)"

let tmpl_lost_at_b = endpoints_payload_suffix ": lost at boundary B"

let tmpl_suppressed = endpoints_payload_suffix ": suppressed (sender dead)"

let tmpl_deliver =
  Trace.register_template (fun b _ sd rid code _ _ ->
      buf_src_arrow_dst b sd;
      Buffer.add_string b ": deliver ";
      buf_payload b rid code)

let tmpl_ud_lost =
  Trace.register_template (fun b _ src rid code _ _ ->
      Buffer.add_string b "UD(";
      buf_payload b rid code;
      Buffer.add_string b ") for ";
      buf_site b src;
      Buffer.add_string b ": lost (sender dead)")

let tmpl_bounce =
  Trace.register_template (fun b _ sd rid code _ _ ->
      Buffer.add_string b "return UD(";
      buf_src_arrow_dst b sd;
      Buffer.add_string b ": ";
      buf_payload b rid code;
      Buffer.add_string b ") to sender")

let tmpl_send =
  Trace.register_template (fun b _ sd rid code hop _ ->
      buf_src_arrow_dst b sd;
      Buffer.add_string b ": send ";
      buf_payload b rid code;
      Buffer.add_string b " (hop ";
      Vtime.buf b (Vtime.of_int hop);
      Buffer.add_char b ')')

type 'a t = {
  engine : Engine.t;
  trace : Trace.t;  (* cached Engine.trace *)
  tracing : bool;  (* cached Trace.enabled: skip formatting entirely *)
  n : int;
  t_max : Vtime.t;
  mode : mode;
  partition : Partition.t;
  delay : Delay.t;
  rng : Rng.t;
  pp_payload : Format.formatter -> 'a -> unit;
  topic_net : Trace.topic;  (* "net", interned once *)
  enc : ('a -> int) option;  (* payload codec: binary records when present *)
  renderer_id : int;
  obs_renderer : int;  (* obs name renderer for coded flow names, or -1 *)
  obs : Obs.t;
  obs_on : bool;  (* cached Obs.enabled: keep the off path allocation-free *)
  obs_tid : 'a -> int;  (* payload -> transaction-id track for flow edges *)
  dead : bool array;  (* indexed by site id - 1 *)
  prof : Prof.t option;  (* wall-time attribution bracket, or None *)
  mutable handler : (Site_id.t -> 'a delivery -> unit) option;
  mutable tap : ('a event -> unit) option;
  mutable sent : int;
  mutable delivered : int;
  mutable bounced : int;
  mutable lost : int;
}

let create ~engine ~n ~t_max ?(mode = Optimistic) ?(partition = Partition.none)
    ?delay ?(seed = 1L) ?pp_payload ?payload_codec ?(obs = Obs.disabled)
    ?obs_tid ?prof () =
  if n < 2 then invalid_arg "Network.create: need at least two sites";
  if Vtime.( < ) t_max (Vtime.of_int 1) then
    invalid_arg "Network.create: t_max must be at least one tick";
  let delay = match delay with Some d -> d | None -> Delay.uniform ~t_max in
  let pp_payload =
    match pp_payload with
    | Some pp -> pp
    | None -> fun fmt _ -> Format.pp_print_string fmt "<msg>"
  in
  let trace = Engine.trace engine in
  {
    engine;
    trace;
    tracing = Trace.enabled trace;
    topic_net = Trace.topic trace "net";
    enc = (match payload_codec with Some (_, enc) -> Some enc | None -> None);
    renderer_id = (match payload_codec with Some (rid, _) -> rid | None -> -1);
    obs_renderer =
      (match payload_codec with
      | Some (rid, _) -> !obs_name_ids.(rid)
      | None -> -1);
    n;
    t_max;
    mode;
    partition;
    delay;
    rng = Rng.create seed;
    pp_payload;
    obs;
    obs_on = Obs.enabled obs;
    obs_tid = (match obs_tid with Some f -> f | None -> fun _ -> 0);
    dead = Array.make n false;
    prof;
    handler = None;
    tap = None;
    sent = 0;
    delivered = 0;
    bounced = 0;
    lost = 0;
  }

let set_handler t handler = t.handler <- Some handler

let set_tap t tap = t.tap <- Some tap

let n t = t.n

let t_max t = t.t_max

let partition t = t.partition

let engine t = t.engine

let stats t =
  { sent = t.sent; delivered = t.delivered; bounced = t.bounced; lost = t.lost }

let is_dead t site = t.dead.(Site_id.to_int site - 1)

let crash t site =
  t.dead.(Site_id.to_int site - 1) <- true;
  if t.obs_on then
    Obs.instant t.obs ~at:(Engine.now t.engine) ~site:(Site_id.to_int site)
      ~tid:0 ~cat:"net" "crash";
  if t.tracing then
    Trace.log1 t.trace ~at:(Engine.now t.engine) ~topic:t.topic_net
      tmpl_crashed (Site_id.to_int site)

let recover t site =
  t.dead.(Site_id.to_int site - 1) <- false;
  if t.obs_on then
    Obs.instant t.obs ~at:(Engine.now t.engine) ~site:(Site_id.to_int site)
      ~tid:0 ~cat:"net" "recover";
  if t.tracing then
    Trace.log1 t.trace ~at:(Engine.now t.engine) ~topic:t.topic_net
      tmpl_recovered (Site_id.to_int site)

let alive t site = not (is_dead t site)

(* Call sites guard with [t.tracing] so a disabled trace costs neither
   the payload encoding nor the [Engine.now] read.  [trace_net] is the
   codec-less fallback (arbitrary payload types, eager rendering). *)
let trace_net t fmt =
  Trace.addf t.trace ~at:(Engine.now t.engine) ~topic:"net" fmt

let pack_sd src dst = (Site_id.to_int src lsl 10) lor Site_id.to_int dst

(* One binary record: endpoints + coded payload under [tmpl]. *)
let log_env t tmpl envelope enc =
  Trace.log3 t.trace ~at:(Engine.now t.engine) ~topic:t.topic_net tmpl
    (pack_sd envelope.src envelope.dst)
    t.renderer_id (enc envelope.payload)

let dispatch t site delivery =
  match t.handler with
  | None -> failwith "Network: message arrived before set_handler"
  | Some handler -> handler site delivery

(* Profiler brackets around the network entry points ([send] and the
   scheduled hop/bounce callbacks); nested buckets (the protocol work
   behind [dispatch]) suspend this one, so only network self-time is
   charged here.  No-ops when profiling is off. *)
let prof_enter t =
  match t.prof with Some p -> Prof.enter p Prof.Network | None -> ()

let prof_leave t = match t.prof with Some p -> Prof.leave p | None -> ()

(* [tap_emit t (fun at -> ...)] allocated the thunk closure even with
   no tap installed; the matches below only build the event when a tap
   is listening. *)

let deliver t envelope flow =
  if is_dead t envelope.dst then begin
    t.lost <- t.lost + 1;
    if t.obs_on then
      Obs.instant t.obs ~at:(Engine.now t.engine)
        ~site:(Site_id.to_int envelope.dst) ~tid:(t.obs_tid envelope.payload)
        ~cat:"net" "lost";
    (if t.tracing then
       match t.enc with
       | Some enc -> log_env t tmpl_lost_dest_dead envelope enc
       | None ->
           trace_net t "%a -> %a %a: lost (destination dead)" Site_id.pp
             envelope.src Site_id.pp envelope.dst t.pp_payload envelope.payload);
    match t.tap with
    | None -> ()
    | Some tap -> tap (Lost { env = envelope; at = Engine.now t.engine })
  end
  else begin
    t.delivered <- t.delivered + 1;
    if flow <> 0 then
      Obs.flow_end t.obs ~at:(Engine.now t.engine)
        ~site:(Site_id.to_int envelope.dst) ~tid:(t.obs_tid envelope.payload)
        flow;
    (if t.tracing then
       match t.enc with
       | Some enc -> log_env t tmpl_deliver envelope enc
       | None ->
           trace_net t "%a -> %a: deliver %a" Site_id.pp envelope.src
             Site_id.pp envelope.dst t.pp_payload envelope.payload);
    (match t.tap with
    | None -> ()
    | Some tap -> tap (Delivered { env = envelope; at = Engine.now t.engine }));
    dispatch t envelope.dst (Msg envelope)
  end

let bounce t envelope flow =
  prof_enter t;
  (if is_dead t envelope.src then begin
    t.lost <- t.lost + 1;
    (if t.tracing then
       match t.enc with
       | Some enc ->
           Trace.log3 t.trace ~at:(Engine.now t.engine) ~topic:t.topic_net
             tmpl_ud_lost
             (Site_id.to_int envelope.src)
             t.renderer_id (enc envelope.payload)
       | None ->
           trace_net t "UD(%a) for %a: lost (sender dead)" t.pp_payload
             envelope.payload Site_id.pp envelope.src);
    match t.tap with
    | None -> ()
    | Some tap -> tap (Lost { env = envelope; at = Engine.now t.engine })
  end
  else begin
    t.bounced <- t.bounced + 1;
    (* The returned-to-sender edge: the flow that left [src] comes back
       to [src]'s own timeline as UD(msg). *)
    if flow <> 0 then
      Obs.flow_end t.obs ~at:(Engine.now t.engine)
        ~site:(Site_id.to_int envelope.src) ~tid:(t.obs_tid envelope.payload)
        flow;
    (if t.tracing then
       match t.enc with
       | Some enc -> log_env t tmpl_bounce envelope enc
       | None ->
           trace_net t "return UD(%a -> %a: %a) to sender" Site_id.pp
             envelope.src Site_id.pp envelope.dst t.pp_payload envelope.payload);
    (match t.tap with
    | None -> ()
    | Some tap -> tap (Bounced { env = envelope; at = Engine.now t.engine }));
    dispatch t envelope.src (Undeliverable envelope)
  end);
  prof_leave t

(* A message reaches the boundary-or-destination after one hop (<= T).  If
   the partition separates the endpoints at that instant the message
   cannot cross: optimistic mode schedules the return hop (<= T, hence
   the paper's 2T round-trip envelope), pessimistic mode drops it. *)
let arrival t envelope flow =
  prof_enter t;
  let now = Engine.now t.engine in
  (if Partition.separated t.partition ~at:now envelope.src envelope.dst then
    match t.mode with
    | Pessimistic -> (
        t.lost <- t.lost + 1;
        if t.obs_on then
          Obs.instant t.obs ~at:now ~site:(Site_id.to_int envelope.dst)
            ~tid:(t.obs_tid envelope.payload) ~cat:"net" "lost-at-B";
        (if t.tracing then
           match t.enc with
           | Some enc -> log_env t tmpl_lost_at_b envelope enc
           | None ->
               trace_net t "%a -> %a %a: lost at boundary B" Site_id.pp
                 envelope.src Site_id.pp envelope.dst t.pp_payload
                 envelope.payload);
        match t.tap with
        | None -> ()
        | Some tap -> tap (Lost { env = envelope; at = Engine.now t.engine }))
    | Optimistic ->
        let back =
          Delay.sample t.delay ~rng:t.rng ~t_max:t.t_max ~src:envelope.dst
            ~dst:envelope.src
        in
        (* Two closure shapes so the obs-off bounce captures exactly
           what it did before obs existed. *)
        let cb =
          if flow = 0 then fun () -> bounce t envelope 0
          else fun () -> bounce t envelope flow
        in
        ignore
          (Engine.schedule t.engine ~rank:Engine.Delivery ~delay:back
             ~label:(Label.Static "net-bounce") cb)
  else deliver t envelope flow);
  prof_leave t

let send t ~src ~dst payload =
  if Site_id.equal src dst then
    invalid_arg "Network.send: a site does not message itself";
  prof_enter t;
  let envelope = { src; dst; payload; sent_at = Engine.now t.engine } in
  (if is_dead t src then begin
    (* A dead site emits nothing: its pending timers may still "fire" in
       the simulation, but the resulting sends evaporate here. *)
    t.lost <- t.lost + 1;
    (if t.tracing then
       match t.enc with
       | Some enc -> log_env t tmpl_suppressed envelope enc
       | None ->
           trace_net t "%a -> %a %a: suppressed (sender dead)" Site_id.pp src
             Site_id.pp dst t.pp_payload payload);
    match t.tap with
    | None -> ()
    | Some tap -> tap (Lost { env = envelope; at = Engine.now t.engine })
  end
  else begin
  t.sent <- t.sent + 1;
  (match t.tap with
  | None -> ()
  | Some tap -> tap (Sent { env = envelope; at = Engine.now t.engine }));
  let d = Delay.sample t.delay ~rng:t.rng ~t_max:t.t_max ~src ~dst in
  (if t.tracing then
     match t.enc with
     | Some enc ->
         Trace.log4 t.trace ~at:envelope.sent_at ~topic:t.topic_net tmpl_send
           (pack_sd src dst) t.renderer_id (enc payload) (Vtime.to_int d)
     | None ->
         trace_net t "%a -> %a: send %a (hop %a)" Site_id.pp src Site_id.pp dst
           t.pp_payload payload Vtime.pp d);
  (* With obs off the scheduled closure captures exactly [t] and
     [envelope], as before obs existed — the hot path stays
     allocation-identical. *)
  let cb =
    if t.obs_on then begin
      let flow =
        match t.enc with
        | Some enc ->
            Obs.flow_start_coded t.obs ~at:envelope.sent_at
              ~site:(Site_id.to_int src) ~tid:(t.obs_tid payload)
              ~renderer:t.obs_renderer ~code:(enc payload) ()
        | None ->
            let name = Format.asprintf "%a" t.pp_payload payload in
            Obs.flow_start t.obs ~at:envelope.sent_at
              ~site:(Site_id.to_int src) ~tid:(t.obs_tid payload) name
      in
      fun () -> arrival t envelope flow
    end
    else fun () -> arrival t envelope 0
  in
  ignore
    (Engine.schedule t.engine ~rank:Engine.Delivery ~delay:d
       ~label:(Label.Static "net-hop") cb)
  end);
  prof_leave t

let broadcast t ~src payload =
  List.iter
    (fun dst -> if not (Site_id.equal src dst) then send t ~src ~dst payload)
    (Site_id.all ~n:t.n)
