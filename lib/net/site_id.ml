type t = int

let of_int i =
  if i < 1 then invalid_arg "Site_id.of_int: sites are numbered from 1" else i

let to_int t = t

let master = 1

let is_master t = t = master

let equal = Int.equal

let compare = Int.compare

let hash t = t

let pp fmt t =
  if t = master then Format.pp_print_string fmt "master"
  else Format.fprintf fmt "site%d" t

let buf b t =
  if t = master then Buffer.add_string b "master"
  else begin
    Buffer.add_string b "site";
    Buffer.add_string b (string_of_int t)
  end

let all ~n =
  if n < 1 then invalid_arg "Site_id.all: need at least one site";
  List.init n (fun i -> i + 1)

let slaves ~n = List.filter (fun s -> s <> master) (all ~n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_ints ints = Set.of_list (List.map of_int ints)

(* Sets rendered through trace templates travel as a bitmask int (bit
   [i] = site [i+1]); ascending bit order matches [Set.elements]. *)
let set_to_mask set = Set.fold (fun s acc -> acc lor (1 lsl (s - 1))) set 0

let buf_set_mask b mask =
  Buffer.add_char b '{';
  let first = ref true in
  let m = ref mask in
  let site = ref 1 in
  while !m <> 0 do
    if !m land 1 = 1 then begin
      if not !first then Buffer.add_char b ',';
      first := false;
      buf b !site
    end;
    incr site;
    m := !m lsr 1
  done;
  Buffer.add_char b '}'

let pp_set fmt set =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       pp)
    (Set.elements set)
