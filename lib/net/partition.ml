type phase = {
  cells : Site_id.Set.t list;  (* master's cell first *)
  starts_at : Vtime.t;
  heals_at : Vtime.t option;
}

(* Chronological, non-overlapping phases; [] = never partitioned. *)
type t = phase list

let validate_heal ~starts_at heals_at =
  match heals_at with
  | Some h when Vtime.( <= ) h starts_at ->
      invalid_arg "Partition: heals_at must be after starts_at"
  | Some _ | None -> ()

let make_multiple ?heals_at ~groups ~starts_at ~n () =
  if List.length groups < 2 then
    invalid_arg "Partition.make_multiple: need at least two groups";
  if List.exists Site_id.Set.is_empty groups then
    invalid_arg "Partition.make_multiple: empty group";
  let universe = Site_id.Set.of_list (Site_id.all ~n) in
  let union = List.fold_left Site_id.Set.union Site_id.Set.empty groups in
  let total = List.fold_left (fun acc g -> acc + Site_id.Set.cardinal g) 0 groups in
  if not (Site_id.Set.equal union universe) || total <> n then
    invalid_arg
      "Partition.make_multiple: groups must be disjoint and cover 1..n";
  validate_heal ~starts_at heals_at;
  let master_cell, others =
    List.partition (fun g -> Site_id.Set.mem Site_id.master g) groups
  in
  [ { cells = master_cell @ others; starts_at; heals_at } ]

let make ?heals_at ~group2 ~starts_at ~n () =
  if Site_id.Set.is_empty group2 then
    invalid_arg "Partition.make: G2 is empty — not a partition";
  if Site_id.Set.mem Site_id.master group2 then
    invalid_arg
      "Partition.make: the master belongs to G1 by the paper's convention";
  let universe = Site_id.Set.of_list (Site_id.all ~n) in
  if not (Site_id.Set.subset group2 universe) then
    invalid_arg "Partition.make: G2 mentions a site outside 1..n";
  if Site_id.Set.cardinal group2 >= n then
    invalid_arg "Partition.make: G2 covers every site";
  validate_heal ~starts_at heals_at;
  let group1 = Site_id.Set.diff universe group2 in
  [ { cells = [ group1; group2 ]; starts_at; heals_at } ]

let none = []

let sequence partitions =
  let phases = List.concat partitions in
  let sorted =
    List.sort (fun a b -> Vtime.compare a.starts_at b.starts_at) phases
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
        (match a.heals_at with
        | None ->
            invalid_arg
              "Partition.sequence: a never-healing phase cannot precede \
               another"
        | Some h when Vtime.( < ) b.starts_at h ->
            invalid_arg "Partition.sequence: phases overlap"
        | Some _ -> ());
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let first_cells t = match t with [] -> [] | phase :: _ -> phase.cells

let groups t = first_cells t

let group_count t = List.length (first_cells t)

let phase_count t = List.length t

let is_simple t = group_count t = 2 && phase_count t <= 1

let group2 t =
  match first_cells t with
  | [] -> Site_id.Set.empty
  | _ :: others -> List.fold_left Site_id.Set.union Site_id.Set.empty others

let group1 t ~n =
  match first_cells t with
  | [] -> Site_id.Set.of_list (Site_id.all ~n)
  | master_cell :: _ -> master_cell

let starts_at t =
  match t with [] -> Vtime.infinity | phase :: _ -> phase.starts_at

let heals_at t =
  match List.rev t with [] -> None | last :: _ -> last.heals_at

let is_transient t = t <> [] && List.for_all (fun p -> p.heals_at <> None) t

let phase_active phase at =
  Vtime.( <= ) phase.starts_at at
  && match phase.heals_at with None -> true | Some h -> Vtime.( < ) at h

let active_phase t at = List.find_opt (fun phase -> phase_active phase at) t

let active_at t at = active_phase t at <> None

(* How many connected components the network has at [at]: 1 while no
   phase is active (fully connected), else that phase's cell count. *)
let components_at t ~at =
  match active_phase t at with
  | None -> 1
  | Some phase -> List.length phase.cells

let cell_index cells site =
  let rec go i = function
    | [] -> -1
    | cell :: rest -> if Site_id.Set.mem site cell then i else go (i + 1) rest
  in
  go 0 cells

let side t site =
  if cell_index (first_cells t) site <= 0 then `G1 else `G2

let separated t ~at a b =
  match active_phase t at with
  | None -> false
  | Some phase -> cell_index phase.cells a <> cell_index phase.cells b

let pp_phase fmt phase =
  match phase.cells with
  | [ _; g2 ] ->
      Format.fprintf fmt "partition@%a G2=%a%s" Vtime.pp phase.starts_at
        Site_id.pp_set g2
        (match phase.heals_at with
        | None -> ""
        | Some h -> Format.asprintf " heals@%a" Vtime.pp h)
  | cells ->
      Format.fprintf fmt "multi-partition@%a %a%s" Vtime.pp phase.starts_at
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "|")
           Site_id.pp_set)
        cells
        (match phase.heals_at with
        | None -> ""
        | Some h -> Format.asprintf " heals@%a" Vtime.pp h)

let pp fmt t =
  match t with
  | [] -> Format.pp_print_string fmt "no-partition"
  | [ phase ] -> pp_phase fmt phase
  | phases ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " then ")
        pp_phase fmt phases
