(** Network partitioning (paper, Section 2 and Fig. 4).

    A {e simple} partition splits the sites into exactly two groups, G1
    and G2, with no communication across the boundary B; the paper fixes
    G1 to be the group containing the master.  A {e multiple} partition
    (more than two groups) is also representable — the paper proves no
    commit protocol is resilient to it, and the multi-partition bench
    demonstrates that on the termination protocol.

    A partition may be {e static} (never heals within the run) or
    {e transient} (Section 6: the network recovers before all affected
    transactions terminate). *)

type t

val make :
  ?heals_at:Vtime.t ->
  group2:Site_id.Set.t ->
  starts_at:Vtime.t ->
  n:int ->
  unit ->
  t
(** [make ~group2 ~starts_at ~n ()] is the {e simple} partition with
    [G2 = group2] and [G1 = all \ group2], active from [starts_at]
    (inclusive) until [heals_at] (exclusive; default: never).

    @raise Invalid_argument if [group2] is empty, contains the master,
    contains a site outside 1..n, covers all sites, or if
    [heals_at <= starts_at].  (The master is in G1 by the paper's naming
    convention; a "partition" separating nobody is not a partition.) *)

val make_multiple :
  ?heals_at:Vtime.t ->
  groups:Site_id.Set.t list ->
  starts_at:Vtime.t ->
  n:int ->
  unit ->
  t
(** [make_multiple ~groups ...] splits the sites into the given cells
    (two or more, mutually disjoint, jointly covering 1..n, none
    empty).  The cell containing the master plays the role of G1.

    @raise Invalid_argument if the cells are not a partition of 1..n or
    there are fewer than two. *)

val none : t
(** The never-partitioned network. *)

val sequence : t list -> t
(** Chains partitions in time: each phase must heal before the next
    starts.  Used to test the paper's assumption 2 ("there is no
    subsequent network partitioning before all the transactions
    affected by the previous partitioning have terminated") by breaking
    it: a second cut arriving mid-termination.

    @raise Invalid_argument if windows overlap or a never-healing phase
    precedes another. *)

val phase_count : t -> int
(** Number of chained phases; 0 for {!none}. *)

val groups : t -> Site_id.Set.t list
(** The cells of the {e first} phase, master's first; [[]] for
    {!none}. *)

val group_count : t -> int
(** 0 for {!none}. *)

val is_simple : t -> bool
(** Exactly two cells and at most one phase. *)

val group2 : t -> Site_id.Set.t
(** Every site outside the master's cell of the first phase (for a
    simple partition, G2; empty for {!none}). *)

val group1 : t -> n:int -> Site_id.Set.t
(** The master's cell ([1..n] for {!none}). *)

val starts_at : t -> Vtime.t
(** First phase's onset; {!Vtime.infinity} for {!none}. *)

val heals_at : t -> Vtime.t option
(** Last phase's heal. *)

val is_transient : t -> bool

val active_at : t -> Vtime.t -> bool
(** Is the boundary up at this instant? *)

val components_at : t -> at:Vtime.t -> int
(** Number of connected components of the network at [at]: 1 while no
    phase is active, else the active phase's cell count.  The
    partition-component gauge sampled at telemetry cuts. *)

val separated : t -> at:Vtime.t -> Site_id.t -> Site_id.t -> bool
(** [separated p ~at a b]: are [a] and [b] in different cells of an
    active partition at time [at]? *)

val side : t -> Site_id.t -> [ `G1 | `G2 ]
(** Which side of the master a site is on while the partition is active
    ([`G2] = not in the master's cell). *)

val pp : Format.formatter -> t -> unit
