type t =
  | Fixed of Vtime.t
  | Uniform of { lo : Vtime.t; hi : Vtime.t }
  | Per_link of (Site_id.t -> Site_id.t -> Vtime.t)

let full ~t_max = Fixed t_max

let minimal = Fixed (Vtime.of_int 1)

let uniform ~t_max = Uniform { lo = Vtime.of_int 1; hi = t_max }

let clamp ~t_max d = Vtime.max 1 (Vtime.min d t_max)

let sample t ~rng ~t_max ~src ~dst =
  let raw =
    match t with
    | Fixed d -> d
    | Uniform { lo; hi } ->
        if Vtime.( < ) hi lo then lo
        else Vtime.of_int (Rng.int_in rng ~lo:(Vtime.to_int lo) ~hi:(Vtime.to_int hi))
    | Per_link f -> f src dst
  in
  clamp ~t_max raw

let pp fmt = function
  | Fixed d -> Format.fprintf fmt "fixed(%a)" Vtime.pp d
  | Uniform { lo; hi } -> Format.fprintf fmt "uniform[%a,%a]" Vtime.pp lo Vtime.pp hi
  | Per_link _ -> Format.pp_print_string fmt "per-link"
