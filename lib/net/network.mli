(** The message-passing substrate with simple partitioning.

    Implements the paper's two failure models:

    - {e optimistic} (assumption 1 of Section 5.1): a message that cannot
      cross an active partition boundary is {e returned to its sender} as
      an undeliverable message, UD(msg).  The round trip (out to the
      boundary, back to the sender) takes at most [2T].
    - {e pessimistic}: undeliverable messages are silently lost.  (The
      paper proves no protocol is resilient in this model; we keep it for
      the contrast benchmark.)

    Partition membership is evaluated at the would-be arrival instant, so
    a message sent before a transient partition heals but arriving after
    is delivered — exactly the message-race structure of Section 6's case
    analysis.

    Site failures (used only by the Section 7 counterexample experiments;
    the termination protocol assumes they never coincide with a
    partition) make a site drop every delivery without any bounce. *)

type 'a envelope = {
  src : Site_id.t;
  dst : Site_id.t;
  payload : 'a;
  sent_at : Vtime.t;
}

type 'a delivery =
  | Msg of 'a envelope  (** normal arrival at [dst] *)
  | Undeliverable of 'a envelope
      (** the bounce: delivered back to [src]; the envelope is the
          original message (paper notation UD(msg)) *)

type mode = Optimistic | Pessimistic

(** Observable fate of a message, for passive taps.  [at] is the
    virtual time of the event itself (the send, the arrival, the bounce
    delivery, the loss). *)
type 'a event =
  | Sent of { env : 'a envelope; at : Vtime.t }
  | Delivered of { env : 'a envelope; at : Vtime.t }
  | Bounced of { env : 'a envelope; at : Vtime.t }
      (** returned to sender as UD(msg) *)
  | Lost of { env : 'a envelope; at : Vtime.t }
      (** pessimistic boundary loss or dead site *)

type stats = {
  sent : int;
  delivered : int;
  bounced : int;  (** returned to sender (optimistic mode) *)
  lost : int;  (** dropped (pessimistic mode or dead destination) *)
}

type 'a t

val register_payload_renderer : (Buffer.t -> int -> unit) -> int
(** Register a renderer that turns a packed payload code (see
    [payload_codec] below) back into the exact text [pp_payload] would
    have produced.  Global and append-only — call only from module
    initialisation, never per network or per run. *)

val create :
  engine:Engine.t ->
  n:int ->
  t_max:Vtime.t ->
  ?mode:mode ->
  ?partition:Partition.t ->
  ?delay:Delay.t ->
  ?seed:int64 ->
  ?pp_payload:(Format.formatter -> 'a -> unit) ->
  ?payload_codec:int * ('a -> int) ->
  ?obs:Obs.t ->
  ?obs_tid:('a -> int) ->
  ?prof:Prof.t ->
  unit ->
  'a t
(** Defaults: [mode = Optimistic], [partition = Partition.none],
    [delay = Delay.uniform ~t_max], [seed = 1L], [obs = Obs.disabled].

    [prof], when given, brackets every network entry point ([send] and
    the scheduled hop/bounce callbacks) with the [Network] profiler
    bucket; protocol work reached through the delivery handler nests
    its own bucket inside, so only network self-time is charged.

    [payload_codec] is [(renderer_id, encode)] where [renderer_id] came
    from {!register_payload_renderer} and [encode] packs a payload into
    one int that the renderer can print.  When present, every trace
    line the network writes is a compact binary record (a few int
    stores); without it the network falls back to eager printf-style
    tracing through [pp_payload].

    With an enabled [obs], every send opens a causality flow edge
    (named by [pp_payload]) that closes at the destination on delivery
    — or back at the {e sender} on an optimistic bounce, making the
    returned-to-sender UD(msg) round trip visible; losses and crashes
    become instants.  [obs_tid] maps a payload to the transaction-id
    track the edge endpoints land on (default: track 0). *)

val set_handler : 'a t -> (Site_id.t -> 'a delivery -> unit) -> unit
(** Installs the delivery callback.  Must be called before any message
    arrives; sending without a handler raises at delivery time. *)

val set_tap : 'a t -> ('a event -> unit) -> unit
(** Installs a passive observer of every message fate, called in event
    order.  Used by the checker's Section 6 case classifier and by the
    timing benches; protocols must not use it. *)

val send : 'a t -> src:Site_id.t -> dst:Site_id.t -> 'a -> unit
(** Queues one message.  Self-sends are rejected
    (@raise Invalid_argument) — sites act on their own state directly. *)

val broadcast : 'a t -> src:Site_id.t -> 'a -> unit
(** Sends to every other site, in site order. *)

val crash : 'a t -> Site_id.t -> unit
(** Marks a site dead: every subsequent (and in-flight) delivery to it is
    lost, with no bounce — a site failure looks like message loss, which
    is the paper's Section 7 point. *)

val recover : 'a t -> Site_id.t -> unit
(** Clears the dead flag set by {!crash}.  Messages sent while the site
    was down stay lost; deliveries scheduled to arrive after the
    recovery instant arrive normally (liveness is checked at delivery
    time, not send time). *)

val alive : 'a t -> Site_id.t -> bool

val n : 'a t -> int

val t_max : 'a t -> Vtime.t

val partition : 'a t -> Partition.t

val stats : 'a t -> stats

val engine : 'a t -> Engine.t
