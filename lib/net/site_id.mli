(** Participating-site identifiers.

    Sites are numbered 1..n as in the paper; site 1 is always the master
    of a transaction ("we can always name the participating sites ...").
    Identifiers are plain integers with a validated constructor. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument unless the argument is >= 1. *)

val to_int : t -> int

val master : t
(** Site 1. *)

val is_master : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** ["site3"], or ["master"] for site 1. *)

val buf : Buffer.t -> t -> unit
(** Byte-identical to {!pp}, for trace-template renderers. *)

val all : n:int -> t list
(** [all ~n] is [\[1; ...; n\]]. @raise Invalid_argument if [n < 1]. *)

val slaves : n:int -> t list
(** [slaves ~n] is [\[2; ...; n\]]. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

val set_of_ints : int list -> Set.t

val pp_set : Format.formatter -> Set.t -> unit

val set_to_mask : Set.t -> int
(** Pack a set into a bitmask (bit [i] = site [i+1]) so it fits a trace
    template argument. *)

val buf_set_mask : Buffer.t -> int -> unit
(** Render a {!set_to_mask} bitmask byte-identically to {!pp_set}. *)
