type t = Static of string | Dynamic of (unit -> string)

let force = function Static s -> s | Dynamic f -> f ()

let pp fmt t = Format.pp_print_string fmt (force t)
