type t = int

let zero = 0

let infinity = max_int

let add a b =
  if a = infinity || b = infinity then infinity
  else
    let s = a + b in
    if s < 0 then infinity else s

let sub a b = if a = infinity then infinity else Stdlib.max 0 (a - b)

let compare = Int.compare

let equal = Int.equal

let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b

let ( < ) (a : t) (b : t) = Stdlib.( < ) a b

let min (a : t) (b : t) = Stdlib.min a b

let max (a : t) (b : t) = Stdlib.max a b

let of_int n =
  if n < 0 then invalid_arg "Vtime.of_int: negative" else n

let to_int t = t

let pp fmt t =
  if t = infinity then Format.pp_print_string fmt "inf"
  else Format.fprintf fmt "%d" t

let buf b t =
  if t = infinity then Buffer.add_string b "inf"
  else Buffer.add_string b (string_of_int t)

let pp_in_t ~unit_t fmt t =
  if t = infinity then Format.pp_print_string fmt "infT"
  else Format.fprintf fmt "%.2fT" (float_of_int t /. float_of_int unit_t)
