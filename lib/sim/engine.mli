(** The discrete-event simulation engine.

    Events are executed in order of [(time, rank, sequence)].  The rank
    makes the paper's timing arguments exact: a timeout of length [2T]
    fires only if no message arriving at or before [now + 2T] preempts
    it, because at equal timestamps {!rank} [Delivery] events run before
    [Timer] events.  The sequence number makes runs deterministic.

    The hot path is allocation-lean (see DESIGN.md "Hot-path allocation
    policy"): one event block per schedule, a packed immediate-int
    [(rank, seq)] tie-break compared inline in a monomorphic heap, and
    {!Label.t} labels that cost nothing unless rendered. *)

type t

type handle
(** A scheduled event.  Handles support cancellation, which is how
    protocol timers are reset (paper: "reset timer 5T"). *)

(** Execution order among events sharing a timestamp. *)
type rank =
  | Delivery  (** message arrivals (network layer) *)
  | Timer  (** protocol timeouts *)
  | Background  (** everything else (workload injection, probes) *)

val create : ?trace:Trace.t -> unit -> t
(** A fresh engine at time {!Vtime.zero}.  [trace] defaults to a fresh
    enabled trace. *)

val reset : ?trace:Trace.t -> t -> unit
(** Rewinds the engine to the state of [create] — clock at zero, empty
    queue, zeroed counters — while {e keeping} the grown heap array, so
    reusing one engine across many runs amortises heap growth.  Pending
    events (and the closures they capture) are dropped and overwritten.
    [trace] replaces the engine's trace (omit it to keep the current
    one).  A run on a reset engine is observationally identical to a
    run on a fresh engine: this is the soundness basis for per-domain
    scratch reuse in sweeps. *)

val now : t -> Vtime.t

val trace : t -> Trace.t

val pending : t -> int
(** Number of queued events (cancelled events are counted until they are
    drained; the count is zero exactly when the queue is empty). *)

val events_run : t -> int
(** Number of events executed so far. *)

val schedule :
  t -> ?rank:rank -> delay:Vtime.t -> label:Label.t -> (unit -> unit) -> handle
(** [schedule t ~delay ~label f] runs [f] at time [now t + delay].
    [rank] defaults to [Background].  Pass [Label.Static "literal"] —
    a constant constructor application is static data, so the label is
    free; use [Label.Dynamic] only for genuinely computed labels. *)

val schedule_at :
  t -> ?rank:rank -> at:Vtime.t -> label:Label.t -> (unit -> unit) -> handle
(** Absolute-time variant.  @raise Invalid_argument if [at] is in the
    past. *)

val cancel : handle -> unit
(** Cancelling an already-run or already-cancelled event is a no-op. *)

val cancelled : handle -> bool

val step : t -> bool
(** Runs the next event.  [false] when the queue is empty. *)

val run : ?until:Vtime.t -> ?max_events:int -> t -> unit
(** Runs events until the queue empties, virtual time would exceed
    [until], or [max_events] have executed (a runaway guard; default
    ten million).  Events scheduled beyond [until] remain queued. *)
