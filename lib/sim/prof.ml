(* Flat wall-clock profiler: attributes host time and entry counts to a
   fixed set of subsystem buckets.  Instrumented code brackets each
   subsystem entry with {!enter}/{!leave}; whatever runs outside any
   bracket is charged to [Engine] (the event loop, heap maintenance and
   scheduling glue).  Entering a bucket suspends the one currently
   charged, so every wall-clock moment lands in exactly one bucket — a
   flat self-time profile, not a call tree.

   Wall-clock readings are inherently nondeterministic, so a profile
   must never reach a byte-compared artifact: it lives in the report
   record, the human-readable output and the bench JSON — never in a
   serialised report or the snapshot stream. *)

type bucket = Engine | Network | Protocol | Locks | Auditor

let n_buckets = 5

let index = function
  | Engine -> 0
  | Network -> 1
  | Protocol -> 2
  | Locks -> 3
  | Auditor -> 4

let bucket_names =
  [| "engine"; "network"; "protocol"; "lock-manager"; "auditor" |]

type t = {
  seconds : float array;
  entries : int array;
  mutable stack : int array;  (* suspended bucket indices *)
  mutable sp : int;
  mutable cur : int;  (* bucket currently accruing time *)
  mutable mark : float;  (* when [cur] started accruing *)
}

let create () =
  {
    seconds = Array.make n_buckets 0.;
    entries = Array.make n_buckets 0;
    stack = Array.make 16 0;
    sp = 0;
    cur = index Engine;
    mark = Unix.gettimeofday ();
  }

let charge t now =
  t.seconds.(t.cur) <- t.seconds.(t.cur) +. (now -. t.mark);
  t.mark <- now

let enter t bucket =
  let i = index bucket in
  charge t (Unix.gettimeofday ());
  if t.sp = Array.length t.stack then begin
    let grown = Array.make (2 * t.sp) 0 in
    Array.blit t.stack 0 grown 0 t.sp;
    t.stack <- grown
  end;
  t.stack.(t.sp) <- t.cur;
  t.sp <- t.sp + 1;
  t.cur <- i;
  t.entries.(i) <- t.entries.(i) + 1

let leave t =
  if t.sp = 0 then invalid_arg "Prof.leave: nothing entered";
  charge t (Unix.gettimeofday ());
  t.sp <- t.sp - 1;
  t.cur <- t.stack.(t.sp)

(* Replace a bucket's entry count with a better-sourced number (the
   engine bucket is residual time, so its entries come from
   [Engine.events_run] rather than from [enter] calls). *)
let note_entries t bucket n = t.entries.(index bucket) <- n

type row = { row_bucket : string; row_seconds : float; row_entries : int }

type report = { rows : row list; total_seconds : float }

let report t =
  charge t (Unix.gettimeofday ());
  {
    rows =
      List.init n_buckets (fun i ->
          {
            row_bucket = bucket_names.(i);
            row_seconds = t.seconds.(i);
            row_entries = t.entries.(i);
          });
    total_seconds = Array.fold_left ( +. ) 0. t.seconds;
  }

let pp fmt r =
  Format.fprintf fmt "profile (wall clock, flat): total %.1f ms@."
    (r.total_seconds *. 1000.);
  List.iter
    (fun row ->
      Format.fprintf fmt "  %-12s %9.2f ms %5.1f%% %9d entries@."
        row.row_bucket
        (row.row_seconds *. 1000.)
        (if r.total_seconds > 0. then
           100. *. row.row_seconds /. r.total_seconds
         else 0.)
        row.row_entries)
    r.rows
