type rank = Delivery | Timer | Background

let rank_code = function Delivery -> 0 | Timer -> 1 | Background -> 2

type handle = { mutable live : bool }

type event = {
  at : Vtime.t;
  code : int;
  seq : int;
  label : string;
  action : unit -> unit;
  handle : handle;
}

type t = {
  mutable clock : Vtime.t;
  queue : event Heap.t;
  trace : Trace.t;
  mutable next_seq : int;
  mutable executed : int;
  mutable live_pending : int;
}

let compare_event a b =
  let c = Vtime.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.code b.code in
    if c <> 0 then c else Int.compare a.seq b.seq

let create ?trace () =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  {
    clock = Vtime.zero;
    queue = Heap.create ~cmp:compare_event ();
    trace;
    next_seq = 0;
    executed = 0;
    live_pending = 0;
  }

let now t = t.clock

let trace t = t.trace

let pending t = t.live_pending

let events_run t = t.executed

let schedule_at t ?(rank = Background) ~at ~label action =
  if Vtime.( < ) at t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Vtime.pp at
         Vtime.pp t.clock);
  let handle = { live = true } in
  let event =
    { at; code = rank_code rank; seq = t.next_seq; label; action; handle }
  in
  t.next_seq <- t.next_seq + 1;
  t.live_pending <- t.live_pending + 1;
  Heap.push t.queue event;
  handle

let schedule t ?rank ~delay ~label action =
  schedule_at t ?rank ~at:(Vtime.add t.clock delay) ~label action

let cancel handle =
  handle.live <- false

let cancelled handle = not handle.live

(* Cancelled events stay in the heap and are skipped at pop time, so
   [pending] counts queued events including not-yet-drained cancelled
   ones; it reaches zero exactly when the queue is exhausted. *)

let rec next_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some event ->
      t.live_pending <- t.live_pending - 1;
      if event.handle.live then Some event else next_live t

let step t =
  match next_live t with
  | None -> false
  | Some event ->
      t.clock <- event.at;
      event.handle.live <- false;
      t.executed <- t.executed + 1;
      event.action ();
      true

let default_max_events = 10_000_000

let run ?(until = Vtime.infinity) ?(max_events = default_max_events) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some event when Vtime.( < ) until event.at -> continue := false
    | Some _ ->
        if step t then decr budget else continue := false
  done;
  if !budget = 0 then
    Trace.addf t.trace ~at:t.clock ~topic:"engine"
      "run aborted after %d events (runaway guard)" max_events
