type rank = Delivery | Timer | Background

let rank_code = function Delivery -> 0 | Timer -> 1 | Background -> 2

(* One block per scheduled event: the handle IS the event (the old
   separate handle record was a second allocation per schedule).  The
   [(rank, seq)] tie-break is packed into a single immediate int so the
   heap ordering is two int comparisons, no closure, no field chase
   through a nested record.  [at] stays separate because it may be
   [Vtime.infinity] (= max_int) and cannot share a word. *)
type event = {
  at : Vtime.t;
  key : int;  (* (rank_code lsl 60) lor seq; seq < 2^60 *)
  mutable live : bool;
  label : Label.t;
  action : unit -> unit;
}

type handle = event

let key_bits = 60

(* [Vtime.t] is an int by its public definition, so these compare as
   unboxed ints. *)
let[@inline] precedes a b = a.at < b.at || (a.at = b.at && a.key < b.key)

let dummy =
  {
    at = Vtime.zero;
    key = 0;
    live = false;
    label = Label.Static "<none>";
    action = ignore;
  }

let tmpl_runaway =
  Trace.register_template (fun b _ n _ _ _ _ ->
      Buffer.add_string b "run aborted after ";
      Buffer.add_string b (string_of_int n);
      Buffer.add_string b " events (runaway guard)")

type t = {
  mutable clock : Vtime.t;
  (* Monomorphic binary min-heap with [precedes] inlined at each sift
     step.  The generic polymorphic {!Heap} stays in the library as the
     fallback; this engine no longer pays its closure indirection. *)
  mutable heap : event array;
  mutable size : int;
  mutable trace : Trace.t;
  mutable next_seq : int;
  mutable executed : int;
}

let create ?trace () =
  let trace = match trace with Some t -> t | None -> Trace.create () in
  {
    clock = Vtime.zero;
    heap = [||];
    size = 0;
    trace;
    next_seq = 0;
    executed = 0;
  }

let now t = t.clock

let trace t = t.trace

(* Rewind to the just-created state while keeping the grown heap array.
   The live region is wiped with the sentinel so stale events (and the
   closures they capture) are unreachable; a run over a reset engine is
   observationally identical to one over [create].  This is what makes
   an engine a sound per-domain scratch for sweeps: reuse amortises the
   heap's growth-by-doubling across thousands of runs. *)
let reset ?trace t =
  (match trace with Some tr -> t.trace <- tr | None -> ());
  Array.fill t.heap 0 t.size dummy;
  t.size <- 0;
  t.clock <- Vtime.zero;
  t.next_seq <- 0;
  t.executed <- 0

(* Cancelled events stay in the heap and are skipped at pop time, so
   [pending] counts queued events including not-yet-drained cancelled
   ones; it reaches zero exactly when the queue is exhausted. *)
let pending t = t.size

let events_run t = t.executed

let heap_push t event =
  (if t.size = Array.length t.heap then
     let heap = Array.make (max 16 (2 * t.size)) dummy in
     Array.blit t.heap 0 heap 0 t.size;
     t.heap <- heap);
  let heap = t.heap in
  let i = ref t.size in
  t.size <- t.size + 1;
  let sifting = ref true in
  while !sifting && !i > 0 do
    let parent = (!i - 1) / 2 in
    let p = Array.unsafe_get heap parent in
    if precedes event p then (
      Array.unsafe_set heap !i p;
      i := parent)
    else sifting := false
  done;
  Array.unsafe_set heap !i event

(* Caller checks [t.size > 0]. *)
let heap_pop t =
  let heap = t.heap in
  let root = Array.unsafe_get heap 0 in
  let n = t.size - 1 in
  t.size <- n;
  let last = Array.unsafe_get heap n in
  Array.unsafe_set heap n dummy;
  if n > 0 then (
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= n then sifting := false
      else
        let r = l + 1 in
        let c =
          if r < n && precedes (Array.unsafe_get heap r) (Array.unsafe_get heap l)
          then r
          else l
        in
        let child = Array.unsafe_get heap c in
        if precedes child last then (
          Array.unsafe_set heap !i child;
          i := c)
        else sifting := false
    done;
    Array.unsafe_set heap !i last);
  root

let schedule_at t ?(rank = Background) ~at ~label action =
  if Vtime.( < ) at t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Vtime.pp at
         Vtime.pp t.clock);
  let event =
    { at; key = (rank_code rank lsl key_bits) lor t.next_seq; live = true;
      label; action }
  in
  t.next_seq <- t.next_seq + 1;
  heap_push t event;
  event

let schedule t ?rank ~delay ~label action =
  schedule_at t ?rank ~at:(Vtime.add t.clock delay) ~label action

let cancel handle = handle.live <- false

let cancelled handle = not handle.live

let rec step t =
  if t.size = 0 then false
  else
    let event = heap_pop t in
    if not event.live then step t
    else (
      t.clock <- event.at;
      event.live <- false;
      t.executed <- t.executed + 1;
      event.action ();
      true)

let default_max_events = 10_000_000

let run ?(until = Vtime.infinity) ?(max_events = default_max_events) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue && !budget > 0 do
    if t.size = 0 then continue := false
    else if Vtime.( < ) until (Array.unsafe_get t.heap 0).at then
      continue := false
    else if step t then decr budget
    else continue := false
  done;
  if !budget = 0 then
    Trace.log1 t.trace ~at:t.clock
      ~topic:(Trace.topic t.trace "engine")
      tmpl_runaway max_events
