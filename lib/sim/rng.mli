(** Deterministic splittable pseudo-random number generator.

    A splitmix64 core.  Every simulation run is a pure function of its
    seed, so counterexamples found by the checker replay exactly.  The
    generator is intentionally not cryptographic. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t].  Used to
    give each site / link its own stream so adding a message on one link
    does not perturb delays on another. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 64-bit values. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].  [bound] must be
    positive.  @raise Invalid_argument otherwise. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [lo > hi]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
