type entry = { at : Vtime.t; topic : string; text : string }

type t = { enabled : bool; mutable rev_entries : entry list; mutable count : int }

let create ?(enabled = true) () = { enabled; rev_entries = []; count = 0 }

let enabled t = t.enabled

let add t ~at ~topic text =
  if t.enabled then begin
    t.rev_entries <- { at; topic; text } :: t.rev_entries;
    t.count <- t.count + 1
  end

let addf t ~at ~topic fmt =
  if t.enabled then
    Format.kasprintf (fun text -> add t ~at ~topic text) fmt
  else Format.ikfprintf (fun _ -> ()) Format.std_formatter fmt

let entries t = List.rev t.rev_entries

let length t = t.count

let filter ~topic t =
  List.filter (fun e -> String.equal e.topic topic) (entries t)

let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec scan i =
      if i + nn > nh then false
      else if String.equal (String.sub haystack i nn) needle then true
      else scan (i + 1)
    in
    scan 0

let find t ~pattern =
  List.find_opt (fun e -> contains_substring e.text pattern) (entries t)

let mem t ~pattern = Option.is_some (find t ~pattern)

let pp_entry fmt e =
  Format.fprintf fmt "[%6s] %-8s %s"
    (Format.asprintf "%a" Vtime.pp e.at)
    e.topic e.text

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) (entries t)
