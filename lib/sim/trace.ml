type entry = { at : Vtime.t; topic : string; text : string }

(* ------------------------------------------------------------------ *)
(* Template registry                                                   *)
(*                                                                     *)
(* A template is a renderer closure registered once, at module-init    *)
(* time, by the library that owns the format (network, protocols, tm,  *)
(* cluster).  The registry is global mutable state shared by every     *)
(* trace; it is only ever written before any worker domain spawns, so  *)
(* the parallel sweeps read it without synchronisation.                *)
(* ------------------------------------------------------------------ *)

type renderer =
  Buffer.t -> (int -> string) -> int -> int -> int -> int -> int -> unit

type template = int

let renderers = ref (Array.make 16 (None : renderer option))

let n_renderers = ref 0

let register_template r =
  let i = !n_renderers in
  if i = Array.length !renderers then begin
    let grown = Array.make (2 * i) None in
    Array.blit !renderers 0 grown 0 i;
    renderers := grown
  end;
  !renderers.(i) <- Some r;
  incr n_renderers;
  i

(* The built-in template for static (or per-call interned) text: arg 0
   is a string id in the trace's intern table. *)
let text_template =
  register_template (fun buf lookup a0 _ _ _ _ ->
      Buffer.add_string buf (lookup a0))

(* ------------------------------------------------------------------ *)
(* Storage                                                             *)
(*                                                                     *)
(* A record is [stride] consecutive ints in a flat ring: virtual time, *)
(* interned topic id, template id, then up to five template arguments. *)
(* Template id [-1] marks an eager entry whose pre-rendered text lives *)
(* in the parallel [texts] ring (the legacy [add]/[addf] path).  Both  *)
(* rings grow by doubling until [capacity] entries, then wrap: entry   *)
(* number [i] (0-based since creation) lives at slot [i mod length],   *)
(* so the newest [capacity] entries are retained.  [appended] is the   *)
(* total ever appended — [length] keeps its historical "number of      *)
(* adds" meaning even after wrapping.                                  *)
(* ------------------------------------------------------------------ *)

let stride = 8

type t = {
  enabled : bool;
  capacity : int;
  mutable words : int array;
  mutable texts : string array;
  mutable appended : int;
  (* per-trace intern table: topics, static label text, dynamic strings *)
  ids : (string, int) Hashtbl.t;
  mutable strs : string array;
  mutable n_strs : int;
  scratch : Buffer.t;  (** deferred-rendering scratch; reused per query *)
}

let default_capacity = 65536

let empty_text = ""

(* Disabled traces never intern and never render, so they can all share
   one dummy table and scratch buffer instead of allocating their own
   (sweeps create one disabled trace per run). *)
let dummy_ids : (string, int) Hashtbl.t = Hashtbl.create 1

let dummy_scratch = Buffer.create 1

let create ?(enabled = true) ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  {
    enabled;
    capacity;
    words = [||];
    texts = [||];
    appended = 0;
    ids = (if enabled then Hashtbl.create 64 else dummy_ids);
    strs = [||];
    n_strs = 0;
    scratch = (if enabled then Buffer.create 256 else dummy_scratch);
  }

let enabled t = t.enabled

let capacity t = t.capacity

let length t = t.appended

let retained t = min t.appended t.capacity

let dropped t = t.appended - retained t

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* [Hashtbl.find] instead of [find_opt]: the hit path (every log call
   with a repeated string) must not allocate an option. *)
let intern t s =
  if not t.enabled then 0
  else
    match Hashtbl.find t.ids s with
    | i -> i
    | exception Not_found ->
        let i = t.n_strs in
        if i = Array.length t.strs then begin
          let grown = Array.make (max 32 (2 * i)) empty_text in
          Array.blit t.strs 0 grown 0 i;
          t.strs <- grown
        end;
        t.strs.(i) <- s;
        t.n_strs <- i + 1;
        Hashtbl.add t.ids s i;
        i

type topic = int

let topic = intern

let lookup t i = t.strs.(i)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

(* Claim the next slot, growing the rings if still under capacity.
   Only called with [t.enabled]. *)
let claim t =
  let len = Array.length t.texts in
  if t.appended = len && len < t.capacity then begin
    let n = min t.capacity (max 64 (2 * len)) in
    let words = Array.make (n * stride) 0 in
    Array.blit t.words 0 words 0 (len * stride);
    let texts = Array.make n empty_text in
    Array.blit t.texts 0 texts 0 len;
    t.words <- words;
    t.texts <- texts
  end;
  let slot = t.appended mod Array.length t.texts in
  t.appended <- t.appended + 1;
  (* a wrapped slot may hold a stale eager text: drop the reference so
     the ring never pins old strings alive (and [-1] templates never
     read a wrong one) *)
  if t.texts.(slot) != empty_text then t.texts.(slot) <- empty_text;
  slot

let add t ~at ~topic text =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    t.words.(base) <- Vtime.to_int at;
    t.words.(base + 1) <- intern t topic;
    t.words.(base + 2) <- -1;
    t.texts.(slot) <- text
  end

(* The disabled branch must consume the format arguments without
   touching any real formatter: ikfprintf never writes, but it still
   needs a formatter argument, and handing it [std_formatter] (as an
   earlier revision did) pins the shared stdout formatter into the
   fast path.  A dedicated null formatter keeps the no-op pure. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let addf t ~at ~topic fmt =
  if t.enabled then Format.kasprintf (fun text -> add t ~at ~topic text) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

(* The typed fast path: a handful of int stores per record.  Callers
   are expected to test {!enabled} once (a cached flag) and compute the
   arguments inside that guard, so a disabled trace costs nothing. *)

let log5 t ~at ~topic tmpl a0 a1 a2 a3 a4 =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    let w = t.words in
    w.(base) <- Vtime.to_int at;
    w.(base + 1) <- topic;
    w.(base + 2) <- tmpl;
    w.(base + 3) <- a0;
    w.(base + 4) <- a1;
    w.(base + 5) <- a2;
    w.(base + 6) <- a3;
    w.(base + 7) <- a4
  end

let log4 t ~at ~topic tmpl a0 a1 a2 a3 =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    let w = t.words in
    w.(base) <- Vtime.to_int at;
    w.(base + 1) <- topic;
    w.(base + 2) <- tmpl;
    w.(base + 3) <- a0;
    w.(base + 4) <- a1;
    w.(base + 5) <- a2;
    w.(base + 6) <- a3
  end

let log3 t ~at ~topic tmpl a0 a1 a2 =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    let w = t.words in
    w.(base) <- Vtime.to_int at;
    w.(base + 1) <- topic;
    w.(base + 2) <- tmpl;
    w.(base + 3) <- a0;
    w.(base + 4) <- a1;
    w.(base + 5) <- a2
  end

let log2 t ~at ~topic tmpl a0 a1 =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    let w = t.words in
    w.(base) <- Vtime.to_int at;
    w.(base + 1) <- topic;
    w.(base + 2) <- tmpl;
    w.(base + 3) <- a0;
    w.(base + 4) <- a1
  end

let log1 t ~at ~topic tmpl a0 =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    let w = t.words in
    w.(base) <- Vtime.to_int at;
    w.(base + 1) <- topic;
    w.(base + 2) <- tmpl;
    w.(base + 3) <- a0
  end

let log0 t ~at ~topic tmpl =
  if t.enabled then begin
    let slot = claim t in
    let base = slot * stride in
    let w = t.words in
    w.(base) <- Vtime.to_int at;
    w.(base + 1) <- topic;
    w.(base + 2) <- tmpl
  end

let log_text t ~at ~topic text = log1 t ~at ~topic text_template (intern t text)

(* ------------------------------------------------------------------ *)
(* Deferred rendering                                                  *)
(* ------------------------------------------------------------------ *)

(* Oldest retained entry is number [dropped t]; iteration walks entry
   numbers forward and indexes mod the ring length. *)

let text_of_slot t slot =
  let base = slot * stride in
  let w = t.words in
  let tmpl = w.(base + 2) in
  if tmpl < 0 then t.texts.(slot)
  else begin
    let buf = t.scratch in
    Buffer.clear buf;
    (match !renderers.(tmpl) with
    | Some render ->
        render buf (lookup t) w.(base + 3) w.(base + 4) w.(base + 5)
          w.(base + 6) w.(base + 7)
    | None -> Buffer.add_string buf "<unregistered template>");
    Buffer.contents buf
  end

let entry_of_slot t slot =
  let base = slot * stride in
  {
    at = Vtime.of_int t.words.(base);
    topic = t.strs.(t.words.(base + 1));
    text = text_of_slot t slot;
  }

let get t i = entry_of_slot t (i mod Array.length t.texts)

let iter f t =
  for i = dropped t to t.appended - 1 do
    f (get t i)
  done

let iter_topic ~topic f t =
  if t.appended > 0 then
    match Hashtbl.find_opt t.ids topic with
    | None -> ()
    | Some tid ->
        let len = Array.length t.texts in
        for i = dropped t to t.appended - 1 do
          let slot = i mod len in
          if t.words.((slot * stride) + 1) = tid then f (entry_of_slot t slot)
        done

(* Index-based substring search: no per-position [String.sub]. *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else if nn > nh then false
  else begin
    let found = ref false in
    let i = ref 0 in
    let last = nh - nn in
    while (not !found) && !i <= last do
      let j = ref 0 in
      while
        !j < nn
        && Char.equal
             (String.unsafe_get haystack (!i + !j))
             (String.unsafe_get needle !j)
      do
        incr j
      done;
      if !j = nn then found := true else incr i
    done;
    !found
  end

let iter_matching ~pattern f t =
  let len = Array.length t.texts in
  for i = dropped t to t.appended - 1 do
    let slot = i mod len in
    if contains_substring (text_of_slot t slot) pattern then
      f (entry_of_slot t slot)
  done

(* Build oldest-first lists by consing newest-first. *)
let entries t =
  let acc = ref [] in
  for i = t.appended - 1 downto dropped t do
    acc := get t i :: !acc
  done;
  !acc

let filter ~topic t =
  let acc = ref [] in
  iter_topic ~topic (fun e -> acc := e :: !acc) t;
  List.rev !acc

let find t ~pattern =
  let result = ref None in
  let i = ref (dropped t) in
  let len = Array.length t.texts in
  while Option.is_none !result && !i < t.appended do
    let slot = !i mod len in
    if contains_substring (text_of_slot t slot) pattern then
      result := Some (entry_of_slot t slot);
    incr i
  done;
  !result

let mem t ~pattern =
  let hit = ref false in
  let i = ref (dropped t) in
  let len = Array.length t.texts in
  while (not !hit) && !i < t.appended do
    if contains_substring (text_of_slot t (!i mod len)) pattern then hit := true;
    incr i
  done;
  !hit

let pp_entry fmt e =
  Format.fprintf fmt "[%6s] %-8s %s"
    (Format.asprintf "%a" Vtime.pp e.at)
    e.topic e.text

let pp fmt t =
  if dropped t > 0 then
    Format.fprintf fmt "... (%d earlier entries dropped by the ring)@."
      (dropped t);
  iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) t
