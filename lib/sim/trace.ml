type entry = { at : Vtime.t; topic : string; text : string }

(* A bounded ring buffer.  [data] grows by doubling until it reaches
   [capacity], then wraps: entry number [i] (0-based since creation)
   lives at [i mod capacity], so the newest [capacity] entries are
   retained and older ones are overwritten.  [appended] is the total
   ever appended — [length] keeps its historical "number of adds"
   meaning even after wrapping. *)
type t = {
  enabled : bool;
  capacity : int;
  mutable data : entry array;
  mutable appended : int;
}

let default_capacity = 65536

let create ?(enabled = true) ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { enabled; capacity; data = [||]; appended = 0 }

let enabled t = t.enabled

let capacity t = t.capacity

let length t = t.appended

let retained t = min t.appended t.capacity

let dropped t = t.appended - retained t

let add t ~at ~topic text =
  if t.enabled then begin
    let entry = { at; topic; text } in
    let cap = Array.length t.data in
    (if t.appended = cap && cap < t.capacity then begin
       (* still growing: double, seeded with [entry] so no dummy needed *)
       let data = Array.make (min t.capacity (max 64 (2 * cap))) entry in
       Array.blit t.data 0 data 0 cap;
       t.data <- data
     end);
    t.data.(t.appended mod Array.length t.data) <- entry;
    t.appended <- t.appended + 1
  end

(* The disabled branch must consume the format arguments without
   touching any real formatter: ikfprintf never writes, but it still
   needs a formatter argument, and handing it [std_formatter] (as an
   earlier revision did) pins the shared stdout formatter into the
   fast path.  A dedicated null formatter keeps the no-op pure. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let addf t ~at ~topic fmt =
  if t.enabled then Format.kasprintf (fun text -> add t ~at ~topic text) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

(* Oldest retained entry is number [dropped t]; iteration walks entry
   numbers forward and indexes mod the array length — no List.rev. *)

let get t i = t.data.(i mod Array.length t.data)

let iter f t =
  for i = dropped t to t.appended - 1 do
    f (get t i)
  done

(* Build oldest-first lists by consing newest-first. *)
let entries t =
  let acc = ref [] in
  for i = t.appended - 1 downto dropped t do
    acc := get t i :: !acc
  done;
  !acc

let filter ~topic t =
  let acc = ref [] in
  for i = t.appended - 1 downto dropped t do
    let e = get t i in
    if String.equal e.topic topic then acc := e :: !acc
  done;
  !acc

(* Index-based substring search: the old version allocated a fresh
   [String.sub] per candidate position. *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else if nn > nh then false
  else begin
    let found = ref false in
    let i = ref 0 in
    let last = nh - nn in
    while (not !found) && !i <= last do
      let j = ref 0 in
      while
        !j < nn
        && Char.equal
             (String.unsafe_get haystack (!i + !j))
             (String.unsafe_get needle !j)
      do
        incr j
      done;
      if !j = nn then found := true else incr i
    done;
    !found
  end

let find t ~pattern =
  let result = ref None in
  let i = ref (dropped t) in
  while Option.is_none !result && !i < t.appended do
    let e = get t !i in
    if contains_substring e.text pattern then result := Some e;
    incr i
  done;
  !result

let mem t ~pattern = Option.is_some (find t ~pattern)

let pp_entry fmt e =
  Format.fprintf fmt "[%6s] %-8s %s"
    (Format.asprintf "%a" Vtime.pp e.at)
    e.topic e.text

let pp fmt t =
  if dropped t > 0 then
    Format.fprintf fmt "... (%d earlier entries dropped by the ring)@."
      (dropped t);
  iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) t
