(** Structured execution traces.

    Every layer of the stack (network, protocol actors, database) appends
    timestamped entries tagged with a topic.  Traces make the paper's
    counterexamples inspectable: the example programs replay them
    entry-by-entry.

    Storage is binary: each record is a handful of packed ints (virtual
    time, interned topic id, template id, template arguments) in a flat
    ring buffer — the newest {!capacity} records are retained, older
    ones are overwritten.  No string is built when a record is appended;
    rendering happens lazily, at query/export time, through a global
    registry of template renderers plus a per-trace string-interning
    table.  This is what makes always-on tracing affordable: the hot
    path costs a few int stores instead of a [Format.kasprintf].

    The legacy {!add}/{!addf} calls still work (they store an eagerly
    rendered string alongside the binary record) — they are for cold
    paths and tests; hot call sites use the typed [log*] API.  Disabled
    traces are pure no-ops on every write path. *)

type entry = {
  at : Vtime.t;
  topic : string;  (** e.g. ["net"], ["site2"], ["master"], ["db"]. *)
  text : string;
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [create ()] is an empty trace.  With [~enabled:false], every write
    is a no-op — sweeps use disabled traces to stay allocation-light.
    [capacity] bounds retention (default 65536 entries).
    @raise Invalid_argument if [capacity < 1]. *)

val enabled : t -> bool

val capacity : t -> int

val dropped : t -> int
(** Entries overwritten by the ring so far; [0] until the trace
    outgrows its capacity. *)

(** {1 Templates and interning} *)

type template
(** A registered record format: renders a record's five int arguments
    into text at query time. *)

type renderer =
  Buffer.t -> (int -> string) -> int -> int -> int -> int -> int -> unit
(** [render buf lookup a0 a1 a2 a3 a4] appends the rendered text to
    [buf].  [lookup] resolves ids from the owning trace's intern table
    (for arguments that are interned strings).  A renderer must be pure
    and must reproduce, byte for byte, the format it replaced. *)

val register_template : renderer -> template
(** Register a record format.  The registry is global and append-only;
    call it only from module initialisation (before any worker domain
    spawns) — never per trace or per run. *)

type topic
(** An interned topic id, valid only for the trace that produced it. *)

val topic : t -> string -> topic
(** Intern a topic.  Cache the result at component-creation time; on a
    disabled trace this returns a dummy. *)

val intern : t -> string -> int
(** Intern an arbitrary string (state names, reasons) for use as a
    template argument; stable for the lifetime of the trace.  Returns a
    dummy on a disabled trace. *)

(** {1 Writing} *)

val add : t -> at:Vtime.t -> topic:string -> string -> unit
(** Legacy eager append: stores the already-rendered [text]. *)

val addf :
  t ->
  at:Vtime.t ->
  topic:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted {!add}.  The format arguments are not evaluated when the
    trace is disabled. *)

val log0 : t -> at:Vtime.t -> topic:topic -> template -> unit

val log1 : t -> at:Vtime.t -> topic:topic -> template -> int -> unit

val log2 : t -> at:Vtime.t -> topic:topic -> template -> int -> int -> unit

val log3 :
  t -> at:Vtime.t -> topic:topic -> template -> int -> int -> int -> unit

val log4 :
  t ->
  at:Vtime.t ->
  topic:topic ->
  template ->
  int ->
  int ->
  int ->
  int ->
  unit

val log5 :
  t ->
  at:Vtime.t ->
  topic:topic ->
  template ->
  int ->
  int ->
  int ->
  int ->
  int ->
  unit
(** Typed binary append: a few int stores, no rendering.  Callers
    should test {!enabled} once (a cached flag) and compute arguments
    inside that guard so a disabled trace costs nothing. *)

val log_text : t -> at:Vtime.t -> topic:topic -> string -> unit
(** Append a text-only record through the built-in text template (the
    string is interned, so repeated messages are stored as one int). *)

(** {1 Reading (lazy rendering)} *)

val entries : t -> entry list
(** Retained entries, in append (chronological) order. *)

val iter : (entry -> unit) -> t -> unit
(** Oldest retained entry first.  Renders each entry's text on the
    fly. *)

val iter_topic : topic:string -> (entry -> unit) -> t -> unit
(** Like {!iter} restricted to one topic; matches on interned topic ids
    so non-matching records are skipped without rendering. *)

val iter_matching : pattern:string -> (entry -> unit) -> t -> unit
(** Like {!iter} restricted to entries whose text contains [pattern];
    no intermediate list. *)

val length : t -> int
(** Total entries ever appended (retained + dropped). *)

val filter : topic:string -> t -> entry list
(** Entries whose topic equals [topic]. *)

val find : t -> pattern:string -> entry option
(** First retained entry whose text contains [pattern] as a
    substring. *)

val mem : t -> pattern:string -> bool

val pp : Format.formatter -> t -> unit
(** One line per entry: [\[  123\] topic: text]. *)

val pp_entry : Format.formatter -> entry -> unit
