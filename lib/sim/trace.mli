(** Structured execution traces.

    Every layer of the stack (network, protocol actors, database) appends
    timestamped entries tagged with a topic.  Traces make the paper's
    counterexamples inspectable: the example programs replay them
    entry-by-entry.

    Storage is a bounded ring buffer: the newest {!capacity} entries
    are retained, older ones are overwritten, and all read paths
    iterate forward over the ring (no per-call [List.rev]).  Disabled
    traces are pure no-ops on every write path. *)

type entry = {
  at : Vtime.t;
  topic : string;  (** e.g. ["net"], ["site2"], ["master"], ["db"]. *)
  text : string;
}

type t

val create : ?enabled:bool -> ?capacity:int -> unit -> t
(** [create ()] is an empty trace.  With [~enabled:false], {!add} is a
    no-op — sweeps use disabled traces to stay allocation-light.
    [capacity] bounds retention (default 65536 entries).
    @raise Invalid_argument if [capacity < 1]. *)

val enabled : t -> bool

val capacity : t -> int

val dropped : t -> int
(** Entries overwritten by the ring so far; [0] until the trace
    outgrows its capacity. *)

val add : t -> at:Vtime.t -> topic:string -> string -> unit

val addf :
  t ->
  at:Vtime.t ->
  topic:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted {!add}.  The format arguments are not evaluated when the
    trace is disabled. *)

val entries : t -> entry list
(** Retained entries, in append (chronological) order. *)

val iter : (entry -> unit) -> t -> unit
(** Oldest retained entry first; allocates nothing. *)

val length : t -> int
(** Total entries ever appended (retained + dropped). *)

val filter : topic:string -> t -> entry list
(** Entries whose topic equals [topic]. *)

val find : t -> pattern:string -> entry option
(** First retained entry whose text contains [pattern] as a
    substring. *)

val mem : t -> pattern:string -> bool

val pp : Format.formatter -> t -> unit
(** One line per entry: [\[  123\] topic: text]. *)

val pp_entry : Format.formatter -> entry -> unit
