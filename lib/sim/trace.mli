(** Structured execution traces.

    Every layer of the stack (network, protocol actors, database) appends
    timestamped entries tagged with a topic.  Traces make the paper's
    counterexamples inspectable: the example programs replay them
    entry-by-entry. *)

type entry = {
  at : Vtime.t;
  topic : string;  (** e.g. ["net"], ["site2"], ["master"], ["db"]. *)
  text : string;
}

type t

val create : ?enabled:bool -> unit -> t
(** [create ()] is an empty trace.  With [~enabled:false], {!add} is a
    no-op — sweeps use disabled traces to stay allocation-light. *)

val enabled : t -> bool

val add : t -> at:Vtime.t -> topic:string -> string -> unit

val addf :
  t ->
  at:Vtime.t ->
  topic:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted {!add}.  The format arguments are not evaluated when the
    trace is disabled. *)

val entries : t -> entry list
(** All entries, in append (chronological) order. *)

val length : t -> int

val filter : topic:string -> t -> entry list
(** Entries whose topic equals [topic]. *)

val find : t -> pattern:string -> entry option
(** First entry whose text contains [pattern] as a substring. *)

val mem : t -> pattern:string -> bool

val pp : Format.formatter -> t -> unit
(** One line per entry: [\[  123\] topic: text]. *)

val pp_entry : Format.formatter -> entry -> unit
