(** A polymorphic binary min-heap used as the simulator's event queue.

    Elements are ordered by a caller-supplied total order.  The heap is
    stable if the order itself breaks ties (the simulation engine orders
    events by [(time, rank, sequence)] so that execution is fully
    deterministic). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [create ~cmp ()] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list_unordered : 'a t -> 'a list
(** Snapshot of the contents in internal (heap) order; used by tests and
    introspection only. *)
