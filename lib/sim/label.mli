(** Event labels that cost nothing on the hot path.

    Engine call sites used to pay for a label string per scheduled
    event even when tracing was off.  A [Label.t] keeps the common
    case free: [Static "net-hop"] with a literal argument is lifted to
    static data by the compiler (zero allocation per call), and
    [Dynamic f] defers the formatting work until something actually
    reads the label — which only the runaway-guard diagnostics and
    debuggers do. *)

type t =
  | Static of string
      (** Use with a string literal; the ~15 fixed engine labels
          ("net-hop", "net-bounce", "w1-timeout", "crash", ...). *)
  | Dynamic of (unit -> string)
      (** Forced only when the label is rendered; never on schedule. *)

val force : t -> string
(** Render the label. [Static s] returns [s]; [Dynamic f] calls [f]. *)

val pp : Format.formatter -> t -> unit
