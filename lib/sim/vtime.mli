(** Virtual time.

    All simulation time is integer "ticks".  The paper's analysis is in
    units of [T], the longest end-to-end propagation delay; scenarios fix
    a tick value for [T] (e.g. 1000) so that every bound of the paper
    (2T, 3T, 5T, 6T, 8T) is an exact integer. *)

type t = int
(** A point in virtual time, or a duration.  Never negative. *)

val zero : t

val infinity : t
(** A time later than every schedulable event ([max_int]). *)

val add : t -> t -> t
(** [add t d] is [t + d]; saturates at {!infinity}. *)

val sub : t -> t -> t
(** [sub t d] is [t - d], clipped at {!zero}. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val min : t -> t -> t

val max : t -> t -> t

val of_int : int -> t
(** [of_int n] checks [n >= 0]. @raise Invalid_argument otherwise. *)

val to_int : t -> int

val pp : Format.formatter -> t -> unit
(** Prints ticks, with [inf] for {!infinity}. *)

val buf : Buffer.t -> t -> unit
(** Byte-identical to {!pp}, for trace-template renderers. *)

val pp_in_t : unit_t:t -> Format.formatter -> t -> unit
(** [pp_in_t ~unit_t fmt t] prints [t] as a multiple of the propagation
    bound, e.g. ["2.50T"]. *)
