type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create (mix (Int64.logxor seed 0xA5A5A5A5A5A5A5A5L))

let copy t = { state = t.state }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's tagged int non-negatively. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t ~bound:(hi - lo + 1)

let float t =
  let v = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t ~bound:(List.length xs))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
