(** The long-running cluster runtime.

    Where {!Commit_db.Tm} runs a fixed batch of transactions to a
    verdict, the runtime keeps a cluster of [n] sites alive for an
    open-ended stretch of virtual time and streams transactions through
    it: an arrival process offers [load] cross-site transfers per 100T,
    the {!Scheduler} admits them into a bounded in-flight window and
    places a coordinator per transaction, every admitted transaction
    runs the configured commit protocol over the one shared network —
    and a partition timeline ({!Partition.sequence}-style cut/heal
    phases) plays out underneath, with the Section-5 termination
    protocol engaging automatically on partition detection (it {e is}
    the configured protocol's UD/timeout machinery; swap in plain 2PC
    or 3PC to watch the same timeline strand transactions instead).

    Coordinators other than site 1 are realised by relabeling: a
    transaction coordinated by physical site [m] runs its protocol
    instances over {e logical} site ids rotated so that [m] is logical
    site 1 (the paper's protocols hard-wire "site 1 masters"); the wire
    and the partition operate on physical ids throughout, and envelopes
    are translated at the boundary.

    Everything observable flows into the {!Metrics} pipeline and the
    continuous {!Auditor}; {!to_json} drains both plus the run summary
    into one deterministic document — same config and seed, byte-
    identical JSON. *)

type config = {
  protocol : Site.packed;
  n : int;
  t_unit : Vtime.t;
  mode : Network.mode;
  timeline : Partition.t;  (** the cut/heal schedule; physical sites *)
  delay : Delay.t;
  seed : int64;
  duration : Vtime.t;  (** arrivals stop at this instant *)
  drain : Vtime.t;  (** extra run time for in-flight transactions *)
  load : int;  (** offered transactions per 100T; >= 1 *)
  window : int;  (** max concurrently running transactions *)
  queue_limit : int option;  (** admission queue bound; [None] = unbounded *)
  policy : Scheduler.policy;
  pause_during_cut : bool;
  crashes : (Site_id.t * Vtime.t) list;
      (** crash schedule: at each instant the site falls silent and
          loses its volatile state — future sends and deliveries die,
          its timers fire into the void, and the scheduler stops
          picking it as a coordinator.  Distinct from a partition:
          there is no heal.  Without a matching entry in [recoveries]
          the crash is a crash-stop. *)
  recoveries : (Site_id.t * Vtime.t) list;
      (** crash-recover schedule: at each instant the (currently dead)
          site replays its WAL ({!Commit_storage.Durable_site.recover}),
          applies the paper's recovery rule — redo
          committed-but-unfinished work, abort what never prepared,
          adopt the group outcome for in-doubt [Prepared] transactions
          (waiting for one if the group is still deciding) — and
          rejoins scheduling, settlement and the auditor.  Its
          pre-crash protocol instances stay fenced: their volatile
          state died with the crash, so the recovery rule speaks for
          the site on every transaction open across the outage.  Each
          site listed must also appear in [crashes] at a strictly
          earlier instant (checked by {!run}). *)
  balance : int;  (** initial per-account balance of each transfer *)
  amount : int;  (** amount moved by each transfer *)
  bucket : Vtime.t;  (** metrics time-series bucket width *)
  trace_enabled : bool;
  snapshot_every : Vtime.t option;
      (** emit a windowed telemetry {!Metrics.snapshot} every this many
          ticks (plus a final cut at the horizon); [None] = off *)
  profile : bool;
      (** attribute host wall-time to subsystem buckets
          (engine/network/protocol/lock-manager/auditor); the result is
          nondeterministic and never serialised *)
}

val default_config : ?protocol:Site.packed -> ?n:int -> unit -> config
(** Termination-transient protocol, [n = 3], [T = 1000] ticks, 200T
    duration, 30T drain, load 50, window 8, queue limit 64,
    partition-aware policy, 10T buckets. *)

type report = {
  config : config;
  horizon : Vtime.t;
  offered : int;
  admitted : int;
  rejected : int;
  starved : int;  (** still queued when the run ended *)
  committed : int;
  aborted : int;
  torn : int;
  blocked : int;  (** admitted but undecided somewhere at the horizon *)
  settled : int;
  termination_invocations : int;
      (** transactions whose decision path went through the termination
          machinery (any non-failure-free decision reason) *)
  probes : int;  (** termination-protocol probe messages on the wire *)
  latency : Commit_checker.Stats.t option;
      (** admission -> last site decided, committed transactions *)
  queue_wait : Commit_checker.Stats.t option;
  throughput_per_100t : float;  (** committed per 100T of [duration] *)
  disk_total : int;  (** money in the durable stores at the horizon *)
  auditor : Auditor.t;
  metrics : Metrics.t;
  net_stats : Network.stats;
  trace : Trace.t;
  trace_dropped : int;
      (** entries the bounded trace ring evicted during the run; the
          CLI surfaces a non-zero count as a stderr warning, and it is
          serialised in {!to_json}'s ["runtime"] section *)
  events_run : int;
      (** engine events executed — deterministic, serialised in
          {!to_json}'s ["runtime"] section so snapshot streams can be
          cross-checked against the run *)
  snapshots : Metrics.snapshot list;
      (** windowed telemetry cuts, oldest first (one per
          [snapshot_every] boundary plus the final horizon cut); empty
          unless [config.snapshot_every] is set *)
  profile : Prof.report option;
      (** wall-clock subsystem attribution ([Some] iff
          [config.profile]); inherently nondeterministic, so never part
          of {!to_json} *)
}

type scratch
(** Reusable per-domain state for cluster sweeps (today: one engine
    whose grown heap array survives across runs).  A scratch must never
    be used by two runs concurrently; a run with a scratch is
    byte-identical to one without. *)

val make_scratch : unit -> scratch

val run : ?obs:Obs.t -> ?scratch:scratch -> config -> report
(** [obs] (default {!Obs.disabled}) records per-transaction lifecycle
    spans — queued / admission-to-settlement on track 0, protocol state
    spans on each physical site's track — plus every message-flow edge.
    [scratch] reuses a per-domain engine via {!Engine.reset}; the
    returned [report.trace] is always a fresh store.
    @raise Invalid_argument on a non-positive load/window or
    [amount >= balance]. *)

val atomic : report -> bool
(** No torn transactions, no conservation breaches, and the durable
    stores hold exactly the money the auditor witnessed. *)

val to_json : report -> Commit_checker.Export.json
(** Deterministic: a fixed field order and name-sorted metric objects;
    identical configs and seeds yield byte-identical documents. *)

val pp_report : Format.formatter -> report -> unit

val pp_timeline : Format.formatter -> report -> unit
(** The bucket-by-bucket life of the cluster: arrivals, commits,
    aborts, termination settlements, with the partition phases marked —
    the cluster-life example's table. *)
