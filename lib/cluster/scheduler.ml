type policy = Fixed_master | Round_robin | Partition_aware

let policy_name = function
  | Fixed_master -> "fixed"
  | Round_robin -> "round-robin"
  | Partition_aware -> "partition-aware"

let policy_of_string = function
  | "fixed" -> Ok Fixed_master
  | "round-robin" | "rr" -> Ok Round_robin
  | "partition-aware" | "aware" -> Ok Partition_aware
  | s -> Error (Printf.sprintf "unknown scheduling policy %S" s)

type 'a t = {
  policy : policy;
  queue_limit : int;
  pause_during_cut : bool;
  window : int;
  n : int;
  queue : 'a Queue.t;
  mutable in_flight : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable rr : int;  (* rotation cursor for master placement *)
}

let create ?(policy = Partition_aware) ?(queue_limit = max_int)
    ?(pause_during_cut = false) ~window ~n () =
  if window < 1 then invalid_arg "Scheduler.create: window must be positive";
  if n < 2 then invalid_arg "Scheduler.create: need at least two sites";
  {
    policy;
    queue_limit;
    pause_during_cut;
    window;
    n;
    queue = Queue.create ();
    in_flight = 0;
    admitted = 0;
    rejected = 0;
    rr = 0;
  }

let pick_master t ?(alive = fun _ -> true) ~timeline ~now () =
  let rotate candidates =
    (* Crash-stopped sites make poor coordinators; fall back to the
       unfiltered list only in the degenerate everyone-dead case. *)
    let candidates =
      match List.filter alive candidates with
      | [] -> candidates
      | live -> live
    in
    let choice = List.nth candidates (t.rr mod List.length candidates) in
    t.rr <- t.rr + 1;
    choice
  in
  match t.policy with
  | Fixed_master -> Site_id.master
  | Round_robin -> rotate (Site_id.all ~n:t.n)
  | Partition_aware ->
      if Partition.active_at timeline now then
        (* Only the master-side cell: a coordinator placed in G2 would
           run its whole group through termination; one in G1 keeps the
           large group coordinated and lets termination handle G2. *)
        rotate (Site_id.Set.elements (Partition.group1 timeline ~n:t.n))
      else rotate (Site_id.all ~n:t.n)

let paused t ~timeline ~now =
  t.pause_during_cut && Partition.active_at timeline now

let submit t ?alive ~timeline ~now job =
  if t.in_flight < t.window && not (paused t ~timeline ~now) then begin
    t.in_flight <- t.in_flight + 1;
    t.admitted <- t.admitted + 1;
    `Admit (pick_master t ?alive ~timeline ~now ())
  end
  else if Queue.length t.queue < t.queue_limit then begin
    Queue.add job t.queue;
    `Enqueued
  end
  else begin
    t.rejected <- t.rejected + 1;
    `Rejected
  end

let complete t =
  if t.in_flight <= 0 then invalid_arg "Scheduler.complete: nothing in flight";
  t.in_flight <- t.in_flight - 1

let next t ?alive ~timeline ~now () =
  if
    t.in_flight < t.window
    && (not (paused t ~timeline ~now))
    && not (Queue.is_empty t.queue)
  then begin
    let job = Queue.pop t.queue in
    t.in_flight <- t.in_flight + 1;
    t.admitted <- t.admitted + 1;
    Some (job, pick_master t ?alive ~timeline ~now ())
  end
  else None

let in_flight t = t.in_flight

let queued t = Queue.length t.queue

let admitted t = t.admitted

let rejected t = t.rejected

let window t = t.window
