type spec = { site : int; down : int; up : int option }

let validate ~n ?horizon specs =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let past_horizon at =
    match horizon with Some h -> at >= h | None -> false
  in
  let rec go seen = function
    | [] -> Ok ()
    | { site; down; up } :: rest -> (
        if site < 1 || site > n then err "crash site %d out of range 1..%d" site n
        else if List.mem site seen then
          err "duplicate crash schedule for site %d" site
        else if down < 0 then
          err "crash instant %d for site %d is negative" down site
        else if past_horizon down then
          err "crash instant %d for site %d is past the horizon (%d ticks)"
            down site
            (Option.get horizon)
        else
          match up with
          | Some up when up <= down ->
              err "recover instant %d for site %d is not after its crash at %d"
                up site down
          | Some up when past_horizon up ->
              err "recover instant %d for site %d is past the horizon (%d ticks)"
                up site
                (Option.get horizon)
          | Some _ | None -> go (site :: seen) rest)
  in
  go [] specs

let split specs =
  let crashes =
    List.map (fun s -> (Site_id.of_int s.site, Vtime.of_int s.down)) specs
  in
  let recoveries =
    List.filter_map
      (fun s ->
        Option.map (fun up -> (Site_id.of_int s.site, Vtime.of_int up)) s.up)
      specs
  in
  (crashes, recoveries)
