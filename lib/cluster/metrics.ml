module Stats = Commit_checker.Stats
module Export = Commit_checker.Export

type t = {
  t_unit : Vtime.t;
  bucket : Vtime.t;
  counters : (string, int ref) Hashtbl.t;
  serieses : (string, (int, int ref) Hashtbl.t) Hashtbl.t;
  histograms : (string, Stats.Acc.acc ref) Hashtbl.t;
}

let create ?bucket ~t_unit () =
  let bucket =
    match bucket with
    | Some b ->
        if Vtime.to_int b <= 0 then
          invalid_arg "Metrics.create: bucket must be positive";
        b
    | None -> Vtime.of_int (10 * Vtime.to_int t_unit)
  in
  {
    t_unit;
    bucket;
    counters = Hashtbl.create 32;
    serieses = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
  }

let t_unit t = t.t_unit

let bucket_ticks t = t.bucket

let find_or tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v

let add t name delta =
  if delta < 0 then invalid_arg "Metrics.add: counters are monotonic";
  let cell = find_or t.counters name (fun () -> ref 0) in
  cell := !cell + delta

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let counters t = List.map (fun k -> (k, counter t k)) (sorted_keys t.counters)

let bucket_of t at = Vtime.to_int at / Vtime.to_int t.bucket

let mark t ~at name =
  let buckets = find_or t.serieses name (fun () -> Hashtbl.create 32) in
  let cell = find_or buckets (bucket_of t at) (fun () -> ref 0) in
  Stdlib.incr cell

let series t name =
  match Hashtbl.find_opt t.serieses name with
  | None -> []
  | Some buckets ->
      Hashtbl.fold (fun b c acc -> (b, !c) :: acc) buckets []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let series_names t = sorted_keys t.serieses

let observe t name sample =
  let cell = find_or t.histograms name (fun () -> ref Stats.Acc.empty) in
  cell := Stats.Acc.add !cell sample

let merge_histogram t name acc =
  let cell = find_or t.histograms name (fun () -> ref Stats.Acc.empty) in
  cell := Stats.Acc.merge !cell acc

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some acc -> Stats.Acc.to_stats !acc

let histogram_acc t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> Stats.Acc.empty
  | Some acc -> !acc

let merge_into dst src =
  if Vtime.to_int dst.bucket <> Vtime.to_int src.bucket then
    invalid_arg "Metrics.merge_into: bucket widths differ";
  Hashtbl.iter (fun name cell -> add dst name !cell) src.counters;
  Hashtbl.iter
    (fun name buckets ->
      let into = find_or dst.serieses name (fun () -> Hashtbl.create 32) in
      Hashtbl.iter
        (fun b c ->
          let cell = find_or into b (fun () -> ref 0) in
          cell := !cell + !c)
        buckets)
    src.serieses;
  Hashtbl.iter
    (fun name acc -> merge_histogram dst name !acc)
    src.histograms

let to_json t =
  let counters_json =
    Export.Obj (List.map (fun (k, v) -> (k, Export.Int v)) (counters t))
  in
  let series_json =
    Export.Obj
      (List.map
         (fun name ->
           ( name,
             Export.List
               (List.map
                  (fun (b, c) -> Export.List [ Export.Int b; Export.Int c ])
                  (series t name)) ))
         (series_names t))
  in
  let histograms_json =
    Export.Obj
      (List.filter_map
         (fun name ->
           Option.map
             (fun s -> (name, Export.of_stats s))
             (histogram t name))
         (sorted_keys t.histograms))
  in
  Export.Obj
    [
      ("bucket_ticks", Export.Int (Vtime.to_int t.bucket));
      ("counters", counters_json);
      ("series", series_json);
      ("histograms", histograms_json);
    ]
