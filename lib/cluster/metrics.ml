module Stats = Commit_checker.Stats
module Export = Commit_checker.Export

type t = {
  t_unit : Vtime.t;
  bucket : Vtime.t;
  counters : (string, int ref) Hashtbl.t;
  serieses : (string, (int, int ref) Hashtbl.t) Hashtbl.t;
  histograms : (string, Stats.Acc.acc ref) Hashtbl.t;
  (* Gauges are point-in-time samples (queue depths, live-site counts):
     [set_gauge] replaces, unlike the monotonic counters. *)
  gauges : (string, int ref) Hashtbl.t;
  (* Per-window histogram accumulators, maintained alongside the
     cumulative ones only once a snapshot cursor exists ([windowed]) so
     runs without telemetry pay nothing extra. *)
  window_hists : (string, Stats.Acc.acc ref) Hashtbl.t;
  mutable windowed : bool;
}

let create ?bucket ~t_unit () =
  let bucket =
    match bucket with
    | Some b ->
        if Vtime.to_int b <= 0 then
          invalid_arg "Metrics.create: bucket must be positive";
        b
    | None -> Vtime.of_int (10 * Vtime.to_int t_unit)
  in
  {
    t_unit;
    bucket;
    counters = Hashtbl.create 32;
    serieses = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    gauges = Hashtbl.create 8;
    window_hists = Hashtbl.create 8;
    windowed = false;
  }

let t_unit t = t.t_unit

let bucket_ticks t = t.bucket

let find_or tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add tbl name v;
      v

let add t name delta =
  if delta < 0 then invalid_arg "Metrics.add: counters are monotonic";
  let cell = find_or t.counters name (fun () -> ref 0) in
  cell := !cell + delta

let incr t name = add t name 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let counters t = List.map (fun k -> (k, counter t k)) (sorted_keys t.counters)

let set_gauge t name value =
  let cell = find_or t.gauges name (fun () -> ref 0) in
  cell := value

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some c -> !c | None -> 0

let gauges t = List.map (fun k -> (k, gauge t k)) (sorted_keys t.gauges)

let bucket_of t at = Vtime.to_int at / Vtime.to_int t.bucket

let mark t ~at name =
  let buckets = find_or t.serieses name (fun () -> Hashtbl.create 32) in
  let cell = find_or buckets (bucket_of t at) (fun () -> ref 0) in
  Stdlib.incr cell

let series t name =
  match Hashtbl.find_opt t.serieses name with
  | None -> []
  | Some buckets ->
      Hashtbl.fold (fun b c acc -> (b, !c) :: acc) buckets []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let series_names t = sorted_keys t.serieses

let observe t name sample =
  let cell = find_or t.histograms name (fun () -> ref Stats.Acc.empty) in
  cell := Stats.Acc.add !cell sample;
  if t.windowed then begin
    let wcell = find_or t.window_hists name (fun () -> ref Stats.Acc.empty) in
    wcell := Stats.Acc.add !wcell sample
  end

let merge_histogram t name acc =
  let cell = find_or t.histograms name (fun () -> ref Stats.Acc.empty) in
  cell := Stats.Acc.merge !cell acc;
  if t.windowed then begin
    let wcell = find_or t.window_hists name (fun () -> ref Stats.Acc.empty) in
    wcell := Stats.Acc.merge !wcell acc
  end

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some acc -> Stats.Acc.to_stats !acc

let histogram_acc t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> Stats.Acc.empty
  | Some acc -> !acc

let merge_into dst src =
  if Vtime.to_int dst.bucket <> Vtime.to_int src.bucket then
    invalid_arg "Metrics.merge_into: bucket widths differ";
  Hashtbl.iter (fun name cell -> add dst name !cell) src.counters;
  Hashtbl.iter
    (fun name buckets ->
      let into = find_or dst.serieses name (fun () -> Hashtbl.create 32) in
      Hashtbl.iter
        (fun b c ->
          let cell = find_or into b (fun () -> ref 0) in
          cell := !cell + !c)
        buckets)
    src.serieses;
  Hashtbl.iter
    (fun name acc -> merge_histogram dst name !acc)
    src.histograms;
  (* Gauges are samples, not sums, but sweep partials are disjoint runs
     whose end-of-run values would otherwise vanish: summing keeps the
     aggregate meaningful (total in-flight across merged runs). *)
  Hashtbl.iter
    (fun name cell -> set_gauge dst name (gauge dst name + !cell))
    src.gauges

(* ---- windowed delta snapshots ------------------------------------------ *)

(* A cursor remembers what has already been emitted so each [snapshot]
   call yields only the delta: counter values at the last cut (presence
   in the table doubling as "already emitted once"), the first series
   bucket not yet closed, and the window histogram accumulators (which
   drain on every cut).  Summing a run's snapshots therefore rebuilds
   its final metrics exactly — counters and series cells are sums and
   [Stats.Acc] is a merge monoid. *)

type cursor = {
  last_counters : (string, int) Hashtbl.t;
  mutable next_series_bucket : int;
  mutable last_upto : Vtime.t;
  mutable next_seq : int;
}

type snapshot = {
  snap_seq : int;
  snap_since : Vtime.t;  (* exclusive start: the previous cut *)
  snap_upto : Vtime.t;  (* inclusive end of the window *)
  snap_final : bool;
  snap_counters : (string * int) list;  (* deltas since the last cut *)
  snap_gauges : (string * int) list;  (* sampled at the cut *)
  snap_series : (string * (int * int) list) list;  (* buckets closed *)
  snap_hists : (string * Stats.Acc.acc) list;  (* this window only *)
}

let create_cursor t =
  if
    Hashtbl.length t.counters > 0
    || Hashtbl.length t.serieses > 0
    || Hashtbl.length t.histograms > 0
  then
    invalid_arg "Metrics.create_cursor: create the cursor before recording";
  t.windowed <- true;
  {
    last_counters = Hashtbl.create 32;
    next_series_bucket = 0;
    last_upto = Vtime.zero;
    next_seq = 0;
  }

(* Cut a window ending at [at] (calls must use non-decreasing times).
   A counter appears the first time it exists and whenever it moved —
   so a counter created at value 0 still reaches a merged rebuild.  A
   series bucket is emitted once closed (strictly before [at]'s bucket;
   engine time is monotonic, so closed buckets cannot gain marks); the
   [final] cut flushes the still-open tail buckets too. *)
let snapshot t cursor ~at ~final =
  let snap_counters =
    List.filter_map
      (fun (name, cur) ->
        let last = Hashtbl.find_opt cursor.last_counters name in
        match last with
        | Some v when v = cur -> None
        | _ ->
            Hashtbl.replace cursor.last_counters name cur;
            Some (name, cur - Option.value last ~default:0))
      (counters t)
  in
  let upto_bucket = if final then max_int else bucket_of t at in
  let snap_series =
    List.filter_map
      (fun name ->
        match
          List.filter
            (fun (b, _) -> b >= cursor.next_series_bucket && b < upto_bucket)
            (series t name)
        with
        | [] -> None
        | cells -> Some (name, cells))
      (series_names t)
  in
  let snap_hists =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.window_hists name with
        | Some cell when Stats.Acc.count !cell > 0 ->
            let acc = !cell in
            cell := Stats.Acc.empty;
            Some (name, acc)
        | _ -> None)
      (sorted_keys t.window_hists)
  in
  let snap =
    {
      snap_seq = cursor.next_seq;
      snap_since = cursor.last_upto;
      snap_upto = at;
      snap_final = final;
      snap_counters;
      snap_gauges = gauges t;
      snap_series;
      snap_hists;
    }
  in
  cursor.next_seq <- cursor.next_seq + 1;
  cursor.next_series_bucket <- max cursor.next_series_bucket upto_bucket;
  cursor.last_upto <- at;
  snap

(* Fold one window back into a metrics store.  Replaying a run's
   snapshots in stream order reproduces its final metrics: counters and
   series cells sum, histograms merge, and gauges are last-write-wins
   so the final sample sticks. *)
let merge_snapshot t snap =
  List.iter (fun (name, delta) -> add t name delta) snap.snap_counters;
  List.iter (fun (name, v) -> set_gauge t name v) snap.snap_gauges;
  List.iter
    (fun (name, cells) ->
      let buckets = find_or t.serieses name (fun () -> Hashtbl.create 32) in
      List.iter
        (fun (b, c) ->
          let cell = find_or buckets b (fun () -> ref 0) in
          cell := !cell + c)
        cells)
    snap.snap_series;
  List.iter (fun (name, acc) -> merge_histogram t name acc) snap.snap_hists

let snapshot_to_json ?run t snap =
  let ints kvs = Export.Obj (List.map (fun (k, v) -> (k, Export.Int v)) kvs) in
  let series_json =
    Export.Obj
      (List.map
         (fun (name, cells) ->
           ( name,
             Export.List
               (List.map
                  (fun (b, c) -> Export.List [ Export.Int b; Export.Int c ])
                  cells) ))
         snap.snap_series)
  in
  let hists_json =
    Export.Obj
      (List.filter_map
         (fun (name, acc) ->
           Option.map
             (fun s -> (name, Export.of_stats s))
             (Stats.Acc.to_stats acc))
         snap.snap_hists)
  in
  Export.Obj
    ((match run with Some r -> [ ("run", Export.String r) ] | None -> [])
    @ [
        ("seq", Export.Int snap.snap_seq);
        ("t_unit", Export.Int (Vtime.to_int t.t_unit));
        ("bucket_ticks", Export.Int (Vtime.to_int t.bucket));
        ("since", Export.Int (Vtime.to_int snap.snap_since));
        ("upto", Export.Int (Vtime.to_int snap.snap_upto));
        ("final", Export.Bool snap.snap_final);
        ("counters", ints snap.snap_counters);
        ("gauges", ints snap.snap_gauges);
        ("series", series_json);
        ("histograms", hists_json);
      ])

let to_json t =
  let counters_json =
    Export.Obj (List.map (fun (k, v) -> (k, Export.Int v)) (counters t))
  in
  let gauges_json =
    Export.Obj (List.map (fun (k, v) -> (k, Export.Int v)) (gauges t))
  in
  let series_json =
    Export.Obj
      (List.map
         (fun name ->
           ( name,
             Export.List
               (List.map
                  (fun (b, c) -> Export.List [ Export.Int b; Export.Int c ])
                  (series t name)) ))
         (series_names t))
  in
  let histograms_json =
    Export.Obj
      (List.filter_map
         (fun name ->
           Option.map
             (fun s -> (name, Export.of_stats s))
             (histogram t name))
         (sorted_keys t.histograms))
  in
  Export.Obj
    [
      ("bucket_ticks", Export.Int (Vtime.to_int t.bucket));
      ("counters", counters_json);
      ("gauges", gauges_json);
      ("series", series_json);
      ("histograms", histograms_json);
    ]
