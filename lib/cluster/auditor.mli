(** The continuous atomicity auditor.

    The single-shot checker verdicts ({!Commit_checker.Verdict}) look at
    a finished run; a long-running cluster cannot afford a post-hoc scan
    over every transaction that ever lived.  The auditor instead settles
    each transaction {e incrementally}: the runtime registers a
    transaction's per-site money contributions when it starts, streams
    in per-site decisions as they are made, and the moment the last site
    decides the auditor checks

    - {e agreement}: every site reached the same decision (a mix is the
      paper's atomicity violation — a torn transaction);
    - {e money conservation}: the money actually deposited is what an
      atomic outcome deposits — the full contribution set on commit,
      nothing on abort.  A torn transfer deposits a partial sum and is
      caught the instant it settles, not at the end of the run.

    The auditor also maintains the running ledger ({!applied_total}) of
    every commit it has witnessed, which the runtime cross-checks
    against the durable stores at shutdown: the two agreeing means no
    money appeared or vanished outside the audited decision path. *)

type t

val create : n:int -> unit -> t

val begin_txn : t -> tid:int -> contributions:(Site_id.t * int) list -> unit
(** Register a transaction before its first decision.  [contributions]
    lists the money each site deposits if it commits; sites absent from
    the list contribute 0 (they still must decide).
    @raise Invalid_argument on a duplicate tid. *)

val record : t -> tid:int -> site:Site_id.t -> Types.decision -> unit
(** One site's decision.  Repeated identical decisions are ignored; an
    unknown tid raises.  The transaction settles once every live site
    has decided. *)

val mark_dead : t -> site:Site_id.t -> unit
(** Declare [site] crash-stopped: it is exempt from settling from now
    on, and any open transaction already complete over the surviving
    sites settles immediately.  Agreement and conservation are then
    judged over the decisions actually made — a crash is a fault, not a
    violation. *)

val mark_recovered : t -> site:Site_id.t -> unit
(** Undo {!mark_dead} after the site replays its WAL and rejoins: open
    transactions require its decision again before settling, while
    transactions settled during the outage stay settled (a late
    decision recorded for one of those is still checked for agreement
    and counted toward conservation). *)

val open_txns : t -> int
(** Registered but not yet settled. *)

val settled : t -> int

val agreement_violations : t -> int

val conservation_breaches : t -> int

val torn_tids : t -> int list
(** Ascending; the transactions that settled with mixed decisions. *)

val applied_total : t -> int
(** Money deposited by every commit recorded so far (settled or not) —
    must equal the on-disk account total at all times. *)

val atomic_expected_total : t -> int
(** Money the {e settled} transactions would have deposited had each
    settled atomically (full set on an all-commit, 0 otherwise). *)

val check : t -> (unit, string) result
(** [Ok ()] iff no settled transaction violated agreement or
    conservation. *)

val to_json : t -> Commit_checker.Export.json
